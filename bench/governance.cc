// Query lifecycle governance bench (PR 10): overhead of the cooperative
// QueryGuard on governed queries vs the ungoverned fast path (target <= 3%),
// cancellation latency from Cancel() to the typed QueryAborted surfacing
// (bounded by one morsel), and the deterministic governance counters
// (guard_checks, queries_cancelled, deadline_aborts, budget_aborts,
// admission_rejected) pinned by CI via bench/baselines/BENCH_PR10.json and
// tools/compare_bench.py.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "serve/serving.h"
#include "sql/parser.h"
#include "util/error.h"
#include "util/query_guard.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;

namespace {

double Seconds(const std::function<void()>& fn, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// The counter workload runs on fixed-size tables with explicit morsel
// geometry so guard_checks is one number on every machine, scale setting and
// thread count (morsel counting is thread-count invariant by construction).
constexpr size_t kCounterRows = 6000;
constexpr size_t kCounterMorselRows = 256;
constexpr size_t kCounterParallelThreshold = 64;
constexpr int kCounterReps = 3;
constexpr int kCancelTrials = 11;

jb::EngineProfile CounterProfile() {
  jb::EngineProfile p = jb::EngineProfile::DSwap();
  p.morsel_rows = kCounterMorselRows;
  p.parallel_threshold_rows = kCounterParallelThreshold;
  return p;
}

/// The fixed governed query mix the guard_checks counter is pinned against:
/// scan+filter, join+aggregate, group-by and an ordered projection, covering
/// morsel loops, hash builds and seal points.
const std::vector<std::string>& CounterQueries() {
  static const std::vector<std::string> queries = {
      "SELECT COUNT(*) AS c FROM sales WHERE sales.unit_sales > 0",
      "SELECT COUNT(*) AS c, SUM(sales.unit_sales) AS s FROM sales "
      "JOIN items ON sales.item_id = items.item_id",
      "SELECT sales.store_id AS g, SUM(sales.unit_sales) AS s FROM sales "
      "GROUP BY sales.store_id",
      "SELECT sales.item_id AS i, sales.unit_sales AS y FROM sales "
      "ORDER BY i, y LIMIT 50",
  };
  return queries;
}

jb::exec::ExecTable RunGoverned(jb::exec::Database* db, const std::string& sql,
                                jb::util::QueryGuard* guard) {
  jb::exec::ReadContext rctx;
  rctx.guard = guard;
  jb::sql::Statement stmt = jb::sql::Parse(sql);
  return db->Query(rctx, *stmt.select);
}

struct OverheadSweep {
  double ungoverned_seconds = 0;
  double governed_seconds = 0;
  double overhead_pct = 0;
};

/// Same query stream with guard == nullptr (fast path: zero checks, zero
/// counter writes) vs an armed guard with no limits (every check runs).
OverheadSweep RunOverheadSweep(jb::exec::Database* db, int reps) {
  const std::string agg =
      "SELECT COUNT(*) AS c, SUM(sales.unit_sales) AS s FROM sales "
      "JOIN items ON sales.item_id = items.item_id";
  const std::string grp =
      "SELECT sales.store_id AS g, SUM(sales.unit_sales) AS s, COUNT(*) AS c "
      "FROM sales GROUP BY sales.store_id";
  OverheadSweep out;
  jb::util::QueryGuard guard;  // armed, unlimited: pure check cost
  // Warm plan cache and storage once for both variants.
  db->Query(agg);
  db->Query(grp);
  RunGoverned(db, agg, &guard);
  out.ungoverned_seconds = Seconds(
      [&] {
        db->Query(agg);
        db->Query(grp);
      },
      reps);
  out.governed_seconds = Seconds(
      [&] {
        RunGoverned(db, agg, &guard);
        RunGoverned(db, grp, &guard);
      },
      reps);
  out.overhead_pct =
      out.ungoverned_seconds > 0
          ? (out.governed_seconds - out.ungoverned_seconds) /
                out.ungoverned_seconds * 100.0
          : 0;
  return out;
}

struct CancelSweep {
  double p50_ms = 0;
  double max_ms = 0;
  size_t trials = 0;
};

/// A worker thread runs governed queries back to back; the main thread trips
/// Cancel() mid-stream and we time how long the worker takes to surface the
/// typed abort. The guard is checked at every morsel boundary, so the latency
/// is bounded by one morsel of work no matter how large the query is.
CancelSweep RunCancelSweep(jb::exec::Database* db) {
  const std::string agg =
      "SELECT COUNT(*) AS c, SUM(sales.unit_sales) AS s FROM sales "
      "JOIN items ON sales.item_id = items.item_id";
  std::vector<double> latencies;
  for (int trial = 0; trial < kCancelTrials; ++trial) {
    jb::util::QueryGuard guard;
    std::atomic<bool> running{false};
    std::chrono::steady_clock::time_point caught_at;
    std::thread worker([&] {
      try {
        for (;;) {
          running.store(true);
          RunGoverned(db, agg, &guard);
        }
      } catch (const jb::QueryAborted&) {
        caught_at = std::chrono::steady_clock::now();
      }
    });
    while (!running.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto cancel_at = std::chrono::steady_clock::now();
    guard.Cancel();  // sticky: the worker aborts mid-query or on its next one
    worker.join();
    latencies.push_back(
        std::chrono::duration<double, std::milli>(caught_at - cancel_at)
            .count());
  }
  std::sort(latencies.begin(), latencies.end());
  CancelSweep out;
  out.trials = latencies.size();
  out.p50_ms = latencies[latencies.size() / 2];
  out.max_ms = latencies.back();
  return out;
}

struct CounterSweep {
  uint64_t guard_checks = 0;
  uint64_t queries_cancelled = 0;
  uint64_t deadline_aborts = 0;
  uint64_t budget_aborts = 0;
  uint64_t admission_rejected = 0;
};

CounterSweep RunCounterSweep() {
  CounterSweep out;
  jb::data::FavoritaConfig config;
  config.sales_rows = kCounterRows;  // never scaled: counters are pinned

  // guard_checks: a clean governed stream on its own engine, so partial
  // checks from deliberately aborted queries can't leak into the count.
  {
    jb::exec::Database db(CounterProfile());
    jb::data::MakeFavorita(&db, config);
    jb::util::QueryGuard guard;
    for (int rep = 0; rep < kCounterReps; ++rep) {
      for (const std::string& sql : CounterQueries()) {
        RunGoverned(&db, sql, &guard);
      }
    }
    out.guard_checks = db.PlanStatsTotals().guard_checks;
  }

  // Abort counters: trip each limit exactly once on a second engine.
  {
    jb::exec::Database db(CounterProfile());
    jb::data::MakeFavorita(&db, config);
    const std::string agg =
        "SELECT COUNT(*) AS c, SUM(sales.unit_sales) AS s FROM sales "
        "JOIN items ON sales.item_id = items.item_id";
    {
      jb::util::QueryGuard guard;
      guard.Cancel();
      try {
        RunGoverned(&db, agg, &guard);
      } catch (const jb::QueryAborted&) {
      }
    }
    {
      jb::util::QueryGuard guard;
      guard.set_deadline(jb::util::QueryGuard::Clock::now() -
                         std::chrono::milliseconds(1));
      try {
        RunGoverned(&db, agg, &guard);
      } catch (const jb::QueryAborted&) {
      }
    }
    {
      jb::util::QueryGuard guard;
      guard.set_byte_budget(64);  // the first hash build blows through this
      try {
        RunGoverned(&db, agg, &guard);
      } catch (const jb::QueryAborted&) {
      }
    }
    jb::plan::PlanStats totals = db.PlanStatsTotals();
    out.queries_cancelled = totals.queries_cancelled;
    out.deadline_aborts = totals.deadline_aborts;
    out.budget_aborts = totals.budget_aborts;

    // admission_rejected: one slot, held; a bounded-wait request must be
    // rejected typed once, then succeed after release.
    jb::EngineProfile serve_profile = CounterProfile();
    serve_profile.serve_admission_slots = 1;
    serve_profile.serve_admission_max_wait_ms = 10;
    jb::exec::Database serve_db(serve_profile);
    jb::data::MakeFavorita(&serve_db, config);
    jb::serve::ServingContext ctx(&serve_db, {"sales", "items"});
    ctx.gate().Acquire();
    jb::serve::ServingContext::Session session = ctx.OpenSession();
    try {
      session.Query(agg);
    } catch (const jb::AdmissionRejected&) {
    }
    ctx.gate().Release();
    session.Query(agg);  // slot free again: request admitted and served
    out.admission_rejected = ctx.admission_rejected();
  }
  return out;
}

void WriteJson(const OverheadSweep& over, const CancelSweep& cancel,
               const CounterSweep& counters) {
  const char* path = std::getenv("JB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_PR10.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("  -- could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"governance\",\n"
               "  \"scale\": %.3f,\n"
               "  \"ungoverned_seconds\": %.6f,\n"
               "  \"governed_seconds\": %.6f,\n"
               "  \"guard_overhead_pct\": %.3f,\n"
               "  \"cancel_latency_p50_ms\": %.3f,\n"
               "  \"cancel_latency_max_ms\": %.3f,\n"
               "  \"cancel_trials\": %zu,\n"
               "  \"counters\": {\n"
               "    \"guard_checks\": %llu,\n"
               "    \"queries_cancelled\": %llu,\n"
               "    \"deadline_aborts\": %llu,\n"
               "    \"budget_aborts\": %llu,\n"
               "    \"admission_rejected\": %llu\n"
               "  }\n"
               "}\n",
               jb::bench::Scale(), over.ungoverned_seconds,
               over.governed_seconds, over.overhead_pct, cancel.p50_ms,
               cancel.max_ms, cancel.trials,
               static_cast<unsigned long long>(counters.guard_checks),
               static_cast<unsigned long long>(counters.queries_cancelled),
               static_cast<unsigned long long>(counters.deadline_aborts),
               static_cast<unsigned long long>(counters.budget_aborts),
               static_cast<unsigned long long>(counters.admission_rejected));
  std::fclose(f);
  std::printf("  -- wrote %s\n", path);
}

}  // namespace

int main() {
  Header("Query lifecycle governance bench (PR 10)",
         "guard overhead on governed vs ungoverned execution, cancellation "
         "latency from Cancel() to the typed abort, and the deterministic "
         "governance counters the CI guard pins");

  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(40000);
  jb::exec::Database db(jb::EngineProfile::DSwap());
  jb::data::MakeFavorita(&db, config);
  Note("timing workload: " + std::to_string(config.sales_rows) +
       " sales rows, join-aggregate + group-by stream");

  OverheadSweep over = RunOverheadSweep(&db, /*reps=*/7);
  Row("ungoverned stream", over.ungoverned_seconds);
  Row("governed stream", over.governed_seconds);
  Row("guard overhead", over.overhead_pct, "%");

  CancelSweep cancel = RunCancelSweep(&db);
  std::printf("  cancel latency over %zu trials: p50 %7.3fms  max %7.3fms\n",
              cancel.trials, cancel.p50_ms, cancel.max_ms);

  CounterSweep counters = RunCounterSweep();
  std::printf(
      "  counters: guard_checks=%llu cancelled=%llu deadline=%llu "
      "budget=%llu admission_rejected=%llu\n",
      static_cast<unsigned long long>(counters.guard_checks),
      static_cast<unsigned long long>(counters.queries_cancelled),
      static_cast<unsigned long long>(counters.deadline_aborts),
      static_cast<unsigned long long>(counters.budget_aborts),
      static_cast<unsigned long long>(counters.admission_rejected));

  WriteJson(over, cancel, counters);
  return 0;
}
