// Figure 9: query mix of the first gradient-boosting iteration — number of
// feature-split vs message-passing queries, and the latency histogram.
// Extended with a planner on/off pass: per-phase timings plus the planner's
// scan/decompression deltas are written to BENCH_PR2.json (CI artifact).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;

namespace {

struct Pass {
  jb::TrainResult train;
  jb::plan::PlanStats stats;
  std::vector<jb::exec::Database::QueryLogEntry> log;
  size_t features = 0;
};

Pass RunPass(bool use_planner) {
  jb::EngineProfile profile = jb::EngineProfile::DSwap();
  profile.use_planner = use_planner;
  jb::exec::Database db(profile);
  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(100000);
  jb::Dataset ds = jb::data::MakeFavorita(&db, config);

  jb::core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 1;
  params.num_leaves = 8;
  db.ClearQueryLog();
  db.ClearPlanStats();
  Pass pass;
  pass.train = jb::Train(params, ds);
  pass.stats = db.PlanStatsTotals();
  pass.log = db.QueryLog();
  pass.features = ds.graph().AllFeatures().size();
  return pass;
}

void EmitPass(std::FILE* f, const char* name, const Pass& p, bool last) {
  const jb::plan::PlanStats& s = p.stats;
  std::fprintf(
      f,
      "  \"%s\": {\n"
      "    \"seconds\": %.4f,\n"
      "    \"message_seconds\": %.4f,\n"
      "    \"feature_seconds\": %.4f,\n"
      "    \"update_seconds\": %.4f,\n"
      "    \"message_queries\": %zu,\n"
      "    \"feature_queries\": %zu,\n"
      "    \"queries_planned\": %zu,\n"
      "    \"rows_scan_input\": %zu,\n"
      "    \"rows_scan_output\": %zu,\n"
      "    \"cols_scanned\": %zu,\n"
      "    \"cols_pruned\": %zu,\n"
      "    \"cols_decompressed\": %zu,\n"
      "    \"cells_decompressed\": %zu,\n"
      "    \"predicates_pushed\": %zu,\n"
      "    \"joins_reordered\": %zu\n"
      "  }%s\n",
      name, p.train.seconds, p.train.message_seconds, p.train.feature_seconds,
      p.train.update_seconds, p.train.message_queries, p.train.feature_queries,
      s.queries_planned, s.rows_scan_input, s.rows_scan_output, s.cols_scanned,
      s.cols_pruned, s.cols_decompressed, s.cells_decompressed,
      s.predicates_pushed, s.joins_reordered, last ? "" : ",");
}

double Reduction(size_t off, size_t on) {
  if (off == 0) return 0.0;
  return 1.0 - static_cast<double>(on) / static_cast<double>(off);
}

void WriteJson(const Pass& on, const Pass& off, size_t sales_rows) {
  const char* path = std::getenv("JB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_PR2.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("  -- could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig09_query_breakdown\",\n"
               "  \"scale\": %.3f,\n"
               "  \"sales_rows\": %zu,\n",
               jb::bench::Scale(), sales_rows);
  EmitPass(f, "planner_on", on, /*last=*/false);
  EmitPass(f, "planner_off", off, /*last=*/false);
  std::fprintf(
      f,
      "  \"delta\": {\n"
      "    \"rows_scanned_reduction\": %.4f,\n"
      "    \"cols_decompressed_reduction\": %.4f,\n"
      "    \"cells_decompressed_reduction\": %.4f,\n"
      "    \"speedup\": %.3f\n"
      "  }\n"
      "}\n",
      Reduction(off.stats.rows_scan_output, on.stats.rows_scan_output),
      Reduction(off.stats.cols_decompressed, on.stats.cols_decompressed),
      Reduction(off.stats.cells_decompressed, on.stats.cells_decompressed),
      on.train.seconds > 0 ? off.train.seconds / on.train.seconds : 0.0);
  std::fclose(f);
  std::printf("  -- wrote %s\n", path);
}

}  // namespace

int main() {
  Header("Figure 9: 1st-iteration query breakdown",
         "num_nodes x num_features split queries (fast, <10ms-class) plus a "
         "few message queries; the slowest queries are messages from the "
         "fact table");

  size_t sales_rows = jb::bench::ScaledRows(100000);
  Pass on = RunPass(/*use_planner=*/true);

  std::printf("  (a) query counts: feature=%zu message=%zu\n",
              on.train.feature_queries, on.train.message_queries);
  Note("expected feature queries = 15 nodes x " +
       std::to_string(on.features) +
       " features = " + std::to_string(15 * on.features));

  // Latency histogram, split by tag.
  std::vector<double> feature_ms, message_ms;
  for (const auto& e : on.log) {
    if (e.tag == "feature") feature_ms.push_back(e.ms);
    if (e.tag == "message") message_ms.push_back(e.ms);
  }
  auto histo = [](const std::string& label, std::vector<double> ms) {
    if (ms.empty()) return;
    std::sort(ms.begin(), ms.end());
    std::printf("  (b) %s latency ms: p50=%.2f p90=%.2f max=%.2f\n",
                label.c_str(), ms[ms.size() / 2], ms[ms.size() * 9 / 10],
                ms.back());
    // Buckets (log2 ms).
    std::vector<int> buckets(12, 0);
    for (double m : ms) {
      int b = m <= 1 ? 0 : std::min(11, 1 + static_cast<int>(std::log2(m)));
      ++buckets[static_cast<size_t>(b)];
    }
    std::printf("      histogram(<=1ms,2,4,8,...):");
    for (int b : buckets) std::printf(" %d", b);
    std::printf("\n");
  };
  histo("feature-split", feature_ms);
  histo("message", message_ms);

  double fmax = feature_ms.empty()
                    ? 0
                    : *std::max_element(feature_ms.begin(), feature_ms.end());
  double mmax = message_ms.empty()
                    ? 0
                    : *std::max_element(message_ms.begin(), message_ms.end());
  Note(std::string("slowest message vs slowest split query: ") +
       std::to_string(mmax) + "ms vs " + std::to_string(fmax) + "ms");

  // (c) planner on/off: same workload, raw-AST execution.
  Pass off = RunPass(/*use_planner=*/false);
  std::printf("  (c) planner delta (on vs off):\n");
  std::printf("      train seconds       %8.3f vs %8.3f\n", on.train.seconds,
              off.train.seconds);
  std::printf("      rows out of scans   %8zu vs %8zu (-%.1f%%)\n",
              on.stats.rows_scan_output, off.stats.rows_scan_output,
              100 * Reduction(off.stats.rows_scan_output,
                              on.stats.rows_scan_output));
  std::printf("      cols decompressed   %8zu vs %8zu (-%.1f%%)\n",
              on.stats.cols_decompressed, off.stats.cols_decompressed,
              100 * Reduction(off.stats.cols_decompressed,
                              on.stats.cols_decompressed));
  std::printf("      cells decompressed  %8zu vs %8zu (-%.1f%%)\n",
              on.stats.cells_decompressed, off.stats.cells_decompressed,
              100 * Reduction(off.stats.cells_decompressed,
                              on.stats.cells_decompressed));
  Note("planner rules fired: pushed=" +
       std::to_string(on.stats.predicates_pushed) +
       " folded=" + std::to_string(on.stats.constants_folded) +
       " reordered=" + std::to_string(on.stats.joins_reordered));

  WriteJson(on, off, sales_rows);
  return 0;
}
