// Figure 9: query mix of the first gradient-boosting iteration — number of
// feature-split vs message-passing queries, and the latency histogram.
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;

int main() {
  Header("Figure 9: 1st-iteration query breakdown",
         "num_nodes x num_features split queries (fast, <10ms-class) plus a "
         "few message queries; the slowest queries are messages from the "
         "fact table");

  jb::exec::Database db(jb::EngineProfile::DSwap());
  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(100000);
  jb::Dataset ds = jb::data::MakeFavorita(&db, config);

  jb::core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 1;
  params.num_leaves = 8;
  db.ClearQueryLog();
  jb::TrainResult res = jb::Train(params, ds);

  size_t features = ds.graph().AllFeatures().size();
  std::printf("  (a) query counts: feature=%zu message=%zu\n",
              res.feature_queries, res.message_queries);
  Note("expected feature queries = 15 nodes x " + std::to_string(features) +
       " features = " + std::to_string(15 * features));

  // Latency histogram, split by tag.
  auto log = db.QueryLog();
  std::vector<double> feature_ms, message_ms;
  for (const auto& e : log) {
    if (e.tag == "feature") feature_ms.push_back(e.ms);
    if (e.tag == "message") message_ms.push_back(e.ms);
  }
  auto histo = [](const std::string& label, std::vector<double> ms) {
    if (ms.empty()) return;
    std::sort(ms.begin(), ms.end());
    std::printf("  (b) %s latency ms: p50=%.2f p90=%.2f max=%.2f\n",
                label.c_str(), ms[ms.size() / 2], ms[ms.size() * 9 / 10],
                ms.back());
    // Buckets (log2 ms).
    std::vector<int> buckets(12, 0);
    for (double m : ms) {
      int b = m <= 1 ? 0 : std::min(11, 1 + static_cast<int>(std::log2(m)));
      ++buckets[static_cast<size_t>(b)];
    }
    std::printf("      histogram(<=1ms,2,4,8,...):");
    for (int b : buckets) std::printf(" %d", b);
    std::printf("\n");
  };
  histo("feature-split", feature_ms);
  histo("message", message_ms);

  double fmax = feature_ms.empty()
                    ? 0
                    : *std::max_element(feature_ms.begin(), feature_ms.end());
  double mmax = message_ms.empty()
                    ? 0
                    : *std::max_element(message_ms.begin(), message_ms.end());
  Note(std::string("slowest message vs slowest split query: ") +
       std::to_string(mmax) + "ms vs " + std::to_string(fmax) + "ms");
  return 0;
}
