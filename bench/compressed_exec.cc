// Compressed-execution sweep (PR 6): the same scan/filter/join/agg shapes
// run with compressed execution ON (predicates evaluated in code space,
// zone-map block skipping, hash keys mixed from FOR deltas / dictionary
// ids) vs OFF (decode-first, the pre-PR6 engine), over a Favorita-like
// fact whose sort key gives range predicates real blocks to skip. The
// deterministic decode-work counters of the ON pass are guarded by CI
// (bench/baselines/BENCH_PR6.json via tools/compare_bench.py).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "joinboost.h"
#include "util/rng.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;

namespace {

double Seconds(const std::function<void()>& fn, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Shape {
  std::string name;
  std::string sql;
};

/// The fact is generated date-ordered (column `k` ascending), like the real
/// Favorita feed: frame-of-reference blocks carry tight min/max ranges, so
/// the range shapes below can answer from zone maps alone.
void LoadFact(jb::exec::Database* db, size_t rows, size_t dim_rows) {
  jb::Rng rng(97);
  std::vector<int64_t> k(rows);
  std::vector<double> v(rows);
  std::vector<std::string> cat(rows), skey(rows);
  for (size_t i = 0; i < rows; ++i) {
    k[i] = static_cast<int64_t>(i);
    v[i] = rng.NextDouble();
    cat[i] = "c" + std::to_string(rng.NextInt(0, 15));
    skey[i] = "s" + std::to_string(rng.NextInt(
                        0, static_cast<int64_t>(dim_rows) - 1));
  }
  db->LoadTable(jb::TableBuilder("f")
                    .AddInts("k", k)
                    .AddDoubles("v", v)
                    .AddStrings("cat", cat)
                    .AddStrings("skey", skey)
                    .Build());
  std::vector<std::string> dkey(dim_rows);
  std::vector<double> dw(dim_rows);
  for (size_t i = 0; i < dim_rows; ++i) {
    // Reverse insertion order: the dimension owns a different dictionary
    // than the fact, so the join below takes the cross-dictionary remap.
    dkey[i] = "s" + std::to_string(dim_rows - 1 - i);
    dw[i] = rng.NextDouble();
  }
  db->LoadTable(jb::TableBuilder("d")
                    .AddStrings("skey", dkey)
                    .AddDoubles("w", dw)
                    .Build());
}

struct SweepResult {
  std::string name;
  double decoded_seconds = 0;
  double encoded_seconds = 0;
  double speedup = 0;
};

}  // namespace

int main() {
  Header("Compressed execution sweep (PR 6)",
         "scan/filter/join/agg shapes, decode-first vs in-place on "
         "dictionary ids and frame-of-reference blocks; deterministic "
         "decode-work counters CI-guarded");

  const size_t rows = jb::bench::ScaledRows(400000);
  const size_t dim_rows = 2000;
  jb::EngineProfile on_profile = jb::EngineProfile::DSwap();
  on_profile.compressed_exec = true;
  jb::EngineProfile off_profile = on_profile;
  off_profile.compressed_exec = false;
  jb::exec::Database on_db(on_profile);
  jb::exec::Database off_db(off_profile);
  LoadFact(&on_db, rows, dim_rows);
  LoadFact(&off_db, rows, dim_rows);

  char range[256];
  std::snprintf(range, sizeof(range),
                "SELECT COUNT(*) AS c, SUM(f.v) AS s FROM f "
                "WHERE f.k BETWEEN %zu AND %zu",
                rows / 2, rows / 2 + rows / 100);
  char tail[256];
  std::snprintf(tail, sizeof(tail),
                "SELECT f.cat AS g, COUNT(*) AS c, AVG(f.v) AS a FROM f "
                "WHERE f.k >= %zu GROUP BY f.cat",
                rows - rows / 20);
  char joinq[256];
  std::snprintf(joinq, sizeof(joinq),
                "SELECT d.w AS w, SUM(f.v) AS s FROM f "
                "JOIN d ON f.skey = d.skey WHERE f.k < %zu GROUP BY d.w",
                rows / 4);
  const Shape shapes[] = {
      {"selective_range", range},
      {"eq_absent", "SELECT COUNT(*) AS c FROM f WHERE f.cat = 'nope'"},
      {"in_list",
       "SELECT f.cat AS g, SUM(f.v) AS s FROM f "
       "WHERE f.cat IN ('c1', 'c3', 'c5', 'nope') GROUP BY f.cat"},
      {"crossdict_join", joinq},
      {"tail_group_agg", tail},
  };

  const int reps = 5;
  std::vector<SweepResult> sweep;
  double total_on = 0, total_off = 0;
  size_t sink = 0;
  for (const Shape& s : shapes) {
    SweepResult r;
    r.name = s.name;
    size_t on_rows = 0, off_rows = 0;
    r.encoded_seconds =
        Seconds([&] { on_rows = on_db.Query(s.sql)->rows; }, reps);
    r.decoded_seconds =
        Seconds([&] { off_rows = off_db.Query(s.sql)->rows; }, reps);
    if (on_rows != off_rows) {
      std::printf("  !! %s: encoded %zu rows vs decoded %zu rows\n",
                  s.name.c_str(), on_rows, off_rows);
      return 1;
    }
    sink += on_rows;
    r.speedup =
        r.encoded_seconds > 0 ? r.decoded_seconds / r.encoded_seconds : 0;
    total_on += r.encoded_seconds;
    total_off += r.decoded_seconds;
    std::printf("  %-18s decoded %8.4fs  encoded %8.4fs  speedup %5.2fx\n",
                s.name.c_str(), r.decoded_seconds, r.encoded_seconds,
                r.speedup);
    sweep.push_back(r);
  }
  double speedup = total_on > 0 ? total_off / total_on : 0;
  Note("sweep speedup (total decoded / total encoded): " +
       std::to_string(speedup) + "x  [sink " + std::to_string(sink % 10) +
       "]");

  // Counter pass: one run of every shape on the encoded engine. The decode
  // counters derive from per-(column, block) touched bitmaps, so they are
  // thread-count and machine independent — exact values are CI-guarded.
  on_db.ClearPlanStats();
  for (const Shape& s : shapes) sink += on_db.Query(s.sql)->rows;
  jb::plan::PlanStats stats = on_db.PlanStatsTotals();
  std::printf(
      "  counters: cells_decompressed=%zu cells_decompress_avoided=%zu "
      "blocks_skipped=%zu cols_decompressed=%zu\n",
      stats.cells_decompressed, stats.cells_decompress_avoided,
      stats.blocks_skipped, stats.cols_decompressed);

  const char* path = std::getenv("JB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_PR6.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("  -- could not open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"compressed_exec\",\n"
               "  \"scale\": %.3f,\n"
               "  \"rows\": %zu,\n"
               "  \"sweep\": [\n",
               jb::bench::Scale(), rows);
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"decoded_seconds\": %.6f, "
                 "\"encoded_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                 sweep[i].name.c_str(), sweep[i].decoded_seconds,
                 sweep[i].encoded_seconds, sweep[i].speedup,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"speedup\": %.3f,\n"
               "  \"counters\": {\n"
               "    \"engine_queries\": %zu,\n"
               "    \"cells_decompressed\": %zu,\n"
               "    \"cells_decompress_avoided\": %zu,\n"
               "    \"blocks_skipped\": %zu,\n"
               "    \"cols_decompressed\": %zu\n"
               "  }\n"
               "}\n",
               speedup, sizeof(shapes) / sizeof(shapes[0]),
               stats.cells_decompressed, stats.cells_decompress_avoided,
               stats.blocks_skipped, stats.cols_decompressed);
  std::fclose(f);
  std::printf("  -- wrote %s\n", path);
  return 0;
}
