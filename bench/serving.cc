// Serving-layer bench (PR 8): flat-forest batched prediction vs the per-row
// Ensemble::Predict path, and qps / p50 / p99 for N concurrent sessions
// reading pinned snapshots while a background writer publishes appends. The
// deterministic serving counters (snapshots_published, snapshot_reads,
// batched_predictions) are pinned by CI via bench/baselines/BENCH_PR8.json
// and tools/compare_bench.py.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/evaluate.h"
#include "core/flat_forest.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/rng.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;

namespace {

double Seconds(const std::function<void()>& fn, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// Fixed request mix so the serving counters stay scale-independent.
constexpr int kSessionThreads = 4;
constexpr int kRequestsPerThread = 30;  // alternating query / predict
constexpr int kWriterAppends = 6;
constexpr size_t kAppendRows = 500;
constexpr size_t kProbeRows = 4096;  // per prediction request

/// First min(kProbeRows, rows) join rows as a standalone prediction input.
std::shared_ptr<jb::exec::ExecTable> MakeProbe(
    const jb::exec::ExecTable& join) {
  std::vector<uint32_t> idx(std::min(kProbeRows, join.rows));
  for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  auto probe = std::make_shared<jb::exec::ExecTable>();
  probe->rows = idx.size();
  for (const auto& c : join.cols) {
    probe->cols.push_back({c.qualifier, c.name, c.data.Gather(idx)});
  }
  return probe;
}

/// A batch of synthetic sales rows matching the Favorita fact schema.
jb::exec::ExecTable SalesRows(uint64_t seed, size_t n,
                              const jb::data::FavoritaConfig& config) {
  jb::Rng rng(seed);
  std::vector<int64_t> item(n), store(n), date(n);
  std::vector<double> promo(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    item[i] = rng.NextInt(0, static_cast<int64_t>(config.num_items) - 1);
    store[i] = rng.NextInt(0, static_cast<int64_t>(config.num_stores) - 1);
    date[i] = rng.NextInt(0, static_cast<int64_t>(config.num_dates) - 1);
    promo[i] = rng.NextDouble() < 0.1 ? 1.0 : 0.0;
    y[i] = rng.NextGaussian() * 5;
  }
  jb::exec::ExecTable out;
  out.cols.push_back(
      {"", "item_id", jb::exec::VectorData::FromInts(std::move(item))});
  out.cols.push_back(
      {"", "store_id", jb::exec::VectorData::FromInts(std::move(store))});
  out.cols.push_back(
      {"", "date_id", jb::exec::VectorData::FromInts(std::move(date))});
  out.cols.push_back(
      {"", "onpromotion", jb::exec::VectorData::FromDoubles(std::move(promo))});
  out.cols.push_back(
      {"", "unit_sales", jb::exec::VectorData::FromDoubles(std::move(y))});
  // The generator appends `extra_features_per_dim` xs<i> columns to sales.
  for (int x = 0; x < config.extra_features_per_dim; ++x) {
    std::vector<double> xs(n);
    for (auto& v : xs) v = static_cast<double>(rng.NextInt(1, 1000));
    out.cols.push_back({"", "xs" + std::to_string(x),
                        jb::exec::VectorData::FromDoubles(std::move(xs))});
  }
  out.rows = n;
  return out;
}

struct PredictSweep {
  double per_row_seconds = 0;
  double batched_seconds = 0;
  double speedup = 0;
  size_t rows = 0;
};

/// Per-row virtual-dispatch prediction vs the flat-forest batched path over
/// the same probe rows; bit-identity is pinned by tests/serving_test.cc,
/// this measures the dispatch + hash-lookup overhead the compilation removes.
PredictSweep RunPredictSweep(const jb::core::Ensemble& model,
                             const std::shared_ptr<jb::exec::ExecTable>& probe,
                             const jb::core::FlatForest& forest) {
  PredictSweep out;
  out.rows = probe->rows;
  jb::core::JoinedEval eval(probe, "jb_y");
  double sink = 0;
  out.per_row_seconds = Seconds(
      [&] {
        for (size_t r = 0; r < probe->rows; ++r) sink += eval.Predict(model, r);
      },
      5);
  out.batched_seconds = Seconds(
      [&] {
        std::vector<double> preds = forest.PredictBatch(*probe);
        sink += preds.empty() ? 0 : preds[0];
      },
      5);
  out.speedup = out.batched_seconds > 0
                    ? out.per_row_seconds / out.batched_seconds
                    : 0;
  if (sink == 0) std::printf("  -- sink underflow?\n");
  return out;
}

struct ServeSweep {
  double wall_seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t snapshots_published = 0;
  uint64_t snapshot_reads = 0;
  uint64_t batched_predictions = 0;
  uint64_t admission_waits = 0;
};

/// N session threads alternate aggregate queries and batched predictions
/// (re-pinning a fresh snapshot per request) while one background writer
/// appends sales batches and publishes new versions.
ServeSweep RunServeSweep(jb::serve::ServingContext* ctx,
                         const std::shared_ptr<jb::exec::ExecTable>& probe,
                         const jb::data::FavoritaConfig& config) {
  const std::string agg =
      "SELECT COUNT(*) AS c, SUM(sales.unit_sales) AS s FROM sales "
      "JOIN items ON sales.item_id = items.item_id";

  std::vector<std::vector<double>> latencies(kSessionThreads);
  auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kSessionThreads; ++t) {
    threads.emplace_back([&, t] {
      latencies[static_cast<size_t>(t)].reserve(kRequestsPerThread);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        jb::serve::ServingContext::Session s = ctx->OpenSession();
        auto t0 = std::chrono::steady_clock::now();
        if (i % 2 == 0) {
          auto r = s.Query(agg);
          if (r->rows != 1) std::printf("  -- bad aggregate result\n");
        } else {
          std::vector<double> preds = s.PredictBatch(*probe);
          if (preds.size() != probe->rows) std::printf("  -- bad batch\n");
        }
        auto t1 = std::chrono::steady_clock::now();
        latencies[static_cast<size_t>(t)].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  std::thread writer([&] {
    for (int a = 0; a < kWriterAppends; ++a) {
      ctx->Append("sales",
                  SalesRows(9000 + static_cast<uint64_t>(a), kAppendRows,
                            config));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& t : threads) t.join();
  writer.join();
  auto wall1 = std::chrono::steady_clock::now();

  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ServeSweep out;
  out.wall_seconds = std::chrono::duration<double>(wall1 - wall0).count();
  out.qps = out.wall_seconds > 0
                ? static_cast<double>(all.size()) / out.wall_seconds
                : 0;
  out.p50_ms = all[all.size() / 2];
  out.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  out.snapshots_published = ctx->snapshots_published();
  out.snapshot_reads = ctx->snapshot_reads();
  out.batched_predictions = ctx->batched_predictions();
  out.admission_waits = ctx->admission_waits();
  return out;
}

void WriteJson(const PredictSweep& pred, const ServeSweep& serve) {
  const char* path = std::getenv("JB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_PR8.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("  -- could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serving\",\n"
               "  \"scale\": %.3f,\n"
               "  \"predict_per_row_seconds\": %.6f,\n"
               "  \"predict_batched_seconds\": %.6f,\n"
               "  \"predict_speedup\": %.3f,\n"
               "  \"predict_rows\": %zu,\n"
               "  \"serve_wall_seconds\": %.4f,\n"
               "  \"serve_qps\": %.2f,\n"
               "  \"serve_p50_ms\": %.3f,\n"
               "  \"serve_p99_ms\": %.3f,\n"
               "  \"serve_admission_waits\": %llu,\n"
               "  \"counters\": {\n"
               "    \"snapshots_published\": %llu,\n"
               "    \"snapshot_reads\": %llu,\n"
               "    \"batched_predictions\": %llu\n"
               "  }\n"
               "}\n",
               jb::bench::Scale(), pred.per_row_seconds, pred.batched_seconds,
               pred.speedup, pred.rows, serve.wall_seconds, serve.qps,
               serve.p50_ms, serve.p99_ms,
               static_cast<unsigned long long>(serve.admission_waits),
               static_cast<unsigned long long>(serve.snapshots_published),
               static_cast<unsigned long long>(serve.snapshot_reads),
               static_cast<unsigned long long>(serve.batched_predictions));
  std::fclose(f);
  std::printf("  -- wrote %s\n", path);
}

}  // namespace

int main() {
  Header("Serving-layer bench (PR 8)",
         "flat-forest batched prediction vs per-row dispatch; qps and tail "
         "latency for concurrent snapshot-pinned sessions with a background "
         "writer publishing appends");

  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(40000);

  jb::exec::Database db(jb::EngineProfile::DSwap());
  jb::Dataset ds = jb::data::MakeFavorita(&db, config);

  jb::core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 5;
  params.num_leaves = 16;
  params.learning_rate = 0.2;
  jb::TrainResult res = jb::Train(params, ds);
  Note("trained " + std::to_string(res.model.trees.size()) + " trees on " +
       std::to_string(config.sales_rows) + " sales rows");

  jb::core::JoinedEval eval = jb::core::MaterializeJoin(ds);
  std::shared_ptr<jb::exec::ExecTable> probe = MakeProbe(eval.table());
  jb::core::FlatForest forest = jb::core::FlatForest::Compile(res.model);

  PredictSweep pred = RunPredictSweep(res.model, probe, forest);
  std::printf(
      "  predict %zu rows x %zu trees: per-row %8.4fs  batched %8.4fs  "
      "speedup %5.2fx\n",
      pred.rows, forest.num_trees(), pred.per_row_seconds,
      pred.batched_seconds, pred.speedup);

  jb::serve::ServingContext ctx(&db,
                                {"sales", "items", "stores", "dates"});
  ctx.PublishModel(res.model);
  ServeSweep serve = RunServeSweep(&ctx, probe, config);
  std::printf(
      "  %d sessions x %d requests + %d appends: qps %8.1f  p50 %7.3fms  "
      "p99 %7.3fms  (admission waits %llu)\n",
      kSessionThreads, kRequestsPerThread, kWriterAppends, serve.qps,
      serve.p50_ms, serve.p99_ms,
      static_cast<unsigned long long>(serve.admission_waits));
  Row("serve wall", serve.wall_seconds);
  std::printf(
      "  counters: published=%llu reads=%llu batched_predictions=%llu\n",
      static_cast<unsigned long long>(serve.snapshots_published),
      static_cast<unsigned long long>(serve.snapshot_reads),
      static_cast<unsigned long long>(serve.batched_predictions));

  WriteJson(pred, serve);
  return 0;
}
