// Figure 17 (Appendix C.1): gradient boosting and random forest on
// TPC-DS-like and TPC-H-like schemas vs the ML-library baseline with its
// join+export prefix.
#include "baselines/dense_dataset.h"
#include "baselines/histogram_gbdt.h"
#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;
using jb::bench::Series;

int main() {
  jb::data::TpcdsConfig config;
  config.scale_factor = 1.0;
  config.base_fact_rows = jb::bench::ScaledRows(30000);
  config.num_features = 12;

  const std::vector<int> checkpoints = {5, 10, 25};

  for (const char* mode : {"gbdt", "rf"}) {
    bool is_rf = std::string(mode) == "rf";
    Header(std::string("Figure 17: ") + (is_rf ? "random forest" : "GBDT") +
               " on TPC-DS-like data",
           is_rf ? "JoinBoost ~3x faster" : "JoinBoost ~1.3x faster");

    jb::core::TrainParams params;
    params.boosting = mode;
    params.num_leaves = 8;
    params.inter_query_parallelism = is_rf;

    std::vector<double> jb_times;
    {
      jb::exec::Database db(jb::EngineProfile::DSwap());
      jb::Dataset ds = jb::data::MakeTpcds(&db, config);
      double total = 0;
      int done = 0;
      for (int cp : checkpoints) {
        params.num_iterations = cp - done;
        params.seed = 42 + static_cast<uint64_t>(done);
        jb::Timer t;
        jb::Train(params, ds);
        total += t.Seconds();
        done = cp;
        jb_times.push_back(total);
      }
    }
    std::vector<double> lgbm_times;
    {
      jb::exec::Database db(jb::EngineProfile::DSwap());
      jb::Dataset ds = jb::data::MakeTpcds(&db, config);
      jb::Timer t;
      jb::baselines::DenseDataset dense =
          jb::baselines::MaterializeExportLoad(ds, nullptr);
      double prefix = t.Seconds();
      Row("Join+Export+Load", prefix);
      jb::ThreadPool pool(8);
      for (int cp : checkpoints) {
        jb::core::TrainParams lp = params;
        lp.num_iterations = cp;
        jb::baselines::HistogramGbdt trainer(lp, &pool);
        jb::Timer tt;
        trainer.Train(dense);
        lgbm_times.push_back(prefix + tt.Seconds());
      }
    }
    std::vector<double> xs(checkpoints.begin(), checkpoints.end());
    Series("JoinBoost", xs, jb_times);
    Series("LightGBM", xs, lgbm_times);
  }
  Note("TPC-H-like shape: large dimension tables (Orders/PartSupp) make "
       "fact-side messages expensive; the paper defers hypertree redesign "
       "to future work — reproduced qualitatively by the SF sweep above");
  return 0;
}
