// Cost-based optimizer bench (PR 7): plan-once-execute-many planning
// speedup from the normalized-shape plan cache, DP vs greedy join ordering
// on a Favorita training run, and the deterministic planner counters the
// CI guard pins (bench/baselines/BENCH_PR7.json via tools/compare_bench.py).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "plan/plan_cache.h"
#include "sql/parser.h"
#include "stats/stats_manager.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;

namespace {

double Seconds(const std::function<void()>& fn, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Pure planning micro-bench: the trainer plans the same handful of query
/// shapes hundreds of times per training run (only literals change). With
/// the shape cache the steady-state cost of PlanSelect is one key build +
/// lookup; without it every call re-runs statistics lookups and the DP
/// enumeration.
struct PlanSweep {
  double cold_seconds = 0;   ///< no cache: full stats + DP every call
  double cached_seconds = 0; ///< shape cache: first call misses, rest hit
  double speedup = 0;
  size_t plans = 0;
};

PlanSweep RunPlanSweep(jb::exec::Database* db) {
  // Trainer-shaped statements over Favorita: message passing up a
  // three-level snowflake, semi-join selector chains, total aggregates.
  const char* queries[] = {
      "SELECT sales.item_id AS k, SUM(sales.unit_sales) AS g, COUNT(*) AS h "
      "FROM sales JOIN items ON sales.item_id = items.item_id "
      "WHERE items.f_item > 0 GROUP BY sales.item_id",
      "SELECT SUM(sales.unit_sales) AS g, COUNT(*) AS h FROM sales "
      "SEMI JOIN stores ON sales.store_id = stores.store_id "
      "SEMI JOIN dates ON sales.date_id = dates.date_id",
      "SELECT sales.store_id AS k, SUM(sales.unit_sales) AS g FROM sales "
      "JOIN stores ON sales.store_id = stores.store_id "
      "JOIN dates ON sales.date_id = dates.date_id "
      "WHERE dates.f_date > 0.5 GROUP BY sales.store_id",
  };
  std::vector<jb::sql::Statement> parsed;
  for (const char* q : queries) parsed.push_back(jb::sql::Parse(q));
  // A 10-dimension star widens the DP search to 2^10 subsets — the cost the
  // shape cache exists to amortize across the trainer's repeated shapes.
  std::string wide = "SELECT SUM(wide_fact.v) AS s FROM wide_fact";
  for (int d = 0; d < 10; ++d) {
    std::string k = "k" + std::to_string(d);
    std::string t = "wd" + std::to_string(d);
    wide += " JOIN " + t + " ON wide_fact." + k + " = " + t + "." + k;
  }
  parsed.push_back(jb::sql::Parse(wide));

  const int kRounds = 200;
  PlanSweep out;
  out.plans = static_cast<size_t>(kRounds) * parsed.size();
  size_t sink = 0;
  out.cold_seconds = Seconds(
      [&] {
        jb::stats::StatsManager stats;
        jb::plan::PlannerContext ctx;
        ctx.stats = &stats;  // statistics but no memoized decisions
        for (int r = 0; r < kRounds; ++r) {
          for (const auto& stmt : parsed) {
            auto lp = jb::plan::PlanSelect(*stmt.select, db->catalog(),
                                           /*for_explain=*/false,
                                           jb::plan::ParallelPolicy(), &ctx);
            sink += lp.root ? 1u : 0u;
          }
        }
      },
      3);
  out.cached_seconds = Seconds(
      [&] {
        jb::stats::StatsManager stats;
        jb::plan::PlanCache cache;
        jb::plan::PlannerContext ctx;
        ctx.stats = &stats;
        ctx.cache = &cache;
        for (int r = 0; r < kRounds; ++r) {
          for (const auto& stmt : parsed) {
            auto lp = jb::plan::PlanSelect(*stmt.select, db->catalog(),
                                           /*for_explain=*/false,
                                           jb::plan::ParallelPolicy(), &ctx);
            sink += lp.root ? 1u : 0u;
          }
        }
      },
      3);
  out.speedup =
      out.cached_seconds > 0 ? out.cold_seconds / out.cached_seconds : 0;
  if (sink == 0) std::printf("  -- sink underflow?\n");
  return out;
}

/// End-to-end: a short gradient-boosting run with the cost-based planner on
/// (DP ordering + shape cache) vs off (greedy reference). Results are
/// bit-identical by contract (tests/stats_test.cc pins that); this measures
/// the time delta and captures the deterministic counters.
struct TrainResultRow {
  double cost_seconds = 0;
  double greedy_seconds = 0;
  jb::plan::PlanStats stats;  ///< cost-based run, delta over training
};

TrainResultRow RunTrainComparison() {
  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(40000);

  jb::core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 2;
  params.num_leaves = 8;
  params.learning_rate = 0.2;

  TrainResultRow out;
  for (bool cost_based : {true, false}) {
    jb::EngineProfile profile = jb::EngineProfile::DSwap();
    profile.cost_based_planner = cost_based;
    jb::exec::Database db(profile);
    jb::Dataset ds = jb::data::MakeFavorita(&db, config);
    auto t0 = std::chrono::steady_clock::now();
    jb::TrainResult res = jb::Train(params, ds);
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    if (cost_based) {
      out.cost_seconds = secs;
      out.stats = res.plan_stats;
    } else {
      out.greedy_seconds = secs;
    }
  }
  return out;
}

void WriteJson(const PlanSweep& sweep, const TrainResultRow& train) {
  const char* path = std::getenv("JB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_PR7.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("  -- could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"plan_cache\",\n"
               "  \"scale\": %.3f,\n"
               "  \"plan_cold_seconds\": %.6f,\n"
               "  \"plan_cached_seconds\": %.6f,\n"
               "  \"plan_speedup\": %.3f,\n"
               "  \"train_cost_based_seconds\": %.4f,\n"
               "  \"train_greedy_seconds\": %.4f,\n"
               "  \"counters\": {\n"
               "    \"queries_planned\": %zu,\n"
               "    \"plan_cache_hits\": %zu,\n"
               "    \"plan_cache_misses\": %zu,\n"
               "    \"joins_reordered_dp\": %zu\n"
               "  }\n"
               "}\n",
               jb::bench::Scale(), sweep.cold_seconds, sweep.cached_seconds,
               sweep.speedup, train.cost_seconds, train.greedy_seconds,
               train.stats.queries_planned, train.stats.plan_cache_hits,
               train.stats.plan_cache_misses, train.stats.joins_reordered_dp);
  std::fclose(f);
  std::printf("  -- wrote %s\n", path);
}

}  // namespace

int main() {
  Header("Cost-based optimizer bench (PR 7)",
         "shape-cache plan-once-execute-many speedup; DP vs greedy join "
         "ordering on a short Favorita training run; deterministic planner "
         "counters");

  // Both passes plan against the same catalog the training run uses.
  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(40000);
  jb::exec::Database plan_db(jb::EngineProfile::DSwap());
  jb::data::MakeFavorita(&plan_db, config);
  {
    // The 10-dimension star the wide sweep statement plans against. Key
    // ranges differ per dimension so the DP has genuine choices to rank.
    jb::Rng rng(7);
    const size_t n = 4000;
    jb::TableBuilder fact("wide_fact");
    for (int d = 0; d < 10; ++d) {
      std::vector<int64_t> k(n);
      int64_t range = 10 + 37 * d;
      for (auto& x : k) x = rng.NextInt(0, range);
      fact.AddInts("k" + std::to_string(d), k);
    }
    std::vector<double> v(n);
    for (auto& x : v) x = rng.NextDouble();
    fact.AddDoubles("v", v);
    plan_db.RegisterTable(fact.Build());
    for (int d = 0; d < 10; ++d) {
      int64_t range = 10 + 37 * d;
      std::vector<int64_t> k(static_cast<size_t>(range) + 1);
      std::vector<double> a(k.size());
      for (size_t i = 0; i < k.size(); ++i) {
        k[i] = static_cast<int64_t>(i);
        a[i] = rng.NextDouble();
      }
      plan_db.RegisterTable(jb::TableBuilder("wd" + std::to_string(d))
                                .AddInts("k" + std::to_string(d), k)
                                .AddDoubles("a", a)
                                .Build());
    }
  }
  PlanSweep sweep = RunPlanSweep(&plan_db);
  std::printf(
      "  planning %zu stmts: cold %8.4fs  cached %8.4fs  speedup %5.2fx\n",
      sweep.plans, sweep.cold_seconds, sweep.cached_seconds, sweep.speedup);

  TrainResultRow train = RunTrainComparison();
  std::printf(
      "  gbdt x2 iters: cost-based %7.3fs  greedy %7.3fs\n"
      "  counters: planned=%zu hits=%zu misses=%zu reordered_dp=%zu\n",
      train.cost_seconds, train.greedy_seconds, train.stats.queries_planned,
      train.stats.plan_cache_hits, train.stats.plan_cache_misses,
      train.stats.joins_reordered_dp);
  double hit_rate =
      train.stats.queries_planned > 0
          ? static_cast<double>(train.stats.plan_cache_hits) /
                static_cast<double>(train.stats.queries_planned)
          : 0;
  Note("plan-cache hit rate over training: " + std::to_string(hit_rate));

  WriteJson(sweep, train);
  return 0;
}
