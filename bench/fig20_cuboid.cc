// Figure 20 (Appendix D.3): histogram-based cuboid optimization. With few
// bins the cuboid is tiny and training accelerates by orders of magnitude
// while still converging; LightGBM barely benefits from fewer bins.
#include "baselines/dense_dataset.h"
#include "baselines/histogram_gbdt.h"
#include "bench_util.h"
#include "data/generators.h"
#include "factor/cuboid.h"
#include "joinboost.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;
using jb::bench::Series;

int main() {
  Header("Figure 20: histogram-based cuboid",
         "(a) with 5-10 bins JoinBoost speeds up dramatically (small cuboid); "
         "LightGBM changes little. (b) few-bin runs push the time-accuracy "
         "Pareto frontier and converge fast");

  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(80000);
  config.extra_features_per_dim = 0;  // 7 features -> meaningful cuboid

  jb::core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 10;
  params.num_leaves = 8;
  params.learning_rate = 0.2;

  for (int bins : {5, 10, 1000}) {
    jb::exec::Database db(jb::EngineProfile::DSwap());
    jb::Dataset ds = jb::data::MakeFavorita(&db, config);
    params.max_bin = bins;
    jb::Timer t;
    jb::factor::CuboidResult res = jb::factor::TrainCuboidGbdt(ds, params);
    Row("JoinBoost bins=" + std::to_string(bins) + " (cuboid rows " +
            std::to_string(res.cuboid_rows) + ")",
        t.Seconds());
    // Learning curve (b): rmse per iteration.
    std::vector<double> xs;
    for (size_t i = 0; i < res.rmse_curve.size(); ++i) {
      xs.push_back(static_cast<double>(i));
    }
    Series("rmse bins=" + std::to_string(bins), xs, res.rmse_curve);

    jb::baselines::DenseDataset dense =
        jb::baselines::MaterializeExportLoad(ds, nullptr);
    jb::core::TrainParams lp = params;
    jb::baselines::HistogramGbdt trainer(lp);
    jb::Timer lt;
    trainer.Train(dense);
    Row("LightGBM bins=" + std::to_string(bins), lt.Seconds());
  }
  Note("at bins=5 the cuboid has ~1e3-1e4 groups vs 1e5+ fact rows, so every "
       "training query touches orders of magnitude less data");
  return 0;
}
