// Figure 18: (a) intra-query thread sweep for one tree; (b) inter-query
// parallelism on/off for gradient boosting (-28%) and random forest (-35%).
#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Row;

int main() {
  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(80000);

  Header("Figure 18a: intra-query parallelism (threads per query)",
         "improves up to ~4 threads, then diminishing returns");
  for (int threads : {1, 2, 4, 8, 16}) {
    jb::EngineProfile profile = jb::EngineProfile::DSwap();
    profile.intra_query_threads = threads;
    jb::exec::Database db(profile);
    jb::Dataset ds = jb::data::MakeFavorita(&db, config);
    jb::core::TrainParams params;
    params.boosting = "dt";
    params.num_leaves = 8;
    jb::Timer t;
    jb::Train(params, ds);
    Row("threads=" + std::to_string(threads), t.Seconds());
  }

  Header("Figure 18b: inter-query parallelism",
         "GBDT ~28% faster, random forest ~35% faster with the dependency "
         "scheduler (4 intra-query threads + the rest across queries)");
  for (const char* mode : {"gbdt", "rf"}) {
    for (bool para : {false, true}) {
      jb::EngineProfile profile = jb::EngineProfile::DSwap();
      profile.intra_query_threads = para ? 4 : 16;
      jb::exec::Database db(profile);
      jb::Dataset ds = jb::data::MakeFavorita(&db, config);
      jb::core::TrainParams params;
      params.boosting = mode;
      params.num_iterations = 10;
      params.num_leaves = 8;
      params.inter_query_parallelism = para;
      jb::Timer t;
      jb::Train(params, ds);
      Row(std::string(mode) + (para ? " para" : " w/o"), t.Seconds());
    }
  }
  return 0;
}
