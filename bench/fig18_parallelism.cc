// Figure 18: (a) intra-query thread sweep for one tree; (b) inter-query
// parallelism on/off for gradient boosting (-28%) and random forest (-35%).
// Extended with a morsel-sweep section: the Favorita smoke query (a
// message-passing-shaped join + GROUP BY aggregate) is timed at 1/2/4/8
// exec_threads and the results — including morsel/steal counters — are
// written to BENCH_PR3.json (CI artifact).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;

namespace {

/// The message-passing query shape of one boosting iteration (paper §5.3):
/// probe the fact table, absorb a dimension message, aggregate per join key.
const char* kSmokeQuery =
    "SELECT sales.item_id, SUM(sales.unit_sales * items.f_item) AS g, "
    "COUNT(*) AS c FROM sales JOIN items ON sales.item_id = items.item_id "
    "WHERE sales.onpromotion > 0.5 GROUP BY sales.item_id";

struct SweepPoint {
  int requested = 0;
  int effective = 0;
  double best_seconds = 0;
  double total_seconds = 0;
  size_t rows_out = 0;
  size_t morsels = 0;
  size_t steals = 0;
};

SweepPoint RunSweepPoint(int threads, const jb::data::FavoritaConfig& config,
                         int reps) {
  jb::EngineProfile profile = jb::EngineProfile::DSwap();
  profile.exec_threads = threads;
  jb::exec::Database db(profile);
  jb::data::MakeFavorita(&db, config);

  SweepPoint pt;
  pt.requested = threads;
  pt.effective = db.exec_threads();
  db.Query(kSmokeQuery);  // warm-up: touches/decompresses every column once
  db.ClearPlanStats();
  pt.best_seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    jb::Timer t;
    auto res = db.Query(kSmokeQuery);
    double s = t.Seconds();
    pt.rows_out = res->rows;
    pt.total_seconds += s;
    pt.best_seconds = std::min(pt.best_seconds, s);
  }
  jb::plan::PlanStats stats = db.PlanStatsTotals();
  pt.morsels = stats.morsels_dispatched;
  pt.steals = stats.morsels_stolen;
  return pt;
}

void WriteJson(const std::vector<SweepPoint>& sweep, size_t sales_rows,
               int reps) {
  const char* path = std::getenv("JB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_PR3.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("could not write %s\n", path);
    return;
  }
  double t1 = 0;
  for (const auto& pt : sweep) {
    if (pt.requested == 1) t1 = pt.best_seconds;
  }
  std::fprintf(f,
               "{\n"
               "  \"figure\": \"fig18_morsel_sweep\",\n"
               "  \"query\": \"favorita_smoke_message\",\n"
               "  \"sales_rows\": %zu,\n"
               "  \"reps\": %d,\n"
               "  \"threads\": {\n",
               sales_rows, reps);
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& pt = sweep[i];
    std::fprintf(f,
                 "    \"%d\": {\n"
                 "      \"effective_threads\": %d,\n"
                 "      \"best_seconds\": %.6f,\n"
                 "      \"total_seconds\": %.6f,\n"
                 "      \"rows_out\": %zu,\n"
                 "      \"morsels_dispatched\": %zu,\n"
                 "      \"morsels_stolen\": %zu,\n"
                 "      \"speedup_vs_1\": %.3f\n"
                 "    }%s\n",
                 pt.requested, pt.effective, pt.best_seconds, pt.total_seconds,
                 pt.rows_out, pt.morsels, pt.steals,
                 pt.best_seconds > 0 ? t1 / pt.best_seconds : 0.0,
                 i + 1 < sweep.size() ? "," : "");
  }
  double t4 = 0;
  for (const auto& pt : sweep) {
    if (pt.requested == 4) t4 = pt.best_seconds;
  }
  std::fprintf(f,
               "  },\n"
               "  \"speedup_4_threads\": %.3f\n"
               "}\n",
               t4 > 0 ? t1 / t4 : 0.0);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(80000);

  Header("Figure 18a: intra-query parallelism (threads per query)",
         "improves up to ~4 threads, then diminishing returns");
  for (int threads : {1, 2, 4, 8, 16}) {
    jb::EngineProfile profile = jb::EngineProfile::DSwap();
    profile.exec_threads = threads;
    jb::exec::Database db(profile);
    jb::Dataset ds = jb::data::MakeFavorita(&db, config);
    jb::core::TrainParams params;
    params.boosting = "dt";
    params.num_leaves = 8;
    jb::Timer t;
    jb::Train(params, ds);
    Row("threads=" + std::to_string(threads), t.Seconds());
  }

  Header("Figure 18b: inter-query parallelism",
         "GBDT ~28% faster, random forest ~35% faster with the dependency "
         "scheduler (4 intra-query threads + the rest across queries)");
  for (const char* mode : {"gbdt", "rf"}) {
    for (bool para : {false, true}) {
      jb::EngineProfile profile = jb::EngineProfile::DSwap();
      profile.exec_threads = para ? 4 : 16;
      jb::exec::Database db(profile);
      jb::Dataset ds = jb::data::MakeFavorita(&db, config);
      jb::core::TrainParams params;
      params.boosting = mode;
      params.num_iterations = 10;
      params.num_leaves = 8;
      params.inter_query_parallelism = para;
      jb::Timer t;
      jb::Train(params, ds);
      Row(std::string(mode) + (para ? " para" : " w/o"), t.Seconds());
    }
  }

  Header("Morsel sweep: Favorita smoke query, 1/2/4/8 exec_threads",
         "morsel-driven scan/join/agg; bit-identical results per thread "
         "count; BENCH_PR3.json artifact");
  jb::data::FavoritaConfig sweep_config;
  sweep_config.sales_rows = jb::bench::ScaledRows(400000);
  const int reps = 5;
  std::vector<SweepPoint> sweep;
  for (int threads : {1, 2, 4, 8}) {
    SweepPoint pt = RunSweepPoint(threads, sweep_config, reps);
    sweep.push_back(pt);
    Row("threads=" + std::to_string(pt.requested) +
            " (effective=" + std::to_string(pt.effective) + ")",
        pt.best_seconds);
    Note("morsels=" + std::to_string(pt.morsels) +
         " stolen=" + std::to_string(pt.steals) +
         " rows_out=" + std::to_string(pt.rows_out));
  }
  WriteJson(sweep, sweep_config.sales_rows, reps);
  return 0;
}
