// Figure 16: decision-tree training vs in-DB ML systems. (a) Naive (full
// materialization) vs Batch (per-node factorized batches; the LMFAO proxy)
// vs JoinBoost (cross-node message caching). (b) vs the MADLib-like
// non-factorized row-based trainer on a reduced dataset.
#include "baselines/dense_dataset.h"
#include "baselines/madlib_like.h"
#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;

int main() {
  Header("Figure 16a: decision tree vs factorized in-DB systems",
         "Naive > Batch (LMFAO proxy) > JoinBoost; message caching across "
         "tree nodes buys ~3x over per-node batching");

  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(40000);

  jb::core::TrainParams params;
  params.boosting = "dt";
  params.num_leaves = 32;
  params.max_depth = 10;

  double t_joinboost = 0;
  for (const char* variant : {"naive", "batch", "factorized"}) {
    jb::exec::Database db(jb::EngineProfile::DSwap());
    jb::Dataset ds = jb::data::MakeFavorita(&db, config);
    params.variant = variant;
    jb::Timer t;
    jb::TrainResult res = jb::Train(params, ds);
    double secs = t.Seconds();
    std::string label = std::string(variant) == "batch"
                            ? "Batch (LMFAO proxy)"
                            : variant;
    Row(label, secs);
    if (std::string(variant) == "factorized") {
      t_joinboost = secs;
      Note("message cache hits=" + std::to_string(res.cache_hits) +
           " misses=" + std::to_string(res.cache_misses));
    }
  }
  Note("LMFAO itself (compiled engine) sits between Batch and JoinBoost; "
       "the paper measures it 1.9x slower than JoinBoost");

  Header("Figure 16b: vs MADLib-like non-factorized trainer (10k rows)",
         "JoinBoost ~16x faster");
  jb::data::FavoritaConfig small = config;
  small.sales_rows = 10000;
  {
    jb::exec::Database db(jb::EngineProfile::DSwap());
    jb::Dataset ds = jb::data::MakeFavorita(&db, small);
    params.variant = "factorized";
    jb::Timer t;
    jb::Train(params, ds);
    double jb_secs = t.Seconds();
    Row("JoinBoost (10k)", jb_secs);
  }
  {
    // MADLib proxy: non-factorized (materialized wide table) training inside
    // a row-oriented engine — tuple-at-a-time execution, no factorization,
    // the cost profile of a PostgreSQL-extension trainer.
    jb::exec::Database db(jb::EngineProfile::XRow());
    jb::Dataset ds = jb::data::MakeFavorita(&db, small);
    jb::core::TrainParams mp = params;
    mp.variant = "naive";
    jb::Timer mt;
    jb::Train(mp, ds);
    double mad_secs = mt.Seconds();
    Row("MADLib-like (10k, row-store naive)", mad_secs);
  }
  (void)t_joinboost;
  return 0;
}
