// Figure 15: train vs residual-update time for one boosting iteration on
// Favorita across engine profiles, including the simulated X-Swap*.
#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;

int main() {
  Header("Figure 15: per-DBMS train and residual-update breakdown (1 tree)",
         "columnar profiles train fast, row store ~4x slower; updates "
         "dominate on baseline DBMSes; DP cuts updates ~15x but slows "
         "training (interop); D-Swap is fastest overall; X-Swap* shows the "
         "commercial engine would benefit similarly");

  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(80000);

  struct Case {
    jb::EngineProfile profile;
    std::string strategy;
  };
  std::vector<Case> cases = {
      {jb::EngineProfile::XCol(), "create"},
      {jb::EngineProfile::XRow(), "create"},
      {jb::EngineProfile::XSwapStar(), "swap"},
      {jb::EngineProfile::DDisk(), "create"},
      {jb::EngineProfile::DMem(), "update"},
      {jb::EngineProfile::DP(), "swap"},
      {jb::EngineProfile::DSwap(), "swap"},
  };

  std::printf("  %-10s %10s %10s %10s\n", "profile", "train(s)", "update(s)",
              "total(s)");
  for (const auto& c : cases) {
    jb::exec::Database db(c.profile);
    jb::Dataset ds = jb::data::MakeFavorita(&db, config);
    // DP stores the fact table as a dataframe: re-register it uncompressed.
    if (c.profile.dataframe_interop) {
      auto fact = db.catalog().Get("sales");
      fact->DecodeAll();
      fact->set_dataframe(true);
    }
    jb::core::TrainParams params;
    params.boosting = "gbdt";
    params.num_iterations = 1;
    params.num_leaves = 8;
    params.update_strategy = c.strategy;

    jb::Timer t;
    jb::TrainResult res = jb::Train(params, ds);
    double total = t.Seconds();
    std::printf("  %-10s %10.3f %10.3f %10.3f\n", c.profile.name.c_str(),
                total - res.update_seconds, res.update_seconds, total);
  }
  Note("X-Swap* = X-col with the simulated column swap of §5.4");
  return 0;
}
