// Figure 14: gradient boosting over the IMDB-like galaxy schema with
// Clustered Predicate Trees. The materialized join is combinatorially huge
// (ML libraries cannot run at all); JoinBoost scales linearly per tree.
#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;
using jb::bench::Series;

int main() {
  Header("Figure 14: galaxy-schema GBDT on IMDB-like data (CPT)",
         "time grows linearly with iterations (~constant per tree); ML "
         "libraries cannot run because the join is too large to materialize");

  jb::data::ImdbConfig config;
  config.num_movies = jb::bench::ScaledRows(2500);
  config.num_persons = jb::bench::ScaledRows(6000);

  jb::exec::Database db(jb::EngineProfile::DSwap());
  jb::Dataset ds = jb::data::MakeImdb(&db, config);
  ds.Prepare();

  // Report the (unmaterialized) join explosion.
  double rows_product = 1;
  for (const auto& rel : ds.graph().relations()) {
    rows_product *= std::max<double>(1.0, static_cast<double>(rel.num_rows));
  }
  Note("base tables total rows: see below; naive cross-size upper bound ~1e" +
       std::to_string(static_cast<int>(std::log10(rows_product))));

  jb::core::TrainParams params;
  params.boosting = "gbdt";
  params.num_leaves = 4;
  params.learning_rate = 0.1;

  std::vector<double> xs, ys;
  double total = 0;
  int done = 0;
  for (int cp : {2, 4, 6, 8, 10}) {
    params.num_iterations = cp - done;
    jb::Timer t;
    jb::Train(params, ds);
    total += t.Seconds();
    done = cp;
    xs.push_back(cp);
    ys.push_back(total);
  }
  Series("JoinBoost galaxy", xs, ys);
  Row("per-tree seconds", total / done);
  Note("LightGBM: CANNOT RUN (join result too large to materialize)");
  return 0;
}
