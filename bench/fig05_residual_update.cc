// Figure 5: residual update time per DBMS profile and update method, on the
// synthetic pilot fact table F(s, d, c1..ck) with an 8-leaf tree whose leaf
// selectors partition the join-key domain (paper §5.3.2).
#include <map>

#include "baselines/dense_dataset.h"
#include "baselines/histogram_gbdt.h"
#include "bench_util.h"
#include "core/boosting.h"
#include "core/session.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;

namespace {

/// Build the 8-leaf GrowthResult of the pilot study: leaf i selects
/// d ∈ (D/8·(i−1), D/8·i] with a fixed random prediction.
jb::core::GrowthResult PilotLeaves(int64_t d_domain) {
  jb::core::GrowthResult grown;
  grown.tree.nodes.push_back(jb::core::TreeNode{});
  int64_t step = d_domain / 8;
  for (int i = 0; i < 8; ++i) {
    jb::core::GrowthResult::LeafInfo leaf;
    leaf.node = 0;
    // Predicates land on the fact table directly (relation 0 = "f").
    leaf.preds.Add(0, "d > " + std::to_string(step * i));
    leaf.preds.Add(0, "d <= " + std::to_string(step * (i + 1)));
    leaf.raw_value = 0.1 * (i + 1);
    grown.leaves.push_back(std::move(leaf));
  }
  return grown;
}

double MeasureUpdate(const jb::EngineProfile& profile,
                     const std::string& strategy, int extra_columns,
                     size_t rows) {
  jb::exec::Database db(profile);
  jb::data::PilotConfig config;
  config.rows = rows;
  config.extra_columns = extra_columns;
  jb::Dataset ds = jb::data::MakePilot(&db, config);

  jb::core::TrainParams params;
  params.boosting = "gbdt";
  params.update_strategy = strategy;
  jb::core::Session session(&ds, params);
  session.Prepare();
  jb::core::GradientBoosting gb(&session, params);
  jb::core::GrowthResult grown = PilotLeaves(config.d_domain);

  jb::Timer timer;
  gb.UpdateResiduals(session, grown, session.y_fact());
  return timer.Seconds();
}

}  // namespace

int main() {
  size_t rows = jb::bench::ScaledRows(600000);
  Header("Figure 5: residual update time per DBMS and method",
         "Naive >> CREATE-k (grows with k) > UPDATE (profile-dependent); "
         "column swap (DP, D-Swap) approaches the LightGBM parallel-array "
         "write; X-col UPDATE is the worst (compression+WAL)");

  struct ProfileCase {
    jb::EngineProfile profile;
    std::vector<std::string> methods;
  };
  std::vector<ProfileCase> cases = {
      {jb::EngineProfile::XCol(), {"naive_u", "update", "create"}},
      {jb::EngineProfile::XRow(), {"naive_u", "update", "create"}},
      {jb::EngineProfile::DDisk(), {"naive_u", "update", "create"}},
      {jb::EngineProfile::DMem(), {"naive_u", "update", "create"}},
      {jb::EngineProfile::DP(), {"swap"}},
      {jb::EngineProfile::DSwap(), {"swap"}},
  };

  for (auto& pc : cases) {
    for (const auto& method : pc.methods) {
      if (method == "create") {
        for (int k : {0, 5, 10}) {
          double secs = MeasureUpdate(pc.profile, method, k, rows);
          Row(pc.profile.name + " CREATE-" + std::to_string(k), secs);
        }
      } else {
        double secs = MeasureUpdate(pc.profile, method, 0, rows);
        std::string label = method == "naive_u" ? "Naive"
                            : method == "update" ? "UPDATE"
                                                 : "Col Swap";
        Row(pc.profile.name + " " + label, secs);
      }
    }
  }

  // LightGBM reference: residual update as a parallel write to a dense array.
  {
    jb::exec::Database db(jb::EngineProfile::DSwap());
    jb::data::PilotConfig config;
    config.rows = rows;
    jb::Dataset ds = jb::data::MakePilot(&db, config);
    jb::baselines::DenseDataset dense =
        jb::baselines::MaterializeExportLoad(ds, nullptr);
    jb::core::TrainParams params;
    params.boosting = "gbdt";
    params.num_iterations = 1;
    params.num_leaves = 8;
    jb::ThreadPool pool(8);
    jb::baselines::HistogramGbdt trainer(params, &pool);
    jb::baselines::HistogramStats stats;
    trainer.Train(dense, &stats);
    Row("LightGBM (red line)", stats.residual_update_seconds);
  }
  return 0;
}
