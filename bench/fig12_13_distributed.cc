// Figures 12 & 13: multi-node scalability. Workers are in-process engines
// with hash-partitioned facts and replicated dimensions; network costs are
// modeled (see DESIGN.md). Fig 12: GBDT vs Dask-LightGBM across SF and
// worker counts. Fig 13: decision-tree training where 2 workers introduce a
// shuffle stage that makes them slower than 1, recovering at 4-6.
#include "baselines/dense_dataset.h"
#include "baselines/histogram_gbdt.h"
#include "bench_util.h"
#include "core/distributed.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;

namespace {

jb::Dataset MakeData(jb::exec::Database* db, double sf, size_t base_rows) {
  jb::data::TpcdsConfig config;
  config.scale_factor = sf;
  config.base_fact_rows = base_rows;
  config.num_features = 15;
  return jb::data::MakeTpcds(db, config);
}

}  // namespace

int main() {
  size_t base_rows = jb::bench::ScaledRows(40000);

  Header("Figure 12a: multi-node GBDT, 4 workers, SF sweep",
         "all scale linearly; JoinBoost >9x faster than Dask-LightGBM; "
         "LightGBM OOMs at the largest SF even on 4 workers");
  jb::core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 10;
  params.num_leaves = 8;

  for (double sf : {1.0, 1.5, 2.0}) {
    jb::exec::Database db(jb::EngineProfile::DSwap());
    jb::Dataset ds = MakeData(&db, sf, base_rows);
    jb::core::DistributedConfig dconf;
    dconf.num_workers = 4;
    jb::core::DistributedTrainer trainer(ds, dconf);
    auto res = trainer.Train(params);
    Row("JoinBoost(4w) SF=" + std::to_string(sf), res.seconds);

    // Dask-LightGBM-like: full materialize/export/load + training with an
    // all-reduce per iteration; per-worker memory budget.
    size_t budget =
        4 * static_cast<size_t>(1.6 * static_cast<double>(base_rows)) * 16 *
        8 * 2;
    try {
      jb::Timer t;
      jb::baselines::DenseDataset dense =
          jb::baselines::MaterializeExportLoad(ds, nullptr, budget);
      jb::ThreadPool pool(4);
      jb::baselines::HistogramGbdt lgbm(params, &pool);
      lgbm.Train(dense);
      // modeled all-reduce: bins x features x 24B x workers per iteration
      double allreduce = params.num_iterations *
                         (1000.0 * 15 * 24 * 4 / 2e8 + 0.002 * 4);
      Row("Dask-LightGBM(4w) SF=" + std::to_string(sf),
          t.Seconds() + allreduce);
    } catch (const jb::baselines::OomError&) {
      Note("Dask-LightGBM(4w) SF=" + std::to_string(sf) + ": OUT OF MEMORY");
    }
  }

  Header("Figure 12b: workers sweep at the largest SF",
         "JoinBoost runs even on 1 worker and speeds up with more workers");
  for (int w : {1, 2, 3, 4}) {
    jb::exec::Database db(jb::EngineProfile::DSwap());
    jb::Dataset ds = MakeData(&db, 2.0, base_rows);
    jb::core::DistributedConfig dconf;
    dconf.num_workers = w;
    jb::core::DistributedTrainer trainer(ds, dconf);
    auto res = trainer.Train(params);
    Row("JoinBoost workers=" + std::to_string(w), res.seconds);
  }

  Header("Figure 13: decision tree on warehouse-scale data vs #machines",
         "2 machines introduce a shuffle stage and are slower than 1; 4 (6) "
         "machines win back ~10% (25%)");
  jb::core::TrainParams dt;
  dt.boosting = "dt";
  dt.num_leaves = 8;
  dt.max_depth = 3;
  for (int w : {1, 2, 4, 6}) {
    jb::exec::Database db(jb::EngineProfile::DSwap());
    jb::Dataset ds = MakeData(&db, 3.0, base_rows);
    jb::core::DistributedConfig dconf;
    dconf.num_workers = w;
    dconf.network_latency_s = 0.004;
    jb::core::DistributedTrainer trainer(ds, dconf);
    auto res = trainer.Train(dt);
    Row("machines=" + std::to_string(w), res.seconds);
    Note("  compute=" + std::to_string(res.compute_seconds) + "s shuffle=" +
         std::to_string(res.shuffle_seconds) + "s");
  }
  return 0;
}
