// Figure 8: random forest (a) and gradient boosting (b) training time vs
// iterations on Favorita, against the LightGBM-like baseline which must
// first materialize + export + load the join; and (c) the RMSE curves.
#include "baselines/dense_dataset.h"
#include "baselines/histogram_gbdt.h"
#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;
using jb::bench::Series;

int main() {
  jb::data::FavoritaConfig config;
  config.sales_rows = jb::bench::ScaledRows(40000);

  const std::vector<int> checkpoints = {5, 10, 25, 50};

  for (const char* mode : {"rf", "gbdt"}) {
    bool is_rf = std::string(mode) == "rf";
    Header(is_rf ? "Figure 8a: random forest training time"
                 : "Figure 8b: gradient boosting training time",
           is_rf ? "JoinBoost ~3x faster than LightGBM (avoids join+export, "
                   "parallel trees); finishes before the export is done"
                 : "JoinBoost ~1.1x faster than LightGBM; gap is the "
                   "join+export+load prefix");

    jb::core::TrainParams params;
    params.boosting = mode;
    params.num_leaves = 8;
    params.learning_rate = 0.1;
    params.bagging_fraction = 0.1;
    params.feature_fraction = 0.8;
    params.inter_query_parallelism = is_rf;

    // JoinBoost: measure cumulative time at the checkpoints.
    std::vector<double> jb_times;
    {
      jb::exec::Database db(jb::EngineProfile::DSwap());
      jb::Dataset ds = jb::data::MakeFavorita(&db, config);
      double total = 0;
      int done = 0;
      for (int cp : checkpoints) {
        params.num_iterations = cp - done;
        params.seed = 42 + static_cast<uint64_t>(done);
        jb::Timer t;
        jb::Train(params, ds);
        total += t.Seconds();
        done = cp;
        jb_times.push_back(total);
      }
    }

    // LightGBM-like: join+export+load prefix, then iterations.
    std::vector<double> lgbm_times;
    double prefix = 0;
    {
      jb::exec::Database db(jb::EngineProfile::DSwap());
      jb::Dataset ds = jb::data::MakeFavorita(&db, config);
      jb::baselines::ExportStats io;
      jb::Timer t;
      jb::baselines::DenseDataset dense =
          jb::baselines::MaterializeExportLoad(ds, &io);
      prefix = t.Seconds();
      jb::ThreadPool pool(8);
      for (int cp : checkpoints) {
        jb::core::TrainParams lp = params;
        lp.num_iterations = cp;
        jb::baselines::HistogramGbdt trainer(lp, &pool);
        jb::Timer tt;
        trainer.Train(dense);
        lgbm_times.push_back(prefix + tt.Seconds());
      }
      Row("Join+Export+Load (dotted line)", prefix);
      Note("join " + std::to_string(io.join_seconds) + "s, export " +
           std::to_string(io.export_seconds) + "s, load " +
           std::to_string(io.load_seconds) + "s, csv " +
           std::to_string(io.csv_bytes / (1 << 20)) + " MiB");
    }

    std::vector<double> xs(checkpoints.begin(), checkpoints.end());
    Series("JoinBoost", xs, jb_times);
    Series("LightGBM", xs, lgbm_times);
    Row("speedup @ final iteration", lgbm_times.back() / jb_times.back(), "x");
  }

  // Figure 8c: RMSE learning curves are identical (same algorithm).
  {
    Header("Figure 8c: gradient boosting RMSE vs iterations",
           "JoinBoost and LightGBM curves coincide; converged RMSE "
           "identical");
    jb::exec::Database db(jb::EngineProfile::DSwap());
    jb::data::FavoritaConfig small = config;
    small.sales_rows = std::min<size_t>(config.sales_rows, 20000);
    jb::Dataset ds = jb::data::MakeFavorita(&db, small);

    jb::core::TrainParams params;
    params.boosting = "gbdt";
    params.num_iterations = 30;
    params.num_leaves = 8;
    params.learning_rate = 0.1;
    jb::TrainResult res = jb::Train(params, ds);
    jb::core::JoinedEval eval = jb::core::MaterializeJoin(ds);
    auto jb_curve = eval.RmseCurve(res.model);

    jb::baselines::DenseDataset dense =
        jb::baselines::MaterializeExportLoad(ds, nullptr);
    jb::core::TrainParams lp = params;
    lp.max_bin = 1 << 20;  // exact mode
    jb::baselines::HistogramGbdt trainer(lp);
    auto baseline = trainer.Train(dense);
    auto lgbm_curve = eval.RmseCurve(baseline);

    std::vector<double> xs;
    std::vector<double> a, b;
    for (size_t i = 0; i < jb_curve.size(); i += 5) {
      xs.push_back(static_cast<double>(i));
      a.push_back(jb_curve[i]);
      b.push_back(lgbm_curve[i]);
    }
    Series("JoinBoost rmse", xs, a);
    Series("LightGBM rmse", xs, b);
    Row("final rmse delta", std::fabs(jb_curve.back() - lgbm_curve.back()),
        "rmse");
  }
  return 0;
}
