// google-benchmark micro suite: semi-ring operations, engine kernels
// (hash join, hash aggregate, compression) and the residual-update
// strategies in isolation.
#include <benchmark/benchmark.h>

#include "core/boosting.h"
#include "core/session.h"
#include "data/generators.h"
#include "joinboost.h"
#include "semiring/semiring.h"
#include "storage/compression.h"
#include "util/rng.h"

namespace jb = joinboost;

static void BM_VarianceSemiringMul(benchmark::State& state) {
  jb::Rng rng(1);
  std::vector<jb::semiring::VarianceElem> elems(4096);
  for (auto& e : elems) {
    e = jb::semiring::VarianceElem::Lift(rng.NextDouble());
  }
  for (auto _ : state) {
    jb::semiring::VarianceElem acc = jb::semiring::VarianceElem::One();
    for (const auto& e : elems) acc = acc * e;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_VarianceSemiringMul);

static void BM_CompressionRoundtripInts(benchmark::State& state) {
  jb::Rng rng(2);
  std::vector<int64_t> values(static_cast<size_t>(state.range(0)));
  for (auto& v : values) v = rng.NextInt(0, 10000);
  for (auto _ : state) {
    auto enc = jb::compression::EncodeInts(values);
    auto dec = jb::compression::DecodeInts(enc);
    benchmark::DoNotOptimize(dec);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompressionRoundtripInts)->Arg(1 << 16)->Arg(1 << 20);

static void BM_HashJoinAggregate(benchmark::State& state) {
  jb::exec::Database db(jb::EngineProfile::DSwap());
  jb::Rng rng(3);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> k(n);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    k[i] = rng.NextInt(0, 999);
    v[i] = rng.NextDouble();
  }
  db.RegisterTable(
      jb::TableBuilder("t").AddInts("k", k).AddDoubles("v", v).Build());
  std::vector<int64_t> dk(1000);
  std::vector<double> dv(1000);
  for (size_t i = 0; i < 1000; ++i) {
    dk[i] = static_cast<int64_t>(i);
    dv[i] = rng.NextDouble();
  }
  db.RegisterTable(
      jb::TableBuilder("d").AddInts("k", dk).AddDoubles("w", dv).Build());
  for (auto _ : state) {
    auto res = db.Query(
        "SELECT d.w AS w, SUM(t.v) AS s FROM t JOIN d ON t.k = d.k "
        "GROUP BY d.w");
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoinAggregate)->Arg(1 << 16)->Arg(1 << 18);

static void BM_ResidualUpdateStrategy(benchmark::State& state) {
  const char* strategies[] = {"swap", "create", "update", "naive_u"};
  const char* strategy = strategies[state.range(0)];
  jb::exec::Database db(jb::EngineProfile::DSwap());
  jb::data::PilotConfig config;
  config.rows = 200000;
  jb::Dataset ds = jb::data::MakePilot(&db, config);
  jb::core::TrainParams params;
  params.boosting = "gbdt";
  params.update_strategy = strategy;
  jb::core::Session session(&ds, params);
  session.Prepare();
  jb::core::GradientBoosting gb(&session, params);
  jb::core::GrowthResult grown;
  grown.tree.nodes.push_back(jb::core::TreeNode{});
  for (int i = 0; i < 8; ++i) {
    jb::core::GrowthResult::LeafInfo leaf;
    leaf.node = 0;
    leaf.preds.Add(0, "d > " + std::to_string(1250 * i));
    leaf.preds.Add(0, "d <= " + std::to_string(1250 * (i + 1)));
    leaf.raw_value = 0.01;
    grown.leaves.push_back(std::move(leaf));
  }
  for (auto _ : state) {
    gb.UpdateResiduals(session, grown, session.y_fact());
  }
  state.SetLabel(strategy);
}
BENCHMARK(BM_ResidualUpdateStrategy)->DenseRange(0, 3);

BENCHMARK_MAIN();
