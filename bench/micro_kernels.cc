// google-benchmark micro suite: semi-ring operations, engine kernels
// (hash join, hash aggregate, compression), the residual-update strategies,
// and the PR 5 hash-infrastructure kernels (flat bucket-chained tables vs
// the replaced std::unordered_map layout) in isolation.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "core/boosting.h"
#include "core/session.h"
#include "data/generators.h"
#include "exec/hash_table.h"
#include "exec/morsel.h"
#include "joinboost.h"
#include "semiring/semiring.h"
#include "storage/compression.h"
#include "util/hash.h"
#include "util/rng.h"

namespace jb = joinboost;

static void BM_VarianceSemiringMul(benchmark::State& state) {
  jb::Rng rng(1);
  std::vector<jb::semiring::VarianceElem> elems(4096);
  for (auto& e : elems) {
    e = jb::semiring::VarianceElem::Lift(rng.NextDouble());
  }
  for (auto _ : state) {
    jb::semiring::VarianceElem acc = jb::semiring::VarianceElem::One();
    for (const auto& e : elems) acc = acc * e;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_VarianceSemiringMul);

static void BM_CompressionRoundtripInts(benchmark::State& state) {
  jb::Rng rng(2);
  std::vector<int64_t> values(static_cast<size_t>(state.range(0)));
  for (auto& v : values) v = rng.NextInt(0, 10000);
  for (auto _ : state) {
    auto enc = jb::compression::EncodeInts(values);
    auto dec = jb::compression::DecodeInts(enc);
    benchmark::DoNotOptimize(dec);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompressionRoundtripInts)->Arg(1 << 16)->Arg(1 << 20);

static void BM_HashJoinAggregate(benchmark::State& state) {
  jb::exec::Database db(jb::EngineProfile::DSwap());
  jb::Rng rng(3);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> k(n);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    k[i] = rng.NextInt(0, 999);
    v[i] = rng.NextDouble();
  }
  db.RegisterTable(
      jb::TableBuilder("t").AddInts("k", k).AddDoubles("v", v).Build());
  std::vector<int64_t> dk(1000);
  std::vector<double> dv(1000);
  for (size_t i = 0; i < 1000; ++i) {
    dk[i] = static_cast<int64_t>(i);
    dv[i] = rng.NextDouble();
  }
  db.RegisterTable(
      jb::TableBuilder("d").AddInts("k", dk).AddDoubles("w", dv).Build());
  for (auto _ : state) {
    auto res = db.Query(
        "SELECT d.w AS w, SUM(t.v) AS s FROM t JOIN d ON t.k = d.k "
        "GROUP BY d.w");
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoinAggregate)->Arg(1 << 16)->Arg(1 << 18);

// ---- PR 5: hash-infrastructure kernels, old map layout vs flat table ----

namespace {

/// Deterministic key hashes: `n` rows over `keys` distinct keys, mixed with
/// the engine's key-hash seed so chains match production distributions.
std::vector<uint64_t> KeyHashes(size_t n, int64_t keys, uint64_t seed) {
  jb::Rng rng(seed);
  std::vector<uint64_t> h(n);
  for (auto& x : h) {
    x = jb::HashCombine(
        jb::exec::morsel::kKeyHashSeed,
        static_cast<uint64_t>(rng.NextInt(0, keys - 1)));
  }
  return h;
}

}  // namespace

static void BM_JoinBuildOldMap(benchmark::State& state) {
  std::vector<uint64_t> h =
      KeyHashes(static_cast<size_t>(state.range(0)), 2000, 5);
  for (auto _ : state) {
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    buckets.reserve(h.size() * 2);
    for (size_t r = 0; r < h.size(); ++r) {
      buckets[h[r]].push_back(static_cast<uint32_t>(r));
    }
    benchmark::DoNotOptimize(buckets);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinBuildOldMap)->Arg(1 << 16)->Arg(1 << 18);

static void BM_JoinBuildFlat(benchmark::State& state) {
  std::vector<uint64_t> h =
      KeyHashes(static_cast<size_t>(state.range(0)), 2000, 5);
  for (auto _ : state) {
    jb::exec::hash::JoinHashTable table;
    table.Build(h.data(), h.size());
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinBuildFlat)->Arg(1 << 16)->Arg(1 << 18);

// Probe benchmarks visit every chained match (like the real probe, which
// runs RowsEqual per chain element). Args: {probe_rows, distinct_keys} —
// the second pair is dup-heavy (long chains), where the old layout's
// contiguous per-key vectors probe fastest; the flat table wins everywhere
// the build or group side participates.
static void BM_JoinProbeOldMap(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int64_t keys = state.range(1);
  std::vector<uint64_t> build = KeyHashes(n / 4, keys, 5);
  std::vector<uint64_t> probe = KeyHashes(n, keys + keys / 4, 6);
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  for (size_t r = 0; r < build.size(); ++r) {
    buckets[build[r]].push_back(static_cast<uint32_t>(r));
  }
  for (auto _ : state) {
    size_t matches = 0;
    for (uint64_t h : probe) {
      auto it = buckets.find(h);
      if (it == buckets.end()) continue;
      for (uint32_t r : it->second) matches += r;
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinProbeOldMap)
    ->Args({1 << 18, 1 << 16})
    ->Args({1 << 18, 1 << 11});

static void BM_JoinProbeFlat(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int64_t keys = state.range(1);
  std::vector<uint64_t> build = KeyHashes(n / 4, keys, 5);
  std::vector<uint64_t> probe = KeyHashes(n, keys + keys / 4, 6);
  jb::exec::hash::JoinHashTable table;
  table.Build(build.data(), build.size());
  for (auto _ : state) {
    size_t matches = 0;
    for (uint64_t h : probe) {
      for (uint32_t r = table.Probe(h); r != jb::exec::hash::kInvalidIndex;
           r = table.Next(r)) {
        matches += r;
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinProbeFlat)
    ->Args({1 << 18, 1 << 16})
    ->Args({1 << 18, 1 << 11});

static void BM_GroupOldMap(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> h = KeyHashes(n, 50000, 7);
  for (auto _ : state) {
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    std::vector<uint32_t> reps;
    for (size_t r = 0; r < n; ++r) {
      auto& bucket = buckets[h[r]];
      uint32_t gid = UINT32_MAX;
      for (uint32_t g : bucket) {
        if (h[reps[g]] == h[r]) {
          gid = g;
          break;
        }
      }
      if (gid == UINT32_MAX) {
        reps.push_back(static_cast<uint32_t>(r));
        bucket.push_back(static_cast<uint32_t>(reps.size() - 1));
      }
    }
    benchmark::DoNotOptimize(reps);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupOldMap)->Arg(1 << 18);

static void BM_GroupFlat(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> h = KeyHashes(n, 50000, 7);
  for (auto _ : state) {
    jb::exec::hash::GroupHashTable table(n);
    std::vector<uint32_t> reps;
    for (size_t r = 0; r < n; ++r) {
      uint32_t gid = table.FindOrAdd(
          h[r], [&](uint32_t g) { return h[reps[g]] == h[r]; });
      if (gid == reps.size()) reps.push_back(static_cast<uint32_t>(r));
    }
    benchmark::DoNotOptimize(reps);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupFlat)->Arg(1 << 18);

static void BM_ResidualUpdateStrategy(benchmark::State& state) {
  const char* strategies[] = {"swap", "create", "update", "naive_u"};
  const char* strategy = strategies[state.range(0)];
  jb::exec::Database db(jb::EngineProfile::DSwap());
  jb::data::PilotConfig config;
  config.rows = 200000;
  jb::Dataset ds = jb::data::MakePilot(&db, config);
  jb::core::TrainParams params;
  params.boosting = "gbdt";
  params.update_strategy = strategy;
  jb::core::Session session(&ds, params);
  session.Prepare();
  jb::core::GradientBoosting gb(&session, params);
  jb::core::GrowthResult grown;
  grown.tree.nodes.push_back(jb::core::TreeNode{});
  for (int i = 0; i < 8; ++i) {
    jb::core::GrowthResult::LeafInfo leaf;
    leaf.node = 0;
    leaf.preds.Add(0, "d > " + std::to_string(1250 * i));
    leaf.preds.Add(0, "d <= " + std::to_string(1250 * (i + 1)));
    leaf.raw_value = 0.01;
    grown.leaves.push_back(std::move(leaf));
  }
  for (auto _ : state) {
    gb.UpdateResiduals(session, grown, session.y_fact());
  }
  state.SetLabel(strategy);
}
BENCHMARK(BM_ResidualUpdateStrategy)->DenseRange(0, 3);

BENCHMARK_MAIN();
