#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace joinboost {
namespace bench {

/// Global scale multiplier: set JB_SCALE=10 for runs closer to paper sizes.
inline double Scale() {
  const char* env = std::getenv("JB_SCALE");
  if (!env) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline size_t ScaledRows(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * Scale());
}

inline void Header(const std::string& title, const std::string& paper_shape) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper_shape: %s\n", paper_shape.c_str());
  std::printf("================================================================\n");
}

inline void Row(const std::string& label, double value,
                const std::string& unit = "s") {
  std::printf("  %-40s %10.4f %s\n", label.c_str(), value, unit.c_str());
}

inline void Note(const std::string& text) {
  std::printf("  -- %s\n", text.c_str());
}

/// Print a series as "label: v0 v1 v2 ..." (one figure line).
inline void Series(const std::string& label, const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  std::printf("  series %-24s:", label.c_str());
  for (size_t i = 0; i < ys.size(); ++i) {
    if (i < xs.size()) {
      std::printf(" (%g, %.3f)", xs[i], ys[i]);
    } else {
      std::printf(" %.3f", ys[i]);
    }
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace joinboost
