// Figure 10: gradient boosting time at iterations 10 and 50 while the number
// of imputed features grows (5 -> 50); LightGBM slows superlinearly and runs
// out of memory at the widest setting.
//
// PR 4 extends the figure with a batched-vs-per-feature split-evaluation
// sweep: the per-feature path issues one absorption query per feature per
// leaf, the batched path one GROUPING SETS histogram query per relation per
// leaf (threshold enumeration in C++). The sweep's timings and deterministic
// counters (split queries, grouping sets, cells decompressed) are written to
// BENCH_PR4.json — a CI artifact guarded by tools/compare_bench.py.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/dense_dataset.h"
#include "baselines/histogram_gbdt.h"
#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;

namespace {

struct SweepPoint {
  size_t features = 0;
  double batched_seconds = 0;
  double per_feature_seconds = 0;
  size_t batched_split_queries = 0;
  size_t per_feature_split_queries = 0;
  size_t grouping_sets = 0;
  size_t batched_cells_decompressed = 0;
  size_t per_feature_cells_decompressed = 0;
  size_t message_queries = 0;
};

SweepPoint RunSweepPoint(size_t rows, int extra, int iters) {
  SweepPoint point;
  for (int batched = 0; batched < 2; ++batched) {
    jb::data::FavoritaConfig config;
    config.sales_rows = rows;
    config.extra_features_per_dim = extra;
    jb::exec::Database db(jb::EngineProfile::DSwap());
    jb::Dataset ds = jb::data::MakeFavorita(&db, config);
    point.features = ds.graph().AllFeatures().size();

    jb::core::TrainParams params;
    params.boosting = "gbdt";
    params.num_iterations = iters;
    params.num_leaves = 8;
    params.batch_split_evaluation = batched == 1;
    db.ClearPlanStats();
    jb::TrainResult res = jb::Train(params, ds);
    jb::plan::PlanStats stats = db.PlanStatsTotals();
    if (batched == 1) {
      point.batched_seconds = res.seconds;
      point.batched_split_queries = res.feature_queries;
      point.grouping_sets = stats.grouping_sets;
      point.batched_cells_decompressed = stats.cells_decompressed;
      point.message_queries = res.message_queries;
    } else {
      point.per_feature_seconds = res.seconds;
      point.per_feature_split_queries = res.feature_queries;
      point.per_feature_cells_decompressed = stats.cells_decompressed;
    }
  }
  return point;
}

void WriteJson(const std::vector<SweepPoint>& sweep, size_t rows, int iters) {
  const char* path = std::getenv("JB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_PR4.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("  -- could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig10_num_features\",\n"
               "  \"scale\": %.3f,\n"
               "  \"sales_rows\": %zu,\n"
               "  \"iterations\": %d,\n"
               "  \"sweep\": [\n",
               jb::bench::Scale(), rows, iters);
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    double speedup = p.batched_seconds > 0
                         ? p.per_feature_seconds / p.batched_seconds
                         : 0.0;
    std::fprintf(f,
                 "    {\"features\": %zu, \"batched_seconds\": %.4f, "
                 "\"per_feature_seconds\": %.4f, \"speedup\": %.3f}%s\n",
                 p.features, p.batched_seconds, p.per_feature_seconds, speedup,
                 i + 1 < sweep.size() ? "," : "");
  }
  // Deterministic counters, one flat object for the CI regression guard.
  std::fprintf(f, "  ],\n  \"counters\": {\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(f,
                 "    \"split_queries_batched_w%zu\": %zu,\n"
                 "    \"split_queries_per_feature_w%zu\": %zu,\n"
                 "    \"grouping_sets_w%zu\": %zu,\n"
                 "    \"message_queries_w%zu\": %zu,\n"
                 "    \"cells_decompressed_batched_w%zu\": %zu%s\n",
                 p.features, p.batched_split_queries, p.features,
                 p.per_feature_split_queries, p.features, p.grouping_sets,
                 p.features, p.message_queries, p.features,
                 p.batched_cells_decompressed,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("  -- wrote %s\n", path);
}

}  // namespace

int main() {
  Header("Figure 10: scaling the number of features",
         "JoinBoost scales linearly with a ~10x lower slope; LightGBM slows "
         ">1.5x by the middle setting and OOMs at the widest");

  size_t rows = jb::bench::ScaledRows(25000);
  // extra features per dimension -> total features 12 / 24 / 44.
  std::vector<int> extras = {1, 3, 7};
  // Budget sized so only the widest dense matrix overflows.
  size_t budget = rows * 30 * 8 * 2;

  for (int iters : {5, 15}) {
    std::printf("\n  -- iteration %d --\n", iters);
    for (int extra : extras) {
      jb::data::FavoritaConfig config;
      config.sales_rows = rows;
      config.extra_features_per_dim = extra;

      jb::exec::Database db(jb::EngineProfile::DSwap());
      jb::Dataset ds = jb::data::MakeFavorita(&db, config);
      size_t nfeat = ds.graph().AllFeatures().size();

      jb::core::TrainParams params;
      params.boosting = "gbdt";
      params.num_iterations = iters;
      params.num_leaves = 8;

      jb::Timer t;
      jb::Train(params, ds);
      Row("JoinBoost  features=" + std::to_string(nfeat), t.Seconds());

      try {
        jb::Timer lt;
        jb::baselines::DenseDataset dense =
            jb::baselines::MaterializeExportLoad(ds, nullptr, budget);
        jb::ThreadPool pool(8);
        jb::baselines::HistogramGbdt trainer(params, &pool);
        trainer.Train(dense);
        Row("LightGBM   features=" + std::to_string(nfeat), lt.Seconds());
      } catch (const jb::baselines::OomError& e) {
        Note("LightGBM   features=" + std::to_string(nfeat) +
             ": OUT OF MEMORY (" + e.what() + ")");
      }
    }
  }

  // ---- PR 4 sweep: batched vs per-feature split evaluation ----
  std::printf("\n  -- batched vs per-feature split evaluation --\n");
  const int sweep_iters = 5;
  std::vector<SweepPoint> sweep;
  for (int extra : extras) {
    SweepPoint p = RunSweepPoint(rows, extra, sweep_iters);
    Row("batched     features=" + std::to_string(p.features),
        p.batched_seconds);
    Row("per-feature features=" + std::to_string(p.features),
        p.per_feature_seconds);
    Note("split queries: " + std::to_string(p.batched_split_queries) +
         " batched vs " + std::to_string(p.per_feature_split_queries) +
         " per-feature");
    sweep.push_back(p);
  }
  WriteJson(sweep, rows, sweep_iters);
  return 0;
}
