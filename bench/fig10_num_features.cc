// Figure 10: gradient boosting time at iterations 10 and 50 while the number
// of imputed features grows (5 -> 50); LightGBM slows superlinearly and runs
// out of memory at the widest setting.
#include "baselines/dense_dataset.h"
#include "baselines/histogram_gbdt.h"
#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;

int main() {
  Header("Figure 10: scaling the number of features",
         "JoinBoost scales linearly with a ~10x lower slope; LightGBM slows "
         ">1.5x by the middle setting and OOMs at the widest");

  size_t rows = jb::bench::ScaledRows(25000);
  // extra features per dimension -> total features 12 / 24 / 44.
  std::vector<int> extras = {1, 3, 7};
  // Budget sized so only the widest dense matrix overflows.
  size_t budget = rows * 30 * 8 * 2;

  for (int iters : {5, 15}) {
    std::printf("\n  -- iteration %d --\n", iters);
    for (int extra : extras) {
      jb::data::FavoritaConfig config;
      config.sales_rows = rows;
      config.extra_features_per_dim = extra;

      jb::exec::Database db(jb::EngineProfile::DSwap());
      jb::Dataset ds = jb::data::MakeFavorita(&db, config);
      size_t nfeat = ds.graph().AllFeatures().size();

      jb::core::TrainParams params;
      params.boosting = "gbdt";
      params.num_iterations = iters;
      params.num_leaves = 8;

      jb::Timer t;
      jb::Train(params, ds);
      Row("JoinBoost  features=" + std::to_string(nfeat), t.Seconds());

      try {
        jb::Timer lt;
        jb::baselines::DenseDataset dense =
            jb::baselines::MaterializeExportLoad(ds, nullptr, budget);
        jb::ThreadPool pool(8);
        jb::baselines::HistogramGbdt trainer(params, &pool);
        trainer.Train(dense);
        Row("LightGBM   features=" + std::to_string(nfeat), lt.Seconds());
      } catch (const jb::baselines::OomError& e) {
        Note("LightGBM   features=" + std::to_string(nfeat) +
             ": OUT OF MEMORY (" + e.what() + ")");
      }
    }
  }
  return 0;
}
