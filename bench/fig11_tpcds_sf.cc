// Figure 11: single-node scalability on TPC-DS-like data, varying the scale
// factor; both systems scale linearly, JoinBoost with a much lower slope,
// and LightGBM OOMs at the largest SF. PR 9 runs the sweep on chunked
// storage (EngineProfile::chunk_rows) and adds a deterministic layout
// counter pass — load seals per-chunk segments, an append seals ONLY new
// segments (append_chunks_rewritten must stay 0), and a none-match scan
// prunes whole chunks off zone maps — guarded by CI against
// bench/baselines/BENCH_PR9.json via tools/compare_bench.py.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/dense_dataset.h"
#include "baselines/histogram_gbdt.h"
#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;

namespace {

constexpr size_t kChunkRows = 1024;

jb::EngineProfile ChunkedProfile() {
  jb::EngineProfile p = jb::EngineProfile::DSwap();
  p.chunk_rows = kChunkRows;
  return p;
}

struct SweepPoint {
  int iterations;
  double sf;
  double joinboost_seconds = 0;
  double lightgbm_seconds = -1;  ///< -1 = OOM
};

/// A synthetic append batch matching `table`'s schema: ints count upward
/// from the current row count, doubles repeat a constant. Deterministic.
jb::exec::ExecTable MakeBatch(const jb::TablePtr& table, size_t rows) {
  jb::exec::ExecTable batch;
  batch.rows = rows;
  for (size_t c = 0; c < table->num_columns(); ++c) {
    const jb::Field& f = table->schema().field(c);
    if (f.type == jb::TypeId::kFloat64) {
      std::vector<double> v(rows, 0.25);
      batch.cols.push_back(
          {"", f.name, jb::exec::VectorData::FromDoubles(std::move(v))});
    } else {
      std::vector<int64_t> v(rows);
      for (size_t i = 0; i < rows; ++i) {
        v[i] = static_cast<int64_t>(i % 7);
      }
      batch.cols.push_back(
          {"", f.name, jb::exec::VectorData::FromInts(std::move(v))});
    }
  }
  return batch;
}

}  // namespace

int main() {
  Header("Figure 11: database size (TPC-DS-like SF sweep, chunked storage)",
         "both scale linearly; JoinBoost slope ~10x lower at iteration 10; "
         "LightGBM OOMs at the largest SF; layout counters CI-guarded");

  std::vector<double> sfs = {1, 1.5, 2};
  size_t base_rows = jb::bench::ScaledRows(30000);
  // Budget sized so only the largest SF's dense matrix overflows.
  size_t budget = static_cast<size_t>(1.7 * static_cast<double>(base_rows)) *
                  16 * 8 * 2;

  std::vector<SweepPoint> sweep;
  for (int iters : {5, 15}) {
    std::printf("\n  -- iteration %d --\n", iters);
    for (double sf : sfs) {
      jb::data::TpcdsConfig config;
      config.scale_factor = sf;
      config.base_fact_rows = base_rows;
      config.num_features = 15;

      jb::exec::Database db(ChunkedProfile());
      jb::Dataset ds = jb::data::MakeTpcds(&db, config);

      jb::core::TrainParams params;
      params.boosting = "gbdt";
      params.num_iterations = iters;
      params.num_leaves = 8;

      SweepPoint point;
      point.iterations = iters;
      point.sf = sf;

      jb::Timer t;
      jb::Train(params, ds);
      point.joinboost_seconds = t.Seconds();
      Row("JoinBoost  SF=" + std::to_string(sf), point.joinboost_seconds);

      try {
        jb::Timer lt;
        jb::baselines::DenseDataset dense =
            jb::baselines::MaterializeExportLoad(ds, nullptr, budget);
        jb::ThreadPool pool(8);
        jb::baselines::HistogramGbdt trainer(params, &pool);
        trainer.Train(dense);
        point.lightgbm_seconds = lt.Seconds();
        Row("LightGBM   SF=" + std::to_string(sf), point.lightgbm_seconds);
      } catch (const jb::baselines::OomError&) {
        Note("LightGBM   SF=" + std::to_string(sf) + ": OUT OF MEMORY");
      }
      sweep.push_back(point);
    }
  }

  // ---- Layout counter pass (deterministic at fixed JB_SCALE) ----
  // Fresh chunked engine; load the largest SF point, append 10% of the
  // fact, and run a none-match scan. Every counter below derives from
  // per-(column, chunk) outcomes, so it is thread-count independent.
  jb::exec::Database db(ChunkedProfile());
  jb::data::TpcdsConfig config;
  config.scale_factor = sfs.back();
  config.base_fact_rows = base_rows;
  config.num_features = 15;
  jb::data::MakeTpcds(&db, config);
  jb::plan::PlanStats load_stats = db.PlanStatsTotals();
  const size_t load_chunks_created = load_stats.chunks_created;

  jb::TablePtr fact = db.catalog().Get("store_sales");
  const size_t fact_rows = fact->num_rows();
  const size_t append_rows = fact_rows / 10;
  jb::Timer at;
  db.AppendRows("store_sales", MakeBatch(fact, append_rows));
  const double append_seconds = at.Seconds();
  jb::plan::PlanStats append_stats = db.PlanStatsTotals() - load_stats;
  Row("append 10% of fact (" + std::to_string(append_rows) + " rows)",
      append_seconds);

  // Zone maps prove no key is negative: every chunk of the scanned column
  // is eliminated without decoding a block.
  db.ClearPlanStats();
  const std::string key = fact->schema().field(0).name;
  size_t scan_rows =
      db.Query("SELECT COUNT(*) AS c FROM store_sales WHERE store_sales." +
               key + " < 0")
          ->rows;
  jb::plan::PlanStats scan_stats = db.PlanStatsTotals();

  std::printf(
      "  counters: load_chunks_created=%zu append_chunks_created=%zu "
      "append_chunks_rewritten=%zu scan_chunks_pruned=%zu fact_chunks=%zu\n",
      load_chunks_created, append_stats.chunks_created,
      append_stats.chunks_rewritten, scan_stats.chunks_pruned,
      db.catalog().Get("store_sales")->num_chunks());
  if (append_stats.chunks_rewritten != 0) {
    std::printf("  !! append rewrote %zu existing segments\n",
                append_stats.chunks_rewritten);
    return 1;
  }

  const char* path = std::getenv("JB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_PR9.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("  -- could not open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fig11_tpcds_sf\",\n"
               "  \"scale\": %.3f,\n"
               "  \"chunk_rows\": %zu,\n"
               "  \"fact_rows\": %zu,\n"
               "  \"append_rows\": %zu,\n"
               "  \"append_seconds\": %.6f,\n"
               "  \"sweep\": [\n",
               jb::bench::Scale(), kChunkRows, fact_rows, append_rows,
               append_seconds);
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(f,
                 "    {\"iterations\": %d, \"sf\": %.2f, "
                 "\"joinboost_seconds\": %.6f, \"lightgbm_seconds\": %.6f}%s\n",
                 sweep[i].iterations, sweep[i].sf, sweep[i].joinboost_seconds,
                 sweep[i].lightgbm_seconds, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"counters\": {\n"
               "    \"load_chunks_created\": %zu,\n"
               "    \"append_chunks_created\": %zu,\n"
               "    \"append_chunks_rewritten\": %zu,\n"
               "    \"scan_chunks_pruned\": %zu,\n"
               "    \"fact_chunks\": %zu,\n"
               "    \"scan_result_rows\": %zu\n"
               "  }\n"
               "}\n",
               load_chunks_created, append_stats.chunks_created,
               append_stats.chunks_rewritten, scan_stats.chunks_pruned,
               db.catalog().Get("store_sales")->num_chunks(), scan_rows);
  std::fclose(f);
  std::printf("  -- wrote %s\n", path);
  return 0;
}
