// Figure 11: single-node scalability on TPC-DS-like data, varying the scale
// factor; both systems scale linearly, JoinBoost with a much lower slope,
// and LightGBM OOMs at the largest SF.
#include "baselines/dense_dataset.h"
#include "baselines/histogram_gbdt.h"
#include "bench_util.h"
#include "data/generators.h"
#include "joinboost.h"
#include "util/timer.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;
using jb::bench::Row;

int main() {
  Header("Figure 11: database size (TPC-DS-like SF sweep)",
         "both scale linearly; JoinBoost slope ~10x lower at iteration 10; "
         "LightGBM OOMs at the largest SF");

  std::vector<double> sfs = {1, 1.5, 2};
  size_t base_rows = jb::bench::ScaledRows(30000);
  // Budget sized so only the largest SF's dense matrix overflows.
  size_t budget = static_cast<size_t>(1.7 * static_cast<double>(base_rows)) *
                  16 * 8 * 2;

  for (int iters : {5, 15}) {
    std::printf("\n  -- iteration %d --\n", iters);
    for (double sf : sfs) {
      jb::data::TpcdsConfig config;
      config.scale_factor = sf;
      config.base_fact_rows = base_rows;
      config.num_features = 15;

      jb::exec::Database db(jb::EngineProfile::DSwap());
      jb::Dataset ds = jb::data::MakeTpcds(&db, config);

      jb::core::TrainParams params;
      params.boosting = "gbdt";
      params.num_iterations = iters;
      params.num_leaves = 8;

      jb::Timer t;
      jb::Train(params, ds);
      Row("JoinBoost  SF=" + std::to_string(sf), t.Seconds());

      try {
        jb::Timer lt;
        jb::baselines::DenseDataset dense =
            jb::baselines::MaterializeExportLoad(ds, nullptr, budget);
        jb::ThreadPool pool(8);
        jb::baselines::HistogramGbdt trainer(params, &pool);
        trainer.Train(dense);
        Row("LightGBM   SF=" + std::to_string(sf), lt.Seconds());
      } catch (const jb::baselines::OomError&) {
        Note("LightGBM   SF=" + std::to_string(sf) + ": OUT OF MEMORY");
      }
    }
  }
  return 0;
}
