// Hash-infrastructure sweep (PR 5): join-build/probe and group-by kernels,
// old `std::unordered_map<uint64_t, std::vector<uint32_t>>` layout vs the
// flat bucket-chained tables in src/exec/hash_table.h, over a fig09-style
// mix of join+aggregation shapes; plus an engine-level join+agg smoke pass
// whose deterministic PlanStats hash counters are guarded by CI
// (bench/baselines/BENCH_PR5.json via tools/compare_bench.py).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "exec/hash_table.h"
#include "exec/morsel.h"
#include "joinboost.h"
#include "util/hash.h"
#include "util/rng.h"

namespace jb = joinboost;
using jb::bench::Header;
using jb::bench::Note;

namespace {

double Seconds(const std::function<void()>& fn, int reps) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// One join+aggregation shape: probe `probe` rows against `build` rows
/// drawn from `keys` distinct keys, then group the probe side by key.
struct Shape {
  const char* name;
  size_t build;
  size_t probe;
  int64_t keys;
};

struct Columns {
  std::vector<int64_t> build_key;
  std::vector<int64_t> probe_key;
  std::vector<double> probe_val;
};

Columns MakeColumns(const Shape& s, uint64_t seed) {
  jb::Rng rng(seed);
  Columns c;
  c.build_key.resize(s.build);
  c.probe_key.resize(s.probe);
  c.probe_val.resize(s.probe);
  for (auto& k : c.build_key) k = rng.NextInt(0, s.keys - 1);
  for (size_t i = 0; i < s.probe; ++i) {
    // Over-range probe keys slightly so some probes miss, like a selective
    // semi-join input.
    c.probe_key[i] = rng.NextInt(0, s.keys + s.keys / 8);
    c.probe_val[i] = rng.NextDouble();
  }
  return c;
}

// The engine's key-hash seed: kernels must measure the same hash
// distribution the operators produce.
constexpr uint64_t kSeed = jb::exec::morsel::kKeyHashSeed;

/// The replaced implementation, kept verbatim in the bench as the
/// comparison point: per-row hashing (with its redundant extra SplitMix64
/// pass per cell) into a node-based map with one heap-allocated row vector
/// per key.
uint64_t HashRowOld(const std::vector<int64_t>& col, size_t r) {
  return jb::HashCombine(kSeed, jb::SplitMix64(static_cast<uint64_t>(col[r])));
}

double OldJoinAgg(const Columns& c, size_t* sink) {
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  buckets.reserve(c.build_key.size() * 2);
  for (size_t r = 0; r < c.build_key.size(); ++r) {
    buckets[HashRowOld(c.build_key, r)].push_back(static_cast<uint32_t>(r));
  }
  size_t matches = 0;
  for (size_t l = 0; l < c.probe_key.size(); ++l) {
    auto it = buckets.find(HashRowOld(c.probe_key, l));
    if (it == buckets.end()) continue;
    for (uint32_t r : it->second) {
      if (c.build_key[r] == c.probe_key[l]) ++matches;
    }
  }
  // Group the probe side by key (the old GroupRows layout).
  std::unordered_map<uint64_t, std::vector<uint32_t>> groups;
  std::vector<uint32_t> reps;
  std::vector<double> sums;
  for (size_t r = 0; r < c.probe_key.size(); ++r) {
    auto& bucket = groups[HashRowOld(c.probe_key, r)];
    uint32_t gid = UINT32_MAX;
    for (uint32_t g : bucket) {
      if (c.probe_key[reps[g]] == c.probe_key[r]) {
        gid = g;
        break;
      }
    }
    if (gid == UINT32_MAX) {
      gid = static_cast<uint32_t>(reps.size());
      reps.push_back(static_cast<uint32_t>(r));
      sums.push_back(0.0);
      bucket.push_back(gid);
    }
    sums[gid] += c.probe_val[r];
  }
  *sink += matches + reps.size();
  return sums.empty() ? 0.0 : sums[0];
}

double NewJoinAgg(const Columns& c, size_t* sink) {
  // Column-at-a-time hashing, the engine's current math: HashCombine mixes
  // its value argument internally, no extra finalizer per cell.
  std::vector<uint64_t> bh(c.build_key.size(), kSeed);
  for (size_t r = 0; r < c.build_key.size(); ++r) {
    bh[r] = jb::HashCombine(bh[r], static_cast<uint64_t>(c.build_key[r]));
  }
  std::vector<uint64_t> ph(c.probe_key.size(), kSeed);
  for (size_t r = 0; r < c.probe_key.size(); ++r) {
    ph[r] = jb::HashCombine(ph[r], static_cast<uint64_t>(c.probe_key[r]));
  }
  jb::exec::hash::JoinHashTable table;
  table.Build(bh.data(), c.build_key.size());
  size_t matches = 0;
  for (size_t l = 0; l < c.probe_key.size(); ++l) {
    for (uint32_t r = table.Probe(ph[l]); r != jb::exec::hash::kInvalidIndex;
         r = table.Next(r)) {
      if (c.build_key[r] == c.probe_key[l]) ++matches;
    }
  }
  jb::exec::hash::GroupHashTable groups(c.probe_key.size());
  std::vector<uint32_t> reps;
  std::vector<double> sums;
  for (size_t r = 0; r < c.probe_key.size(); ++r) {
    uint32_t gid = groups.FindOrAdd(ph[r], [&](uint32_t g) {
      return c.probe_key[reps[g]] == c.probe_key[r];
    });
    if (gid == reps.size()) {
      reps.push_back(static_cast<uint32_t>(r));
      sums.push_back(0.0);
    }
    sums[gid] += c.probe_val[r];
  }
  *sink += matches + reps.size();
  return sums.empty() ? 0.0 : sums[0];
}

struct SweepResult {
  std::string name;
  double old_seconds = 0;
  double new_seconds = 0;
  double speedup = 0;
};

/// Engine-level smoke: join+agg queries through the full SQL pipeline; the
/// hash counters this produces are deterministic (thread-count and machine
/// independent by construction) and guarded against the committed baseline.
struct EngineCounters {
  double seconds = 0;
  size_t queries = 0;
  size_t benchmark_sink = 0;  ///< result rows; keeps the loop observable
  jb::plan::PlanStats stats;
};

EngineCounters RunEngineSmoke() {
  jb::exec::Database db(jb::EngineProfile::DSwap());
  jb::Rng rng(31);
  const size_t n = jb::bench::ScaledRows(120000);
  std::vector<int64_t> k1(n), k2(n);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    k1[i] = rng.NextInt(0, 1999);
    k2[i] = rng.NextInt(0, 49);
    v[i] = rng.NextDouble();
  }
  db.RegisterTable(jb::TableBuilder("t")
                       .AddInts("k1", k1)
                       .AddInts("k2", k2)
                       .AddDoubles("v", v)
                       .Build());
  std::vector<int64_t> dk(2000);
  std::vector<double> dw(2000);
  for (size_t i = 0; i < dk.size(); ++i) {
    dk[i] = static_cast<int64_t>(i);
    dw[i] = rng.NextDouble();
  }
  db.RegisterTable(
      jb::TableBuilder("d").AddInts("k1", dk).AddDoubles("w", dw).Build());
  const char* queries[] = {
      "SELECT t.k2 AS g, SUM(t.v) AS s FROM t JOIN d ON t.k1 = d.k1 "
      "GROUP BY t.k2",
      "SELECT t.k1 AS g, COUNT(*) AS c, AVG(t.v) AS a FROM t "
      "SEMI JOIN d ON t.k1 = d.k1 GROUP BY t.k1",
      "SELECT d.w AS w, MIN(t.v) AS lo, MAX(t.v) AS hi FROM t "
      "JOIN d ON t.k1 = d.k1 GROUP BY d.w",
      "SELECT DISTINCT t.k2 AS g FROM t ANTI JOIN d ON t.k1 = d.k1",
      "SELECT t.k2 AS g, SUM(t.v) AS s FROM t WHERE t.k1 IN "
      "(SELECT d.k1 FROM d WHERE d.w > 0.5) GROUP BY t.k2",
  };
  EngineCounters out;
  db.ClearPlanStats();
  auto t0 = std::chrono::steady_clock::now();
  for (const char* q : queries) {
    auto res = db.Query(q);
    out.benchmark_sink += res->rows;
    ++out.queries;
  }
  auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.stats = db.PlanStatsTotals();
  return out;
}

void WriteJson(const std::vector<SweepResult>& sweep, double speedup,
               const EngineCounters& engine) {
  const char* path = std::getenv("JB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_PR5.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("  -- could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"hash_infra\",\n"
               "  \"scale\": %.3f,\n"
               "  \"sweep\": [\n",
               jb::bench::Scale());
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"old_seconds\": %.6f, "
                 "\"new_seconds\": %.6f, \"speedup\": %.3f}%s\n",
                 sweep[i].name.c_str(), sweep[i].old_seconds,
                 sweep[i].new_seconds, sweep[i].speedup,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"speedup\": %.3f,\n"
               "  \"engine_seconds\": %.4f,\n"
               "  \"counters\": {\n"
               "    \"engine_queries\": %zu,\n"
               "    \"hash_probes\": %zu,\n"
               "    \"hash_chain_follows\": %zu,\n"
               "    \"hash_bytes\": %zu\n"
               "  }\n"
               "}\n",
               speedup, engine.seconds, engine.queries,
               engine.stats.hash_probes, engine.stats.hash_chain_follows,
               engine.stats.hash_bytes);
  std::fclose(f);
  std::printf("  -- wrote %s\n", path);
}

}  // namespace

int main() {
  Header("Hash infrastructure sweep (PR 5)",
         "join build/probe + group-by kernels, node-map vs flat "
         "bucket-chained tables; engine join+agg smoke with deterministic "
         "hash counters");

  const Shape shapes[] = {
      {"dim_join", 2000, jb::bench::ScaledRows(200000), 2000},
      {"dup_heavy_join", jb::bench::ScaledRows(40000),
       jb::bench::ScaledRows(200000), 4000},
      {"high_card_group", jb::bench::ScaledRows(50000),
       jb::bench::ScaledRows(200000), 50000},
      {"low_card_group", 64, jb::bench::ScaledRows(200000), 64},
  };
  const int reps = 5;
  std::vector<SweepResult> sweep;
  double total_old = 0, total_new = 0;
  size_t sink = 0;
  for (const Shape& s : shapes) {
    Columns c = MakeColumns(s, 1234);
    SweepResult r;
    r.name = s.name;
    r.old_seconds = Seconds([&] { OldJoinAgg(c, &sink); }, reps);
    r.new_seconds = Seconds([&] { NewJoinAgg(c, &sink); }, reps);
    r.speedup = r.new_seconds > 0 ? r.old_seconds / r.new_seconds : 0;
    total_old += r.old_seconds;
    total_new += r.new_seconds;
    std::printf("  %-18s old %8.4fs  new %8.4fs  speedup %5.2fx\n", s.name,
                r.old_seconds, r.new_seconds, r.speedup);
    sweep.push_back(r);
  }
  double speedup = total_new > 0 ? total_old / total_new : 0;
  Note("sweep speedup (total old / total new): " + std::to_string(speedup) +
       "x  [sink " + std::to_string(sink % 10) + "]");

  EngineCounters engine = RunEngineSmoke();
  std::printf(
      "  engine smoke: %.4fs, hash_probes=%zu chain_follows=%zu "
      "hash_bytes=%zu\n",
      engine.seconds, engine.stats.hash_probes,
      engine.stats.hash_chain_follows, engine.stats.hash_bytes);

  WriteJson(sweep, speedup, engine);
  return 0;
}
