#!/usr/bin/env python3
"""Mechanical format gate over src/, tests/, bench/ and examples/.

Checks the objective, editor-independent invariants of the project style
(Google C++, see .clang-format): no tabs, no trailing whitespace, no CRLF
line endings, files end with exactly one newline, and headers start their
include guard with #pragma once. Full clang-format compliance is checked by
the CI format job on top of this gate (see .github/workflows/ci.yml).

Usage: check_format.py [--fix] [FILE ...]
With no FILE arguments, checks every tracked *.cc / *.h under the gated
directories. --fix rewrites fixable violations (whitespace only) in place.
Exit status: 0 when clean, 1 otherwise.
"""

import argparse
import os
import pathlib
import subprocess
import sys

GATED_DIRS = ("src/", "tests/", "bench/", "examples/")


def tracked_files():
    root = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"], capture_output=True,
        text=True, check=True).stdout.strip()
    os.chdir(root)
    out = subprocess.run(
        ["git", "ls-files", "*.cc", "*.h"], capture_output=True, text=True,
        check=True).stdout
    return [f for f in out.splitlines() if f.startswith(GATED_DIRS)]


def check_file(path, fix):
    problems = []
    raw = pathlib.Path(path).read_bytes()
    if b"\r" in raw:
        problems.append("CRLF line ending")
    text = raw.decode("utf-8", errors="replace")
    lines = text.split("\n")
    for i, line in enumerate(lines, 1):
        if "\t" in line:
            problems.append(f"line {i}: tab character")
        if line != line.rstrip():
            problems.append(f"line {i}: trailing whitespace")
    if text and not text.endswith("\n"):
        problems.append("missing final newline")
    if text.endswith("\n\n"):
        problems.append("multiple trailing newlines")
    if path.endswith(".h"):
        head = [l for l in lines[:10] if l.strip()]
        if head and not any(l.startswith("#pragma once") for l in lines[:10]):
            problems.append("header lacks #pragma once in the first 10 lines")
    if problems and fix:
        fixed = "\n".join(l.rstrip() for l in text.replace("\r\n", "\n")
                          .replace("\r", "\n").split("\n"))
        fixed = fixed.rstrip("\n") + "\n" if fixed.strip() else fixed
        pathlib.Path(path).write_text(fixed)
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*")
    parser.add_argument("--fix", action="store_true")
    args = parser.parse_args()

    files = args.files or tracked_files()
    failed = False
    for path in files:
        problems = check_file(path, args.fix)
        for p in problems:
            print(f"{path}: {p}")
            failed = True
    if failed and args.fix:
        print("-- whitespace violations rewritten in place; re-run to verify")
    elif not failed:
        print(f"ok: {len(files)} files clean")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
