#!/usr/bin/env python3
"""Bench-regression guard: compare deterministic counters in a bench JSON
against a committed baseline and fail when any counter regresses beyond the
allowed fraction.

Usage:
    compare_bench.py BASELINE.json CURRENT.json PATH [PATH ...]
                     [--max-regress 0.10]

PATH is a dotted path into the JSON (e.g. "planner_on.feature_queries").
A trailing ".*" expands to every numeric key of the baseline object at that
path (e.g. "counters.*"). Counters are higher-is-worse: a regression is
current > baseline * (1 + max_regress). Improvements beyond the same margin
are reported as a hint to refresh the baseline, but do not fail.

Exit status: 0 when every counter is within bounds, 1 otherwise.
"""

import argparse
import json
import sys


def resolve(doc, path):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def expand(baseline, paths):
    out = []
    for path in paths:
        if path.endswith(".*"):
            prefix = path[:-2]
            node = resolve(baseline, prefix) if prefix else baseline
            if not isinstance(node, dict):
                print(f"FAIL {path}: baseline has no object at '{prefix}'")
                return None
            for key, value in node.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    out.append(f"{prefix}.{key}" if prefix else key)
        else:
            out.append(path)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("paths", nargs="+")
    parser.add_argument("--max-regress", type=float, default=0.10)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    paths = expand(baseline, args.paths)
    if paths is None:
        return 1

    failed = False
    for path in paths:
        base = resolve(baseline, path)
        cur = resolve(current, path)
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            print(f"FAIL {path}: missing or non-numeric in baseline")
            failed = True
            continue
        if not isinstance(cur, (int, float)) or isinstance(cur, bool):
            print(f"FAIL {path}: missing or non-numeric in current output")
            failed = True
            continue
        limit = base * (1.0 + args.max_regress)
        if cur > limit:
            print(f"FAIL {path}: {cur} > {base} (+{args.max_regress:.0%} allowed)")
            failed = True
        elif base > 0 and cur < base * (1.0 - args.max_regress):
            print(f"NOTE {path}: improved {base} -> {cur}; consider refreshing "
                  f"the baseline")
        else:
            print(f"ok   {path}: {cur} (baseline {base})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
