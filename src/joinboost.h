#pragma once

/// Umbrella header: the public JoinBoost-C++ API.
///
/// Typical usage (mirrors the paper's Figure 4):
///
///   joinboost::exec::Database db;          // or bring your own profile
///   db.LoadTable(sales); db.LoadTable(dates);
///
///   joinboost::Dataset train_set(&db);
///   train_set.AddTable("sales", /*features=*/{}, /*y=*/"net_profit");
///   train_set.AddTable("date", {"holiday", "weekend"});
///   train_set.AddJoin("sales", "date", {"date_id"});
///
///   joinboost::core::TrainParams params;
///   params.objective = "regression";
///   auto result = joinboost::Train(params, train_set);
///   double yhat = result.model.Predict(row);

#include "core/dataset.h"      // IWYU pragma: export
#include "core/evaluate.h"     // IWYU pragma: export
#include "core/flat_forest.h"  // IWYU pragma: export
#include "core/model.h"        // IWYU pragma: export
#include "core/params.h"       // IWYU pragma: export
#include "core/train.h"        // IWYU pragma: export
#include "exec/engine.h"       // IWYU pragma: export
#include "serve/serving.h"     // IWYU pragma: export
#include "storage/engine_profile.h"  // IWYU pragma: export
#include "storage/table.h"     // IWYU pragma: export
