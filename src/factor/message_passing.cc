#include "factor/message_passing.h"

#include <algorithm>
#include <sstream>

#include "semiring/sql_gen.h"
#include "util/check.h"

namespace joinboost {
namespace factor {

namespace {

std::string JoinKeysCondition(const std::string& left_alias,
                              const std::string& right_alias,
                              const std::vector<std::string>& keys) {
  std::string out;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i) out += " AND ";
    out += left_alias + "." + keys[i] + " = " + right_alias + "." + keys[i];
  }
  return out;
}

std::string ConjunctionSql(const std::vector<std::string>& preds) {
  std::string out;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i) out += " AND ";
    out += "(" + preds[i] + ")";
  }
  return out;
}

std::string KeysList(const std::vector<std::string>& keys,
                     const std::string& alias = "") {
  std::string out;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i) out += ", ";
    if (!alias.empty()) out += alias + ".";
    out += keys[i];
  }
  return out;
}

}  // namespace

bool PredicateSet::AnyIn(const std::vector<int>& rels) const {
  for (int r : rels) {
    auto it = preds_.find(r);
    if (it != preds_.end() && !it->second.empty()) return true;
  }
  return false;
}

std::string PredicateSet::Signature(const std::vector<int>& rels) const {
  std::ostringstream os;
  for (int r : rels) {
    auto it = preds_.find(r);
    if (it == preds_.end() || it->second.empty()) continue;
    os << r << ":";
    for (const auto& p : it->second) os << p << ";";
    os << "|";
  }
  return os.str();
}

Factorizer::Factorizer(exec::Database* db, const graph::JoinGraph* graph,
                       FactorizerOptions options)
    : db_(db), graph_(graph), options_(std::move(options)) {
  bindings_.resize(graph_->num_relations());
  epochs_.assign(graph_->num_relations(), 0);
}

Factorizer::~Factorizer() {
  for (const auto& t : owned_tables_) db_->catalog().DropIfExists(t);
}

void Factorizer::BindRelation(int rel, RelationBinding binding) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  bindings_.at(static_cast<size_t>(rel)) = std::move(binding);
}

void Factorizer::BumpEpoch(int rel) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ++epochs_.at(static_cast<size_t>(rel));
  // Cached messages keyed on stale epochs are now unreachable; drop their
  // tables lazily when the cache is cleared. (Table space is reclaimed by
  // ClearCache() / destructor.)
}

const std::vector<int>& Factorizer::SubtreeRels(int u, int v) {
  std::string key = std::to_string(u) + "_" + std::to_string(v);
  auto it = subtree_cache_.find(key);
  if (it != subtree_cache_.end()) return it->second;
  std::vector<int> rels;
  std::vector<int> stack = {u};
  std::vector<bool> seen(graph_->num_relations(), false);
  seen[static_cast<size_t>(u)] = true;
  if (v >= 0) seen[static_cast<size_t>(v)] = true;
  while (!stack.empty()) {
    int r = stack.back();
    stack.pop_back();
    rels.push_back(r);
    for (auto [n, e] : graph_->Neighbors(r)) {
      (void)e;
      if (!seen[static_cast<size_t>(n)]) {
        seen[static_cast<size_t>(n)] = true;
        stack.push_back(n);
      }
    }
  }
  std::sort(rels.begin(), rels.end());
  return subtree_cache_.emplace(key, std::move(rels)).first->second;
}

bool Factorizer::RefComplete(int from, int to,
                             const std::vector<std::string>& keys) {
  std::string key = std::to_string(from) + "_" + std::to_string(to);
  auto it = ref_complete_cache_.find(key);
  if (it != ref_complete_cache_.end()) return it->second;
  const std::string& from_tbl = binding(from).table;
  const std::string& to_tbl = binding(to).table;
  std::string sql = "SELECT COUNT(*) AS c FROM " + to_tbl + " ANTI JOIN " +
                    from_tbl + " ON " +
                    JoinKeysCondition(to_tbl, from_tbl, keys);
  double missing = db_->QueryScalarDouble(sql, "setup");
  bool complete = missing == 0.0;
  ref_complete_cache_.emplace(key, complete);
  return complete;
}

std::string Factorizer::CacheKey(const char* prefix, int from, int to,
                                 const PredicateSet& preds) {
  const std::vector<int>& rels = SubtreeRels(from, to);
  std::ostringstream os;
  os << prefix << "|" << from << ">" << to << "|" << preds.Signature(rels)
     << "|";
  for (int r : rels) os << epochs_[static_cast<size_t>(r)] << ",";
  os << "|q" << options_.track_q;
  return os.str();
}

std::string Factorizer::NewTempName() {
  return options_.temp_prefix + std::to_string(temp_counter_++);
}

Message Factorizer::GetSelector(int from, int to, const PredicateSet& preds,
                                const std::string& tag) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const std::vector<int>& rels = SubtreeRels(from, to);
  if (!preds.AnyIn(rels)) return Message{};  // kNone

  std::string key = CacheKey("sel", from, to, preds);
  if (options_.cache_messages) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
  }
  ++cache_misses_;

  // Find the connecting edge from->to for the key attributes.
  int edge_idx = -1;
  for (auto [n, e] : graph_->Neighbors(from)) {
    if (n == to) {
      edge_idx = e;
      break;
    }
  }
  JB_CHECK_MSG(edge_idx >= 0, "no edge between relations " << from << " and "
                                                           << to);
  const auto& keys = graph_->edges()[static_cast<size_t>(edge_idx)].keys;

  const std::string& tbl = binding(from).table;
  std::ostringstream sql;
  std::string name = NewTempName();
  sql << "CREATE TABLE " << name << " AS SELECT DISTINCT "
      << KeysList(keys, tbl) << " FROM " << tbl;
  // Child selectors become semi-joins.
  for (auto [n, e] : graph_->Neighbors(from)) {
    if (n == to) continue;
    Message child = GetSelector(n, from, preds, tag);
    if (child.kind == Message::Kind::kNone) continue;
    JB_CHECK(child.kind == Message::Kind::kSelection);
    sql << " SEMI JOIN " << child.table << " ON "
        << JoinKeysCondition(tbl, child.table, child.keys);
    (void)e;
  }
  const auto* own = preds.For(from);
  if (own && !own->empty()) sql << " WHERE " << ConjunctionSql(*own);

  db_->Execute(sql.str(), tag);
  owned_tables_.push_back(name);
  ++messages_materialized_;

  Message msg;
  msg.kind = Message::Kind::kSelection;
  msg.table = name;
  msg.keys = keys;
  if (options_.cache_messages) cache_.emplace(key, msg);
  return msg;
}

Message Factorizer::GetMessage(int from, int to, const PredicateSet& preds,
                               const std::string& tag) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const std::vector<int>& rels = SubtreeRels(from, to);

  // Edge keys between from and to.
  int edge_idx = -1;
  for (auto [n, e] : graph_->Neighbors(from)) {
    if (n == to) {
      edge_idx = e;
      break;
    }
  }
  JB_CHECK_MSG(edge_idx >= 0, "no edge between relations " << from << " and "
                                                           << to);
  const graph::Edge& edge = graph_->edges()[static_cast<size_t>(edge_idx)];
  const auto& keys = edge.keys;

  // Does the subtree carry any annotation?
  bool any_annotated = false;
  for (int r : rels) any_annotated |= bindings_[static_cast<size_t>(r)].annotated;

  // Identity-path test (Appendix D.2): unannotated subtree where *every*
  // edge, oriented away from `to`, is N-to-1 (far side unique). Only then do
  // join multiplicities stay 1 so that dropping the message (or reducing it
  // to a semi-join) preserves annotations.
  bool from_unique = (edge.a == from) ? edge.unique_a : edge.unique_b;
  bool subtree_n1 = from_unique;
  bool subtree_complete = true;
  if (subtree_n1) {
    std::vector<std::pair<int, int>> stack = {{from, to}};
    while (!stack.empty() && subtree_n1) {
      auto [cur, par] = stack.back();
      stack.pop_back();
      for (auto [n, e] : graph_->Neighbors(cur)) {
        if (n == par) continue;
        const graph::Edge& ed = graph_->edges()[static_cast<size_t>(e)];
        bool n_unique = (ed.a == n) ? ed.unique_a : ed.unique_b;
        if (!n_unique) {
          subtree_n1 = false;
          break;
        }
        stack.emplace_back(n, cur);
      }
    }
  }
  bool identity = !any_annotated && subtree_n1;
  if (identity) {
    if (!preds.AnyIn(rels)) {
      // No predicates: droppable only if no join along the subtree can
      // filter its parent (referential completeness on every edge).
      std::vector<std::pair<int, int>> stack = {{from, to}};
      subtree_complete = RefComplete(from, to, keys);
      while (!stack.empty() && subtree_complete) {
        auto [cur, par] = stack.back();
        stack.pop_back();
        for (auto [n, e] : graph_->Neighbors(cur)) {
          if (n == par) continue;
          const graph::Edge& ed = graph_->edges()[static_cast<size_t>(e)];
          if (!RefComplete(n, cur, ed.keys)) {
            subtree_complete = false;
            break;
          }
          stack.emplace_back(n, cur);
        }
      }
      if (subtree_complete) return Message{};  // kNone
      // Incomplete keys without predicates: fall through to a full message
      // (counts are all 1, but the filtering effect must be preserved).
    } else {
      // Predicated identity path → semi-join selection message (§5.3.1).
      return GetSelector(from, to, preds, tag);
    }
  }

  // Full semi-ring message.
  std::string key = CacheKey("msg", from, to, preds);
  if (options_.cache_messages) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
  }
  ++cache_misses_;

  const RelationBinding& bind = binding(from);
  const std::string& tbl = bind.table;

  // Gather child messages.
  std::vector<Message> full_children;
  std::vector<Message> sel_children;
  for (auto [n, e] : graph_->Neighbors(from)) {
    if (n == to) continue;
    (void)e;
    Message child = GetMessage(n, from, preds, tag);
    if (child.kind == Message::Kind::kFull) {
      full_children.push_back(std::move(child));
    } else if (child.kind == Message::Kind::kSelection) {
      sel_children.push_back(std::move(child));
    }
  }

  // ⊗-product operands: this relation + full children.
  std::vector<semiring::SqlOperand> ops;
  {
    semiring::SqlOperand op;
    op.alias = tbl;
    op.has_annotation = bind.annotated || bind.has_c;
    op.c_col = bind.has_c ? bind.c_col : "";
    op.s_col = bind.s_col;
    op.q_col = options_.track_q ? bind.q_col : "";
    if (bind.annotated && !bind.has_c) {
      // Annotated with implicit count 1: c-part contributes nothing to the
      // product, handled by leaving c_col empty — but MulC needs *some*
      // count. Use literal handled below via c_exprs.
    }
    ops.push_back(op);
  }
  for (const auto& child : full_children) {
    semiring::SqlOperand op;
    op.alias = child.table;
    op.has_annotation = true;
    op.c_col = "c";
    op.s_col = child.has_s ? "s" : "";
    op.q_col = child.has_q ? "q" : "";
    ops.push_back(op);
  }

  bool has_s = false;
  for (int r : rels) has_s |= bindings_[static_cast<size_t>(r)].annotated;
  bool has_q = has_s && options_.track_q;

  // Build product expressions. We assemble them manually to honour implicit
  // components (missing c => 1, missing s => 0).
  auto c_product = [&](int skip1, int skip2) -> std::string {
    std::string out;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (static_cast<int>(i) == skip1 || static_cast<int>(i) == skip2) continue;
      if (!ops[i].has_annotation || ops[i].c_col.empty()) continue;
      if (!out.empty()) out += " * ";
      out += ops[i].C();
    }
    return out;
  };
  std::string c_expr = c_product(-1, -1);
  if (c_expr.empty()) c_expr = "1";

  std::string s_expr;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_annotation || ops[i].s_col.empty()) continue;
    // The relation's own s column only exists if it is annotated.
    if (i == 0 && !bind.annotated) continue;
    std::string term = ops[i].S();
    std::string rest = c_product(static_cast<int>(i), -1);
    if (!rest.empty()) term += " * " + rest;
    if (!s_expr.empty()) s_expr += " + ";
    s_expr += term;
  }
  if (s_expr.empty()) s_expr = "0";

  std::string q_expr;
  if (has_q) {
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!ops[i].has_annotation || ops[i].q_col.empty()) continue;
      if (i == 0 && !bind.annotated) continue;
      std::string term = ops[i].Q();
      std::string rest = c_product(static_cast<int>(i), -1);
      if (!rest.empty()) term += " * " + rest;
      if (!q_expr.empty()) q_expr += " + ";
      q_expr += term;
    }
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!ops[i].has_annotation || ops[i].s_col.empty()) continue;
      if (i == 0 && !bind.annotated) continue;
      for (size_t j = i + 1; j < ops.size(); ++j) {
        if (!ops[j].has_annotation || ops[j].s_col.empty()) continue;
        std::string term = "2 * " + ops[i].S() + " * " + ops[j].S();
        std::string rest = c_product(static_cast<int>(i), static_cast<int>(j));
        if (!rest.empty()) term += " * " + rest;
        if (!q_expr.empty()) q_expr += " + ";
        q_expr += term;
      }
    }
    if (q_expr.empty()) q_expr = "0";
  }

  std::string name = NewTempName();
  std::ostringstream sql;
  sql << "CREATE TABLE " << name << " AS SELECT " << KeysList(keys, tbl)
      << ", SUM(" << c_expr << ") AS c";
  if (has_s) sql << ", SUM(" << s_expr << ") AS s";
  if (has_q) sql << ", SUM(" << q_expr << ") AS q";
  sql << " FROM " << tbl;
  for (const auto& child : full_children) {
    sql << " JOIN " << child.table << " ON "
        << JoinKeysCondition(tbl, child.table, child.keys);
  }
  for (const auto& child : sel_children) {
    sql << " SEMI JOIN " << child.table << " ON "
        << JoinKeysCondition(tbl, child.table, child.keys);
  }
  const auto* own = preds.For(from);
  if (own && !own->empty()) sql << " WHERE " << ConjunctionSql(*own);
  sql << " GROUP BY " << KeysList(keys, tbl);

  db_->Execute(sql.str(), tag);
  owned_tables_.push_back(name);
  ++messages_materialized_;

  Message msg;
  msg.kind = Message::Kind::kFull;
  msg.table = name;
  msg.keys = keys;
  msg.has_s = has_s;
  msg.has_q = has_q;
  if (options_.cache_messages) cache_.emplace(key, msg);
  return msg;
}

std::vector<Message> Factorizer::IncomingMessages(int root,
                                                  const PredicateSet& preds,
                                                  const std::string& tag) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<Message> msgs;
  for (auto [n, e] : graph_->Neighbors(root)) {
    (void)e;
    Message m = GetMessage(n, root, preds, tag);
    if (m.kind != Message::Kind::kNone) msgs.push_back(std::move(m));
  }
  return msgs;
}

Factorizer::AbsorptionParts Factorizer::BuildAbsorption(
    int root, const PredicateSet& preds, const std::string& tag) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const RelationBinding& bind = binding(root);
  const std::string& tbl = bind.table;
  std::vector<Message> msgs = IncomingMessages(root, preds, tag);

  std::vector<const Message*> full;
  std::ostringstream from;
  from << "FROM " << tbl;
  for (const auto& m : msgs) {
    if (m.kind == Message::Kind::kFull) {
      from << " JOIN " << m.table << " ON "
           << JoinKeysCondition(tbl, m.table, m.keys);
      full.push_back(&m);
    } else {
      from << " SEMI JOIN " << m.table << " ON "
           << JoinKeysCondition(tbl, m.table, m.keys);
    }
  }
  const auto* own = preds.For(root);
  if (own && !own->empty()) from << " WHERE " << ConjunctionSql(*own);

  // Product expressions across root + full messages.
  auto c_product = [&](int skip) -> std::string {
    std::string out;
    if (bind.has_c && skip != 0) out += tbl + "." + bind.c_col;
    for (size_t i = 0; i < full.size(); ++i) {
      if (static_cast<int>(i) + 1 == skip) continue;
      if (!out.empty()) out += " * ";
      out += full[i]->table + ".c";
    }
    return out;
  };
  AbsorptionParts parts;
  parts.from_where = from.str();
  parts.c_expr = c_product(-1);
  if (parts.c_expr.empty()) parts.c_expr = "1";

  std::string s_expr;
  if (bind.annotated) {
    std::string term = tbl + "." + bind.s_col;
    std::string rest = c_product(0);
    if (!rest.empty()) term += " * " + rest;
    s_expr = term;
  }
  for (size_t i = 0; i < full.size(); ++i) {
    if (!full[i]->has_s) continue;
    std::string term = full[i]->table + ".s";
    std::string rest = c_product(static_cast<int>(i) + 1);
    if (!rest.empty()) term += " * " + rest;
    if (!s_expr.empty()) s_expr += " + ";
    s_expr += term;
  }
  parts.s_expr = s_expr.empty() ? "0" : s_expr;

  if (options_.track_q) {
    // q = Σ qᵢ·Πc + 2·Σ sᵢsⱼ·Πc  over annotated operands.
    struct Op {
      std::string s, q;
      int idx;
    };
    std::vector<Op> annotated;
    if (bind.annotated) {
      annotated.push_back({tbl + "." + bind.s_col, tbl + "." + bind.q_col, 0});
    }
    for (size_t i = 0; i < full.size(); ++i) {
      if (full[i]->has_q) {
        annotated.push_back({full[i]->table + ".s", full[i]->table + ".q",
                             static_cast<int>(i) + 1});
      }
    }
    std::string q_expr;
    for (const auto& op : annotated) {
      std::string term = op.q;
      std::string rest = c_product(op.idx);
      if (!rest.empty()) term += " * " + rest;
      if (!q_expr.empty()) q_expr += " + ";
      q_expr += term;
    }
    for (size_t i = 0; i < annotated.size(); ++i) {
      for (size_t j = i + 1; j < annotated.size(); ++j) {
        // Π of counts excluding both operands: build manually.
        std::string rest;
        if (bind.has_c && annotated[i].idx != 0 && annotated[j].idx != 0) {
          rest += tbl + "." + bind.c_col;
        }
        for (size_t k = 0; k < full.size(); ++k) {
          int idx = static_cast<int>(k) + 1;
          if (idx == annotated[i].idx || idx == annotated[j].idx) continue;
          if (!rest.empty()) rest += " * ";
          rest += full[k]->table + ".c";
        }
        std::string term = "2 * " + annotated[i].s + " * " + annotated[j].s;
        if (!rest.empty()) term += " * " + rest;
        if (!q_expr.empty()) q_expr += " + ";
        q_expr += term;
      }
    }
    parts.q_expr = q_expr.empty() ? "0" : q_expr;
  }
  return parts;
}

std::string Factorizer::BatchedHistogramSql(
    int root, const std::vector<std::string>& attrs, const PredicateSet& preds,
    const std::string& tag) {
  AbsorptionParts parts = BuildAbsorption(root, preds, tag);
  // No q column: the split criterion only needs (c, s) — §5.3.1 — and the
  // per-feature split SQL computes no q either.
  return semiring::VarianceSqlGen::HistogramQuery(
      attrs, parts.from_where, parts.c_expr, parts.s_expr);
}

semiring::VarianceElem Factorizer::TotalAggregate(int root,
                                                  const PredicateSet& preds,
                                                  const std::string& tag) {
  AbsorptionParts parts = BuildAbsorption(root, preds, tag);
  std::string sql = "SELECT SUM(" + parts.c_expr + ") AS c, SUM(" +
                    parts.s_expr + ") AS s";
  if (options_.track_q) sql += ", SUM(" + parts.q_expr + ") AS q";
  sql += " " + parts.from_where;
  auto res = db_->Query(sql, tag);
  semiring::VarianceElem out;
  if (res->rows == 0) return out;
  Value c = res->GetValue(0, 0);
  Value s = res->GetValue(0, 1);
  out.c = c.null ? 0 : c.AsDouble();
  out.s = s.null ? 0 : s.AsDouble();
  if (options_.track_q) {
    Value q = res->GetValue(0, 2);
    out.q = q.null ? 0 : q.AsDouble();
  }
  return out;
}

void Factorizer::ClearCache() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (const auto& t : owned_tables_) db_->catalog().DropIfExists(t);
  owned_tables_.clear();
  cache_.clear();
}

}  // namespace factor
}  // namespace joinboost
