#include "factor/cuboid.h"

#include <cmath>
#include <sstream>

#include "core/evaluate.h"
#include "core/trainer.h"
#include "factor/message_passing.h"
#include "semiring/sql_gen.h"
#include "util/check.h"
#include "util/timer.h"

namespace joinboost {
namespace factor {

using semiring::SqlDouble;

CuboidResult TrainCuboidGbdt(Dataset& dataset,
                             const core::TrainParams& params) {
  JB_CHECK_MSG(params.max_bin > 0, "cuboid training requires max_bin > 0");
  dataset.Prepare();
  exec::Database& db = *dataset.db();
  const graph::JoinGraph& g = dataset.graph();
  CuboidResult out;
  Timer timer;

  // 1. Per-feature equi-width bin expressions (computed via SQL MIN/MAX).
  struct BinSpec {
    std::string feature;
    double min = 0, width = 1;
  };
  std::vector<BinSpec> specs;
  std::vector<std::string> features = g.AllFeatures();
  for (const auto& f : features) {
    int rel = g.RelationOfFeature(f);
    auto mm = db.Query("SELECT MIN(" + f + ") AS a, MAX(" + f + ") AS b FROM " +
                           g.relation(rel).name,
                       "cuboid");
    BinSpec spec;
    spec.feature = f;
    spec.min = mm->GetValue(0, 0).AsDouble();
    double max = mm->GetValue(0, 1).AsDouble();
    spec.width = (max - spec.min) / static_cast<double>(params.max_bin);
    if (spec.width <= 0) spec.width = 1;
    specs.push_back(spec);
  }
  auto bin_expr = [&](const BinSpec& s) {
    return "LEAST(INT((" + s.feature + " - " + SqlDouble(s.min) + ") / " +
           SqlDouble(s.width) + "), " + std::to_string(params.max_bin - 1) +
           ")";
  };

  // 2. Materialize the cuboid: GROUP BY all binned features over the join
  // with variance semi-ring aggregates (c, s, q) on Y.
  const std::string& y =
      g.relation(g.YRelation()).y_column;
  std::string cuboid = "jb_cuboid";
  db.catalog().DropIfExists(cuboid);
  {
    std::ostringstream sql;
    sql << "CREATE TABLE " << cuboid << " AS SELECT ";
    for (size_t i = 0; i < specs.size(); ++i) {
      sql << bin_expr(specs[i]) << " AS " << specs[i].feature << ", ";
    }
    sql << "COUNT(*) AS c, SUM(" << y << ") AS s, SUM(" << y << " * " << y
        << ") AS q";
    std::string join = core::FullJoinSql(dataset);
    // Reuse only the FROM part of the full join; rebuild with group by.
    size_t from_pos = join.find(" FROM ");
    sql << join.substr(from_pos) << " GROUP BY ";
    for (size_t i = 0; i < specs.size(); ++i) {
      if (i) sql << ", ";
      sql << bin_expr(specs[i]);
    }
    db.Execute(sql.str(), "cuboid");
  }
  out.cuboid_rows = db.catalog().Get(cuboid)->num_rows();

  // Base score = global mean; shift annotations to residual space:
  // Σ lift(y − base) = (c, s − base·c, q − 2·base·s + base²·c).
  auto tot = db.Query("SELECT SUM(c) AS c, SUM(s) AS s FROM " + cuboid,
                      "cuboid");
  double total_c = tot->GetValue(0, 0).AsDouble();
  double base = total_c > 0 ? tot->GetValue(0, 1).AsDouble() / total_c : 0;
  db.Execute("UPDATE " + cuboid + " SET s = s - " + SqlDouble(base) +
                 " * c, q = q - " + SqlDouble(2 * base) + " * s + " +
                 SqlDouble(base * base) + " * c",
             "cuboid");
  out.cuboid_seconds = timer.Seconds();

  // 3. Train over the cuboid as a single weighted relation.
  timer.Reset();
  graph::JoinGraph mini;
  mini.AddRelation(cuboid, features, "");
  // The grower needs a Y-ish relation only for aggregates; bind annotations
  // directly.
  FactorizerOptions fopts;
  fopts.cache_messages = true;
  fopts.track_q = true;
  fopts.temp_prefix = "jb_cuboid_msg_";
  Factorizer fac(&db, &mini, fopts);
  RelationBinding binding;
  binding.table = cuboid;
  binding.annotated = true;
  binding.has_c = true;
  fac.BindRelation(0, binding);

  core::TrainParams tree_params = params;
  core::TreeGrower grower(&fac, tree_params);

  core::Ensemble& model = out.model;
  model.base_score = base;
  model.average = false;

  auto rmse_now = [&]() {
    auto r = db.Query("SELECT SUM(q) AS q, SUM(c) AS c FROM " + cuboid,
                      "cuboid");
    double qv = r->GetValue(0, 0).AsDouble();
    double cv = r->GetValue(0, 1).AsDouble();
    return cv > 0 ? std::sqrt(std::max(0.0, qv / cv)) : 0.0;
  };
  out.rmse_curve.push_back(rmse_now());

  for (int iter = 0; iter < params.num_iterations; ++iter) {
    core::GrowthResult grown = grower.Grow(features, 0, nullptr);
    for (const auto& leaf : grown.leaves) {
      grown.tree.nodes[static_cast<size_t>(leaf.node)].prediction =
          params.learning_rate * leaf.raw_value;
    }
    // Weighted residual update: (c,s,q) ⊗ lift(−δ) per leaf.
    for (const auto& leaf : grown.leaves) {
      double delta = params.learning_rate * leaf.raw_value;
      std::string cond;
      if (const auto* preds = leaf.preds.For(0)) {
        for (const auto& p : *preds) {
          if (!cond.empty()) cond += " AND ";
          cond += "(" + p + ")";
        }
      }
      std::string sql = "UPDATE " + cuboid + " SET s = s - " +
                        SqlDouble(delta) + " * c, q = q + " +
                        SqlDouble(delta * delta) + " * c - " +
                        SqlDouble(2 * delta) + " * s";
      if (!cond.empty()) sql += " WHERE " + cond;
      db.Execute(sql, "update");
    }
    fac.BumpEpoch(0);
    model.trees.push_back(std::move(grown.tree));
    out.rmse_curve.push_back(rmse_now());
  }
  out.train_seconds = timer.Seconds();
  db.catalog().DropIfExists(cuboid);

  // Model thresholds live in bin space: translate back to raw feature space
  // so the returned model predicts on raw rows (threshold = upper edge).
  for (auto& tree : model.trees) {
    for (auto& node : tree.nodes) {
      if (node.is_leaf) continue;
      for (const auto& spec : specs) {
        if (spec.feature == node.feature) {
          node.threshold = spec.min + (node.threshold + 1.0) * spec.width;
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace factor
}  // namespace joinboost
