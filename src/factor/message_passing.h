#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/engine.h"
#include "graph/join_graph.h"
#include "semiring/semiring.h"

namespace joinboost {
namespace factor {

/// How a base relation participates in semi-ring aggregation.
struct RelationBinding {
  std::string table;       ///< physical (lifted-copy) table name in the DB
  bool annotated = false;  ///< carries the linear component column(s)
  bool has_c = false;      ///< explicit count/weight column (cuboids); else 1
  std::string c_col = "c";
  std::string s_col = "s";
  std::string q_col = "q";
};

/// Per-tree-node selection predicates: relation id → conjunction of SQL
/// predicate strings over that relation's columns. The signature of the
/// predicates inside a message's subtree is (part of) the message cache key —
/// this is exactly what makes messages shareable between parent and child
/// tree nodes (§5.5.1, Figure 6).
class PredicateSet {
 public:
  void Add(int rel, const std::string& pred) { preds_[rel].push_back(pred); }
  const std::vector<std::string>* For(int rel) const {
    auto it = preds_.find(rel);
    return it == preds_.end() ? nullptr : &it->second;
  }
  bool AnyIn(const std::vector<int>& rels) const;
  std::string Signature(const std::vector<int>& rels) const;
  const std::map<int, std::vector<std::string>>& all() const { return preds_; }

 private:
  std::map<int, std::vector<std::string>> preds_;
};

/// A computed (materialized) message.
struct Message {
  enum class Kind {
    kNone,       ///< identity — dropped entirely (Appendix D.2)
    kSelection,  ///< distinct surviving keys; consumed as a semi-join
    kFull,       ///< aggregated semi-ring annotations per key
  };
  Kind kind = Kind::kNone;
  std::string table;
  std::vector<std::string> keys;
  bool has_s = false;
  bool has_q = false;
};

struct FactorizerOptions {
  /// Materialize and reuse messages across tree nodes (JoinBoost). When
  /// false every request recomputes — the LMFAO/Batch behaviour (Fig 16a).
  bool cache_messages = true;
  /// Track the quadratic q component (needed to report absolute variance;
  /// the split criterion itself only needs c and s — §5.3.1 optimization).
  bool track_q = false;
  std::string temp_prefix = "jb_msg_";
};

/// Generates and executes message-passing SQL over a join graph (§3.1), with
/// bidirectional message caching, identity-message elision and selection
/// (semi-join) messages. All data access goes through SQL on the Database.
///
/// Thread safety: every public entry point serializes on an internal
/// recursive mutex, so one Factorizer may be shared by concurrent callers
/// (e.g. serving sessions racing a training thread). Message materialization
/// runs *while holding* the lock — deliberately: the trainer's message phase
/// is serial by design (intra-query parallelism does the scaling, §5.5), and
/// serializing here guarantees a message table is fully materialized before
/// any other thread can observe its cache entry.
class Factorizer {
 public:
  Factorizer(exec::Database* db, const graph::JoinGraph* graph,
             FactorizerOptions options);
  ~Factorizer();

  void BindRelation(int rel, RelationBinding binding);
  const RelationBinding& binding(int rel) const {
    return bindings_.at(static_cast<size_t>(rel));
  }

  /// Invalidate every cached message whose subtree covers `rel` (after a
  /// residual update of that relation's annotations).
  void BumpEpoch(int rel);

  /// Message from `from` toward `to` under node predicates.
  Message GetMessage(int from, int to, const PredicateSet& preds,
                     const std::string& tag);

  /// Pure selection variant (ignores annotations): the semi-join selectors
  /// used by residual updates (§5.3.1).
  Message GetSelector(int from, int to, const PredicateSet& preds,
                      const std::string& tag);

  /// All incoming messages of `root` under predicates.
  std::vector<Message> IncomingMessages(int root, const PredicateSet& preds,
                                        const std::string& tag);

  /// γ(σ(R⋈)) rooted at `root`: total (c, s, q) aggregate.
  semiring::VarianceElem TotalAggregate(int root, const PredicateSet& preds,
                                        const std::string& tag);

  /// FROM/WHERE fragment + ⊗-product select expressions for an absorption at
  /// `root`: callers compose "SELECT <attr>, SUM(c_expr), SUM(s_expr) ...".
  struct AbsorptionParts {
    std::string from_where;  ///< "FROM root JOIN m1 ON ... WHERE ..."
    std::string c_expr;
    std::string s_expr;
    std::string q_expr;  ///< empty unless track_q
  };
  AbsorptionParts BuildAbsorption(int root, const PredicateSet& preds,
                                  const std::string& tag);

  /// Batched split evaluation: one histogram query per relation per leaf.
  /// Builds the absorption at `root` (materializing messages — serial, like
  /// BuildAbsorption) and returns a single GROUPING SETS query whose rows
  /// with set_id = i form attribute i's (value, c, s) histogram —
  /// O(#relations) queries per leaf instead of O(#features). Result columns:
  /// set_id, attrs..., c, s (no q: the criterion needs only c and s). The
  /// returned SQL is read-only and may be executed concurrently with other
  /// relations' queries. `tag` labels any message-materialization queries
  /// issued while building the absorption (callers tag the histogram query
  /// itself when executing it).
  std::string BatchedHistogramSql(int root,
                                  const std::vector<std::string>& attrs,
                                  const PredicateSet& preds,
                                  const std::string& tag);

  size_t cache_hits() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return cache_hits_;
  }
  size_t cache_misses() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return cache_misses_;
  }
  size_t messages_materialized() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return messages_materialized_;
  }

  /// Drop all cached message tables.
  void ClearCache();

  exec::Database* db() { return db_; }
  const graph::JoinGraph& graph() const { return *graph_; }

 private:
  /// Relations reachable from `u` without crossing `v` (memoized).
  const std::vector<int>& SubtreeRels(int u, int v);

  /// True when every key of `to` finds a partner in `from` (lazily checked,
  /// memoized): required to drop identity messages (Appendix D.2).
  bool RefComplete(int from, int to, const std::vector<std::string>& keys);

  std::string CacheKey(const char* prefix, int from, int to,
                       const PredicateSet& preds);
  std::string NewTempName();

  /// Serializes all cache state (cache_, subtree_cache_, ref_complete_cache_,
  /// owned_tables_, counters, temp_counter_, epochs_) and message
  /// materialization. Recursive because GetMessage/GetSelector re-enter
  /// themselves and each other while walking the join tree.
  mutable std::recursive_mutex mu_;
  exec::Database* db_;
  const graph::JoinGraph* graph_;
  FactorizerOptions options_;
  std::vector<RelationBinding> bindings_;
  std::vector<uint64_t> epochs_;

  std::unordered_map<std::string, Message> cache_;
  std::unordered_map<std::string, std::vector<int>> subtree_cache_;
  std::unordered_map<std::string, bool> ref_complete_cache_;
  std::vector<std::string> owned_tables_;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
  size_t messages_materialized_ = 0;
  uint64_t temp_counter_ = 0;
};

}  // namespace factor
}  // namespace joinboost
