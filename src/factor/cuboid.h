#pragma once

#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/model.h"
#include "core/params.h"

namespace joinboost {
namespace factor {

/// Histogram-based cuboid training (Appendix D.3): bin every feature into
/// `params.max_bin` equi-width buckets, materialize the full dimensional
/// cuboid (GROUP BY all binned features with semi-ring aggregates), and run
/// gradient boosting over the cuboid with bag semantics (weighted
/// annotations). With few bins the cuboid is orders of magnitude smaller
/// than R⋈ and training accelerates dramatically (Figure 20).
struct CuboidResult {
  core::Ensemble model;
  double cuboid_seconds = 0;  ///< bin + materialize the cuboid
  double train_seconds = 0;
  size_t cuboid_rows = 0;
  /// Training RMSE after each iteration, computed exactly from the cuboid's
  /// (c, s, q) residual annotations: rmse = sqrt(Σq / Σc).
  std::vector<double> rmse_curve;
};

CuboidResult TrainCuboidGbdt(Dataset& dataset, const core::TrainParams& params);

}  // namespace factor
}  // namespace joinboost
