#include "serve/serving.h"

#include <chrono>

#include "util/check.h"
#include "util/error.h"
#include "util/fault_injection.h"

namespace joinboost {
namespace serve {

bool ServingContext::AdmissionGate::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  bool waited = false;
  if (max_wait_ms_ <= 0) {
    while (free_ <= 0) {
      waited = true;
      cv_.wait(lock);
    }
  } else {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(max_wait_ms_);
    while (free_ <= 0) {
      waited = true;
      if (cv_.wait_until(lock, give_up) == std::cv_status::timeout &&
          free_ <= 0) {
        throw AdmissionRejected("no admission slot freed within " +
                                std::to_string(max_wait_ms_) + "ms");
      }
    }
  }
  --free_;
  return waited;
}

void ServingContext::AdmissionGate::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++free_;
  }
  cv_.notify_one();
}

ServingContext::Admission::Admission(ServingContext* ctx) : ctx_(ctx) {
  try {
    if (ctx_->gate_.Acquire()) ctx_->admission_waits_.fetch_add(1);
  } catch (const AdmissionRejected&) {
    ctx_->admission_rejected_.fetch_add(1);
    throw;  // no slot was taken, and a throwing ctor skips the dtor's Release
  }
}

ServingContext::Admission::~Admission() { ctx_->gate_.Release(); }

ServingContext::ServingContext(exec::Database* db,
                               std::vector<std::string> served_tables)
    : db_(db),
      served_(std::move(served_tables)),
      gate_(db->profile().serve_admission_slots > 0
                ? db->profile().serve_admission_slots
                : db->exec_threads(),
            db->profile().serve_admission_max_wait_ms) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  PublishLocked(nullptr, nullptr);
}

SnapshotPtr ServingContext::PublishLocked(
    std::shared_ptr<const core::Ensemble> model,
    std::shared_ptr<const core::FlatForest> forest) {
  // Chaos point: a publish dying here must leave `current_` (and the version
  // store) untouched — sessions keep reading the previous snapshot.
  util::fault::Maybe("snapshot-publish");
  auto snap = std::make_shared<Snapshot>();
  snap->version = db_->versions().PublishVersion();
  for (const auto& name : served_) {
    snap->tables.Register(db_->catalog().Get(name));
  }
  snap->model = std::move(model);
  snap->forest = std::move(forest);
  current_ = snap;
  snapshots_published_.fetch_add(1);
  return snap;
}

ServingContext::Session ServingContext::OpenSession() {
  return Session(this, current());
}

SnapshotPtr ServingContext::current() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return current_;
}

SnapshotPtr ServingContext::Append(const std::string& table,
                                   const exec::ExecTable& rows) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  db_->AppendRows(table, rows);
  return PublishLocked(current_->model, current_->forest);
}

SnapshotPtr ServingContext::PublishModel(const core::Ensemble& model) {
  auto owned = std::make_shared<const core::Ensemble>(model);
  auto forest = std::make_shared<const core::FlatForest>(
      core::FlatForest::Compile(*owned));
  std::lock_guard<std::mutex> lock(publish_mu_);
  return PublishLocked(std::move(owned), std::move(forest));
}

SnapshotPtr ServingContext::Republish() {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return PublishLocked(current_->model, current_->forest);
}

std::shared_ptr<exec::ExecTable> ServingContext::Session::Query(
    const std::string& sql, const std::string& tag) {
  Admission slot(ctx_);
  // Per-request governance: the deadline clock starts now (after admission —
  // queueing does not eat the request's budget), tracked-allocation usage
  // resets, and a sticky Cancel() from any thread trips the first guard
  // check inside execution.
  guard_->ResetUsage();
  if (deadline_ms_ > 0) {
    guard_->SetDeadlineAfter(std::chrono::milliseconds(deadline_ms_));
  } else {
    guard_->ClearDeadline();
  }
  // Pin the session's snapshot catalog for the whole statement (subqueries
  // included): concurrent writers publishing new table versions stay
  // invisible until the session re-opens against a newer snapshot.
  exec::ReadContext rctx;
  rctx.catalog = &snap_->tables;
  rctx.tag = tag;
  rctx.guard = guard_.get();
  auto result = ctx_->db_->Query(rctx, sql);
  ctx_->snapshot_reads_.fetch_add(1);
  return result;
}

std::vector<double> ServingContext::Session::PredictBatch(
    const exec::ExecTable& rows) {
  JB_CHECK_MSG(snap_->forest != nullptr,
               "PredictBatch before any model was published");
  Admission slot(ctx_);
  std::vector<double> out = snap_->forest->PredictBatch(rows);
  ctx_->snapshot_reads_.fetch_add(1);
  ctx_->batched_predictions_.fetch_add(rows.rows);
  return out;
}

}  // namespace serve
}  // namespace joinboost
