#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/flat_forest.h"
#include "core/model.h"
#include "exec/engine.h"
#include "storage/catalog.h"
#include "util/query_guard.h"

namespace joinboost {
namespace serve {

/// An immutable, versioned view of the served state: the table set as of
/// publication plus the model (and its flat compilation) trained so far.
///
/// A snapshot's catalog holds the TablePtrs that were current when the
/// snapshot was published. Writers never mutate published tables — appends
/// and updates build replacements aside and install them with an atomic
/// catalog swap — so everything reachable from a Snapshot is frozen: reads
/// against it are reproducible bit-for-bit for as long as any session pins
/// it, regardless of concurrent writer activity.
struct Snapshot {
  uint64_t version = 0;  ///< VersionStore::PublishVersion() id
  Catalog tables;
  std::shared_ptr<const core::Ensemble> model;      ///< null before training
  std::shared_ptr<const core::FlatForest> forest;   ///< compiled `model`

  Snapshot() = default;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// The concurrent serving layer: sessions read pinned snapshots while
/// writers publish new versions.
///
/// Lifecycle of a version:
///   1. a writer mutates the database (AppendRows / newly trained trees);
///   2. it calls Append()/PublishModel(), which — under the publish lock —
///      stamps a fresh version id (VersionStore::PublishVersion), captures
///      the served tables' current TablePtrs into a new Snapshot, and swaps
///      it in as `current_`;
///   3. sessions opened afterwards pin the new snapshot; sessions opened
///      before keep theirs alive through shared ownership. Old snapshots die
///      when the last pinning session does.
///
/// Requests (queries and batched predictions) pass an admission gate — a
/// counting semaphore sized by EngineProfile::serve_admission_slots (0 =
/// exec_threads) — so that concurrent sessions cannot oversubscribe the
/// engine's shared ThreadPool: at most `slots` requests fan their morsels
/// out to the pool at once; the rest queue on the gate.
///
/// Determinism rules served to clients:
///   - a session's reads are repeatable: same session, same query, same
///     result, writer activity notwithstanding;
///   - two sessions pinning the same version get bit-identical results;
///   - Session::PredictBatch is bit-identical to per-row Ensemble::Predict
///     against the same snapshot's model (see FlatForest).
class ServingContext {
 public:
  /// `served_tables` lists the base tables snapshots capture — typically the
  /// fact + dimension tables, not the trainer's transient temp tables.
  /// Publishes version 1 immediately so sessions can open at once.
  ServingContext(exec::Database* db, std::vector<std::string> served_tables);

  ServingContext(const ServingContext&) = delete;
  ServingContext& operator=(const ServingContext&) = delete;

  /// A reader session pinned to one snapshot. Copyable; cheap (three
  /// pointers — copies share the lifecycle guard, so Cancel() through any
  /// copy aborts the session's in-flight request). Queries are issued from
  /// the owning thread only; Cancel() is safe from any thread — that is its
  /// point.
  class Session {
   public:
    uint64_t version() const { return snap_->version; }
    const Snapshot& snapshot() const { return *snap_; }

    /// Run a SELECT against the pinned snapshot (admission-gated, governed
    /// by this session's guard: cancellation, per-request deadline, byte
    /// budget). Throws QueryAborted on a tripped guard and
    /// AdmissionRejected when the gate's bounded wait expires.
    std::shared_ptr<exec::ExecTable> Query(const std::string& sql,
                                           const std::string& tag = "serve");

    /// Batched prediction over `rows` via the snapshot's flat forest
    /// (admission-gated). Requires a published model.
    std::vector<double> PredictBatch(const exec::ExecTable& rows);

    /// Cancel the session: the in-flight request (if any) aborts at its next
    /// guard check with QueryAborted{kCancelled}, and every later Query on
    /// this session fails the same way. Sticky by design — a cancelled
    /// session is dead; open a new one to continue. Thread-safe.
    void Cancel() { guard_->Cancel(); }

    /// Deadline applied to each subsequent request, measured from the start
    /// of that request (not from now). 0 clears it.
    void SetDeadlineMs(int64_t ms) { deadline_ms_ = ms; }

    /// Byte budget for tracked allocations (hash tables, decode buffers) per
    /// request; usage resets at each request start. 0 = unlimited.
    void SetByteBudget(uint64_t bytes) { guard_->set_byte_budget(bytes); }

    /// The session's guard (tests observe bytes_used / cancelled state).
    util::QueryGuard& guard() { return *guard_; }

   private:
    friend class ServingContext;
    Session(ServingContext* ctx, SnapshotPtr snap)
        : ctx_(ctx),
          snap_(std::move(snap)),
          guard_(std::make_shared<util::QueryGuard>()) {}
    ServingContext* ctx_;
    SnapshotPtr snap_;
    std::shared_ptr<util::QueryGuard> guard_;
    int64_t deadline_ms_ = 0;
  };

  /// Pin the current snapshot.
  Session OpenSession();

  /// Latest published snapshot.
  SnapshotPtr current() const;

  // ---- writer API (serialized on the publish lock) ----

  /// Append rows to `table` copy-on-write and publish a new snapshot.
  SnapshotPtr Append(const std::string& table, const exec::ExecTable& rows);

  /// Publish a new model (e.g. after more boosting iterations), compiled to
  /// a flat forest; table state is re-captured in the same snapshot.
  SnapshotPtr PublishModel(const core::Ensemble& model);

  /// Re-capture the served tables without changing the model — for writers
  /// that mutated the database directly (UPDATE through SQL).
  SnapshotPtr Republish();

  // ---- deterministic counters (bench/serving.cc, CI guards) ----
  uint64_t snapshots_published() const { return snapshots_published_.load(); }
  /// Requests served from a pinned snapshot (queries + prediction batches).
  uint64_t snapshot_reads() const { return snapshot_reads_.load(); }
  /// Rows predicted through the flat-forest batched path.
  uint64_t batched_predictions() const { return batched_predictions_.load(); }
  /// Requests that found the admission gate full and had to queue.
  uint64_t admission_waits() const { return admission_waits_.load(); }
  /// Requests rejected because the gate's bounded wait
  /// (serve_admission_max_wait_ms) expired before a slot freed.
  uint64_t admission_rejected() const { return admission_rejected_.load(); }

  exec::Database* db() { return db_; }

  /// Counting semaphore bounding concurrently executing requests. Public so
  /// tests can pin gate semantics (and hold a slot deterministically);
  /// requests go through the RAII Admission token, never this directly.
  class AdmissionGate {
   public:
    AdmissionGate(int slots, int64_t max_wait_ms)
        : free_(slots), max_wait_ms_(max_wait_ms) {}
    /// Returns true when the caller had to wait for a slot. Throws
    /// AdmissionRejected when max_wait_ms_ > 0 and no slot frees in time.
    bool Acquire();
    void Release();

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    int free_;
    int64_t max_wait_ms_;  ///< 0 = unbounded wait
  };

  /// The context's gate (tests occupy slots to exercise bounded admission).
  AdmissionGate& gate() { return gate_; }

 private:
  /// Build + install a snapshot under publish_mu_ (caller holds it).
  SnapshotPtr PublishLocked(std::shared_ptr<const core::Ensemble> model,
                            std::shared_ptr<const core::FlatForest> forest);

  /// RAII admission token.
  class Admission {
   public:
    explicit Admission(ServingContext* ctx);
    ~Admission();

   private:
    ServingContext* ctx_;
  };

  exec::Database* db_;
  std::vector<std::string> served_;

  mutable std::mutex publish_mu_;  ///< serializes writers + current_ swap
  SnapshotPtr current_;

  AdmissionGate gate_;
  std::atomic<uint64_t> snapshots_published_{0};
  std::atomic<uint64_t> snapshot_reads_{0};
  std::atomic<uint64_t> batched_predictions_{0};
  std::atomic<uint64_t> admission_waits_{0};
  std::atomic<uint64_t> admission_rejected_{0};
};

}  // namespace serve
}  // namespace joinboost
