#include "stats/histogram.h"

#include <algorithm>

namespace joinboost {
namespace stats {

EqualNumElementsHistogram EqualNumElementsHistogram::Build(
    const std::vector<std::pair<double, size_t>>& distinct_counts,
    size_t max_buckets) {
  EqualNumElementsHistogram h;
  if (distinct_counts.empty() || max_buckets == 0) return h;
  const size_t num_distinct = distinct_counts.size();
  const size_t num_buckets = std::min(max_buckets, num_distinct);
  // Distribute distincts as evenly as integer division allows: the first
  // (num_distinct % num_buckets) buckets take one extra value.
  const size_t base = num_distinct / num_buckets;
  const size_t extra = num_distinct % num_buckets;
  size_t pos = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    const size_t take = base + (b < extra ? 1 : 0);
    Bucket bucket;
    bucket.min = distinct_counts[pos].first;
    bucket.max = distinct_counts[pos + take - 1].first;
    bucket.distinct = static_cast<double>(take);
    for (size_t i = 0; i < take; ++i) {
      bucket.count += static_cast<double>(distinct_counts[pos + i].second);
    }
    pos += take;
    h.total_rows_ += bucket.count;
    h.buckets_.push_back(bucket);
  }
  h.total_distinct_ = static_cast<double>(num_distinct);
  return h;
}

double EqualNumElementsHistogram::EstimateEq(double v) const {
  // Binary search for the bucket whose range may contain v.
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), v,
      [](const Bucket& b, double value) { return b.max < value; });
  if (it == buckets_.end() || v < it->min) return 0;
  return it->distinct > 0 ? it->count / it->distinct : 0;
}

double EqualNumElementsHistogram::EstimateBelow(double v) const {
  double rows = 0;
  for (const Bucket& b : buckets_) {
    if (b.max < v) {
      rows += b.count;
      continue;
    }
    if (v <= b.min) break;
    // v falls strictly inside (min, max]: linear interpolation over the
    // value range, excluding (approximately) the rows equal to v itself.
    const double width = b.max - b.min;
    const double frac = width > 0 ? (v - b.min) / width : 0;
    rows += b.count * frac;
    break;
  }
  return rows;
}

}  // namespace stats
}  // namespace joinboost
