#include "stats/stats_manager.h"

#include <algorithm>
#include <vector>

namespace joinboost {
namespace stats {

namespace {

std::vector<std::pair<double, size_t>> DistinctCounts(
    std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<std::pair<double, size_t>> out;
  for (size_t i = 0; i < values.size();) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i]) ++j;
    out.emplace_back(values[i], j - i);
    i = j;
  }
  return out;
}

}  // namespace

ColumnStats StatsManager::BuildColumnStats(const ColumnData& col) {
  ColumnStats s;
  s.row_count = col.size();
  std::vector<double> values;
  values.reserve(col.size());
  if (col.type() == TypeId::kFloat64) {
    for (double v : col.DecodeDoubles()) {
      if (IsNullFloat64(v)) {
        ++s.null_count;
      } else {
        values.push_back(v);
      }
    }
  } else {
    // Int columns use their values; string columns their dictionary codes.
    for (int64_t v : col.DecodeInts()) {
      if (v == kNullInt64) {
        ++s.null_count;
      } else {
        values.push_back(static_cast<double>(v));
      }
    }
    s.dict = col.dict();
  }
  auto distinct = DistinctCounts(std::move(values));
  s.distinct_count = distinct.size();
  if (!distinct.empty()) {
    s.min = distinct.front().first;
    s.max = distinct.back().first;
  }
  s.histogram = EqualNumElementsHistogram::Build(distinct, kMaxBuckets);
  return s;
}

ColumnStatsPtr StatsManager::Get(const TablePtr& table, size_t column_index) {
  if (!table || column_index >= table->num_columns()) return nullptr;
  const ColumnPtr& col = table->column(column_index);
  const std::string& col_name = table->schema().field(column_index).name;
  std::pair<std::string, std::string> key(table->name(), col_name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.identity == col.get() &&
        it->second.version == col->version()) {
      return it->second.stats;
    }
  }
  // Build outside the lock: statistics construction decodes and sorts the
  // column, which can be expensive.
  Entry fresh;
  fresh.identity = col.get();
  fresh.version = col->version();
  fresh.stats = std::make_shared<const ColumnStats>(BuildColumnStats(*col));
  std::lock_guard<std::mutex> lock(mu_);
  cache_[key] = fresh;
  return fresh.stats;
}

ColumnStatsPtr StatsManager::Get(const TablePtr& table,
                                 const std::string& column) {
  if (!table) return nullptr;
  int idx = table->schema().FieldIndex(column);
  if (idx < 0) return nullptr;
  return Get(table, static_cast<size_t>(idx));
}

}  // namespace stats
}  // namespace joinboost
