#include "stats/stats_manager.h"

#include <algorithm>
#include <vector>

namespace joinboost {
namespace stats {

namespace {

std::vector<std::pair<double, size_t>> DistinctCounts(
    std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<std::pair<double, size_t>> out;
  for (size_t i = 0; i < values.size();) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i]) ++j;
    out.emplace_back(values[i], j - i);
    i = j;
  }
  return out;
}

}  // namespace

ColumnStats StatsManager::BuildColumnStats(const ColumnData& col) {
  ColumnStats s;
  s.row_count = col.size();
  std::vector<double> values;
  values.reserve(col.size());
  if (col.type() == TypeId::kFloat64) {
    for (double v : col.DecodeDoubles()) {
      if (IsNullFloat64(v)) {
        ++s.null_count;
      } else {
        values.push_back(v);
      }
    }
  } else {
    // Int columns use their values; string columns their dictionary codes.
    for (int64_t v : col.DecodeInts()) {
      if (v == kNullInt64) {
        ++s.null_count;
      } else {
        values.push_back(static_cast<double>(v));
      }
    }
    s.dict = col.dict();
  }
  auto distinct = DistinctCounts(std::move(values));
  s.distinct_count = distinct.size();
  if (!distinct.empty()) {
    s.min = distinct.front().first;
    s.max = distinct.back().first;
  }
  s.histogram = EqualNumElementsHistogram::Build(distinct, kMaxBuckets);
  return s;
}

StatsManager::SegStats StatsManager::BuildSegStats(const ColumnData& col,
                                                   size_t chunk_index) {
  const auto& off = col.chunk_offsets();
  const size_t begin = off[chunk_index];
  const size_t end = off[chunk_index + 1];
  SegStats s;
  std::vector<double> values;
  values.reserve(end - begin);
  if (col.type() == TypeId::kFloat64) {
    std::vector<double> buf(end - begin);
    col.MaterializeDoubles(begin, end, buf.data());
    for (double v : buf) {
      if (IsNullFloat64(v)) {
        ++s.null_count;
      } else {
        values.push_back(v);
      }
    }
  } else {
    std::vector<int64_t> buf(end - begin);
    col.MaterializeInts(begin, end, buf.data());
    for (int64_t v : buf) {
      if (v == kNullInt64) {
        ++s.null_count;
      } else {
        values.push_back(static_cast<double>(v));
      }
    }
  }
  s.distinct = DistinctCounts(std::move(values));
  return s;
}

ColumnStats StatsManager::MergeSegStats(const ColumnData& col,
                                        const std::vector<SegStatsPtr>& segs) {
  ColumnStats s;
  s.row_count = col.size();
  if (col.type() != TypeId::kFloat64) s.dict = col.dict();
  for (const auto& seg : segs) s.null_count += seg->null_count;
  // K-way merge of the per-segment sorted distinct lists, summing counts of
  // equal values. The result is exactly DistinctCounts over the whole
  // column, so the histogram is identical to a monolithic build.
  std::vector<size_t> cur(segs.size(), 0);
  std::vector<std::pair<double, size_t>> merged;
  while (true) {
    bool any = false;
    double best = 0;
    for (size_t i = 0; i < segs.size(); ++i) {
      if (cur[i] >= segs[i]->distinct.size()) continue;
      double v = segs[i]->distinct[cur[i]].first;
      if (!any || v < best) {
        best = v;
        any = true;
      }
    }
    if (!any) break;
    size_t count = 0;
    for (size_t i = 0; i < segs.size(); ++i) {
      if (cur[i] < segs[i]->distinct.size() &&
          segs[i]->distinct[cur[i]].first == best) {
        count += segs[i]->distinct[cur[i]].second;
        ++cur[i];
      }
    }
    merged.emplace_back(best, count);
  }
  s.distinct_count = merged.size();
  if (!merged.empty()) {
    s.min = merged.front().first;
    s.max = merged.back().first;
  }
  s.histogram = EqualNumElementsHistogram::Build(merged, kMaxBuckets);
  return s;
}

ColumnStatsPtr StatsManager::Get(const TablePtr& table, size_t column_index) {
  if (!table || column_index >= table->num_columns()) return nullptr;
  const ColumnPtr& col = table->column(column_index);
  const std::string& col_name = table->schema().field(column_index).name;
  std::pair<std::string, std::string> key(table->name(), col_name);
  const auto& chunks = col->chunks();
  std::vector<SegStatsPtr> segs(chunks.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.identity == col.get() &&
        it->second.version == col->version()) {
      return it->second.stats;
    }
    // Segment reuse: a chunk uid identifies immutable values (Encode/Decode
    // keep it, every value change mints a new one), so appended-to columns
    // only pay for their fresh segments below.
    for (size_t i = 0; i < chunks.size(); ++i) {
      auto sit = seg_cache_.find(chunks[i]->uid);
      if (sit != seg_cache_.end()) {
        segs[i] = sit->second;
        ++seg_hits_;
      } else {
        ++seg_misses_;
      }
    }
  }
  // Build missing segments outside the lock: statistics construction decodes
  // and sorts, which can be expensive.
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (!segs[i]) {
      segs[i] = std::make_shared<const SegStats>(BuildSegStats(*col, i));
    }
  }
  Entry fresh;
  fresh.identity = col.get();
  fresh.version = col->version();
  fresh.stats = std::make_shared<const ColumnStats>(MergeSegStats(*col, segs));
  std::lock_guard<std::mutex> lock(mu_);
  if (seg_cache_.size() > kMaxSegEntries) seg_cache_.clear();
  for (size_t i = 0; i < chunks.size(); ++i) {
    seg_cache_[chunks[i]->uid] = segs[i];
  }
  cache_[key] = fresh;
  return fresh.stats;
}

size_t StatsManager::SegCacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seg_cache_.size();
}

size_t StatsManager::seg_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seg_hits_;
}

size_t StatsManager::seg_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seg_misses_;
}

ColumnStatsPtr StatsManager::Get(const TablePtr& table,
                                 const std::string& column) {
  if (!table) return nullptr;
  int idx = table->schema().FieldIndex(column);
  if (idx < 0) return nullptr;
  return Get(table, static_cast<size_t>(idx));
}

}  // namespace stats
}  // namespace joinboost
