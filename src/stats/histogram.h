#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace joinboost {
namespace stats {

/// Equal-num-elements histogram (Hyrise's
/// abstract_equal_num_elements_histogram): the sorted distinct values of a
/// column are split into up to `max_buckets` buckets holding (near-)equal
/// numbers of *distinct* values. Each bucket records its value range, row
/// count and distinct count, so the per-value density inside a bucket is
/// count / distinct. When the column has no more distinct values than
/// buckets, every distinct value gets its own bucket and point estimates are
/// exact.
///
/// Values are doubles: int64 and dictionary-code columns are histogrammed
/// over the exact integer values (codes for strings, where only equality
/// classes are meaningful), float columns over their values. NULLs are
/// excluded; the caller tracks the null count separately.
class EqualNumElementsHistogram {
 public:
  struct Bucket {
    double min = 0;       ///< smallest distinct value in the bucket
    double max = 0;       ///< largest distinct value in the bucket
    double count = 0;     ///< rows whose value falls in [min, max]
    double distinct = 0;  ///< distinct values in [min, max]
  };

  /// Build from (distinct value, row count) pairs sorted ascending by value.
  static EqualNumElementsHistogram Build(
      const std::vector<std::pair<double, size_t>>& distinct_counts,
      size_t max_buckets);

  const std::vector<Bucket>& buckets() const { return buckets_; }
  double total_rows() const { return total_rows_; }
  double total_distinct() const { return total_distinct_; }

  /// Estimated rows with value == v. Exact when each distinct value has its
  /// own bucket; otherwise the bucket's average per-value density.
  double EstimateEq(double v) const;

  /// Estimated rows with value < v: full buckets below v plus a linear
  /// interpolation inside the bucket containing v.
  double EstimateBelow(double v) const;

 private:
  std::vector<Bucket> buckets_;
  double total_rows_ = 0;
  double total_distinct_ = 0;
};

}  // namespace stats
}  // namespace joinboost
