#pragma once

#include "sql/ast.h"
#include "stats/stats_manager.h"
#include "storage/table.h"

namespace joinboost {
namespace stats {

/// Histogram-based selectivity of one single-relation predicate conjunct
/// over `table`, in [0, 1]. Supported shapes: <col> cmp <literal> (numeric
/// ranges and equality; string equality via the dictionary), [NOT] IN
/// literal lists, IS [NOT] NULL, and AND/OR/NOT combinations thereof.
/// Returns -1 when the shape is not estimable from statistics — the caller
/// falls back to the heuristic plan::EstimateSelectivity.
double ConjunctSelectivity(const sql::Expr& e, const TablePtr& table,
                           StatsManager* mgr);

/// Distinct count of `table`.`column` for join-output estimation, or -1
/// when unavailable.
double JoinKeyDistinct(const TablePtr& table, const std::string& column,
                       StatsManager* mgr);

}  // namespace stats
}  // namespace joinboost
