#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "stats/histogram.h"
#include "storage/table.h"

namespace joinboost {
namespace stats {

/// Per-column statistics: row/null/distinct counts plus an
/// equal-num-elements histogram over the non-null values (dictionary codes
/// for string columns — equality classes only, range estimates fall back to
/// heuristics there).
struct ColumnStats {
  size_t row_count = 0;
  size_t null_count = 0;
  size_t distinct_count = 0;
  double min = 0;  ///< smallest non-null value (codes for strings)
  double max = 0;  ///< largest non-null value
  EqualNumElementsHistogram histogram;
  DictionaryPtr dict;  ///< string columns: literal -> code lookup

  double null_fraction() const {
    return row_count == 0
               ? 0
               : static_cast<double>(null_count) / static_cast<double>(row_count);
  }
};

using ColumnStatsPtr = std::shared_ptr<const ColumnStats>;

/// Lazy column-statistics cache. Statistics are built on first planner use
/// (a real decode + sort over the column) and invalidated automatically when
/// the column's payload identity or version changes — UPDATEs bump the
/// version, CREATE TABLE AS replaces the table (new ColumnData pointers),
/// and column swap bumps both swapped columns.
class StatsManager {
 public:
  static constexpr size_t kMaxBuckets = 100;

  /// Statistics for `table`.`column_index`; nullptr when the index is out of
  /// range. Thread-safe; concurrent callers may both build, last one wins
  /// (the builds are identical).
  ColumnStatsPtr Get(const TablePtr& table, size_t column_index);

  /// Convenience overload resolving by column name (nullptr when absent).
  ColumnStatsPtr Get(const TablePtr& table, const std::string& column);

  /// Builds (uncached) statistics for one column — exposed for tests.
  static ColumnStats BuildColumnStats(const ColumnData& col);

 private:
  struct Entry {
    const ColumnData* identity = nullptr;
    uint64_t version = 0;
    ColumnStatsPtr stats;
  };

  std::mutex mu_;
  std::map<std::pair<std::string, std::string>, Entry> cache_;
};

}  // namespace stats
}  // namespace joinboost
