#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.h"
#include "storage/table.h"

namespace joinboost {
namespace stats {

/// Per-column statistics: row/null/distinct counts plus an
/// equal-num-elements histogram over the non-null values (dictionary codes
/// for string columns — equality classes only, range estimates fall back to
/// heuristics there).
struct ColumnStats {
  size_t row_count = 0;
  size_t null_count = 0;
  size_t distinct_count = 0;
  double min = 0;  ///< smallest non-null value (codes for strings)
  double max = 0;  ///< largest non-null value
  EqualNumElementsHistogram histogram;
  DictionaryPtr dict;  ///< string columns: literal -> code lookup

  double null_fraction() const {
    return row_count == 0
               ? 0
               : static_cast<double>(null_count) / static_cast<double>(row_count);
  }
};

using ColumnStatsPtr = std::shared_ptr<const ColumnStats>;

/// Lazy column-statistics cache. Statistics are built on first planner use
/// (a real decode + sort over the column) and invalidated automatically when
/// the column's payload identity or version changes — UPDATEs bump the
/// version, CREATE TABLE AS replaces the table (new ColumnData pointers),
/// and column swap bumps both swapped columns.
///
/// Invalidation is per storage chunk: the sorted per-segment distinct lists
/// are cached by chunk uid, so an append (which reuses existing segments by
/// pointer and seals new ones behind them) only sorts the new rows. The
/// per-segment lists k-way merge into exactly the list a monolithic
/// sort-and-count would produce, so histograms are bit-identical to a full
/// rebuild regardless of chunk layout.
class StatsManager {
 public:
  static constexpr size_t kMaxBuckets = 100;
  /// Per-segment cache bound: coarse flush above this many entries.
  static constexpr size_t kMaxSegEntries = 16384;

  /// Statistics for `table`.`column_index`; nullptr when the index is out of
  /// range. Thread-safe; concurrent callers may both build, last one wins
  /// (the builds are identical).
  ColumnStatsPtr Get(const TablePtr& table, size_t column_index);

  /// Convenience overload resolving by column name (nullptr when absent).
  ColumnStatsPtr Get(const TablePtr& table, const std::string& column);

  /// Builds (uncached, monolithic) statistics for one column — exposed for
  /// tests as the reference the chunk-merged build must match.
  static ColumnStats BuildColumnStats(const ColumnData& col);

  /// Per-segment cache observability (tests): resident entries and the
  /// hit/miss tally of segment lookups since construction.
  size_t SegCacheSize() const;
  size_t seg_hits() const;
  size_t seg_misses() const;

 private:
  struct Entry {
    const ColumnData* identity = nullptr;
    uint64_t version = 0;
    ColumnStatsPtr stats;
  };

  /// Sorted (value, count) distinct list plus null tally for one segment.
  struct SegStats {
    size_t null_count = 0;
    std::vector<std::pair<double, size_t>> distinct;
  };
  using SegStatsPtr = std::shared_ptr<const SegStats>;

  static SegStats BuildSegStats(const ColumnData& col, size_t chunk_index);
  static ColumnStats MergeSegStats(const ColumnData& col,
                                   const std::vector<SegStatsPtr>& segs);

  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, Entry> cache_;
  std::map<uint64_t, SegStatsPtr> seg_cache_;  ///< keyed by chunk uid
  size_t seg_hits_ = 0;
  size_t seg_misses_ = 0;
};

}  // namespace stats
}  // namespace joinboost
