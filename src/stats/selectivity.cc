#include "stats/selectivity.h"

#include <algorithm>
#include <string>

namespace joinboost {
namespace stats {

namespace {

bool IsLiteral(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kIntLiteral ||
         e.kind == sql::ExprKind::kFloatLiteral ||
         e.kind == sql::ExprKind::kStringLiteral;
}

double NumericValue(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kFloatLiteral
             ? e.float_val
             : static_cast<double>(e.int_val);
}

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

/// Estimated fraction of rows matching <col> cmp <literal>, or -1.
double CompareSelectivity(const ColumnStats& s, const std::string& op,
                          const sql::Expr& lit, bool flipped) {
  if (s.row_count == 0) return 0;
  const double rows = static_cast<double>(s.row_count);
  if (lit.kind == sql::ExprKind::kStringLiteral) {
    // Dictionary columns: only equality classes are meaningful on codes.
    if (op != "=" && op != "<>") return -1;
    if (!s.dict) return -1;
    int64_t code = s.dict->Find(lit.str_val);
    double eq = code == kNullInt64
                    ? 0
                    : s.histogram.EstimateEq(static_cast<double>(code));
    return Clamp01(op == "=" ? eq / rows
                             : (rows - s.null_count - eq) / rows);
  }
  double v = NumericValue(lit);
  // Normalize `lit cmp col` to `col cmp' lit`.
  std::string cmp = op;
  if (flipped) {
    if (op == "<") cmp = ">";
    else if (op == "<=") cmp = ">=";
    else if (op == ">") cmp = "<";
    else if (op == ">=") cmp = "<=";
  }
  const double eq = s.histogram.EstimateEq(v);
  const double below = s.histogram.EstimateBelow(v);
  const double non_null = rows - static_cast<double>(s.null_count);
  double matched = 0;
  if (cmp == "=") matched = eq;
  else if (cmp == "<>") matched = non_null - eq;
  else if (cmp == "<") matched = below;
  else if (cmp == "<=") matched = below + eq;
  else if (cmp == ">") matched = non_null - below - eq;
  else if (cmp == ">=") matched = non_null - below;
  else return -1;
  return Clamp01(matched / rows);
}

double InListSelectivity(const ColumnStats& s, const sql::Expr& e) {
  if (s.row_count == 0) return 0;
  const double rows = static_cast<double>(s.row_count);
  double matched = 0;
  for (size_t i = 1; i < e.args.size(); ++i) {
    const sql::Expr& lit = *e.args[i];
    if (!IsLiteral(lit)) return -1;
    if (lit.kind == sql::ExprKind::kStringLiteral) {
      if (!s.dict) return -1;
      int64_t code = s.dict->Find(lit.str_val);
      if (code != kNullInt64) {
        matched += s.histogram.EstimateEq(static_cast<double>(code));
      }
    } else {
      matched += s.histogram.EstimateEq(NumericValue(lit));
    }
  }
  double sel = Clamp01(matched / rows);
  if (e.negated) {
    sel = Clamp01((rows - static_cast<double>(s.null_count)) / rows - sel);
  }
  return sel;
}

}  // namespace

double ConjunctSelectivity(const sql::Expr& e, const TablePtr& table,
                           StatsManager* mgr) {
  if (!table || !mgr) return -1;
  switch (e.kind) {
    case sql::ExprKind::kBinary: {
      if (e.op == "AND" || e.op == "OR") {
        double a = ConjunctSelectivity(*e.args[0], table, mgr);
        double b = ConjunctSelectivity(*e.args[1], table, mgr);
        if (a < 0 || b < 0) return -1;
        return e.op == "AND" ? a * b : Clamp01(a + b);
      }
      const sql::Expr& lhs = *e.args[0];
      const sql::Expr& rhs = *e.args[1];
      const sql::Expr* col = nullptr;
      const sql::Expr* lit = nullptr;
      bool flipped = false;
      if (lhs.kind == sql::ExprKind::kColumnRef && IsLiteral(rhs)) {
        col = &lhs;
        lit = &rhs;
      } else if (rhs.kind == sql::ExprKind::kColumnRef && IsLiteral(lhs)) {
        col = &rhs;
        lit = &lhs;
        flipped = true;
      } else {
        return -1;
      }
      ColumnStatsPtr s = mgr->Get(table, col->column);
      if (!s) return -1;
      return CompareSelectivity(*s, e.op, *lit, flipped);
    }
    case sql::ExprKind::kUnary: {
      if (e.op != "NOT") return -1;
      double a = ConjunctSelectivity(*e.args[0], table, mgr);
      return a < 0 ? -1 : 1.0 - a;
    }
    case sql::ExprKind::kInList: {
      if (e.args.empty() || e.args[0]->kind != sql::ExprKind::kColumnRef) {
        return -1;
      }
      ColumnStatsPtr s = mgr->Get(table, e.args[0]->column);
      if (!s) return -1;
      return InListSelectivity(*s, e);
    }
    case sql::ExprKind::kIsNull: {
      if (e.args.empty() || e.args[0]->kind != sql::ExprKind::kColumnRef) {
        return -1;
      }
      ColumnStatsPtr s = mgr->Get(table, e.args[0]->column);
      if (!s) return -1;
      double nf = s->null_fraction();
      return e.negated ? 1.0 - nf : nf;
    }
    default:
      return -1;
  }
}

double JoinKeyDistinct(const TablePtr& table, const std::string& column,
                       StatsManager* mgr) {
  if (!table || !mgr) return -1;
  ColumnStatsPtr s = mgr->Get(table, column);
  if (!s) return -1;
  return static_cast<double>(s->distinct_count);
}

}  // namespace stats
}  // namespace joinboost
