#pragma once

#include <cstdint>
#include <string>

#include "util/query_guard.h"

namespace joinboost {
namespace core {

/// Training parameters. Names and defaults mirror LightGBM's where they
/// exist (paper §5.1: "JoinBoost accepts the same training parameters as
/// LightGBM").
struct TrainParams {
  /// Objective: "regression"/"rmse", "mae", "huber", "fair", "poisson",
  /// "quantile", "mape", "gamma", "tweedie".
  std::string objective = "regression";
  double objective_param = 0.0;  ///< δ for huber, c for fair, α for quantile…

  /// Boosting type: "gbdt", "rf" (random forest), or "dt" (single tree).
  std::string boosting = "gbdt";

  int num_iterations = 100;
  double learning_rate = 0.1;
  int num_leaves = 8;
  int max_depth = -1;  ///< -1 = unlimited

  double lambda_l2 = 0.0;    ///< λ in the leaf/gain formulas (Appendix B.2)
  double min_gain = 0.0;     ///< α: minimum gain to split
  double min_data_in_leaf = 1.0;

  /// Growth policy: best-first (leaf-wise, LightGBM default) or depth-wise.
  std::string growth = "best_first";

  // Random forest sampling (paper defaults: 10% rows, 80% features).
  double bagging_fraction = 0.1;
  double feature_fraction = 0.8;
  uint64_t seed = 42;

  /// Residual-update strategy (§5.3/§5.4): "naive_u", "update", "create",
  /// "swap" (column swap; default), or "auto" (swap if the engine allows it,
  /// else create).
  std::string update_strategy = "auto";

  /// Inter-query parallelism (§5.5.3): run independent split queries and
  /// forest trees concurrently.
  bool inter_query_parallelism = false;

  /// Batched split evaluation: collapse per-leaf split search from one query
  /// per feature to one GROUPING SETS histogram query per relation, with
  /// threshold enumeration in a C++ kernel (bit-identical to the per-feature
  /// SQL path, which stays available for differential testing).
  bool batch_split_evaluation = true;

  /// Trainer variant (Fig 16a): "factorized" (JoinBoost), "batch" (per-node
  /// batches, no cross-node message caching — the LMFAO proxy), or "naive"
  /// (materialize the join, no factorization).
  std::string variant = "factorized";

  /// Track the q component (exact variance reporting; the criterion only
  /// needs c and s — §5.3.1).
  bool track_q = false;

  /// Histogram binning (Appendix D.3): 0 disables; otherwise features are
  /// bucketed into this many bins and training runs over the cuboid.
  int max_bin = 0;

  /// Optional lifecycle guard (not owned): the trainers check it at every
  /// boosting-round / tree boundary, so a long training run can be cancelled
  /// or deadlined between trees. Null = ungoverned.
  util::QueryGuard* guard = nullptr;
};

}  // namespace core
}  // namespace joinboost
