#pragma once

#include <memory>
#include <vector>

#include "core/dataset.h"
#include "core/model.h"
#include "core/params.h"
#include "core/session.h"

namespace joinboost {
namespace core {

/// Multi-node simulation (paper §6.2, Figures 12–13): the fact table is
/// hash-partitioned across in-process worker engines and dimension tables
/// are replicated (zero-copy shared columns). Tree growth aggregates
/// per-worker semi-ring partials on a coordinator; residual updates run on
/// every shard. Worker compute is real (parallel threads); the network is
/// modeled (per-exchange latency plus bytes/bandwidth) since no actual wire
/// exists in-process — see DESIGN.md "Substitutions".
struct DistributedConfig {
  int num_workers = 4;
  double network_latency_s = 0.002;           ///< per coordinator exchange
  double network_bandwidth_bytes_per_s = 2e8;  ///< shuffle payload cost
};

struct DistributedResult {
  Ensemble model;
  double seconds = 0;          ///< wall time + modeled network time
  double compute_seconds = 0;  ///< measured wall time only
  double shuffle_seconds = 0;  ///< modeled network time
  size_t shuffle_bytes = 0;
};

/// Distributed factorized trainer (snowflake, rmse). Supports "dt" and
/// "gbdt" boosting types.
class DistributedTrainer {
 public:
  /// `make_dataset` must register the same tables/graph into the given
  /// worker database, with the fact table restricted to shard `w` of `n`.
  DistributedTrainer(Dataset& source, DistributedConfig config);
  ~DistributedTrainer();

  DistributedResult Train(const TrainParams& params);

 private:
  struct Worker;
  void Partition(Dataset& source);

  DistributedConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::string y_column_;
  std::vector<std::string> features_;
};

}  // namespace core
}  // namespace joinboost
