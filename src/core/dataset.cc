#include "core/dataset.h"

#include "util/check.h"

namespace joinboost {

void Dataset::AddTable(const std::string& table,
                       std::vector<std::string> features,
                       const std::string& y_column) {
  graph_.AddRelation(table, std::move(features), y_column);
  prepared_ = false;
}

void Dataset::AddJoin(const std::string& t1, const std::string& t2,
                      std::vector<std::string> keys) {
  graph_.AddEdge(t1, t2, std::move(keys));
  prepared_ = false;
}

void Dataset::SetRowId(const std::string& table, const std::string& column) {
  int rel = graph_.RelationIndex(table);
  JB_CHECK_MSG(rel >= 0, "unknown table " << table);
  row_ids_[rel] = column;
}

std::string Dataset::RowIdColumn(int rel) const {
  auto it = row_ids_.find(rel);
  return it == row_ids_.end() ? "" : it->second;
}

void Dataset::Prepare() {
  if (prepared_) return;
  JB_CHECK_MSG(graph_.num_relations() > 0, "empty dataset");
  JB_CHECK_MSG(graph_.IsTree(),
               "the join graph must be acyclic and connected (a tree); "
               "apply hypertree decomposition / pre-join cycles first");

  // Validate columns and collect cardinalities.
  for (size_t i = 0; i < graph_.num_relations(); ++i) {
    auto& rel = graph_.relation(static_cast<int>(i));
    TablePtr table = db_->catalog().Get(rel.name);
    rel.num_rows = table->num_rows();
    for (const auto& f : rel.features) {
      JB_CHECK_MSG(table->schema().HasField(f),
                   "feature " << f << " missing from " << rel.name);
    }
    if (!rel.y_column.empty()) {
      JB_CHECK_MSG(table->schema().HasField(rel.y_column),
                   "target " << rel.y_column << " missing from " << rel.name);
    }
  }

  // Edge-key uniqueness on each side, via SQL (COUNT DISTINCT == COUNT).
  for (size_t e = 0; e < graph_.edges().size(); ++e) {
    auto& edge = graph_.edge(static_cast<int>(e));
    auto unique_side = [&](int rel_id) {
      const auto& rel = graph_.relation(rel_id);
      std::string keys;
      for (size_t k = 0; k < edge.keys.size(); ++k) {
        if (k) keys += ", ";
        keys += edge.keys[k];
      }
      double distinct = db_->QueryScalarDouble(
          "SELECT COUNT(*) AS c FROM (SELECT DISTINCT " + keys + " FROM " +
              rel.name + ")",
          "setup");
      return distinct == static_cast<double>(rel.num_rows);
    };
    edge.unique_a = unique_side(edge.a);
    edge.unique_b = unique_side(edge.b);
  }
  prepared_ = true;
}

}  // namespace joinboost
