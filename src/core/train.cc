#include "core/train.h"

#include "core/boosting.h"
#include "core/evaluate.h"
#include "core/forest.h"
#include "core/session.h"
#include "util/check.h"
#include "util/timer.h"

namespace joinboost {

namespace {

/// The non-factorized variant: materialize the join into a wide table and
/// train over it as a single-relation "join graph" (Figure 16a "Naive").
TrainResult TrainNaive(const core::TrainParams& params, Dataset& dataset) {
  exec::Database& db = *dataset.db();
  std::string wide = "jbnaive_wide";
  db.catalog().DropIfExists(wide);
  db.Execute("CREATE TABLE " + wide + " AS " + core::FullJoinSql(dataset),
             "materialize");

  Dataset naive_ds(&db);
  std::vector<std::string> features = dataset.graph().AllFeatures();
  naive_ds.AddTable(wide, features, "jb_y");

  core::TrainParams inner = params;
  inner.variant = "factorized";  // single relation: no factorization happens
  TrainResult res = Train(inner, naive_ds);
  db.catalog().DropIfExists(wide);
  return res;
}

}  // namespace

TrainResult Train(const core::TrainParams& params, Dataset& dataset) {
  if (params.variant == "naive") return TrainNaive(params, dataset);

  exec::Database& db = *dataset.db();
  double update0 = db.TotalMsForTag("update");
  double message0 = db.TotalMsForTag("message");
  double feature0 = db.TotalMsForTag("feature");
  size_t nmsg0 = db.CountForTag("message");
  size_t nfeat0 = db.CountForTag("feature");
  plan::PlanStats plan0 = db.PlanStatsTotals();

  Timer timer;
  core::Session session(&dataset, params);
  session.Prepare();

  TrainResult res;
  if (params.boosting == "gbdt") {
    core::GradientBoosting gb(&session, params);
    res.model = gb.Train();
  } else if (params.boosting == "rf") {
    core::RandomForest rf(&session, params);
    res.model = rf.Train();
  } else if (params.boosting == "dt") {
    core::DecisionTree dt(&session, params);
    res.model = dt.Train();
  } else {
    JB_THROW("unknown boosting type " << params.boosting);
  }
  res.seconds = timer.Seconds();
  res.update_seconds = (db.TotalMsForTag("update") - update0) / 1e3;
  res.message_seconds = (db.TotalMsForTag("message") - message0) / 1e3;
  res.feature_seconds = (db.TotalMsForTag("feature") - feature0) / 1e3;
  res.message_queries = db.CountForTag("message") - nmsg0;
  res.feature_queries = db.CountForTag("feature") - nfeat0;
  res.cache_hits = session.fac().cache_hits();
  res.cache_misses = session.fac().cache_misses();
  res.plan_stats = db.PlanStatsTotals() - plan0;
  return res;
}

}  // namespace joinboost
