#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/params.h"
#include "core/split.h"
#include "factor/message_passing.h"

namespace joinboost {
namespace core {

/// Output of growing one tree: the model plus the per-leaf predicate sets
/// and aggregates that residual updates need (§4, §5.3).
struct GrowthResult {
  TreeModel tree;
  struct LeafInfo {
    int node = 0;
    factor::PredicateSet preds;
    double c = 0;          ///< C (or H) in the leaf
    double s = 0;          ///< S (or G) in the leaf
    double raw_value = 0;  ///< unshrunk leaf value s/(c+λ)
  };
  std::vector<LeafInfo> leaves;
  int first_split_relation = -1;  ///< drives CPT cluster selection (§4.2.2)
};

/// Algorithm 1: grows one decision tree by repeatedly invoking the
/// best-split SQL per feature via the factorizer. Growth is best-first
/// (priority queue on criterion reduction) or depth-wise.
class TreeGrower {
 public:
  TreeGrower(factor::Factorizer* fac, const TrainParams& params);

  /// Grow a tree over `features`. `agg_root` is the relation used for total
  /// aggregates (Y's relation or the cluster fact). When `clusters` is
  /// non-null, splits after the first are confined to the first split's
  /// cluster — the Clustered Predicate Tree policy.
  GrowthResult Grow(const std::vector<std::string>& features, int agg_root,
                    const std::vector<int>* clusters);

  /// Number of best-split queries issued so far (Fig 9 instrumentation).
  /// Per-feature path: one per (leaf, feature). Batched path: one per
  /// (leaf, relation carrying candidate features).
  size_t split_queries() const { return split_queries_; }

 private:
  struct LeafState {
    int node = 0;
    int depth = 0;
    factor::PredicateSet preds;
    double c = 0, s = 0;
    SplitCandidate best;
    bool evaluated = false;
  };

  SplitCandidate BestSplit(const LeafState& leaf,
                           const std::vector<std::string>& features,
                           const std::vector<int>* allowed);
  /// Batched path: one GROUPING SETS histogram query per relation, threshold
  /// enumeration in C++ (split.cc). Candidate comparison order matches the
  /// per-feature path exactly, so results are bit-identical.
  SplitCandidate BestSplitBatched(
      const std::map<int, std::vector<std::string>>& by_rel,
      const LeafState& leaf, const CriterionParams& crit);
  bool IsCategorical(int rel, const std::string& feature) const;

  factor::Factorizer* fac_;
  TrainParams params_;
  size_t split_queries_ = 0;
};

}  // namespace core
}  // namespace joinboost
