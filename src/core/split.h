#pragma once

#include <cstdint>
#include <string>

#include "factor/message_passing.h"

namespace joinboost {
namespace core {

/// A candidate split returned by the best-split SQL of one feature.
struct SplitCandidate {
  bool valid = false;
  std::string feature;
  int relation = -1;
  bool categorical = false;
  double threshold = 0;
  int64_t category = 0;
  std::string category_str;
  double gain = 0;
  double c_left = 0;  ///< C (or H) of the selected side σ
  double s_left = 0;  ///< S (or G) of the selected side σ
};

/// Constants of the node being split, baked into the criterion SQL just as
/// the paper substitutes {$stotal}/{$ctotal} (Example 2).
struct CriterionParams {
  double c_total = 0;
  double s_total = 0;
  double lambda = 0;         ///< L2 regularization λ
  double min_leaf = 1;       ///< min C on each side
  bool halved = false;       ///< 0.5 factor of the boosting gain
};

/// Criterion expression over columns `c`/`s` of the aggregated subquery:
///   [0.5·]((s/(c+λ))·s + ((S−s)/(C−c+λ))·(S−s) − (S/(C+λ))·S)
/// computed as (s/c)*s to avoid overflow (Appendix A).
std::string CriterionSql(const CriterionParams& p);

/// Complete best-split query for a numeric feature (Example 2 shape):
/// group-by → window prefix sums → criterion → ORDER BY criteria DESC LIMIT 1.
std::string NumericBestSplitSql(const std::string& attr,
                                const factor::Factorizer::AbsorptionParts& abs,
                                const CriterionParams& p);

/// Best-split query for a categorical feature (equality split, no window).
std::string CategoricalBestSplitSql(
    const std::string& attr, const factor::Factorizer::AbsorptionParts& abs,
    const CriterionParams& p);

// ---- batched split evaluation (one histogram query per relation) ----

/// One (value, c, s) bin of a feature histogram, in aggregation (group
/// first-occurrence) order — exactly the rows the batched GROUPING SETS
/// query emits for one feature.
struct HistogramEntry {
  Value val;
  Value c;
  Value s;
};

/// Winning row of the threshold enumeration over one histogram. `criteria`
/// may be NaN/inf — the caller invalidates such candidates, exactly like the
/// consumer of the per-feature SQL result does.
struct HistogramSplit {
  bool valid = false;  ///< some bin passed the bounds predicate
  Value val;
  double c = 0;
  double s = 0;
  double criteria = 0;
};

/// Criterion over cumulative (c, s): mirrors CriterionSql() operation for
/// operation — including SQL division-by-zero → NULL (NaN) — so the batched
/// C++ kernel produces bit-identical gains to the SQL expression evaluator.
double CriterionValue(double c, double s, const CriterionParams& p);

/// Threshold enumeration over one feature's histogram: the C++ twin of the
/// per-feature best-split SQL. Numeric features get the window-style prefix
/// sums (stable sort by value, running sums in that order); both kinds then
/// apply the bounds predicate, the criterion and the ORDER BY criteria DESC
/// LIMIT 1 argmax (first row wins ties; NULL criteria sorts first under
/// DESC, as in SortExec). Bit-identical to executing the SQL.
HistogramSplit BestSplitFromHistogram(const std::vector<HistogramEntry>& bins,
                                      bool categorical,
                                      const CriterionParams& p);

}  // namespace core
}  // namespace joinboost
