#pragma once

#include <cstdint>
#include <string>

#include "factor/message_passing.h"

namespace joinboost {
namespace core {

/// A candidate split returned by the best-split SQL of one feature.
struct SplitCandidate {
  bool valid = false;
  std::string feature;
  int relation = -1;
  bool categorical = false;
  double threshold = 0;
  int64_t category = 0;
  std::string category_str;
  double gain = 0;
  double c_left = 0;  ///< C (or H) of the selected side σ
  double s_left = 0;  ///< S (or G) of the selected side σ
};

/// Constants of the node being split, baked into the criterion SQL just as
/// the paper substitutes {$stotal}/{$ctotal} (Example 2).
struct CriterionParams {
  double c_total = 0;
  double s_total = 0;
  double lambda = 0;         ///< L2 regularization λ
  double min_leaf = 1;       ///< min C on each side
  bool halved = false;       ///< 0.5 factor of the boosting gain
};

/// Criterion expression over columns `c`/`s` of the aggregated subquery:
///   [0.5·]((s/(c+λ))·s + ((S−s)/(C−c+λ))·(S−s) − (S/(C+λ))·S)
/// computed as (s/c)*s to avoid overflow (Appendix A).
std::string CriterionSql(const CriterionParams& p);

/// Complete best-split query for a numeric feature (Example 2 shape):
/// group-by → window prefix sums → criterion → ORDER BY criteria DESC LIMIT 1.
std::string NumericBestSplitSql(const std::string& attr,
                                const factor::Factorizer::AbsorptionParts& abs,
                                const CriterionParams& p);

/// Best-split query for a categorical feature (equality split, no window).
std::string CategoricalBestSplitSql(
    const std::string& attr, const factor::Factorizer::AbsorptionParts& abs,
    const CriterionParams& p);

}  // namespace core
}  // namespace joinboost
