#include "core/flat_forest.h"

#include <unordered_map>

#include "util/check.h"

namespace joinboost {
namespace core {

FlatForest FlatForest::Compile(const Ensemble& model) {
  FlatForest out;
  out.base_score_ = model.base_score;
  out.average_ = model.average;

  std::unordered_map<std::string, int32_t> slot_of;
  size_t total_nodes = 0;
  for (const auto& tree : model.trees) total_nodes += tree.nodes.size();
  out.feat_.reserve(total_nodes);
  out.is_cat_.reserve(total_nodes);
  out.thresh_.reserve(total_nodes);
  out.category_.reserve(total_nodes);
  out.left_.reserve(total_nodes);
  out.right_.reserve(total_nodes);
  out.leaf_.reserve(total_nodes);
  out.tree_root_.reserve(model.trees.size());

  for (const auto& tree : model.trees) {
    JB_CHECK_MSG(!tree.nodes.empty(), "cannot compile an empty tree");
    const int32_t base = static_cast<int32_t>(out.feat_.size());
    out.tree_root_.push_back(base);  // nodes[0] is the root
    for (const auto& n : tree.nodes) {
      if (n.is_leaf) {
        out.feat_.push_back(-1);
        out.is_cat_.push_back(0);
        out.thresh_.push_back(0);
        out.category_.push_back(0);
        out.left_.push_back(-1);
        out.right_.push_back(-1);
        out.leaf_.push_back(n.prediction);
        continue;
      }
      auto [it, inserted] = slot_of.try_emplace(
          n.feature, static_cast<int32_t>(out.feature_names_.size()));
      if (inserted) {
        out.feature_names_.push_back(n.feature);
        out.feature_is_cat_.push_back(n.categorical ? 1 : 0);
      } else {
        // A feature's kind is a property of its column type; a forest mixing
        // both for one name would need per-node accessors.
        JB_CHECK_MSG(out.feature_is_cat_[static_cast<size_t>(it->second)] ==
                         (n.categorical ? 1 : 0),
                     "feature " << n.feature
                                << " used both numerically and categorically");
      }
      out.feat_.push_back(it->second);
      out.is_cat_.push_back(n.categorical ? 1 : 0);
      out.thresh_.push_back(n.threshold);
      out.category_.push_back(n.category);
      out.left_.push_back(base + n.left);
      out.right_.push_back(base + n.right);
      out.leaf_.push_back(0);
    }
  }
  return out;
}

std::vector<FlatForest::BoundColumn> FlatForest::Bind(
    const exec::ExecTable& table) const {
  std::vector<BoundColumn> bound(feature_names_.size());
  for (size_t s = 0; s < feature_names_.size(); ++s) {
    int idx = table.Find("", feature_names_[s]);
    JB_CHECK_MSG(idx >= 0, "feature " << feature_names_[s]
                                      << " absent from prediction input");
    const exec::VectorData& v = table.cols[static_cast<size_t>(idx)].data;
    BoundColumn& b = bound[s];
    b.type = v.type;
    if (v.type == TypeId::kFloat64) {
      JB_CHECK_MSG(!feature_is_cat_[s], "categorical feature "
                                            << feature_names_[s]
                                            << " bound to a float column");
      b.dbls = v.dbls.get();
      JB_CHECK(b.dbls != nullptr);
    } else {
      b.ints = v.ints.get();
      JB_CHECK(b.ints != nullptr);
    }
  }
  return bound;
}

void FlatForest::PredictRange(const exec::ExecTable& table, size_t begin,
                              size_t end, std::vector<double>* out) const {
  JB_CHECK(begin <= end && end <= table.rows);
  const size_t n = end - begin;
  const std::vector<BoundColumn> bound = Bind(table);

  // Tree-outer / row-inner with per-row accumulators: addition order per row
  // is tree 0, 1, 2, ... — exactly Ensemble::PredictPrefix.
  std::vector<double> acc(n, 0.0);
  for (int32_t root : tree_root_) {
    for (size_t r = 0; r < n; ++r) {
      const size_t row = begin + r;
      int32_t i = root;
      for (;;) {
        const int32_t f = feat_[static_cast<size_t>(i)];
        if (f < 0) {
          acc[r] += leaf_[static_cast<size_t>(i)];
          break;
        }
        const BoundColumn& col = bound[static_cast<size_t>(f)];
        bool go_left;
        if (is_cat_[static_cast<size_t>(i)]) {
          // Raw dictionary-code comparison (JoinedEval::Row::GetCategory).
          go_left = (*col.ints)[row] == category_[static_cast<size_t>(i)];
        } else {
          // Value::AsDouble promotion: int64 null -> NaN; NaN <= t is false,
          // so nulls route right, matching the per-row path.
          double v;
          if (col.type == TypeId::kFloat64) {
            v = (*col.dbls)[row];
          } else {
            const int64_t iv = (*col.ints)[row];
            v = iv == kNullInt64 ? NullFloat64() : static_cast<double>(iv);
          }
          go_left = v <= thresh_[static_cast<size_t>(i)];
        }
        i = go_left ? left_[static_cast<size_t>(i)]
                    : right_[static_cast<size_t>(i)];
      }
    }
  }

  const size_t k = tree_root_.size();
  out->reserve(out->size() + n);
  for (size_t r = 0; r < n; ++r) {
    double a = acc[r];
    if (average_ && k > 0) a /= static_cast<double>(k);
    out->push_back(base_score_ + a);
  }
}

std::vector<double> FlatForest::PredictBatch(
    const exec::ExecTable& table) const {
  std::vector<double> out;
  PredictRange(table, 0, table.rows, &out);
  return out;
}

}  // namespace core
}  // namespace joinboost
