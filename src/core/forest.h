#pragma once

#include "core/model.h"
#include "core/session.h"
#include "core/trainer.h"

namespace joinboost {
namespace core {

/// Single factorized decision tree (Algorithm 1 over the join graph).
class DecisionTree {
 public:
  DecisionTree(Session* session, TrainParams params);
  Ensemble Train();

 private:
  Session* session_;
  TrainParams params_;
};

/// Factorized random forest (§5.5.2): trees train on fact-table samples
/// (snowflake optimization — the fact is sampled directly via deterministic
/// hashing in SQL) and random feature subsets; predictions average.
/// Trees run concurrently under inter-query parallelism.
class RandomForest {
 public:
  RandomForest(Session* session, TrainParams params);
  Ensemble Train();

 private:
  TreeModel TrainOneTree(int tree_index);

  Session* session_;
  TrainParams params_;
};

}  // namespace core
}  // namespace joinboost
