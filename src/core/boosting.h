#pragma once

#include <string>
#include <vector>

#include "core/model.h"
#include "core/session.h"
#include "core/trainer.h"

namespace joinboost {
namespace core {

/// Factorized gradient boosting (§4): trains each tree on the residuals of
/// the preceding trees without materializing R⋈, using the
/// addition-to-multiplication-preserving residual update for rmse (semi-join
/// selectors + one of the §5.3/§5.4 update strategies), or the general
/// gradient/hessian columns for other objectives on snowflake schemas.
class GradientBoosting {
 public:
  GradientBoosting(Session* session, TrainParams params);

  Ensemble Train();

  /// Apply one tree's residual update (exposed for benchmarking the update
  /// strategies in isolation — Figures 5 and 15).
  void UpdateResiduals(Session& session, const GrowthResult& grown,
                       int fact_rel);

  /// Per-leaf fact-table condition SQL (semi-join selectors, §5.3.1).
  static std::string LeafConditionSql(Session& session, int fact_rel,
                                      const factor::PredicateSet& preds);

 private:
  void UpdateResidualSemiring(Session& session, const GrowthResult& grown,
                              int fact_rel, const std::string& strategy);
  void UpdateGeneral(Session& session, const GrowthResult& grown,
                     int fact_rel, const std::string& strategy);

  Session* session_;
  TrainParams params_;
};

/// Resolve "auto" to a concrete update strategy given the engine profile.
std::string ResolveUpdateStrategy(const std::string& requested,
                                  const EngineProfile& profile);

}  // namespace core
}  // namespace joinboost
