#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/params.h"
#include "factor/message_passing.h"
#include "semiring/objectives.h"

namespace joinboost {
namespace core {

/// Internal training session: lifts relations into annotated working copies
/// (never touching user data — paper §5.1 "Safety"), binds them into a
/// Factorizer, and owns cluster/fact bookkeeping shared by the decision
/// tree, random forest and gradient boosting trainers.
class Session {
 public:
  Session(Dataset* data, TrainParams params);
  ~Session();

  /// Compute base score, create lifted tables and the factorizer.
  void Prepare();

  factor::Factorizer& fac() { return *fac_; }
  exec::Database& db() { return *data_->db(); }
  const graph::JoinGraph& graph() const { return data_->graph(); }
  const TrainParams& params() const { return params_; }
  const semiring::ObjectivePtr& objective() const { return objective_; }

  int y_relation() const { return y_rel_; }
  double base_score() const { return base_score_; }

  /// Cluster id per relation and the fact relation of each cluster (CPT).
  const std::vector<int>& clusters() const { return clusters_; }
  const std::vector<int>& cluster_facts() const { return cluster_facts_; }
  bool is_snowflake() const { return cluster_facts_.size() == 1; }
  /// Fact relation of the cluster containing `rel`.
  int FactOf(int rel) const;
  /// Fact relation of Y's cluster (the default aggregation root).
  int y_fact() const { return FactOf(y_rel_); }

  /// Whether the fast residual-semiring path is active (rmse) or the general
  /// gradient/hessian path (other objectives; snowflake only — §4.2).
  bool residual_semiring() const { return residual_semiring_; }

  /// Current physical table name of a lifted fact (indirection so the
  /// CREATE-TABLE update strategy can retarget it).
  const std::string& FactTable(int rel) const;
  void SetFactTable(int rel, const std::string& name);
  /// Synthesized (or user-declared) row-id column of a lifted fact.
  const std::string& RowId(int rel) const;

  /// Rebind `rel` to a different physical table (sampling / create-update).
  void Rebind(int rel, const std::string& table);

  /// A fresh factorizer with this session's bindings, with `rel_override`
  /// pointed at `table_override` (used by per-tree forest sampling; each
  /// tree owns its message cache so trees can train in parallel).
  std::unique_ptr<factor::Factorizer> MakeFactorizer(
      int rel_override, const std::string& table_override,
      const std::string& temp_prefix);

  /// The unique temp-table prefix of this session.
  const std::string& prefix() const { return prefix_; }
  std::string NewTempName();

  /// Drop all session-created tables (lifted copies, messages, samples).
  void Cleanup();

 private:
  void LiftFact(int rel, bool with_y);

  Dataset* data_;
  TrainParams params_;
  semiring::ObjectivePtr objective_;
  std::unique_ptr<factor::Factorizer> fac_;

  int y_rel_ = -1;
  double base_score_ = 0;
  bool residual_semiring_ = true;
  std::vector<int> clusters_;
  std::vector<int> cluster_facts_;
  std::vector<std::string> fact_tables_;  ///< per relation; "" if not a fact
  std::vector<std::string> row_ids_;
  std::string prefix_;
  uint64_t temp_counter_ = 0;
};

}  // namespace core
}  // namespace joinboost
