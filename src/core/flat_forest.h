#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"
#include "exec/vector.h"

namespace joinboost {
namespace core {

/// An Ensemble compiled to flat structure-of-arrays form for batched serving.
///
/// The per-row path (Ensemble::Predict over a RowView) pays, per tree node,
/// a virtual call plus a string-keyed hash lookup to resolve the split
/// feature. Compilation hoists both out of the loop: features collapse to
/// dense slot indices resolved once per batch against the input's columns,
/// and nodes become parallel vectors walked with plain integer indexing.
///
/// Determinism contract: PredictBatch is bit-identical to calling
/// Ensemble::Predict on every row. Trees accumulate in ensemble order with a
/// per-row accumulator (same floating-point addition order), numeric fetches
/// reproduce Value::AsDouble promotion (int64 null -> NaN, NaN comparisons
/// route right), and categorical fetches compare raw dictionary codes.
class FlatForest {
 public:
  /// Compile `model` into flat arrays. The model is copied by value into
  /// vectors; the FlatForest holds no reference to it afterwards.
  static FlatForest Compile(const Ensemble& model);

  /// Predict rows [begin, end) of `table`. Feature slots resolve against
  /// `table`'s columns by name (unqualified, first match), once per call.
  /// Appends one prediction per row to `out`.
  void PredictRange(const exec::ExecTable& table, size_t begin, size_t end,
                    std::vector<double>* out) const;

  /// Predict every row of `table`.
  std::vector<double> PredictBatch(const exec::ExecTable& table) const;

  size_t num_trees() const { return tree_root_.size(); }
  size_t num_nodes() const { return feat_.size(); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  double base_score() const { return base_score_; }

 private:
  /// Per-slot column accessor bound for one batch.
  struct BoundColumn {
    TypeId type = TypeId::kInt64;
    const std::vector<int64_t>* ints = nullptr;
    const std::vector<double>* dbls = nullptr;
  };
  std::vector<BoundColumn> Bind(const exec::ExecTable& table) const;

  // Node arrays (absolute indices; one entry per node across all trees).
  std::vector<int32_t> feat_;      ///< feature slot; -1 marks a leaf
  std::vector<uint8_t> is_cat_;    ///< categorical split?
  std::vector<double> thresh_;     ///< numeric threshold (`<=` goes left)
  std::vector<int64_t> category_;  ///< dictionary code (`==` goes left)
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  std::vector<double> leaf_;       ///< leaf prediction

  std::vector<int32_t> tree_root_;  ///< root node index per tree

  // Feature slots.
  std::vector<std::string> feature_names_;
  std::vector<uint8_t> feature_is_cat_;

  double base_score_ = 0;
  bool average_ = false;
};

}  // namespace core
}  // namespace joinboost
