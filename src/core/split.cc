#include "core/split.h"

#include <sstream>

#include "semiring/sql_gen.h"

namespace joinboost {
namespace core {

std::string CriterionSql(const CriterionParams& p) {
  using semiring::SqlDouble;
  std::string S = SqlDouble(p.s_total);
  std::string C = SqlDouble(p.c_total);
  std::string lam = SqlDouble(p.lambda);
  std::ostringstream os;
  if (p.halved) os << "0.5 * (";
  os << "(s / (c + " << lam << ")) * s"
     << " + ((" << S << " - s) / (" << C << " - c + " << lam << ")) * (" << S
     << " - s)"
     << " - (" << S << " / (" << C << " + " << lam << ")) * " << S;
  if (p.halved) os << ")";
  return os.str();
}

namespace {

std::string BoundsPredicate(const CriterionParams& p) {
  using semiring::SqlDouble;
  std::ostringstream os;
  os << "c >= " << SqlDouble(p.min_leaf) << " AND c <= "
     << SqlDouble(p.c_total - p.min_leaf);
  return os.str();
}

}  // namespace

std::string NumericBestSplitSql(const std::string& attr,
                                const factor::Factorizer::AbsorptionParts& abs,
                                const CriterionParams& p) {
  std::ostringstream os;
  os << "SELECT val, c, s, " << CriterionSql(p) << " AS criteria FROM ("
     << "SELECT val, SUM(c) OVER (ORDER BY val) AS c, "
     << "SUM(s) OVER (ORDER BY val) AS s FROM ("
     << "SELECT " << attr << " AS val, SUM(" << abs.c_expr << ") AS c, SUM("
     << abs.s_expr << ") AS s " << abs.from_where << " GROUP BY " << attr
     << ")) WHERE " << BoundsPredicate(p)
     << " ORDER BY criteria DESC LIMIT 1";
  return os.str();
}

std::string CategoricalBestSplitSql(
    const std::string& attr, const factor::Factorizer::AbsorptionParts& abs,
    const CriterionParams& p) {
  std::ostringstream os;
  os << "SELECT val, c, s, " << CriterionSql(p) << " AS criteria FROM ("
     << "SELECT " << attr << " AS val, SUM(" << abs.c_expr << ") AS c, SUM("
     << abs.s_expr << ") AS s " << abs.from_where << " GROUP BY " << attr
     << ") WHERE " << BoundsPredicate(p)
     << " ORDER BY criteria DESC LIMIT 1";
  return os.str();
}

}  // namespace core
}  // namespace joinboost
