#include "core/split.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <vector>

#include "semiring/sql_gen.h"

namespace joinboost {
namespace core {

std::string CriterionSql(const CriterionParams& p) {
  using semiring::SqlDouble;
  std::string S = SqlDouble(p.s_total);
  std::string C = SqlDouble(p.c_total);
  std::string lam = SqlDouble(p.lambda);
  std::ostringstream os;
  if (p.halved) os << "0.5 * (";
  os << "(s / (c + " << lam << ")) * s"
     << " + ((" << S << " - s) / (" << C << " - c + " << lam << ")) * (" << S
     << " - s)"
     << " - (" << S << " / (" << C << " + " << lam << ")) * " << S;
  if (p.halved) os << ")";
  return os.str();
}

namespace {

std::string BoundsPredicate(const CriterionParams& p) {
  using semiring::SqlDouble;
  std::ostringstream os;
  os << "c >= " << SqlDouble(p.min_leaf) << " AND c <= "
     << SqlDouble(p.c_total - p.min_leaf);
  return os.str();
}

}  // namespace

std::string NumericBestSplitSql(const std::string& attr,
                                const factor::Factorizer::AbsorptionParts& abs,
                                const CriterionParams& p) {
  std::ostringstream os;
  os << "SELECT val, c, s, " << CriterionSql(p) << " AS criteria FROM ("
     << "SELECT val, SUM(c) OVER (ORDER BY val) AS c, "
     << "SUM(s) OVER (ORDER BY val) AS s FROM ("
     << "SELECT " << attr << " AS val, SUM(" << abs.c_expr << ") AS c, SUM("
     << abs.s_expr << ") AS s " << abs.from_where << " GROUP BY " << attr
     << ")) WHERE " << BoundsPredicate(p)
     << " ORDER BY criteria DESC LIMIT 1";
  return os.str();
}

std::string CategoricalBestSplitSql(
    const std::string& attr, const factor::Factorizer::AbsorptionParts& abs,
    const CriterionParams& p) {
  std::ostringstream os;
  os << "SELECT val, c, s, " << CriterionSql(p) << " AS criteria FROM ("
     << "SELECT " << attr << " AS val, SUM(" << abs.c_expr << ") AS c, SUM("
     << abs.s_expr << ") AS s " << abs.from_where << " GROUP BY " << attr
     << ") WHERE " << BoundsPredicate(p)
     << " ORDER BY criteria DESC LIMIT 1";
  return os.str();
}

namespace {

/// WindowExec's ORDER BY key conversion: doubles pass through (NaN when
/// NULL); ints cast unconditionally, so the int NULL sentinel orders first.
double WindowOrderKey(const Value& v) {
  return v.type == TypeId::kFloat64 ? v.d : static_cast<double>(v.i);
}

/// SQL division: divide-by-zero yields NULL (NaN), as in EvalNumericBinary.
double SqlDiv(double x, double y) {
  return y == 0.0 ? NullFloat64() : x / y;
}

}  // namespace

double CriterionValue(double c, double s, const CriterionParams& p) {
  // One statement per SQL binary operation, in CriterionSql()'s parse order:
  // the expression evaluator runs each op separately, so keeping them as
  // separate statements stops the compiler from contracting/reassociating
  // what SQL computes stepwise (bit-identical gains).
  const double S = p.s_total;
  const double C = p.c_total;
  const double lam = p.lambda;
  if (IsNullFloat64(c) || IsNullFloat64(s)) return NullFloat64();
  double denom_l = c + lam;
  double ratio_l = SqlDiv(s, denom_l);
  double left = ratio_l * s;
  double s_r = S - s;
  double c_r = C - c;
  double denom_r = c_r + lam;
  double ratio_r = SqlDiv(s_r, denom_r);
  double right = ratio_r * s_r;
  double denom_t = C + lam;
  double ratio_t = SqlDiv(S, denom_t);
  double total = ratio_t * S;
  double gain = left + right;
  gain = gain - total;
  if (p.halved) gain = 0.5 * gain;
  return gain;
}

HistogramSplit BestSplitFromHistogram(const std::vector<HistogramEntry>& bins,
                                      bool categorical,
                                      const CriterionParams& p) {
  const size_t n = bins.size();
  std::vector<double> cum_c(n), cum_s(n);
  if (categorical) {
    // Equality split: each bin stands alone (no prefix sums).
    for (size_t i = 0; i < n; ++i) {
      cum_c[i] = bins[i].c.AsDouble();
      cum_s[i] = bins[i].s.AsDouble();
    }
  } else {
    // WindowExec twin: stable-sort bins by value, then running sums in that
    // order (NULL terms skipped), written back per bin. The c and s windows
    // accumulate independently, exactly like two SUM(...) OVER calls.
    std::vector<uint32_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0u);
    std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
      return WindowOrderKey(bins[a].val) < WindowOrderKey(bins[b].val);
    });
    double run_c = 0.0, run_s = 0.0;
    for (uint32_t r : idx) {
      if (!bins[r].c.null) run_c += bins[r].c.AsDouble();
      cum_c[r] = run_c;
      if (!bins[r].s.null) run_s += bins[r].s.AsDouble();
      cum_s[r] = run_s;
    }
  }

  // Bounds predicate + criterion + ORDER BY criteria DESC LIMIT 1, scanning
  // in bin (group first-occurrence) order: the stable descending sort puts
  // the first strict maximum first — and rows with NULL criteria before
  // every non-NULL row (SortExec's null ordering under DESC), so the first
  // bounds-passing NULL-criteria bin wins if one exists.
  const double c_lo = p.min_leaf;
  const double c_hi = p.c_total - p.min_leaf;
  HistogramSplit best;
  size_t win = SIZE_MAX;
  bool win_null = false;
  for (size_t i = 0; i < n; ++i) {
    const double c = cum_c[i];
    if (!(c >= c_lo && c <= c_hi)) continue;  // NaN c fails, as NULL does
    const double crit = CriterionValue(c, cum_s[i], p);
    const bool is_null = IsNullFloat64(crit);
    if (win != SIZE_MAX) {
      if (win_null) continue;                       // NULL stays pinned first
      if (!is_null && !(crit > best.criteria)) continue;  // ties keep first
    }
    win = i;
    win_null = is_null;
    best.valid = true;
    best.val = bins[i].val;
    best.c = c;
    best.s = cum_s[i];
    best.criteria = crit;
  }
  return best;
}

}  // namespace core
}  // namespace joinboost
