#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dataset.h"
#include "core/model.h"
#include "exec/vector.h"

namespace joinboost {
namespace core {

/// A materialized join result wrapped for model evaluation. Used by tests
/// and benches (the trainers themselves never materialize R⋈ — that is the
/// whole point of the paper).
class JoinedEval {
 public:
  JoinedEval(std::shared_ptr<exec::ExecTable> table, std::string y_col);

  size_t rows() const { return table_->rows; }

  /// Root-mean-square error of the full ensemble against Y.
  double Rmse(const Ensemble& model) const;

  /// RMSE after each boosting iteration (Figure 8c learning curves),
  /// computed incrementally in one pass over the trees.
  std::vector<double> RmseCurve(const Ensemble& model) const;

  /// Evaluate a single row.
  double Predict(const Ensemble& model, size_t row) const;
  double YValue(size_t row) const;

  const exec::ExecTable& table() const { return *table_; }

 private:
  class Row;
  std::shared_ptr<exec::ExecTable> table_;
  std::string y_col_;
  int y_idx_ = -1;
  std::unordered_map<std::string, int> col_idx_;
};

/// SQL that joins every relation of the dataset and projects all features
/// plus Y (aliased "jb_y"). This is what ML libraries force you to
/// materialize and export (the paper's "Join+Export" cost).
std::string FullJoinSql(const Dataset& data);

/// Materialize the join and wrap it for evaluation. `tag` labels the query.
JoinedEval MaterializeJoin(Dataset& data, const std::string& tag = "export");

}  // namespace core
}  // namespace joinboost
