#include "core/distributed.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/boosting.h"
#include "factor/message_passing.h"
#include "semiring/sql_gen.h"
#include "util/check.h"
#include "util/threadpool.h"
#include "util/timer.h"

namespace joinboost {
namespace core {

struct DistributedTrainer::Worker {
  std::unique_ptr<exec::Database> db;
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<Session> session;
};

DistributedTrainer::DistributedTrainer(Dataset& source,
                                       DistributedConfig config)
    : config_(std::move(config)) {
  Partition(source);
}

DistributedTrainer::~DistributedTrainer() = default;

void DistributedTrainer::Partition(Dataset& source) {
  source.Prepare();
  const graph::JoinGraph& g = source.graph();
  std::vector<int> facts;
  std::vector<int> clusters = g.ComputeClusters(&facts);
  JB_CHECK_MSG(facts.size() == 1,
               "distributed training supports snowflake schemas");
  int fact = facts[0];
  (void)clusters;
  y_column_ = g.relation(g.YRelation()).y_column;
  features_ = g.AllFeatures();

  TablePtr fact_tbl = source.db()->catalog().Get(g.relation(fact).name);
  const size_t rows = fact_tbl->num_rows();
  const size_t W = static_cast<size_t>(config_.num_workers);

  for (size_t w = 0; w < W; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->db = std::make_unique<exec::Database>(EngineProfile::DSwap());
    // Hash-partition the fact; replicate dimensions zero-copy.
    std::vector<uint32_t> shard_rows;
    for (size_t r = w; r < rows; r += W) {
      shard_rows.push_back(static_cast<uint32_t>(r));
    }
    std::vector<ColumnPtr> cols;
    for (size_t c = 0; c < fact_tbl->num_columns(); ++c) {
      const auto& col = fact_tbl->column(c);
      if (col->type() == TypeId::kFloat64) {
        std::vector<double> src = col->DecodeDoubles();
        std::vector<double> dst;
        dst.reserve(shard_rows.size());
        for (uint32_t r : shard_rows) dst.push_back(src[r]);
        cols.push_back(ColumnBuilder(TypeId::kFloat64)
                           .AppendDoubles(std::move(dst))
                           .Build());
      } else {
        std::vector<int64_t> src = col->DecodeInts();
        std::vector<int64_t> dst;
        dst.reserve(shard_rows.size());
        for (uint32_t r : shard_rows) dst.push_back(src[r]);
        if (col->type() == TypeId::kString) {
          cols.push_back(ColumnBuilder(TypeId::kString, col->dict())
                             .AppendCodes(std::move(dst))
                             .Build());
        } else {
          cols.push_back(ColumnBuilder(TypeId::kInt64)
                             .AppendInts(std::move(dst))
                             .Build());
        }
      }
    }
    worker->db->RegisterTable(std::make_shared<Table>(
        fact_tbl->name(), fact_tbl->schema(), std::move(cols)));
    for (size_t r = 0; r < g.num_relations(); ++r) {
      if (static_cast<int>(r) == fact) continue;
      worker->db->RegisterTable(
          source.db()->catalog().Get(g.relation(static_cast<int>(r)).name));
    }
    // Mirror the dataset definition.
    worker->dataset = std::make_unique<Dataset>(worker->db.get());
    for (size_t r = 0; r < g.num_relations(); ++r) {
      const auto& rel = g.relation(static_cast<int>(r));
      worker->dataset->AddTable(rel.name, rel.features, rel.y_column);
    }
    for (const auto& e : g.edges()) {
      worker->dataset->AddJoin(g.relation(e.a).name, g.relation(e.b).name,
                               e.keys);
    }
    workers_.push_back(std::move(worker));
  }
}

DistributedResult DistributedTrainer::Train(const TrainParams& params) {
  DistributedResult out;
  Timer wall;
  ThreadPool pool(workers_.size());
  const size_t W = workers_.size();

  auto charge_network = [&](size_t bytes_per_worker) {
    out.shuffle_bytes += bytes_per_worker * W;
    out.shuffle_seconds +=
        config_.network_latency_s +
        static_cast<double>(bytes_per_worker * W) /
            config_.network_bandwidth_bytes_per_s;
  };

  // Prepare sessions in parallel; align base scores globally.
  pool.ParallelFor(W, [&](size_t w) {
    workers_[w]->session =
        std::make_unique<Session>(workers_[w]->dataset.get(), params);
    workers_[w]->session->Prepare();
  });
  // Merge per-worker totals into the global base score.
  double global_c = 0, global_s = 0;
  std::vector<semiring::VarianceElem> totals(W);
  factor::PredicateSet none;
  pool.ParallelFor(W, [&](size_t w) {
    totals[w] = workers_[w]->session->fac().TotalAggregate(
        workers_[w]->session->y_fact(), none, "message");
  });
  charge_network(24);
  const bool boosted = params.boosting == "gbdt";
  for (size_t w = 0; w < W; ++w) {
    // Undo each worker's local base to recover raw sums.
    double local_base = workers_[w]->session->base_score();
    global_c += totals[w].c;
    global_s += totals[w].s + local_base * totals[w].c;
  }
  double base = boosted && global_c > 0 ? global_s / global_c : 0;
  if (boosted) {
    pool.ParallelFor(W, [&](size_t w) {
      Session& s = *workers_[w]->session;
      double diff = s.base_score() - base;
      if (std::fabs(diff) > 1e-15) {
        s.db().Execute("UPDATE " + s.FactTable(s.y_fact()) + " SET s = s + " +
                           semiring::SqlDouble(diff),
                       "update");
        s.fac().BumpEpoch(s.y_fact());
      }
    });
  }

  Ensemble& model = out.model;
  model.base_score = base;
  model.average = false;

  struct Leaf {
    int node;
    factor::PredicateSet preds;
    double c, s;
    bool has_best = false;
    std::string best_feature;
    int best_rel = -1;
    double best_threshold = 0, best_gain = 0, best_cl = 0, best_sl = 0;
  };

  int iterations = boosted ? params.num_iterations : 1;
  GradientBoosting updater(nullptr, params);

  for (int iter = 0; iter < iterations; ++iter) {
    // --- grow one tree with coordinator-merged aggregates ---
    TreeModel tree;
    tree.nodes.push_back(TreeNode{});
    std::vector<semiring::VarianceElem> t(W);
    pool.ParallelFor(W, [&](size_t w) {
      t[w] = workers_[w]->session->fac().TotalAggregate(
          workers_[w]->session->y_fact(), none, "message");
    });
    charge_network(24);
    double total_c = 0, total_s = 0;
    for (const auto& e : t) {
      total_c += e.c;
      total_s += e.s;
    }

    auto find_best = [&](Leaf& leaf) {
      leaf.has_best = false;
      for (const auto& f : features_) {
        int rel = workers_[0]->session->graph().RelationOfFeature(f);
        // Merge per-worker grouped aggregates (the shuffle stage of Fig 13).
        std::map<double, std::pair<double, double>> groups;
        std::vector<std::map<double, std::pair<double, double>>> parts(W);
        pool.ParallelFor(W, [&](size_t w) {
          Session& s = *workers_[w]->session;
          auto abs = s.fac().BuildAbsorption(rel, leaf.preds, "message");
          std::string sql = "SELECT " + f + " AS val, SUM(" + abs.c_expr +
                            ") AS c, SUM(" + abs.s_expr + ") AS s " +
                            abs.from_where + " GROUP BY " + f;
          auto res = s.db().Query(sql, "feature");
          for (size_t r = 0; r < res->rows; ++r) {
            parts[w][res->GetValue(r, 0).AsDouble()] = {
                res->GetValue(r, 1).AsDouble(), res->GetValue(r, 2).AsDouble()};
          }
        });
        size_t bytes = 0;
        for (const auto& p : parts) bytes += p.size() * 24;
        charge_network(bytes / std::max<size_t>(W, 1));
        for (const auto& p : parts) {
          for (const auto& [val, cs] : p) {
            auto& acc = groups[val];
            acc.first += cs.first;
            acc.second += cs.second;
          }
        }
        // Coordinator-side prefix scan.
        double cum_c = 0, cum_s = 0;
        for (const auto& [val, cs] : groups) {
          cum_c += cs.first;
          cum_s += cs.second;
          if (cum_c < params.min_data_in_leaf ||
              leaf.c - cum_c < params.min_data_in_leaf) {
            continue;
          }
          double gain = semiring::GradientGain(leaf.s, leaf.c, cum_s, cum_c,
                                               params.lambda_l2,
                                               params.min_gain);
          if (gain > 1e-12 && (!leaf.has_best || gain > leaf.best_gain)) {
            leaf.has_best = true;
            leaf.best_feature = f;
            leaf.best_rel = rel;
            leaf.best_threshold = val;
            leaf.best_gain = gain;
            leaf.best_cl = cum_c;
            leaf.best_sl = cum_s;
          }
        }
      }
    };

    std::vector<Leaf> leaves;
    {
      Leaf root;
      root.node = 0;
      root.c = total_c;
      root.s = total_s;
      find_best(root);
      leaves.push_back(std::move(root));
    }
    int num_leaves = 1;
    while (num_leaves < params.num_leaves) {
      int pick = -1;
      for (size_t i = 0; i < leaves.size(); ++i) {
        if (!leaves[i].has_best) continue;
        if (pick < 0 || leaves[i].best_gain >
                            leaves[static_cast<size_t>(pick)].best_gain) {
          pick = static_cast<int>(i);
        }
      }
      if (pick < 0) break;
      Leaf leaf = std::move(leaves[static_cast<size_t>(pick)]);
      leaves.erase(leaves.begin() + pick);

      TreeNode& parent = tree.nodes[static_cast<size_t>(leaf.node)];
      parent.is_leaf = false;
      parent.feature = leaf.best_feature;
      parent.relation = leaf.best_rel;
      parent.threshold = leaf.best_threshold;
      parent.gain = leaf.best_gain;
      int li = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back(TreeNode{});
      int ri = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back(TreeNode{});
      tree.nodes[static_cast<size_t>(leaf.node)].left = li;
      tree.nodes[static_cast<size_t>(leaf.node)].right = ri;

      Leaf left, right;
      left.node = li;
      right.node = ri;
      left.preds = leaf.preds;
      left.preds.Add(leaf.best_rel, leaf.best_feature + " <= " +
                                        semiring::SqlDouble(leaf.best_threshold));
      right.preds = leaf.preds;
      right.preds.Add(leaf.best_rel, leaf.best_feature + " > " +
                                         semiring::SqlDouble(leaf.best_threshold));
      left.c = leaf.best_cl;
      left.s = leaf.best_sl;
      right.c = leaf.c - left.c;
      right.s = leaf.s - left.s;
      ++num_leaves;
      if (num_leaves < params.num_leaves) {
        find_best(left);
        find_best(right);
      }
      leaves.push_back(std::move(left));
      leaves.push_back(std::move(right));
    }

    // Leaf values from global aggregates; build per-worker update input.
    GrowthResult grown;
    for (auto& leaf : leaves) {
      double raw = leaf.c + params.lambda_l2 > 0
                       ? leaf.s / (leaf.c + params.lambda_l2)
                       : 0;
      double shrunk = boosted ? params.learning_rate * raw : raw;
      tree.nodes[static_cast<size_t>(leaf.node)].prediction = shrunk;
      tree.nodes[static_cast<size_t>(leaf.node)].count = leaf.c;
      tree.nodes[static_cast<size_t>(leaf.node)].sum = leaf.s;
      GrowthResult::LeafInfo info;
      info.node = leaf.node;
      info.preds = leaf.preds;
      info.c = leaf.c;
      info.s = leaf.s;
      info.raw_value = raw;
      grown.leaves.push_back(std::move(info));
    }
    grown.tree = tree;

    if (boosted && iter + 1 <= params.num_iterations) {
      // Broadcast leaf predicates; shards update independently.
      charge_network(64 * grown.leaves.size());
      pool.ParallelFor(W, [&](size_t w) {
        Session& s = *workers_[w]->session;
        updater.UpdateResiduals(s, grown, s.y_fact());
      });
    }
    model.trees.push_back(std::move(tree));
  }

  out.compute_seconds = wall.Seconds();
  out.seconds = out.compute_seconds + out.shuffle_seconds;
  return out;
}

}  // namespace core
}  // namespace joinboost
