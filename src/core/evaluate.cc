#include "core/evaluate.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace joinboost {
namespace core {

class JoinedEval::Row : public RowView {
 public:
  Row(const JoinedEval* ev, size_t row) : ev_(ev), row_(row) {}

  double GetNumeric(const std::string& feature) const override {
    int idx = Lookup(feature);
    return ev_->table_->cols[static_cast<size_t>(idx)].data.GetValue(row_)
        .AsDouble();
  }
  int64_t GetCategory(const std::string& feature) const override {
    int idx = Lookup(feature);
    const auto& v = ev_->table_->cols[static_cast<size_t>(idx)].data;
    return (*v.ints)[row_];
  }

 private:
  int Lookup(const std::string& feature) const {
    auto it = ev_->col_idx_.find(feature);
    JB_CHECK_MSG(it != ev_->col_idx_.end(),
                 "feature " << feature << " absent from evaluation join");
    return it->second;
  }
  const JoinedEval* ev_;
  size_t row_;
};

JoinedEval::JoinedEval(std::shared_ptr<exec::ExecTable> table,
                       std::string y_col)
    : table_(std::move(table)), y_col_(std::move(y_col)) {
  for (size_t i = 0; i < table_->cols.size(); ++i) {
    col_idx_.emplace(table_->cols[i].name, static_cast<int>(i));
  }
  auto it = col_idx_.find(y_col_);
  JB_CHECK_MSG(it != col_idx_.end(), "Y column missing from join");
  y_idx_ = it->second;
}

double JoinedEval::Predict(const Ensemble& model, size_t row) const {
  Row r(this, row);
  return model.Predict(r);
}

double JoinedEval::YValue(size_t row) const {
  return table_->cols[static_cast<size_t>(y_idx_)].data.GetValue(row)
      .AsDouble();
}

double JoinedEval::Rmse(const Ensemble& model) const {
  double se = 0;
  for (size_t i = 0; i < rows(); ++i) {
    double d = Predict(model, i) - YValue(i);
    se += d * d;
  }
  return rows() == 0 ? 0 : std::sqrt(se / static_cast<double>(rows()));
}

std::vector<double> JoinedEval::RmseCurve(const Ensemble& model) const {
  std::vector<double> sums(model.trees.size() + 1, 0.0);
  std::vector<double> acc(rows(), 0.0);
  // iteration 0 = base score only.
  for (size_t i = 0; i < rows(); ++i) {
    double d = model.base_score - YValue(i);
    sums[0] += d * d;
  }
  for (size_t t = 0; t < model.trees.size(); ++t) {
    for (size_t i = 0; i < rows(); ++i) {
      Row r(this, i);
      acc[i] += model.trees[t].Predict(r);
      double pred = model.base_score +
                    (model.average ? acc[i] / static_cast<double>(t + 1)
                                   : acc[i]);
      double d = pred - YValue(i);
      sums[t + 1] += d * d;
    }
  }
  for (auto& s : sums) {
    s = rows() == 0 ? 0 : std::sqrt(s / static_cast<double>(rows()));
  }
  return sums;
}

std::string FullJoinSql(const Dataset& data) {
  const graph::JoinGraph& g = data.graph();
  JB_CHECK(g.num_relations() > 0);
  graph::JoinGraph::Directed dir = g.DirectTowards(0);

  std::ostringstream select;
  select << "SELECT ";
  bool first = true;
  for (size_t r = 0; r < g.num_relations(); ++r) {
    const auto& rel = g.relation(static_cast<int>(r));
    for (const auto& f : rel.features) {
      if (!first) select << ", ";
      first = false;
      select << rel.name << "." << f << " AS " << f;
    }
    if (!rel.y_column.empty()) {
      if (!first) select << ", ";
      first = false;
      select << rel.name << "." << rel.y_column << " AS jb_y";
    }
  }

  // Join order: reverse of the leaves-first order (root first).
  std::ostringstream from;
  from << " FROM " << g.relation(dir.order.back()).name;
  for (size_t i = dir.order.size(); i-- > 1;) {
    // dir.order is leaves-first; walk root->leaves adding each child joined
    // to its parent.
    int child = dir.order[i - 1];
    int pe = dir.parent_edge[static_cast<size_t>(child)];
    int parent = dir.parent[static_cast<size_t>(child)];
    const graph::Edge& e = g.edges()[static_cast<size_t>(pe)];
    from << " JOIN " << g.relation(child).name << " ON ";
    for (size_t k = 0; k < e.keys.size(); ++k) {
      if (k) from << " AND ";
      from << g.relation(parent).name << "." << e.keys[k] << " = "
           << g.relation(child).name << "." << e.keys[k];
    }
  }
  return select.str() + from.str();
}

JoinedEval MaterializeJoin(Dataset& data, const std::string& tag) {
  std::string sql = FullJoinSql(data);
  auto table = data.db()->Query(sql, tag);
  return JoinedEval(table, "jb_y");
}

}  // namespace core
}  // namespace joinboost
