#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "semiring/sql_gen.h"
#include "util/check.h"

namespace joinboost {
namespace core {

TreeGrower::TreeGrower(factor::Factorizer* fac, const TrainParams& params)
    : fac_(fac), params_(params) {}

bool TreeGrower::IsCategorical(int rel, const std::string& feature) const {
  const auto& binding = fac_->binding(rel);
  TablePtr table = fac_->db()->catalog().Get(binding.table);
  int idx = table->schema().FieldIndex(feature);
  JB_CHECK_MSG(idx >= 0, "feature " << feature << " not in table "
                                    << binding.table);
  return table->schema().field(static_cast<size_t>(idx)).type ==
         TypeId::kString;
}

SplitCandidate TreeGrower::BestSplit(const LeafState& leaf,
                                     const std::vector<std::string>& features,
                                     const std::vector<int>* allowed) {
  // Group features by their relation so each relation's messages and
  // absorption fragment are built once (message work-sharing).
  std::map<int, std::vector<std::string>> by_rel;
  for (const auto& f : features) {
    int rel = fac_->graph().RelationOfFeature(f);
    JB_CHECK_MSG(rel >= 0, "unknown feature " << f);
    if (allowed &&
        std::find(allowed->begin(), allowed->end(), rel) == allowed->end()) {
      continue;
    }
    by_rel[rel].push_back(f);
  }

  CriterionParams crit;
  crit.c_total = leaf.c;
  crit.s_total = leaf.s;
  crit.lambda = params_.lambda_l2;
  crit.min_leaf = params_.min_data_in_leaf;
  crit.halved = true;

  if (params_.batch_split_evaluation) {
    return BestSplitBatched(by_rel, leaf, crit);
  }

  // Phase 1 (serial): ensure messages exist per root relation. The
  // factorizer serializes materialization on its own mutex; keeping this
  // phase serial here preserves deterministic temp-table naming. Split
  // queries below are read-only.
  struct Job {
    int rel;
    std::string feature;
    bool categorical;
    std::string sql;
  };
  std::vector<Job> jobs;
  for (auto& [rel, feats] : by_rel) {
    factor::Factorizer::AbsorptionParts parts =
        fac_->BuildAbsorption(rel, leaf.preds, "message");
    for (const auto& f : feats) {
      Job job;
      job.rel = rel;
      job.feature = f;
      job.categorical = IsCategorical(rel, f);
      job.sql = job.categorical ? CategoricalBestSplitSql(f, parts, crit)
                                : NumericBestSplitSql(f, parts, crit);
      jobs.push_back(std::move(job));
    }
  }

  // Phase 2: run the per-feature best-split queries (optionally in
  // parallel — inter-query parallelism, §5.5.3).
  std::vector<SplitCandidate> candidates(jobs.size());
  auto run_one = [&](size_t i) {
    const Job& job = jobs[i];
    auto res = fac_->db()->Query(job.sql, "feature");
    SplitCandidate cand;
    if (res->rows >= 1) {
      Value val = res->GetValue(0, 0);
      Value c = res->GetValue(0, 1);
      Value s = res->GetValue(0, 2);
      Value criteria = res->GetValue(0, 3);
      double gain = criteria.AsDouble();
      if (std::isfinite(gain) && !val.null) {
        cand.valid = true;
        cand.feature = job.feature;
        cand.relation = job.rel;
        cand.categorical = job.categorical;
        cand.gain = gain;
        cand.c_left = c.AsDouble();
        cand.s_left = s.AsDouble();
        if (job.categorical) {
          cand.category = val.i;
          cand.category_str = val.s;
        } else {
          cand.threshold = val.AsDouble();
        }
      }
    }
    candidates[i] = std::move(cand);
  };
  split_queries_ += jobs.size();
  if (params_.inter_query_parallelism && jobs.size() > 1) {
    fac_->db()->pool().ParallelFor(jobs.size(), run_one);
  } else {
    for (size_t i = 0; i < jobs.size(); ++i) run_one(i);
  }

  SplitCandidate best;
  double best_gain = std::max(params_.min_gain, 1e-12);
  for (auto& cand : candidates) {
    if (cand.valid && cand.gain > best_gain) {
      best_gain = cand.gain;
      best = std::move(cand);
    }
  }
  return best;
}

SplitCandidate TreeGrower::BestSplitBatched(
    const std::map<int, std::vector<std::string>>& by_rel,
    const LeafState& leaf, const CriterionParams& crit) {
  // Phase 1 (serial): build each relation's absorption (materializing any
  // missing messages — serialized by the factorizer's internal mutex; kept
  // serial here for deterministic temp-table naming) and compose one
  // GROUPING SETS histogram query per relation.
  struct RelJob {
    int rel = 0;
    const std::vector<std::string>* feats = nullptr;
    std::vector<bool> categorical;
    std::string sql;
    std::vector<SplitCandidate> candidates;  ///< one slot per feature
  };
  std::vector<RelJob> jobs;
  jobs.reserve(by_rel.size());
  for (const auto& [rel, feats] : by_rel) {
    RelJob job;
    job.rel = rel;
    job.feats = &feats;
    job.categorical.reserve(feats.size());
    for (const auto& f : feats) job.categorical.push_back(IsCategorical(rel, f));
    job.sql = fac_->BatchedHistogramSql(rel, feats, leaf.preds, "message");
    job.candidates.resize(feats.size());
    jobs.push_back(std::move(job));
  }

  // Phase 2 (optionally parallel across relations): run the histogram query,
  // demultiplex rows into per-feature histograms by set_id, and enumerate
  // thresholds in the C++ kernel.
  auto run_one = [&](size_t j) {
    RelJob& job = jobs[j];
    const std::vector<std::string>& feats = *job.feats;
    auto res = fac_->db()->Query(job.sql, "feature");
    // Column layout: set_id, feats..., c, s[, q].
    const size_t c_col = 1 + feats.size();
    const size_t s_col = c_col + 1;
    std::vector<std::vector<HistogramEntry>> hists(feats.size());
    for (size_t r = 0; r < res->rows; ++r) {
      const size_t sid = static_cast<size_t>(res->GetValue(r, 0).i);
      HistogramEntry e;
      e.val = res->GetValue(r, 1 + sid);
      e.c = res->GetValue(r, c_col);
      e.s = res->GetValue(r, s_col);
      hists[sid].push_back(std::move(e));
    }
    for (size_t fi = 0; fi < feats.size(); ++fi) {
      HistogramSplit hs =
          BestSplitFromHistogram(hists[fi], job.categorical[fi], crit);
      SplitCandidate cand;
      // Same validity rules as the per-feature result consumer.
      if (hs.valid && std::isfinite(hs.criteria) && !hs.val.null) {
        cand.valid = true;
        cand.feature = feats[fi];
        cand.relation = job.rel;
        cand.categorical = job.categorical[fi];
        cand.gain = hs.criteria;
        cand.c_left = hs.c;
        cand.s_left = hs.s;
        if (cand.categorical) {
          cand.category = hs.val.i;
          cand.category_str = hs.val.s;
        } else {
          cand.threshold = hs.val.AsDouble();
        }
      }
      job.candidates[fi] = std::move(cand);
    }
  };
  split_queries_ += jobs.size();
  if (params_.inter_query_parallelism && jobs.size() > 1) {
    fac_->db()->pool().ParallelFor(jobs.size(), run_one);
  } else {
    for (size_t j = 0; j < jobs.size(); ++j) run_one(j);
  }

  // Merge in (relation, feature) order — the per-feature path's candidate
  // order — with the same strict-greater comparison and floor.
  SplitCandidate best;
  double best_gain = std::max(params_.min_gain, 1e-12);
  for (auto& job : jobs) {
    for (auto& cand : job.candidates) {
      if (cand.valid && cand.gain > best_gain) {
        best_gain = cand.gain;
        best = std::move(cand);
      }
    }
  }
  return best;
}

GrowthResult TreeGrower::Grow(const std::vector<std::string>& features,
                              int agg_root,
                              const std::vector<int>* clusters) {
  GrowthResult result;
  factor::PredicateSet no_preds;
  semiring::VarianceElem total =
      fac_->TotalAggregate(agg_root, no_preds, "message");

  TreeModel& tree = result.tree;
  tree.nodes.push_back(TreeNode{});
  tree.nodes[0].count = total.c;
  tree.nodes[0].sum = total.s;

  std::vector<LeafState> leaves;
  {
    LeafState root;
    root.node = 0;
    root.c = total.c;
    root.s = total.s;
    leaves.push_back(std::move(root));
  }

  std::vector<int> allowed_storage;
  const std::vector<int>* allowed = nullptr;  // root splits freely

  int num_leaves = 1;
  if (total.c > 0) {
    leaves[0].best = BestSplit(leaves[0], features, allowed);
    leaves[0].evaluated = true;
  }

  const bool depth_wise = params_.growth == "depth_wise";
  while (num_leaves < params_.num_leaves) {
    // Pick the leaf to split.
    int pick = -1;
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (!leaves[i].best.valid) continue;
      if (pick < 0) {
        pick = static_cast<int>(i);
        continue;
      }
      const LeafState& a = leaves[i];
      const LeafState& b = leaves[static_cast<size_t>(pick)];
      bool better = depth_wise ? (a.depth < b.depth ||
                                  (a.depth == b.depth && a.best.gain > b.best.gain))
                               : a.best.gain > b.best.gain;
      if (better) pick = static_cast<int>(i);
    }
    if (pick < 0) break;

    LeafState leaf = std::move(leaves[static_cast<size_t>(pick)]);
    leaves.erase(leaves.begin() + pick);
    const SplitCandidate& sp = leaf.best;

    if (result.first_split_relation < 0) {
      result.first_split_relation = sp.relation;
      if (clusters) {
        // CPT: confine the rest of this tree to the first split's cluster.
        int cid = (*clusters)[static_cast<size_t>(sp.relation)];
        for (size_t r = 0; r < clusters->size(); ++r) {
          if ((*clusters)[r] == cid) allowed_storage.push_back(static_cast<int>(r));
        }
        allowed = &allowed_storage;
      }
    }

    // Materialize the split on the model.
    TreeNode& parent = tree.nodes[static_cast<size_t>(leaf.node)];
    parent.is_leaf = false;
    parent.feature = sp.feature;
    parent.relation = sp.relation;
    parent.categorical = sp.categorical;
    parent.threshold = sp.threshold;
    parent.category = sp.category;
    parent.category_str = sp.category_str;
    parent.gain = sp.gain;
    int left_idx = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(TreeNode{});
    int right_idx = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(TreeNode{});
    tree.nodes[static_cast<size_t>(leaf.node)].left = left_idx;
    tree.nodes[static_cast<size_t>(leaf.node)].right = right_idx;

    // Child predicates (paper §3.2 predicate forms).
    std::string left_pred, right_pred;
    if (sp.categorical) {
      left_pred = sp.feature + " = '" + sp.category_str + "'";
      right_pred = sp.feature + " <> '" + sp.category_str + "'";
    } else {
      left_pred = sp.feature + " <= " + semiring::SqlDouble(sp.threshold);
      right_pred = sp.feature + " > " + semiring::SqlDouble(sp.threshold);
    }

    LeafState left;
    left.node = left_idx;
    left.depth = leaf.depth + 1;
    left.preds = leaf.preds;
    left.preds.Add(sp.relation, left_pred);
    left.c = sp.c_left;
    left.s = sp.s_left;

    LeafState right;
    right.node = right_idx;
    right.depth = leaf.depth + 1;
    right.preds = leaf.preds;
    right.preds.Add(sp.relation, right_pred);
    right.c = leaf.c - sp.c_left;
    right.s = leaf.s - sp.s_left;

    tree.nodes[static_cast<size_t>(left_idx)].count = left.c;
    tree.nodes[static_cast<size_t>(left_idx)].sum = left.s;
    tree.nodes[static_cast<size_t>(right_idx)].count = right.c;
    tree.nodes[static_cast<size_t>(right_idx)].sum = right.s;

    ++num_leaves;

    // Algorithm 1 (L8-9) computes GetBestSplit for both children as soon as
    // the parent splits, before the loop condition is re-checked — which is
    // why the paper counts num_nodes x num_features split queries (Fig 9).
    bool depth_ok = params_.max_depth < 0 || left.depth < params_.max_depth;
    if (depth_ok) {
      left.best = BestSplit(left, features, allowed);
      right.best = BestSplit(right, features, allowed);
    }
    left.evaluated = right.evaluated = true;
    leaves.push_back(std::move(left));
    leaves.push_back(std::move(right));
  }

  // Leaf values.
  for (auto& leaf : leaves) {
    double denom = leaf.c + params_.lambda_l2;
    double raw = denom > 0 ? leaf.s / denom : 0;
    tree.nodes[static_cast<size_t>(leaf.node)].prediction = raw;
    GrowthResult::LeafInfo info;
    info.node = leaf.node;
    info.preds = std::move(leaf.preds);
    info.c = leaf.c;
    info.s = leaf.s;
    info.raw_value = raw;
    result.leaves.push_back(std::move(info));
  }
  return result;
}

}  // namespace core
}  // namespace joinboost
