#include "core/model.h"

#include <sstream>

#include "util/check.h"

namespace joinboost {
namespace core {

size_t TreeModel::NumLeaves() const {
  size_t n = 0;
  for (const auto& node : nodes) n += node.is_leaf ? 1 : 0;
  return n;
}

size_t TreeModel::MaxDepth() const {
  if (nodes.empty()) return 0;
  // BFS carrying depths.
  std::vector<std::pair<int, size_t>> stack = {{0, 1}};
  size_t best = 0;
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes[static_cast<size_t>(i)];
    if (n.is_leaf) {
      best = std::max(best, d);
    } else {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return best;
}

double TreeModel::Predict(const RowView& row) const {
  JB_CHECK(!nodes.empty());
  int i = 0;
  for (;;) {
    const TreeNode& n = nodes[static_cast<size_t>(i)];
    if (n.is_leaf) return n.prediction;
    bool go_left;
    if (n.categorical) {
      go_left = row.GetCategory(n.feature) == n.category;
    } else {
      go_left = row.GetNumeric(n.feature) <= n.threshold;
    }
    i = go_left ? n.left : n.right;
  }
}

void TreeModel::AccumulateImportance(
    std::function<void(const std::string&, double)> add) const {
  for (const auto& n : nodes) {
    if (!n.is_leaf) add(n.feature, n.gain);
  }
}

std::string TreeModel::ToString() const {
  std::ostringstream os;
  std::function<void(int, int)> rec = [&](int i, int depth) {
    const TreeNode& n = nodes[static_cast<size_t>(i)];
    for (int d = 0; d < depth; ++d) os << "  ";
    if (n.is_leaf) {
      os << "leaf pred=" << n.prediction << " n=" << n.count << "\n";
      return;
    }
    os << n.feature;
    if (n.categorical) {
      os << " = " << (n.category_str.empty() ? std::to_string(n.category)
                                             : n.category_str);
    } else {
      os << " <= " << n.threshold;
    }
    os << " (gain " << n.gain << ")\n";
    rec(n.left, depth + 1);
    rec(n.right, depth + 1);
  };
  if (!nodes.empty()) rec(0, 0);
  return os.str();
}

double Ensemble::Predict(const RowView& row) const {
  return PredictPrefix(row, trees.size());
}

double Ensemble::PredictPrefix(const RowView& row, size_t k) const {
  k = std::min(k, trees.size());
  double acc = 0;
  for (size_t i = 0; i < k; ++i) acc += trees[i].Predict(row);
  if (average && k > 0) acc /= static_cast<double>(k);
  return base_score + acc;
}

std::string Ensemble::ToString() const {
  std::ostringstream os;
  os << (average ? "random_forest" : "gbdt") << " base=" << base_score
     << " trees=" << trees.size() << "\n";
  for (size_t i = 0; i < trees.size(); ++i) {
    os << "--- tree " << i << " ---\n" << trees[i].ToString();
  }
  return os.str();
}

}  // namespace core
}  // namespace joinboost
