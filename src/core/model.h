#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace joinboost {
namespace core {

/// One node of a trained tree. Numeric splits are `feature <= threshold`
/// (left) vs `>` (right); categorical splits are `feature = category` (left)
/// vs `<>` (right) — exactly the predicate forms of §3.2.
struct TreeNode {
  bool is_leaf = true;

  // Split (internal nodes).
  std::string feature;
  int relation = -1;       ///< join-graph relation offering the feature
  bool categorical = false;
  double threshold = 0;    ///< numeric split point
  int64_t category = 0;    ///< dictionary code for categorical splits
  std::string category_str;
  double gain = 0;

  int left = -1;
  int right = -1;

  // Leaf payload.
  double prediction = 0;   ///< leaf value (already shrunk for boosting)
  double count = 0;        ///< C (or H) at this node
  double sum = 0;          ///< S (or G) at this node
};

/// Accessor for one example row during prediction.
class RowView {
 public:
  virtual ~RowView() = default;
  virtual double GetNumeric(const std::string& feature) const = 0;
  virtual int64_t GetCategory(const std::string& feature) const = 0;
};

/// A single decision tree.
class TreeModel {
 public:
  std::vector<TreeNode> nodes;  ///< nodes[0] is the root

  bool empty() const { return nodes.empty(); }
  size_t NumLeaves() const;
  size_t MaxDepth() const;

  double Predict(const RowView& row) const;

  /// Per-feature total gain (split importance).
  void AccumulateImportance(
      std::function<void(const std::string&, double)> add) const;

  std::string ToString() const;
};

/// Ensemble of trees: gradient boosting (sum) or random forest (average).
class Ensemble {
 public:
  double base_score = 0;
  bool average = false;  ///< true for random forests
  std::vector<TreeModel> trees;

  double Predict(const RowView& row) const;

  /// Prediction using only the first `k` trees (learning curves).
  double PredictPrefix(const RowView& row, size_t k) const;

  std::string ToString() const;
};

}  // namespace core
}  // namespace joinboost
