#include "core/forest.h"

#include <algorithm>
#include <mutex>

#include "semiring/sql_gen.h"
#include "util/check.h"
#include "util/rng.h"

namespace joinboost {
namespace core {

DecisionTree::DecisionTree(Session* session, TrainParams params)
    : session_(session), params_(std::move(params)) {}

Ensemble DecisionTree::Train() {
  Session& session = *session_;
  TreeGrower grower(&session.fac(), params_);
  std::vector<std::string> features = session.graph().AllFeatures();
  const std::vector<int>* clusters =
      session.is_snowflake() ? nullptr : &session.clusters();
  GrowthResult grown = grower.Grow(features, session.y_fact(), clusters);
  Ensemble model;
  model.base_score = 0;
  model.average = false;
  model.trees.push_back(std::move(grown.tree));
  return model;
}

RandomForest::RandomForest(Session* session, TrainParams params)
    : session_(session), params_(std::move(params)) {}

TreeModel RandomForest::TrainOneTree(int tree_index) {
  Session& session = *session_;
  exec::Database& db = session.db();
  int fact_rel = session.y_fact();
  const std::string& fact = session.FactTable(fact_rel);

  // Deterministic Bernoulli fact-table sample via SQL (§5.5.2 minor opt:
  // snowflake schemas sample the fact table directly).
  uint64_t seed = SplitMix64(params_.seed + static_cast<uint64_t>(tree_index));
  std::string sample =
      session.prefix() + "sample_" + std::to_string(tree_index);
  int64_t threshold =
      static_cast<int64_t>(params_.bagging_fraction * 1048576.0);
  std::string sql = "CREATE TABLE " + sample + " AS SELECT * FROM " + fact;
  if (params_.bagging_fraction < 1.0) {
    sql += " WHERE MOD(HASH(jb_rid, " +
           std::to_string(static_cast<int64_t>(seed >> 1)) + "), 1048576) < " +
           std::to_string(threshold);
  }
  db.Execute(sql, "sample");

  // Random feature subset.
  std::vector<std::string> features = session.graph().AllFeatures();
  Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  std::vector<std::string> chosen;
  if (params_.feature_fraction < 1.0) {
    size_t want = std::max<size_t>(
        1, static_cast<size_t>(params_.feature_fraction *
                               static_cast<double>(features.size())));
    for (size_t i = features.size(); i > 1; --i) {
      std::swap(features[i - 1], features[rng.NextBounded(i)]);
    }
    chosen.assign(features.begin(),
                  features.begin() + static_cast<long>(want));
  } else {
    chosen = features;
  }

  auto fac = session.MakeFactorizer(fact_rel, sample,
                                    sample + "_msg_");
  TreeGrower grower(fac.get(), params_);
  const std::vector<int>* clusters =
      session.is_snowflake() ? nullptr : &session.clusters();
  GrowthResult grown = grower.Grow(chosen, fact_rel, clusters);
  fac.reset();
  db.Execute("DROP TABLE " + sample, "sample");
  return std::move(grown.tree);
}

Ensemble RandomForest::Train() {
  Ensemble model;
  model.base_score = 0;
  model.average = true;
  model.trees.resize(static_cast<size_t>(params_.num_iterations));
  if (params_.inter_query_parallelism) {
    // Tree-wise parallelism (§5.5.3): each tree has its own sample table and
    // factorizer; the engine serializes catalog access internally.
    session_->db().pool().ParallelFor(model.trees.size(), [&](size_t t) {
      if (params_.guard != nullptr) params_.guard->Check();
      model.trees[t] = TrainOneTree(static_cast<int>(t));
    });
  } else {
    for (size_t t = 0; t < model.trees.size(); ++t) {
      if (params_.guard != nullptr) params_.guard->Check();
      model.trees[t] = TrainOneTree(static_cast<int>(t));
    }
  }
  return model;
}

}  // namespace core
}  // namespace joinboost
