#include "core/session.h"

#include <atomic>
#include <sstream>

#include "semiring/sql_gen.h"
#include "util/check.h"

namespace joinboost {
namespace core {

namespace {
std::atomic<uint64_t> g_session_counter{0};
}  // namespace

Session::Session(Dataset* data, TrainParams params)
    : data_(data), params_(std::move(params)) {
  prefix_ = "jb" + std::to_string(g_session_counter.fetch_add(1)) + "_";
}

Session::~Session() { Cleanup(); }

void Session::Cleanup() {
  fac_.reset();  // drops message tables
  data_->db()->catalog().DropPrefix(prefix_);
}

std::string Session::NewTempName() {
  return prefix_ + "t" + std::to_string(temp_counter_++);
}

int Session::FactOf(int rel) const {
  int cid = clusters_.at(static_cast<size_t>(rel));
  return cluster_facts_.at(static_cast<size_t>(cid));
}

const std::string& Session::FactTable(int rel) const {
  return fact_tables_.at(static_cast<size_t>(rel));
}

void Session::SetFactTable(int rel, const std::string& name) {
  fact_tables_.at(static_cast<size_t>(rel)) = name;
  Rebind(rel, name);
}

const std::string& Session::RowId(int rel) const {
  return row_ids_.at(static_cast<size_t>(rel));
}

std::unique_ptr<factor::Factorizer> Session::MakeFactorizer(
    int rel_override, const std::string& table_override,
    const std::string& temp_prefix) {
  factor::FactorizerOptions fopts;
  fopts.cache_messages = params_.variant != "batch";
  fopts.track_q = params_.track_q;
  fopts.temp_prefix = temp_prefix;
  auto out = std::make_unique<factor::Factorizer>(data_->db(), &data_->graph(),
                                                  fopts);
  for (size_t r = 0; r < data_->graph().num_relations(); ++r) {
    factor::RelationBinding b = fac_->binding(static_cast<int>(r));
    if (static_cast<int>(r) == rel_override) b.table = table_override;
    out->BindRelation(static_cast<int>(r), b);
  }
  return out;
}

void Session::Rebind(int rel, const std::string& table) {
  factor::RelationBinding b = fac_->binding(rel);
  b.table = table;
  fac_->BindRelation(rel, b);
  fac_->BumpEpoch(rel);
}

void Session::LiftFact(int rel, bool with_y) {
  const graph::JoinGraph& g = data_->graph();
  exec::Database& db = *data_->db();
  const std::string& base = g.relation(rel).name;
  std::string lifted = prefix_ + "lift_" + base;

  const bool general = !residual_semiring_;
  std::ostringstream sql;
  if (!with_y || y_rel_ == rel) {
    sql << "CREATE TABLE " << lifted
        << " AS SELECT *, INT(COUNT(*) OVER ()) AS jb_rid";
    if (general) {
      // General gradient path (snowflake, non-rmse): maintain prediction,
      // gradient and hessian columns on the fact (Appendix B).
      const std::string& y = g.relation(rel).y_column;
      std::string base_lit = semiring::SqlDouble(base_score_);
      sql << ", " << base_lit << " AS jb_pred, "
          << objective_->GradientSql(y, base_lit) << " AS g";
      if (objective_->HessianSql(y, base_lit) != "1.0") {
        sql << ", " << objective_->HessianSql(y, base_lit) << " AS h";
      }
    } else if (with_y) {
      // Residual semi-ring lift: s = y − base (the residual; §4).
      sql << ", " << g.relation(rel).y_column << " - "
          << semiring::SqlDouble(base_score_) << " AS s";
      if (params_.track_q) {
        const std::string& y = g.relation(rel).y_column;
        std::string b = semiring::SqlDouble(base_score_);
        sql << ", (" << y << " - " << b << ") * (" << y << " - " << b
            << ") AS q";
      }
    } else {
      // Non-Y cluster fact (galaxy): starts at the ⊗-identity lift(0).
      sql << ", 0.0 AS s";
      if (params_.track_q) sql << ", 0.0 AS q";
    }
    sql << " FROM " << base;
  } else {
    // Y lives in a dimension: join the path from the fact to R_Y and
    // project the fact's attributes plus Y (§4.1).
    JB_CHECK_MSG(residual_semiring_ || y_rel_ == rel,
                 "general objectives require Y in the fact table");
    graph::JoinGraph::Directed dir = g.DirectTowards(y_rel_);
    TablePtr fact_tbl = db.catalog().Get(base);
    sql << "CREATE TABLE " << lifted << " AS SELECT ";
    for (size_t c = 0; c < fact_tbl->schema().num_fields(); ++c) {
      if (c) sql << ", ";
      sql << base << "." << fact_tbl->schema().field(c).name << " AS "
          << fact_tbl->schema().field(c).name;
    }
    sql << ", INT(COUNT(*) OVER ()) AS jb_rid, "
        << g.relation(y_rel_).y_column << " - "
        << semiring::SqlDouble(base_score_) << " AS s";
    if (params_.track_q) {
      const std::string& y = g.relation(y_rel_).y_column;
      std::string b = semiring::SqlDouble(base_score_);
      sql << ", (" << y << " - " << b << ") * (" << y << " - " << b
          << ") AS q";
    }
    sql << " FROM " << base;
    // Walk rel -> ... -> y_rel_ along parent pointers.
    int cur = rel;
    while (cur != y_rel_) {
      int parent = dir.parent[static_cast<size_t>(cur)];
      int pe = dir.parent_edge[static_cast<size_t>(cur)];
      const graph::Edge& e = g.edges()[static_cast<size_t>(pe)];
      const std::string& pname = g.relation(parent).name;
      const std::string& cname = g.relation(cur).name;
      sql << " JOIN " << pname << " ON ";
      for (size_t k = 0; k < e.keys.size(); ++k) {
        if (k) sql << " AND ";
        sql << cname << "." << e.keys[k] << " = " << pname << "." << e.keys[k];
      }
      cur = parent;
    }
  }
  db.Execute(sql.str(), "lift");
  fact_tables_[static_cast<size_t>(rel)] = lifted;
  row_ids_[static_cast<size_t>(rel)] = "jb_rid";
}

void Session::Prepare() {
  data_->Prepare();
  objective_ = semiring::MakeObjective(params_.objective,
                                       params_.objective_param);
  const graph::JoinGraph& g = data_->graph();
  exec::Database& db = *data_->db();

  y_rel_ = g.YRelation();
  JB_CHECK_MSG(y_rel_ >= 0, "no target variable declared on any table");

  clusters_ = g.ComputeClusters(&cluster_facts_);
  residual_semiring_ = objective_->name() == "rmse";
  if (!is_snowflake() && params_.boosting == "gbdt") {
    JB_CHECK_MSG(objective_->SupportsGalaxy(),
                 "galaxy schemas support only the rmse objective: its "
                 "semi-ring is addition-to-multiplication preserving (§4.2)");
  }
  if (!residual_semiring_) {
    JB_CHECK_MSG(FactOf(y_rel_) == y_rel_,
                 "non-rmse objectives require Y in the fact table");
  }

  fact_tables_.assign(g.num_relations(), "");
  row_ids_.assign(g.num_relations(), "");

  // Base score from the factorized mean of Y over R⋈ (for boosting only).
  const bool boosted = params_.boosting == "gbdt";
  if (boosted) {
    // Temporary factorizer annotating Y's original column directly.
    factor::FactorizerOptions fopts;
    fopts.cache_messages = false;
    fopts.temp_prefix = prefix_ + "pre_";
    factor::Factorizer pre(&db, &g, fopts);
    for (size_t r = 0; r < g.num_relations(); ++r) {
      factor::RelationBinding b;
      b.table = g.relation(static_cast<int>(r)).name;
      if (static_cast<int>(r) == y_rel_) {
        b.annotated = true;
        b.s_col = g.relation(y_rel_).y_column;
      }
      pre.BindRelation(static_cast<int>(r), b);
    }
    factor::PredicateSet none;
    semiring::VarianceElem tot = pre.TotalAggregate(y_rel_, none, "setup");
    double mean = tot.c > 0 ? tot.s / tot.c : 0;
    base_score_ = objective_->InitFromMean(mean);
  }

  // Lift annotated working copies.
  int y_fact_rel = FactOf(y_rel_);
  if (residual_semiring_) {
    if (boosted && !is_snowflake()) {
      // Galaxy gradient boosting: every cluster fact carries annotations so
      // residual updates can land in any cluster (CPT, §4.2.2).
      for (int f : cluster_facts_) LiftFact(f, /*with_y=*/f == y_fact_rel);
    } else {
      LiftFact(y_fact_rel, /*with_y=*/true);
    }
  } else {
    LiftFact(y_fact_rel, /*with_y=*/true);
  }

  // Bind the factorizer.
  factor::FactorizerOptions fopts;
  fopts.cache_messages = params_.variant != "batch";
  fopts.track_q = params_.track_q;
  fopts.temp_prefix = prefix_ + "msg_";
  fac_ = std::make_unique<factor::Factorizer>(&db, &g, fopts);
  for (size_t r = 0; r < g.num_relations(); ++r) {
    factor::RelationBinding b;
    if (!fact_tables_[r].empty()) {
      b.table = fact_tables_[r];
      b.annotated = true;
      if (residual_semiring_) {
        b.s_col = "s";
        b.q_col = "q";
      } else {
        b.s_col = "g";
        std::string base_lit = semiring::SqlDouble(base_score_);
        if (objective_->HessianSql(g.relation(static_cast<int>(r)).y_column,
                                   base_lit) != "1.0") {
          b.has_c = true;
          b.c_col = "h";
        }
      }
    } else {
      b.table = g.relation(static_cast<int>(r)).name;
      b.annotated = false;
    }
    fac_->BindRelation(static_cast<int>(r), b);
  }
}

}  // namespace core
}  // namespace joinboost
