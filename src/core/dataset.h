#pragma once

#include <map>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "graph/join_graph.h"

namespace joinboost {

/// The user-facing training dataset (paper Figure 4): a join graph over
/// tables registered in a Database, with features X and target Y declared
/// per table. Mirrors joinboost.join_graph() / add_node / add_edge.
class Dataset {
 public:
  explicit Dataset(exec::Database* db) : db_(db) {}

  /// Declare a participating table with its feature columns and optional Y.
  void AddTable(const std::string& table, std::vector<std::string> features,
                const std::string& y_column = "");

  /// Natural-join edge over shared key columns.
  void AddJoin(const std::string& t1, const std::string& t2,
               std::vector<std::string> keys);

  /// Optional: a unique row-id column of `table`, used for random-forest
  /// fact sampling. When absent, a row id is synthesized during lifting.
  void SetRowId(const std::string& table, const std::string& column);

  /// Validate tables/columns, measure cardinalities and edge-key uniqueness
  /// (drives N-to-1 detection, identity messages and CPT clusters). Called
  /// automatically by Train(); idempotent.
  void Prepare();
  bool prepared() const { return prepared_; }

  exec::Database* db() const { return db_; }
  graph::JoinGraph& graph() { return graph_; }
  const graph::JoinGraph& graph() const { return graph_; }

  /// Row-id column declared for relation `rel`, or "" when none.
  std::string RowIdColumn(int rel) const;

 private:
  exec::Database* db_;
  graph::JoinGraph graph_;
  std::map<int, std::string> row_ids_;
  bool prepared_ = false;
};

}  // namespace joinboost
