#pragma once

#include <string>

#include "core/dataset.h"
#include "core/model.h"
#include "core/params.h"
#include "plan/logical_plan.h"

namespace joinboost {

/// Outcome of a training run, with the instrumentation the paper reports.
struct TrainResult {
  core::Ensemble model;
  double seconds = 0;          ///< end-to-end wall time
  double update_seconds = 0;   ///< residual-update time (Figures 5/15)
  double message_seconds = 0;  ///< message-passing query time
  double feature_seconds = 0;  ///< best-split query time
  size_t message_queries = 0;
  size_t feature_queries = 0;
  size_t cache_hits = 0;       ///< message-cache hits (§5.5.1)
  size_t cache_misses = 0;

  /// Planner/scan counters over the run: rows scanned, columns pruned and
  /// decompressed, predicates pushed, morsels dispatched/stolen by the
  /// parallel operators (delta of Database::PlanStatsTotals).
  plan::PlanStats plan_stats;
};

/// Train a model over a normalized dataset: the paper's
/// `joinboost.train(params, train_set)` (Figure 4). Dispatches on
/// params.boosting: "gbdt", "rf" or "dt"; params.variant selects
/// factorized / batch / naive execution (Figure 16a).
TrainResult Train(const core::TrainParams& params, Dataset& dataset);

}  // namespace joinboost
