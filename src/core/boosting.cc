#include "core/boosting.h"

#include <functional>
#include <sstream>

#include "semiring/sql_gen.h"
#include "util/check.h"

namespace joinboost {
namespace core {

using semiring::SqlDouble;

std::string ResolveUpdateStrategy(const std::string& requested,
                                  const EngineProfile& profile) {
  if (requested == "auto") {
    return profile.allow_column_swap ? "swap" : "create";
  }
  JB_CHECK_MSG(requested == "naive_u" || requested == "update" ||
                   requested == "create" || requested == "swap",
               "unknown update strategy " << requested);
  if (requested == "swap") {
    JB_CHECK_MSG(profile.allow_column_swap,
                 "profile " << profile.name << " lacks column swap (§5.4)");
  }
  return requested;
}

GradientBoosting::GradientBoosting(Session* session, TrainParams params)
    : session_(session), params_(std::move(params)) {}

std::string GradientBoosting::LeafConditionSql(
    Session& session, int fact_rel, const factor::PredicateSet& preds) {
  const graph::JoinGraph& g = session.graph();
  const std::string& fact = session.FactTable(fact_rel);
  std::vector<std::string> parts;

  // Direct predicates on the fact itself.
  if (const auto* own = preds.For(fact_rel)) {
    for (const auto& p : *own) parts.push_back("(" + p + ")");
  }

  // Semi-join selectors from predicated dimension subtrees (§5.3.1).
  std::vector<const factor::Message*> composite;
  std::vector<factor::Message> messages;
  for (auto [n, e] : g.Neighbors(fact_rel)) {
    (void)e;
    factor::Message sel =
        session.fac().GetSelector(n, fact_rel, preds, "update");
    if (sel.kind == factor::Message::Kind::kNone) continue;
    messages.push_back(std::move(sel));
  }
  std::ostringstream rid_sql;
  bool has_composite = false;
  for (const auto& sel : messages) {
    if (sel.keys.size() == 1) {
      parts.push_back(sel.keys[0] + " IN (SELECT " + sel.keys[0] + " FROM " +
                      sel.table + ")");
    } else {
      // Composite-key selector: fold into a row-id set via semi-joins.
      if (!has_composite) {
        rid_sql << "SELECT jb_rid FROM " << fact;
        has_composite = true;
      }
      rid_sql << " SEMI JOIN " << sel.table << " ON ";
      for (size_t k = 0; k < sel.keys.size(); ++k) {
        if (k) rid_sql << " AND ";
        rid_sql << fact << "." << sel.keys[k] << " = " << sel.table << "."
                << sel.keys[k];
      }
    }
  }
  if (has_composite) {
    parts.push_back("jb_rid IN (" + rid_sql.str() + ")");
  }

  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += " AND ";
    out += parts[i];
  }
  return out;  // empty = always true (root-only tree)
}

namespace {

/// Column list of `table` excluding `skip` columns, as "a, b, c".
std::string ColumnsExcept(exec::Database& db, const std::string& table,
                          const std::vector<std::string>& skip) {
  TablePtr t = db.catalog().Get(table);
  std::string out;
  for (const auto& f : t->schema().fields()) {
    bool skipped = false;
    for (const auto& s : skip) skipped |= (s == f.name);
    if (skipped) continue;
    if (!out.empty()) out += ", ";
    out += f.name;
  }
  return out;
}

struct LeafUpdate {
  std::string cond;  ///< empty = all rows
  double delta;      ///< shrunk leaf value to subtract from the residual
};

std::string CaseExpr(const std::vector<LeafUpdate>& leaves,
                     const std::string& then_tmpl_col,
                     const std::function<std::string(const LeafUpdate&)>& then_fn) {
  (void)then_tmpl_col;
  std::ostringstream os;
  os << "CASE";
  bool any = false;
  for (const auto& l : leaves) {
    if (l.cond.empty()) continue;
    any = true;
    os << " WHEN " << l.cond << " THEN " << then_fn(l);
  }
  if (!any && !leaves.empty()) {
    // Root-only tree: single unconditional update.
    return then_fn(leaves[0]);
  }
  os << " ELSE s END";
  return os.str();
}

}  // namespace

void GradientBoosting::UpdateResidualSemiring(Session& session,
                                              const GrowthResult& grown,
                                              int fact_rel,
                                              const std::string& strategy) {
  exec::Database& db = session.db();
  const std::string& fact = session.FactTable(fact_rel);
  const double lr = params_.learning_rate;

  std::vector<LeafUpdate> leaves;
  for (const auto& leaf : grown.leaves) {
    LeafUpdate u;
    u.cond = LeafConditionSql(session, fact_rel, leaf.preds);
    u.delta = lr * leaf.raw_value;
    leaves.push_back(std::move(u));
  }

  auto s_then = [](const LeafUpdate& l) {
    return "s - " + SqlDouble(l.delta);
  };
  auto q_then = [](const LeafUpdate& l) {
    // (1,s,q) ⊗ lift(−p) = (1, s−p, q + p² − 2·p·s)  [§5.3.1]
    return "q + " + SqlDouble(l.delta * l.delta) + " - " +
           SqlDouble(2.0 * l.delta) + " * s";
  };

  if (strategy == "update") {
    for (const auto& l : leaves) {
      std::string sql = "UPDATE " + fact + " SET s = s - " + SqlDouble(l.delta);
      if (params_.track_q) {
        sql += ", q = q + " + SqlDouble(l.delta * l.delta) + " - " +
               SqlDouble(2.0 * l.delta) + " * s";
      }
      if (!l.cond.empty()) sql += " WHERE " + l.cond;
      db.Execute(sql, "update");
    }
  } else if (strategy == "create") {
    std::vector<std::string> skip = {"s"};
    if (params_.track_q) skip.push_back("q");
    std::string cols = ColumnsExcept(db, fact, skip);
    std::string name = session.NewTempName();
    std::string sql = "CREATE TABLE " + name + " AS SELECT " + cols + ", " +
                      CaseExpr(leaves, "s", s_then) + " AS s";
    if (params_.track_q) {
      std::string qexpr = CaseExpr(leaves, "q", q_then);
      // The ELSE branch of q must keep q, not s.
      // Build explicitly instead:
      std::ostringstream qs;
      qs << "CASE";
      bool any = false;
      for (const auto& l : leaves) {
        if (l.cond.empty()) continue;
        any = true;
        qs << " WHEN " << l.cond << " THEN " << q_then(l);
      }
      if (any) {
        qs << " ELSE q END";
        sql += ", " + qs.str() + " AS q";
      } else {
        sql += ", " + q_then(leaves[0]) + " AS q";
      }
    }
    sql += " FROM " + fact;
    db.Execute(sql, "update");
    db.Execute("DROP TABLE " + fact, "update");
    session.SetFactTable(fact_rel, name);
    return;  // epoch bumped by SetFactTable
  } else if (strategy == "swap") {
    std::string tmp = session.NewTempName();
    std::string sql = "CREATE TABLE " + tmp + " AS SELECT " +
                      CaseExpr(leaves, "s", s_then) + " AS s";
    if (params_.track_q) {
      std::ostringstream qs;
      qs << "CASE";
      bool any = false;
      for (const auto& l : leaves) {
        if (l.cond.empty()) continue;
        any = true;
        qs << " WHEN " << l.cond << " THEN " << q_then(l);
      }
      if (any) {
        qs << " ELSE q END";
        sql += ", " + qs.str() + " AS q";
      } else {
        sql += ", " + q_then(leaves[0]) + " AS q";
      }
    }
    sql += " FROM " + fact;
    db.Execute(sql, "update");
    db.SwapColumns(fact, "s", tmp, "s");
    if (params_.track_q) db.SwapColumns(fact, "q", tmp, "q");
    db.Execute("DROP TABLE " + tmp, "update");
  } else if (strategy == "naive_u") {
    // §5.3 Naive: materialize the update relation U and re-create F = F ⋈ U.
    // Requires all leaf selectors to share one single-attribute key.
    std::string key;
    bool ok = true;
    std::vector<std::string> conds;
    for (const auto& l : leaves) conds.push_back(l.cond);
    // Build U over the fact's rows keyed by jb_rid (general fallback): each
    // row's leaf delta. U is as large as F — exactly the cost the paper
    // calls out.
    (void)key;
    (void)ok;
    std::string u_name = session.NewTempName();
    std::string u_sql = "CREATE TABLE " + u_name +
                        " AS SELECT jb_rid AS u_rid, " +
                        CaseExpr(leaves, "s",
                                 [](const LeafUpdate& l) {
                                   return SqlDouble(l.delta);
                                 }) +
                        " AS p FROM " + fact;
    // ELSE branch of that CASE references `s`; replace with 0 via explicit
    // build when conditions exist.
    {
      std::ostringstream us;
      us << "CREATE TABLE " << u_name << " AS SELECT jb_rid AS u_rid, CASE";
      bool any = false;
      for (const auto& l : leaves) {
        if (l.cond.empty()) continue;
        any = true;
        us << " WHEN " << l.cond << " THEN " << SqlDouble(l.delta);
      }
      if (any) {
        us << " ELSE 0.0 END AS p FROM " << fact;
        u_sql = us.str();
      } else {
        u_sql = "CREATE TABLE " + u_name + " AS SELECT jb_rid AS u_rid, " +
                SqlDouble(leaves.empty() ? 0.0 : leaves[0].delta) +
                " AS p FROM " + fact;
      }
    }
    db.Execute(u_sql, "update");
    std::vector<std::string> skip = {"s"};
    if (params_.track_q) skip.push_back("q");
    std::string cols = ColumnsExcept(db, fact, skip);
    std::string name = session.NewTempName();
    std::string sql = "CREATE TABLE " + name + " AS SELECT " + cols +
                      ", s - p AS s";
    if (params_.track_q) sql += ", q + p * p - 2 * p * s AS q";
    sql += " FROM " + fact + " JOIN " + u_name + " ON " + fact +
           ".jb_rid = " + u_name + ".u_rid";
    db.Execute(sql, "update");
    db.Execute("DROP TABLE " + u_name, "update");
    db.Execute("DROP TABLE " + fact, "update");
    session.SetFactTable(fact_rel, name);
    return;
  } else {
    JB_THROW("unknown strategy " << strategy);
  }
  session.fac().BumpEpoch(fact_rel);
}

void GradientBoosting::UpdateGeneral(Session& session,
                                     const GrowthResult& grown, int fact_rel,
                                     const std::string& strategy) {
  exec::Database& db = session.db();
  const std::string& fact = session.FactTable(fact_rel);
  const graph::JoinGraph& g = session.graph();
  const std::string& y = g.relation(session.y_relation()).y_column;
  const double lr = params_.learning_rate;
  const auto& obj = *session.objective();
  bool has_h = session.fac().binding(fact_rel).has_c;

  std::vector<LeafUpdate> leaves;
  for (const auto& leaf : grown.leaves) {
    LeafUpdate u;
    u.cond = LeafConditionSql(session, fact_rel, leaf.preds);
    u.delta = lr * leaf.raw_value;
    leaves.push_back(std::move(u));
  }

  // 1. Advance per-row predictions.
  std::ostringstream pred_case;
  {
    pred_case << "CASE";
    bool any = false;
    for (const auto& l : leaves) {
      if (l.cond.empty()) continue;
      any = true;
      pred_case << " WHEN " << l.cond << " THEN jb_pred + "
                << SqlDouble(l.delta);
    }
    if (any) {
      pred_case << " ELSE jb_pred END";
    } else {
      pred_case.str("");
      pred_case << "jb_pred + "
                << SqlDouble(leaves.empty() ? 0.0 : leaves[0].delta);
    }
  }

  if (strategy == "update") {
    for (const auto& l : leaves) {
      std::string sql =
          "UPDATE " + fact + " SET jb_pred = jb_pred + " + SqlDouble(l.delta);
      if (!l.cond.empty()) sql += " WHERE " + l.cond;
      db.Execute(sql, "update");
    }
    std::string sql = "UPDATE " + fact + " SET g = " +
                      obj.GradientSql(y, "jb_pred");
    if (has_h) sql += ", h = " + obj.HessianSql(y, "jb_pred");
    db.Execute(sql, "update");
    session.fac().BumpEpoch(fact_rel);
    return;
  }

  // create / swap: recompute pred, g (and h) in one pass over F.
  std::vector<std::string> skip = {"jb_pred", "g"};
  if (has_h) skip.push_back("h");
  std::string inner_cols = ColumnsExcept(db, fact, skip);
  std::string name = session.NewTempName();
  std::ostringstream sql;
  sql << "CREATE TABLE " << name << " AS SELECT "
      << (strategy == "create" ? inner_cols + ", " : std::string())
      << "jb_pred, " << obj.GradientSql(y, "jb_pred") << " AS g";
  if (has_h) sql << ", " << obj.HessianSql(y, "jb_pred") << " AS h";
  sql << " FROM (SELECT " << inner_cols << ", " << pred_case.str()
      << " AS jb_pred FROM " << fact << ")";
  db.Execute(sql.str(), "update");

  if (strategy == "create") {
    db.Execute("DROP TABLE " + fact, "update");
    session.SetFactTable(fact_rel, name);
  } else {  // swap
    db.SwapColumns(fact, "jb_pred", name, "jb_pred");
    db.SwapColumns(fact, "g", name, "g");
    if (has_h) db.SwapColumns(fact, "h", name, "h");
    db.Execute("DROP TABLE " + name, "update");
    session.fac().BumpEpoch(fact_rel);
  }
}

void GradientBoosting::UpdateResiduals(Session& session,
                                       const GrowthResult& grown,
                                       int fact_rel) {
  std::string strategy =
      ResolveUpdateStrategy(params_.update_strategy, session.db().profile());
  if (session.residual_semiring()) {
    UpdateResidualSemiring(session, grown, fact_rel, strategy);
  } else {
    UpdateGeneral(session, grown, fact_rel, strategy);
  }
}

Ensemble GradientBoosting::Train() {
  Session& session = *session_;

  Ensemble model;
  model.base_score = session.base_score();
  model.average = false;

  TreeGrower grower(&session.fac(), params_);
  std::vector<std::string> features = session.graph().AllFeatures();
  const std::vector<int>* clusters =
      session.is_snowflake() ? nullptr : &session.clusters();

  for (int iter = 0; iter < params_.num_iterations; ++iter) {
    // Round boundary: a cancelled/deadlined guard stops training between
    // trees, leaving `model` with only fully-applied rounds.
    if (params_.guard != nullptr) params_.guard->Check();
    GrowthResult grown =
        grower.Grow(features, session.y_fact(), clusters);
    // Shrink leaf values into the stored model.
    for (const auto& leaf : grown.leaves) {
      grown.tree.nodes[static_cast<size_t>(leaf.node)].prediction =
          params_.learning_rate * leaf.raw_value;
    }
    int fact_rel = grown.first_split_relation >= 0
                       ? session.FactOf(grown.first_split_relation)
                       : session.y_fact();
    UpdateResiduals(session, grown, fact_rel);
    model.trees.push_back(std::move(grown.tree));
  }
  return model;
}

}  // namespace core
}  // namespace joinboost
