#include "baselines/madlib_like.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace joinboost {
namespace baselines {

namespace {

struct NodeTask {
  int node;
  int depth;
  std::vector<uint32_t> rows;
};

}  // namespace

core::Ensemble TrainMadlibLikeTree(const DenseDataset& data,
                                   const core::TrainParams& params) {
  core::TreeModel tree;
  tree.nodes.push_back(core::TreeNode{});

  std::vector<NodeTask> queue;
  {
    NodeTask root;
    root.node = 0;
    root.depth = 0;
    root.rows.resize(data.num_rows);
    std::iota(root.rows.begin(), root.rows.end(), 0);
    queue.push_back(std::move(root));
  }

  int num_leaves = 1;
  while (!queue.empty()) {
    NodeTask task = std::move(queue.back());
    queue.pop_back();

    double total_s = 0;
    for (uint32_t r : task.rows) total_s += data.y[r];
    double total_c = static_cast<double>(task.rows.size());

    bool depth_ok = params.max_depth < 0 || task.depth < params.max_depth;
    bool can_split = num_leaves < params.num_leaves && depth_ok &&
                     task.rows.size() >= 2 * params.min_data_in_leaf;

    double best_gain = 1e-12;
    int best_f = -1;
    double best_thr = 0;
    if (can_split) {
      // Exact greedy: sort the node's rows by every feature, every time —
      // no binning, no reuse; this is the cost MADLib-style trainers pay.
      std::vector<uint32_t> order(task.rows);
      for (size_t f = 0; f < data.features.size(); ++f) {
        const auto& col = data.features[f];
        std::sort(order.begin(), order.end(),
                  [&](uint32_t a, uint32_t b) { return col[a] < col[b]; });
        double cum_s = 0, cum_c = 0;
        for (size_t i = 0; i + 1 < order.size(); ++i) {
          cum_s += data.y[order[i]];
          cum_c += 1;
          if (col[order[i]] == col[order[i + 1]]) continue;
          if (cum_c < params.min_data_in_leaf ||
              total_c - cum_c < params.min_data_in_leaf) {
            continue;
          }
          double gain = 0.5 * ((cum_s / cum_c) * cum_s +
                               ((total_s - cum_s) / (total_c - cum_c)) *
                                   (total_s - cum_s) -
                               (total_s / total_c) * total_s);
          if (gain > best_gain) {
            best_gain = gain;
            best_f = static_cast<int>(f);
            best_thr = col[order[i]];
          }
        }
      }
    }

    if (best_f < 0) {
      auto& node = tree.nodes[static_cast<size_t>(task.node)];
      node.is_leaf = true;
      node.prediction = total_c > 0 ? total_s / total_c : 0;
      node.count = total_c;
      node.sum = total_s;
      continue;
    }

    auto& parent = tree.nodes[static_cast<size_t>(task.node)];
    parent.is_leaf = false;
    parent.feature = data.feature_names[static_cast<size_t>(best_f)];
    parent.relation = best_f;
    parent.threshold = best_thr;
    parent.gain = best_gain;
    int li = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(core::TreeNode{});
    int ri = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(core::TreeNode{});
    tree.nodes[static_cast<size_t>(task.node)].left = li;
    tree.nodes[static_cast<size_t>(task.node)].right = ri;

    NodeTask left, right;
    left.node = li;
    right.node = ri;
    left.depth = right.depth = task.depth + 1;
    const auto& col = data.features[static_cast<size_t>(best_f)];
    for (uint32_t r : task.rows) {
      (col[r] <= best_thr ? left.rows : right.rows).push_back(r);
    }
    ++num_leaves;
    queue.push_back(std::move(left));
    queue.push_back(std::move(right));
  }

  core::Ensemble model;
  model.base_score = 0;
  model.average = false;
  model.trees.push_back(std::move(tree));
  return model;
}

}  // namespace baselines
}  // namespace joinboost
