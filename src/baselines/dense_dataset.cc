#include "baselines/dense_dataset.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/evaluate.h"
#include "util/timer.h"

namespace joinboost {
namespace baselines {

DenseDataset MaterializeExportLoad(Dataset& data, ExportStats* stats,
                                   size_t memory_budget_bytes) {
  ExportStats local;
  Timer timer;

  // 1. Materialize the join inside the engine.
  std::string sql = core::FullJoinSql(data);
  auto joined = data.db()->Query(sql, "export");
  local.join_seconds = timer.Seconds();

  // 2. Export: serialize to CSV text (the transfer format of §1).
  timer.Reset();
  std::string csv;
  csv.reserve(joined->rows * joined->cols.size() * 8);
  for (size_t c = 0; c < joined->cols.size(); ++c) {
    if (c) csv += ',';
    csv += joined->cols[c].name;
  }
  csv += '\n';
  char buf[64];
  for (size_t r = 0; r < joined->rows; ++r) {
    for (size_t c = 0; c < joined->cols.size(); ++c) {
      if (c) csv += ',';
      const auto& v = joined->cols[c].data;
      if (v.type == TypeId::kFloat64) {
        int n = std::snprintf(buf, sizeof(buf), "%.17g", (*v.dbls)[r]);
        csv.append(buf, static_cast<size_t>(n));
      } else {
        int n = std::snprintf(buf, sizeof(buf), "%lld",
                              static_cast<long long>((*v.ints)[r]));
        csv.append(buf, static_cast<size_t>(n));
      }
    }
    csv += '\n';
  }
  local.csv_bytes = csv.size();
  local.export_seconds = timer.Seconds();

  // Memory accounting before the load allocates the dense matrix.
  DenseDataset out;
  out.num_rows = joined->rows;
  size_t ncols = joined->cols.size();
  size_t projected = joined->rows * ncols * 8 * 2;
  if (memory_budget_bytes > 0 && projected > memory_budget_bytes) {
    throw OomError("dense dataset needs " + std::to_string(projected) +
                   " bytes, budget is " + std::to_string(memory_budget_bytes));
  }

  // 3. Load: parse the CSV back (as LightGBM's CLI loader would).
  timer.Reset();
  size_t pos = 0;
  // header
  {
    size_t eol = csv.find('\n', pos);
    std::string header = csv.substr(pos, eol - pos);
    pos = eol + 1;
    size_t start = 0;
    while (start <= header.size()) {
      size_t comma = header.find(',', start);
      if (comma == std::string::npos) comma = header.size();
      out.feature_names.push_back(header.substr(start, comma - start));
      start = comma + 1;
    }
  }
  int y_idx = -1;
  for (size_t i = 0; i < out.feature_names.size(); ++i) {
    if (out.feature_names[i] == "jb_y") y_idx = static_cast<int>(i);
  }
  JB_CHECK_MSG(y_idx >= 0, "exported join lacks jb_y");

  out.features.assign(ncols - 1, {});
  for (auto& col : out.features) col.reserve(out.num_rows);
  out.y.reserve(out.num_rows);
  const char* p = csv.c_str() + pos;
  for (size_t r = 0; r < out.num_rows; ++r) {
    size_t fcol = 0;
    for (size_t c = 0; c < ncols; ++c) {
      char* end;
      double v = std::strtod(p, &end);
      p = end;
      if (*p == ',' || *p == '\n') ++p;
      if (static_cast<int>(c) == y_idx) {
        out.y.push_back(v);
      } else {
        out.features[fcol++].push_back(v);
      }
    }
  }
  out.feature_names.erase(out.feature_names.begin() + y_idx);
  local.load_seconds = timer.Seconds();

  if (stats) *stats = local;
  return out;
}

}  // namespace baselines
}  // namespace joinboost
