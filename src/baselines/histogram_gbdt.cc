#include "baselines/histogram_gbdt.h"

#include <algorithm>
#include <cmath>

#include "semiring/objectives.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace joinboost {
namespace baselines {

namespace {

/// One feature's binning: `edges[b]` is the inclusive upper bound of bin b,
/// chosen on distinct values so that with enough bins the trainer is exact
/// greedy (used by the cross-implementation equivalence tests).
struct FeatureBins {
  std::vector<double> edges;
};

}  // namespace

struct HistogramGbdt::Binned {
  std::vector<FeatureBins> bins;
  /// Row-major is cache-hostile for histogram builds; store column-major.
  std::vector<std::vector<uint32_t>> codes;  ///< per feature, per row
  size_t num_rows = 0;
};

HistogramGbdt::HistogramGbdt(core::TrainParams params, ThreadPool* pool)
    : params_(std::move(params)), pool_(pool) {}

namespace {

FeatureBins BuildBins(const std::vector<double>& values, int max_bin) {
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  FeatureBins out;
  if (max_bin <= 0 || static_cast<int>(sorted.size()) <= max_bin) {
    out.edges = std::move(sorted);
    return out;
  }
  // Equal-frequency thresholds over distinct values.
  out.edges.reserve(static_cast<size_t>(max_bin));
  for (int b = 1; b <= max_bin; ++b) {
    size_t idx = std::min(sorted.size() - 1,
                          sorted.size() * static_cast<size_t>(b) /
                              static_cast<size_t>(max_bin));
    if (idx == 0) idx = 1;
    double edge = sorted[idx - 1];
    if (out.edges.empty() || edge > out.edges.back()) out.edges.push_back(edge);
  }
  if (out.edges.back() < sorted.back()) out.edges.push_back(sorted.back());
  return out;
}

uint32_t BinOf(const FeatureBins& bins, double v) {
  auto it = std::lower_bound(bins.edges.begin(), bins.edges.end(), v);
  if (it == bins.edges.end()) return static_cast<uint32_t>(bins.edges.size() - 1);
  return static_cast<uint32_t>(it - bins.edges.begin());
}

}  // namespace

core::TreeModel HistogramGbdt::GrowTree(
    const Binned& binned, const std::vector<std::string>& names,
    const std::vector<uint32_t>& rows, const std::vector<int>& feature_subset,
    const std::vector<double>& grad, const std::vector<double>& hess) {
  core::TreeModel tree;
  tree.nodes.push_back(core::TreeNode{});

  struct Leaf {
    int node;
    int depth;
    std::vector<uint32_t> rows;
    double g = 0, h = 0;
    // best split
    bool has_best = false;
    int best_feature = -1;
    uint32_t best_bin = 0;
    double best_gain = 0;
    double best_g_left = 0, best_h_left = 0;
  };

  const double lambda = params_.lambda_l2;
  auto leaf_gain_term = [&](double g, double h) {
    return h + lambda > 0 ? (g / (h + lambda)) * g : 0.0;
  };

  auto find_best = [&](Leaf& leaf) {
    leaf.has_best = false;
    double parent_term = leaf_gain_term(leaf.g, leaf.h);
    for (int f : feature_subset) {
      const auto& codes = binned.codes[static_cast<size_t>(f)];
      size_t nbins = binned.bins[static_cast<size_t>(f)].edges.size();
      if (nbins < 2) continue;
      std::vector<double> hg(nbins, 0), hh(nbins, 0), hc(nbins, 0);
      for (uint32_t r : leaf.rows) {
        uint32_t b = codes[r];
        hg[b] += grad[r];
        hh[b] += hess[r];
        hc[b] += 1;
      }
      double cg = 0, ch = 0, cc = 0;
      double total_c = static_cast<double>(leaf.rows.size());
      for (size_t b = 0; b + 1 < nbins; ++b) {
        cg += hg[b];
        ch += hh[b];
        cc += hc[b];
        if (cc < params_.min_data_in_leaf ||
            total_c - cc < params_.min_data_in_leaf) {
          continue;
        }
        double gain = 0.5 * (leaf_gain_term(cg, ch) +
                             leaf_gain_term(leaf.g - cg, leaf.h - ch) -
                             parent_term);
        if (gain > std::max(params_.min_gain, 1e-12) &&
            (!leaf.has_best || gain > leaf.best_gain)) {
          leaf.has_best = true;
          leaf.best_feature = f;
          leaf.best_bin = static_cast<uint32_t>(b);
          leaf.best_gain = gain;
          leaf.best_g_left = cg;
          leaf.best_h_left = ch;
        }
      }
    }
  };

  std::vector<Leaf> leaves;
  {
    Leaf root;
    root.node = 0;
    root.depth = 0;
    root.rows = rows;
    for (uint32_t r : rows) {
      root.g += grad[r];
      root.h += hess[r];
    }
    find_best(root);
    leaves.push_back(std::move(root));
  }

  int num_leaves = 1;
  const bool depth_wise = params_.growth == "depth_wise";
  while (num_leaves < params_.num_leaves) {
    int pick = -1;
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (!leaves[i].has_best) continue;
      if (pick < 0) {
        pick = static_cast<int>(i);
        continue;
      }
      const Leaf& a = leaves[i];
      const Leaf& b = leaves[static_cast<size_t>(pick)];
      bool better = depth_wise
                        ? (a.depth < b.depth ||
                           (a.depth == b.depth && a.best_gain > b.best_gain))
                        : a.best_gain > b.best_gain;
      if (better) pick = static_cast<int>(i);
    }
    if (pick < 0) break;
    Leaf leaf = std::move(leaves[static_cast<size_t>(pick)]);
    leaves.erase(leaves.begin() + pick);

    int f = leaf.best_feature;
    const auto& codes = binned.codes[static_cast<size_t>(f)];
    double threshold =
        binned.bins[static_cast<size_t>(f)].edges[leaf.best_bin];

    core::TreeNode& parent = tree.nodes[static_cast<size_t>(leaf.node)];
    parent.is_leaf = false;
    parent.feature = names[static_cast<size_t>(f)];
    parent.relation = f;  // dense feature index, used for fast routing
    parent.categorical = false;
    parent.threshold = threshold;
    parent.gain = leaf.best_gain;
    int li = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(core::TreeNode{});
    int ri = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(core::TreeNode{});
    tree.nodes[static_cast<size_t>(leaf.node)].left = li;
    tree.nodes[static_cast<size_t>(leaf.node)].right = ri;

    Leaf left, right;
    left.node = li;
    right.node = ri;
    left.depth = right.depth = leaf.depth + 1;
    for (uint32_t r : leaf.rows) {
      if (codes[r] <= leaf.best_bin) {
        left.rows.push_back(r);
      } else {
        right.rows.push_back(r);
      }
    }
    left.g = leaf.best_g_left;
    left.h = leaf.best_h_left;
    right.g = leaf.g - left.g;
    right.h = leaf.h - left.h;
    ++num_leaves;
    bool depth_ok = params_.max_depth < 0 || left.depth < params_.max_depth;
    if (num_leaves < params_.num_leaves && depth_ok) {
      find_best(left);
      find_best(right);
    }
    leaves.push_back(std::move(left));
    leaves.push_back(std::move(right));
  }

  for (const auto& leaf : leaves) {
    auto& node = tree.nodes[static_cast<size_t>(leaf.node)];
    node.prediction = leaf.h + lambda > 0 ? leaf.g / (leaf.h + lambda) : 0;
    node.count = static_cast<double>(leaf.rows.size());
    node.sum = leaf.g;
  }
  return tree;
}

core::Ensemble HistogramGbdt::Train(const DenseDataset& data,
                                    HistogramStats* stats) {
  HistogramStats local;
  Timer timer;

  // Binning ("dataset construction").
  Binned binned;
  binned.num_rows = data.num_rows;
  int max_bin = params_.max_bin > 0 ? params_.max_bin : 1000;
  binned.bins.resize(data.features.size());
  binned.codes.resize(data.features.size());
  for (size_t f = 0; f < data.features.size(); ++f) {
    binned.bins[f] = BuildBins(data.features[f], max_bin);
    binned.codes[f].resize(data.num_rows);
    for (size_t r = 0; r < data.num_rows; ++r) {
      binned.codes[f][r] = BinOf(binned.bins[f], data.features[f][r]);
    }
  }
  local.bin_seconds = timer.Seconds();

  auto objective =
      semiring::MakeObjective(params_.objective, params_.objective_param);

  core::Ensemble model;
  const bool rf = params_.boosting == "rf";
  const bool dt = params_.boosting == "dt";
  model.average = rf;
  model.base_score = (rf || dt) ? 0.0 : objective->InitScore(data.y);

  std::vector<int> all_features(data.features.size());
  for (size_t f = 0; f < all_features.size(); ++f) {
    all_features[f] = static_cast<int>(f);
  }

  timer.Reset();
  std::vector<double> pred(data.num_rows, model.base_score);
  std::vector<double> grad(data.num_rows), hess(data.num_rows);

  int iterations = dt ? 1 : params_.num_iterations;
  for (int it = 0; it < iterations; ++it) {
    std::vector<uint32_t> rows;
    std::vector<int> feats = all_features;
    if (rf) {
      // Bagging + feature sampling, mirroring the factorized forest.
      uint64_t seed = SplitMix64(params_.seed + static_cast<uint64_t>(it));
      Rng rng(seed);
      int64_t threshold =
          static_cast<int64_t>(params_.bagging_fraction * 1048576.0);
      for (size_t r = 0; r < data.num_rows; ++r) {
        if (params_.bagging_fraction >= 1.0 ||
            static_cast<int64_t>(SplitMix64(r ^ seed) % 1048576) < threshold) {
          rows.push_back(static_cast<uint32_t>(r));
        }
      }
      if (params_.feature_fraction < 1.0) {
        for (size_t i = feats.size(); i > 1; --i) {
          std::swap(feats[i - 1], feats[rng.NextBounded(i)]);
        }
        size_t want = std::max<size_t>(
            1, static_cast<size_t>(params_.feature_fraction *
                                   static_cast<double>(feats.size())));
        feats.resize(want);
      }
      // RF trains on raw Y (mean leaves): g = y, h = 1.
      for (uint32_t r : rows) {
        grad[r] = data.y[r];
        hess[r] = 1.0;
      }
    } else {
      rows.resize(data.num_rows);
      for (size_t r = 0; r < data.num_rows; ++r) {
        rows[r] = static_cast<uint32_t>(r);
        grad[r] = dt ? data.y[r] : objective->Gradient(data.y[r], pred[r]);
        hess[r] = dt ? 1.0 : objective->Hessian(data.y[r], pred[r]);
      }
    }

    core::TreeModel tree =
        GrowTree(binned, data.feature_names, rows, feats, grad, hess);

    if (!rf && !dt) {
      // Shrink leaves, then the residual update: a parallel write pass over
      // the prediction array — LightGBM's ~0.2s reference cost in Fig 5.
      for (auto& node : tree.nodes) {
        if (node.is_leaf) node.prediction *= params_.learning_rate;
      }
      Timer upd;
      auto apply = [&](size_t r) {
        // Route the row through the tree over binned codes.
        int i = 0;
        for (;;) {
          const core::TreeNode& n = tree.nodes[static_cast<size_t>(i)];
          if (n.is_leaf) {
            pred[r] += n.prediction;
            return;
          }
          double v = data.features[static_cast<size_t>(n.relation)][r];
          i = v <= n.threshold ? n.left : n.right;
        }
      };
      if (pool_) {
        pool_->ParallelFor(data.num_rows, apply);
      } else {
        for (size_t r = 0; r < data.num_rows; ++r) apply(r);
      }
      local.residual_update_seconds += upd.Seconds();
    }
    model.trees.push_back(std::move(tree));
  }
  local.train_seconds = timer.Seconds() - local.residual_update_seconds;
  if (stats) *stats = local;
  return model;
}

}  // namespace baselines
}  // namespace joinboost
