#pragma once

#include <memory>
#include <vector>

#include "baselines/dense_dataset.h"
#include "core/model.h"
#include "core/params.h"
#include "util/threadpool.h"

namespace joinboost {
namespace baselines {

/// Per-run instrumentation matching what the paper measures for LightGBM.
struct HistogramStats {
  double bin_seconds = 0;             ///< feature binning ("dataset construction")
  double train_seconds = 0;           ///< tree growth
  double residual_update_seconds = 0; ///< parallel array writes (Fig 5 red line)
};

/// LightGBM-style in-memory trainer over dense arrays: feature binning,
/// histogram-based leaf-wise (best-first) growth, and residual updates as
/// parallel writes to a contiguous array — the comparator the paper
/// benchmarks against throughout §6.
class HistogramGbdt {
 public:
  explicit HistogramGbdt(core::TrainParams params,
                         ThreadPool* pool = nullptr);

  /// Train gbdt / rf / dt per params.boosting.
  core::Ensemble Train(const DenseDataset& data, HistogramStats* stats = nullptr);

 private:
  struct Binned;
  core::TreeModel GrowTree(const Binned& binned,
                           const std::vector<std::string>& names,
                           const std::vector<uint32_t>& rows,
                           const std::vector<int>& feature_subset,
                           const std::vector<double>& grad,
                           const std::vector<double>& hess);

  core::TrainParams params_;
  ThreadPool* pool_;
};

}  // namespace baselines
}  // namespace joinboost
