#pragma once

#include "baselines/dense_dataset.h"
#include "core/model.h"
#include "core/params.h"

namespace joinboost {
namespace baselines {

/// MADLib-style non-factorized decision tree: exact greedy over the
/// materialized join, re-sorting every feature at every node with no
/// histograms and no work sharing — the row-at-a-time recursive
/// partitioning cost profile the paper compares against in Figure 16b.
core::Ensemble TrainMadlibLikeTree(const DenseDataset& data,
                                   const core::TrainParams& params);

}  // namespace baselines
}  // namespace joinboost
