#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "util/check.h"

namespace joinboost {
namespace baselines {

/// Thrown when a dense materialization exceeds the configured memory budget,
/// reproducing the OOM cliffs of in-memory ML libraries (Figures 10–12).
class OomError : public JbError {
 public:
  explicit OomError(const std::string& msg) : JbError(msg) {}
};

/// The single-table training matrix conventional ML libraries require
/// (paper §1: materialize R⋈, export it, load it).
struct DenseDataset {
  std::vector<std::string> feature_names;
  /// Column-major feature values (categoricals as dictionary codes).
  std::vector<std::vector<double>> features;
  std::vector<double> y;
  size_t num_rows = 0;

  size_t MemoryBytes() const {
    // Raw matrix + the binned copy a histogram trainer keeps (LightGBM
    // holds both, which is what blows its memory in Fig 10/11).
    return num_rows * (features.size() + 1) * 8 * 2;
  }
};

/// Cost breakdown of the materialize→export→load pipeline.
struct ExportStats {
  double join_seconds = 0;
  double export_seconds = 0;  ///< CSV serialization
  double load_seconds = 0;    ///< CSV parse back into arrays
  size_t csv_bytes = 0;
};

/// Materialize the join, serialize it to CSV bytes and parse it back into a
/// dense matrix — the genuine end-to-end cost ML libraries pay before
/// training starts. Throws OomError when the dense matrix would exceed
/// `memory_budget_bytes` (0 = unlimited).
DenseDataset MaterializeExportLoad(Dataset& data, ExportStats* stats,
                                   size_t memory_budget_bytes = 0);

}  // namespace baselines
}  // namespace joinboost
