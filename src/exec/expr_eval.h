#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "exec/hash_table.h"
#include "exec/vector.h"
#include "sql/ast.h"

namespace joinboost {
namespace exec {

/// An IN (...) literal list translated into a probe value space, plus the
/// integer bounds compressed execution uses for zone-map block skipping.
struct InListSet {
  std::shared_ptr<const hash::ValueSet> set;
  bool as_double = false;   ///< members are double bit patterns
  bool has_bounds = false;  ///< min/max below are valid (int64 members exist)
  int64_t min_value = 0;
  int64_t max_value = 0;
};

/// Context threaded through expression evaluation.
struct EvalContext {
  /// Executes an IN/scalar subquery and returns its result.
  std::function<ExecTable(const sql::SelectStmt&)> run_subquery;

  /// Per-node result overrides: aggregate and window nodes are pre-computed
  /// by the operators and substituted here during final projection.
  std::unordered_map<const sql::Expr*, VectorData> overrides;

  /// Membership sets of IN (subquery) predicates, built once per context per
  /// predicate node and reused across evaluations. Without the cache, every
  /// evaluation rebuilt the set — and row-mode scalar evaluation re-enters
  /// the vectorized path per row, so an IN predicate rebuilt its set (and
  /// re-ran its subquery) once per input row.
  std::unordered_map<const sql::Expr*, std::shared_ptr<const hash::ValueSet>>
      in_sets;

  /// IN (...) literal lists translated per (predicate node, probe
  /// dictionary). String probes with different dictionaries translate to
  /// different code sets, so the dictionary is part of the key — this is
  /// what keeps repeated evaluations against the same dictionary from
  /// re-translating the list (it previously stayed uncached).
  std::map<std::pair<const sql::Expr*, const Dictionary*>,
           std::shared_ptr<const InListSet>>
      list_sets;

  /// Scalar subquery results (their 1x1 value vector), cached per context
  /// per node for the same reason: table data is immutable within one
  /// statement, and row-mode evaluation would re-run the subquery once per
  /// input row otherwise.
  std::unordered_map<const sql::Expr*, VectorData> scalar_subqueries;
};

/// Translate an IN-list node's literals into the probe's value space —
/// dictionary codes for string probes, double bit patterns for float probes,
/// raw int64 otherwise — cached per (node, dictionary) in `ctx.list_sets`.
/// Shared between vectorized evaluation and the compressed scan.
const InListSet& GetOrBuildInListSet(const sql::Expr& e, TypeId probe_type,
                                     const Dictionary* dict, EvalContext& ctx);

/// Process-wide count of IN-list translations that probed a dictionary
/// (deterministic regression knob for the (node, dictionary) cache).
size_t InListTranslations();
void ResetInListTranslations();

/// Vectorized evaluation of `e` over `input` (result has input.rows rows;
/// literals broadcast).
VectorData EvalExpr(const sql::Expr& e, const ExecTable& input,
                    EvalContext& ctx);

/// Row-at-a-time evaluation (row-store profiles and point lookups).
Value EvalScalar(const sql::Expr& e, const ExecTable& input, size_t row,
                 EvalContext& ctx);

/// Evaluate a predicate and return the selected row indices.
std::vector<uint32_t> EvalPredicate(const sql::Expr& e, const ExecTable& input,
                                    EvalContext& ctx, bool row_mode);

/// Collect aggregate call nodes (SUM/COUNT/...) reachable without crossing
/// window or nested aggregate boundaries.
void CollectAggregates(const sql::ExprPtr& e,
                       std::vector<const sql::Expr*>* out);

/// Collect window aggregate nodes.
void CollectWindows(const sql::ExprPtr& e, std::vector<const sql::Expr*>* out);

}  // namespace exec
}  // namespace joinboost
