#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "exec/hash_table.h"
#include "exec/vector.h"
#include "sql/ast.h"

namespace joinboost {
namespace exec {

/// Context threaded through expression evaluation.
struct EvalContext {
  /// Executes an IN/scalar subquery and returns its result.
  std::function<ExecTable(const sql::SelectStmt&)> run_subquery;

  /// Per-node result overrides: aggregate and window nodes are pre-computed
  /// by the operators and substituted here during final projection.
  std::unordered_map<const sql::Expr*, VectorData> overrides;

  /// Membership sets of IN (...) / IN (subquery) predicates, built once per
  /// context per predicate node and reused across evaluations. Without the
  /// cache, every evaluation rebuilt the set — and row-mode scalar
  /// evaluation re-enters the vectorized path per row, so an IN predicate
  /// rebuilt its set (and re-ran its subquery) once per input row.
  std::unordered_map<const sql::Expr*, std::shared_ptr<const hash::ValueSet>>
      in_sets;

  /// Scalar subquery results (their 1x1 value vector), cached per context
  /// per node for the same reason: table data is immutable within one
  /// statement, and row-mode evaluation would re-run the subquery once per
  /// input row otherwise.
  std::unordered_map<const sql::Expr*, VectorData> scalar_subqueries;
};

/// Vectorized evaluation of `e` over `input` (result has input.rows rows;
/// literals broadcast).
VectorData EvalExpr(const sql::Expr& e, const ExecTable& input,
                    EvalContext& ctx);

/// Row-at-a-time evaluation (row-store profiles and point lookups).
Value EvalScalar(const sql::Expr& e, const ExecTable& input, size_t row,
                 EvalContext& ctx);

/// Evaluate a predicate and return the selected row indices.
std::vector<uint32_t> EvalPredicate(const sql::Expr& e, const ExecTable& input,
                                    EvalContext& ctx, bool row_mode);

/// Collect aggregate call nodes (SUM/COUNT/...) reachable without crossing
/// window or nested aggregate boundaries.
void CollectAggregates(const sql::ExprPtr& e,
                       std::vector<const sql::Expr*>* out);

/// Collect window aggregate nodes.
void CollectWindows(const sql::ExprPtr& e, std::vector<const sql::Expr*>* out);

}  // namespace exec
}  // namespace joinboost
