#include "exec/engine.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <thread>

#include "sql/expr_util.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "util/error.h"
#include "util/hash.h"
#include "util/timer.h"

namespace joinboost {
namespace exec {

namespace {

using sql::CollectColumnRefs;
using sql::CollectFuncCalls;
using sql::CombineConjuncts;
using sql::OutputName;
using sql::SplitConjuncts;

/// True when every column ref of `e` resolves against `t`.
bool ResolvesAgainst(const sql::ExprPtr& e, const ExecTable& t) {
  std::vector<const sql::Expr*> refs;
  CollectColumnRefs(e, &refs);
  for (const auto* r : refs) {
    if (t.Find(r->table, r->column) < 0) return false;
  }
  return true;
}

/// Register overrides for select-list subtrees that textually match a
/// GROUP BY expression, pointing them at the grouped key column.
void OverrideGroupRefs(const sql::ExprPtr& e,
                       const std::vector<std::string>& group_sql,
                       const std::vector<VectorData>& key_cols,
                       EvalContext* ctx) {
  if (!e) return;
  if (e->kind != sql::ExprKind::kColumnRef) {
    std::string printed = sql::ToSql(*e);
    for (size_t i = 0; i < group_sql.size(); ++i) {
      if (printed == group_sql[i]) {
        ctx->overrides.emplace(e.get(), key_cols[i]);
        return;
      }
    }
  }
  if (e->kind == sql::ExprKind::kAggCall) return;
  for (const auto& a : e->args) {
    OverrideGroupRefs(a, group_sql, key_cols, ctx);
  }
}

/// Classify an ON conjunction into equi-join keys plus residual predicates
/// against the actual input schemas, then hash-join. Shared between the
/// planned and unplanned execution paths.
ExecTable JoinWithCondition(const ExecTable& current, const ExecTable& right,
                            const sql::ExprPtr& condition, sql::JoinType type,
                            EvalContext& ectx, const OpContext& octx) {
  std::vector<sql::ExprPtr> jconj;
  SplitConjuncts(condition, &jconj);
  std::vector<int> lkeys, rkeys;
  std::vector<sql::ExprPtr> residual;
  for (const auto& c : jconj) {
    bool handled = false;
    if (c->kind == sql::ExprKind::kBinary && c->op == "=" &&
        c->args[0]->kind == sql::ExprKind::kColumnRef &&
        c->args[1]->kind == sql::ExprKind::kColumnRef) {
      const auto& a = *c->args[0];
      const auto& b = *c->args[1];
      int la = current.Find(a.table, a.column);
      int rb = right.Find(b.table, b.column);
      if (la >= 0 && rb >= 0) {
        lkeys.push_back(la);
        rkeys.push_back(rb);
        handled = true;
      } else {
        int lb = current.Find(b.table, b.column);
        int ra = right.Find(a.table, a.column);
        if (lb >= 0 && ra >= 0) {
          lkeys.push_back(lb);
          rkeys.push_back(ra);
          handled = true;
        }
      }
    }
    if (!handled) residual.push_back(c);
  }
  JB_CHECK_MSG(!lkeys.empty(), "join requires at least one equi condition: "
                                   << sql::ToSql(*condition));
  ExecTable out = HashJoinExec(current, right, lkeys, rkeys, type, octx);
  if (!residual.empty()) {
    JB_CHECK_MSG(type == sql::JoinType::kInner,
                 "residual join predicates only on inner joins");
    out = FilterExec(out, *CombineConjuncts(residual), ectx, octx);
  }
  return out;
}

}  // namespace

Database::Database(EngineProfile profile) : profile_(std::move(profile)) {
  wal_ = std::make_unique<WriteAheadLog>(profile_.wal_to_disk);
  int threads = std::max(profile_.exec_threads, 1);
  unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) threads = std::min<int>(threads, static_cast<int>(hw) * 2);
  // Operators must never request more shards than the pool has workers:
  // keep the clamped count and hand it to every OpContext.
  exec_threads_ = threads;
  pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
}

Database::~Database() = default;

Database::Result Database::Execute(const std::string& sql_text,
                                   const std::string& tag) {
  Timer timer;
  sql::Statement stmt = sql::Parse(sql_text);
  Result res = ExecuteStatement(stmt);
  QueryLogEntry entry;
  entry.tag = tag;
  entry.sql = sql_text;
  entry.ms = timer.Millis();
  entry.rows_out = res.table ? res.table->rows : res.affected;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    query_log_.push_back(std::move(entry));
  }
  return res;
}

std::shared_ptr<ExecTable> Database::Query(const std::string& sql_text,
                                           const std::string& tag) {
  Result res = Execute(sql_text, tag);
  JB_CHECK_MSG(res.table != nullptr, "Query() used with non-SELECT statement");
  return res.table;
}

std::shared_ptr<ExecTable> Database::QueryOn(const Catalog& cat,
                                             const std::string& sql_text,
                                             const std::string& tag) {
  ReadContext rctx;
  rctx.catalog = &cat;
  rctx.tag = tag;
  return Query(rctx, sql_text);
}

double Database::QueryScalarDouble(const std::string& sql_text,
                                   const std::string& tag) {
  auto t = Query(sql_text, tag);
  JB_CHECK_MSG(t->rows >= 1 && !t->cols.empty(),
               "scalar query returned empty result: " << sql_text);
  Value v = t->GetValue(0, 0);
  return v.AsDouble();
}

Database::Result Database::ExecuteStatement(const sql::Statement& stmt) {
  Result res;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      res.table = std::make_shared<ExecTable>(RunSelect(*stmt.select));
      break;
    case sql::Statement::Kind::kExplain:
      res.table = ExecuteExplain(stmt);
      break;
    case sql::Statement::Kind::kCreateTableAs:
      if (stmt.or_replace) catalog_.DropIfExists(stmt.table);
      ExecuteCreateTableAs(stmt);
      break;
    case sql::Statement::Kind::kUpdate:
      res.affected = ExecuteUpdate(stmt);
      break;
    case sql::Statement::Kind::kDropTable:
      if (stmt.if_exists) {
        catalog_.DropIfExists(stmt.table);
      } else {
        catalog_.Drop(stmt.table);
      }
      break;
  }
  return res;
}

ExecTable Database::RunSelect(const sql::SelectStmt& stmt) {
  return Query(ReadContext{}, stmt);
}

ExecTable Database::RunSelectOn(const Catalog& cat,
                                const sql::SelectStmt& stmt) {
  ReadContext rctx;
  rctx.catalog = &cat;
  return Query(rctx, stmt);
}

std::shared_ptr<ExecTable> Database::Query(const ReadContext& rctx,
                                           const std::string& sql_text) {
  Timer timer;
  sql::Statement stmt = sql::Parse(sql_text);
  JB_CHECK_MSG(stmt.kind == sql::Statement::Kind::kSelect,
               "Query(ReadContext) supports SELECT statements only");
  auto table = std::make_shared<ExecTable>(Query(rctx, *stmt.select));
  QueryLogEntry entry;
  entry.tag = rctx.tag;
  entry.sql = sql_text;
  entry.ms = timer.Millis();
  entry.rows_out = table->rows;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    query_log_.push_back(std::move(entry));
  }
  return table;
}

ExecTable Database::Query(const ReadContext& rctx,
                          const sql::SelectStmt& stmt) {
  const Catalog& cat = rctx.catalog ? *rctx.catalog : catalog_;
  const EngineProfile& prof = rctx.profile ? *rctx.profile : profile_;

  plan::PlanStats local;
  OpContext octx;
  octx.row_mode = !prof.columnar_exec;
  // A profile override may lower the thread budget but never exceeds the
  // pool the database was built with.
  octx.threads = std::max(1, std::min(prof.exec_threads, exec_threads_));
  octx.pool = pool_.get();
  octx.interop_scan = prof.dataframe_interop;
  octx.stats = &local;
  octx.morsel_rows = prof.morsel_rows;
  octx.parallel_threshold = prof.parallel_threshold_rows;
  octx.compressed_exec = prof.compressed_exec && prof.compression;
  octx.guard = rctx.guard;

  EvalContext ectx;
  // Subqueries resolve through the same ReadContext, so a pinned snapshot
  // (and any profile override, and the lifecycle guard) covers the whole
  // statement.
  ectx.run_subquery = [this, &rctx](const sql::SelectStmt& sub) {
    return Query(rctx, sub);
  };

  auto merge_stats = [&local, this] {
    std::lock_guard<std::mutex> lock(stats_mu_);
    plan_stats_ += local;
  };
  try {
    ExecTable current;
    if (prof.use_planner) {
      plan::PlannerContext pctx;
      if (prof.cost_based_planner) {
        pctx.stats = &stats_mgr_;
        pctx.cache = &plan_cache_;
      }
      plan::ParallelPolicy policy;
      policy.threads =
          prof.columnar_exec ? octx.threads : 1;  // X-row is serial
      policy.morsel_rows = prof.morsel_rows;
      policy.threshold_rows = prof.parallel_threshold_rows;
      plan::LogicalPlan lp =
          plan::PlanSelect(stmt, cat, /*for_explain=*/false, policy, &pctx);
      ++local.queries_planned;
      local.predicates_pushed += lp.predicates_pushed;
      local.constants_folded += lp.constants_folded;
      if (lp.joins_reordered) ++local.joins_reordered;
      if (lp.joins_reordered_dp) ++local.joins_reordered_dp;
      if (lp.plan_cache == 1) {
        ++local.plan_cache_hits;
      } else if (lp.plan_cache == 0) {
        ++local.plan_cache_misses;
      }
      current = ExecutePlanNode(cat, *lp.data_root, octx, ectx);
    } else {
      current = RunFromWhere(cat, stmt, octx, ectx);
    }
    ExecTable out = FinishSelect(stmt, std::move(current), octx, ectx);
    merge_stats();
    return out;
  } catch (const QueryAborted& e) {
    // An abort is a normal lifecycle outcome: record the reason and keep the
    // counters gathered so far, then let the typed error propagate.
    switch (e.reason()) {
      case AbortReason::kCancelled:
        ++local.queries_cancelled;
        break;
      case AbortReason::kDeadlineExceeded:
        ++local.deadline_aborts;
        break;
      case AbortReason::kMemoryBudget:
        ++local.budget_aborts;
        break;
    }
    merge_stats();
    throw;
  } catch (...) {
    // Injected faults and genuine errors still merge partial counters so
    // totals never under-report work that actually ran.
    merge_stats();
    throw;
  }
}

std::string Database::ExplainSelect(const sql::SelectStmt& stmt) {
  // EXPLAIN uses stats (so estimates match execution) but never the plan
  // cache: the hit/miss counters stay a pure record of executed queries.
  plan::PlannerContext pctx;
  if (profile_.cost_based_planner) pctx.stats = &stats_mgr_;
  plan::LogicalPlan lp = plan::PlanSelect(stmt, catalog_, /*for_explain=*/true,
                                          parallel_policy(), &pctx);
  return plan::Explain(lp);
}

std::string Database::ExplainAnalyzeSelect(const sql::SelectStmt& stmt) {
  plan::PlanStats local;
  OpContext octx;
  octx.row_mode = !profile_.columnar_exec;
  octx.threads = exec_threads_;
  octx.pool = pool_.get();
  octx.interop_scan = profile_.dataframe_interop;
  octx.stats = &local;
  octx.morsel_rows = profile_.morsel_rows;
  octx.parallel_threshold = profile_.parallel_threshold_rows;
  octx.compressed_exec = profile_.compressed_exec && profile_.compression;

  EvalContext ectx;
  ectx.run_subquery = [this](const sql::SelectStmt& sub) {
    return RunSelect(sub);
  };

  // Plan with stats but without the cache (same policy as ExplainSelect), on
  // the execution plan shape (for_explain=false) so the tree we annotate is
  // the tree we run.
  plan::PlannerContext pctx;
  if (profile_.cost_based_planner) pctx.stats = &stats_mgr_;
  plan::LogicalPlan lp = plan::PlanSelect(stmt, catalog_, /*for_explain=*/false,
                                          parallel_policy(), &pctx);
  ExecTable current = ExecutePlanNode(catalog_, *lp.data_root, octx, ectx);
  ExecTable out = FinishSelect(stmt, std::move(current), octx, ectx);
  if (lp.root) lp.root->actual_rows = static_cast<double>(out.rows);
  // Re-render through the EXPLAIN tree builder: PlanSelect(for_explain) would
  // re-plan and lose the recorded actuals, so render this plan directly.
  return plan::Explain(lp);
}

plan::ParallelPolicy Database::parallel_policy() const {
  plan::ParallelPolicy p;
  p.threads = profile_.columnar_exec ? exec_threads_ : 1;  // X-row is serial
  p.morsel_rows = profile_.morsel_rows;
  p.threshold_rows = profile_.parallel_threshold_rows;
  return p;
}

std::shared_ptr<ExecTable> Database::ExecuteExplain(
    const sql::Statement& stmt) {
  std::string text = stmt.analyze ? ExplainAnalyzeSelect(*stmt.select)
                                  : ExplainSelect(*stmt.select);
  auto dict = std::make_shared<Dictionary>();
  std::vector<int64_t> codes;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) codes.push_back(dict->GetOrAdd(line));
  auto t = std::make_shared<ExecTable>();
  t->rows = codes.size();
  t->cols.push_back({"", "plan", VectorData::FromCodes(std::move(codes),
                                                       std::move(dict))});
  return t;
}

ExecTable Database::ExecutePlanNode(const Catalog& cat,
                                    const plan::LogicalOp& op, OpContext& octx,
                                    EvalContext& ectx) {
  ExecTable result = [&]() -> ExecTable {
  switch (op.kind) {
    case plan::OpKind::kScan: {
      TablePtr base = cat.Get(op.table);
      ScanSpec spec;
      std::vector<int> subset;
      if (op.pruned) {
        subset.reserve(op.columns.size());
        for (const auto& name : op.columns) {
          int idx = base->schema().FieldIndex(name);
          if (idx >= 0) subset.push_back(idx);
        }
        spec.columns = &subset;
      }
      spec.filter = op.filter.get();
      spec.ectx = &ectx;
      return ScanTable(*base, op.qualifier, octx, spec);
    }
    case plan::OpKind::kSubqueryScan: {
      // The nested SELECT is planned by its own Query() through the
      // statement's run_subquery hook (same ReadContext — catalog and profile
      // overrides included); the child node in the tree is for EXPLAIN only.
      ExecTable t = ectx.run_subquery(*op.subquery);
      for (auto& c : t.cols) c.qualifier = op.qualifier;
      if (op.filter) t = FilterExec(t, *op.filter, ectx, octx);
      return t;
    }
    case plan::OpKind::kJoin: {
      ExecTable left = ExecutePlanNode(cat, *op.children[0], octx, ectx);
      ExecTable right = ExecutePlanNode(cat, *op.children[1], octx, ectx);
      return JoinWithCondition(left, right, op.condition, op.join_type, ectx,
                               octx);
    }
    case plan::OpKind::kFilter: {
      ExecTable t = ExecutePlanNode(cat, *op.children[0], octx, ectx);
      return FilterExec(t, *op.filter, ectx, octx);
    }
    case plan::OpKind::kNoFrom: {
      ExecTable t;
      t.rows = 1;  // SELECT <exprs> without FROM
      return t;
    }
    default:
      JB_THROW("logical operator is not executable in the data section");
  }
  }();
  // EXPLAIN ANALYZE: record observed output rows on the (mutable) plan node.
  op.actual_rows = static_cast<double>(result.rows);
  return result;
}

ExecTable Database::RunFromWhere(const Catalog& cat,
                                 const sql::SelectStmt& stmt, OpContext& octx,
                                 EvalContext& ectx) {
  // ---- FROM + pushdown + joins over the raw AST (planner off) ----
  std::vector<sql::ExprPtr> conjuncts;
  SplitConjuncts(stmt.where, &conjuncts);
  std::vector<bool> consumed(conjuncts.size(), false);

  // `allow_pushdown` is false for the nullable side of outer joins:
  // filtering it below the join changes NULL-extension semantics. Semi/anti
  // right sides DO take pushdown — their columns vanish from the join
  // output, so below the join is the only place those conjuncts can run.
  auto plan_ref = [&](const sql::TableRef& ref,
                      bool allow_pushdown) -> ExecTable {
    ExecTable t;
    if (ref.kind == sql::TableRef::Kind::kBase) {
      TablePtr base = cat.Get(ref.name);
      t = ScanTable(*base, ref.Qualifier(), octx);
    } else {
      t = ectx.run_subquery(*ref.subquery);
      for (auto& c : t.cols) c.qualifier = ref.Qualifier();
    }
    if (!allow_pushdown) return t;
    // Push down single-table conjuncts.
    std::vector<sql::ExprPtr> pushed;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (!consumed[i] && ResolvesAgainst(conjuncts[i], t)) {
        pushed.push_back(conjuncts[i]);
        consumed[i] = true;
      }
    }
    if (!pushed.empty()) {
      t = FilterExec(t, *CombineConjuncts(pushed), ectx, octx);
    }
    return t;
  };

  ExecTable current;
  if (stmt.has_from) {
    current = plan_ref(stmt.from, /*allow_pushdown=*/true);
    for (const auto& jc : stmt.joins) {
      ExecTable right =
          plan_ref(jc.table, jc.type != sql::JoinType::kLeft);
      current = JoinWithCondition(current, right, jc.condition, jc.type, ectx,
                                  octx);
    }
  } else {
    current.rows = 1;  // SELECT <exprs> without FROM
  }

  // Remaining WHERE conjuncts.
  std::vector<sql::ExprPtr> remaining;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (!consumed[i]) remaining.push_back(conjuncts[i]);
  }
  if (!remaining.empty()) {
    current = FilterExec(current, *CombineConjuncts(remaining), ectx, octx);
  }
  return current;
}

ExecTable Database::FinishSelect(const sql::SelectStmt& stmt,
                                 ExecTable current, OpContext& octx,
                                 EvalContext& ectx) {
  // ---- aggregation / windows ----
  std::vector<const sql::Expr*> agg_nodes;
  for (const auto& item : stmt.select_list) {
    CollectAggregates(item, &agg_nodes);
  }
  if (stmt.having) CollectAggregates(stmt.having, &agg_nodes);

  std::vector<AggSpec> specs;
  specs.reserve(agg_nodes.size());
  for (const auto* node : agg_nodes) {
    AggSpec spec;
    spec.node = node;
    spec.func = node->op;
    spec.arg = (node->args.empty() ||
                node->args[0]->kind == sql::ExprKind::kStar)
                   ? nullptr
                   : node->args[0].get();
    specs.push_back(spec);
  }

  ExecTable projected;
  if (!stmt.grouping_sets.empty()) {
    // GROUP BY GROUPING SETS: evaluate every set over the shared data
    // section in one multi-aggregate pass, then project over the stitched
    // result. GROUPING_ID() resolves to the per-row set index.
    JB_CHECK_MSG(!stmt.having, "HAVING with GROUPING SETS is not supported");
    MultiAggResult mar =
        MultiAggExec(current, stmt.grouping_sets, specs, ectx, octx);
    EvalContext pctx;
    pctx.run_subquery = ectx.run_subquery;
    for (size_t a = 0; a < specs.size(); ++a) {
      pctx.overrides.emplace(specs[a].node, mar.agg_outputs[a]);
    }
    std::vector<const sql::Expr*> gid_nodes;
    for (const auto& item : stmt.select_list) {
      CollectFuncCalls(item, "GROUPING_ID", &gid_nodes);
    }
    for (const auto* n : gid_nodes) pctx.overrides.emplace(n, mar.grouping_id);
    std::vector<VectorData> key_cols;
    for (size_t u = 0; u < mar.union_key_sql.size(); ++u) {
      key_cols.push_back(mar.table.cols[u].data);
    }
    for (const auto& item : stmt.select_list) {
      OverrideGroupRefs(item, mar.union_key_sql, key_cols, &pctx);
    }
    projected.rows = mar.table.rows;
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      const auto& item = stmt.select_list[i];
      JB_CHECK_MSG(item->kind != sql::ExprKind::kStar,
                   "SELECT * with GROUPING SETS is not supported");
      VectorData v = EvalExpr(*item, mar.table, pctx);
      projected.cols.push_back({"", OutputName(*item, i), std::move(v)});
    }
  } else if (!stmt.group_by.empty() || !agg_nodes.empty()) {
    std::vector<VectorData> agg_outputs;
    ExecTable grouped = HashAggExec(current, stmt.group_by, specs, ectx, octx,
                                    &agg_outputs);
    // Final projection over the grouped table: aggregate nodes resolve via
    // overrides; textual matches of GROUP BY expressions resolve to keys.
    EvalContext pctx;
    pctx.run_subquery = ectx.run_subquery;
    for (size_t a = 0; a < specs.size(); ++a) {
      pctx.overrides.emplace(specs[a].node, agg_outputs[a]);
    }
    std::vector<std::string> group_sql;
    std::vector<VectorData> key_cols;
    for (size_t g = 0; g < stmt.group_by.size(); ++g) {
      group_sql.push_back(sql::ToSql(*stmt.group_by[g]));
      key_cols.push_back(grouped.cols[g].data);
    }
    for (const auto& item : stmt.select_list) {
      OverrideGroupRefs(item, group_sql, key_cols, &pctx);
    }
    if (stmt.having) {
      OverrideGroupRefs(stmt.having, group_sql, key_cols, &pctx);
      std::vector<uint32_t> sel =
          EvalPredicate(*stmt.having, grouped, pctx, /*row_mode=*/false);
      grouped = grouped.GatherRows(sel);
      for (auto& [node, vec] : pctx.overrides) {
        vec = vec.Gather(sel);
      }
    }
    projected.rows = grouped.rows;
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      const auto& item = stmt.select_list[i];
      JB_CHECK_MSG(item->kind != sql::ExprKind::kStar,
                   "SELECT * with GROUP BY is not supported");
      VectorData v = EvalExpr(*item, grouped, pctx);
      projected.cols.push_back({"", OutputName(*item, i), std::move(v)});
    }
  } else {
    // Windows (non-grouped).
    std::vector<const sql::Expr*> windows;
    for (const auto& item : stmt.select_list) CollectWindows(item, &windows);
    EvalContext pctx;
    pctx.run_subquery = ectx.run_subquery;
    for (const auto* w : windows) {
      pctx.overrides.emplace(w, WindowExec(current, *w, pctx));
    }
    projected.rows = current.rows;
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      const auto& item = stmt.select_list[i];
      if (item->kind == sql::ExprKind::kStar) {
        for (const auto& c : current.cols) projected.cols.push_back(c);
        continue;
      }
      VectorData v = EvalExpr(*item, current, pctx);
      projected.cols.push_back({"", OutputName(*item, i), std::move(v)});
    }
  }

  // ---- DISTINCT ----
  if (stmt.distinct && projected.rows > 0) {
    std::vector<int> cols;
    for (size_t i = 0; i < projected.cols.size(); ++i) {
      cols.push_back(static_cast<int>(i));
    }
    OpContext d_octx = octx;
    GroupResult gr = GroupRows(projected, cols, d_octx);
    projected = projected.GatherRows(gr.representatives);
  }

  // ---- ORDER BY / LIMIT (resolve against output columns) ----
  if (!stmt.order_by.empty()) {
    EvalContext octx2;
    octx2.run_subquery = ectx.run_subquery;
    projected = SortExec(projected, stmt.order_by, octx2, octx);
  }
  if (stmt.limit >= 0) projected = LimitExec(projected, stmt.limit);
  return projected;
}

void Database::RegisterTable(const TablePtr& table) {
  catalog_.Register(table);
}

void Database::LoadTable(const TablePtr& table) {
  // Apply the storage profile's horizontal chunking before compression so
  // every chunk gets its own independently decodable payload. Dataframe
  // tables stay monolithic: the interop scan shares their single plain
  // payload by pointer.
  if (profile_.chunk_rows > 0 && !table->dataframe()) {
    table->Rechunk(profile_.chunk_rows);
    size_t created = 0;
    for (size_t i = 0; i < table->num_columns(); ++i) {
      created += table->column(i)->num_chunks();
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    plan_stats_.chunks_created += created;
  }
  if (profile_.compression && !table->dataframe()) table->EncodeAll();
  catalog_.Register(table);
}

TablePtr Database::MaterializeResult(const std::string& name,
                                     const ExecTable& result,
                                     bool as_dataframe) {
  Schema schema;
  std::vector<ColumnPtr> cols;
  size_t created = 0;
  // Dataframe tables stay monolithic (interop scans share the single plain
  // payload); everything else chunks per the profile. At chunk_rows == 0 the
  // Adopt* path is zero-copy, exactly like the pre-chunking layout.
  const size_t chunk_rows = as_dataframe ? 0 : profile_.chunk_rows;
  for (size_t i = 0; i < result.cols.size(); ++i) {
    const auto& c = result.cols[i];
    std::string col_name = c.name.empty() ? "col" + std::to_string(i) : c.name;
    schema.AddField({col_name, c.data.type});
    ColumnBuilder b(c.data.type,
                    c.data.type == TypeId::kString ? c.data.dict : nullptr);
    b.ChunkRows(chunk_rows);
    if (c.data.type == TypeId::kFloat64) {
      b.AdoptDoubles(c.data.dbls);
    } else {
      b.AdoptInts(c.data.ints);
    }
    cols.push_back(b.Build());
    created += cols.back()->num_chunks();
  }
  auto table = std::make_shared<Table>(name, std::move(schema), std::move(cols));
  table->set_dataframe(as_dataframe);
  if (profile_.compression && !as_dataframe) {
    table->EncodeAll();  // real compression cost on CREATE
  }
  if (profile_.wal && !as_dataframe) {
    // Log the created data (DBMSes WAL new tables too). The records are
    // staged and appended as one atomic batch so a failed write (device
    // error, injected fault) leaves neither partial WAL entries nor a
    // registered table behind.
    std::vector<WriteAheadLog::Record> wal_recs;
    wal_recs.reserve(table->num_columns());
    for (size_t i = 0; i < table->num_columns(); ++i) {
      const auto& col = table->column(i);
      if (col->type() == TypeId::kFloat64) {
        wal_recs.push_back(WriteAheadLog::MakeDoubles(
            name, table->schema().field(i).name, {}, col->DecodeDoubles()));
      } else {
        wal_recs.push_back(WriteAheadLog::MakeInts(
            name, table->schema().field(i).name, {}, col->DecodeInts()));
      }
    }
    wal_->LogBatch(std::move(wal_recs));
  }
  catalog_.Register(table);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    plan_stats_.chunks_created += created;
  }
  return table;
}

void Database::ExecuteCreateTableAs(const sql::Statement& stmt) {
  ExecTable result = RunSelect(*stmt.select);
  MaterializeResult(stmt.table, result, /*as_dataframe=*/false);
}

size_t Database::ExecuteUpdate(const sql::Statement& stmt) {
  // Updates are serialized and single-threaded, as in DuckDB (§5.3.2).
  std::lock_guard<std::mutex> update_lock(update_mu_);
  TablePtr table = catalog_.Get(stmt.table);
  JB_CHECK_MSG(!table->dataframe() || profile_.allow_column_swap,
               "dataframe tables are updated via column swap");

  OpContext octx;
  octx.row_mode = !profile_.columnar_exec;
  octx.threads = 1;
  octx.pool = nullptr;
  EvalContext ectx;
  ectx.run_subquery = [this](const sql::SelectStmt& sub) {
    return RunSelect(sub);
  };

  // Decompress (cost) to evaluate and write.
  ExecTable view = ScanTable(*table, stmt.table, octx);

  std::vector<uint32_t> touched;
  if (stmt.where) {
    touched = EvalPredicate(*stmt.where, view, ectx, octx.row_mode);
  } else {
    touched.resize(view.rows);
    for (size_t i = 0; i < view.rows; ++i) touched[i] = static_cast<uint32_t>(i);
  }
  if (touched.empty()) return 0;

  // Row stores touch whole rows: emulate the row rewrite traffic.
  if (!profile_.columnar_exec) {
    size_t row_bytes = 0;
    std::vector<uint8_t> row_buffer(table->num_columns() * 8);
    volatile uint64_t sink = 0;
    for (uint32_t r : touched) {
      for (size_t c = 0; c < view.cols.size(); ++c) {
        const VectorData& v = view.cols[c].data;
        uint64_t bits = v.type == TypeId::kFloat64
                            ? [&] {
                                double d = (*v.dbls)[r];
                                uint64_t b;
                                std::memcpy(&b, &d, 8);
                                return b;
                              }()
                            : static_cast<uint64_t>((*v.ints)[r]);
        std::memcpy(&row_buffer[c * 8], &bits, 8);
      }
      sink = sink + Fnv1a(row_buffer.data(), row_buffer.size());
      row_bytes += row_buffer.size();
    }
    (void)sink;
    (void)row_bytes;
  }

  // Copy-on-write publication: replacement columns are built aside and the
  // updated table is installed with a single Register() call, which swaps
  // the catalog's TablePtr atomically. A reader that resolved the old
  // pointer keeps a fully pre-update view; a reader that resolves after the
  // install sees every SET applied. The previous in-place path could expose
  // a mid-update mix (column A rewritten, column B not yet) to a concurrent
  // reader despite update_mu_, which only serializes writers.
  std::vector<ColumnPtr> new_cols = table->columns();
  size_t chunks_rewritten = 0;
  size_t chunks_created = 0;
  // MVCC undo payloads and WAL records are STAGED during the fallible
  // evaluate/rewrite loop and only applied in the publish stage below, so an
  // exception thrown by a later SET item (bad expression, injected fault)
  // leaves the version store, the WAL, and the catalog exactly as they were.
  struct StagedUndo {
    std::string column;
    bool is_double = false;
    std::vector<double> dbls;
    std::vector<int64_t> ints;
  };
  std::vector<StagedUndo> undo;
  std::vector<WriteAheadLog::Record> wal_recs;
  for (const auto& [col_name, expr] : stmt.set_items) {
    int idx = table->schema().FieldIndex(col_name);
    JB_CHECK_MSG(idx >= 0, "UPDATE: no column " << col_name);
    const ColumnPtr& col = table->column(static_cast<size_t>(idx));

    // Evaluate the full expression, then scatter at touched rows.
    VectorData new_vals = EvalExpr(*expr, view, ectx);

    ColumnPtr replacement;
    if (col->type() == TypeId::kFloat64) {
      std::vector<double> data = col->DecodeDoubles();
      std::vector<double> old_touched;
      std::vector<double> new_touched;
      old_touched.reserve(touched.size());
      new_touched.reserve(touched.size());
      for (uint32_t r : touched) {
        old_touched.push_back(data[r]);
        double nv = new_vals.type == TypeId::kFloat64
                        ? (*new_vals.dbls)[r]
                        : static_cast<double>((*new_vals.ints)[r]);
        new_touched.push_back(nv);
        data[r] = nv;
      }
      if (profile_.mvcc) {
        undo.push_back({col_name, /*is_double=*/true, std::move(old_touched),
                        {}});
      }
      if (profile_.wal) {
        wal_recs.push_back(WriteAheadLog::MakeDoubles(stmt.table, col_name,
                                                      touched, new_touched));
      }
      // Preserve the column's chunk layout so the rewrite is invisible to
      // chunk-aligned consumers (same boundaries, new segment identities).
      replacement = ColumnBuilder(TypeId::kFloat64)
                        .ChunkOffsets(col->chunk_offsets())
                        .AppendDoubles(std::move(data))
                        .Build();
    } else {
      std::vector<int64_t> data = col->DecodeInts();
      std::vector<int64_t> old_touched;
      std::vector<int64_t> new_touched;
      for (uint32_t r : touched) {
        old_touched.push_back(data[r]);
        int64_t nv = new_vals.type == TypeId::kFloat64
                         ? static_cast<int64_t>((*new_vals.dbls)[r])
                         : (*new_vals.ints)[r];
        new_touched.push_back(nv);
        data[r] = nv;
      }
      if (profile_.mvcc) {
        undo.push_back({col_name, /*is_double=*/false, {},
                        std::move(old_touched)});
      }
      if (profile_.wal) {
        wal_recs.push_back(WriteAheadLog::MakeInts(stmt.table, col_name,
                                                   touched, new_touched));
      }
      replacement =
          col->type() == TypeId::kString
              ? ColumnBuilder(TypeId::kString, col->dict())
                    .ChunkOffsets(col->chunk_offsets())
                    .AppendCodes(std::move(data))
                    .Build()
              : ColumnBuilder(TypeId::kInt64)
                    .ChunkOffsets(col->chunk_offsets())
                    .AppendInts(std::move(data))
                    .Build();
    }
    if (profile_.compression && !table->dataframe()) replacement->Encode();
    chunks_rewritten += col->num_chunks();
    chunks_created += replacement->num_chunks();
    new_cols[static_cast<size_t>(idx)] = std::move(replacement);
  }
  auto updated = std::make_shared<Table>(stmt.table, table->schema(),
                                         std::move(new_cols));
  updated->set_dataframe(table->dataframe());
  // Publish stage: all fallible computation is done. WAL first (LogBatch is
  // all-or-nothing and the only step that can still fail), then the MVCC
  // undo records, then the single atomic catalog swap.
  if (profile_.wal) wal_->LogBatch(std::move(wal_recs));
  if (profile_.mvcc) {
    uint64_t txn = versions_.BeginTxn();
    for (auto& u : undo) {
      if (u.is_double) {
        versions_.RecordDoubles(txn, stmt.table, u.column, touched,
                                std::move(u.dbls));
      } else {
        versions_.RecordInts(txn, stmt.table, u.column, touched,
                             std::move(u.ints));
      }
    }
  }
  catalog_.Register(updated);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    plan_stats_.chunks_rewritten += chunks_rewritten;
    plan_stats_.chunks_created += chunks_created;
  }
  return touched.size();
}

TablePtr Database::AppendRows(const std::string& name, const ExecTable& rows) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  TablePtr table = catalog_.Get(name);
  JB_CHECK_MSG(rows.cols.size() >= table->num_columns(),
               "AppendRows: batch has fewer columns than " << name);
  if (rows.rows == 0) return table;  // nothing to seal

  // Copy-on-write growth, same publication discipline as ExecuteUpdate: the
  // grown table is built aside and swapped in atomically, so readers see the
  // old or the new row count, never a ragged intermediate. The batch is
  // sealed into NEW chunks behind the existing segment list, which is reused
  // by pointer — the append is O(new rows) and chunks_rewritten stays 0.
  // Dataframe tables are the exception: interop scans share a single plain
  // payload, so they rebuild monolithically (and the rebuild is counted).
  const bool monolithic = table->dataframe();
  size_t chunks_created = 0;
  size_t chunks_rewritten = 0;
  std::vector<ColumnPtr> new_cols;
  new_cols.reserve(table->num_columns());
  // WAL records are staged and batch-appended in the publish stage, so a
  // schema mismatch or injected fault on a later column leaves no trace of
  // the aborted append in the log.
  std::vector<WriteAheadLog::Record> wal_recs;
  for (size_t i = 0; i < table->num_columns(); ++i) {
    const Field& field = table->schema().field(i);
    int src = rows.Find("", field.name);
    JB_CHECK_MSG(src >= 0, "AppendRows: batch lacks column " << field.name);
    const VectorData& v = rows.cols[static_cast<size_t>(src)].data;
    const ColumnPtr& col = table->column(i);

    // Build the batch values (per type), logging them to the WAL. Only the
    // incoming rows are touched here — existing segments are never decoded.
    ColumnBuilder batch_builder(
        field.type, field.type == TypeId::kString
                        ? std::make_shared<Dictionary>(*col->dict())
                        : nullptr);
    batch_builder.ChunkRows(monolithic ? 0 : profile_.chunk_rows);
    if (field.type == TypeId::kFloat64) {
      JB_CHECK_MSG(v.type == TypeId::kFloat64,
                   "AppendRows: type mismatch for " << field.name);
      if (profile_.wal) {
        wal_recs.push_back(
            WriteAheadLog::MakeDoubles(name, field.name, {}, *v.dbls));
      }
      batch_builder.AppendDoubles(
          std::vector<double>(v.dbls->begin(), v.dbls->end()));
    } else if (field.type == TypeId::kString) {
      JB_CHECK_MSG(v.type == TypeId::kString && v.dict,
                   "AppendRows: type mismatch for " << field.name);
      // The dictionary is shared with concurrent readers of the old table
      // and must not grow under them: copy it, then translate the incoming
      // codes against the copy. The copy is an append-only superset, so the
      // codes inside existing (reused) segments stay valid.
      Dictionary& dict = *batch_builder.dict();
      std::vector<int64_t> appended;
      appended.reserve(v.ints->size());
      for (int64_t code : *v.ints) {
        appended.push_back(code == kNullInt64 ? kNullInt64
                                              : dict.GetOrAdd(v.dict->At(code)));
      }
      if (profile_.wal) {
        wal_recs.push_back(
            WriteAheadLog::MakeInts(name, field.name, {}, appended));
      }
      batch_builder.AppendCodes(std::move(appended));
    } else {
      JB_CHECK_MSG(v.type == TypeId::kInt64,
                   "AppendRows: type mismatch for " << field.name);
      if (profile_.wal) {
        wal_recs.push_back(
            WriteAheadLog::MakeInts(name, field.name, {}, *v.ints));
      }
      batch_builder.AppendInts(
          std::vector<int64_t>(v.ints->begin(), v.ints->end()));
    }
    DictionaryPtr grown_dict = batch_builder.dict();
    ColumnPtr batch_col = batch_builder.Build();
    if (profile_.compression && !monolithic) batch_col->Encode();

    ColumnPtr grown;
    if (monolithic) {
      // Dataframe rebuild: one plain chunk spanning old + new rows.
      ColumnBuilder rebuilt(field.type, grown_dict);
      if (field.type == TypeId::kFloat64) {
        std::vector<double> data = col->DecodeDoubles();
        std::vector<double> tail = batch_col->DecodeDoubles();
        data.insert(data.end(), tail.begin(), tail.end());
        rebuilt.AppendDoubles(std::move(data));
      } else {
        std::vector<int64_t> data = col->DecodeInts();
        std::vector<int64_t> tail = batch_col->DecodeInts();
        data.insert(data.end(), tail.begin(), tail.end());
        if (field.type == TypeId::kString) {
          rebuilt.AppendCodes(std::move(data));
        } else {
          rebuilt.AppendInts(std::move(data));
        }
      }
      grown = rebuilt.Build();
      chunks_rewritten += col->num_chunks();
      chunks_created += grown->num_chunks();
    } else {
      // Seal: old segments reused by pointer, batch segments behind them.
      // A zero-row placeholder chunk (freshly created empty table) is
      // dropped rather than carried forward.
      std::vector<ChunkPtr> merged;
      merged.reserve(col->num_chunks() + batch_col->num_chunks());
      for (const auto& ch : col->chunks()) {
        if (ch->rows > 0) merged.push_back(ch);
      }
      for (const auto& ch : batch_col->chunks()) merged.push_back(ch);
      chunks_created += batch_col->num_chunks();
      grown = ColumnData::FromChunks(field.type, std::move(merged),
                                     field.type == TypeId::kString
                                         ? grown_dict
                                         : nullptr);
    }
    new_cols.push_back(std::move(grown));
  }
  auto grown_table =
      std::make_shared<Table>(name, table->schema(), std::move(new_cols));
  grown_table->set_dataframe(table->dataframe());
  // Publish stage: WAL first (the only remaining fallible step), then the
  // MVCC txn marker, then the atomic catalog swap.
  if (profile_.wal) wal_->LogBatch(std::move(wal_recs));
  if (profile_.mvcc) versions_.BeginTxn();
  catalog_.Register(grown_table);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    plan_stats_.chunks_created += chunks_created;
    plan_stats_.chunks_rewritten += chunks_rewritten;
  }
  return grown_table;
}

void Database::SwapColumns(const std::string& table1, const std::string& col1,
                           const std::string& table2,
                           const std::string& col2) {
  JB_CHECK_MSG(profile_.allow_column_swap,
               "profile '" << profile_.name
                           << "' does not support column swap (the paper's "
                              "engine patch, §5.4)");
  // Writer-writer serialization. The swap itself stays in-place by design
  // (§5.4: a pointer exchange is the whole point) and is only used by the
  // trainer on its private lifted copies — serving snapshots never cover
  // mid-train lifted tables.
  std::lock_guard<std::mutex> update_lock(update_mu_);
  TablePtr t1 = catalog_.Get(table1);
  TablePtr t2 = catalog_.Get(table2);
  t1->column(col1)->SwapPayload(*t2->column(col2));
}

std::vector<Database::QueryLogEntry> Database::QueryLog() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return query_log_;
}

void Database::ClearQueryLog() {
  std::lock_guard<std::mutex> lock(log_mu_);
  query_log_.clear();
}

double Database::TotalMsForTag(const std::string& tag) const {
  std::lock_guard<std::mutex> lock(log_mu_);
  double total = 0;
  for (const auto& e : query_log_) {
    if (e.tag == tag) total += e.ms;
  }
  return total;
}

size_t Database::CountForTag(const std::string& tag) const {
  std::lock_guard<std::mutex> lock(log_mu_);
  size_t n = 0;
  for (const auto& e : query_log_) {
    if (e.tag == tag) ++n;
  }
  return n;
}

plan::PlanStats Database::PlanStatsTotals() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return plan_stats_;
}

void Database::ClearPlanStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  plan_stats_ = plan::PlanStats();
}

}  // namespace exec
}  // namespace joinboost
