#include "exec/engine.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "sql/parser.h"
#include "sql/printer.h"
#include "util/hash.h"
#include "util/timer.h"

namespace joinboost {
namespace exec {

namespace {

/// Collect column references of an expression, skipping subquery interiors.
void CollectColumnRefs(const sql::ExprPtr& e,
                       std::vector<const sql::Expr*>* out) {
  if (!e) return;
  if (e->kind == sql::ExprKind::kColumnRef) {
    out->push_back(e.get());
    return;
  }
  if (e->kind == sql::ExprKind::kInSubquery) {
    for (const auto& a : e->args) CollectColumnRefs(a, out);
    return;  // subquery body resolves independently
  }
  for (const auto& a : e->args) CollectColumnRefs(a, out);
  for (const auto& a : e->partition_by) CollectColumnRefs(a, out);
  for (const auto& a : e->order_by) CollectColumnRefs(a, out);
}

/// True when every column ref of `e` resolves against `t`.
bool ResolvesAgainst(const sql::ExprPtr& e, const ExecTable& t) {
  std::vector<const sql::Expr*> refs;
  CollectColumnRefs(e, &refs);
  for (const auto* r : refs) {
    if (t.Find(r->table, r->column) < 0) return false;
  }
  return true;
}

void SplitConjuncts(const sql::ExprPtr& e, std::vector<sql::ExprPtr>* out) {
  if (!e) return;
  if (e->kind == sql::ExprKind::kBinary && e->op == "AND") {
    SplitConjuncts(e->args[0], out);
    SplitConjuncts(e->args[1], out);
    return;
  }
  out->push_back(e);
}

sql::ExprPtr CombineConjuncts(const std::vector<sql::ExprPtr>& cs) {
  if (cs.empty()) return nullptr;
  sql::ExprPtr acc = cs[0];
  for (size_t i = 1; i < cs.size(); ++i) {
    acc = sql::Expr::Binary("AND", acc, cs[i]);
  }
  return acc;
}

/// Register overrides for select-list subtrees that textually match a
/// GROUP BY expression, pointing them at the grouped key column.
void OverrideGroupRefs(const sql::ExprPtr& e,
                       const std::vector<std::string>& group_sql,
                       const std::vector<VectorData>& key_cols,
                       EvalContext* ctx) {
  if (!e) return;
  if (e->kind != sql::ExprKind::kColumnRef) {
    std::string printed = sql::ToSql(*e);
    for (size_t i = 0; i < group_sql.size(); ++i) {
      if (printed == group_sql[i]) {
        ctx->overrides.emplace(e.get(), key_cols[i]);
        return;
      }
    }
  }
  if (e->kind == sql::ExprKind::kAggCall) return;
  for (const auto& a : e->args) {
    OverrideGroupRefs(a, group_sql, key_cols, ctx);
  }
}

std::string OutputName(const sql::Expr& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.kind == sql::ExprKind::kColumnRef) return item.column;
  return "col" + std::to_string(index);
}

}  // namespace

Database::Database(EngineProfile profile) : profile_(std::move(profile)) {
  wal_ = std::make_unique<WriteAheadLog>(profile_.wal_to_disk);
  int threads = std::max(profile_.intra_query_threads, 1);
  unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) threads = std::min<int>(threads, static_cast<int>(hw) * 2);
  pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
}

Database::~Database() = default;

Database::Result Database::Execute(const std::string& sql_text,
                                   const std::string& tag) {
  Timer timer;
  sql::Statement stmt = sql::Parse(sql_text);
  Result res = ExecuteStatement(stmt);
  QueryLogEntry entry;
  entry.tag = tag;
  entry.sql = sql_text;
  entry.ms = timer.Millis();
  entry.rows_out = res.table ? res.table->rows : res.affected;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    query_log_.push_back(std::move(entry));
  }
  return res;
}

std::shared_ptr<ExecTable> Database::Query(const std::string& sql_text,
                                           const std::string& tag) {
  Result res = Execute(sql_text, tag);
  JB_CHECK_MSG(res.table != nullptr, "Query() used with non-SELECT statement");
  return res.table;
}

double Database::QueryScalarDouble(const std::string& sql_text,
                                   const std::string& tag) {
  auto t = Query(sql_text, tag);
  JB_CHECK_MSG(t->rows >= 1 && !t->cols.empty(),
               "scalar query returned empty result: " << sql_text);
  Value v = t->GetValue(0, 0);
  return v.AsDouble();
}

Database::Result Database::ExecuteStatement(const sql::Statement& stmt) {
  Result res;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      res.table = std::make_shared<ExecTable>(RunSelect(*stmt.select));
      break;
    case sql::Statement::Kind::kCreateTableAs:
      if (stmt.or_replace) catalog_.DropIfExists(stmt.table);
      ExecuteCreateTableAs(stmt);
      break;
    case sql::Statement::Kind::kUpdate:
      res.affected = ExecuteUpdate(stmt);
      break;
    case sql::Statement::Kind::kDropTable:
      if (stmt.if_exists) {
        catalog_.DropIfExists(stmt.table);
      } else {
        catalog_.Drop(stmt.table);
      }
      break;
  }
  return res;
}

ExecTable Database::RunSelect(const sql::SelectStmt& stmt) {
  OpContext octx;
  octx.row_mode = !profile_.columnar_exec;
  octx.threads = profile_.intra_query_threads;
  octx.pool = pool_.get();
  octx.interop_scan = profile_.dataframe_interop;

  EvalContext ectx;
  ectx.run_subquery = [this](const sql::SelectStmt& sub) {
    return RunSelect(sub);
  };

  // ---- FROM + pushdown + joins ----
  std::vector<sql::ExprPtr> conjuncts;
  SplitConjuncts(stmt.where, &conjuncts);
  std::vector<bool> consumed(conjuncts.size(), false);

  auto plan_ref = [&](const sql::TableRef& ref) -> ExecTable {
    ExecTable t;
    if (ref.kind == sql::TableRef::Kind::kBase) {
      TablePtr base = catalog_.Get(ref.name);
      t = ScanTable(*base, ref.Qualifier(), octx);
    } else {
      t = RunSelect(*ref.subquery);
      for (auto& c : t.cols) c.qualifier = ref.Qualifier();
    }
    // Push down single-table conjuncts.
    std::vector<sql::ExprPtr> pushed;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (!consumed[i] && ResolvesAgainst(conjuncts[i], t)) {
        pushed.push_back(conjuncts[i]);
        consumed[i] = true;
      }
    }
    if (!pushed.empty()) {
      t = FilterExec(t, *CombineConjuncts(pushed), ectx, octx);
    }
    return t;
  };

  ExecTable current;
  if (stmt.has_from) {
    current = plan_ref(stmt.from);
    for (const auto& jc : stmt.joins) {
      ExecTable right = plan_ref(jc.table);
      // Parse equi conditions.
      std::vector<sql::ExprPtr> jconj;
      SplitConjuncts(jc.condition, &jconj);
      std::vector<int> lkeys, rkeys;
      std::vector<sql::ExprPtr> residual;
      for (const auto& c : jconj) {
        bool handled = false;
        if (c->kind == sql::ExprKind::kBinary && c->op == "=" &&
            c->args[0]->kind == sql::ExprKind::kColumnRef &&
            c->args[1]->kind == sql::ExprKind::kColumnRef) {
          const auto& a = *c->args[0];
          const auto& b = *c->args[1];
          int la = current.Find(a.table, a.column);
          int rb = right.Find(b.table, b.column);
          if (la >= 0 && rb >= 0) {
            lkeys.push_back(la);
            rkeys.push_back(rb);
            handled = true;
          } else {
            int lb = current.Find(b.table, b.column);
            int ra = right.Find(a.table, a.column);
            if (lb >= 0 && ra >= 0) {
              lkeys.push_back(lb);
              rkeys.push_back(ra);
              handled = true;
            }
          }
        }
        if (!handled) residual.push_back(c);
      }
      JB_CHECK_MSG(!lkeys.empty(),
                   "join requires at least one equi condition: "
                       << sql::ToSql(*jc.condition));
      current = HashJoinExec(current, right, lkeys, rkeys, jc.type, octx);
      if (!residual.empty()) {
        JB_CHECK_MSG(jc.type == sql::JoinType::kInner,
                     "residual join predicates only on inner joins");
        current = FilterExec(current, *CombineConjuncts(residual), ectx, octx);
      }
    }
  } else {
    current.rows = 1;  // SELECT <exprs> without FROM
  }

  // Remaining WHERE conjuncts.
  std::vector<sql::ExprPtr> remaining;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (!consumed[i]) remaining.push_back(conjuncts[i]);
  }
  if (!remaining.empty()) {
    current = FilterExec(current, *CombineConjuncts(remaining), ectx, octx);
  }

  // ---- aggregation / windows ----
  std::vector<const sql::Expr*> agg_nodes;
  for (const auto& item : stmt.select_list) {
    CollectAggregates(item, &agg_nodes);
  }
  if (stmt.having) CollectAggregates(stmt.having, &agg_nodes);

  ExecTable projected;
  if (!stmt.group_by.empty() || !agg_nodes.empty()) {
    std::vector<AggSpec> specs;
    specs.reserve(agg_nodes.size());
    for (const auto* node : agg_nodes) {
      AggSpec spec;
      spec.node = node;
      spec.func = node->op;
      spec.arg = (node->args.empty() ||
                  node->args[0]->kind == sql::ExprKind::kStar)
                     ? nullptr
                     : node->args[0].get();
      specs.push_back(spec);
    }
    std::vector<VectorData> agg_outputs;
    ExecTable grouped = HashAggExec(current, stmt.group_by, specs, ectx, octx,
                                    &agg_outputs);
    // Final projection over the grouped table: aggregate nodes resolve via
    // overrides; textual matches of GROUP BY expressions resolve to keys.
    EvalContext pctx;
    pctx.run_subquery = ectx.run_subquery;
    for (size_t a = 0; a < specs.size(); ++a) {
      pctx.overrides.emplace(specs[a].node, agg_outputs[a]);
    }
    std::vector<std::string> group_sql;
    std::vector<VectorData> key_cols;
    for (size_t g = 0; g < stmt.group_by.size(); ++g) {
      group_sql.push_back(sql::ToSql(*stmt.group_by[g]));
      key_cols.push_back(grouped.cols[g].data);
    }
    for (const auto& item : stmt.select_list) {
      OverrideGroupRefs(item, group_sql, key_cols, &pctx);
    }
    if (stmt.having) {
      OverrideGroupRefs(stmt.having, group_sql, key_cols, &pctx);
      std::vector<uint32_t> sel =
          EvalPredicate(*stmt.having, grouped, pctx, /*row_mode=*/false);
      grouped = grouped.GatherRows(sel);
      for (auto& [node, vec] : pctx.overrides) {
        vec = vec.Gather(sel);
      }
    }
    projected.rows = grouped.rows;
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      const auto& item = stmt.select_list[i];
      JB_CHECK_MSG(item->kind != sql::ExprKind::kStar,
                   "SELECT * with GROUP BY is not supported");
      VectorData v = EvalExpr(*item, grouped, pctx);
      projected.cols.push_back({"", OutputName(*item, i), std::move(v)});
    }
  } else {
    // Windows (non-grouped).
    std::vector<const sql::Expr*> windows;
    for (const auto& item : stmt.select_list) CollectWindows(item, &windows);
    EvalContext pctx;
    pctx.run_subquery = ectx.run_subquery;
    for (const auto* w : windows) {
      pctx.overrides.emplace(w, WindowExec(current, *w, pctx));
    }
    projected.rows = current.rows;
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      const auto& item = stmt.select_list[i];
      if (item->kind == sql::ExprKind::kStar) {
        for (const auto& c : current.cols) projected.cols.push_back(c);
        continue;
      }
      VectorData v = EvalExpr(*item, current, pctx);
      projected.cols.push_back({"", OutputName(*item, i), std::move(v)});
    }
  }

  // ---- DISTINCT ----
  if (stmt.distinct && projected.rows > 0) {
    std::vector<int> cols;
    for (size_t i = 0; i < projected.cols.size(); ++i) {
      cols.push_back(static_cast<int>(i));
    }
    OpContext d_octx = octx;
    GroupResult gr = GroupRows(projected, cols, d_octx);
    projected = projected.GatherRows(gr.representatives);
  }

  // ---- ORDER BY / LIMIT (resolve against output columns) ----
  if (!stmt.order_by.empty()) {
    EvalContext octx2;
    octx2.run_subquery = ectx.run_subquery;
    projected = SortExec(projected, stmt.order_by, octx2);
  }
  if (stmt.limit >= 0) projected = LimitExec(projected, stmt.limit);
  return projected;
}

void Database::RegisterTable(const TablePtr& table) {
  catalog_.Register(table);
}

void Database::LoadTable(const TablePtr& table) {
  if (profile_.compression && !table->dataframe()) table->EncodeAll();
  catalog_.Register(table);
}

TablePtr Database::MaterializeResult(const std::string& name,
                                     const ExecTable& result,
                                     bool as_dataframe) {
  Schema schema;
  std::vector<ColumnPtr> cols;
  for (size_t i = 0; i < result.cols.size(); ++i) {
    const auto& c = result.cols[i];
    std::string col_name = c.name.empty() ? "col" + std::to_string(i) : c.name;
    schema.AddField({col_name, c.data.type});
    switch (c.data.type) {
      case TypeId::kInt64:
        cols.push_back(ColumnData::AdoptInts(c.data.ints));
        break;
      case TypeId::kFloat64:
        cols.push_back(ColumnData::AdoptDoubles(c.data.dbls));
        break;
      case TypeId::kString:
        cols.push_back(ColumnData::AdoptCodes(c.data.ints, c.data.dict));
        break;
    }
  }
  auto table = std::make_shared<Table>(name, std::move(schema), std::move(cols));
  table->set_dataframe(as_dataframe);
  if (profile_.compression && !as_dataframe) {
    table->EncodeAll();  // real compression cost on CREATE
  }
  if (profile_.wal && !as_dataframe) {
    // Log the created data (DBMSes WAL new tables too).
    for (size_t i = 0; i < table->num_columns(); ++i) {
      const auto& col = table->column(i);
      if (col->type() == TypeId::kFloat64) {
        wal_->LogDoubles(name, table->schema().field(i).name, {},
                         col->DecodeDoubles());
      } else {
        wal_->LogInts(name, table->schema().field(i).name, {},
                      col->DecodeInts());
      }
    }
  }
  catalog_.Register(table);
  return table;
}

void Database::ExecuteCreateTableAs(const sql::Statement& stmt) {
  ExecTable result = RunSelect(*stmt.select);
  MaterializeResult(stmt.table, result, /*as_dataframe=*/false);
}

size_t Database::ExecuteUpdate(const sql::Statement& stmt) {
  // Updates are serialized and single-threaded, as in DuckDB (§5.3.2).
  std::lock_guard<std::mutex> update_lock(update_mu_);
  TablePtr table = catalog_.Get(stmt.table);
  JB_CHECK_MSG(!table->dataframe() || profile_.allow_column_swap,
               "dataframe tables are updated via column swap");

  OpContext octx;
  octx.row_mode = !profile_.columnar_exec;
  octx.threads = 1;
  octx.pool = nullptr;
  EvalContext ectx;
  ectx.run_subquery = [this](const sql::SelectStmt& sub) {
    return RunSelect(sub);
  };

  // Decompress (cost) to evaluate and write.
  ExecTable view = ScanTable(*table, stmt.table, octx);

  std::vector<uint32_t> touched;
  if (stmt.where) {
    touched = EvalPredicate(*stmt.where, view, ectx, octx.row_mode);
  } else {
    touched.resize(view.rows);
    for (size_t i = 0; i < view.rows; ++i) touched[i] = static_cast<uint32_t>(i);
  }
  if (touched.empty()) return 0;

  uint64_t txn = 0;
  if (profile_.mvcc) txn = versions_.BeginTxn();

  // Row stores touch whole rows: emulate the row rewrite traffic.
  if (!profile_.columnar_exec) {
    size_t row_bytes = 0;
    std::vector<uint8_t> row_buffer(table->num_columns() * 8);
    volatile uint64_t sink = 0;
    for (uint32_t r : touched) {
      for (size_t c = 0; c < view.cols.size(); ++c) {
        const VectorData& v = view.cols[c].data;
        uint64_t bits = v.type == TypeId::kFloat64
                            ? [&] {
                                double d = (*v.dbls)[r];
                                uint64_t b;
                                std::memcpy(&b, &d, 8);
                                return b;
                              }()
                            : static_cast<uint64_t>((*v.ints)[r]);
        std::memcpy(&row_buffer[c * 8], &bits, 8);
      }
      sink = sink + Fnv1a(row_buffer.data(), row_buffer.size());
      row_bytes += row_buffer.size();
    }
    (void)sink;
    (void)row_bytes;
  }

  for (const auto& [col_name, expr] : stmt.set_items) {
    int idx = table->schema().FieldIndex(col_name);
    JB_CHECK_MSG(idx >= 0, "UPDATE: no column " << col_name);
    const ColumnPtr& col = table->column(static_cast<size_t>(idx));

    // Evaluate the full expression, then scatter at touched rows.
    VectorData new_vals = EvalExpr(*expr, view, ectx);

    if (col->type() == TypeId::kFloat64) {
      std::vector<double> data = col->DecodeDoubles();
      std::vector<double> old_touched;
      std::vector<double> new_touched;
      old_touched.reserve(touched.size());
      new_touched.reserve(touched.size());
      for (uint32_t r : touched) {
        old_touched.push_back(data[r]);
        double nv = new_vals.type == TypeId::kFloat64
                        ? (*new_vals.dbls)[r]
                        : static_cast<double>((*new_vals.ints)[r]);
        new_touched.push_back(nv);
        data[r] = nv;
      }
      if (profile_.mvcc) {
        versions_.RecordDoubles(txn, stmt.table, col_name, touched,
                                std::move(old_touched));
      }
      if (profile_.wal) {
        wal_->LogDoubles(stmt.table, col_name, touched, new_touched);
      }
      auto mutable_col = table->column(static_cast<size_t>(idx));
      mutable_col->ReplaceDoubles(std::move(data));
      if (profile_.compression && !table->dataframe()) mutable_col->Encode();
    } else {
      std::vector<int64_t> data = col->DecodeInts();
      std::vector<int64_t> old_touched;
      std::vector<int64_t> new_touched;
      for (uint32_t r : touched) {
        old_touched.push_back(data[r]);
        int64_t nv = new_vals.type == TypeId::kFloat64
                         ? static_cast<int64_t>((*new_vals.dbls)[r])
                         : (*new_vals.ints)[r];
        new_touched.push_back(nv);
        data[r] = nv;
      }
      if (profile_.mvcc) {
        versions_.RecordInts(txn, stmt.table, col_name, touched,
                             std::move(old_touched));
      }
      if (profile_.wal) {
        wal_->LogInts(stmt.table, col_name, touched, new_touched);
      }
      auto mutable_col = table->column(static_cast<size_t>(idx));
      mutable_col->ReplaceInts(std::move(data));
      if (profile_.compression && !table->dataframe()) mutable_col->Encode();
    }
  }
  return touched.size();
}

void Database::SwapColumns(const std::string& table1, const std::string& col1,
                           const std::string& table2,
                           const std::string& col2) {
  JB_CHECK_MSG(profile_.allow_column_swap,
               "profile '" << profile_.name
                           << "' does not support column swap (the paper's "
                              "engine patch, §5.4)");
  TablePtr t1 = catalog_.Get(table1);
  TablePtr t2 = catalog_.Get(table2);
  t1->column(col1)->SwapPayload(*t2->column(col2));
}

std::vector<Database::QueryLogEntry> Database::QueryLog() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return query_log_;
}

void Database::ClearQueryLog() {
  std::lock_guard<std::mutex> lock(log_mu_);
  query_log_.clear();
}

double Database::TotalMsForTag(const std::string& tag) const {
  std::lock_guard<std::mutex> lock(log_mu_);
  double total = 0;
  for (const auto& e : query_log_) {
    if (e.tag == tag) total += e.ms;
  }
  return total;
}

size_t Database::CountForTag(const std::string& tag) const {
  std::lock_guard<std::mutex> lock(log_mu_);
  size_t n = 0;
  for (const auto& e : query_log_) {
    if (e.tag == tag) ++n;
  }
  return n;
}

}  // namespace exec
}  // namespace joinboost
