#include "exec/compressed_scan.h"

#include <algorithm>
#include <memory>

#include "sql/expr_util.h"
#include "storage/compression.h"
#include "util/check.h"

namespace joinboost {
namespace exec {

namespace {

using compression::EncodedDoubles;
using compression::EncodedInts;
using compression::kBlockSize;

void SplitAnd(const sql::Expr* e, std::vector<const sql::Expr*>* out) {
  if (e->kind == sql::ExprKind::kBinary && e->op == "AND") {
    SplitAnd(e->args[0].get(), out);
    SplitAnd(e->args[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// Resolve a column ref against the scan's (qualifier, pruned subset) the
/// same way ExecTable::Find would on the materialized scan output. Returns
/// the subset position or -1.
int ResolveRef(const sql::Expr& ref, const Table& table,
               const std::string& qualifier, const std::vector<int>& cols) {
  if (!ref.table.empty() && ref.table != qualifier) return -1;
  for (size_t c = 0; c < cols.size(); ++c) {
    if (table.schema().field(static_cast<size_t>(cols[c])).name == ref.column) {
      return static_cast<int>(c);
    }
  }
  return -1;
}

/// A conjunct lowered into the code space of one encoded int/string column.
struct Lowered {
  enum Kind { kCmp, kInList, kIsNull };
  Kind kind = kCmp;
  size_t col = 0;          ///< subset position of the anchor column
  std::string op;          ///< kCmp comparison op, column-on-the-left form
  double lit = 0;          ///< kCmp literal, in the double space EvalComparison uses
  bool lit_null = false;   ///< kCmp vs NULL / absent dictionary string: selects nothing
  const InListSet* set = nullptr;  ///< kInList members (codes / int64)
  bool negated = false;            ///< NOT IN / IS NOT NULL
};

std::string MirrorOp(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return op;  // = and <> are symmetric
}

bool IsLiteralKind(sql::ExprKind k) {
  return k == sql::ExprKind::kIntLiteral || k == sql::ExprKind::kFloatLiteral ||
         k == sql::ExprKind::kStringLiteral || k == sql::ExprKind::kNullLiteral;
}

bool IsCmpOp(const std::string& op) {
  return op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

/// Translate one comparison/IN/IS NULL conjunct into code space. Only shapes
/// whose decoded semantics we can reproduce exactly are lowered: int columns
/// against numeric literals, string columns against string literals (codes
/// compare numerically once the literal is translated through the column's
/// dictionary — same-dictionary comparison semantics), and IS [NOT] NULL.
/// Everything else stays a residual conjunct. `enc` flags the subset columns
/// whose every chunk is int/string-encoded (anchor candidates).
bool LowerConjunct(const sql::Expr& e, const Table& table,
                   const std::string& qualifier, const std::vector<int>& cols,
                   const std::vector<uint8_t>& enc, EvalContext& ectx,
                   Lowered* out) {
  if (e.kind == sql::ExprKind::kIsNull) {
    if (e.args[0]->kind != sql::ExprKind::kColumnRef) return false;
    int c = ResolveRef(*e.args[0], table, qualifier, cols);
    if (c < 0 || !enc[static_cast<size_t>(c)]) return false;
    out->kind = Lowered::kIsNull;
    out->col = static_cast<size_t>(c);
    out->negated = e.negated;
    return true;
  }
  if (e.kind == sql::ExprKind::kInList) {
    if (e.args[0]->kind != sql::ExprKind::kColumnRef) return false;
    int c = ResolveRef(*e.args[0], table, qualifier, cols);
    if (c < 0 || !enc[static_cast<size_t>(c)]) return false;
    const auto& col = table.column(static_cast<size_t>(cols[c]));
    out->kind = Lowered::kInList;
    out->col = static_cast<size_t>(c);
    out->negated = e.negated;
    // Shares the (node, dictionary) translation cache with EvalExpr, so the
    // list translates at most once per dictionary per statement.
    out->set = &GetOrBuildInListSet(e, col->type(), col->dict().get(), ectx);
    return true;
  }
  if (e.kind != sql::ExprKind::kBinary || !IsCmpOp(e.op)) return false;
  const sql::Expr* ref = nullptr;
  const sql::Expr* lit = nullptr;
  std::string op = e.op;
  if (e.args[0]->kind == sql::ExprKind::kColumnRef &&
      IsLiteralKind(e.args[1]->kind)) {
    ref = e.args[0].get();
    lit = e.args[1].get();
  } else if (e.args[1]->kind == sql::ExprKind::kColumnRef &&
             IsLiteralKind(e.args[0]->kind)) {
    ref = e.args[1].get();
    lit = e.args[0].get();
    op = MirrorOp(op);
  } else {
    return false;
  }
  int c = ResolveRef(*ref, table, qualifier, cols);
  if (c < 0 || !enc[static_cast<size_t>(c)]) return false;
  const auto& col = table.column(static_cast<size_t>(cols[c]));
  out->kind = Lowered::kCmp;
  out->col = static_cast<size_t>(c);
  out->op = op;
  if (lit->kind == sql::ExprKind::kNullLiteral) {
    out->lit_null = true;
    return true;
  }
  if (col->type() == TypeId::kString) {
    // Mixed string/number comparisons keep the decoded path's quirks; only
    // string literals lower, via a single dictionary probe. An absent
    // literal behaves like a NULL broadcast: the conjunct selects nothing —
    // the whole-column skip this enables needs no decoding at all.
    if (lit->kind != sql::ExprKind::kStringLiteral) return false;
    int64_t code = col->dict()->Find(lit->str_val);
    if (code == kNullInt64) {
      out->lit_null = true;
    } else {
      out->lit = static_cast<double>(code);
    }
    return true;
  }
  if (lit->kind == sql::ExprKind::kStringLiteral) return false;
  out->lit = lit->kind == sql::ExprKind::kFloatLiteral
                 ? lit->float_val
                 : static_cast<double>(lit->int_val);
  return true;
}

/// Exact per-value predicate — the same math EvalComparison/EvalExpr apply
/// to decoded values (null never selected except via IS NULL / NOT IN).
bool EvalOne(const Lowered& p, int64_t v) {
  switch (p.kind) {
    case Lowered::kCmp: {
      if (p.lit_null || v == kNullInt64) return false;
      double x = static_cast<double>(v);
      double y = p.lit;
      if (p.op == "=") return x == y;
      if (p.op == "<>") return x != y;
      if (p.op == "<") return x < y;
      if (p.op == "<=") return x <= y;
      if (p.op == ">") return x > y;
      return x >= y;
    }
    case Lowered::kInList: {
      bool found = v != kNullInt64 &&
                   p.set->set->Contains(static_cast<uint64_t>(v));
      return found != p.negated;
    }
    case Lowered::kIsNull:
      return (v == kNullInt64) != p.negated;
  }
  return false;
}

enum class Verdict { kNone, kAll, kPartial };

/// Zone-map classification of one block. `reference` is the block minimum,
/// so a block contains NULLs (the int64 minimum sentinel) iff reference is
/// the sentinel — which also means [reference, max] always bounds every
/// value. int64→double conversion is monotone, so the double-space bounds
/// [dmin, dmax] are valid for the double-space comparisons EvalComparison
/// performs. None-match tests stay conservative with NULLs present (NULL
/// rows never satisfy a comparison); all-match additionally requires a
/// NULL-free block.
Verdict Classify(const Lowered& p, const EncodedInts::Block& blk) {
  if (blk.reference == blk.max) {
    // Constant block (bit width 0), including the all-NULL case: one exact
    // evaluation decides every row without touching packed words.
    return EvalOne(p, blk.reference) ? Verdict::kAll : Verdict::kNone;
  }
  const bool has_null = blk.reference == kNullInt64;
  switch (p.kind) {
    case Lowered::kCmp: {
      if (p.lit_null) return Verdict::kNone;
      double dmin = static_cast<double>(blk.reference);
      double dmax = static_cast<double>(blk.max);
      double y = p.lit;
      if (p.op == "=") {
        if (y < dmin || y > dmax) return Verdict::kNone;
      } else if (p.op == "<>") {
        if (!has_null && (y < dmin || y > dmax)) return Verdict::kAll;
      } else if (p.op == "<") {
        if (dmin >= y) return Verdict::kNone;
        if (!has_null && dmax < y) return Verdict::kAll;
      } else if (p.op == "<=") {
        if (dmin > y) return Verdict::kNone;
        if (!has_null && dmax <= y) return Verdict::kAll;
      } else if (p.op == ">") {
        if (dmax <= y) return Verdict::kNone;
        if (!has_null && dmin > y) return Verdict::kAll;
      } else {  // ">="
        if (dmax < y) return Verdict::kNone;
        if (!has_null && dmin >= y) return Verdict::kAll;
      }
      return Verdict::kPartial;
    }
    case Lowered::kInList: {
      // No member can fall inside the block's value range => no row is
      // found. Plain IN selects nothing; NOT IN selects everything (NULL
      // probes included — NOT IN keeps them).
      bool overlap = p.set->has_bounds && p.set->max_value >= blk.reference &&
                     p.set->min_value <= blk.max;
      if (!overlap) return p.negated ? Verdict::kAll : Verdict::kNone;
      return Verdict::kPartial;
    }
    case Lowered::kIsNull:
      if (!has_null) {
        return p.negated ? Verdict::kAll : Verdict::kNone;
      }
      return Verdict::kPartial;
  }
  return Verdict::kPartial;
}

}  // namespace

CompressedScanResult TryCompressedScan(const Table& table,
                                       const std::string& qualifier,
                                       const std::vector<int>& cols,
                                       const sql::Expr& filter,
                                       EvalContext& ectx,
                                       const OpContext& ctx) {
  CompressedScanResult res;
  if (ctx.row_mode || !ectx.overrides.empty()) return res;
  const size_t rows = table.num_rows();
  const size_t n_cols = cols.size();
  if (rows == 0 || n_cols == 0) return res;

  // Encoded columns participate via a *shared* global block layout derived
  // from their chunk boundaries: block b covers rows
  // [layout[b].row_begin, row_begin + count) and belongs to chunk
  // layout[b].chunk. A single-chunk column reproduces the flat
  // b * kBlockSize layout exactly. Columns whose chunk boundaries disagree
  // (possible after a column swap) make the scan bail to the
  // decode-everything path — correctness never depends on a shared layout.
  struct BlockSpan {
    size_t row_begin = 0;
    uint32_t count = 0;
    uint32_t chunk = 0;
  };
  std::vector<uint8_t> enc_int(n_cols, 0);
  std::vector<uint8_t> enc_dbl(n_cols, 0);
  const std::vector<size_t>* ref_offsets = nullptr;
  bool any_encoded = false;
  for (size_t c = 0; c < n_cols; ++c) {
    const auto& col = table.column(static_cast<size_t>(cols[c]));
    if (!col->encoded()) continue;
    any_encoded = true;
    for (const auto& ch : col->chunks()) {
      // Mixed plain/encoded chunk lists (possible only through exotic swap
      // sequences) are not worth a third code path here.
      if (!ch->encoded) return res;
    }
    if (ref_offsets == nullptr) {
      ref_offsets = &col->chunk_offsets();
    } else if (col->chunk_offsets() != *ref_offsets) {
      return res;
    }
    if (col->type() == TypeId::kFloat64) {
      enc_dbl[c] = 1;
    } else {
      enc_int[c] = 1;
    }
  }
  if (!any_encoded) return res;

  std::vector<BlockSpan> layout;
  // Per-chunk [first, last) global block ids, for chunk-level accounting.
  std::vector<std::pair<size_t, size_t>> chunk_blocks;
  chunk_blocks.reserve(ref_offsets->size() - 1);
  for (size_t ci = 0; ci + 1 < ref_offsets->size(); ++ci) {
    const size_t cbegin = (*ref_offsets)[ci];
    const size_t crows = (*ref_offsets)[ci + 1] - cbegin;
    const size_t first = layout.size();
    for (size_t o = 0; o < crows; o += kBlockSize) {
      layout.push_back({cbegin + o,
                        static_cast<uint32_t>(std::min(kBlockSize, crows - o)),
                        static_cast<uint32_t>(ci)});
    }
    chunk_blocks.emplace_back(first, layout.size());
  }
  // Per-column block pointer arrays in global block order.
  std::vector<std::vector<const EncodedInts::Block*>> iblk(n_cols);
  std::vector<std::vector<const EncodedDoubles::Block*>> dblk(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    if (!enc_int[c] && !enc_dbl[c]) continue;
    const auto& col = table.column(static_cast<size_t>(cols[c]));
    auto& iv = iblk[c];
    auto& dv = dblk[c];
    for (const auto& ch : col->chunks()) {
      if (enc_int[c]) {
        for (const auto& b : ch->enc_ints->blocks) iv.push_back(&b);
      } else {
        for (const auto& b : ch->enc_dbls->blocks) dv.push_back(&b);
      }
    }
    const size_t got = enc_int[c] ? iv.size() : dv.size();
    if (got != layout.size()) return res;  // defensive: layout disagreement
  }
  const auto& enc = enc_int;  // anchor-candidate flags for LowerConjunct

  std::vector<const sql::Expr*> conjuncts;
  SplitAnd(&filter, &conjuncts);
  std::vector<Lowered> lowered;
  std::vector<const sql::Expr*> residual;
  for (const sql::Expr* cj : conjuncts) {
    Lowered p;
    if (LowerConjunct(*cj, table, qualifier, cols, enc, ectx, &p)) {
      lowered.push_back(std::move(p));
    } else {
      residual.push_back(cj);
    }
  }
  // Without a lowerable conjunct there is no block skipping to gain; the
  // decode-everything path is simpler and no slower.
  if (lowered.empty()) return res;
  // Residual conjuncts are evaluated against a sub-table holding only the
  // columns they reference; bail if any ref cannot resolve inside the
  // subset (the planner prunes to filter-covering subsets, so this is a
  // belt-and-braces check).
  for (const sql::Expr* cj : residual) {
    std::vector<const sql::Expr*> refs;
    sql::CollectColumnRefs(*cj, &refs);
    for (const sql::Expr* r : refs) {
      if (ResolveRef(*r, table, qualifier, cols) < 0) return res;
    }
  }

  const size_t n_blocks = layout.size();

  // ---- Phase A: lowered conjuncts over zone maps + packed blocks ----
  std::vector<uint8_t> mask(rows, 1);
  std::vector<uint8_t> block_alive(n_blocks, 1);
  // Per-(column, block) touch map: the source of every counter, dependent
  // only on predicate outcomes — never on morsel or thread layout.
  std::vector<std::vector<uint8_t>> touched(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    if (enc_int[c] || enc_dbl[c]) touched[c].assign(n_blocks, 0);
  }

  util::QueryGuard* guard = ctx.guard;
  for (const Lowered& p : lowered) {
    const EncodedInts::Block* const* pblocks = iblk[p.col].data();
    uint8_t* touch = touched[p.col].data();
    auto process = [&](size_t b) {
      // Per-block guard granularity: a cancel/deadline lands within one
      // block of the trigger even inside the fused scan.
      if (guard != nullptr) guard->Check();
      if (!block_alive[b]) return;  // already dead: no decode, stays skipped
      const EncodedInts::Block& blk = *pblocks[b];
      const size_t base = layout[b].row_begin;
      Verdict v = Classify(p, blk);
      if (v == Verdict::kAll) return;
      if (v == Verdict::kNone) {
        std::fill(mask.begin() + static_cast<ptrdiff_t>(base),
                  mask.begin() + static_cast<ptrdiff_t>(base + blk.count), 0);
        block_alive[b] = 0;
        return;
      }
      touch[b] = 1;
      int64_t buf[kBlockSize];
      compression::UnpackBlock(blk, buf);
      uint8_t* m = mask.data() + base;
      uint8_t alive = 0;
      for (uint32_t i = 0; i < blk.count; ++i) {
        if (m[i] != 0 && !EvalOne(p, buf[i])) m[i] = 0;
        alive |= m[i];
      }
      if (alive == 0) block_alive[b] = 0;
    };
    // Blocks are independent within one conjunct (disjoint mask/touch
    // ranges), so this parallelizes without ordering effects.
    if (ctx.CanParallel(rows) && n_blocks > 1) {
      ctx.pool->ParallelFor(n_blocks, process);
    } else {
      for (size_t b = 0; b < n_blocks; ++b) process(b);
    }
  }
  if (guard != nullptr && ctx.stats != nullptr) {
    // One check per (conjunct, block), independent of scheduling.
    ctx.stats->guard_checks += lowered.size() * n_blocks;
  }

  std::vector<uint32_t> sel;
  sel.reserve(rows / 4);
  for (size_t b = 0; b < n_blocks; ++b) {
    if (!block_alive[b]) continue;
    const size_t base = layout[b].row_begin;
    const size_t cnt = layout[b].count;
    for (size_t i = 0; i < cnt; ++i) {
      if (mask[base + i]) sel.push_back(static_cast<uint32_t>(base + i));
    }
  }

  // Late materialization of column `c` at the (ascending) surviving rows:
  // encoded payloads unpack one block at a time, only for blocks that still
  // hold survivors (a monotone cursor over the global layout maps rows to
  // blocks); plain payloads gather through their own chunk list.
  auto materialize_at = [&](size_t c,
                            const std::vector<uint32_t>& at) -> VectorData {
    // The late-materialization buffer is a tracked allocation: 8 bytes per
    // surviving row, charged against the query's byte budget.
    if (guard != nullptr) guard->ChargeBytes(at.size() * 8);
    const auto& col = table.column(static_cast<size_t>(cols[c]));
    VectorData v;
    v.type = col->type();
    v.dict = col->dict();
    if (enc_dbl[c]) {
      std::vector<double> out;
      out.reserve(at.size());
      std::vector<double> buf(kBlockSize);
      size_t bi = 0;
      size_t cur = n_blocks;  // sentinel: no block decoded yet
      for (uint32_t r : at) {
        while (r >= layout[bi].row_begin + layout[bi].count) ++bi;
        if (bi != cur) {
          compression::DecodeDoublesBlock(*dblk[c][bi], buf.data());
          touched[c][bi] = 1;
          cur = bi;
        }
        out.push_back(buf[r - layout[bi].row_begin]);
      }
      v.dbls = std::make_shared<const std::vector<double>>(std::move(out));
    } else if (enc_int[c]) {
      std::vector<int64_t> out;
      out.reserve(at.size());
      int64_t buf[kBlockSize];
      size_t bi = 0;
      size_t cur = n_blocks;
      for (uint32_t r : at) {
        while (r >= layout[bi].row_begin + layout[bi].count) ++bi;
        if (bi != cur) {
          compression::UnpackBlock(*iblk[c][bi], buf);
          touched[c][bi] = 1;
          cur = bi;
        }
        out.push_back(buf[r - layout[bi].row_begin]);
      }
      v.ints = std::make_shared<const std::vector<int64_t>>(std::move(out));
    } else if (col->type() == TypeId::kFloat64) {
      // Plain column (every chunk plain — partially encoded columns bailed
      // above): gather through the chunk list with a monotone cursor.
      const auto& offs = col->chunk_offsets();
      std::vector<double> out;
      out.reserve(at.size());
      size_t ci = 0;
      const double* src = nullptr;
      size_t cbegin = 0, cend = 0;
      for (uint32_t r : at) {
        if (r >= cend) {
          while (r >= offs[ci + 1]) ++ci;
          src = col->chunk(ci)->dbls->data();
          cbegin = offs[ci];
          cend = offs[ci + 1];
        }
        out.push_back(src[r - cbegin]);
      }
      v.dbls = std::make_shared<const std::vector<double>>(std::move(out));
    } else {
      const auto& offs = col->chunk_offsets();
      std::vector<int64_t> out;
      out.reserve(at.size());
      size_t ci = 0;
      const int64_t* src = nullptr;
      size_t cbegin = 0, cend = 0;
      for (uint32_t r : at) {
        if (r >= cend) {
          while (r >= offs[ci + 1]) ++ci;
          src = col->chunk(ci)->ints->data();
          cbegin = offs[ci];
          cend = offs[ci + 1];
        }
        out.push_back(src[r - cbegin]);
      }
      v.ints = std::make_shared<const std::vector<int64_t>>(std::move(out));
    }
    return v;
  };

  // ---- Phase B: residual conjuncts on progressively-filtered survivors ----
  // Every expression form EvalPredicate covers is per-row independent (and
  // subquery/scalar results are cached in the shared EvalContext), so
  // evaluating on the gathered survivor subset selects exactly the rows the
  // full-table evaluation would.
  for (const sql::Expr* cj : residual) {
    if (sel.empty()) break;
    std::vector<const sql::Expr*> refs;
    sql::CollectColumnRefs(*cj, &refs);
    ExecTable sub;
    sub.rows = sel.size();
    for (size_t c = 0; c < n_cols; ++c) {
      const std::string& name =
          table.schema().field(static_cast<size_t>(cols[c])).name;
      bool used = false;
      for (const sql::Expr* r : refs) {
        if (r->column == name &&
            (r->table.empty() || r->table == qualifier)) {
          used = true;
          break;
        }
      }
      if (!used) continue;
      sub.cols.push_back({qualifier, name, materialize_at(c, sel)});
    }
    std::vector<uint32_t> keep = EvalPredicate(*cj, sub, ectx, false);
    std::vector<uint32_t> next;
    next.reserve(keep.size());
    for (uint32_t k : keep) next.push_back(sel[k]);
    sel = std::move(next);
  }

  // ---- Phase C: materialize the requested columns at the final rows ----
  res.table.rows = sel.size();
  res.table.cols.resize(n_cols);
  auto emit = [&](size_t c) {
    res.table.cols[c] = {
        qualifier, table.schema().field(static_cast<size_t>(cols[c])).name,
        materialize_at(c, sel)};
  };
  if (ctx.CanParallel(rows) && n_cols > 1) {
    ctx.pool->ParallelFor(n_cols, emit);
  } else {
    for (size_t c = 0; c < n_cols; ++c) emit(c);
  }

  for (size_t c = 0; c < n_cols; ++c) {
    if (touched[c].empty()) continue;  // plain column: nothing to account
    size_t t_blocks = 0, t_cells = 0;
    for (size_t b = 0; b < n_blocks; ++b) {
      if (touched[c][b]) {
        ++t_blocks;
        t_cells += layout[b].count;
      }
    }
    if (t_blocks > 0) ++res.cols_decompressed;
    res.cells_decompressed += t_cells;
    res.cells_avoided += rows - t_cells;
    res.blocks_skipped += n_blocks - t_blocks;
  }
  // A chunk counts as pruned when zone maps alone eliminated every one of
  // its blocks — no column ever unpacked a block in it. Like the block
  // counters this depends only on predicate outcomes, never on threads.
  for (const auto& [first, last] : chunk_blocks) {
    if (first == last) continue;  // empty chunk: nothing was skipped
    bool pruned = true;
    for (size_t b = first; b < last && pruned; ++b) {
      if (block_alive[b]) pruned = false;
      for (size_t c = 0; c < n_cols && pruned; ++c) {
        if (!touched[c].empty() && touched[c][b]) pruned = false;
      }
    }
    if (pruned) ++res.chunks_pruned;
  }
  res.used = true;
  return res;
}

}  // namespace exec
}  // namespace joinboost
