#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/types.h"
#include "util/check.h"

namespace joinboost {
namespace exec {

/// A read-only column vector flowing between operators. Payloads are shared
/// so scans of uncompressed columns are zero-copy.
struct VectorData {
  TypeId type = TypeId::kInt64;
  std::shared_ptr<const std::vector<int64_t>> ints;  ///< int64 / dict codes
  std::shared_ptr<const std::vector<double>> dbls;
  DictionaryPtr dict;
  /// Optional compressed sidecar attached by compressed-execution scans:
  /// value-identical to `ints` (same length, full-table alignment), one
  /// slice per storage chunk. Hash kernels walk the packed words instead of
  /// the decoded vector when present. Dropped by Gather — a row subset no
  /// longer lines up with the blocks.
  std::shared_ptr<const EncodedView> enc;

  size_t size() const {
    if (type == TypeId::kFloat64) return dbls ? dbls->size() : 0;
    return ints ? ints->size() : 0;
  }

  const std::vector<int64_t>& Ints() const {
    JB_CHECK(type != TypeId::kFloat64 && ints);
    return *ints;
  }
  const std::vector<double>& Dbls() const {
    JB_CHECK(type == TypeId::kFloat64 && dbls);
    return *dbls;
  }

  static VectorData FromInts(std::vector<int64_t> v) {
    VectorData out;
    out.type = TypeId::kInt64;
    out.ints = std::make_shared<const std::vector<int64_t>>(std::move(v));
    return out;
  }
  static VectorData FromDoubles(std::vector<double> v) {
    VectorData out;
    out.type = TypeId::kFloat64;
    out.dbls = std::make_shared<const std::vector<double>>(std::move(v));
    return out;
  }
  static VectorData FromCodes(std::vector<int64_t> codes, DictionaryPtr dict) {
    VectorData out;
    out.type = TypeId::kString;
    out.ints = std::make_shared<const std::vector<int64_t>>(std::move(codes));
    out.dict = std::move(dict);
    return out;
  }

  Value GetValue(size_t row) const {
    switch (type) {
      case TypeId::kInt64:
        return Value::Int((*ints)[row]);
      case TypeId::kFloat64:
        return Value::Double((*dbls)[row]);
      case TypeId::kString: {
        int64_t code = (*ints)[row];
        if (code == kNullInt64) return Value::Null(TypeId::kString);
        Value v = Value::Str(dict->At(code));
        v.i = code;
        return v;
      }
    }
    return Value::Null(type);
  }

  /// Materialize a subset (or permutation) of rows.
  VectorData Gather(const std::vector<uint32_t>& idx) const {
    VectorData out;
    out.type = type;
    out.dict = dict;
    if (type == TypeId::kFloat64) {
      std::vector<double> v;
      v.reserve(idx.size());
      const auto& src = *dbls;
      for (uint32_t i : idx) v.push_back(src[i]);
      out.dbls = std::make_shared<const std::vector<double>>(std::move(v));
    } else {
      std::vector<int64_t> v;
      v.reserve(idx.size());
      const auto& src = *ints;
      for (uint32_t i : idx) v.push_back(src[i]);
      out.ints = std::make_shared<const std::vector<int64_t>>(std::move(v));
    }
    return out;
  }

  bool IsNull(size_t row) const {
    if (type == TypeId::kFloat64) return IsNullFloat64((*dbls)[row]);
    return (*ints)[row] == kNullInt64;
  }
};

/// One named output column; `qualifier` is the table alias it came from.
struct ExecColumn {
  std::string qualifier;
  std::string name;
  VectorData data;
};

/// Materialized intermediate relation.
struct ExecTable {
  std::vector<ExecColumn> cols;
  size_t rows = 0;

  /// Resolve a (possibly qualified) column. Returns -1 when absent.
  /// Unqualified lookups take the first match (generated SQL qualifies
  /// wherever ambiguity is possible).
  int Find(const std::string& qualifier, const std::string& name) const {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (!qualifier.empty() && cols[i].qualifier != qualifier) continue;
      if (cols[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  int FindRequired(const std::string& qualifier, const std::string& name) const {
    int idx = Find(qualifier, name);
    JB_CHECK_MSG(idx >= 0, "column not found: "
                               << (qualifier.empty() ? "" : qualifier + ".")
                               << name);
    return idx;
  }

  const VectorData& Col(size_t i) const { return cols.at(i).data; }

  ExecTable GatherRows(const std::vector<uint32_t>& idx) const {
    ExecTable out;
    out.rows = idx.size();
    out.cols.reserve(cols.size());
    for (const auto& c : cols) {
      out.cols.push_back({c.qualifier, c.name, c.data.Gather(idx)});
    }
    return out;
  }

  Value GetValue(size_t row, size_t col) const {
    return cols.at(col).data.GetValue(row);
  }
};

}  // namespace exec
}  // namespace joinboost
