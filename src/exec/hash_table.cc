#include "exec/hash_table.h"

#include "util/fault_injection.h"

namespace joinboost {
namespace exec {
namespace hash {

void FlatHashTable::Init(size_t expected) {
  capacity_ = SlotCountFor(expected);
  mask_ = capacity_ - 1;
  tags_.assign(capacity_, kEmptyTag);
  hashes_.resize(capacity_);
  heads_.resize(capacity_);
  tails_.resize(capacity_);
  used_ = 0;
}

void FlatHashTable::Grow() {
  // Chaos point: a growth that fails before any slot moves models a directory
  // allocation dying under memory pressure; the table is still intact.
  util::fault::Maybe("hash-grow");
  // Chains live outside the table, so growth is a pure re-placement of the
  // occupied slots into a doubled directory.
  std::vector<uint8_t> old_tags = std::move(tags_);
  std::vector<uint64_t> old_hashes = std::move(hashes_);
  std::vector<uint32_t> old_heads = std::move(heads_);
  std::vector<uint32_t> old_tails = std::move(tails_);
  const size_t old_capacity = capacity_;

  capacity_ *= 2;
  mask_ = capacity_ - 1;
  tags_.assign(capacity_, kEmptyTag);
  hashes_.resize(capacity_);
  heads_.resize(capacity_);
  tails_.resize(capacity_);

  for (size_t s = 0; s < old_capacity; ++s) {
    if (old_tags[s] == kEmptyTag) continue;
    uint64_t h = old_hashes[s];
    size_t i = Index(h);
    while (tags_[i] != kEmptyTag) i = (i + 1) & mask_;
    tags_[i] = old_tags[s];
    hashes_[i] = h;
    heads_[i] = old_heads[s];
    tails_[i] = old_tails[s];
  }
}

}  // namespace hash
}  // namespace exec
}  // namespace joinboost
