#include "exec/operators.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "sql/printer.h"
#include "util/hash.h"

namespace joinboost {
namespace exec {

namespace {

uint64_t HashCell(const VectorData& v, size_t row) {
  if (v.type == TypeId::kFloat64) {
    double d = (*v.dbls)[row];
    int64_t bits;
    std::memcpy(&bits, &d, 8);
    return SplitMix64(static_cast<uint64_t>(bits));
  }
  return SplitMix64(static_cast<uint64_t>((*v.ints)[row]));
}

uint64_t HashRow(const std::vector<const VectorData*>& cols, size_t row) {
  uint64_t h = 0xABCDEF0123456789ULL;
  for (const auto* c : cols) h = HashCombine(h, HashCell(*c, row));
  return h;
}

/// Row-mode hashing goes through Value materialization — the per-tuple
/// overhead that makes row engines slower on analytics.
uint64_t HashRowSlow(const std::vector<const VectorData*>& cols, size_t row) {
  uint64_t h = 0xABCDEF0123456789ULL;
  for (const auto* c : cols) {
    Value v = c->GetValue(row);
    uint64_t cell = v.type == TypeId::kFloat64
                        ? [&] {
                            int64_t bits;
                            std::memcpy(&bits, &v.d, 8);
                            return static_cast<uint64_t>(bits);
                          }()
                        : static_cast<uint64_t>(v.i);
    h = HashCombine(h, SplitMix64(cell));
  }
  return h;
}

bool CellsEqual(const VectorData& a, size_t ra, const VectorData& b,
                size_t rb) {
  if (a.type == TypeId::kFloat64 || b.type == TypeId::kFloat64) {
    double x = a.type == TypeId::kFloat64
                   ? (*a.dbls)[ra]
                   : static_cast<double>((*a.ints)[ra]);
    double y = b.type == TypeId::kFloat64
                   ? (*b.dbls)[rb]
                   : static_cast<double>((*b.ints)[rb]);
    int64_t bx, by;
    std::memcpy(&bx, &x, 8);
    std::memcpy(&by, &y, 8);
    return bx == by;  // bit equality: NaN groups with NaN
  }
  return (*a.ints)[ra] == (*b.ints)[rb];
}

bool RowsEqual(const std::vector<const VectorData*>& a, size_t ra,
               const std::vector<const VectorData*>& b, size_t rb) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (!CellsEqual(*a[i], ra, *b[i], rb)) return false;
  }
  return true;
}

/// Gather with a null mask: idx entries equal to UINT32_MAX produce NULLs.
VectorData GatherWithNulls(const VectorData& v,
                           const std::vector<uint32_t>& idx) {
  VectorData out;
  out.type = v.type;
  out.dict = v.dict;
  if (v.type == TypeId::kFloat64) {
    std::vector<double> data;
    data.reserve(idx.size());
    for (uint32_t i : idx) {
      data.push_back(i == UINT32_MAX ? NullFloat64() : (*v.dbls)[i]);
    }
    out.dbls = std::make_shared<const std::vector<double>>(std::move(data));
  } else {
    std::vector<int64_t> data;
    data.reserve(idx.size());
    for (uint32_t i : idx) {
      data.push_back(i == UINT32_MAX ? kNullInt64 : (*v.ints)[i]);
    }
    out.ints = std::make_shared<const std::vector<int64_t>>(std::move(data));
  }
  return out;
}

}  // namespace

ExecTable ScanTable(const Table& table, const std::string& qualifier,
                    const OpContext& ctx) {
  return ScanTable(table, qualifier, ctx, ScanSpec{});
}

ExecTable ScanTable(const Table& table, const std::string& qualifier,
                    const OpContext& ctx, const ScanSpec& spec) {
  ExecTable out;
  out.rows = table.num_rows();
  const size_t total_cols = table.num_columns();
  std::vector<int> all_cols;
  if (spec.columns == nullptr) {
    all_cols.reserve(total_cols);
    for (size_t i = 0; i < total_cols; ++i) {
      all_cols.push_back(static_cast<int>(i));
    }
  }
  const std::vector<int>& cols = spec.columns ? *spec.columns : all_cols;
  out.cols.reserve(cols.size());
  const bool pay_interop = ctx.interop_scan && table.dataframe();
  size_t decompressed = 0;
  for (int ci : cols) {
    const size_t i = static_cast<size_t>(ci);
    const auto& col = table.column(i);
    VectorData v;
    v.type = col->type();
    v.dict = col->dict();
    if (col->encoded()) {
      // Real decompression cost, like any compressed columnar engine —
      // but only for the columns the plan actually references.
      ++decompressed;
      if (col->type() == TypeId::kFloat64) {
        v.dbls = col->ScanDoubles();
      } else {
        v.ints = col->ScanInts();
      }
    } else if (pay_interop) {
      // DP mode: the dataframe scan converts values element-by-element with
      // null checks, like DuckDB's Pandas scan operator.
      if (col->type() == TypeId::kFloat64) {
        const auto& src = *col->PlainDoubles();
        std::vector<double> dst(src.size());
        for (size_t r = 0; r < src.size(); ++r) {
          double x = src[r];
          dst[r] = IsNullFloat64(x) ? NullFloat64() : x;
        }
        v.dbls = std::make_shared<const std::vector<double>>(std::move(dst));
      } else {
        const auto& src = *col->PlainInts();
        std::vector<int64_t> dst(src.size());
        for (size_t r = 0; r < src.size(); ++r) {
          int64_t x = src[r];
          dst[r] = x == kNullInt64 ? kNullInt64 : x;
        }
        v.ints = std::make_shared<const std::vector<int64_t>>(std::move(dst));
      }
    } else {
      // Zero-copy share of the plain payload.
      if (col->type() == TypeId::kFloat64) {
        v.dbls = col->PlainDoubles();
      } else {
        v.ints = col->PlainInts();
      }
    }
    out.cols.push_back({qualifier, table.schema().field(i).name, std::move(v)});
  }
  if (spec.filter != nullptr) {
    // Fused scan-filter: evaluate the pushed predicate over the (pruned)
    // scan output and gather survivors in one pass.
    JB_CHECK_MSG(spec.ectx != nullptr, "fused scan filter needs an EvalContext");
    std::vector<uint32_t> sel =
        EvalPredicate(*spec.filter, out, *spec.ectx, ctx.row_mode);
    out = out.GatherRows(sel);
  }
  if (ctx.stats != nullptr) {
    plan::PlanStats& s = *ctx.stats;
    ++s.scans;
    s.rows_scan_input += table.num_rows();
    s.rows_scan_output += out.rows;
    s.cols_scanned += cols.size();
    s.cols_pruned += total_cols - cols.size();
    s.cols_decompressed += decompressed;
    s.cells_decompressed += decompressed * table.num_rows();
  }
  return out;
}

ExecTable FilterExec(const ExecTable& input, const sql::Expr& pred,
                     EvalContext& ectx, const OpContext& ctx) {
  std::vector<uint32_t> sel = EvalPredicate(pred, input, ectx, ctx.row_mode);
  return input.GatherRows(sel);
}

ExecTable ConcatColumns(ExecTable left, ExecTable right) {
  JB_CHECK(left.rows == right.rows);
  for (auto& c : right.cols) left.cols.push_back(std::move(c));
  return left;
}

ExecTable HashJoinExec(const ExecTable& left, const ExecTable& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys, sql::JoinType type,
                       const OpContext& ctx) {
  JB_CHECK(left_keys.size() == right_keys.size() && !left_keys.empty());
  std::vector<const VectorData*> lk, rk;
  for (int k : left_keys) lk.push_back(&left.cols[static_cast<size_t>(k)].data);
  for (int k : right_keys) {
    rk.push_back(&right.cols[static_cast<size_t>(k)].data);
  }
  for (size_t i = 0; i < lk.size(); ++i) {
    JB_CHECK_MSG(!(lk[i]->type == TypeId::kString &&
                   rk[i]->type == TypeId::kString && lk[i]->dict &&
                   rk[i]->dict && lk[i]->dict != rk[i]->dict),
                 "join on string columns with different dictionaries is not "
                 "supported; re-encode first");
  }

  // Build on the right input (messages / dimension tables are small).
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  buckets.reserve(right.rows * 2);
  for (size_t r = 0; r < right.rows; ++r) {
    uint64_t h = ctx.row_mode ? HashRowSlow(rk, r) : HashRow(rk, r);
    buckets[h].push_back(static_cast<uint32_t>(r));
  }

  const bool is_semi = type == sql::JoinType::kSemi;
  const bool is_anti = type == sql::JoinType::kAnti;
  const bool is_left = type == sql::JoinType::kLeft;

  auto probe_range = [&](size_t begin, size_t end,
                         std::vector<uint32_t>* lidx,
                         std::vector<uint32_t>* ridx) {
    for (size_t l = begin; l < end; ++l) {
      uint64_t h = ctx.row_mode ? HashRowSlow(lk, l) : HashRow(lk, l);
      auto it = buckets.find(h);
      bool matched = false;
      if (it != buckets.end()) {
        for (uint32_t r : it->second) {
          if (RowsEqual(lk, l, rk, r)) {
            matched = true;
            if (is_semi || is_anti) break;
            lidx->push_back(static_cast<uint32_t>(l));
            ridx->push_back(r);
          }
        }
      }
      if ((is_semi && matched) || (is_anti && !matched)) {
        lidx->push_back(static_cast<uint32_t>(l));
      } else if (is_left && !matched) {
        lidx->push_back(static_cast<uint32_t>(l));
        ridx->push_back(UINT32_MAX);
      }
    }
  };

  std::vector<uint32_t> lidx, ridx;
  const size_t kParallelCutoff = 65536;
  if (ctx.pool && ctx.threads > 1 && left.rows >= kParallelCutoff &&
      !ctx.row_mode) {
    size_t t = static_cast<size_t>(ctx.threads);
    std::vector<std::vector<uint32_t>> lparts(t), rparts(t);
    size_t chunk = (left.rows + t - 1) / t;
    ctx.pool->ParallelFor(t, [&](size_t i) {
      size_t begin = i * chunk;
      size_t end = std::min(left.rows, begin + chunk);
      if (begin < end) probe_range(begin, end, &lparts[i], &rparts[i]);
    });
    for (size_t i = 0; i < t; ++i) {
      lidx.insert(lidx.end(), lparts[i].begin(), lparts[i].end());
      ridx.insert(ridx.end(), rparts[i].begin(), rparts[i].end());
    }
  } else {
    probe_range(0, left.rows, &lidx, &ridx);
  }

  if (is_semi || is_anti) return left.GatherRows(lidx);

  ExecTable out;
  out.rows = lidx.size();
  out.cols.reserve(left.cols.size() + right.cols.size());
  for (const auto& c : left.cols) {
    out.cols.push_back({c.qualifier, c.name, c.data.Gather(lidx)});
  }
  for (const auto& c : right.cols) {
    out.cols.push_back({c.qualifier, c.name, GatherWithNulls(c.data, ridx)});
  }
  return out;
}

GroupResult GroupRows(const ExecTable& input, const std::vector<int>& key_cols,
                      const OpContext& ctx) {
  GroupResult res;
  res.group_ids.resize(input.rows);
  std::vector<const VectorData*> keys;
  for (int k : key_cols) keys.push_back(&input.cols[static_cast<size_t>(k)].data);
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  for (size_t r = 0; r < input.rows; ++r) {
    uint64_t h = ctx.row_mode ? HashRowSlow(keys, r) : HashRow(keys, r);
    auto& bucket = buckets[h];
    uint32_t gid = UINT32_MAX;
    for (uint32_t g : bucket) {
      if (RowsEqual(keys, r, keys, res.representatives[g])) {
        gid = g;
        break;
      }
    }
    if (gid == UINT32_MAX) {
      gid = static_cast<uint32_t>(res.representatives.size());
      res.representatives.push_back(static_cast<uint32_t>(r));
      bucket.push_back(gid);
    }
    res.group_ids[r] = gid;
  }
  res.num_groups = res.representatives.size();
  return res;
}

namespace {

struct AggAccum {
  std::vector<double> dsum;
  std::vector<int64_t> isum;
  std::vector<int64_t> count;
  std::vector<double> dmin;
  std::vector<double> dmax;
  bool int_sum = false;
};

/// Aggregate one partition of rows into per-group accumulators.
void Accumulate(const std::vector<AggSpec>& aggs,
                const std::vector<VectorData>& arg_vals,
                const std::vector<uint32_t>& group_ids,
                const std::vector<uint32_t>& rows, size_t num_groups,
                std::vector<AggAccum>* accums) {
  accums->resize(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    AggAccum& acc = (*accums)[a];
    const std::string& f = aggs[a].func;
    acc.count.assign(num_groups, 0);
    if (f == "MIN" || f == "MAX") {
      acc.dmin.assign(num_groups, std::numeric_limits<double>::infinity());
      acc.dmax.assign(num_groups, -std::numeric_limits<double>::infinity());
    }
    if (f == "SUM" || f == "AVG") {
      const VectorData& v = arg_vals[a];
      acc.int_sum = f == "SUM" && v.type != TypeId::kFloat64;
      if (acc.int_sum) {
        acc.isum.assign(num_groups, 0);
      } else {
        acc.dsum.assign(num_groups, 0.0);
      }
    }
    if (f == "COUNT" && aggs[a].arg == nullptr) {
      for (uint32_t r : rows) ++acc.count[group_ids[r]];
      continue;
    }
    const VectorData& v = arg_vals[a];
    for (uint32_t r : rows) {
      if (v.IsNull(r)) continue;
      uint32_t g = group_ids[r];
      ++acc.count[g];
      if (f == "SUM" || f == "AVG") {
        if (acc.int_sum) {
          acc.isum[g] += (*v.ints)[r];
        } else {
          acc.dsum[g] += v.type == TypeId::kFloat64
                             ? (*v.dbls)[r]
                             : static_cast<double>((*v.ints)[r]);
        }
      } else if (f == "MIN" || f == "MAX") {
        double x = v.type == TypeId::kFloat64
                       ? (*v.dbls)[r]
                       : static_cast<double>((*v.ints)[r]);
        acc.dmin[g] = std::min(acc.dmin[g], x);
        acc.dmax[g] = std::max(acc.dmax[g], x);
      }
    }
  }
}

VectorData FinishAgg(const AggSpec& spec, const AggAccum& acc,
                     const VectorData* arg, size_t num_groups) {
  const std::string& f = spec.func;
  if (f == "COUNT") {
    std::vector<int64_t> out(acc.count.begin(), acc.count.end());
    return VectorData::FromInts(std::move(out));
  }
  if (f == "SUM") {
    if (acc.int_sum) {
      std::vector<int64_t> out(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        out[g] = acc.count[g] == 0 ? kNullInt64 : acc.isum[g];
      }
      return VectorData::FromInts(std::move(out));
    }
    std::vector<double> out(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      out[g] = acc.count[g] == 0 ? NullFloat64() : acc.dsum[g];
    }
    return VectorData::FromDoubles(std::move(out));
  }
  if (f == "AVG") {
    std::vector<double> out(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      out[g] = acc.count[g] == 0
                   ? NullFloat64()
                   : acc.dsum[g] / static_cast<double>(acc.count[g]);
    }
    return VectorData::FromDoubles(std::move(out));
  }
  if (f == "MIN" || f == "MAX") {
    const auto& src = f == "MIN" ? acc.dmin : acc.dmax;
    if (arg && arg->type != TypeId::kFloat64) {
      std::vector<int64_t> out(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        out[g] = acc.count[g] == 0 ? kNullInt64
                                   : static_cast<int64_t>(src[g]);
      }
      return VectorData::FromInts(std::move(out));
    }
    std::vector<double> out(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      out[g] = acc.count[g] == 0 ? NullFloat64() : src[g];
    }
    return VectorData::FromDoubles(std::move(out));
  }
  JB_THROW("unknown aggregate " << f);
}

}  // namespace

ExecTable HashAggExec(const ExecTable& input,
                      const std::vector<sql::ExprPtr>& group_by,
                      const std::vector<AggSpec>& aggs, EvalContext& ectx,
                      const OpContext& ctx,
                      std::vector<VectorData>* agg_outputs) {
  // 1. Evaluate key expressions and aggregate arguments.
  std::vector<VectorData> key_vals;
  key_vals.reserve(group_by.size());
  for (const auto& g : group_by) key_vals.push_back(EvalExpr(*g, input, ectx));
  std::vector<VectorData> arg_vals(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].arg != nullptr) {
      arg_vals[a] = EvalExpr(*aggs[a].arg, input, ectx);
    }
  }

  // 2. Group.
  ExecTable key_table;
  key_table.rows = input.rows;
  for (size_t i = 0; i < key_vals.size(); ++i) {
    const sql::Expr& g = *group_by[i];
    std::string qual = g.kind == sql::ExprKind::kColumnRef ? g.table : "";
    std::string name = g.kind == sql::ExprKind::kColumnRef
                           ? g.column
                           : ("__group" + std::to_string(i));
    key_table.cols.push_back({qual, name, key_vals[i]});
  }

  GroupResult groups;
  size_t num_groups = 0;
  std::vector<uint32_t> all_rows(input.rows);
  for (size_t i = 0; i < input.rows; ++i) all_rows[i] = static_cast<uint32_t>(i);

  std::vector<AggAccum> accums;
  if (group_by.empty()) {
    // Global aggregation: one group.
    num_groups = 1;
    groups.group_ids.assign(input.rows, 0);
    groups.num_groups = 1;
    Accumulate(aggs, arg_vals, groups.group_ids, all_rows, 1, &accums);
  } else {
    std::vector<int> key_cols;
    for (size_t i = 0; i < key_vals.size(); ++i) {
      key_cols.push_back(static_cast<int>(i));
    }
    const size_t kParallelCutoff = 65536;
    if (ctx.pool && ctx.threads > 1 && input.rows >= kParallelCutoff &&
        !ctx.row_mode) {
      // Radix-partition by key hash, then group+aggregate partitions in
      // parallel and concatenate (intra-query parallelism, §5.5.3).
      size_t P = static_cast<size_t>(ctx.threads);
      std::vector<const VectorData*> keys;
      for (const auto& kv : key_vals) keys.push_back(&kv);
      std::vector<uint64_t> hashes(input.rows);
      size_t chunk = (input.rows + P - 1) / P;
      ctx.pool->ParallelFor(P, [&](size_t t) {
        size_t begin = t * chunk, end = std::min(input.rows, begin + chunk);
        for (size_t r = begin; r < end; ++r) hashes[r] = HashRow(keys, r);
      });
      std::vector<std::vector<uint32_t>> parts(P);
      for (size_t r = 0; r < input.rows; ++r) {
        parts[hashes[r] % P].push_back(static_cast<uint32_t>(r));
      }
      struct PartResult {
        std::vector<uint32_t> reps;
        std::vector<AggAccum> accums;
      };
      std::vector<PartResult> results(P);
      ctx.pool->ParallelFor(P, [&](size_t p) {
        const auto& rows = parts[p];
        std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
        std::vector<uint32_t> reps;
        std::vector<uint32_t> gids(rows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
          uint32_t r = rows[i];
          auto& bucket = buckets[hashes[r]];
          uint32_t gid = UINT32_MAX;
          for (uint32_t g : bucket) {
            if (RowsEqual(keys, r, keys, reps[g])) {
              gid = g;
              break;
            }
          }
          if (gid == UINT32_MAX) {
            gid = static_cast<uint32_t>(reps.size());
            reps.push_back(r);
            bucket.push_back(gid);
          }
          gids[i] = gid;
        }
        // Remap per-partition group ids onto partition-local accumulators.
        std::vector<uint32_t> full_gids(input.rows, 0);
        for (size_t i = 0; i < rows.size(); ++i) full_gids[rows[i]] = gids[i];
        Accumulate(aggs, arg_vals, full_gids, rows, reps.size(),
                   &results[p].accums);
        results[p].reps = std::move(reps);
      });
      // Concatenate partitions.
      std::vector<uint32_t> reps;
      for (auto& pr : results) {
        reps.insert(reps.end(), pr.reps.begin(), pr.reps.end());
      }
      num_groups = reps.size();
      accums.resize(aggs.size());
      for (size_t a = 0; a < aggs.size(); ++a) {
        AggAccum& dst = accums[a];
        dst.int_sum = aggs[a].func == "SUM" &&
                      (aggs[a].arg == nullptr ||
                       arg_vals[a].type != TypeId::kFloat64);
        size_t offset = 0;
        dst.count.assign(num_groups, 0);
        dst.dsum.assign(num_groups, 0.0);
        dst.isum.assign(num_groups, 0);
        dst.dmin.assign(num_groups, std::numeric_limits<double>::infinity());
        dst.dmax.assign(num_groups, -std::numeric_limits<double>::infinity());
        for (auto& pr : results) {
          const AggAccum& src = pr.accums[a];
          for (size_t g = 0; g < pr.reps.size(); ++g) {
            dst.count[offset + g] = src.count[g];
            if (!src.dsum.empty()) dst.dsum[offset + g] = src.dsum[g];
            if (!src.isum.empty()) dst.isum[offset + g] = src.isum[g];
            if (!src.dmin.empty()) dst.dmin[offset + g] = src.dmin[g];
            if (!src.dmax.empty()) dst.dmax[offset + g] = src.dmax[g];
          }
          offset += pr.reps.size();
        }
      }
      groups.representatives = std::move(reps);
      groups.num_groups = num_groups;
    } else {
      groups = GroupRows(key_table, key_cols, ctx);
      num_groups = groups.num_groups;
      Accumulate(aggs, arg_vals, groups.group_ids, all_rows, num_groups,
                 &accums);
    }
  }

  // 3. Build output: key columns (representative rows) + aggregate columns.
  ExecTable out;
  out.rows = num_groups;
  if (!group_by.empty()) {
    for (size_t i = 0; i < key_table.cols.size(); ++i) {
      out.cols.push_back(
          {key_table.cols[i].qualifier, key_table.cols[i].name,
           key_table.cols[i].data.Gather(groups.representatives)});
    }
  }
  agg_outputs->clear();
  for (size_t a = 0; a < aggs.size(); ++a) {
    VectorData v = FinishAgg(aggs[a], accums[a],
                             aggs[a].arg ? &arg_vals[a] : nullptr, num_groups);
    agg_outputs->push_back(v);
    out.cols.push_back({"", "__agg" + std::to_string(a), std::move(v)});
  }
  return out;
}

ExecTable SortExec(const ExecTable& input,
                   const std::vector<sql::OrderItem>& order,
                   EvalContext& ectx) {
  std::vector<VectorData> keys;
  keys.reserve(order.size());
  for (const auto& o : order) keys.push_back(EvalExpr(*o.expr, input, ectx));
  std::vector<uint32_t> idx(input.rows);
  for (size_t i = 0; i < input.rows; ++i) idx[i] = static_cast<uint32_t>(i);
  std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const VectorData& v = keys[k];
      int cmp = 0;
      if (v.type == TypeId::kString && v.dict) {
        int64_t ca = (*v.ints)[a];
        int64_t cb = (*v.ints)[b];
        if (ca == kNullInt64 || cb == kNullInt64) {
          cmp = (ca == cb) ? 0 : (ca == kNullInt64 ? 1 : -1);  // nulls last
        } else {
          cmp = v.dict->At(ca).compare(v.dict->At(cb));
          cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
        }
      } else {
        double x = v.type == TypeId::kFloat64
                       ? (*v.dbls)[a]
                       : static_cast<double>((*v.ints)[a]);
        double y = v.type == TypeId::kFloat64
                       ? (*v.dbls)[b]
                       : static_cast<double>((*v.ints)[b]);
        bool nx = v.IsNull(a), ny = v.IsNull(b);
        if (nx || ny) {
          cmp = (nx == ny) ? 0 : (nx ? 1 : -1);
        } else {
          cmp = x < y ? -1 : (x > y ? 1 : 0);
        }
      }
      if (cmp != 0) return order[k].desc ? cmp > 0 : cmp < 0;
    }
    return false;
  });
  return input.GatherRows(idx);
}

ExecTable LimitExec(const ExecTable& input, int64_t limit) {
  if (limit < 0 || static_cast<size_t>(limit) >= input.rows) return input;
  std::vector<uint32_t> idx(static_cast<size_t>(limit));
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);
  return input.GatherRows(idx);
}

VectorData WindowExec(const ExecTable& input, const sql::Expr& win,
                      EvalContext& ectx) {
  JB_CHECK_MSG(win.op == "SUM" || win.op == "COUNT" || win.op == "AVG",
               "window function " << win.op << " not supported");
  // Partition.
  std::vector<uint32_t> part_ids(input.rows, 0);
  size_t num_parts = 1;
  if (!win.partition_by.empty()) {
    ExecTable pt;
    pt.rows = input.rows;
    std::vector<int> cols;
    for (size_t i = 0; i < win.partition_by.size(); ++i) {
      pt.cols.push_back(
          {"", "p" + std::to_string(i), EvalExpr(*win.partition_by[i], input, ectx)});
      cols.push_back(static_cast<int>(i));
    }
    OpContext octx;
    GroupResult gr = GroupRows(pt, cols, octx);
    part_ids = std::move(gr.group_ids);
    num_parts = gr.num_groups;
  }
  // Order.
  std::vector<VectorData> order_keys;
  for (const auto& o : win.order_by) {
    order_keys.push_back(EvalExpr(*o, input, ectx));
  }
  std::vector<uint32_t> idx(input.rows);
  for (size_t i = 0; i < input.rows; ++i) idx[i] = static_cast<uint32_t>(i);
  std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    if (part_ids[a] != part_ids[b]) return part_ids[a] < part_ids[b];
    for (const auto& v : order_keys) {
      double x = v.type == TypeId::kFloat64 ? (*v.dbls)[a]
                                            : static_cast<double>((*v.ints)[a]);
      double y = v.type == TypeId::kFloat64 ? (*v.dbls)[b]
                                            : static_cast<double>((*v.ints)[b]);
      if (x < y) return true;
      if (x > y) return false;
    }
    return false;
  });
  // Argument values.
  VectorData arg;
  bool count_star = win.op == "COUNT" &&
                    (win.args.empty() || win.args[0]->kind == sql::ExprKind::kStar);
  if (!count_star) arg = EvalExpr(*win.args[0], input, ectx);
  // Cumulative aggregate in sorted order within partitions.
  std::vector<double> out(input.rows, 0.0);
  (void)num_parts;
  double run = 0.0;
  int64_t cnt = 0;
  for (size_t i = 0; i < idx.size(); ++i) {
    uint32_t r = idx[i];
    if (i == 0 || part_ids[r] != part_ids[idx[i - 1]]) {
      run = 0.0;
      cnt = 0;
    }
    if (count_star) {
      ++cnt;
      out[r] = static_cast<double>(cnt);
    } else {
      if (!arg.IsNull(r)) {
        run += arg.type == TypeId::kFloat64
                   ? (*arg.dbls)[r]
                   : static_cast<double>((*arg.ints)[r]);
        ++cnt;
      }
      out[r] = win.op == "AVG" && cnt > 0 ? run / static_cast<double>(cnt) : run;
    }
  }
  return VectorData::FromDoubles(std::move(out));
}

}  // namespace exec
}  // namespace joinboost
