#include "exec/operators.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "exec/compressed_scan.h"
#include "exec/hash_table.h"
#include "exec/morsel.h"
#include "sql/printer.h"
#include "util/hash.h"

namespace joinboost {
namespace exec {

namespace {

/// Canonical hash-memory accounting for PlanStats: the footprint of a
/// single-table build over `rows` chained rows with `keys` distinct-hash
/// upper bound. Deliberately partition-count independent (the parallel
/// build's per-partition directories can sum to a different power-of-two
/// total), so the counter is bit-stable across thread counts and machines.
size_t CanonicalHashBytes(size_t rows, size_t keys) {
  return rows * sizeof(uint32_t) + hash::SlotCountFor(keys) * hash::kSlotBytes;
}

/// Charge a tracked allocation (hash table, materialization buffer) against
/// the query's byte budget. The amounts mirror the hash_bytes /
/// decompression accounting, so budget charges are as thread-count
/// deterministic as the stats counters they shadow.
void ChargeTracked(const OpContext& ctx, size_t bytes) {
  if (ctx.guard != nullptr) ctx.guard->ChargeBytes(bytes);
}

/// Operator output-seal check point: one cooperative guard check as an
/// operator seals its output table (counted deterministically — one per
/// sealed operator, independent of scheduling).
void GuardSeal(const OpContext& ctx) {
  if (ctx.guard == nullptr) return;
  ctx.guard->Check();
  if (ctx.stats != nullptr) ++ctx.stats->guard_checks;
}

bool CellsEqual(const VectorData& a, size_t ra, const VectorData& b,
                size_t rb) {
  if (a.type == TypeId::kFloat64 || b.type == TypeId::kFloat64) {
    double x = a.type == TypeId::kFloat64
                   ? (*a.dbls)[ra]
                   : static_cast<double>((*a.ints)[ra]);
    double y = b.type == TypeId::kFloat64
                   ? (*b.dbls)[rb]
                   : static_cast<double>((*b.ints)[rb]);
    int64_t bx, by;
    std::memcpy(&bx, &x, 8);
    std::memcpy(&by, &y, 8);
    return bx == by;  // bit equality: NaN groups with NaN
  }
  return (*a.ints)[ra] == (*b.ints)[rb];
}

bool RowsEqual(const std::vector<const VectorData*>& a, size_t ra,
               const std::vector<const VectorData*>& b, size_t rb) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (!CellsEqual(*a[i], ra, *b[i], rb)) return false;
  }
  return true;
}

}  // namespace

ExecTable ScanTable(const Table& table, const std::string& qualifier,
                    const OpContext& ctx) {
  return ScanTable(table, qualifier, ctx, ScanSpec{});
}

ExecTable ScanTable(const Table& table, const std::string& qualifier,
                    const OpContext& ctx, const ScanSpec& spec) {
  ExecTable out;
  out.rows = table.num_rows();
  const size_t total_cols = table.num_columns();
  std::vector<int> all_cols;
  if (spec.columns == nullptr) {
    all_cols.reserve(total_cols);
    for (size_t i = 0; i < total_cols; ++i) {
      all_cols.push_back(static_cast<int>(i));
    }
  }
  const std::vector<int>& cols = spec.columns ? *spec.columns : all_cols;
  const bool pay_interop = ctx.interop_scan && table.dataframe();
  if (ctx.compressed_exec && !ctx.row_mode && spec.filter != nullptr &&
      !table.dataframe()) {
    // Compressed execution: evaluate the fused filter directly on encoded
    // payloads and late-materialize only the touched blocks. Falls through
    // to the decode-everything path when the filter/column mix is not
    // coverable; when it runs, the selected rows and output cells are
    // bit-identical to that path.
    JB_CHECK_MSG(spec.ectx != nullptr, "fused scan filter needs an EvalContext");
    CompressedScanResult cres = TryCompressedScan(table, qualifier, cols,
                                                  *spec.filter, *spec.ectx, ctx);
    if (cres.used) {
      GuardSeal(ctx);
      if (ctx.stats != nullptr) {
        plan::PlanStats& s = *ctx.stats;
        ++s.scans;
        s.rows_scan_input += table.num_rows();
        s.rows_scan_output += cres.table.rows;
        s.cols_scanned += cols.size();
        s.cols_pruned += total_cols - cols.size();
        s.cols_decompressed += cres.cols_decompressed;
        s.cells_decompressed += cres.cells_decompressed;
        s.cells_decompress_avoided += cres.cells_avoided;
        s.blocks_skipped += cres.blocks_skipped;
        s.chunks_pruned += cres.chunks_pruned;
      }
      return std::move(cres.table);
    }
  }
  out.cols.resize(cols.size());
  std::vector<uint8_t> col_decompressed(cols.size(), 0);
  auto materialize = [&](size_t c) {
    const size_t i = static_cast<size_t>(cols[c]);
    const auto& col = table.column(i);
    VectorData v;
    v.type = col->type();
    v.dict = col->dict();
    if (col->encoded() || col->num_chunks() > 1) {
      // Real decompression / chunk-stitching cost, like any compressed
      // columnar engine — but only for the columns the plan actually
      // references. Ranges align to segment boundaries, so every range
      // decodes from exactly one chunk; any partition of the rows writes
      // the same bytes, keeping results chunking- and thread-oblivious.
      col_decompressed[c] = col->encoded() ? 1 : 0;
      // The decode buffer below is a tracked allocation: 8 bytes per row
      // regardless of element type.
      ChargeTracked(ctx, col->size() * 8);
      const auto ranges =
          morsel::ChunkAlignedRanges(ctx, col->chunk_offsets(), col->size());
      if (col->type() == TypeId::kFloat64) {
        auto data = std::make_shared<std::vector<double>>(col->size());
        morsel::ForEachRange(ctx, col->size(), ranges,
                             [&](size_t, size_t begin, size_t end) {
                               col->MaterializeDoubles(begin, end,
                                                       data->data() + begin);
                             });
        v.dbls = std::move(data);
      } else {
        auto data = std::make_shared<std::vector<int64_t>>(col->size());
        morsel::ForEachRange(ctx, col->size(), ranges,
                             [&](size_t, size_t begin, size_t end) {
                               col->MaterializeInts(begin, end,
                                                    data->data() + begin);
                             });
        v.ints = std::move(data);
        if (ctx.compressed_exec && !ctx.row_mode) {
          // Compressed sidecar: downstream hash kernels mix dictionary ids
          // and frame-of-reference deltas straight from the packed payload.
          v.enc = col->EncodedIntsView();
        }
      }
    } else if (pay_interop) {
      // DP mode: the dataframe scan converts values element-by-element with
      // null checks, like DuckDB's Pandas scan operator.
      if (col->type() == TypeId::kFloat64) {
        const auto& src = *col->PlainDoubles();
        std::vector<double> dst(src.size());
        for (size_t r = 0; r < src.size(); ++r) {
          double x = src[r];
          dst[r] = IsNullFloat64(x) ? NullFloat64() : x;
        }
        v.dbls = std::make_shared<const std::vector<double>>(std::move(dst));
      } else {
        const auto& src = *col->PlainInts();
        std::vector<int64_t> dst(src.size());
        for (size_t r = 0; r < src.size(); ++r) {
          int64_t x = src[r];
          dst[r] = x == kNullInt64 ? kNullInt64 : x;
        }
        v.ints = std::make_shared<const std::vector<int64_t>>(std::move(dst));
      }
    } else {
      // Zero-copy share of the plain single-chunk payload.
      if (col->type() == TypeId::kFloat64) {
        v.dbls = col->PlainDoubles();
      } else {
        v.ints = col->PlainInts();
      }
    }
    out.cols[c] = {qualifier, table.schema().field(i).name, std::move(v)};
  };
  // Decoding columns dispatch their own chunk-aligned ranges on the pool, so
  // the column loop stays serial except for the interop conversion (which is
  // element-wise per column and embarrassingly parallel across columns);
  // zero-copy shares are too cheap to be worth dispatching. The two dispatch
  // shapes are mutually exclusive so pool ParallelFor calls never nest.
  bool any_ranged = false;
  for (size_t c = 0; c < cols.size() && !any_ranged; ++c) {
    const auto& col = table.column(static_cast<size_t>(cols[c]));
    any_ranged = col->encoded() || col->num_chunks() > 1;
  }
  if (!any_ranged && pay_interop && ctx.CanParallel(table.num_rows()) &&
      cols.size() > 1) {
    ctx.pool->ParallelFor(cols.size(), materialize);
  } else {
    for (size_t c = 0; c < cols.size(); ++c) materialize(c);
  }
  size_t decompressed = 0;
  for (uint8_t d : col_decompressed) decompressed += d;
  if (spec.filter != nullptr) {
    // Fused scan-filter: evaluate the pushed predicate over the (pruned)
    // scan output morsel-by-morsel and gather survivors in morsel order.
    JB_CHECK_MSG(spec.ectx != nullptr, "fused scan filter needs an EvalContext");
    std::vector<uint32_t> sel =
        morsel::ParallelEvalPredicate(*spec.filter, out, *spec.ectx, ctx);
    out = morsel::ParallelGatherRows(out, sel, ctx);
  }
  GuardSeal(ctx);
  if (ctx.stats != nullptr) {
    plan::PlanStats& s = *ctx.stats;
    ++s.scans;
    s.rows_scan_input += table.num_rows();
    s.rows_scan_output += out.rows;
    s.cols_scanned += cols.size();
    s.cols_pruned += total_cols - cols.size();
    s.cols_decompressed += decompressed;
    s.cells_decompressed += decompressed * table.num_rows();
  }
  return out;
}

ExecTable FilterExec(const ExecTable& input, const sql::Expr& pred,
                     EvalContext& ectx, const OpContext& ctx) {
  std::vector<uint32_t> sel =
      morsel::ParallelEvalPredicate(pred, input, ectx, ctx);
  ExecTable out = morsel::ParallelGatherRows(input, sel, ctx);
  GuardSeal(ctx);
  return out;
}

ExecTable ConcatColumns(ExecTable left, ExecTable right) {
  JB_CHECK(left.rows == right.rows);
  for (auto& c : right.cols) left.cols.push_back(std::move(c));
  return left;
}

ExecTable HashJoinExec(const ExecTable& left, const ExecTable& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys, sql::JoinType type,
                       const OpContext& ctx) {
  JB_CHECK(left_keys.size() == right_keys.size() && !left_keys.empty());
  std::vector<const VectorData*> lk, rk;
  for (int k : left_keys) lk.push_back(&left.cols[static_cast<size_t>(k)].data);
  for (int k : right_keys) {
    rk.push_back(&right.cols[static_cast<size_t>(k)].data);
  }
  // Cross-dictionary string joins: remap the probe (left) side's codes into
  // the build side's code space once per key column, so hashing and equality
  // both run on plain int codes with no string materialization. Left codes
  // absent from the right dictionary map to a sentinel no right-side code
  // can carry (right codes are dense non-negatives or the NULL sentinel),
  // so absent strings match nothing while NULL still pairs with NULL —
  // exactly the semantics of a shared-dictionary code join. Output columns
  // gather from the original inputs, untouched.
  constexpr int64_t kAbsentCode = kNullInt64 + 1;
  std::vector<VectorData> remapped;
  remapped.reserve(lk.size());  // keep lk's pointers stable across pushes
  for (size_t i = 0; i < lk.size(); ++i) {
    if (!(lk[i]->type == TypeId::kString && rk[i]->type == TypeId::kString &&
          lk[i]->dict && rk[i]->dict && lk[i]->dict != rk[i]->dict)) {
      continue;
    }
    const Dictionary& ld = *lk[i]->dict;
    const Dictionary& rd = *rk[i]->dict;
    std::vector<int64_t> remap(ld.size());
    for (size_t code = 0; code < ld.size(); ++code) {
      int64_t t = rd.Find(ld.At(static_cast<int64_t>(code)));
      remap[code] = t == kNullInt64 ? kAbsentCode : t;
    }
    const std::vector<int64_t>& src = *lk[i]->ints;
    std::vector<int64_t> codes(src.size());
    for (size_t r = 0; r < src.size(); ++r) {
      codes[r] = src[r] == kNullInt64 ? kNullInt64
                                      : remap[static_cast<size_t>(src[r])];
    }
    VectorData v;
    v.type = TypeId::kString;
    v.dict = rk[i]->dict;
    v.ints = std::make_shared<const std::vector<int64_t>>(std::move(codes));
    remapped.push_back(std::move(v));
    lk[i] = &remapped.back();
  }

  // Hash both key sides column-at-a-time (type dispatched once per column
  // per morsel, not once per cell); row-mode profiles keep per-tuple Value
  // hashing inside HashKeys.
  std::vector<uint64_t> rhash = morsel::HashKeys(rk, right.rows, ctx);

  // Build on the right input (messages / dimension tables are small) into a
  // bucket-chained flat table: duplicate rows per key hash are linked
  // through one next[] array, so the build is two flat arrays and zero
  // per-key allocations. Large build sides are hash-partitioned and built
  // by per-thread partitions in parallel: partition p owns every hash with
  // h % P == p, and each builder scans its rows in ascending order, so row
  // chains are identical to the single-table serial build (probe match
  // order — and thus output order — is bit-identical for any P).
  const size_t P =
      ctx.CanParallel(right.rows) ? static_cast<size_t>(ctx.threads) : 1;
  // The build's directory + chain arrays are a tracked allocation, charged
  // with the canonical (partition-independent) footprint before building.
  ChargeTracked(ctx, CanonicalHashBytes(right.rows, right.rows));
  std::vector<hash::JoinHashTable> parts(P);
  std::vector<uint32_t> shared_next;
  if (P == 1) {
    parts[0].Build(rhash.data(), right.rows);
  } else {
    std::vector<std::vector<uint32_t>> prows =
        morsel::PartitionRowsByHash(ctx, rhash, P);
    // Partitions own disjoint row sets, so they can chain through one
    // shared next[] array with disjoint writes.
    shared_next.resize(right.rows);
    ctx.pool->ParallelFor(P, [&](size_t p) {
      parts[p].BuildPartition(rhash.data(), prows[p].data(), prows[p].size(),
                              shared_next.data());
    });
  }

  const bool is_semi = type == sql::JoinType::kSemi;
  const bool is_anti = type == sql::JoinType::kAnti;
  const bool is_left = type == sql::JoinType::kLeft;

  std::vector<uint64_t> lhash = morsel::HashKeys(lk, left.rows, ctx);

  auto probe_range = [&](size_t begin, size_t end,
                         std::vector<uint32_t>* lidx,
                         std::vector<uint32_t>* ridx, size_t* chain_follows) {
    for (size_t l = begin; l < end; ++l) {
      uint64_t h = lhash[l];
      const hash::JoinHashTable& table = parts[P == 1 ? 0 : h % P];
      bool matched = false;
      for (uint32_t r = table.Probe(h); r != hash::kInvalidIndex;
           r = table.Next(r)) {
        ++*chain_follows;
        if (RowsEqual(lk, l, rk, r)) {
          matched = true;
          if (is_semi || is_anti) break;
          lidx->push_back(static_cast<uint32_t>(l));
          ridx->push_back(r);
        }
      }
      if ((is_semi && matched) || (is_anti && !matched)) {
        lidx->push_back(static_cast<uint32_t>(l));
      } else if (is_left && !matched) {
        lidx->push_back(static_cast<uint32_t>(l));
        ridx->push_back(UINT32_MAX);
      }
    }
  };

  // Morsel-driven probe: per-morsel match lists concatenate in morsel-index
  // order, which is ascending probe-row order — exactly the serial output.
  std::vector<uint32_t> lidx, ridx;
  size_t chain_follows = 0;
  size_t n_morsels = morsel::NumMorsels(ctx, left.rows);
  if (n_morsels > 1) {
    std::vector<std::vector<uint32_t>> lparts(n_morsels), rparts(n_morsels);
    std::vector<size_t> chains(n_morsels, 0);
    morsel::ForEachMorsel(ctx, left.rows,
                          [&](size_t m, size_t begin, size_t end) {
                            probe_range(begin, end, &lparts[m], &rparts[m],
                                        &chains[m]);
                          });
    size_t total = 0;
    for (const auto& p : lparts) total += p.size();
    for (size_t c : chains) chain_follows += c;
    lidx.reserve(total);
    ridx.reserve(total);
    for (size_t m = 0; m < n_morsels; ++m) {
      lidx.insert(lidx.end(), lparts[m].begin(), lparts[m].end());
      ridx.insert(ridx.end(), rparts[m].begin(), rparts[m].end());
    }
  } else {
    probe_range(0, left.rows, &lidx, &ridx, &chain_follows);
  }
  if (ctx.stats != nullptr) {
    // Probes = one lookup per build insert + one per probe row. Chain
    // follows count build rows visited while probing; a key's chain is
    // identical for any partition count, so the counter is deterministic
    // across thread counts. Bytes use the canonical single-table footprint.
    ctx.stats->hash_probes += right.rows + left.rows;
    ctx.stats->hash_chain_follows += chain_follows;
    ctx.stats->hash_bytes += CanonicalHashBytes(right.rows, right.rows);
  }

  if (is_semi || is_anti) {
    ExecTable filtered = morsel::ParallelGatherRows(left, lidx, ctx);
    GuardSeal(ctx);
    return filtered;
  }

  ExecTable out;
  out.rows = lidx.size();
  out.cols.reserve(left.cols.size() + right.cols.size());
  for (const auto& c : left.cols) {
    out.cols.push_back(
        {c.qualifier, c.name, morsel::ParallelGather(c.data, lidx, ctx)});
  }
  for (const auto& c : right.cols) {
    out.cols.push_back({c.qualifier, c.name,
                        morsel::ParallelGatherWithNulls(c.data, ridx, ctx)});
  }
  GuardSeal(ctx);
  return out;
}

GroupResult GroupRows(const ExecTable& input, const std::vector<int>& key_cols,
                      const OpContext& ctx) {
  GroupResult res;
  res.group_ids.resize(input.rows);
  std::vector<const VectorData*> keys;
  for (int k : key_cols) keys.push_back(&input.cols[static_cast<size_t>(k)].data);
  std::vector<uint64_t> hashes = morsel::HashKeys(keys, input.rows, ctx);
  hash::GroupHashTable table(input.rows);
  for (size_t r = 0; r < input.rows; ++r) {
    uint32_t gid = table.FindOrAdd(hashes[r], [&](uint32_t g) {
      return RowsEqual(keys, r, keys, res.representatives[g]);
    });
    if (gid == res.representatives.size()) {
      res.representatives.push_back(static_cast<uint32_t>(r));
    }
    res.group_ids[r] = gid;
  }
  res.num_groups = res.representatives.size();
  ChargeTracked(ctx, CanonicalHashBytes(res.num_groups, res.num_groups));
  if (ctx.stats != nullptr) {
    ctx.stats->hash_probes += input.rows;
    ctx.stats->hash_chain_follows += table.chain_follows();
    // Group tables are sized by groups, not rows (the directory grows as
    // groups appear), so the canonical footprint uses the group count.
    ctx.stats->hash_bytes +=
        CanonicalHashBytes(res.num_groups, res.num_groups);
  }
  return res;
}

namespace {

struct AggAccum {
  std::vector<double> dsum;
  std::vector<int64_t> isum;
  std::vector<int64_t> count;
  std::vector<double> dmin;
  std::vector<double> dmax;
  bool int_sum = false;
};

/// Aggregate one partition of rows into per-group accumulators. `gid_at[i]`
/// is the group of `rows[i]` (position-aligned, so partitions don't need
/// full-width group-id vectors). Rows are processed in the order given —
/// ascending row id everywhere in this file — which pins the floating-point
/// accumulation order per group regardless of partition count.
void Accumulate(const std::vector<AggSpec>& aggs,
                const std::vector<VectorData>& arg_vals,
                const std::vector<uint32_t>& gid_at,
                const std::vector<uint32_t>& rows, size_t num_groups,
                std::vector<AggAccum>* accums) {
  accums->resize(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    AggAccum& acc = (*accums)[a];
    const std::string& f = aggs[a].func;
    acc.count.assign(num_groups, 0);
    if (f == "MIN" || f == "MAX") {
      acc.dmin.assign(num_groups, std::numeric_limits<double>::infinity());
      acc.dmax.assign(num_groups, -std::numeric_limits<double>::infinity());
    }
    if (f == "SUM" || f == "AVG") {
      const VectorData& v = arg_vals[a];
      acc.int_sum = f == "SUM" && v.type != TypeId::kFloat64;
      if (acc.int_sum) {
        acc.isum.assign(num_groups, 0);
      } else {
        acc.dsum.assign(num_groups, 0.0);
      }
    }
    if (f == "COUNT" && aggs[a].arg == nullptr) {
      for (size_t i = 0; i < rows.size(); ++i) ++acc.count[gid_at[i]];
      continue;
    }
    const VectorData& v = arg_vals[a];
    for (size_t i = 0; i < rows.size(); ++i) {
      uint32_t r = rows[i];
      if (v.IsNull(r)) continue;
      uint32_t g = gid_at[i];
      ++acc.count[g];
      if (f == "SUM" || f == "AVG") {
        if (acc.int_sum) {
          acc.isum[g] += (*v.ints)[r];
        } else {
          acc.dsum[g] += v.type == TypeId::kFloat64
                             ? (*v.dbls)[r]
                             : static_cast<double>((*v.ints)[r]);
        }
      } else if (f == "MIN" || f == "MAX") {
        double x = v.type == TypeId::kFloat64
                       ? (*v.dbls)[r]
                       : static_cast<double>((*v.ints)[r]);
        acc.dmin[g] = std::min(acc.dmin[g], x);
        acc.dmax[g] = std::max(acc.dmax[g], x);
      }
    }
  }
}

VectorData FinishAgg(const AggSpec& spec, const AggAccum& acc,
                     const VectorData* arg, size_t num_groups) {
  const std::string& f = spec.func;
  if (f == "COUNT") {
    std::vector<int64_t> out(acc.count.begin(), acc.count.end());
    return VectorData::FromInts(std::move(out));
  }
  if (f == "SUM") {
    if (acc.int_sum) {
      std::vector<int64_t> out(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        out[g] = acc.count[g] == 0 ? kNullInt64 : acc.isum[g];
      }
      return VectorData::FromInts(std::move(out));
    }
    std::vector<double> out(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      out[g] = acc.count[g] == 0 ? NullFloat64() : acc.dsum[g];
    }
    return VectorData::FromDoubles(std::move(out));
  }
  if (f == "AVG") {
    std::vector<double> out(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      out[g] = acc.count[g] == 0
                   ? NullFloat64()
                   : acc.dsum[g] / static_cast<double>(acc.count[g]);
    }
    return VectorData::FromDoubles(std::move(out));
  }
  if (f == "MIN" || f == "MAX") {
    const auto& src = f == "MIN" ? acc.dmin : acc.dmax;
    if (arg && arg->type != TypeId::kFloat64) {
      std::vector<int64_t> out(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        out[g] = acc.count[g] == 0 ? kNullInt64
                                   : static_cast<int64_t>(src[g]);
      }
      return VectorData::FromInts(std::move(out));
    }
    std::vector<double> out(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      out[g] = acc.count[g] == 0 ? NullFloat64() : src[g];
    }
    return VectorData::FromDoubles(std::move(out));
  }
  JB_THROW("unknown aggregate " << f);
}

/// Grouping + accumulation outcome over pre-evaluated key/argument vectors.
/// `representatives` is empty for the keyless (global) group.
struct GroupedAggs {
  std::vector<uint32_t> representatives;
  size_t num_groups = 0;
  std::vector<AggAccum> accums;
};

/// Group `rows` input rows by the pre-evaluated `key_vals` and accumulate
/// every AggSpec — the core of HashAggExec, shared with MultiAggExec so each
/// grouping set aggregates exactly as a standalone GROUP BY would. The
/// parallel path hash-partitions by key and is bit-identical to serial for
/// any thread count (see the comments inline).
GroupedAggs GroupAndAccumulate(const std::vector<VectorData>& key_vals,
                               const std::vector<AggSpec>& aggs,
                               const std::vector<VectorData>& arg_vals,
                               size_t rows, const OpContext& ctx) {
  GroupedAggs out;
  std::vector<uint32_t> all_rows(rows);
  for (size_t i = 0; i < rows; ++i) all_rows[i] = static_cast<uint32_t>(i);

  if (key_vals.empty()) {
    // Global aggregation: one group (even over an empty input).
    out.num_groups = 1;
    std::vector<uint32_t> gids(rows, 0);
    Accumulate(aggs, arg_vals, gids, all_rows, 1, &out.accums);
    return out;
  }

  if (ctx.CanParallel(rows)) {
      // Hash-partition by key, then group + aggregate each partition with a
      // thread-local hash table (intra-query parallelism, §5.5.3). Every
      // group lives entirely in one partition and each partition scans its
      // rows in ascending order, so per-group float accumulation order
      // matches the serial path exactly. The merge step re-sorts groups by
      // representative (= first-occurrence) row, which is precisely the
      // serial GroupRows output order: results are bit-identical to one
      // thread for any partition count.
      size_t P = static_cast<size_t>(ctx.threads);
      std::vector<const VectorData*> keys;
      for (const auto& kv : key_vals) keys.push_back(&kv);
      std::vector<uint64_t> hashes = morsel::HashKeys(keys, rows, ctx);
      std::vector<std::vector<uint32_t>> prows =
          morsel::PartitionRowsByHash(ctx, hashes, P);
      struct PartResult {
        std::vector<uint32_t> reps;
        std::vector<AggAccum> accums;
        size_t chain_follows = 0;
      };
      std::vector<PartResult> results(P);
      ctx.pool->ParallelFor(P, [&](size_t p) {
        // Partition p owns hashes with h % P == p, rows in ascending order.
        const std::vector<uint32_t>& part_rows = prows[p];
        hash::GroupHashTable table(part_rows.size());
        std::vector<uint32_t> reps;
        std::vector<uint32_t> gids(part_rows.size());
        for (size_t i = 0; i < part_rows.size(); ++i) {
          uint32_t r = part_rows[i];
          uint32_t gid = table.FindOrAdd(hashes[r], [&](uint32_t g) {
            return RowsEqual(keys, r, keys, reps[g]);
          });
          if (gid == reps.size()) reps.push_back(r);
          gids[i] = gid;
        }
        Accumulate(aggs, arg_vals, gids, part_rows, reps.size(),
                   &results[p].accums);
        results[p].chain_follows = table.chain_follows();
        results[p].reps = std::move(reps);
      });
      // Merge: order groups by representative row id (== first occurrence,
      // the serial group order), then copy partition-local accumulator
      // slots — a pure relabeling, no arithmetic.
      struct GroupRef {
        uint32_t rep;
        uint32_t part;
        uint32_t local;
      };
      std::vector<GroupRef> order;
      for (uint32_t p = 0; p < P; ++p) {
        for (uint32_t g = 0; g < results[p].reps.size(); ++g) {
          order.push_back({results[p].reps[g], p, g});
        }
      }
      std::sort(order.begin(), order.end(),
                [](const GroupRef& a, const GroupRef& b) {
                  return a.rep < b.rep;
                });
      const size_t num_groups = order.size();
      out.num_groups = num_groups;
      out.accums.resize(aggs.size());
      for (size_t a = 0; a < aggs.size(); ++a) {
        AggAccum& dst = out.accums[a];
        const std::string& f = aggs[a].func;
        dst.int_sum = f == "SUM" && (aggs[a].arg == nullptr ||
                                     arg_vals[a].type != TypeId::kFloat64);
        // Mirror Accumulate's allocations: only the vectors this aggregate
        // actually uses (FinishAgg reads the same subset).
        dst.count.assign(num_groups, 0);
        if (f == "SUM" || f == "AVG") {
          if (dst.int_sum) {
            dst.isum.assign(num_groups, 0);
          } else {
            dst.dsum.assign(num_groups, 0.0);
          }
        }
        if (f == "MIN" || f == "MAX") {
          dst.dmin.assign(num_groups, std::numeric_limits<double>::infinity());
          dst.dmax.assign(num_groups,
                          -std::numeric_limits<double>::infinity());
        }
        for (size_t g = 0; g < num_groups; ++g) {
          const AggAccum& src = results[order[g].part].accums[a];
          uint32_t lg = order[g].local;
          dst.count[g] = src.count[lg];
          if (!src.dsum.empty()) dst.dsum[g] = src.dsum[lg];
          if (!src.isum.empty()) dst.isum[g] = src.isum[lg];
          if (!src.dmin.empty()) dst.dmin[g] = src.dmin[lg];
          if (!src.dmax.empty()) dst.dmax[g] = src.dmax[lg];
        }
      }
      out.representatives.reserve(num_groups);
      for (const GroupRef& gr : order) out.representatives.push_back(gr.rep);
      ChargeTracked(ctx, CanonicalHashBytes(num_groups, num_groups));
      if (ctx.stats != nullptr) {
        // Mirror the serial GroupRows accounting exactly: one probe per
        // input row, chain follows summed over partitions (a hash's groups
        // all live in one partition, in serial discovery order, so the sum
        // equals the serial count), canonical single-table bytes.
        ctx.stats->hash_probes += rows;
        for (const PartResult& pr : results) {
          ctx.stats->hash_chain_follows += pr.chain_follows;
        }
        ctx.stats->hash_bytes += CanonicalHashBytes(num_groups, num_groups);
      }
      return out;
  }

  // Serial path: GroupRows over a thin ExecTable view of the key vectors.
  ExecTable key_table;
  key_table.rows = rows;
  std::vector<int> key_cols;
  for (size_t i = 0; i < key_vals.size(); ++i) {
    key_table.cols.push_back({"", "__k" + std::to_string(i), key_vals[i]});
    key_cols.push_back(static_cast<int>(i));
  }
  GroupResult groups = GroupRows(key_table, key_cols, ctx);
  out.num_groups = groups.num_groups;
  out.representatives = std::move(groups.representatives);
  Accumulate(aggs, arg_vals, groups.group_ids, all_rows, out.num_groups,
             &out.accums);
  return out;
}

}  // namespace

ExecTable HashAggExec(const ExecTable& input,
                      const std::vector<sql::ExprPtr>& group_by,
                      const std::vector<AggSpec>& aggs, EvalContext& ectx,
                      const OpContext& ctx,
                      std::vector<VectorData>* agg_outputs) {
  // 1. Evaluate key expressions and aggregate arguments (morsel-parallel;
  // falls back to serial for small inputs or override-bearing contexts).
  std::vector<VectorData> key_vals;
  key_vals.reserve(group_by.size());
  for (const auto& g : group_by) {
    key_vals.push_back(morsel::ParallelEvalExpr(*g, input, ectx, ctx));
  }
  std::vector<VectorData> arg_vals(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].arg != nullptr) {
      arg_vals[a] = morsel::ParallelEvalExpr(*aggs[a].arg, input, ectx, ctx);
    }
  }

  // 2. Group + accumulate (shared with MultiAggExec).
  GroupedAggs grouped =
      GroupAndAccumulate(key_vals, aggs, arg_vals, input.rows, ctx);
  const size_t num_groups = grouped.num_groups;

  // 3. Build output: key columns (representative rows) + aggregate columns.
  ExecTable out;
  out.rows = num_groups;
  for (size_t i = 0; i < key_vals.size(); ++i) {
    const sql::Expr& g = *group_by[i];
    std::string qual = g.kind == sql::ExprKind::kColumnRef ? g.table : "";
    std::string name = g.kind == sql::ExprKind::kColumnRef
                           ? g.column
                           : ("__group" + std::to_string(i));
    out.cols.push_back(
        {std::move(qual), std::move(name),
         morsel::ParallelGather(key_vals[i], grouped.representatives, ctx)});
  }
  agg_outputs->clear();
  for (size_t a = 0; a < aggs.size(); ++a) {
    VectorData v = FinishAgg(aggs[a], grouped.accums[a],
                             aggs[a].arg ? &arg_vals[a] : nullptr, num_groups);
    agg_outputs->push_back(v);
    out.cols.push_back({"", "__agg" + std::to_string(a), std::move(v)});
  }
  GuardSeal(ctx);
  return out;
}

MultiAggResult MultiAggExec(const ExecTable& input,
                            const std::vector<std::vector<sql::ExprPtr>>& sets,
                            const std::vector<AggSpec>& aggs,
                            EvalContext& ectx, const OpContext& ctx) {
  MultiAggResult res;

  // 1. Union of key expressions across sets (first-appearance order), matched
  // by printed SQL text so `x0` in set 2 reuses set 0's evaluated vector.
  std::vector<const sql::Expr*> union_keys;
  std::vector<std::vector<size_t>> set_keys(sets.size());  // union indices
  for (size_t s = 0; s < sets.size(); ++s) {
    for (const auto& g : sets[s]) {
      std::string printed = sql::ToSql(*g);
      size_t u = 0;
      for (; u < res.union_key_sql.size(); ++u) {
        if (res.union_key_sql[u] == printed) break;
      }
      if (u == res.union_key_sql.size()) {
        res.union_key_sql.push_back(std::move(printed));
        union_keys.push_back(g.get());
      }
      set_keys[s].push_back(u);
    }
  }

  // 2. Evaluate every union key and aggregate argument exactly once over the
  // shared input — this is where the batched path saves O(#sets) re-scans.
  std::vector<VectorData> union_vals;
  union_vals.reserve(union_keys.size());
  for (const auto* g : union_keys) {
    union_vals.push_back(morsel::ParallelEvalExpr(*g, input, ectx, ctx));
  }
  std::vector<VectorData> arg_vals(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].arg != nullptr) {
      arg_vals[a] = morsel::ParallelEvalExpr(*aggs[a].arg, input, ectx, ctx);
    }
  }

  // 3. Group + accumulate per set, reusing the exact HashAggExec machinery:
  // each set's groups, order and float sums are bit-identical to running its
  // plain GROUP BY (serial or morsel-parallel).
  std::vector<GroupedAggs> grouped(sets.size());
  std::vector<std::vector<VectorData>> set_aggs(sets.size());
  size_t total_rows = 0;
  for (size_t s = 0; s < sets.size(); ++s) {
    std::vector<VectorData> key_vals;
    key_vals.reserve(set_keys[s].size());
    for (size_t u : set_keys[s]) key_vals.push_back(union_vals[u]);
    grouped[s] = GroupAndAccumulate(key_vals, aggs, arg_vals, input.rows, ctx);
    set_aggs[s].reserve(aggs.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      set_aggs[s].push_back(FinishAgg(aggs[a], grouped[s].accums[a],
                                      aggs[a].arg ? &arg_vals[a] : nullptr,
                                      grouped[s].num_groups));
    }
    total_rows += grouped[s].num_groups;
  }
  if (ctx.stats != nullptr) {
    ++ctx.stats->multi_aggs;
    ctx.stats->grouping_sets += sets.size();
  }

  // 4. Stitch the combined output: sets concatenate in declaration order;
  // union keys absent from a row's set are NULL (standard GROUPING SETS
  // semantics), and grouping_id records the set index per row.
  res.table.rows = total_rows;
  for (size_t u = 0; u < union_vals.size(); ++u) {
    const VectorData& src = union_vals[u];
    const sql::Expr& g = *union_keys[u];
    VectorData col;
    col.type = src.type;
    col.dict = src.dict;
    if (src.type == TypeId::kFloat64) {
      std::vector<double> vals;
      vals.reserve(total_rows);
      for (size_t s = 0; s < sets.size(); ++s) {
        bool present = std::find(set_keys[s].begin(), set_keys[s].end(), u) !=
                       set_keys[s].end();
        if (present) {
          for (uint32_t r : grouped[s].representatives) {
            vals.push_back((*src.dbls)[r]);
          }
        } else {
          vals.insert(vals.end(), grouped[s].num_groups, NullFloat64());
        }
      }
      col.dbls = std::make_shared<const std::vector<double>>(std::move(vals));
    } else {
      std::vector<int64_t> vals;
      vals.reserve(total_rows);
      for (size_t s = 0; s < sets.size(); ++s) {
        bool present = std::find(set_keys[s].begin(), set_keys[s].end(), u) !=
                       set_keys[s].end();
        if (present) {
          for (uint32_t r : grouped[s].representatives) {
            vals.push_back((*src.ints)[r]);
          }
        } else {
          vals.insert(vals.end(), grouped[s].num_groups, kNullInt64);
        }
      }
      col.ints = std::make_shared<const std::vector<int64_t>>(std::move(vals));
    }
    std::string qual = g.kind == sql::ExprKind::kColumnRef ? g.table : "";
    std::string name = g.kind == sql::ExprKind::kColumnRef
                           ? g.column
                           : ("__group" + std::to_string(u));
    res.table.cols.push_back({std::move(qual), std::move(name), std::move(col)});
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    const TypeId agg_type = set_aggs.empty() ? TypeId::kInt64
                                             : set_aggs[0][a].type;
    VectorData col;
    col.type = agg_type;
    if (agg_type == TypeId::kFloat64) {
      std::vector<double> vals;
      vals.reserve(total_rows);
      for (size_t s = 0; s < sets.size(); ++s) {
        const VectorData& v = set_aggs[s][a];
        vals.insert(vals.end(), v.Dbls().begin(), v.Dbls().end());
      }
      col.dbls = std::make_shared<const std::vector<double>>(std::move(vals));
    } else {
      std::vector<int64_t> vals;
      vals.reserve(total_rows);
      for (size_t s = 0; s < sets.size(); ++s) {
        const VectorData& v = set_aggs[s][a];
        vals.insert(vals.end(), v.Ints().begin(), v.Ints().end());
      }
      col.ints = std::make_shared<const std::vector<int64_t>>(std::move(vals));
    }
    res.agg_outputs.push_back(col);
    res.table.cols.push_back({"", "__agg" + std::to_string(a), std::move(col)});
  }
  {
    std::vector<int64_t> gid;
    gid.reserve(total_rows);
    for (size_t s = 0; s < sets.size(); ++s) {
      gid.insert(gid.end(), grouped[s].num_groups, static_cast<int64_t>(s));
    }
    res.grouping_id = VectorData::FromInts(std::move(gid));
  }
  GuardSeal(ctx);
  return res;
}

ExecTable SortExec(const ExecTable& input,
                   const std::vector<sql::OrderItem>& order, EvalContext& ectx,
                   const OpContext& ctx) {
  std::vector<VectorData> keys;
  keys.reserve(order.size());
  for (const auto& o : order) {
    keys.push_back(morsel::ParallelEvalExpr(*o.expr, input, ectx, ctx));
  }
  std::vector<uint32_t> idx(input.rows);
  for (size_t i = 0; i < input.rows; ++i) idx[i] = static_cast<uint32_t>(i);
  std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      const VectorData& v = keys[k];
      int cmp = 0;
      if (v.type == TypeId::kString && v.dict) {
        int64_t ca = (*v.ints)[a];
        int64_t cb = (*v.ints)[b];
        if (ca == kNullInt64 || cb == kNullInt64) {
          cmp = (ca == cb) ? 0 : (ca == kNullInt64 ? 1 : -1);  // nulls last
        } else {
          cmp = v.dict->At(ca).compare(v.dict->At(cb));
          cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
        }
      } else {
        double x = v.type == TypeId::kFloat64
                       ? (*v.dbls)[a]
                       : static_cast<double>((*v.ints)[a]);
        double y = v.type == TypeId::kFloat64
                       ? (*v.dbls)[b]
                       : static_cast<double>((*v.ints)[b]);
        bool nx = v.IsNull(a), ny = v.IsNull(b);
        if (nx || ny) {
          cmp = (nx == ny) ? 0 : (nx ? 1 : -1);
        } else {
          cmp = x < y ? -1 : (x > y ? 1 : 0);
        }
      }
      if (cmp != 0) return order[k].desc ? cmp > 0 : cmp < 0;
    }
    return false;
  });
  ExecTable out = morsel::ParallelGatherRows(input, idx, ctx);
  GuardSeal(ctx);
  return out;
}

ExecTable LimitExec(const ExecTable& input, int64_t limit) {
  if (limit < 0 || static_cast<size_t>(limit) >= input.rows) return input;
  std::vector<uint32_t> idx(static_cast<size_t>(limit));
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<uint32_t>(i);
  return input.GatherRows(idx);
}

VectorData WindowExec(const ExecTable& input, const sql::Expr& win,
                      EvalContext& ectx) {
  JB_CHECK_MSG(win.op == "SUM" || win.op == "COUNT" || win.op == "AVG",
               "window function " << win.op << " not supported");
  // Partition.
  std::vector<uint32_t> part_ids(input.rows, 0);
  size_t num_parts = 1;
  if (!win.partition_by.empty()) {
    ExecTable pt;
    pt.rows = input.rows;
    std::vector<int> cols;
    for (size_t i = 0; i < win.partition_by.size(); ++i) {
      pt.cols.push_back(
          {"", "p" + std::to_string(i), EvalExpr(*win.partition_by[i], input, ectx)});
      cols.push_back(static_cast<int>(i));
    }
    OpContext octx;
    GroupResult gr = GroupRows(pt, cols, octx);
    part_ids = std::move(gr.group_ids);
    num_parts = gr.num_groups;
  }
  // Order.
  std::vector<VectorData> order_keys;
  for (const auto& o : win.order_by) {
    order_keys.push_back(EvalExpr(*o, input, ectx));
  }
  std::vector<uint32_t> idx(input.rows);
  for (size_t i = 0; i < input.rows; ++i) idx[i] = static_cast<uint32_t>(i);
  std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    if (part_ids[a] != part_ids[b]) return part_ids[a] < part_ids[b];
    for (const auto& v : order_keys) {
      double x = v.type == TypeId::kFloat64 ? (*v.dbls)[a]
                                            : static_cast<double>((*v.ints)[a]);
      double y = v.type == TypeId::kFloat64 ? (*v.dbls)[b]
                                            : static_cast<double>((*v.ints)[b]);
      if (x < y) return true;
      if (x > y) return false;
    }
    return false;
  });
  // Argument values.
  VectorData arg;
  bool count_star = win.op == "COUNT" &&
                    (win.args.empty() || win.args[0]->kind == sql::ExprKind::kStar);
  if (!count_star) arg = EvalExpr(*win.args[0], input, ectx);
  // Cumulative aggregate in sorted order within partitions.
  std::vector<double> out(input.rows, 0.0);
  (void)num_parts;
  double run = 0.0;
  int64_t cnt = 0;
  for (size_t i = 0; i < idx.size(); ++i) {
    uint32_t r = idx[i];
    if (i == 0 || part_ids[r] != part_ids[idx[i - 1]]) {
      run = 0.0;
      cnt = 0;
    }
    if (count_star) {
      ++cnt;
      out[r] = static_cast<double>(cnt);
    } else {
      if (!arg.IsNull(r)) {
        run += arg.type == TypeId::kFloat64
                   ? (*arg.dbls)[r]
                   : static_cast<double>((*arg.ints)[r]);
        ++cnt;
      }
      out[r] = win.op == "AVG" && cnt > 0 ? run / static_cast<double>(cnt) : run;
    }
  }
  return VectorData::FromDoubles(std::move(out));
}

}  // namespace exec
}  // namespace joinboost
