#include "exec/expr_eval.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "util/hash.h"

namespace joinboost {
namespace exec {

namespace {

bool IsNumericBinary(const std::string& op) {
  return op == "+" || op == "-" || op == "*" || op == "/" || op == "%";
}

bool IsComparison(const std::string& op) {
  return op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

double NullSafeToDouble(const VectorData& v, size_t i) {
  if (v.type == TypeId::kFloat64) return (*v.dbls)[i];
  int64_t x = (*v.ints)[i];
  if (x == kNullInt64) return NullFloat64();
  return static_cast<double>(x);
}

VectorData EvalNumericBinary(const std::string& op, const VectorData& l,
                             const VectorData& r, size_t rows) {
  bool as_double = l.type == TypeId::kFloat64 || r.type == TypeId::kFloat64 ||
                   op == "/";
  if (!as_double) {
    const auto& a = l.Ints();
    const auto& b = r.Ints();
    std::vector<int64_t> out(rows);
    for (size_t i = 0; i < rows; ++i) {
      int64_t x = a[i], y = b[i];
      if (x == kNullInt64 || y == kNullInt64) {
        out[i] = kNullInt64;
        continue;
      }
      if (op == "+") {
        out[i] = x + y;
      } else if (op == "-") {
        out[i] = x - y;
      } else if (op == "*") {
        out[i] = x * y;
      } else {  // "%"
        out[i] = y == 0 ? kNullInt64 : x % y;
      }
    }
    return VectorData::FromInts(std::move(out));
  }
  std::vector<double> out(rows);
  for (size_t i = 0; i < rows; ++i) {
    double x = NullSafeToDouble(l, i);
    double y = NullSafeToDouble(r, i);
    if (IsNullFloat64(x) || IsNullFloat64(y)) {
      out[i] = NullFloat64();
      continue;
    }
    if (op == "+") {
      out[i] = x + y;
    } else if (op == "-") {
      out[i] = x - y;
    } else if (op == "*") {
      out[i] = x * y;
    } else if (op == "/") {
      out[i] = y == 0.0 ? NullFloat64() : x / y;
    } else {  // "%"
      out[i] = std::fmod(x, y);
    }
  }
  return VectorData::FromDoubles(std::move(out));
}

VectorData EvalComparison(const std::string& op, const VectorData& l,
                          const VectorData& r, size_t rows) {
  std::vector<int64_t> out(rows);
  bool string_cmp = l.type == TypeId::kString && r.type == TypeId::kString;
  if (string_cmp && l.dict && r.dict && l.dict != r.dict) {
    // Different dictionaries: compare decoded strings (slow path).
    for (size_t i = 0; i < rows; ++i) {
      int64_t a = (*l.ints)[i];
      int64_t b = (*r.ints)[i];
      if (a == kNullInt64 || b == kNullInt64) {
        out[i] = 0;
        continue;
      }
      int c = l.dict->At(a).compare(r.dict->At(b));
      bool res = false;
      if (op == "=") res = c == 0;
      else if (op == "<>") res = c != 0;
      else if (op == "<") res = c < 0;
      else if (op == "<=") res = c <= 0;
      else if (op == ">") res = c > 0;
      else res = c >= 0;
      out[i] = res ? 1 : 0;
    }
    return VectorData::FromInts(std::move(out));
  }
  // Numeric / same-dict code comparison.
  for (size_t i = 0; i < rows; ++i) {
    double x = NullSafeToDouble(l, i);
    double y = NullSafeToDouble(r, i);
    if (IsNullFloat64(x) || IsNullFloat64(y)) {
      out[i] = 0;
      continue;
    }
    bool res = false;
    if (op == "=") res = x == y;
    else if (op == "<>") res = x != y;
    else if (op == "<") res = x < y;
    else if (op == "<=") res = x <= y;
    else if (op == ">") res = x > y;
    else res = x >= y;
    out[i] = res ? 1 : 0;
  }
  return VectorData::FromInts(std::move(out));
}

/// Translate a string literal to the dictionary code space of `other`.
VectorData BroadcastLiteralForColumn(const sql::Expr& lit, size_t rows,
                                     const VectorData* other) {
  if (lit.kind == sql::ExprKind::kStringLiteral && other &&
      other->type == TypeId::kString && other->dict) {
    int64_t code = other->dict->Find(lit.str_val);
    VectorData out;
    out.type = TypeId::kString;
    out.dict = other->dict;
    out.ints = std::make_shared<const std::vector<int64_t>>(
        std::vector<int64_t>(rows, code));
    return out;
  }
  switch (lit.kind) {
    case sql::ExprKind::kIntLiteral:
      return VectorData::FromInts(std::vector<int64_t>(rows, lit.int_val));
    case sql::ExprKind::kFloatLiteral:
      return VectorData::FromDoubles(std::vector<double>(rows, lit.float_val));
    case sql::ExprKind::kNullLiteral:
      return VectorData::FromDoubles(std::vector<double>(rows, NullFloat64()));
    case sql::ExprKind::kStringLiteral: {
      // String literal without dictionary context: build a private dict.
      auto dict = std::make_shared<Dictionary>();
      int64_t code = dict->GetOrAdd(lit.str_val);
      return VectorData::FromCodes(std::vector<int64_t>(rows, code), dict);
    }
    default:
      JB_THROW("not a literal");
  }
}

bool IsLiteral(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kIntLiteral ||
         e.kind == sql::ExprKind::kFloatLiteral ||
         e.kind == sql::ExprKind::kStringLiteral ||
         e.kind == sql::ExprKind::kNullLiteral;
}

VectorData EvalFunc(const sql::Expr& e, const ExecTable& input,
                    EvalContext& ctx);

std::atomic<size_t> g_in_list_translations{0};

}  // namespace

size_t InListTranslations() { return g_in_list_translations.load(); }
void ResetInListTranslations() { g_in_list_translations.store(0); }

const InListSet& GetOrBuildInListSet(const sql::Expr& e, TypeId probe_type,
                                     const Dictionary* dict, EvalContext& ctx) {
  auto key = std::make_pair(&e, probe_type == TypeId::kString ? dict : nullptr);
  auto cached = ctx.list_sets.find(key);
  if (cached != ctx.list_sets.end()) return *cached->second;

  auto ls = std::make_shared<InListSet>();
  ls->as_double = probe_type == TypeId::kFloat64;
  auto s = std::make_shared<hash::ValueSet>(e.args.size() - 1);
  bool translated = false;
  for (size_t a = 1; a < e.args.size(); ++a) {
    const sql::Expr& lit = *e.args[a];
    int64_t member;
    if (probe_type == TypeId::kString && dict != nullptr &&
        lit.kind == sql::ExprKind::kStringLiteral) {
      member = dict->Find(lit.str_val);
      translated = true;
    } else if (ls->as_double) {
      double d = lit.kind == sql::ExprKind::kFloatLiteral
                     ? lit.float_val
                     : static_cast<double>(lit.int_val);
      std::memcpy(&member, &d, 8);
    } else {
      member = lit.kind == sql::ExprKind::kFloatLiteral
                   ? static_cast<int64_t>(lit.float_val)
                   : lit.int_val;
    }
    s->Insert(static_cast<uint64_t>(member));
    // Bounds over int64 members only; kNullInt64 (absent dictionary string)
    // can never match a probe value, so it does not widen the range.
    if (!ls->as_double && member != kNullInt64) {
      if (!ls->has_bounds) {
        ls->min_value = ls->max_value = member;
        ls->has_bounds = true;
      } else {
        ls->min_value = std::min(ls->min_value, member);
        ls->max_value = std::max(ls->max_value, member);
      }
    }
  }
  if (translated) g_in_list_translations.fetch_add(1);
  ls->set = std::move(s);
  return *ctx.list_sets.emplace(key, std::move(ls)).first->second;
}

VectorData EvalExpr(const sql::Expr& e, const ExecTable& input,
                    EvalContext& ctx) {
  auto ov = ctx.overrides.find(&e);
  if (ov != ctx.overrides.end()) return ov->second;

  const size_t rows = input.rows;
  switch (e.kind) {
    case sql::ExprKind::kColumnRef: {
      int idx = input.FindRequired(e.table, e.column);
      return input.cols[static_cast<size_t>(idx)].data;
    }
    case sql::ExprKind::kIntLiteral:
    case sql::ExprKind::kFloatLiteral:
    case sql::ExprKind::kStringLiteral:
    case sql::ExprKind::kNullLiteral:
      return BroadcastLiteralForColumn(e, rows, nullptr);
    case sql::ExprKind::kBinary: {
      const std::string& op = e.op;
      if (op == "AND" || op == "OR") {
        VectorData l = EvalExpr(*e.args[0], input, ctx);
        VectorData r = EvalExpr(*e.args[1], input, ctx);
        const auto& a = l.Ints();
        const auto& b = r.Ints();
        std::vector<int64_t> out(rows);
        for (size_t i = 0; i < rows; ++i) {
          bool x = a[i] != 0 && a[i] != kNullInt64;
          bool y = b[i] != 0 && b[i] != kNullInt64;
          out[i] = (op == "AND" ? (x && y) : (x || y)) ? 1 : 0;
        }
        return VectorData::FromInts(std::move(out));
      }
      // Dictionary-aware literal handling for string comparisons.
      VectorData l, r;
      if (IsLiteral(*e.args[0]) && !IsLiteral(*e.args[1])) {
        r = EvalExpr(*e.args[1], input, ctx);
        l = BroadcastLiteralForColumn(*e.args[0], rows, &r);
      } else if (IsLiteral(*e.args[1]) && !IsLiteral(*e.args[0])) {
        l = EvalExpr(*e.args[0], input, ctx);
        r = BroadcastLiteralForColumn(*e.args[1], rows, &l);
      } else {
        l = EvalExpr(*e.args[0], input, ctx);
        r = EvalExpr(*e.args[1], input, ctx);
      }
      if (IsNumericBinary(op)) return EvalNumericBinary(op, l, r, rows);
      if (IsComparison(op)) return EvalComparison(op, l, r, rows);
      JB_THROW("unknown binary operator " << op);
    }
    case sql::ExprKind::kUnary: {
      VectorData v = EvalExpr(*e.args[0], input, ctx);
      if (e.op == "NOT") {
        const auto& a = v.Ints();
        std::vector<int64_t> out(rows);
        for (size_t i = 0; i < rows; ++i) {
          out[i] = (a[i] == 0) ? 1 : 0;
        }
        return VectorData::FromInts(std::move(out));
      }
      // unary minus
      if (v.type == TypeId::kFloat64) {
        std::vector<double> out(rows);
        const auto& a = v.Dbls();
        for (size_t i = 0; i < rows; ++i) out[i] = -a[i];
        return VectorData::FromDoubles(std::move(out));
      }
      std::vector<int64_t> out(rows);
      const auto& a = v.Ints();
      for (size_t i = 0; i < rows; ++i) {
        out[i] = a[i] == kNullInt64 ? kNullInt64 : -a[i];
      }
      return VectorData::FromInts(std::move(out));
    }
    case sql::ExprKind::kFuncCall:
      return EvalFunc(e, input, ctx);
    case sql::ExprKind::kCase: {
      size_t pairs = (e.args.size() - (e.has_else ? 1 : 0)) / 2;
      std::vector<VectorData> conds(pairs), vals(pairs);
      for (size_t p = 0; p < pairs; ++p) {
        conds[p] = EvalExpr(*e.args[2 * p], input, ctx);
        vals[p] = EvalExpr(*e.args[2 * p + 1], input, ctx);
      }
      VectorData else_val;
      if (e.has_else) else_val = EvalExpr(*e.args.back(), input, ctx);
      // Result typed double if any branch is double, else int.
      bool as_double = e.has_else && else_val.type == TypeId::kFloat64;
      for (const auto& v : vals) as_double |= v.type == TypeId::kFloat64;
      if (as_double) {
        std::vector<double> out(rows, NullFloat64());
        for (size_t i = 0; i < rows; ++i) {
          bool matched = false;
          for (size_t p = 0; p < pairs; ++p) {
            int64_t c = conds[p].Ints()[i];
            if (c != 0 && c != kNullInt64) {
              out[i] = NullSafeToDouble(vals[p], i);
              matched = true;
              break;
            }
          }
          if (!matched && e.has_else) out[i] = NullSafeToDouble(else_val, i);
        }
        return VectorData::FromDoubles(std::move(out));
      }
      std::vector<int64_t> out(rows, kNullInt64);
      for (size_t i = 0; i < rows; ++i) {
        bool matched = false;
        for (size_t p = 0; p < pairs; ++p) {
          int64_t c = conds[p].Ints()[i];
          if (c != 0 && c != kNullInt64) {
            out[i] = vals[p].Ints()[i];
            matched = true;
            break;
          }
        }
        if (!matched && e.has_else) out[i] = else_val.Ints()[i];
      }
      return VectorData::FromInts(std::move(out));
    }
    case sql::ExprKind::kInSubquery: {
      if (e.args.empty()) {
        // Scalar subquery: run once per context, broadcast the value.
        auto it = ctx.scalar_subqueries.find(&e);
        if (it == ctx.scalar_subqueries.end()) {
          JB_CHECK_MSG(ctx.run_subquery, "no subquery runner in context");
          ExecTable sub = ctx.run_subquery(*e.subquery);
          JB_CHECK_MSG(sub.rows == 1 && sub.cols.size() == 1,
                       "scalar subquery must return 1x1");
          it = ctx.scalar_subqueries.emplace(&e, sub.cols[0].data).first;
        }
        const VectorData& v = it->second;
        if (v.type == TypeId::kFloat64) {
          return VectorData::FromDoubles(
              std::vector<double>(rows, (*v.dbls)[0]));
        }
        return VectorData::FromInts(std::vector<int64_t>(rows, (*v.ints)[0]));
      }
      // IN (subquery): the membership set — and the subquery run feeding it
      // — is built once per context and cached on the predicate node.
      std::shared_ptr<const hash::ValueSet> set;
      auto cached = ctx.in_sets.find(&e);
      if (cached != ctx.in_sets.end()) {
        set = cached->second;
      } else {
        JB_CHECK_MSG(ctx.run_subquery, "no subquery runner in context");
        ExecTable sub = ctx.run_subquery(*e.subquery);
        JB_CHECK_MSG(sub.cols.size() == 1, "IN subquery must return 1 column");
        const VectorData& list = sub.cols[0].data;
        auto s = std::make_shared<hash::ValueSet>(sub.rows);
        if (list.type == TypeId::kFloat64) {
          for (double d : list.Dbls()) {
            int64_t bits;
            static_assert(sizeof(double) == sizeof(int64_t));
            std::memcpy(&bits, &d, 8);
            s->Insert(static_cast<uint64_t>(bits));
          }
        } else {
          for (int64_t x : list.Ints()) s->Insert(static_cast<uint64_t>(x));
        }
        set = s;
        ctx.in_sets.emplace(&e, set);
      }
      VectorData probe = EvalExpr(*e.args[0], input, ctx);
      std::vector<int64_t> out(rows);
      for (size_t i = 0; i < rows; ++i) {
        bool found;
        if (probe.type == TypeId::kFloat64) {
          double d = (*probe.dbls)[i];
          int64_t bits;
          std::memcpy(&bits, &d, 8);
          found = set->Contains(static_cast<uint64_t>(bits));
        } else {
          int64_t x = (*probe.ints)[i];
          found = x != kNullInt64 && set->Contains(static_cast<uint64_t>(x));
        }
        out[i] = (found != e.negated) ? 1 : 0;
      }
      return VectorData::FromInts(std::move(out));
    }
    case sql::ExprKind::kInList: {
      VectorData probe = EvalExpr(*e.args[0], input, ctx);
      const InListSet& ls = GetOrBuildInListSet(
          e, probe.type,
          probe.type == TypeId::kString ? probe.dict.get() : nullptr, ctx);
      const bool as_double = ls.as_double;
      const std::shared_ptr<const hash::ValueSet>& set = ls.set;
      std::vector<int64_t> out(rows);
      for (size_t i = 0; i < rows; ++i) {
        bool found;
        if (as_double) {
          double d = (*probe.dbls)[i];
          int64_t bits;
          std::memcpy(&bits, &d, 8);
          found = set->Contains(static_cast<uint64_t>(bits));
        } else {
          int64_t x = (*probe.ints)[i];
          found = x != kNullInt64 && set->Contains(static_cast<uint64_t>(x));
        }
        out[i] = (found != e.negated) ? 1 : 0;
      }
      return VectorData::FromInts(std::move(out));
    }
    case sql::ExprKind::kIsNull: {
      VectorData v = EvalExpr(*e.args[0], input, ctx);
      std::vector<int64_t> out(rows);
      for (size_t i = 0; i < rows; ++i) {
        out[i] = (v.IsNull(i) != e.negated) ? 1 : 0;
      }
      return VectorData::FromInts(std::move(out));
    }
    case sql::ExprKind::kStar:
      JB_THROW("'*' is only valid inside COUNT(*) or SELECT *");
    case sql::ExprKind::kAggCall:
      JB_THROW("aggregate outside GROUP BY evaluation: " << e.op);
    case sql::ExprKind::kWindowAgg:
      JB_THROW("window aggregate must be pre-computed by the operator");
  }
  JB_THROW("unhandled expression kind");
}

namespace {

VectorData EvalFunc(const sql::Expr& e, const ExecTable& input,
                    EvalContext& ctx) {
  const size_t rows = input.rows;
  const std::string& f = e.op;
  auto unary_double = [&](double (*fn)(double)) {
    VectorData v = EvalExpr(*e.args[0], input, ctx);
    std::vector<double> out(rows);
    for (size_t i = 0; i < rows; ++i) {
      double x = NullSafeToDouble(v, i);
      out[i] = IsNullFloat64(x) ? NullFloat64() : fn(x);
    }
    return VectorData::FromDoubles(std::move(out));
  };
  if (f == "LOG" || f == "LN") {
    return unary_double([](double x) { return std::log(x); });
  }
  if (f == "EXP") return unary_double([](double x) { return std::exp(x); });
  if (f == "SQRT") return unary_double([](double x) { return std::sqrt(x); });
  if (f == "ABS") return unary_double([](double x) { return std::fabs(x); });
  if (f == "SIGN") {
    return unary_double(
        [](double x) { return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0); });
  }
  if (f == "FLOOR") {
    VectorData v = EvalExpr(*e.args[0], input, ctx);
    std::vector<int64_t> out(rows);
    for (size_t i = 0; i < rows; ++i) {
      double x = NullSafeToDouble(v, i);
      out[i] = IsNullFloat64(x) ? kNullInt64
                                : static_cast<int64_t>(std::floor(x));
    }
    return VectorData::FromInts(std::move(out));
  }
  if (f == "CEIL") {
    VectorData v = EvalExpr(*e.args[0], input, ctx);
    std::vector<int64_t> out(rows);
    for (size_t i = 0; i < rows; ++i) {
      double x = NullSafeToDouble(v, i);
      out[i] =
          IsNullFloat64(x) ? kNullInt64 : static_cast<int64_t>(std::ceil(x));
    }
    return VectorData::FromInts(std::move(out));
  }
  if (f == "INT") {
    VectorData v = EvalExpr(*e.args[0], input, ctx);
    std::vector<int64_t> out(rows);
    for (size_t i = 0; i < rows; ++i) {
      double x = NullSafeToDouble(v, i);
      out[i] = IsNullFloat64(x) ? kNullInt64 : static_cast<int64_t>(x);
    }
    return VectorData::FromInts(std::move(out));
  }
  if (f == "POW" || f == "POWER") {
    VectorData a = EvalExpr(*e.args[0], input, ctx);
    VectorData b = EvalExpr(*e.args[1], input, ctx);
    std::vector<double> out(rows);
    for (size_t i = 0; i < rows; ++i) {
      out[i] = std::pow(NullSafeToDouble(a, i), NullSafeToDouble(b, i));
    }
    return VectorData::FromDoubles(std::move(out));
  }
  if (f == "MOD") {
    VectorData a = EvalExpr(*e.args[0], input, ctx);
    VectorData b = EvalExpr(*e.args[1], input, ctx);
    std::vector<int64_t> out(rows);
    const auto& x = a.Ints();
    const auto& y = b.Ints();
    for (size_t i = 0; i < rows; ++i) {
      if (x[i] == kNullInt64 || y[i] == kNullInt64 || y[i] == 0) {
        out[i] = kNullInt64;
      } else {
        int64_t m = x[i] % y[i];
        out[i] = m < 0 ? m + std::abs(y[i]) : m;
      }
    }
    return VectorData::FromInts(std::move(out));
  }
  if (f == "HASH") {
    // HASH(x[, seed]) — deterministic 63-bit hash; used for RF row sampling.
    VectorData a = EvalExpr(*e.args[0], input, ctx);
    int64_t seed = 0;
    if (e.args.size() > 1 && e.args[1]->kind == sql::ExprKind::kIntLiteral) {
      seed = e.args[1]->int_val;
    }
    std::vector<int64_t> out(rows);
    const auto& x = a.Ints();
    for (size_t i = 0; i < rows; ++i) {
      out[i] = static_cast<int64_t>(
          SplitMix64(static_cast<uint64_t>(x[i]) ^
                     SplitMix64(static_cast<uint64_t>(seed))) >>
          1);
    }
    return VectorData::FromInts(std::move(out));
  }
  if (f == "COALESCE") {
    std::vector<VectorData> vs;
    vs.reserve(e.args.size());
    for (const auto& a : e.args) vs.push_back(EvalExpr(*a, input, ctx));
    bool as_double = false;
    for (const auto& v : vs) as_double |= v.type == TypeId::kFloat64;
    if (as_double) {
      std::vector<double> out(rows, NullFloat64());
      for (size_t i = 0; i < rows; ++i) {
        for (const auto& v : vs) {
          double x = NullSafeToDouble(v, i);
          if (!IsNullFloat64(x)) {
            out[i] = x;
            break;
          }
        }
      }
      return VectorData::FromDoubles(std::move(out));
    }
    std::vector<int64_t> out(rows, kNullInt64);
    for (size_t i = 0; i < rows; ++i) {
      for (const auto& v : vs) {
        int64_t x = v.Ints()[i];
        if (x != kNullInt64) {
          out[i] = x;
          break;
        }
      }
    }
    return VectorData::FromInts(std::move(out));
  }
  if (f == "GREATEST" || f == "LEAST") {
    VectorData a = EvalExpr(*e.args[0], input, ctx);
    VectorData b = EvalExpr(*e.args[1], input, ctx);
    std::vector<double> out(rows);
    for (size_t i = 0; i < rows; ++i) {
      double x = NullSafeToDouble(a, i);
      double y = NullSafeToDouble(b, i);
      out[i] = f == "GREATEST" ? std::max(x, y) : std::min(x, y);
    }
    return VectorData::FromDoubles(std::move(out));
  }
  JB_THROW("unknown function " << f);
}

}  // namespace

Value EvalScalar(const sql::Expr& e, const ExecTable& input, size_t row,
                 EvalContext& ctx) {
  switch (e.kind) {
    case sql::ExprKind::kColumnRef: {
      int idx = input.FindRequired(e.table, e.column);
      return input.cols[static_cast<size_t>(idx)].data.GetValue(row);
    }
    case sql::ExprKind::kIntLiteral:
      return Value::Int(e.int_val);
    case sql::ExprKind::kFloatLiteral:
      return Value::Double(e.float_val);
    case sql::ExprKind::kStringLiteral:
      return Value::Str(e.str_val);
    case sql::ExprKind::kNullLiteral:
      return Value::Null(TypeId::kFloat64);
    case sql::ExprKind::kBinary: {
      const std::string& op = e.op;
      Value l = EvalScalar(*e.args[0], input, row, ctx);
      if (op == "AND") {
        bool lx = !l.null && l.AsDouble() != 0;
        if (!lx) return Value::Int(0);
        Value r = EvalScalar(*e.args[1], input, row, ctx);
        return Value::Int(!r.null && r.AsDouble() != 0 ? 1 : 0);
      }
      if (op == "OR") {
        bool lx = !l.null && l.AsDouble() != 0;
        if (lx) return Value::Int(1);
        Value r = EvalScalar(*e.args[1], input, row, ctx);
        return Value::Int(!r.null && r.AsDouble() != 0 ? 1 : 0);
      }
      Value r = EvalScalar(*e.args[1], input, row, ctx);
      if (l.null || r.null) {
        if (IsComparison(op)) return Value::Int(0);
        return Value::Null(TypeId::kFloat64);
      }
      if (l.type == TypeId::kString && r.type == TypeId::kString &&
          IsComparison(op)) {
        int c = l.s.compare(r.s);
        bool res = (op == "=" && c == 0) || (op == "<>" && c != 0) ||
                   (op == "<" && c < 0) || (op == "<=" && c <= 0) ||
                   (op == ">" && c > 0) || (op == ">=" && c >= 0);
        return Value::Int(res ? 1 : 0);
      }
      double x = l.AsDouble();
      double y = r.AsDouble();
      if (IsComparison(op)) {
        bool res = (op == "=" && x == y) || (op == "<>" && x != y) ||
                   (op == "<" && x < y) || (op == "<=" && x <= y) ||
                   (op == ">" && x > y) || (op == ">=" && x >= y);
        return Value::Int(res ? 1 : 0);
      }
      bool as_double = l.type == TypeId::kFloat64 ||
                       r.type == TypeId::kFloat64 || op == "/";
      double v = 0;
      if (op == "+") v = x + y;
      else if (op == "-") v = x - y;
      else if (op == "*") v = x * y;
      else if (op == "/") v = y == 0 ? NullFloat64() : x / y;
      else if (op == "%") v = std::fmod(x, y);
      if (as_double) return Value::Double(v);
      return Value::Int(static_cast<int64_t>(v));
    }
    case sql::ExprKind::kUnary: {
      Value v = EvalScalar(*e.args[0], input, row, ctx);
      if (e.op == "NOT") {
        return Value::Int((v.null || v.AsDouble() == 0) ? 1 : 0);
      }
      if (v.null) return v;
      if (v.type == TypeId::kFloat64) return Value::Double(-v.d);
      return Value::Int(-v.i);
    }
    case sql::ExprKind::kIsNull: {
      Value v = EvalScalar(*e.args[0], input, row, ctx);
      return Value::Int((v.null != e.negated) ? 1 : 0);
    }
    default: {
      // Fall back to a vectorized evaluation over a single gathered row.
      ExecTable one = input.GatherRows({static_cast<uint32_t>(row)});
      VectorData v = EvalExpr(e, one, ctx);
      return v.GetValue(0);
    }
  }
}

std::vector<uint32_t> EvalPredicate(const sql::Expr& e, const ExecTable& input,
                                    EvalContext& ctx, bool row_mode) {
  std::vector<uint32_t> out;
  if (row_mode) {
    // Tuple-at-a-time evaluation: the genuine cost structure of row engines.
    for (size_t i = 0; i < input.rows; ++i) {
      Value v = EvalScalar(e, input, i, ctx);
      if (!v.null && v.AsDouble() != 0) out.push_back(static_cast<uint32_t>(i));
    }
    return out;
  }
  VectorData v = EvalExpr(e, input, ctx);
  const auto& a = v.Ints();
  out.reserve(input.rows / 4);
  for (size_t i = 0; i < input.rows; ++i) {
    if (a[i] != 0 && a[i] != kNullInt64) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

void CollectAggregates(const sql::ExprPtr& e,
                       std::vector<const sql::Expr*>* out) {
  if (!e) return;
  if (e->kind == sql::ExprKind::kAggCall) {
    out->push_back(e.get());
    return;  // no nested aggregates
  }
  if (e->kind == sql::ExprKind::kWindowAgg) return;
  for (const auto& a : e->args) CollectAggregates(a, out);
}

void CollectWindows(const sql::ExprPtr& e,
                    std::vector<const sql::Expr*>* out) {
  if (!e) return;
  if (e->kind == sql::ExprKind::kWindowAgg) {
    out->push_back(e.get());
    return;
  }
  for (const auto& a : e->args) CollectWindows(a, out);
}

}  // namespace exec
}  // namespace joinboost
