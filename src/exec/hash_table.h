#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace joinboost {
namespace exec {
namespace hash {

/// Cache-friendly hash infrastructure shared by every hash consumer in the
/// engine: joins, GROUP BY / GROUPING SETS aggregation, DISTINCT and the
/// IN-predicate membership sets. The design replaces the former
/// `std::unordered_map<uint64_t, std::vector<uint32_t>>` (a node-based map
/// plus one heap allocation per key) with flat arrays:
///
///   * `FlatHashTable` — open-addressing slot directory. Power-of-two
///     capacity, linear probing, and an 8-bit tag (fingerprint) array probed
///     before the 8-byte hash array, so a miss usually costs one byte-wide
///     cache line touch. Slots are keyed by the full 64-bit key hash;
///     distinct keys that collide on all 64 bits share a slot and are
///     disambiguated by the consumer (exactly like the old map's buckets).
///
///   * `JoinHashTable` — bucket-chained row storage on top of the slot
///     directory: duplicate rows per key hash are linked through a single
///     `next[row]` index array instead of per-bucket vectors, so a build is
///     two flat arrays and zero per-key allocations. Chains are in ascending
///     row order (= insertion order), which is what makes probe output —
///     and therefore every downstream result — bit-identical to the previous
///     implementation for any partition count.
///
///   * `GroupHashTable` — find-or-add of group ids for aggregation; chains
///     of same-hash groups are linked through a per-group array. Group ids
///     are assigned in first-occurrence order of their key.
///
///   * `ValueSet` — flat membership set of 64-bit values for IN (...) and
///     IN (subquery) predicates.

/// Sentinel for "no row / no group".
constexpr uint32_t kInvalidIndex = UINT32_MAX;

/// Slot count used for an expected number of distinct hashes: the next power
/// of two >= 2x the expectation (load factor <= 0.5 when every key is
/// distinct), floored at 16. Exposed so PlanStats can report a canonical
/// table footprint independent of the runtime partition count.
inline size_t SlotCountFor(size_t expected) {
  size_t want = expected < 8 ? 16 : expected * 2;
  size_t cap = 16;
  while (cap < want) cap <<= 1;
  return cap;
}

/// Bytes per slot: 1 tag + 8 hash + 4 head + 4 tail.
constexpr size_t kSlotBytes = 17;

/// Open-addressing slot directory keyed by 64-bit hashes. Each occupied slot
/// carries two uint32 payload fields (`head`/`tail`), which consumers use as
/// chain anchors. Grows by doubling when the load factor passes 7/8 — chains
/// live outside the table, so a rehash only re-places the occupied slots.
class FlatHashTable {
 public:
  static constexpr size_t kNoSlot = SIZE_MAX;

  FlatHashTable() { Init(0); }

  /// Size the directory for ~`expected` distinct hashes and clear it.
  void Init(size_t expected);

  /// Slot holding `h`, or kNoSlot.
  size_t Find(uint64_t h) const {
    size_t i = Index(h);
    const uint8_t tag = Tag(h);
    while (true) {
      uint8_t t = tags_[i];
      if (t == kEmptyTag) return kNoSlot;
      if (t == tag && hashes_[i] == h) return i;
      i = (i + 1) & mask_;
    }
  }

  /// Slot holding `h`, inserting an empty one (head = tail = kInvalidIndex)
  /// when absent; `*inserted` reports which. May grow (slot indices from
  /// earlier calls are invalidated by growth; consumers only hold indices
  /// across calls inside a single Insert/FindOrAdd step).
  size_t FindOrInsert(uint64_t h, bool* inserted) {
    if ((used_ + 1) * 8 > capacity_ * 7) Grow();
    size_t i = Index(h);
    const uint8_t tag = Tag(h);
    while (true) {
      uint8_t t = tags_[i];
      if (t == kEmptyTag) {
        tags_[i] = tag;
        hashes_[i] = h;
        heads_[i] = kInvalidIndex;
        tails_[i] = kInvalidIndex;
        ++used_;
        *inserted = true;
        return i;
      }
      if (t == tag && hashes_[i] == h) {
        *inserted = false;
        return i;
      }
      i = (i + 1) & mask_;
    }
  }

  uint32_t head(size_t slot) const { return heads_[slot]; }
  uint32_t tail(size_t slot) const { return tails_[slot]; }
  void set_head(size_t slot, uint32_t v) { heads_[slot] = v; }
  void set_tail(size_t slot, uint32_t v) { tails_[slot] = v; }

  size_t size() const { return used_; }
  size_t capacity() const { return capacity_; }
  size_t ByteSize() const { return capacity_ * kSlotBytes; }

 private:
  static constexpr uint8_t kEmptyTag = 0;

  /// 8-bit fingerprint from the high hash bits (the low bits pick the slot
  /// index, so high bits decorrelate the tag from the probe position).
  /// Never kEmptyTag.
  static uint8_t Tag(uint64_t h) {
    uint8_t t = static_cast<uint8_t>(h >> 56);
    return t == kEmptyTag ? 1 : t;
  }

  size_t Index(uint64_t h) const { return static_cast<size_t>(h) & mask_; }

  void Grow();

  std::vector<uint8_t> tags_;
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> heads_;
  std::vector<uint32_t> tails_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t used_ = 0;
};

/// Bucket-chained join build table: maps a key hash to the chain of build
/// rows carrying that hash. `Build` owns its chain array; `BuildPartition`
/// links through a caller-provided array shared by all partitions of one
/// build (partitions own disjoint row sets, so the writes are disjoint).
/// Chains are in ascending row order in both modes: `Build` and
/// `BuildPartition` append rows in the order given, and every caller feeds
/// rows ascending — the engine's probe-order determinism contract.
class JoinHashTable {
 public:
  JoinHashTable() = default;
  // `next_` aliases `own_next_`'s heap buffer after Build; a copy would
  // leave it dangling into the source. Moves transfer the buffer, so the
  // alias stays valid.
  JoinHashTable(const JoinHashTable&) = delete;
  JoinHashTable& operator=(const JoinHashTable&) = delete;
  JoinHashTable(JoinHashTable&&) = default;
  JoinHashTable& operator=(JoinHashTable&&) = default;

  /// Build over rows [0, n) with per-row hashes.
  void Build(const uint64_t* hashes, size_t n) {
    own_next_.assign(n, kInvalidIndex);
    next_ = own_next_.data();
    slots_.Init(n);
    for (size_t r = 0; r < n; ++r) {
      InsertRow(hashes[r], static_cast<uint32_t>(r), own_next_.data());
    }
  }

  /// Build over the `m` rows listed in `rows` (ascending global row ids),
  /// chaining through `shared_next` (size = the global row-id space).
  void BuildPartition(const uint64_t* hashes, const uint32_t* rows, size_t m,
                      uint32_t* shared_next) {
    next_ = shared_next;
    slots_.Init(m);
    for (size_t i = 0; i < m; ++i) {
      uint32_t r = rows[i];
      shared_next[r] = kInvalidIndex;
      InsertRow(hashes[r], r, shared_next);
    }
  }

  /// First build row whose key hash is `h`, or kInvalidIndex. Iterate the
  /// duplicates with Next().
  uint32_t Probe(uint64_t h) const {
    size_t slot = slots_.Find(h);
    return slot == FlatHashTable::kNoSlot ? kInvalidIndex : slots_.head(slot);
  }

  uint32_t Next(uint32_t row) const { return next_[row]; }

  size_t num_keys() const { return slots_.size(); }
  size_t ByteSize() const {
    return slots_.ByteSize() + own_next_.size() * sizeof(uint32_t);
  }

 private:
  void InsertRow(uint64_t h, uint32_t r, uint32_t* next) {
    bool inserted = false;
    size_t slot = slots_.FindOrInsert(h, &inserted);
    if (inserted) {
      slots_.set_head(slot, r);
    } else {
      next[slots_.tail(slot)] = r;
    }
    slots_.set_tail(slot, r);
  }

  FlatHashTable slots_;
  std::vector<uint32_t> own_next_;
  const uint32_t* next_ = nullptr;
};

/// Find-or-add table for grouping: each slot anchors a chain of group ids
/// whose keys share one 64-bit hash; the caller resolves true key equality
/// against the group's representative row. Group ids are dense and assigned
/// in first-occurrence order. Chain order is newest-first (it only affects
/// lookup cost, never results — groups are emitted by id, not chain walk).
class GroupHashTable {
 public:
  explicit GroupHashTable(size_t expected_rows = 0) {
    // Group count is unknown up front (bounded by rows but usually far
    // smaller), so start small and let the directory double as groups
    // appear — sizing by rows would zero-fill O(rows) slots for a
    // low-cardinality GROUP BY.
    slots_.Init(std::min<size_t>(expected_rows, kInitialGroups));
    group_next_.reserve(std::min<size_t>(expected_rows, kInitialGroups));
  }

  /// Group id for the key hashed to `h`, creating a new group when no
  /// chained group satisfies `eq(gid)`. A result == the pre-call
  /// num_groups() means a group was created.
  template <class EqFn>
  uint32_t FindOrAdd(uint64_t h, const EqFn& eq) {
    bool inserted = false;
    size_t slot = slots_.FindOrInsert(h, &inserted);
    if (!inserted) {
      for (uint32_t g = slots_.head(slot); g != kInvalidIndex;
           g = group_next_[g]) {
        ++chain_follows_;
        if (eq(g)) return g;
      }
    }
    uint32_t gid = static_cast<uint32_t>(group_next_.size());
    group_next_.push_back(slots_.head(slot));
    slots_.set_head(slot, gid);
    return gid;
  }

  size_t num_groups() const { return group_next_.size(); }
  /// Chain links walked across all FindOrAdd calls. Partition-count
  /// independent: a hash's groups always land in one partition, in the same
  /// discovery order as a serial build.
  size_t chain_follows() const { return chain_follows_; }
  size_t ByteSize() const {
    return slots_.ByteSize() + group_next_.size() * sizeof(uint32_t);
  }

 private:
  static constexpr size_t kInitialGroups = 1024;

  FlatHashTable slots_;
  std::vector<uint32_t> group_next_;  ///< per group: next group, same hash
  size_t chain_follows_ = 0;
};

/// Flat membership set of 64-bit values (int64 values or float64 bit
/// patterns). Replaces the per-evaluation `std::unordered_set<int64_t>` of
/// IN predicates. A thin wrapper over the slot directory: SplitMix64 is a
/// bijection, so storing the mixed value as the slot hash loses nothing —
/// hash equality is value equality and no second probe/grow implementation
/// is needed.
class ValueSet {
 public:
  explicit ValueSet(size_t expected = 0) { slots_.Init(expected); }

  void Insert(uint64_t v) {
    bool inserted = false;
    slots_.FindOrInsert(SplitMix64(v), &inserted);
  }

  bool Contains(uint64_t v) const {
    return slots_.Find(SplitMix64(v)) != FlatHashTable::kNoSlot;
  }

  size_t size() const { return slots_.size(); }

 private:
  FlatHashTable slots_;
};

}  // namespace hash
}  // namespace exec
}  // namespace joinboost
