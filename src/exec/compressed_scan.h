#pragma once

#include <string>
#include <vector>

#include "exec/expr_eval.h"
#include "exec/operators.h"
#include "exec/vector.h"
#include "storage/table.h"

namespace joinboost {
namespace exec {

/// Result of a compressed fused scan-filter. When `used` is false the caller
/// must fall back to the decode-everything path (the filter shape or column
/// mix is not coverable); counters are only meaningful when `used`.
struct CompressedScanResult {
  bool used = false;
  ExecTable table;              ///< survivors only, ascending row order
  size_t cols_decompressed = 0; ///< encoded columns with >=1 touched block
  size_t cells_decompressed = 0;  ///< sum of touched blocks' value counts
  size_t cells_avoided = 0;       ///< encoded cells never materialized
  size_t blocks_skipped = 0;      ///< encoded blocks never materialized
  size_t chunks_pruned = 0;       ///< horizontal storage chunks whose blocks
                                  ///< were all eliminated by zone maps alone
                                  ///< (no block in the chunk ever decoded)
};

/// Evaluate `filter` over the (pruned) column subset of `table` directly on
/// the compressed payloads where possible:
///
///   Phase A — conjuncts of the form <encoded col> op <literal>, IN-list and
///   IS [NOT] NULL are lowered into code space once per (conjunct, column):
///   string literals translate to dictionary ids, ranges test against each
///   frame-of-reference block's [min, max] zone map. Blocks proven all-match
///   or none-match are never unpacked; only straddling blocks decode.
///
///   Phase B — remaining conjuncts run through the ordinary vectorized
///   EvalPredicate over the surviving rows only, late-materializing just the
///   blocks that still contain survivors.
///
///   Phase C — requested output columns materialize only the blocks holding
///   finally-selected rows.
///
/// The selected row sequence — and every output cell — is bit-identical to
/// evaluating the filter on fully decoded columns: lowered predicates use
/// the same double-space comparison math as EvalComparison, and per-row
/// independence of the residual conjuncts makes subset evaluation exact.
/// All counters derive from per-(column, block) outcomes, so they are
/// deterministic for any thread count.
CompressedScanResult TryCompressedScan(const Table& table,
                                       const std::string& qualifier,
                                       const std::vector<int>& cols,
                                       const sql::Expr& filter,
                                       EvalContext& ectx, const OpContext& ctx);

}  // namespace exec
}  // namespace joinboost
