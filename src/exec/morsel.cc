#include "exec/morsel.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "sql/expr_util.h"
#include "storage/compression.h"
#include "util/check.h"
#include "util/hash.h"

namespace joinboost {
namespace exec {
namespace morsel {

size_t NumMorsels(const OpContext& ctx, size_t rows) {
  if (rows == 0) return 0;
  // Governed queries always split into logical morsels — even when executed
  // serially — so the guard is checked (and an abort observed) within one
  // morsel of the trigger for any thread count, and guard_checks counts the
  // same logical quantity regardless of how the morsels were scheduled.
  if (!ctx.CanParallel(rows) && ctx.guard == nullptr) return 1;
  size_t mr = std::max<size_t>(ctx.morsel_rows, 1);
  return (rows + mr - 1) / mr;
}

RunStats ForEachMorsel(const OpContext& ctx, size_t rows,
                       const std::function<void(size_t, size_t, size_t)>& fn) {
  RunStats rs;
  if (rows == 0) return rs;
  util::QueryGuard* guard = ctx.guard;
  if (!ctx.CanParallel(rows)) {
    if (guard == nullptr) {
      fn(0, 0, rows);
      rs.morsels = 1;
      return rs;
    }
    // Serial governed path: same logical morsels as the parallel path, with
    // a cooperative guard check ahead of each one.
    size_t mr = std::max<size_t>(ctx.morsel_rows, 1);
    size_t n = (rows + mr - 1) / mr;
    for (size_t m = 0; m < n; ++m) {
      guard->Check();
      fn(m, m * mr, std::min(rows, m * mr + mr));
    }
    rs.morsels = n;
    if (ctx.stats != nullptr && ctx.count_guard_checks) {
      ctx.stats->guard_checks += n;
    }
    return rs;
  }
  size_t mr = std::max<size_t>(ctx.morsel_rows, 1);
  size_t n = (rows + mr - 1) / mr;
  ThreadPool::ParallelForStats ps = ctx.pool->ParallelFor(n, [&](size_t m) {
    if (guard != nullptr) guard->Check();
    size_t begin = m * mr;
    size_t end = std::min(rows, begin + mr);
    fn(m, begin, end);
  });
  rs.morsels = n;
  rs.stolen = ps.helper_items;
  if (ctx.stats != nullptr) {
    // Updated by the dispatching thread only, after all morsels finished.
    ctx.stats->morsels_dispatched += rs.morsels;
    ctx.stats->morsels_stolen += rs.stolen;
    if (guard != nullptr && ctx.count_guard_checks) {
      ctx.stats->guard_checks += n;
    }
  }
  return rs;
}

std::vector<std::pair<size_t, size_t>> ChunkAlignedRanges(
    const OpContext& ctx, const std::vector<size_t>& offsets, size_t rows) {
  std::vector<std::pair<size_t, size_t>> ranges;
  if (rows == 0) return ranges;
  const size_t mr = std::max<size_t>(ctx.morsel_rows, 1);
  size_t prev = 0;
  for (size_t i = 1; i < offsets.size() && prev < rows; ++i) {
    const size_t end = std::min(offsets[i], rows);
    for (size_t b = prev; b < end; b += mr) {
      ranges.emplace_back(b, std::min(end, b + mr));
    }
    prev = std::max(prev, end);
  }
  // Defensive tail in case the offsets list covers fewer than `rows` rows.
  for (size_t b = prev; b < rows; b += mr) {
    ranges.emplace_back(b, std::min(rows, b + mr));
  }
  return ranges;
}

RunStats ForEachRange(const OpContext& ctx, size_t rows,
                      const std::vector<std::pair<size_t, size_t>>& ranges,
                      const std::function<void(size_t, size_t, size_t)>& fn) {
  RunStats rs;
  if (ranges.empty()) return rs;
  util::QueryGuard* guard = ctx.guard;
  if (!ctx.CanParallel(rows) || ranges.size() == 1) {
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (guard != nullptr) guard->Check();
      fn(i, ranges[i].first, ranges[i].second);
    }
    rs.morsels = 1;
    if (guard != nullptr && ctx.stats != nullptr && ctx.count_guard_checks) {
      ctx.stats->guard_checks += ranges.size();
    }
    return rs;
  }
  ThreadPool::ParallelForStats ps =
      ctx.pool->ParallelFor(ranges.size(), [&](size_t i) {
        if (guard != nullptr) guard->Check();
        fn(i, ranges[i].first, ranges[i].second);
      });
  rs.morsels = ranges.size();
  rs.stolen = ps.helper_items;
  if (ctx.stats != nullptr) {
    // Updated by the dispatching thread only, after all ranges finished.
    ctx.stats->morsels_dispatched += rs.morsels;
    ctx.stats->morsels_stolen += rs.stolen;
    if (guard != nullptr && ctx.count_guard_checks) {
      ctx.stats->guard_checks += ranges.size();
    }
  }
  return rs;
}

ExecTable SliceRows(const ExecTable& input, size_t begin, size_t end,
                    const std::vector<size_t>* columns) {
  JB_CHECK(begin <= end && end <= input.rows);
  ExecTable out;
  out.rows = end - begin;
  const size_t n_cols = columns ? columns->size() : input.cols.size();
  out.cols.reserve(n_cols);
  for (size_t ci = 0; ci < n_cols; ++ci) {
    const auto& c = input.cols[columns ? (*columns)[ci] : ci];
    VectorData v;
    v.type = c.data.type;
    v.dict = c.data.dict;
    if (c.data.type == TypeId::kFloat64) {
      const auto& src = *c.data.dbls;
      v.dbls = std::make_shared<const std::vector<double>>(
          src.begin() + static_cast<ptrdiff_t>(begin),
          src.begin() + static_cast<ptrdiff_t>(end));
    } else {
      const auto& src = *c.data.ints;
      v.ints = std::make_shared<const std::vector<int64_t>>(
          src.begin() + static_cast<ptrdiff_t>(begin),
          src.begin() + static_cast<ptrdiff_t>(end));
    }
    out.cols.push_back({c.qualifier, c.name, std::move(v)});
  }
  return out;
}

namespace {

bool IsComparisonOp(const std::string& op) {
  return op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

bool ExprNodeSafe(const sql::Expr& e) {
  switch (e.kind) {
    case sql::ExprKind::kInSubquery:
    case sql::ExprKind::kAggCall:
    case sql::ExprKind::kWindowAgg:
      return false;
    case sql::ExprKind::kStringLiteral:
      // A string literal in value position mints a private dictionary per
      // evaluation, so per-morsel results could not be concatenated — the
      // runtime homogeneity check would discard all the parallel work.
      return false;
    case sql::ExprKind::kBinary:
      if (IsComparisonOp(e.op)) {
        // Comparison results are plain ints and a literal operand adopts
        // the other side's dictionary: direct string literals are safe.
        for (const auto& a : e.args) {
          if (a && a->kind != sql::ExprKind::kStringLiteral &&
              !ExprNodeSafe(*a)) {
            return false;
          }
        }
        return true;
      }
      break;
    case sql::ExprKind::kInList:
      // List members only feed the membership set; the result is int.
      return !e.args.empty() && e.args[0] && ExprNodeSafe(*e.args[0]);
    default:
      break;
  }
  for (const auto& a : e.args) {
    if (a && !ExprNodeSafe(*a)) return false;
  }
  for (const auto& p : e.partition_by) {
    if (p && !ExprNodeSafe(*p)) return false;
  }
  return e.subquery == nullptr;
}

/// Input columns `e` could resolve against: every column a ref's
/// first-match lookup might land on (same name; qualifier matching or
/// absent). Slicing only these keeps per-morsel copies proportional to the
/// expression, not the table width, without changing name resolution.
std::vector<size_t> UsedColumns(const sql::Expr& e, const ExecTable& input) {
  std::vector<const sql::Expr*> refs;
  sql::CollectColumnRefs(e, &refs);
  std::vector<size_t> used;
  for (size_t c = 0; c < input.cols.size(); ++c) {
    for (const auto* r : refs) {
      if (r->column == input.cols[c].name &&
          (r->table.empty() || r->table == input.cols[c].qualifier)) {
        used.push_back(c);
        break;
      }
    }
  }
  return used;
}

/// Per-morsel results must agree on type and dictionary before they can be
/// concatenated into one vector.
bool PartsHomogeneous(const std::vector<VectorData>& parts) {
  for (size_t i = 1; i < parts.size(); ++i) {
    if (parts[i].type != parts[0].type) return false;
    if (parts[i].dict != parts[0].dict) return false;
  }
  return true;
}

VectorData ConcatParts(const std::vector<VectorData>& parts, size_t rows) {
  VectorData out;
  out.type = parts[0].type;
  out.dict = parts[0].dict;
  if (out.type == TypeId::kFloat64) {
    std::vector<double> data;
    data.reserve(rows);
    for (const auto& p : parts) data.insert(data.end(), p.dbls->begin(),
                                            p.dbls->end());
    out.dbls = std::make_shared<const std::vector<double>>(std::move(data));
  } else {
    std::vector<int64_t> data;
    data.reserve(rows);
    for (const auto& p : parts) data.insert(data.end(), p.ints->begin(),
                                            p.ints->end());
    out.ints = std::make_shared<const std::vector<int64_t>>(std::move(data));
  }
  return out;
}

}  // namespace

bool ExprMorselSafe(const sql::Expr& e, const EvalContext& ectx) {
  return ectx.overrides.empty() && ExprNodeSafe(e);
}

VectorData ParallelEvalExpr(const sql::Expr& e, const ExecTable& input,
                            EvalContext& ectx, const OpContext& ctx) {
  // Bare column refs are zero-copy in EvalExpr; slicing would only add
  // copies. Same for anything the morsel contract cannot cover.
  size_t n = NumMorsels(ctx, input.rows);
  if (e.kind == sql::ExprKind::kColumnRef || n <= 1 ||
      !ExprMorselSafe(e, ectx)) {
    return EvalExpr(e, input, ectx);
  }
  std::vector<size_t> used = UsedColumns(e, input);
  std::vector<VectorData> parts(n);
  ForEachMorsel(ctx, input.rows, [&](size_t m, size_t begin, size_t end) {
    ExecTable slice = SliceRows(input, begin, end, &used);
    EvalContext local;  // overrides verified empty; no subqueries reachable
    parts[m] = EvalExpr(e, slice, local);
  });
  if (!PartsHomogeneous(parts)) {
    // String-literal expressions mint a private dictionary per evaluation;
    // re-evaluate serially rather than merging dictionaries.
    return EvalExpr(e, input, ectx);
  }
  return ConcatParts(parts, input.rows);
}

std::vector<uint32_t> ParallelEvalPredicate(const sql::Expr& e,
                                            const ExecTable& input,
                                            EvalContext& ectx,
                                            const OpContext& ctx) {
  size_t n = NumMorsels(ctx, input.rows);
  if (n <= 1 || !ExprMorselSafe(e, ectx)) {
    return EvalPredicate(e, input, ectx, ctx.row_mode);
  }
  std::vector<size_t> used = UsedColumns(e, input);
  std::vector<std::vector<uint32_t>> parts(n);
  ForEachMorsel(ctx, input.rows, [&](size_t m, size_t begin, size_t end) {
    ExecTable slice = SliceRows(input, begin, end, &used);
    EvalContext local;
    std::vector<uint32_t> sel =
        EvalPredicate(e, slice, local, /*row_mode=*/false);
    for (uint32_t& r : sel) r += static_cast<uint32_t>(begin);
    parts[m] = std::move(sel);
  });
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<uint32_t> out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

namespace {

template <typename T, typename GetFn>
std::shared_ptr<const std::vector<T>> GatherInto(
    const std::vector<uint32_t>& idx, const OpContext& ctx, GetFn get) {
  auto data = std::make_shared<std::vector<T>>(idx.size());
  std::vector<T>& dst = *data;
  ForEachMorsel(ctx, idx.size(), [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) dst[i] = get(idx[i]);
  });
  return std::shared_ptr<const std::vector<T>>(std::move(data));
}

}  // namespace

VectorData ParallelGather(const VectorData& v,
                          const std::vector<uint32_t>& idx,
                          const OpContext& ctx) {
  // Governed gathers always take the logical-morsel loop — even serially —
  // so guard checks land within one morsel and guard_checks counts the same
  // structure for any thread count.
  if (!ctx.CanParallel(idx.size()) && ctx.guard == nullptr) {
    return v.Gather(idx);
  }
  VectorData out;
  out.type = v.type;
  out.dict = v.dict;
  if (v.type == TypeId::kFloat64) {
    const auto& src = *v.dbls;
    out.dbls = GatherInto<double>(idx, ctx,
                                  [&src](uint32_t i) { return src[i]; });
  } else {
    const auto& src = *v.ints;
    out.ints = GatherInto<int64_t>(idx, ctx,
                                   [&src](uint32_t i) { return src[i]; });
  }
  return out;
}

VectorData ParallelGatherWithNulls(const VectorData& v,
                                   const std::vector<uint32_t>& idx,
                                   const OpContext& ctx) {
  VectorData out;
  out.type = v.type;
  out.dict = v.dict;
  if (v.type == TypeId::kFloat64) {
    const auto& src = *v.dbls;
    out.dbls = GatherInto<double>(idx, ctx, [&src](uint32_t i) {
      return i == UINT32_MAX ? NullFloat64() : src[i];
    });
  } else {
    const auto& src = *v.ints;
    out.ints = GatherInto<int64_t>(idx, ctx, [&src](uint32_t i) {
      return i == UINT32_MAX ? kNullInt64 : src[i];
    });
  }
  return out;
}

ExecTable ParallelGatherRows(const ExecTable& input,
                             const std::vector<uint32_t>& idx,
                             const OpContext& ctx) {
  if (!ctx.CanParallel(idx.size()) && ctx.guard == nullptr) {
    return input.GatherRows(idx);
  }
  ExecTable out;
  out.rows = idx.size();
  out.cols.reserve(input.cols.size());
  for (const auto& c : input.cols) {
    out.cols.push_back({c.qualifier, c.name, ParallelGather(c.data, idx, ctx)});
  }
  return out;
}

namespace {

/// Mix one key column into the shared hash buffer over [begin, end). The
/// per-cell math matches the row-mode hasher exactly:
/// h = HashCombine(h, cell_bits) — HashCombine SplitMix64-mixes its value
/// argument internally, so no extra finalizer pass is needed per cell.
void MixColumnHash(const VectorData& v, size_t begin, size_t end,
                   uint64_t* out) {
  if (v.type == TypeId::kFloat64) {
    const double* src = v.dbls->data();
    for (size_t r = begin; r < end; ++r) {
      int64_t bits;
      std::memcpy(&bits, &src[r], 8);
      out[r] = HashCombine(out[r], static_cast<uint64_t>(bits));
    }
  } else {
    const int64_t* src = v.ints->data();
    for (size_t r = begin; r < end; ++r) {
      out[r] = HashCombine(out[r], static_cast<uint64_t>(src[r]));
    }
  }
}

/// Mix one encoded key column into the hash buffer straight from the packed
/// payload — no decode buffer. Each cell's bits are reconstructed as
/// reference + delta in unsigned space, which is exactly the value the
/// decoded vector would hold, so hashes (and therefore partition ownership
/// and probe order) are identical to MixColumnHash over decoded ints.
void MixColumnHashEncoded(const EncodedView& view, size_t begin, size_t end,
                          uint64_t* out) {
  // Locate the chunk slice containing `begin`; slices are ordered by
  // row_begin, and block indices restart at every slice.
  size_t si = static_cast<size_t>(
                  std::upper_bound(view.slices.begin(), view.slices.end(),
                                   begin,
                                   [](size_t row, const EncodedView::Slice& s) {
                                     return row < s.row_begin;
                                   }) -
                  view.slices.begin()) -
              1;
  size_t r = begin;
  for (; r < end; ++si) {
    const EncodedView::Slice& slice = view.slices[si];
    const compression::EncodedInts& enc = *slice.enc;
    const size_t sbegin = slice.row_begin;
    const size_t slice_stop = std::min(end, sbegin + enc.size);
    size_t b = (r - sbegin) / compression::kBlockSize;
    for (; r < slice_stop; ++b) {
      const compression::EncodedInts::Block& blk = enc.blocks[b];
      const size_t base = sbegin + b * compression::kBlockSize;
      const size_t stop = std::min(slice_stop, base + blk.count);
      const uint64_t uref = static_cast<uint64_t>(blk.reference);
      const uint8_t bw = blk.bit_width;
      if (bw == 0) {
        for (; r < stop; ++r) out[r] = HashCombine(out[r], uref);
        continue;
      }
      const uint64_t mask = bw == 64 ? ~0ULL : ((1ULL << bw) - 1);
      const uint64_t* words = blk.words.data();
      for (; r < stop; ++r) {
        const size_t bit_pos = (r - base) * bw;
        const size_t word = bit_pos >> 6;
        const size_t offset = bit_pos & 63;
        uint64_t v = words[word] >> offset;
        if (offset + bw > 64) v |= words[word + 1] << (64 - offset);
        out[r] = HashCombine(out[r], uref + (v & mask));
      }
    }
  }
}

/// Row-mode hashing goes through Value materialization — the per-tuple
/// overhead that makes row engines slower on analytics. Produces the same
/// hash values as the columnar path.
uint64_t HashRowSlow(const std::vector<const VectorData*>& cols, size_t row) {
  uint64_t h = kKeyHashSeed;
  for (const auto* c : cols) {
    Value v = c->GetValue(row);
    uint64_t cell = v.type == TypeId::kFloat64
                        ? [&] {
                            int64_t bits;
                            std::memcpy(&bits, &v.d, 8);
                            return static_cast<uint64_t>(bits);
                          }()
                        : static_cast<uint64_t>(v.i);
    h = HashCombine(h, cell);
  }
  return h;
}

}  // namespace

std::vector<uint64_t> HashKeys(const std::vector<const VectorData*>& keys,
                               size_t rows, const OpContext& ctx) {
  std::vector<uint64_t> out(rows, kKeyHashSeed);
  if (ctx.row_mode) {
    for (size_t r = 0; r < rows; ++r) out[r] = HashRowSlow(keys, r);
    return out;
  }
  ForEachMorsel(ctx, rows, [&](size_t, size_t begin, size_t end) {
    for (const auto* k : keys) {
      if (k->enc && k->type != TypeId::kFloat64 && k->enc->rows == rows) {
        MixColumnHashEncoded(*k->enc, begin, end, out.data());
      } else {
        MixColumnHash(*k, begin, end, out.data());
      }
    }
  });
  return out;
}

std::vector<std::vector<uint32_t>> PartitionRowsByHash(
    const OpContext& ctx, const std::vector<uint64_t>& hashes, size_t parts) {
  JB_CHECK(parts > 0);
  const size_t n = hashes.size();
  std::vector<std::vector<uint32_t>> out(parts);
  // Morsel-local scatter into (morsel, partition) buffers, then each
  // partition concatenates its buffers in morsel-index order — ascending
  // row order within every partition, the invariant the determinism
  // contract rests on.
  size_t M = NumMorsels(ctx, n);
  std::vector<std::vector<std::vector<uint32_t>>> scatter(
      M, std::vector<std::vector<uint32_t>>(parts));
  // The scatter is a scheduling detail of the partitioned (parallel) path —
  // the serial algorithm has no such pass. Its guard checks still run, but
  // are left out of guard_checks so the counter is thread-count invariant.
  OpContext scatter_ctx = ctx;
  scatter_ctx.count_guard_checks = false;
  ForEachMorsel(scatter_ctx, n, [&](size_t m, size_t begin, size_t end) {
    auto& local = scatter[m];
    for (size_t r = begin; r < end; ++r) {
      local[hashes[r] % parts].push_back(static_cast<uint32_t>(r));
    }
  });
  auto concat = [&](size_t p) {
    std::vector<uint32_t>& rows = out[p];
    size_t total = 0;
    for (size_t m = 0; m < M; ++m) total += scatter[m][p].size();
    rows.reserve(total);
    for (size_t m = 0; m < M; ++m) {
      rows.insert(rows.end(), scatter[m][p].begin(), scatter[m][p].end());
    }
  };
  if (ctx.pool != nullptr && parts > 1) {
    ctx.pool->ParallelFor(parts, concat);
  } else {
    for (size_t p = 0; p < parts; ++p) concat(p);
  }
  return out;
}

}  // namespace morsel
}  // namespace exec
}  // namespace joinboost
