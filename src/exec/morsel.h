#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "exec/expr_eval.h"
#include "exec/operators.h"
#include "exec/vector.h"

namespace joinboost {
namespace exec {
namespace morsel {

/// Morsel-driven execution helpers (Leis et al., adapted): operator inputs
/// are split into fixed-size row ranges ("morsels") dispatched on the shared
/// thread pool; every worker pulls the next morsel from an atomic cursor, so
/// load balances dynamically. Determinism contract: per-morsel outputs are
/// merged in morsel-index (= row) order and no floating-point reduction ever
/// crosses a morsel boundary in a data-dependent order, so results are
/// bit-identical to single-threaded execution for any thread count and any
/// morsel size.

struct RunStats {
  size_t morsels = 0;  ///< ranges dispatched (1 when run serially)
  size_t stolen = 0;   ///< morsels executed by pool workers, not the caller
};

/// Number of morsels `rows` splits into under `ctx` (1 when serial).
size_t NumMorsels(const OpContext& ctx, size_t rows);

/// Run fn(morsel_index, begin, end) over [0, rows). Parallel when the
/// context allows it and `rows` meets the threshold; otherwise one serial
/// call covering the whole range. Exceptions from any morsel propagate to
/// the caller (smallest morsel index wins). Updates ctx.stats counters.
RunStats ForEachMorsel(const OpContext& ctx, size_t rows,
                       const std::function<void(size_t, size_t, size_t)>& fn);

/// Split [0, rows) into morsel-sized ranges that never cross the given
/// storage-chunk boundaries (`offsets` is a chunk_offsets()-style list
/// starting at 0), so each range decodes from exactly one column segment.
/// With a single chunk this degenerates to the plain morsel split.
std::vector<std::pair<size_t, size_t>> ChunkAlignedRanges(
    const OpContext& ctx, const std::vector<size_t>& offsets, size_t rows);

/// Run fn(range_index, begin, end) over pre-computed ranges, in parallel
/// when the context allows it for `rows` total input rows. Ranges partition
/// the input and outputs land at range-local offsets, so results are
/// bit-identical to a serial pass. Counter semantics match ForEachMorsel
/// (stats updated by the dispatching thread, only when run in parallel).
RunStats ForEachRange(const OpContext& ctx, size_t rows,
                      const std::vector<std::pair<size_t, size_t>>& ranges,
                      const std::function<void(size_t, size_t, size_t)>& fn);

/// Materialize rows [begin, end) of `input` as a standalone table (column
/// payloads are copied; dictionaries are shared). Morsel-local evaluation
/// then works on cache-resident vectors. `columns`, when given, restricts
/// the slice to that subset (ascending input positions — relative column
/// order is preserved so first-match name resolution is unchanged).
ExecTable SliceRows(const ExecTable& input, size_t begin, size_t end,
                    const std::vector<size_t>* columns = nullptr);

/// True when `e` can be evaluated independently per morsel: no subqueries
/// (would re-run per morsel), no aggregate/window nodes, and no pre-computed
/// override results in `ectx` (those are full-length vectors aligned to the
/// unsliced input).
bool ExprMorselSafe(const sql::Expr& e, const EvalContext& ectx);

/// EvalExpr over morsel slices, results concatenated in morsel order.
/// Falls back to plain EvalExpr when parallelism is off, the input is small,
/// the expression is not morsel-safe, or per-morsel results disagree on
/// type/dictionary (string-literal producing expressions).
VectorData ParallelEvalExpr(const sql::Expr& e, const ExecTable& input,
                            EvalContext& ectx, const OpContext& ctx);

/// EvalPredicate over morsel slices; selected row ids are rebased to the
/// full table and concatenated in morsel order (== ascending row order,
/// exactly like the serial scan).
std::vector<uint32_t> ParallelEvalPredicate(const sql::Expr& e,
                                            const ExecTable& input,
                                            EvalContext& ectx,
                                            const OpContext& ctx);

/// Morsel-parallel VectorData::Gather into a pre-sized output.
VectorData ParallelGather(const VectorData& v,
                          const std::vector<uint32_t>& idx,
                          const OpContext& ctx);

/// Gather with a null mask: idx entries equal to UINT32_MAX produce NULLs
/// (left-outer join right side).
VectorData ParallelGatherWithNulls(const VectorData& v,
                                   const std::vector<uint32_t>& idx,
                                   const OpContext& ctx);

/// ExecTable::GatherRows with morsel-parallel column materialization.
ExecTable ParallelGatherRows(const ExecTable& input,
                             const std::vector<uint32_t>& idx,
                             const OpContext& ctx);

/// Seed for composite-key hashing. The columnar and row-mode key hashers
/// share it (and the per-cell mixing math), so both produce identical
/// 64-bit hashes — partition ownership and table layout cannot diverge
/// between the vectorized and tuple-at-a-time engines.
constexpr uint64_t kKeyHashSeed = 0xABCDEF0123456789ULL;

/// Column-at-a-time key hashing: every key column is mixed into a shared
/// per-row uint64 buffer one column at a time, with the column's type
/// dispatched once per (column, morsel) instead of once per cell. Runs
/// morsel-parallel when the context allows (pure per-row function, so
/// bit-identical for any thread count). Row-mode contexts fall back to
/// per-tuple Value-materializing hashing — the genuine cost structure of a
/// row engine — which computes the same hash values.
std::vector<uint64_t> HashKeys(const std::vector<const VectorData*>& keys,
                               size_t rows, const OpContext& ctx);

/// Partition rows [0, n) by precomputed hash so partition p owns every row
/// whose hash satisfies h % parts == p, with each partition's row list in
/// ascending order. This is the determinism backbone of the parallel join
/// build and aggregation: a key's rows all land in one partition and keep
/// their serial scan order, so bucket chains and per-group accumulation
/// sequences are identical to single-threaded execution for any partition
/// count. The scatter runs morsel-parallel (O(n) total work regardless of
/// `parts`).
std::vector<std::vector<uint32_t>> PartitionRowsByHash(
    const OpContext& ctx, const std::vector<uint64_t>& hashes, size_t parts);

}  // namespace morsel
}  // namespace exec
}  // namespace joinboost
