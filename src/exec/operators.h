#pragma once

#include <vector>

#include "exec/expr_eval.h"
#include "exec/vector.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"
#include "storage/engine_profile.h"
#include "storage/table.h"
#include "util/query_guard.h"
#include "util/threadpool.h"

namespace joinboost {
namespace exec {

/// Options threaded into operators from the engine profile.
struct OpContext {
  bool row_mode = false;       ///< tuple-at-a-time execution (X-row)
  int threads = 1;             ///< intra-query parallelism
  ThreadPool* pool = nullptr;  ///< shared pool (may be null -> sequential)
  bool interop_scan = false;   ///< dataframe scans pay an extra copy (DP)
  bool compressed_exec = false;  ///< evaluate predicates/hashes on codes
  plan::PlanStats* stats = nullptr;  ///< optional per-query counters
  size_t morsel_rows = 16384;        ///< rows per dispatched morsel
  size_t parallel_threshold = 8192;  ///< inputs below this run serially
  /// Lifecycle guard (cancellation / deadline / byte budget); nullptr =
  /// ungoverned. Checked at morsel boundaries, per compressed block, and at
  /// operator output-seal points; tracked allocations charge ChargeBytes().
  util::QueryGuard* guard = nullptr;
  /// When false, guard checks still run but are not added to
  /// PlanStats::guard_checks. Cleared for scheduling-only passes that exist
  /// solely on the parallel path (e.g. the hash-partition scatter), so the
  /// counter reflects the canonical logical check structure and stays
  /// bit-identical across thread counts.
  bool count_guard_checks = true;

  /// True when an operator consuming `rows` input rows should go parallel.
  /// Row-mode (tuple-at-a-time) profiles always run serially: per-tuple
  /// dispatch is the cost structure being emulated.
  bool CanParallel(size_t rows) const {
    return pool != nullptr && threads > 1 && !row_mode &&
           rows >= parallel_threshold && parallel_threshold > 0;
  }
};

/// Planner-driven scan parameters: column subset + fused filter.
struct ScanSpec {
  /// Schema indices to materialize, ascending; nullptr = all columns.
  const std::vector<int>* columns = nullptr;
  /// Predicate fused into the scan (evaluated over the subset, then rows are
  /// gathered once). Requires `ectx` when set.
  const sql::Expr* filter = nullptr;
  EvalContext* ectx = nullptr;
};

/// Scan a base table into an ExecTable. Compressed columns are decompressed
/// (real CPU); dataframe tables additionally pay the interop materialization
/// pass when `ctx.interop_scan` is set (paper §5.4, DP mode). The ScanSpec
/// overload is the planner's fused scan-filter path: only the requested
/// column subset is materialized/decompressed.
ExecTable ScanTable(const Table& table, const std::string& qualifier,
                    const OpContext& ctx);
ExecTable ScanTable(const Table& table, const std::string& qualifier,
                    const OpContext& ctx, const ScanSpec& spec);

/// Keep the rows selected by `pred`.
ExecTable FilterExec(const ExecTable& input, const sql::Expr& pred,
                     EvalContext& ectx, const OpContext& ctx);

/// Hash join. `left_keys`/`right_keys` index into the inputs' columns.
/// Inner and left-outer produce concatenated schemas; semi/anti return the
/// filtered left input.
ExecTable HashJoinExec(const ExecTable& left, const ExecTable& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys, sql::JoinType type,
                       const OpContext& ctx);

/// One aggregate in a grouped select.
struct AggSpec {
  const sql::Expr* node = nullptr;  ///< AST node (identity for overrides)
  std::string func;                 ///< SUM/COUNT/AVG/MIN/MAX
  const sql::Expr* arg = nullptr;   ///< nullptr for COUNT(*)
};

/// Result of grouping: ids and representatives, shared between the hash
/// aggregate and ancestral sampling.
struct GroupResult {
  /// Per input row. NOTE: HashAggExec's parallel path leaves this empty —
  /// it aggregates partition-locally and only needs `representatives`;
  /// consumers that require per-row ids must use GroupRows directly.
  std::vector<uint32_t> group_ids;
  std::vector<uint32_t> representatives;   ///< one input row per group
  size_t num_groups = 0;
};

/// Group rows by the given key columns.
GroupResult GroupRows(const ExecTable& input, const std::vector<int>& key_cols,
                      const OpContext& ctx);

/// Hash aggregation: evaluates key exprs + aggregates; output columns are
/// [keys..., one column per AggSpec] and the override map is filled so the
/// caller can project arbitrary expressions over aggregate results.
ExecTable HashAggExec(const ExecTable& input,
                      const std::vector<sql::ExprPtr>& group_by,
                      const std::vector<AggSpec>& aggs, EvalContext& ectx,
                      const OpContext& ctx,
                      std::vector<VectorData>* agg_outputs);

/// Result of the multi-aggregate (GROUP BY GROUPING SETS) operator: one
/// output row per group of each grouping set, sets concatenated in
/// declaration order. `table` holds the union of all key expressions (in
/// first-appearance order, NULL-extended for rows whose set lacks the key)
/// followed by one column per aggregate; `grouping_id` carries the set index
/// of every row (the GROUPING_ID() pseudo-function).
struct MultiAggResult {
  ExecTable table;
  std::vector<VectorData> agg_outputs;    ///< aligned with the AggSpec list
  VectorData grouping_id;                 ///< int64 set index per output row
  std::vector<std::string> union_key_sql; ///< printed key exprs, union order
};

/// Evaluate every grouping set over one shared input. Key expressions and
/// aggregate arguments are evaluated exactly once; each set then reuses the
/// partitioned-aggregation machinery of HashAggExec, so every set's groups,
/// accumulation order and float results are bit-identical to running that
/// set's plain GROUP BY — serial or parallel, any thread count.
MultiAggResult MultiAggExec(const ExecTable& input,
                            const std::vector<std::vector<sql::ExprPtr>>& sets,
                            const std::vector<AggSpec>& aggs,
                            EvalContext& ectx, const OpContext& ctx);

/// Sort by order items (expressions evaluated against `input`). Sort keys
/// are evaluated morsel-parallel; the comparison sort itself stays serial
/// (stable_sort, deterministic).
ExecTable SortExec(const ExecTable& input,
                   const std::vector<sql::OrderItem>& order, EvalContext& ectx,
                   const OpContext& ctx);

ExecTable LimitExec(const ExecTable& input, int64_t limit);

/// Compute a window aggregate (currently SUM/COUNT/AVG OVER (PARTITION BY
/// ... ORDER BY ...)) returning one value per input row in input order.
VectorData WindowExec(const ExecTable& input, const sql::Expr& win,
                      EvalContext& ectx);

/// Concatenate two exec tables' columns (used by joins).
ExecTable ConcatColumns(ExecTable left, ExecTable right);

}  // namespace exec
}  // namespace joinboost
