#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "exec/vector.h"
#include "plan/logical_plan.h"
#include "plan/plan_cache.h"
#include "sql/ast.h"
#include "stats/stats_manager.h"
#include "storage/catalog.h"
#include "storage/engine_profile.h"
#include "storage/mvcc.h"
#include "storage/wal.h"
#include "util/query_guard.h"
#include "util/threadpool.h"

namespace joinboost {
namespace exec {

/// Everything a read needs to resolve and execute: which catalog base tables
/// come from (null = the database's live catalog; the serving layer passes a
/// session's pinned snapshot so concurrent writers stay invisible), an
/// optional profile override (planner/threads/compressed-exec knobs; threads
/// are still clamped to the engine pool), and the query-log tag. This is the
/// single read entry point's context — Database::Query(const ReadContext&,
/// ...) subsumes the old RunSelect/RunSelectOn/QueryOn trio.
struct ReadContext {
  const Catalog* catalog = nullptr;        ///< null = live catalog
  const EngineProfile* profile = nullptr;  ///< null = database profile
  std::string tag;                         ///< query-log label (parse paths)
  /// Optional lifecycle guard (cancellation / deadline / byte budget).
  /// Checked at every morsel boundary, per compressed block, and at operator
  /// seal points; subqueries inherit it through the recursive Query call.
  /// Null = ungoverned (zero-overhead fast path).
  util::QueryGuard* guard = nullptr;
};

/// The engine facade: a self-contained in-memory SQL database. JoinBoost's
/// trainers talk to it exclusively through SQL strings (paper criterion C1),
/// except for the single column-swap extension the paper proposes for
/// columnar engines (§5.4) which is exposed as SwapColumns().
class Database {
 public:
  explicit Database(EngineProfile profile = EngineProfile::DSwap());
  ~Database();

  Catalog& catalog() { return catalog_; }
  const EngineProfile& profile() const { return profile_; }
  WriteAheadLog& wal() { return *wal_; }
  VersionStore& versions() { return versions_; }
  ThreadPool& pool() { return *pool_; }

  struct Result {
    std::shared_ptr<ExecTable> table;  ///< non-null for SELECT
    size_t affected = 0;               ///< rows touched by UPDATE
  };

  /// Parse and execute one SQL statement. `tag` labels the query-log entry
  /// (the paper's Figure 9 classifies queries by role).
  Result Execute(const std::string& sql, const std::string& tag = "");

  /// Execute a SELECT and return the result table.
  std::shared_ptr<ExecTable> Query(const std::string& sql,
                                   const std::string& tag = "");

  /// First row / first column as double (aggregate probes).
  double QueryScalarDouble(const std::string& sql, const std::string& tag = "");

  /// THE read entry point: execute a parsed SELECT under `rctx` (catalog,
  /// profile overrides). Routes through the logical planner unless the
  /// effective profile's use_planner is off, in which case the raw AST is
  /// executed (differential-test path). Not query-logged.
  ExecTable Query(const ReadContext& rctx, const sql::SelectStmt& stmt);

  /// Parse + execute a SELECT under `rctx`; logged under rctx.tag.
  std::shared_ptr<ExecTable> Query(const ReadContext& rctx,
                                   const std::string& sql);

  /// Deprecated: use Query(ReadContext{}, stmt).
  ExecTable RunSelect(const sql::SelectStmt& stmt);

  /// Deprecated: use Query(ReadContext{&cat}, stmt). This was the serving
  /// layer's versioned-read path: a session resolves every base table
  /// (including subquery scans) through its pinned snapshot catalog, so
  /// concurrent writers publishing new table versions are invisible to it.
  ExecTable RunSelectOn(const Catalog& cat, const sql::SelectStmt& stmt);

  /// Deprecated: use Query(ReadContext{&cat, nullptr, tag}, sql).
  std::shared_ptr<ExecTable> QueryOn(const Catalog& cat,
                                     const std::string& sql,
                                     const std::string& tag = "");

  /// Append `rows` (matched to the table's schema by column name) to table
  /// `name` by sealing new chunks: existing column segments are reused by
  /// pointer — O(new rows), chunks_rewritten stays 0 — and the grown table
  /// is built aside and swapped into the catalog atomically, so concurrent
  /// readers see the old or the new row count, never a torn column set.
  /// Serialized with other writers; honours the profile's WAL/MVCC/
  /// compression costs. Returns the new table.
  TablePtr AppendRows(const std::string& name, const ExecTable& rows);

  /// Plan a SELECT and render its operator tree (the EXPLAIN statement).
  std::string ExplainSelect(const sql::SelectStmt& stmt);

  /// EXPLAIN ANALYZE: plan, execute, and render the tree with per-operator
  /// actual row counts next to the estimates.
  std::string ExplainAnalyzeSelect(const sql::SelectStmt& stmt);

  /// Intra-query thread budget after clamping to the pool size.
  int exec_threads() const { return exec_threads_; }

  /// Morsel policy the planner annotates DOP estimates with (mirrors the
  /// execution thresholds derived from the profile).
  plan::ParallelPolicy parallel_policy() const;

  /// Register a table without storage-profile processing (test datasets).
  void RegisterTable(const TablePtr& table);

  /// Register applying the storage profile (compress when configured) — use
  /// for the persistent base tables of a benchmark.
  void LoadTable(const TablePtr& table);

  /// Materialize a query result under `name` honouring the storage profile
  /// (compression + WAL costs); returns the new table.
  TablePtr MaterializeResult(const std::string& name, const ExecTable& result,
                             bool as_dataframe = false);

  /// Pointer-based column swap between two tables (requires a profile with
  /// allow_column_swap — the engine patch of §5.4).
  void SwapColumns(const std::string& table1, const std::string& col1,
                   const std::string& table2, const std::string& col2);

  // ---- instrumentation ----
  struct QueryLogEntry {
    std::string tag;
    std::string sql;
    double ms = 0;
    size_t rows_out = 0;
  };
  std::vector<QueryLogEntry> QueryLog() const;
  void ClearQueryLog();
  double TotalMsForTag(const std::string& tag) const;
  size_t CountForTag(const std::string& tag) const;

  /// Accumulated planner/scan counters since construction or ClearPlanStats.
  plan::PlanStats PlanStatsTotals() const;
  void ClearPlanStats();

  /// The normalized-shape plan cache (exposed for staleness tests/benches).
  plan::PlanCache& plan_cache() { return plan_cache_; }

 private:
  Result ExecuteStatement(const sql::Statement& stmt);
  size_t ExecuteUpdate(const sql::Statement& stmt);
  void ExecuteCreateTableAs(const sql::Statement& stmt);
  std::shared_ptr<ExecTable> ExecuteExplain(const sql::Statement& stmt);

  /// Legacy data-section execution over the raw AST (planner off). `cat` is
  /// the catalog base tables resolve against (the live catalog_, or a
  /// session's pinned snapshot).
  ExecTable RunFromWhere(const Catalog& cat, const sql::SelectStmt& stmt,
                         OpContext& octx, EvalContext& ectx);
  /// Recursive executor for the planned data section.
  ExecTable ExecutePlanNode(const Catalog& cat, const plan::LogicalOp& op,
                            OpContext& octx, EvalContext& ectx);
  /// Shared finishing pipeline: aggregation/windows, projection, DISTINCT,
  /// ORDER BY, LIMIT.
  ExecTable FinishSelect(const sql::SelectStmt& stmt, ExecTable current,
                         OpContext& octx, EvalContext& ectx);

  EngineProfile profile_;
  Catalog catalog_;
  std::unique_ptr<WriteAheadLog> wal_;
  VersionStore versions_;
  std::unique_ptr<ThreadPool> pool_;
  int exec_threads_ = 1;  ///< profile threads clamped to the pool size
  /// Serializes writers (UPDATE, AppendRows, SwapColumns) — single-threaded
  /// updates as in §5.3.2. Readers are not blocked: they run against
  /// immutable TablePtrs, and writers publish copy-on-write through
  /// Catalog::Register.
  std::mutex update_mu_;

  mutable std::mutex log_mu_;
  std::vector<QueryLogEntry> query_log_;

  mutable std::mutex stats_mu_;
  plan::PlanStats plan_stats_;

  /// Lazy per-column statistics (cost-based planner). Thread-safe; entries
  /// are invalidated by ColumnData version bumps and table replacement.
  stats::StatsManager stats_mgr_;
  /// Normalized-shape plan cache (join-order decisions, literals stripped).
  plan::PlanCache plan_cache_;
};

}  // namespace exec
}  // namespace joinboost
