#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace joinboost {

/// Minimal multi-version store. In-memory DuckDB pays MVCC overheads on
/// updates — versioning plus undo logging (§5.3.2 "Concurrency Control").
/// Before an in-place update we copy the old values of the touched rows into
/// an undo record; RollbackLast() restores them (used by failure-injection
/// tests). The copies are real memory traffic, which is the cost being
/// modelled.
///
/// The store also issues the monotonically increasing snapshot version ids
/// the serving layer publishes through: every writer that installs new table
/// or model state calls PublishVersion() and stamps the resulting snapshot,
/// so concurrent readers can pin "the database as of version v".
class VersionStore {
 public:
  struct Undo {
    std::string table;
    std::string column;
    std::vector<uint32_t> rows;        ///< empty = full column
    std::vector<double> old_doubles;   ///< one of these two is populated
    std::vector<int64_t> old_ints;
    uint64_t txn_id = 0;
  };

  uint64_t BeginTxn() {
    std::lock_guard<std::mutex> lock(mu_);
    return ++next_txn_;
  }

  void RecordDoubles(uint64_t txn, const std::string& table,
                     const std::string& column,
                     const std::vector<uint32_t>& rows,
                     std::vector<double> old_values) {
    std::lock_guard<std::mutex> lock(mu_);
    undo_.push_back({table, column, rows, std::move(old_values), {}, txn});
    bytes_versioned_ += undo_.back().old_doubles.size() * 8;
  }

  void RecordInts(uint64_t txn, const std::string& table,
                  const std::string& column, const std::vector<uint32_t>& rows,
                  std::vector<int64_t> old_values) {
    std::lock_guard<std::mutex> lock(mu_);
    undo_.push_back({table, column, rows, {}, std::move(old_values), txn});
    bytes_versioned_ += undo_.back().old_ints.size() * 8;
  }

  /// Pop the most recent undo record (or nullptr-equivalent empty optional).
  bool PopLast(Undo* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (undo_.empty()) return false;
    *out = std::move(undo_.back());
    undo_.pop_back();
    return true;
  }

  size_t num_undo_records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return undo_.size();
  }
  uint64_t bytes_versioned() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_versioned_;
  }

  /// Assign the next published snapshot version id (serving layer). Version
  /// 0 is reserved for "nothing published yet".
  uint64_t PublishVersion() {
    std::lock_guard<std::mutex> lock(mu_);
    return ++published_version_;
  }

  /// Latest published version id (0 before the first publish).
  uint64_t current_version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return published_version_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    undo_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Undo> undo_;
  uint64_t next_txn_ = 0;
  uint64_t bytes_versioned_ = 0;
  uint64_t published_version_ = 0;
};

}  // namespace joinboost
