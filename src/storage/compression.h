#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace joinboost {

/// Block-based lightweight compression, mirroring what columnar engines do and
/// what the paper identifies as a residual-update cost (§5.3.2 "Compression").
/// These are real codecs: encoding and decoding costs are genuine CPU work,
/// not simulated sleeps.
///
/// - Int64: per-block frame-of-reference + bit-packing.
/// - Float64: per-block XOR-with-previous + leading/trailing zero-byte
///   truncation (a simplified Gorilla scheme).
namespace compression {

constexpr size_t kBlockSize = 4096;  ///< values per compressed block

/// Compressed int64 column payload.
struct EncodedInts {
  struct Block {
    int64_t reference = 0;     ///< frame-of-reference minimum
    uint8_t bit_width = 0;     ///< bits per packed delta
    uint32_t count = 0;        ///< number of values
    std::vector<uint64_t> words;  ///< bit-packed deltas
  };
  std::vector<Block> blocks;
  size_t size = 0;

  /// Compressed payload size in bytes (for memory accounting).
  size_t ByteSize() const;
};

/// Compressed float64 column payload.
struct EncodedDoubles {
  struct Block {
    uint32_t count = 0;
    std::vector<uint8_t> bytes;  ///< xor-compressed stream
  };
  std::vector<Block> blocks;
  size_t size = 0;

  size_t ByteSize() const;
};

EncodedInts EncodeInts(const std::vector<int64_t>& values);
std::vector<int64_t> DecodeInts(const EncodedInts& enc);

EncodedDoubles EncodeDoubles(const std::vector<double>& values);
std::vector<double> DecodeDoubles(const EncodedDoubles& enc);

}  // namespace compression
}  // namespace joinboost
