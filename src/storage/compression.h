#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace joinboost {

/// Block-based lightweight compression, mirroring what columnar engines do and
/// what the paper identifies as a residual-update cost (§5.3.2 "Compression").
/// These are real codecs: encoding and decoding costs are genuine CPU work,
/// not simulated sleeps.
///
/// - Int64: per-block frame-of-reference + bit-packing.
/// - Float64: per-block XOR-with-previous + leading/trailing zero-byte
///   truncation (a simplified Gorilla scheme).
namespace compression {

constexpr size_t kBlockSize = 4096;  ///< values per compressed block

/// Compressed int64 column payload.
struct EncodedInts {
  struct Block {
    int64_t reference = 0;     ///< frame-of-reference minimum
    int64_t max = 0;           ///< block maximum (for zone-map skipping)
    uint8_t bit_width = 0;     ///< bits per packed delta; 0 = constant block
    uint32_t count = 0;        ///< number of values
    std::vector<uint64_t> words;  ///< bit-packed deltas (empty when width 0)
  };
  std::vector<Block> blocks;
  size_t size = 0;

  /// Compressed payload size in bytes (for memory accounting).
  size_t ByteSize() const;
};

/// Compressed float64 column payload.
struct EncodedDoubles {
  struct Block {
    uint32_t count = 0;
    std::vector<uint8_t> bytes;  ///< xor-compressed stream
  };
  std::vector<Block> blocks;
  size_t size = 0;

  size_t ByteSize() const;
};

EncodedInts EncodeInts(const std::vector<int64_t>& values);
std::vector<int64_t> DecodeInts(const EncodedInts& enc);

/// Block-at-a-time unpack kernel: writes `block.count` values to `out`.
/// Written so the hot per-word loop auto-vectorizes when the bit width
/// divides 64 (the common case for small-range data); constant blocks
/// (bit_width 0) are a fill. This is the late-materialization primitive —
/// compressed execution decodes only the blocks a query actually touches.
void UnpackBlock(const EncodedInts::Block& block, int64_t* out);

/// Unpack a single value at `index` within a block without materializing the
/// rest (used for point lookups on encoded columns).
int64_t UnpackOne(const EncodedInts::Block& block, size_t index);

EncodedDoubles EncodeDoubles(const std::vector<double>& values);
std::vector<double> DecodeDoubles(const EncodedDoubles& enc);

/// Decode one double block in isolation (each block resets the XOR chain, so
/// blocks are independently decodable). Writes `block.count` values to `out`.
void DecodeDoublesBlock(const EncodedDoubles::Block& block, double* out);

}  // namespace compression
}  // namespace joinboost
