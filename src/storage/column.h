#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/compression.h"
#include "storage/types.h"

namespace joinboost {

/// Append-only shared string dictionary. Codes are dense int64 starting at 0.
class Dictionary {
 public:
  int64_t GetOrAdd(const std::string& s) {
    // Single hash lookup: try_emplace inserts the next dense code or lands
    // on the existing entry.
    auto [it, inserted] =
        index_.try_emplace(s, static_cast<int64_t>(strings_.size()));
    if (inserted) strings_.push_back(s);
    return it->second;
  }

  /// Returns the code or kNullInt64 when absent.
  int64_t Find(const std::string& s) const {
    auto it = index_.find(s);
    return it == index_.end() ? kNullInt64 : it->second;
  }

  const std::string& At(int64_t code) const { return strings_.at(code); }
  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int64_t> index_;
};

using DictionaryPtr = std::shared_ptr<Dictionary>;

class ColumnData;
using ColumnPtr = std::shared_ptr<ColumnData>;

/// One immutable horizontal segment of a column. A segment holds either a
/// plain payload or a compressed one (never both) and is never mutated after
/// it is sealed: appends add new segments behind the existing ones and
/// rewrites build replacement segments aside, so concurrent readers keep
/// whatever segment list they captured. `uid` is a process-unique identity
/// that survives Encode/Decode (representation changes, values don't) —
/// caches such as per-segment statistics key on it to recognise unchanged
/// segments across column rebuilds.
struct ColumnChunk {
  size_t rows = 0;
  bool encoded = false;
  uint64_t uid = 0;
  std::shared_ptr<const std::vector<int64_t>> ints;
  std::shared_ptr<const std::vector<double>> dbls;
  std::shared_ptr<const compression::EncodedInts> enc_ints;
  std::shared_ptr<const compression::EncodedDoubles> enc_dbls;
};
using ChunkPtr = std::shared_ptr<const ColumnChunk>;

/// Chunk-aware zero-copy view over a fully encoded int/string column: one
/// slice per chunk, ordered by row_begin. Consumers that operate directly on
/// packed words (hashing) iterate slices so chunk boundaries never change
/// the per-row values they produce.
struct EncodedView {
  struct Slice {
    size_t row_begin = 0;
    std::shared_ptr<const compression::EncodedInts> enc;
  };
  std::vector<Slice> slices;
  size_t rows = 0;
};

/// One column of a table: an ordered list of immutable horizontal chunks
/// (Hyrise-style segments). Each chunk independently holds a plain vector or
/// a compressed payload with its own zone maps, so appends seal new chunks in
/// O(new rows) and never rewrite existing segments. A freshly built column
/// has a single chunk — the monolithic layout — unless a chunk size was
/// requested; all read paths are layout-oblivious and return bit-identical
/// results for any chunking. Plain payloads stay behind shared_ptr so scans
/// can be zero-copy and the engine's *column swap* (paper §5.4, D-Swap) is a
/// pointer exchange of the whole segment list.
class ColumnData {
 public:
  /// The one construction entry point: adopt a sealed chunk list. Chunks must
  /// match `type` (int payloads for kInt64/kString, double payloads for
  /// kFloat64); kString requires a dictionary. An empty list builds a valid
  /// zero-row column. Use ColumnBuilder to produce chunk lists from values.
  static ColumnPtr FromChunks(TypeId type, std::vector<ChunkPtr> chunks,
                              DictionaryPtr dict = nullptr);

  TypeId type() const { return type_; }
  size_t size() const { return length_; }
  /// True when any chunk is compressed (reading it costs a decode).
  bool encoded() const;
  const DictionaryPtr& dict() const { return dict_; }

  /// Chunk layout. `chunk_offsets()` has num_chunks()+1 entries; chunk i
  /// covers rows [offsets[i], offsets[i+1]). There is always at least one
  /// chunk (a zero-row column has one empty chunk).
  size_t num_chunks() const { return chunks_.size(); }
  const ChunkPtr& chunk(size_t i) const { return chunks_[i]; }
  const std::vector<ChunkPtr>& chunks() const { return chunks_; }
  const std::vector<size_t>& chunk_offsets() const { return offsets_; }

  /// Monotonic payload version: bumped by every value-changing mutation
  /// (ReplaceInts/ReplaceDoubles/SwapPayload). Encode/Decode/Rechunk keep the
  /// version — they change representation, not values. Statistics caches pair
  /// this with the column's identity to detect staleness.
  uint64_t version() const { return version_; }

  /// Compress every plain chunk (real CPU cost). No-op when already encoded.
  void Encode();

  /// Decompress every chunk back to plain storage. No-op when plain.
  void Decode();

  /// Re-slice into uniform chunks of `rows_per_chunk` rows (0 = one chunk).
  /// Values, version, and encoded state are preserved; segment identities
  /// change. Used at load time to apply EngineProfile::chunk_rows.
  void Rechunk(size_t rows_per_chunk);

  /// Plain int64 payload; requires a single-chunk plain int/string column.
  /// Multi-chunk consumers use MaterializeInts/ScanInts instead.
  const std::shared_ptr<const std::vector<int64_t>>& PlainInts() const;
  /// Plain float64 payload; requires a single-chunk plain float column.
  const std::shared_ptr<const std::vector<double>>& PlainDoubles() const;

  /// Decoded copies (decompressing if needed) — used by scans of compressed
  /// tables, which pay the decompression each query like a real engine.
  std::vector<int64_t> DecodeInts() const;
  std::vector<double> DecodeDoubles() const;

  /// Per-column scan entry points: zero-copy share of the plain payload when
  /// the column is a single plain chunk, or a freshly stitched/decompressed
  /// copy otherwise (the per-query decode cost a real columnar engine pays).
  /// These are what the planner's projection pruning avoids calling for
  /// unreferenced columns.
  std::shared_ptr<const std::vector<int64_t>> ScanInts() const;
  std::shared_ptr<const std::vector<double>> ScanDoubles() const;

  /// Decode rows [begin, end) into `out` (which holds end-begin slots),
  /// handling chunk straddling and non-block-aligned edges. This is the
  /// chunk-aligned morsel decode primitive: any partition of [0, size())
  /// produces the same bytes.
  void MaterializeInts(size_t begin, size_t end, int64_t* out) const;
  void MaterializeDoubles(size_t begin, size_t end, double* out) const;

  /// Zero-copy chunked view of the compressed payload for hashing directly
  /// on packed words. Null unless every chunk is encoded and the column is
  /// int/string typed.
  std::shared_ptr<const EncodedView> EncodedIntsView() const;

  /// Replace the payload wholesale (CREATE-style rewrite; single plain chunk).
  void ReplaceInts(std::vector<int64_t> values);
  void ReplaceDoubles(std::vector<double> values);

  /// In-memory footprint in bytes (plain or compressed, summed over chunks).
  size_t ByteSize() const;

  /// Pointer-swap segment lists with another column of the same type.
  /// This is the <100-LOC engine patch the paper adds to DuckDB.
  void SwapPayload(ColumnData& other);

  Value GetValue(size_t row) const;

 private:
  size_t ChunkIndexOf(size_t row) const;

  TypeId type_ = TypeId::kInt64;
  size_t length_ = 0;
  uint64_t version_ = 0;
  std::vector<ChunkPtr> chunks_;
  std::vector<size_t> offsets_;  // size num_chunks()+1, offsets_[0] == 0
  DictionaryPtr dict_;
};

/// Builds chunked columns from values. The single construction path for
/// tables, query-result materialization, and appends:
///
///   ColumnPtr c = ColumnBuilder(TypeId::kInt64)
///                     .ChunkRows(1024)
///                     .AppendInts(std::move(values))
///                     .Build();
///
/// ChunkRows(0) (the default) seals everything into one chunk — the
/// monolithic layout. ChunkOffsets() instead reproduces an explicit layout
/// (used by UPDATE rewrites to preserve a column's existing boundaries).
/// Adopt* is the zero-copy path: with the default single-chunk layout the
/// shared payload becomes the chunk without copying.
class ColumnBuilder {
 public:
  explicit ColumnBuilder(TypeId type, DictionaryPtr dict = nullptr);

  /// Seal a chunk every `rows` rows (0 = single chunk). The last chunk may be
  /// ragged.
  ColumnBuilder& ChunkRows(size_t rows);
  /// Reproduce an explicit layout: boundaries[i]..boundaries[i+1] per chunk.
  /// Overrides ChunkRows. Must start at 0 and end at the total row count.
  ColumnBuilder& ChunkOffsets(std::vector<size_t> offsets);

  ColumnBuilder& AppendInts(std::vector<int64_t> values);
  ColumnBuilder& AppendDoubles(std::vector<double> values);
  /// Dictionary-encodes in row order (code assignment is append-order
  /// deterministic, independent of chunking).
  ColumnBuilder& AppendStrings(const std::vector<std::string>& values);
  /// Pre-coded string values sharing the builder's dictionary.
  ColumnBuilder& AppendCodes(std::vector<int64_t> codes);

  /// Zero-copy adoption of a shared payload (query-result materialization).
  /// With the default single-chunk layout and nothing appended yet, the
  /// payload is adopted without copying; otherwise values are copied through
  /// the chunking path.
  ColumnBuilder& AdoptInts(std::shared_ptr<const std::vector<int64_t>> v);
  ColumnBuilder& AdoptDoubles(std::shared_ptr<const std::vector<double>> v);

  /// Returns the finished column and resets the builder.
  ColumnPtr Build();

  const DictionaryPtr& dict() const { return dict_; }

 private:
  bool CanAdoptWhole() const;
  void Spill();

  TypeId type_;
  DictionaryPtr dict_;
  size_t chunk_rows_ = 0;
  std::vector<size_t> explicit_offsets_;
  ChunkPtr adopted_;  // whole-payload zero-copy fast path
  std::vector<int64_t> pend_ints_;
  std::vector<double> pend_dbls_;
};

}  // namespace joinboost
