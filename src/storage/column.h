#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/compression.h"
#include "storage/types.h"

namespace joinboost {

/// Append-only shared string dictionary. Codes are dense int64 starting at 0.
class Dictionary {
 public:
  int64_t GetOrAdd(const std::string& s) {
    // Single hash lookup: try_emplace inserts the next dense code or lands
    // on the existing entry.
    auto [it, inserted] =
        index_.try_emplace(s, static_cast<int64_t>(strings_.size()));
    if (inserted) strings_.push_back(s);
    return it->second;
  }

  /// Returns the code or kNullInt64 when absent.
  int64_t Find(const std::string& s) const {
    auto it = index_.find(s);
    return it == index_.end() ? kNullInt64 : it->second;
  }

  const std::string& At(int64_t code) const { return strings_.at(code); }
  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int64_t> index_;
};

using DictionaryPtr = std::shared_ptr<Dictionary>;

class ColumnData;
using ColumnPtr = std::shared_ptr<ColumnData>;

/// One column of a table. Data lives either in a plain (uncompressed) vector
/// or in a compressed payload; never both. Plain payloads are held behind
/// shared_ptr so scans can be zero-copy and so the engine's *column swap*
/// (paper §5.4, D-Swap) is a pointer exchange.
class ColumnData {
 public:
  static ColumnPtr MakeInts(std::vector<int64_t> values);
  static ColumnPtr MakeDoubles(std::vector<double> values);
  static ColumnPtr MakeStrings(const std::vector<std::string>& values,
                               DictionaryPtr dict = nullptr);
  /// A dict-code column that shares an existing dictionary.
  static ColumnPtr MakeDictCodes(std::vector<int64_t> codes, DictionaryPtr dict);

  /// Zero-copy adoption of shared payloads (used when materializing query
  /// results into tables).
  static ColumnPtr AdoptInts(std::shared_ptr<const std::vector<int64_t>> v);
  static ColumnPtr AdoptDoubles(std::shared_ptr<const std::vector<double>> v);
  static ColumnPtr AdoptCodes(std::shared_ptr<const std::vector<int64_t>> v,
                              DictionaryPtr dict);

  TypeId type() const { return type_; }
  size_t size() const { return length_; }
  bool encoded() const { return encoded_; }
  const DictionaryPtr& dict() const { return dict_; }

  /// Monotonic payload version: bumped by every value-changing mutation
  /// (ReplaceInts/ReplaceDoubles/SwapPayload). Encode/Decode keep the version
  /// — they change representation, not values. Statistics caches pair this
  /// with the column's identity to detect staleness.
  uint64_t version() const { return version_; }

  /// Compress the payload (real CPU cost). No-op when already encoded.
  void Encode();

  /// Decompress back to plain storage (real CPU cost). No-op when plain.
  void Decode();

  /// Plain int64 payload; requires !encoded() and an int/string column.
  const std::shared_ptr<const std::vector<int64_t>>& PlainInts() const;
  /// Plain float64 payload; requires !encoded() and a float column.
  const std::shared_ptr<const std::vector<double>>& PlainDoubles() const;

  /// Decoded copies (decompressing if needed) — used by scans of compressed
  /// tables, which pay the decompression each query like a real engine.
  std::vector<int64_t> DecodeInts() const;
  std::vector<double> DecodeDoubles() const;

  /// Per-column scan entry points: zero-copy share of the plain payload, or
  /// a freshly decompressed copy when the column is encoded (the per-query
  /// decode cost a real columnar engine pays). These are what the planner's
  /// projection pruning avoids calling for unreferenced columns.
  std::shared_ptr<const std::vector<int64_t>> ScanInts() const;
  std::shared_ptr<const std::vector<double>> ScanDoubles() const;

  /// Zero-copy handles on the compressed payload for compressed execution
  /// (predicate evaluation / hashing directly on codes). Null when the column
  /// is plain or of the other type.
  std::shared_ptr<const compression::EncodedInts> EncodedIntsPayload() const {
    return enc_ints_;
  }
  std::shared_ptr<const compression::EncodedDoubles> EncodedDoublesPayload()
      const {
    return enc_dbls_;
  }

  /// Replace the payload wholesale (CREATE-style rewrite).
  void ReplaceInts(std::vector<int64_t> values);
  void ReplaceDoubles(std::vector<double> values);

  /// In-memory footprint in bytes (plain or compressed).
  size_t ByteSize() const;

  /// Pointer-swap payloads with another column of the same type.
  /// This is the <100-LOC engine patch the paper adds to DuckDB.
  void SwapPayload(ColumnData& other);

  Value GetValue(size_t row) const;

 private:
  TypeId type_ = TypeId::kInt64;
  size_t length_ = 0;
  bool encoded_ = false;
  uint64_t version_ = 0;
  std::shared_ptr<const std::vector<int64_t>> ints_;
  std::shared_ptr<const std::vector<double>> dbls_;
  std::shared_ptr<const compression::EncodedInts> enc_ints_;
  std::shared_ptr<const compression::EncodedDoubles> enc_dbls_;
  DictionaryPtr dict_;
};

}  // namespace joinboost
