#include "storage/compression.h"

#include <cstring>

#include "util/check.h"

namespace joinboost {
namespace compression {

namespace {

uint8_t BitsNeeded(uint64_t v) {
  uint8_t bits = 0;
  while (v) {
    ++bits;
    v >>= 1;
  }
  return bits == 0 ? 1 : bits;
}

}  // namespace

size_t EncodedInts::ByteSize() const {
  size_t total = 0;
  for (const auto& b : blocks) total += b.words.size() * 8 + 16;
  return total;
}

size_t EncodedDoubles::ByteSize() const {
  size_t total = 0;
  for (const auto& b : blocks) total += b.bytes.size() + 8;
  return total;
}

EncodedInts EncodeInts(const std::vector<int64_t>& values) {
  EncodedInts out;
  out.size = values.size();
  for (size_t start = 0; start < values.size(); start += kBlockSize) {
    size_t end = std::min(values.size(), start + kBlockSize);
    EncodedInts::Block block;
    block.count = static_cast<uint32_t>(end - start);
    int64_t mn = values[start];
    int64_t mx = values[start];
    for (size_t i = start; i < end; ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
    block.reference = mn;
    uint64_t range = static_cast<uint64_t>(mx - mn);
    block.bit_width = BitsNeeded(range);
    size_t total_bits = static_cast<size_t>(block.bit_width) * block.count;
    block.words.assign((total_bits + 63) / 64, 0);
    size_t bit_pos = 0;
    for (size_t i = start; i < end; ++i) {
      uint64_t delta = static_cast<uint64_t>(values[i] - mn);
      size_t word = bit_pos >> 6;
      size_t offset = bit_pos & 63;
      block.words[word] |= delta << offset;
      if (offset + block.bit_width > 64) {
        block.words[word + 1] |= delta >> (64 - offset);
      }
      bit_pos += block.bit_width;
    }
    out.blocks.push_back(std::move(block));
  }
  return out;
}

std::vector<int64_t> DecodeInts(const EncodedInts& enc) {
  std::vector<int64_t> out;
  out.reserve(enc.size);
  for (const auto& block : enc.blocks) {
    const uint64_t mask = block.bit_width == 64
                              ? ~0ULL
                              : ((1ULL << block.bit_width) - 1);
    size_t bit_pos = 0;
    for (uint32_t i = 0; i < block.count; ++i) {
      size_t word = bit_pos >> 6;
      size_t offset = bit_pos & 63;
      uint64_t v = block.words[word] >> offset;
      if (offset + block.bit_width > 64) {
        v |= block.words[word + 1] << (64 - offset);
      }
      out.push_back(block.reference + static_cast<int64_t>(v & mask));
      bit_pos += block.bit_width;
    }
  }
  return out;
}

EncodedDoubles EncodeDoubles(const std::vector<double>& values) {
  EncodedDoubles out;
  out.size = values.size();
  for (size_t start = 0; start < values.size(); start += kBlockSize) {
    size_t end = std::min(values.size(), start + kBlockSize);
    EncodedDoubles::Block block;
    block.count = static_cast<uint32_t>(end - start);
    block.bytes.reserve((end - start) * 5);
    uint64_t prev = 0;
    for (size_t i = start; i < end; ++i) {
      uint64_t bits;
      std::memcpy(&bits, &values[i], 8);
      uint64_t x = bits ^ prev;
      prev = bits;
      // Varint-ish: emit the number of significant bytes, then those bytes,
      // dropping leading zero bytes (most consecutive doubles share exponent
      // and high mantissa bits, so xor leaves low entropy on top).
      uint8_t nbytes = 0;
      uint64_t tmp = x;
      while (tmp) {
        ++nbytes;
        tmp >>= 8;
      }
      block.bytes.push_back(nbytes);
      for (uint8_t b = 0; b < nbytes; ++b) {
        block.bytes.push_back(static_cast<uint8_t>(x >> (8 * b)));
      }
    }
    out.blocks.push_back(std::move(block));
  }
  return out;
}

std::vector<double> DecodeDoubles(const EncodedDoubles& enc) {
  std::vector<double> out;
  out.reserve(enc.size);
  for (const auto& block : enc.blocks) {
    size_t pos = 0;
    uint64_t prev = 0;
    for (uint32_t i = 0; i < block.count; ++i) {
      JB_CHECK(pos < block.bytes.size());
      uint8_t nbytes = block.bytes[pos++];
      uint64_t x = 0;
      for (uint8_t b = 0; b < nbytes; ++b) {
        x |= static_cast<uint64_t>(block.bytes[pos++]) << (8 * b);
      }
      uint64_t bits = x ^ prev;
      prev = bits;
      double v;
      std::memcpy(&v, &bits, 8);
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace compression
}  // namespace joinboost
