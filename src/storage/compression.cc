#include "storage/compression.h"

#include <cstring>

#include "util/check.h"

namespace joinboost {
namespace compression {

namespace {

uint8_t BitsNeeded(uint64_t v) {
  uint8_t bits = 0;
  while (v) {
    ++bits;
    v >>= 1;
  }
  return bits;  // 0 for a zero range: constant blocks carry no packed words
}

}  // namespace

size_t EncodedInts::ByteSize() const {
  size_t total = 0;
  for (const auto& b : blocks) total += b.words.size() * 8 + 16;
  return total;
}

size_t EncodedDoubles::ByteSize() const {
  size_t total = 0;
  for (const auto& b : blocks) total += b.bytes.size() + 8;
  return total;
}

EncodedInts EncodeInts(const std::vector<int64_t>& values) {
  EncodedInts out;
  out.size = values.size();
  for (size_t start = 0; start < values.size(); start += kBlockSize) {
    size_t end = std::min(values.size(), start + kBlockSize);
    EncodedInts::Block block;
    block.count = static_cast<uint32_t>(end - start);
    int64_t mn = values[start];
    int64_t mx = values[start];
    for (size_t i = start; i < end; ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
    block.reference = mn;
    block.max = mx;
    uint64_t range = static_cast<uint64_t>(mx) - static_cast<uint64_t>(mn);
    block.bit_width = BitsNeeded(range);
    size_t total_bits = static_cast<size_t>(block.bit_width) * block.count;
    block.words.assign((total_bits + 63) / 64, 0);
    size_t bit_pos = 0;
    for (size_t i = start; block.bit_width > 0 && i < end; ++i) {
      uint64_t delta =
          static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(mn);
      size_t word = bit_pos >> 6;
      size_t offset = bit_pos & 63;
      block.words[word] |= delta << offset;
      if (offset + block.bit_width > 64) {
        block.words[word + 1] |= delta >> (64 - offset);
      }
      bit_pos += block.bit_width;
    }
    out.blocks.push_back(std::move(block));
  }
  return out;
}

void UnpackBlock(const EncodedInts::Block& block, int64_t* out) {
  const uint8_t bw = block.bit_width;
  if (bw == 0) {
    // Constant block: every value equals the reference, no packed words.
    for (uint32_t i = 0; i < block.count; ++i) out[i] = block.reference;
    return;
  }
  const uint64_t mask = bw == 64 ? ~0ULL : ((1ULL << bw) - 1);
  const uint64_t uref = static_cast<uint64_t>(block.reference);
  const uint64_t* words = block.words.data();
  if (64 % bw == 0) {
    // Aligned widths (1,2,4,8,16,32,64): deltas never straddle a word, so
    // each packed word yields a fixed number of outputs — a branch-free
    // inner loop the compiler can vectorize.
    const uint32_t per_word = 64 / bw;
    uint32_t i = 0;
    for (size_t w = 0; i + per_word <= block.count; ++w) {
      uint64_t bits = words[w];
      for (uint32_t k = 0; k < per_word; ++k) {
        out[i + k] = static_cast<int64_t>(uref + ((bits >> (k * bw)) & mask));
      }
      i += per_word;
    }
    if (i < block.count) {
      uint64_t bits = words[i / per_word];
      for (uint32_t k = 0; i < block.count; ++k, ++i) {
        out[i] = static_cast<int64_t>(uref + ((bits >> (k * bw)) & mask));
      }
    }
    return;
  }
  size_t bit_pos = 0;
  for (uint32_t i = 0; i < block.count; ++i) {
    size_t word = bit_pos >> 6;
    size_t offset = bit_pos & 63;
    uint64_t v = words[word] >> offset;
    if (offset + bw > 64) v |= words[word + 1] << (64 - offset);
    out[i] = static_cast<int64_t>(uref + (v & mask));
    bit_pos += bw;
  }
}

int64_t UnpackOne(const EncodedInts::Block& block, size_t index) {
  const uint8_t bw = block.bit_width;
  if (bw == 0) return block.reference;
  const uint64_t mask = bw == 64 ? ~0ULL : ((1ULL << bw) - 1);
  size_t bit_pos = index * bw;
  size_t word = bit_pos >> 6;
  size_t offset = bit_pos & 63;
  uint64_t v = block.words[word] >> offset;
  if (offset + bw > 64) v |= block.words[word + 1] << (64 - offset);
  return static_cast<int64_t>(static_cast<uint64_t>(block.reference) +
                              (v & mask));
}

std::vector<int64_t> DecodeInts(const EncodedInts& enc) {
  std::vector<int64_t> out(enc.size);
  size_t pos = 0;
  for (const auto& block : enc.blocks) {
    UnpackBlock(block, out.data() + pos);
    pos += block.count;
  }
  return out;
}

EncodedDoubles EncodeDoubles(const std::vector<double>& values) {
  EncodedDoubles out;
  out.size = values.size();
  for (size_t start = 0; start < values.size(); start += kBlockSize) {
    size_t end = std::min(values.size(), start + kBlockSize);
    EncodedDoubles::Block block;
    block.count = static_cast<uint32_t>(end - start);
    block.bytes.reserve((end - start) * 5);
    uint64_t prev = 0;
    for (size_t i = start; i < end; ++i) {
      uint64_t bits;
      std::memcpy(&bits, &values[i], 8);
      uint64_t x = bits ^ prev;
      prev = bits;
      // Varint-ish: emit the number of significant bytes, then those bytes,
      // dropping leading zero bytes (most consecutive doubles share exponent
      // and high mantissa bits, so xor leaves low entropy on top).
      uint8_t nbytes = 0;
      uint64_t tmp = x;
      while (tmp) {
        ++nbytes;
        tmp >>= 8;
      }
      block.bytes.push_back(nbytes);
      for (uint8_t b = 0; b < nbytes; ++b) {
        block.bytes.push_back(static_cast<uint8_t>(x >> (8 * b)));
      }
    }
    out.blocks.push_back(std::move(block));
  }
  return out;
}

void DecodeDoublesBlock(const EncodedDoubles::Block& block, double* out) {
  size_t pos = 0;
  uint64_t prev = 0;  // the XOR chain resets per block, so blocks decode alone
  for (uint32_t i = 0; i < block.count; ++i) {
    JB_CHECK(pos < block.bytes.size());
    uint8_t nbytes = block.bytes[pos++];
    uint64_t x = 0;
    for (uint8_t b = 0; b < nbytes; ++b) {
      x |= static_cast<uint64_t>(block.bytes[pos++]) << (8 * b);
    }
    uint64_t bits = x ^ prev;
    prev = bits;
    std::memcpy(&out[i], &bits, 8);
  }
}

std::vector<double> DecodeDoubles(const EncodedDoubles& enc) {
  std::vector<double> out(enc.size);
  size_t pos = 0;
  for (const auto& block : enc.blocks) {
    DecodeDoublesBlock(block, out.data() + pos);
    pos += block.count;
  }
  return out;
}

}  // namespace compression
}  // namespace joinboost
