#include "storage/column.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/check.h"

namespace joinboost {

namespace {

std::atomic<uint64_t> g_next_chunk_uid{1};

ChunkPtr SealIntsChunk(std::shared_ptr<const std::vector<int64_t>> v) {
  auto ch = std::make_shared<ColumnChunk>();
  ch->rows = v->size();
  ch->uid = g_next_chunk_uid.fetch_add(1);
  ch->ints = std::move(v);
  return ch;
}

ChunkPtr SealDoublesChunk(std::shared_ptr<const std::vector<double>> v) {
  auto ch = std::make_shared<ColumnChunk>();
  ch->rows = v->size();
  ch->uid = g_next_chunk_uid.fetch_add(1);
  ch->dbls = std::move(v);
  return ch;
}

}  // namespace

ColumnPtr ColumnData::FromChunks(TypeId type, std::vector<ChunkPtr> chunks,
                                 DictionaryPtr dict) {
  auto col = std::make_shared<ColumnData>();
  col->type_ = type;
  col->dict_ = std::move(dict);
  if (type == TypeId::kString) {
    JB_CHECK_MSG(col->dict_ != nullptr, "string column requires a dictionary");
  }
  if (chunks.empty()) {
    // A valid zero-row column still has one (empty) chunk so the chunk
    // accessors never face an empty list.
    if (type == TypeId::kFloat64) {
      chunks.push_back(
          SealDoublesChunk(std::make_shared<const std::vector<double>>()));
    } else {
      chunks.push_back(
          SealIntsChunk(std::make_shared<const std::vector<int64_t>>()));
    }
  }
  col->offsets_.reserve(chunks.size() + 1);
  col->offsets_.push_back(0);
  for (const auto& ch : chunks) {
    JB_CHECK_MSG(ch != nullptr, "null column chunk");
    if (type == TypeId::kFloat64) {
      JB_CHECK_MSG(ch->encoded ? ch->enc_dbls != nullptr : ch->dbls != nullptr,
                   "chunk payload does not match float column type");
    } else {
      JB_CHECK_MSG(ch->encoded ? ch->enc_ints != nullptr : ch->ints != nullptr,
                   "chunk payload does not match int column type");
    }
    col->offsets_.push_back(col->offsets_.back() + ch->rows);
  }
  col->length_ = col->offsets_.back();
  col->chunks_ = std::move(chunks);
  return col;
}

bool ColumnData::encoded() const {
  for (const auto& ch : chunks_) {
    if (ch->encoded) return true;
  }
  return false;
}

void ColumnData::Encode() {
  for (auto& ch : chunks_) {
    if (ch->encoded) continue;
    auto enc = std::make_shared<ColumnChunk>();
    enc->rows = ch->rows;
    enc->encoded = true;
    enc->uid = ch->uid;  // representation change, same values
    if (type_ == TypeId::kFloat64) {
      enc->enc_dbls = std::make_shared<const compression::EncodedDoubles>(
          compression::EncodeDoubles(*ch->dbls));
    } else {
      enc->enc_ints = std::make_shared<const compression::EncodedInts>(
          compression::EncodeInts(*ch->ints));
    }
    ch = std::move(enc);
  }
}

void ColumnData::Decode() {
  for (auto& ch : chunks_) {
    if (!ch->encoded) continue;
    auto plain = std::make_shared<ColumnChunk>();
    plain->rows = ch->rows;
    plain->uid = ch->uid;
    if (type_ == TypeId::kFloat64) {
      plain->dbls = std::make_shared<const std::vector<double>>(
          compression::DecodeDoubles(*ch->enc_dbls));
    } else {
      plain->ints = std::make_shared<const std::vector<int64_t>>(
          compression::DecodeInts(*ch->enc_ints));
    }
    ch = std::move(plain);
  }
}

void ColumnData::Rechunk(size_t rows_per_chunk) {
  const bool was_encoded = encoded();
  ColumnBuilder builder(type_, dict_);
  builder.ChunkRows(rows_per_chunk);
  if (type_ == TypeId::kFloat64) {
    builder.AppendDoubles(DecodeDoubles());
  } else if (type_ == TypeId::kString) {
    builder.AppendCodes(DecodeInts());
  } else {
    builder.AppendInts(DecodeInts());
  }
  ColumnPtr fresh = builder.Build();
  if (was_encoded) fresh->Encode();
  chunks_ = std::move(fresh->chunks_);
  offsets_ = std::move(fresh->offsets_);
  // length_, version_, dict_ unchanged: same values, new layout.
}

const std::shared_ptr<const std::vector<int64_t>>& ColumnData::PlainInts()
    const {
  JB_CHECK_MSG(chunks_.size() == 1, "PlainInts on a multi-chunk column");
  JB_CHECK_MSG(!chunks_[0]->encoded, "column is compressed");
  JB_CHECK(type_ != TypeId::kFloat64);
  return chunks_[0]->ints;
}

const std::shared_ptr<const std::vector<double>>& ColumnData::PlainDoubles()
    const {
  JB_CHECK_MSG(chunks_.size() == 1, "PlainDoubles on a multi-chunk column");
  JB_CHECK_MSG(!chunks_[0]->encoded, "column is compressed");
  JB_CHECK(type_ == TypeId::kFloat64);
  return chunks_[0]->dbls;
}

std::vector<int64_t> ColumnData::DecodeInts() const {
  JB_CHECK(type_ != TypeId::kFloat64);
  std::vector<int64_t> out(length_);
  MaterializeInts(0, length_, out.data());
  return out;
}

std::vector<double> ColumnData::DecodeDoubles() const {
  JB_CHECK(type_ == TypeId::kFloat64);
  std::vector<double> out(length_);
  MaterializeDoubles(0, length_, out.data());
  return out;
}

std::shared_ptr<const std::vector<int64_t>> ColumnData::ScanInts() const {
  JB_CHECK(type_ != TypeId::kFloat64);
  if (chunks_.size() == 1 && !chunks_[0]->encoded) return chunks_[0]->ints;
  return std::make_shared<const std::vector<int64_t>>(DecodeInts());
}

std::shared_ptr<const std::vector<double>> ColumnData::ScanDoubles() const {
  JB_CHECK(type_ == TypeId::kFloat64);
  if (chunks_.size() == 1 && !chunks_[0]->encoded) return chunks_[0]->dbls;
  return std::make_shared<const std::vector<double>>(DecodeDoubles());
}

size_t ColumnData::ChunkIndexOf(size_t row) const {
  // offsets_ is strictly increasing except for empty chunks; upper_bound
  // lands on the first offset past `row`, whose predecessor is the chunk.
  auto it = std::upper_bound(offsets_.begin(), offsets_.end(), row);
  return static_cast<size_t>(it - offsets_.begin()) - 1;
}

void ColumnData::MaterializeInts(size_t begin, size_t end, int64_t* out) const {
  JB_CHECK(type_ != TypeId::kFloat64);
  JB_CHECK(begin <= end && end <= length_);
  if (begin == end) return;
  size_t ci = ChunkIndexOf(begin);
  for (size_t r = begin; r < end;) {
    while (r >= offsets_[ci + 1]) ++ci;
    const ColumnChunk& ch = *chunks_[ci];
    const size_t cbegin = offsets_[ci];
    const size_t take_end = std::min(end, offsets_[ci + 1]);
    if (!ch.encoded) {
      const int64_t* src = ch.ints->data();
      std::copy(src + (r - cbegin), src + (take_end - cbegin),
                out + (r - begin));
    } else {
      size_t local = r - cbegin;
      const size_t local_end = take_end - cbegin;
      while (local < local_end) {
        const size_t b = local / compression::kBlockSize;
        const auto& block = ch.enc_ints->blocks[b];
        const size_t bbegin = b * compression::kBlockSize;
        const size_t bend = bbegin + block.count;
        const size_t hi = std::min(local_end, bend);
        if (local == bbegin && hi == bend) {
          compression::UnpackBlock(block, out + (cbegin + local - begin));
        } else {
          int64_t buf[compression::kBlockSize];
          compression::UnpackBlock(block, buf);
          std::copy(buf + (local - bbegin), buf + (hi - bbegin),
                    out + (cbegin + local - begin));
        }
        local = hi;
      }
    }
    r = take_end;
  }
}

void ColumnData::MaterializeDoubles(size_t begin, size_t end,
                                    double* out) const {
  JB_CHECK(type_ == TypeId::kFloat64);
  JB_CHECK(begin <= end && end <= length_);
  if (begin == end) return;
  size_t ci = ChunkIndexOf(begin);
  for (size_t r = begin; r < end;) {
    while (r >= offsets_[ci + 1]) ++ci;
    const ColumnChunk& ch = *chunks_[ci];
    const size_t cbegin = offsets_[ci];
    const size_t take_end = std::min(end, offsets_[ci + 1]);
    if (!ch.encoded) {
      const double* src = ch.dbls->data();
      std::copy(src + (r - cbegin), src + (take_end - cbegin),
                out + (r - begin));
    } else {
      size_t local = r - cbegin;
      const size_t local_end = take_end - cbegin;
      while (local < local_end) {
        const size_t b = local / compression::kBlockSize;
        const auto& block = ch.enc_dbls->blocks[b];
        const size_t bbegin = b * compression::kBlockSize;
        const size_t bend = bbegin + block.count;
        const size_t hi = std::min(local_end, bend);
        if (local == bbegin && hi == bend) {
          compression::DecodeDoublesBlock(block,
                                          out + (cbegin + local - begin));
        } else {
          double buf[compression::kBlockSize];
          compression::DecodeDoublesBlock(block, buf);
          std::copy(buf + (local - bbegin), buf + (hi - bbegin),
                    out + (cbegin + local - begin));
        }
        local = hi;
      }
    }
    r = take_end;
  }
}

std::shared_ptr<const EncodedView> ColumnData::EncodedIntsView() const {
  if (type_ == TypeId::kFloat64) return nullptr;
  auto view = std::make_shared<EncodedView>();
  view->rows = length_;
  view->slices.reserve(chunks_.size());
  for (size_t i = 0; i < chunks_.size(); ++i) {
    if (!chunks_[i]->encoded) return nullptr;
    view->slices.push_back({offsets_[i], chunks_[i]->enc_ints});
  }
  return view;
}

void ColumnData::ReplaceInts(std::vector<int64_t> values) {
  JB_CHECK(type_ != TypeId::kFloat64);
  length_ = values.size();
  chunks_.clear();
  chunks_.push_back(SealIntsChunk(
      std::make_shared<const std::vector<int64_t>>(std::move(values))));
  offsets_ = {0, length_};
  ++version_;
}

void ColumnData::ReplaceDoubles(std::vector<double> values) {
  JB_CHECK(type_ == TypeId::kFloat64);
  length_ = values.size();
  chunks_.clear();
  chunks_.push_back(SealDoublesChunk(
      std::make_shared<const std::vector<double>>(std::move(values))));
  offsets_ = {0, length_};
  ++version_;
}

size_t ColumnData::ByteSize() const {
  size_t bytes = 0;
  for (const auto& ch : chunks_) {
    if (ch->encoded) {
      bytes += type_ == TypeId::kFloat64 ? ch->enc_dbls->ByteSize()
                                         : ch->enc_ints->ByteSize();
    } else {
      bytes += ch->rows * 8;
    }
  }
  return bytes;
}

void ColumnData::SwapPayload(ColumnData& other) {
  JB_CHECK_MSG(type_ == other.type_, "column swap requires matching types");
  std::swap(length_, other.length_);
  std::swap(chunks_, other.chunks_);
  std::swap(offsets_, other.offsets_);
  std::swap(dict_, other.dict_);
  ++version_;
  ++other.version_;
}

Value ColumnData::GetValue(size_t row) const {
  JB_CHECK(row < length_);
  const size_t ci = ChunkIndexOf(row);
  const ColumnChunk& ch = *chunks_[ci];
  const size_t local = row - offsets_[ci];
  if (ch.encoded) {
    if (type_ == TypeId::kFloat64) {
      // Row access on compressed doubles decodes only the enclosing block.
      const auto& block = ch.enc_dbls->blocks[local / compression::kBlockSize];
      std::vector<double> tmp(block.count);
      compression::DecodeDoublesBlock(block, tmp.data());
      return Value::Double(tmp[local % compression::kBlockSize]);
    }
    int64_t code = compression::UnpackOne(
        ch.enc_ints->blocks[local / compression::kBlockSize],
        local % compression::kBlockSize);
    if (type_ == TypeId::kString) {
      if (code == kNullInt64) return Value::Null(TypeId::kString);
      Value v = Value::Str(dict_->At(code));
      v.i = code;
      return v;
    }
    return Value::Int(code);
  }
  switch (type_) {
    case TypeId::kInt64:
      return Value::Int((*ch.ints)[local]);
    case TypeId::kFloat64:
      return Value::Double((*ch.dbls)[local]);
    case TypeId::kString: {
      int64_t code = (*ch.ints)[local];
      if (code == kNullInt64) return Value::Null(TypeId::kString);
      Value v = Value::Str(dict_->At(code));
      v.i = code;
      return v;
    }
  }
  return Value::Null(type_);
}

ColumnBuilder::ColumnBuilder(TypeId type, DictionaryPtr dict)
    : type_(type), dict_(std::move(dict)) {
  if (type_ == TypeId::kString && !dict_) {
    dict_ = std::make_shared<Dictionary>();
  }
  JB_CHECK_MSG(type_ == TypeId::kString || !dict_,
               "dictionary on a non-string column");
}

ColumnBuilder& ColumnBuilder::ChunkRows(size_t rows) {
  chunk_rows_ = rows;
  return *this;
}

ColumnBuilder& ColumnBuilder::ChunkOffsets(std::vector<size_t> offsets) {
  explicit_offsets_ = std::move(offsets);
  return *this;
}

bool ColumnBuilder::CanAdoptWhole() const {
  return chunk_rows_ == 0 && explicit_offsets_.empty() && !adopted_ &&
         pend_ints_.empty() && pend_dbls_.empty();
}

void ColumnBuilder::Spill() {
  // A previously adopted payload loses the zero-copy fast path as soon as
  // more data arrives: fold it into the pending values.
  if (!adopted_) return;
  if (type_ == TypeId::kFloat64) {
    pend_dbls_.assign(adopted_->dbls->begin(), adopted_->dbls->end());
  } else {
    pend_ints_.assign(adopted_->ints->begin(), adopted_->ints->end());
  }
  adopted_.reset();
}

ColumnBuilder& ColumnBuilder::AppendInts(std::vector<int64_t> values) {
  JB_CHECK(type_ == TypeId::kInt64);
  Spill();
  if (pend_ints_.empty()) {
    pend_ints_ = std::move(values);
  } else {
    pend_ints_.insert(pend_ints_.end(), values.begin(), values.end());
  }
  return *this;
}

ColumnBuilder& ColumnBuilder::AppendDoubles(std::vector<double> values) {
  JB_CHECK(type_ == TypeId::kFloat64);
  Spill();
  if (pend_dbls_.empty()) {
    pend_dbls_ = std::move(values);
  } else {
    pend_dbls_.insert(pend_dbls_.end(), values.begin(), values.end());
  }
  return *this;
}

ColumnBuilder& ColumnBuilder::AppendStrings(
    const std::vector<std::string>& values) {
  JB_CHECK(type_ == TypeId::kString);
  Spill();
  pend_ints_.reserve(pend_ints_.size() + values.size());
  for (const auto& s : values) pend_ints_.push_back(dict_->GetOrAdd(s));
  return *this;
}

ColumnBuilder& ColumnBuilder::AppendCodes(std::vector<int64_t> codes) {
  JB_CHECK(type_ == TypeId::kString);
  Spill();
  if (pend_ints_.empty()) {
    pend_ints_ = std::move(codes);
  } else {
    pend_ints_.insert(pend_ints_.end(), codes.begin(), codes.end());
  }
  return *this;
}

ColumnBuilder& ColumnBuilder::AdoptInts(
    std::shared_ptr<const std::vector<int64_t>> v) {
  JB_CHECK(type_ != TypeId::kFloat64);
  if (CanAdoptWhole()) {
    adopted_ = SealIntsChunk(std::move(v));
  } else {
    Spill();
    pend_ints_.insert(pend_ints_.end(), v->begin(), v->end());
  }
  return *this;
}

ColumnBuilder& ColumnBuilder::AdoptDoubles(
    std::shared_ptr<const std::vector<double>> v) {
  JB_CHECK(type_ == TypeId::kFloat64);
  if (CanAdoptWhole()) {
    adopted_ = SealDoublesChunk(std::move(v));
  } else {
    Spill();
    pend_dbls_.insert(pend_dbls_.end(), v->begin(), v->end());
  }
  return *this;
}

ColumnPtr ColumnBuilder::Build() {
  if (adopted_) {
    std::vector<ChunkPtr> chunks{std::move(adopted_)};
    return ColumnData::FromChunks(type_, std::move(chunks), std::move(dict_));
  }
  const size_t total =
      type_ == TypeId::kFloat64 ? pend_dbls_.size() : pend_ints_.size();
  std::vector<size_t> offsets;
  if (!explicit_offsets_.empty()) {
    offsets = std::move(explicit_offsets_);
    JB_CHECK_MSG(offsets.front() == 0 && offsets.back() == total,
                 "explicit chunk offsets do not cover the appended rows");
  } else {
    offsets.push_back(0);
    const size_t step = chunk_rows_ == 0 ? total : chunk_rows_;
    while (offsets.back() < total) {
      offsets.push_back(std::min(total, offsets.back() + step));
    }
    if (offsets.size() == 1) offsets.push_back(0);  // zero-row column
  }
  std::vector<ChunkPtr> chunks;
  chunks.reserve(offsets.size() - 1);
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    const size_t lo = offsets[i];
    const size_t hi = offsets[i + 1];
    JB_CHECK_MSG(lo <= hi && hi <= total, "invalid chunk offsets");
    if (type_ == TypeId::kFloat64) {
      chunks.push_back(
          SealDoublesChunk(std::make_shared<const std::vector<double>>(
              pend_dbls_.begin() + lo, pend_dbls_.begin() + hi)));
    } else {
      chunks.push_back(
          SealIntsChunk(std::make_shared<const std::vector<int64_t>>(
              pend_ints_.begin() + lo, pend_ints_.begin() + hi)));
    }
  }
  pend_ints_.clear();
  pend_dbls_.clear();
  return ColumnData::FromChunks(type_, std::move(chunks), std::move(dict_));
}

}  // namespace joinboost
