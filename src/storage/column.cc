#include "storage/column.h"

#include <utility>

#include "util/check.h"

namespace joinboost {

ColumnPtr ColumnData::MakeInts(std::vector<int64_t> values) {
  auto col = std::make_shared<ColumnData>();
  col->type_ = TypeId::kInt64;
  col->length_ = values.size();
  col->ints_ = std::make_shared<const std::vector<int64_t>>(std::move(values));
  return col;
}

ColumnPtr ColumnData::MakeDoubles(std::vector<double> values) {
  auto col = std::make_shared<ColumnData>();
  col->type_ = TypeId::kFloat64;
  col->length_ = values.size();
  col->dbls_ = std::make_shared<const std::vector<double>>(std::move(values));
  return col;
}

ColumnPtr ColumnData::MakeStrings(const std::vector<std::string>& values,
                                  DictionaryPtr dict) {
  if (!dict) dict = std::make_shared<Dictionary>();
  std::vector<int64_t> codes;
  codes.reserve(values.size());
  for (const auto& s : values) codes.push_back(dict->GetOrAdd(s));
  return MakeDictCodes(std::move(codes), std::move(dict));
}

ColumnPtr ColumnData::MakeDictCodes(std::vector<int64_t> codes,
                                    DictionaryPtr dict) {
  auto col = std::make_shared<ColumnData>();
  col->type_ = TypeId::kString;
  col->length_ = codes.size();
  col->ints_ = std::make_shared<const std::vector<int64_t>>(std::move(codes));
  col->dict_ = std::move(dict);
  return col;
}

ColumnPtr ColumnData::AdoptInts(
    std::shared_ptr<const std::vector<int64_t>> v) {
  auto col = std::make_shared<ColumnData>();
  col->type_ = TypeId::kInt64;
  col->length_ = v->size();
  col->ints_ = std::move(v);
  return col;
}

ColumnPtr ColumnData::AdoptDoubles(
    std::shared_ptr<const std::vector<double>> v) {
  auto col = std::make_shared<ColumnData>();
  col->type_ = TypeId::kFloat64;
  col->length_ = v->size();
  col->dbls_ = std::move(v);
  return col;
}

ColumnPtr ColumnData::AdoptCodes(std::shared_ptr<const std::vector<int64_t>> v,
                                 DictionaryPtr dict) {
  auto col = std::make_shared<ColumnData>();
  col->type_ = TypeId::kString;
  col->length_ = v->size();
  col->ints_ = std::move(v);
  col->dict_ = std::move(dict);
  return col;
}

void ColumnData::Encode() {
  if (encoded_) return;
  if (type_ == TypeId::kFloat64) {
    enc_dbls_ = std::make_shared<const compression::EncodedDoubles>(
        compression::EncodeDoubles(*dbls_));
    dbls_.reset();
  } else {
    enc_ints_ = std::make_shared<const compression::EncodedInts>(
        compression::EncodeInts(*ints_));
    ints_.reset();
  }
  encoded_ = true;
}

void ColumnData::Decode() {
  if (!encoded_) return;
  if (type_ == TypeId::kFloat64) {
    dbls_ = std::make_shared<const std::vector<double>>(
        compression::DecodeDoubles(*enc_dbls_));
    enc_dbls_.reset();
  } else {
    ints_ = std::make_shared<const std::vector<int64_t>>(
        compression::DecodeInts(*enc_ints_));
    enc_ints_.reset();
  }
  encoded_ = false;
}

const std::shared_ptr<const std::vector<int64_t>>& ColumnData::PlainInts()
    const {
  JB_CHECK_MSG(!encoded_, "column is compressed");
  JB_CHECK(type_ != TypeId::kFloat64);
  return ints_;
}

const std::shared_ptr<const std::vector<double>>& ColumnData::PlainDoubles()
    const {
  JB_CHECK_MSG(!encoded_, "column is compressed");
  JB_CHECK(type_ == TypeId::kFloat64);
  return dbls_;
}

std::vector<int64_t> ColumnData::DecodeInts() const {
  JB_CHECK(type_ != TypeId::kFloat64);
  if (encoded_) return compression::DecodeInts(*enc_ints_);
  return *ints_;
}

std::vector<double> ColumnData::DecodeDoubles() const {
  JB_CHECK(type_ == TypeId::kFloat64);
  if (encoded_) return compression::DecodeDoubles(*enc_dbls_);
  return *dbls_;
}

std::shared_ptr<const std::vector<int64_t>> ColumnData::ScanInts() const {
  JB_CHECK(type_ != TypeId::kFloat64);
  if (encoded_) {
    return std::make_shared<const std::vector<int64_t>>(
        compression::DecodeInts(*enc_ints_));
  }
  return ints_;
}

std::shared_ptr<const std::vector<double>> ColumnData::ScanDoubles() const {
  JB_CHECK(type_ == TypeId::kFloat64);
  if (encoded_) {
    return std::make_shared<const std::vector<double>>(
        compression::DecodeDoubles(*enc_dbls_));
  }
  return dbls_;
}

void ColumnData::ReplaceInts(std::vector<int64_t> values) {
  JB_CHECK(type_ != TypeId::kFloat64);
  length_ = values.size();
  ints_ = std::make_shared<const std::vector<int64_t>>(std::move(values));
  enc_ints_.reset();
  encoded_ = false;
  ++version_;
}

void ColumnData::ReplaceDoubles(std::vector<double> values) {
  JB_CHECK(type_ == TypeId::kFloat64);
  length_ = values.size();
  dbls_ = std::make_shared<const std::vector<double>>(std::move(values));
  enc_dbls_.reset();
  encoded_ = false;
  ++version_;
}

size_t ColumnData::ByteSize() const {
  if (encoded_) {
    return type_ == TypeId::kFloat64 ? enc_dbls_->ByteSize()
                                     : enc_ints_->ByteSize();
  }
  return length_ * 8;
}

void ColumnData::SwapPayload(ColumnData& other) {
  JB_CHECK_MSG(type_ == other.type_, "column swap requires matching types");
  std::swap(length_, other.length_);
  std::swap(encoded_, other.encoded_);
  std::swap(ints_, other.ints_);
  std::swap(dbls_, other.dbls_);
  std::swap(enc_ints_, other.enc_ints_);
  std::swap(enc_dbls_, other.enc_dbls_);
  std::swap(dict_, other.dict_);
  ++version_;
  ++other.version_;
}

Value ColumnData::GetValue(size_t row) const {
  JB_CHECK(row < length_);
  if (encoded_) {
    if (type_ == TypeId::kFloat64) {
      // Row access on compressed doubles decodes only the enclosing block.
      const auto& block = enc_dbls_->blocks[row / compression::kBlockSize];
      std::vector<double> tmp(block.count);
      compression::DecodeDoublesBlock(block, tmp.data());
      return Value::Double(tmp[row % compression::kBlockSize]);
    }
    int64_t code = compression::UnpackOne(
        enc_ints_->blocks[row / compression::kBlockSize],
        row % compression::kBlockSize);
    if (type_ == TypeId::kString) {
      if (code == kNullInt64) return Value::Null(TypeId::kString);
      Value v = Value::Str(dict_->At(code));
      v.i = code;
      return v;
    }
    return Value::Int(code);
  }
  switch (type_) {
    case TypeId::kInt64:
      return Value::Int((*ints_)[row]);
    case TypeId::kFloat64:
      return Value::Double((*dbls_)[row]);
    case TypeId::kString: {
      int64_t code = (*ints_)[row];
      if (code == kNullInt64) return Value::Null(TypeId::kString);
      Value v = Value::Str(dict_->At(code));
      v.i = code;
      return v;
    }
  }
  return Value::Null(type_);
}

}  // namespace joinboost
