#pragma once

#include <string>

namespace joinboost {

/// Configuration of genuine engine mechanisms, used to emulate the DBMS
/// variants the paper evaluates (Figures 5 and 15). Each flag switches a real
/// code path — see DESIGN.md "Substitutions".
struct EngineProfile {
  std::string name = "D-Swap";

  /// Vectorized columnar operators (true) vs. tuple-at-a-time row execution.
  bool columnar_exec = true;

  /// Compress table payloads at rest; scans decompress, writes recompress.
  bool compression = false;

  /// Write-ahead logging of updates / created tables.
  bool wal = false;

  /// Spill WAL to an actual disk file (disk-based profiles).
  bool wal_to_disk = false;

  /// MVCC: copy old values into the version store before in-place updates,
  /// and single-thread the update path (DuckDB's updates are
  /// single-threaded, §5.3.2 "Implementation").
  bool mvcc = false;

  /// Engine patch enabling pointer-based column swap between tables (§5.4).
  bool allow_column_swap = false;

  /// DP mode: tables flagged as dataframes bypass WAL/CC/compression but
  /// scans pay an interop materialization pass (DuckDB-Pandas, §5.4).
  bool dataframe_interop = false;

  /// Intra-query thread budget for morsel-driven execution (paper finds 4
  /// best). Clamped to the engine's pool size at Database construction.
  int exec_threads = 4;

  /// Rows per morsel: scans, join probes and aggregations split their input
  /// into fixed-size morsels dispatched on the shared pool. Outputs merge in
  /// morsel-index order, so results are bit-identical to serial execution.
  size_t morsel_rows = 16384;

  /// Inputs below this row count run serially: morsel dispatch overhead
  /// would dominate on small intermediates. 0 disables intra-query
  /// parallelism entirely.
  size_t parallel_threshold_rows = 8192;

  /// Rows per horizontal storage chunk: loads and result materialization
  /// seal column segments every chunk_rows rows, so appends are O(new rows)
  /// (new segments only, never rewriting existing ones) and morsels align
  /// to segment boundaries. 0 = monolithic single-chunk columns (the
  /// pre-chunking layout). Results are bit-identical for any value —
  /// chunk boundaries never influence row order, group order, or float
  /// accumulation order.
  size_t chunk_rows = 0;

  /// Route SELECTs through the logical planner (predicate pushdown,
  /// projection pruning, constant folding, greedy join reordering). Off =
  /// execute the raw AST; kept for differential testing (planner_test.cc).
  bool use_planner = true;

  /// Cost-based planning: lazy per-column statistics (equal-num-elements
  /// histograms), histogram selectivity estimates, DP join enumeration and
  /// the normalized-shape plan cache. Off falls back to the heuristic
  /// greedy reorder with no cache — kept as the differential reference
  /// (results are bit-identical either way; only join orders and the
  /// plan_cache/joins_reordered_dp counters differ).
  bool cost_based_planner = true;

  /// Compressed execution: evaluate predicates and hash keys directly on
  /// encoded columns (dictionary ids, frame-of-reference blocks) and only
  /// late-materialize the blocks a query actually touches. Results are
  /// bit-identical to the decode-everything path; off is kept for
  /// differential testing (§5.3.2 "Compression").
  bool compressed_exec = true;

  /// Serving-layer admission control: maximum sessions executing a request
  /// concurrently (queries or batched predictions). Extra requests queue on
  /// the admission gate. 0 = match exec_threads.
  int serve_admission_slots = 0;

  /// Longest a request may queue on the admission gate before it is rejected
  /// with a typed AdmissionRejected error (serving overload sheds load
  /// instead of building an unbounded queue). 0 = wait forever (the
  /// historical behaviour).
  int64_t serve_admission_max_wait_ms = 0;

  // ---- Presets matching the paper's systems ----

  /// Commercial columnar, disk-based: compression + WAL-to-disk, no swap.
  static EngineProfile XCol() {
    EngineProfile p;
    p.name = "X-col";
    p.compression = true;
    p.wal = true;
    p.wal_to_disk = true;
    return p;
  }

  /// Commercial row store: row-at-a-time execution, WAL-to-disk.
  static EngineProfile XRow() {
    EngineProfile p;
    p.name = "X-row";
    p.columnar_exec = false;
    p.wal = true;
    p.wal_to_disk = true;
    return p;
  }

  /// X-col plus simulated column swap (the paper's X-Swap*).
  static EngineProfile XSwapStar() {
    EngineProfile p = XCol();
    p.name = "X-Swap*";
    p.allow_column_swap = true;
    return p;
  }

  /// DuckDB disk-based: columnar, compressed, WAL-to-disk.
  static EngineProfile DDisk() {
    EngineProfile p;
    p.name = "D-disk";
    p.compression = true;
    p.wal = true;
    p.wal_to_disk = true;
    return p;
  }

  /// DuckDB in-memory: no WAL, but MVCC versioning on updates.
  static EngineProfile DMem() {
    EngineProfile p;
    p.name = "D-mem";
    p.compression = true;
    p.mvcc = true;
    return p;
  }

  /// DuckDB + Pandas: fact table as dataframe; interop scan cost; updates
  /// become pointer swaps on the dataframe.
  static EngineProfile DP() {
    EngineProfile p;
    p.name = "DP";
    p.compression = true;
    p.mvcc = true;
    p.dataframe_interop = true;
    p.allow_column_swap = true;
    return p;
  }

  /// Modified DuckDB with in-engine column swap (the paper's default).
  static EngineProfile DSwap() {
    EngineProfile p;
    p.name = "D-Swap";
    p.compression = true;
    p.mvcc = true;
    p.allow_column_swap = true;
    return p;
  }
};

}  // namespace joinboost
