#include "storage/table.h"

#include <atomic>
#include <sstream>

#include "util/check.h"

namespace joinboost {

namespace {
std::atomic<uint64_t> g_next_table_uid{1};
}  // namespace

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    JB_CHECK_MSG(index_.emplace(fields_[i].name, static_cast<int>(i)).second,
                 "duplicate field name: " << fields_[i].name);
  }
}

int Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

void Schema::AddField(Field f) {
  JB_CHECK_MSG(!HasField(f.name), "duplicate field name: " << f.name);
  index_.emplace(f.name, static_cast<int>(fields_.size()));
  fields_.push_back(std::move(f));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].name << " " << TypeName(fields_[i].type);
  }
  os << ")";
  return os.str();
}

Table::Table(std::string name, Schema schema, std::vector<ColumnPtr> columns)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      columns_(std::move(columns)),
      uid_(g_next_table_uid.fetch_add(1, std::memory_order_relaxed)) {
  JB_CHECK_MSG(schema_.num_fields() == columns_.size(),
               "schema/column count mismatch in table " << name_);
  num_rows_ = columns_.empty() ? 0 : columns_[0]->size();
  for (size_t i = 0; i < columns_.size(); ++i) {
    JB_CHECK_MSG(columns_[i]->size() == num_rows_,
                 "ragged columns in table " << name_);
    JB_CHECK_MSG(columns_[i]->type() == schema_.field(i).type,
                 "column type mismatch for " << schema_.field(i).name);
  }
}

const ColumnPtr& Table::column(const std::string& name) const {
  int idx = schema_.FieldIndex(name);
  JB_CHECK_MSG(idx >= 0, "no column '" << name << "' in table " << name_
                                       << " " << schema_.ToString());
  return columns_[static_cast<size_t>(idx)];
}

void Table::SetColumn(size_t i, ColumnPtr col) {
  JB_CHECK(i < columns_.size());
  JB_CHECK_MSG(col != nullptr, "SetColumn with null column");
  JB_CHECK_MSG(col->size() == num_rows_,
               "SetColumn length mismatch in table "
                   << name_ << ": column has " << col->size()
                   << " rows, table has " << num_rows_);
  JB_CHECK_MSG(col->type() == schema_.field(i).type,
               "SetColumn type mismatch for " << schema_.field(i).name);
  columns_[i] = std::move(col);
  ++structure_version_;
}

void Table::AddColumn(Field field, ColumnPtr col) {
  JB_CHECK_MSG(col != nullptr, "AddColumn with null column");
  JB_CHECK_MSG(col->size() == num_rows_ || columns_.empty(),
               "AddColumn length mismatch in table "
                   << name_ << ": column '" << field.name << "' has "
                   << col->size() << " rows, table has " << num_rows_);
  if (columns_.empty()) num_rows_ = col->size();
  JB_CHECK_MSG(col->type() == field.type,
               "AddColumn type mismatch for " << field.name);
  schema_.AddField(std::move(field));
  columns_.push_back(std::move(col));
  ++structure_version_;
}

size_t Table::num_chunks() const {
  return columns_.empty() ? 1 : columns_[0]->num_chunks();
}

std::vector<size_t> Table::chunk_offsets() const {
  if (columns_.empty()) return {0, num_rows_};
  return columns_[0]->chunk_offsets();
}

void Table::Rechunk(size_t rows_per_chunk) {
  for (auto& c : columns_) c->Rechunk(rows_per_chunk);
}

uint64_t Table::DataVersion() const {
  uint64_t v = structure_version_;
  for (const auto& c : columns_) v += c->version();
  return v;
}

void Table::EncodeAll() {
  for (auto& c : columns_) c->Encode();
}

void Table::DecodeAll() {
  for (auto& c : columns_) c->Decode();
}

size_t Table::ByteSize() const {
  size_t total = 0;
  for (const auto& c : columns_) total += c->ByteSize();
  return total;
}

TableBuilder& TableBuilder::ChunkRows(size_t rows) {
  chunk_rows_ = rows;
  return *this;
}

TableBuilder& TableBuilder::AddInts(const std::string& col,
                                    std::vector<int64_t> values) {
  schema_.AddField({col, TypeId::kInt64});
  columns_.push_back(ColumnBuilder(TypeId::kInt64)
                         .ChunkRows(chunk_rows_)
                         .AppendInts(std::move(values))
                         .Build());
  return *this;
}

TableBuilder& TableBuilder::AddDoubles(const std::string& col,
                                       std::vector<double> values) {
  schema_.AddField({col, TypeId::kFloat64});
  columns_.push_back(ColumnBuilder(TypeId::kFloat64)
                         .ChunkRows(chunk_rows_)
                         .AppendDoubles(std::move(values))
                         .Build());
  return *this;
}

TableBuilder& TableBuilder::AddStrings(const std::string& col,
                                       const std::vector<std::string>& values,
                                       DictionaryPtr dict) {
  schema_.AddField({col, TypeId::kString});
  columns_.push_back(ColumnBuilder(TypeId::kString, std::move(dict))
                         .ChunkRows(chunk_rows_)
                         .AppendStrings(values)
                         .Build());
  return *this;
}

TablePtr TableBuilder::Build() {
  return std::make_shared<Table>(name_, std::move(schema_),
                                 std::move(columns_));
}

}  // namespace joinboost
