#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/column.h"
#include "storage/types.h"

namespace joinboost {

/// A named, typed column slot.
struct Field {
  std::string name;
  TypeId type = TypeId::kInt64;
};

/// Ordered list of fields with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  int FieldIndex(const std::string& name) const;  ///< -1 when absent
  const Field& field(size_t i) const { return fields_.at(i); }
  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  bool HasField(const std::string& name) const { return FieldIndex(name) >= 0; }
  void AddField(Field f);
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

class Table;
using TablePtr = std::shared_ptr<Table>;

/// A base table: schema + columns. Tables are shared by pointer through the
/// catalog; readers take a snapshot of column pointers, so column swap and
/// payload replacement are safe against concurrent reads of prior snapshots.
class Table {
 public:
  Table(std::string name, Schema schema, std::vector<ColumnPtr> columns);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const ColumnPtr& column(size_t i) const { return columns_.at(i); }
  const ColumnPtr& column(const std::string& name) const;
  const std::vector<ColumnPtr>& columns() const { return columns_; }

  /// Both validate the replacement/new column: a length that disagrees with
  /// num_rows() (or a mismatched type) throws rather than corrupting the
  /// table invariant that every column has the same row count.
  void SetColumn(size_t i, ColumnPtr col);
  void AddColumn(Field field, ColumnPtr col);

  /// Chunk layout of the table, taken from its first column ({0, num_rows}
  /// for a column-less table). Per-column layouts can diverge after a column
  /// swap — consumers that require a shared layout (compressed scans) verify
  /// per column and fall back; everything else is layout-oblivious.
  size_t num_chunks() const;
  std::vector<size_t> chunk_offsets() const;

  /// Re-slice every column into uniform chunks of `rows_per_chunk` rows
  /// (0 = one chunk per column). Applied at load time by
  /// EngineProfile::chunk_rows; values and versions are unchanged.
  void Rechunk(size_t rows_per_chunk);

  /// Process-unique table identity, assigned at construction. Replacing a
  /// table in the catalog (copy-on-write append/update, CREATE OR REPLACE)
  /// produces a new uid even though the name is unchanged — caches keyed on
  /// table contents pair the name with (uid, DataVersion) to detect it.
  uint64_t uid() const { return uid_; }

  /// Monotonic data version: column-set changes plus the sum of per-column
  /// payload versions, so both structural edits (SetColumn/AddColumn) and
  /// in-place payload mutations (column swap) advance it. Two reads of the
  /// same uid with equal DataVersion saw identical data.
  uint64_t DataVersion() const;

  /// True when this table lives outside the DBMS proper (the paper's DP mode:
  /// fact table held as a Pandas dataframe, scanned via an interop layer).
  bool dataframe() const { return dataframe_; }
  void set_dataframe(bool v) { dataframe_ = v; }

  /// Compress all int/string columns (and doubles) — CREATE-time cost on
  /// compressed profiles.
  void EncodeAll();
  void DecodeAll();

  size_t ByteSize() const;

  Value GetValue(size_t row, size_t col) const {
    return columns_.at(col)->GetValue(row);
  }

 private:
  std::string name_;
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  size_t num_rows_ = 0;
  bool dataframe_ = false;
  uint64_t uid_ = 0;
  uint64_t structure_version_ = 0;  ///< bumped by SetColumn/AddColumn
};

/// Convenience builder used by generators and tests.
class TableBuilder {
 public:
  explicit TableBuilder(std::string name) : name_(std::move(name)) {}

  /// Seal column chunks every `rows` rows (0 = monolithic single chunk).
  TableBuilder& ChunkRows(size_t rows);

  TableBuilder& AddInts(const std::string& col, std::vector<int64_t> values);
  TableBuilder& AddDoubles(const std::string& col, std::vector<double> values);
  TableBuilder& AddStrings(const std::string& col,
                           const std::vector<std::string>& values,
                           DictionaryPtr dict = nullptr);
  TablePtr Build();

 private:
  std::string name_;
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  size_t chunk_rows_ = 0;
};

}  // namespace joinboost
