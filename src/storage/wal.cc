#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "util/check.h"
#include "util/error.h"
#include "util/fault_injection.h"
#include "util/hash.h"

namespace joinboost {

namespace {

/// Write `size` bytes fully, retrying short writes. Returns false on error.
bool WriteFully(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = write(fd, p, remaining);
    if (n <= 0) return false;
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return true;
}

/// Fixed-size frame header preceding every on-disk record. Serialized
/// field-by-field (no struct padding games) as little-endian on every
/// platform we build for.
constexpr size_t kFrameHeaderBytes = 4 + 4 + 4 + 4 + 8 + 8;

void PutU32(std::vector<uint8_t>* buf, uint32_t v) {
  size_t at = buf->size();
  buf->resize(at + 4);
  std::memcpy(buf->data() + at, &v, 4);
}

void PutU64(std::vector<uint8_t>* buf, uint64_t v) {
  size_t at = buf->size();
  buf->resize(at + 8);
  std::memcpy(buf->data() + at, &v, 8);
}

/// Serialize one record into its on-disk frame.
std::vector<uint8_t> FrameRecord(const WriteAheadLog::Record& rec) {
  std::vector<uint8_t> buf;
  buf.reserve(kFrameHeaderBytes + rec.table.size() + rec.column.size() +
              rec.rows.size() * 4 + rec.payload.size());
  PutU32(&buf, static_cast<uint32_t>(rec.table.size()));
  PutU32(&buf, static_cast<uint32_t>(rec.column.size()));
  PutU32(&buf, static_cast<uint32_t>(rec.type));
  PutU32(&buf, static_cast<uint32_t>(rec.rows.size()));
  PutU64(&buf, static_cast<uint64_t>(rec.payload.size()));
  PutU64(&buf, rec.checksum);
  size_t at = buf.size();
  buf.resize(at + rec.table.size() + rec.column.size() + rec.rows.size() * 4 +
             rec.payload.size());
  uint8_t* p = buf.data() + at;
  auto put = [&p](const void* src, size_t n) {
    if (n > 0) std::memcpy(p, src, n);
    p += n;
  };
  put(rec.table.data(), rec.table.size());
  put(rec.column.data(), rec.column.size());
  put(rec.rows.data(), rec.rows.size() * 4);
  put(rec.payload.data(), rec.payload.size());
  return buf;
}

}  // namespace

WriteAheadLog::WriteAheadLog(bool spill_to_disk, std::string path)
    : spill_to_disk_(spill_to_disk), path_(std::move(path)) {
  if (spill_to_disk_) {
    if (path_.empty()) {
      char tmpl[] = "/tmp/joinboost_wal_XXXXXX";
      fd_ = mkstemp(tmpl);
      JB_CHECK_MSG(fd_ >= 0, "failed to create WAL temp file from template "
                                 << tmpl);
      path_ = tmpl;
    } else {
      fd_ = open(path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC,
                 0644);
      JB_CHECK_MSG(fd_ >= 0, "failed to open WAL file " << path_);
    }
    // mkstemp has no O_CLOEXEC variant portably; set the flag on both paths
    // so forked benchmark children never inherit (and pin) the log file.
    fcntl(fd_, F_SETFD, FD_CLOEXEC);
  }
}

WriteAheadLog::~WriteAheadLog() {
  // The log file is transient by contract (durability of table data is the
  // catalog's job; the WAL models write traffic + crash replay within one
  // process), so both temp and caller-named files are removed here — the one
  // place teardown happens on every path, error or not.
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
    unlink(path_.c_str());
  }
}

WriteAheadLog::Record WriteAheadLog::MakeDoubles(
    const std::string& table, const std::string& column,
    const std::vector<uint32_t>& rows, const std::vector<double>& values) {
  Record rec;
  rec.table = table;
  rec.column = column;
  rec.type = TypeId::kFloat64;
  rec.rows = rows;
  rec.payload.resize(values.size() * sizeof(double));
  std::memcpy(rec.payload.data(), values.data(), rec.payload.size());
  rec.checksum = Fnv1a(rec.payload.data(), rec.payload.size());
  return rec;
}

WriteAheadLog::Record WriteAheadLog::MakeInts(
    const std::string& table, const std::string& column,
    const std::vector<uint32_t>& rows, const std::vector<int64_t>& values) {
  Record rec;
  rec.table = table;
  rec.column = column;
  rec.type = TypeId::kInt64;
  rec.rows = rows;
  rec.payload.resize(values.size() * sizeof(int64_t));
  std::memcpy(rec.payload.data(), values.data(), rec.payload.size());
  rec.checksum = Fnv1a(rec.payload.data(), rec.payload.size());
  return rec;
}

void WriteAheadLog::LogDoubles(const std::string& table,
                               const std::string& column,
                               const std::vector<uint32_t>& rows,
                               const std::vector<double>& values) {
  Append(MakeDoubles(table, column, rows, values));
}

void WriteAheadLog::LogInts(const std::string& table,
                            const std::string& column,
                            const std::vector<uint32_t>& rows,
                            const std::vector<int64_t>& values) {
  Append(MakeInts(table, column, rows, values));
}

void WriteAheadLog::LogBatch(std::vector<Record> recs) {
  std::lock_guard<std::mutex> lock(mu_);
  // All-or-nothing: remember the pre-batch state and roll the file and the
  // in-memory log back to it if any record of the batch fails.
  off_t batch_start = fd_ >= 0 ? lseek(fd_, 0, SEEK_CUR) : 0;
  size_t n_before = records_.size();
  uint64_t bytes_before = bytes_written_;
  try {
    for (auto& rec : recs) AppendLocked(std::move(rec));
  } catch (...) {
    if (fd_ >= 0 && batch_start >= 0) {
      (void)ftruncate(fd_, batch_start);
      (void)lseek(fd_, batch_start, SEEK_SET);
    }
    records_.resize(n_before);
    bytes_written_ = bytes_before;
    throw;
  }
}

uint64_t WriteAheadLog::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

size_t WriteAheadLog::num_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<WriteAheadLog::Record> WriteAheadLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t WriteAheadLog::VerifyAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t ok = 0;
  for (const auto& rec : records_) {
    if (Fnv1a(rec.payload.data(), rec.payload.size()) == rec.checksum) ++ok;
  }
  return ok;
}

std::vector<WriteAheadLog::Record> WriteAheadLog::ReplayFile(
    const std::string& path) {
  int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  JB_CHECK_MSG(fd >= 0, "failed to open WAL file " << path << " for replay");
  std::vector<uint8_t> bytes;
  char buf[1 << 16];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  close(fd);
  JB_CHECK_MSG(n == 0, "read error replaying WAL file " << path);

  std::vector<Record> out;
  size_t at = 0;
  while (at < bytes.size()) {
    size_t rec_index = out.size();
    if (bytes.size() - at < kFrameHeaderBytes) {
      throw WalCorruption(WalCorruption::Kind::kTornTail,
                          "record " + std::to_string(rec_index) +
                              " header truncated in " + path);
    }
    uint32_t table_len, column_len, type, n_rows;
    uint64_t payload_len, checksum;
    std::memcpy(&table_len, bytes.data() + at, 4);
    std::memcpy(&column_len, bytes.data() + at + 4, 4);
    std::memcpy(&type, bytes.data() + at + 8, 4);
    std::memcpy(&n_rows, bytes.data() + at + 12, 4);
    std::memcpy(&payload_len, bytes.data() + at + 16, 8);
    std::memcpy(&checksum, bytes.data() + at + 24, 8);
    at += kFrameHeaderBytes;
    uint64_t body = static_cast<uint64_t>(table_len) + column_len +
                    static_cast<uint64_t>(n_rows) * 4 + payload_len;
    if (bytes.size() - at < body) {
      throw WalCorruption(WalCorruption::Kind::kTornTail,
                          "record " + std::to_string(rec_index) +
                              " body truncated in " + path);
    }
    Record rec;
    rec.table.assign(reinterpret_cast<const char*>(bytes.data() + at),
                     table_len);
    at += table_len;
    rec.column.assign(reinterpret_cast<const char*>(bytes.data() + at),
                      column_len);
    at += column_len;
    rec.type = static_cast<TypeId>(type);
    rec.rows.resize(n_rows);
    if (n_rows > 0) {
      std::memcpy(rec.rows.data(), bytes.data() + at, size_t{n_rows} * 4);
    }
    at += size_t{n_rows} * 4;
    rec.payload.assign(bytes.data() + at, bytes.data() + at + payload_len);
    at += payload_len;
    rec.checksum = checksum;
    if (Fnv1a(rec.payload.data(), rec.payload.size()) != checksum) {
      throw WalCorruption(WalCorruption::Kind::kChecksumMismatch,
                          "record " + std::to_string(rec_index) + " (" +
                              rec.table + "." + rec.column + ") in " + path);
    }
    out.push_back(std::move(rec));
  }
  return out;
}

void WriteAheadLog::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  bytes_written_ = 0;
  if (fd_ >= 0) {
    JB_CHECK(ftruncate(fd_, 0) == 0);
    JB_CHECK(lseek(fd_, 0, SEEK_SET) == 0);
  }
}

void WriteAheadLog::Append(Record rec) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendLocked(std::move(rec));
}

void WriteAheadLog::AppendLocked(Record rec) {
  if (fd_ >= 0) {
    // Real disk writes (no fsync — comparable to the paper's "minimum
    // logging" setting, but the data still moves through the page cache).
    // Disk-before-memory: a failed write truncates the partial bytes away
    // and throws with the in-memory log untouched, so counters and records
    // never report an append that is not fully on disk. The "wal-write"
    // chaos point fires before any byte moves, modelling a device that died
    // at the start of the write.
    off_t start = lseek(fd_, 0, SEEK_CUR);
    bool ok = false;
    try {
      util::fault::Maybe("wal-write");
      std::vector<uint8_t> frame = FrameRecord(rec);
      ok = WriteFully(fd_, frame.data(), frame.size());
    } catch (...) {
      if (start >= 0) {
        (void)ftruncate(fd_, start);
        (void)lseek(fd_, start, SEEK_SET);
      }
      throw;
    }
    if (!ok) {
      if (start >= 0) {
        (void)ftruncate(fd_, start);
        (void)lseek(fd_, start, SEEK_SET);
      }
      JB_THROW("WAL write failed for " << rec.table << "." << rec.column
                                       << " (log file " << path_ << ")");
    }
  }
  bytes_written_ += kFrameHeaderBytes + rec.table.size() + rec.column.size() +
                    rec.rows.size() * 4 + rec.payload.size();
  records_.push_back(std::move(rec));
}

}  // namespace joinboost
