#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "util/check.h"
#include "util/hash.h"

namespace joinboost {

WriteAheadLog::WriteAheadLog(bool spill_to_disk, std::string path)
    : spill_to_disk_(spill_to_disk), path_(std::move(path)) {
  if (spill_to_disk_) {
    if (path_.empty()) {
      char tmpl[] = "/tmp/joinboost_wal_XXXXXX";
      fd_ = mkstemp(tmpl);
      path_ = tmpl;
    } else {
      fd_ = open(path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    }
    JB_CHECK_MSG(fd_ >= 0, "failed to open WAL file " << path_);
  }
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    close(fd_);
    unlink(path_.c_str());
  }
}

void WriteAheadLog::LogDoubles(const std::string& table,
                               const std::string& column,
                               const std::vector<uint32_t>& rows,
                               const std::vector<double>& values) {
  Record rec;
  rec.table = table;
  rec.column = column;
  rec.type = TypeId::kFloat64;
  rec.rows = rows;
  rec.payload.resize(values.size() * sizeof(double));
  std::memcpy(rec.payload.data(), values.data(), rec.payload.size());
  rec.checksum = Fnv1a(rec.payload.data(), rec.payload.size());
  Append(std::move(rec));
}

void WriteAheadLog::LogInts(const std::string& table,
                            const std::string& column,
                            const std::vector<uint32_t>& rows,
                            const std::vector<int64_t>& values) {
  Record rec;
  rec.table = table;
  rec.column = column;
  rec.type = TypeId::kInt64;
  rec.rows = rows;
  rec.payload.resize(values.size() * sizeof(int64_t));
  std::memcpy(rec.payload.data(), values.data(), rec.payload.size());
  rec.checksum = Fnv1a(rec.payload.data(), rec.payload.size());
  Append(std::move(rec));
}

size_t WriteAheadLog::VerifyAll() const {
  size_t ok = 0;
  for (const auto& rec : records_) {
    if (Fnv1a(rec.payload.data(), rec.payload.size()) == rec.checksum) ++ok;
  }
  return ok;
}

void WriteAheadLog::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  if (fd_ >= 0) {
    JB_CHECK(ftruncate(fd_, 0) == 0);
    JB_CHECK(lseek(fd_, 0, SEEK_SET) == 0);
  }
}

void WriteAheadLog::Append(Record rec) {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_written_ += rec.payload.size() + rec.rows.size() * 4 + 64;
  if (fd_ >= 0) {
    // Real disk writes (no fsync — comparable to the paper's "minimum
    // logging" setting, but the data still moves through the page cache).
    ssize_t n = write(fd_, rec.payload.data(), rec.payload.size());
    JB_CHECK(n == static_cast<ssize_t>(rec.payload.size()));
    if (!rec.rows.empty()) {
      n = write(fd_, rec.rows.data(), rec.rows.size() * 4);
      JB_CHECK(n == static_cast<ssize_t>(rec.rows.size() * 4));
    }
  }
  records_.push_back(std::move(rec));
}

}  // namespace joinboost
