#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

#include "util/check.h"
#include "util/hash.h"

namespace joinboost {

namespace {

/// Write `size` bytes fully, retrying short writes. Returns false on error.
bool WriteFully(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = write(fd, p, remaining);
    if (n <= 0) return false;
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return true;
}

/// See WriteAheadLog::InjectWriteFailureForTest.
std::atomic<bool> g_inject_write_failure{false};

}  // namespace

void WriteAheadLog::InjectWriteFailureForTest(bool fail) {
  g_inject_write_failure.store(fail);
}

WriteAheadLog::WriteAheadLog(bool spill_to_disk, std::string path)
    : spill_to_disk_(spill_to_disk), path_(std::move(path)) {
  if (spill_to_disk_) {
    if (path_.empty()) {
      char tmpl[] = "/tmp/joinboost_wal_XXXXXX";
      fd_ = mkstemp(tmpl);
      JB_CHECK_MSG(fd_ >= 0, "failed to create WAL temp file from template "
                                 << tmpl);
      path_ = tmpl;
    } else {
      fd_ = open(path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC,
                 0644);
      JB_CHECK_MSG(fd_ >= 0, "failed to open WAL file " << path_);
    }
    // mkstemp has no O_CLOEXEC variant portably; set the flag on both paths
    // so forked benchmark children never inherit (and pin) the log file.
    fcntl(fd_, F_SETFD, FD_CLOEXEC);
  }
}

WriteAheadLog::~WriteAheadLog() {
  // The log file is transient by contract (durability of table data is the
  // catalog's job; the WAL models write traffic + crash replay within one
  // process), so both temp and caller-named files are removed here — the one
  // place teardown happens on every path, error or not.
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
    unlink(path_.c_str());
  }
}

void WriteAheadLog::LogDoubles(const std::string& table,
                               const std::string& column,
                               const std::vector<uint32_t>& rows,
                               const std::vector<double>& values) {
  Record rec;
  rec.table = table;
  rec.column = column;
  rec.type = TypeId::kFloat64;
  rec.rows = rows;
  rec.payload.resize(values.size() * sizeof(double));
  std::memcpy(rec.payload.data(), values.data(), rec.payload.size());
  rec.checksum = Fnv1a(rec.payload.data(), rec.payload.size());
  Append(std::move(rec));
}

void WriteAheadLog::LogInts(const std::string& table,
                            const std::string& column,
                            const std::vector<uint32_t>& rows,
                            const std::vector<int64_t>& values) {
  Record rec;
  rec.table = table;
  rec.column = column;
  rec.type = TypeId::kInt64;
  rec.rows = rows;
  rec.payload.resize(values.size() * sizeof(int64_t));
  std::memcpy(rec.payload.data(), values.data(), rec.payload.size());
  rec.checksum = Fnv1a(rec.payload.data(), rec.payload.size());
  Append(std::move(rec));
}

uint64_t WriteAheadLog::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

size_t WriteAheadLog::num_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<WriteAheadLog::Record> WriteAheadLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t WriteAheadLog::VerifyAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t ok = 0;
  for (const auto& rec : records_) {
    if (Fnv1a(rec.payload.data(), rec.payload.size()) == rec.checksum) ++ok;
  }
  return ok;
}

void WriteAheadLog::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  if (fd_ >= 0) {
    JB_CHECK(ftruncate(fd_, 0) == 0);
    JB_CHECK(lseek(fd_, 0, SEEK_SET) == 0);
  }
}

void WriteAheadLog::Append(Record rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    // Real disk writes (no fsync — comparable to the paper's "minimum
    // logging" setting, but the data still moves through the page cache).
    // Disk-before-memory: a failed write truncates the partial bytes away
    // and throws with the in-memory log untouched, so counters and records
    // never report an append that is not fully on disk.
    off_t start = lseek(fd_, 0, SEEK_CUR);
    bool ok = !g_inject_write_failure.load() &&
              WriteFully(fd_, rec.payload.data(), rec.payload.size());
    if (ok && !rec.rows.empty()) {
      ok = WriteFully(fd_, rec.rows.data(), rec.rows.size() * 4);
    }
    if (!ok) {
      if (start >= 0) {
        (void)ftruncate(fd_, start);
        (void)lseek(fd_, start, SEEK_SET);
      }
      JB_THROW("WAL write failed for " << rec.table << "." << rec.column
                                       << " (log file " << path_ << ")");
    }
  }
  bytes_written_ += rec.payload.size() + rec.rows.size() * 4 + 64;
  records_.push_back(std::move(rec));
}

}  // namespace joinboost
