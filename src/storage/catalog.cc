#include "storage/catalog.h"

#include <algorithm>

#include "util/check.h"

namespace joinboost {

void Catalog::Register(const TablePtr& table) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_[table->name()] = table;
}

void Catalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  JB_CHECK_MSG(it != tables_.end(), "DROP: no such table " << name);
  tables_.erase(it);
}

void Catalog::DropIfExists(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.erase(name);
}

void Catalog::DropPrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      it = tables_.erase(it);
    } else {
      ++it;
    }
  }
}

TablePtr Catalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  JB_CHECK_MSG(it != tables_.end(), "no such table: " << name);
  return it->second;
}

TablePtr Catalog::GetOrNull(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

bool Catalog::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(name) > 0;
}

std::vector<std::string> Catalog::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

size_t Catalog::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [_, t] : tables_) total += t->ByteSize();
  return total;
}

}  // namespace joinboost
