#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace joinboost {

/// Thread-safe name → table map. JoinBoost creates all of its intermediates
/// (messages, update tables) under a unique prefix so training never touches
/// user data (paper §5.1 "Safety"); DropPrefix cleans them up after training.
class Catalog {
 public:
  void Register(const TablePtr& table);
  void Drop(const std::string& name);
  void DropIfExists(const std::string& name);
  /// Drop every table whose name starts with `prefix`.
  void DropPrefix(const std::string& prefix);

  TablePtr Get(const std::string& name) const;
  TablePtr GetOrNull(const std::string& name) const;
  bool Exists(const std::string& name) const;
  std::vector<std::string> ListTables() const;
  size_t TotalBytes() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, TablePtr> tables_;
};

}  // namespace joinboost
