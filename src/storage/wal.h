#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "storage/types.h"

namespace joinboost {

/// Write-ahead log. The paper identifies the WAL as one of the fundamental
/// DBMS mechanisms that make residual updates slow (§5.3.2). We implement a
/// real one: every logical write serializes its payload with a checksum into
/// the log buffer (optionally spilled to a disk file), and the log can be
/// replayed into columns after a simulated crash (tested).
class WriteAheadLog {
 public:
  struct Record {
    std::string table;
    std::string column;
    TypeId type = TypeId::kFloat64;
    /// Row ids the payload applies to; empty means "full column rewrite".
    std::vector<uint32_t> rows;
    std::vector<uint8_t> payload;  ///< serialized values
    uint64_t checksum = 0;
  };

  explicit WriteAheadLog(bool spill_to_disk = false, std::string path = "");
  ~WriteAheadLog();

  /// Log an update of double values (full column when rows is empty).
  void LogDoubles(const std::string& table, const std::string& column,
                  const std::vector<uint32_t>& rows,
                  const std::vector<double>& values);
  void LogInts(const std::string& table, const std::string& column,
               const std::vector<uint32_t>& rows,
               const std::vector<int64_t>& values);

  uint64_t bytes_written() const { return bytes_written_; }
  size_t num_records() const { return records_.size(); }
  const std::vector<Record>& records() const { return records_; }

  /// Verify every record's checksum (as crash recovery would); returns the
  /// number of valid records.
  size_t VerifyAll() const;

  void Truncate();

 private:
  void Append(Record rec);

  bool spill_to_disk_;
  std::string path_;
  int fd_ = -1;
  std::mutex mu_;
  std::vector<Record> records_;
  uint64_t bytes_written_ = 0;
};

}  // namespace joinboost
