#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "storage/types.h"

namespace joinboost {

/// Write-ahead log. The paper identifies the WAL as one of the fundamental
/// DBMS mechanisms that make residual updates slow (§5.3.2). We implement a
/// real one: every logical write serializes its payload with a checksum into
/// the log buffer (optionally spilled to a disk file), and the log can be
/// replayed into columns after a simulated crash (tested).
///
/// On-disk format: each record is framed as a fixed 32-byte header
/// (table/column name lengths, type, row count, payload length, FNV-1a
/// payload checksum) followed by the names, the row ids, and the payload.
/// ReplayFile() parses the frames back, verifies every checksum, and raises
/// a typed WalCorruption for a damaged record (checksum mismatch) or a torn
/// tail (file ends inside a frame) instead of replaying garbage.
///
/// Thread-safety: all entry points (including the read-side accessors) take
/// the internal mutex, so concurrent serving sessions can log and verify
/// against the same WAL. The log file — whether an mkstemp temp file or a
/// caller-provided path — is owned by this object: the fd is opened
/// close-on-exec and the file is closed and unlinked exactly once in the
/// destructor. A failed disk write leaves the log unchanged (the partial
/// bytes are truncated away before the error propagates), so bytes_written()
/// and num_records() never disagree with the on-disk state.
///
/// Failure injection: disk appends visit the "wal-write" fault-injection
/// point (util/fault_injection.h) before any byte is written; an injected
/// fault exercises the same rollback path as a real device error.
class WriteAheadLog {
 public:
  struct Record {
    std::string table;
    std::string column;
    TypeId type = TypeId::kFloat64;
    /// Row ids the payload applies to; empty means "full column rewrite".
    std::vector<uint32_t> rows;
    std::vector<uint8_t> payload;  ///< serialized values
    uint64_t checksum = 0;
  };

  explicit WriteAheadLog(bool spill_to_disk = false, std::string path = "");
  ~WriteAheadLog();

  /// Log an update of double values (full column when rows is empty).
  void LogDoubles(const std::string& table, const std::string& column,
                  const std::vector<uint32_t>& rows,
                  const std::vector<double>& values);
  void LogInts(const std::string& table, const std::string& column,
               const std::vector<uint32_t>& rows,
               const std::vector<int64_t>& values);

  /// Build a record without logging it (checksum filled in) — for staging a
  /// multi-column write that is then published atomically via LogBatch.
  static Record MakeDoubles(const std::string& table,
                            const std::string& column,
                            const std::vector<uint32_t>& rows,
                            const std::vector<double>& values);
  static Record MakeInts(const std::string& table, const std::string& column,
                         const std::vector<uint32_t>& rows,
                         const std::vector<int64_t>& values);

  /// Append several records as one atomic batch: either every record lands
  /// (disk and in-memory) or, on any failure, the file and the in-memory log
  /// roll back to the pre-batch state before the error propagates. This is
  /// what keeps a multi-column UPDATE/append from leaving WAL entries for a
  /// write that was never published to the catalog.
  void LogBatch(std::vector<Record> recs);

  uint64_t bytes_written() const;
  size_t num_records() const;
  /// Snapshot of the log records (copy: the live vector may grow while the
  /// caller replays).
  std::vector<Record> records() const;

  /// Backing file path when spilling to disk ("" for in-memory logs). For
  /// the default constructor this is the mkstemp-generated
  /// /tmp/joinboost_wal_XXXXXX name; the file exists exactly for the
  /// lifetime of this object.
  const std::string& path() const { return path_; }

  /// Verify every record's checksum (as crash recovery would); returns the
  /// number of valid records.
  size_t VerifyAll() const;

  /// Parse a disk-spilled log file back into records, verifying each frame's
  /// checksum. Throws WalCorruption{kChecksumMismatch} for a record whose
  /// payload no longer matches its checksum and WalCorruption{kTornTail}
  /// when the file ends inside a frame (a write torn by a crash).
  static std::vector<Record> ReplayFile(const std::string& path);

  void Truncate();

 private:
  void Append(Record rec);
  /// Appends with mu_ held; shared by Append and LogBatch.
  void AppendLocked(Record rec);

  bool spill_to_disk_;
  std::string path_;
  int fd_ = -1;
  mutable std::mutex mu_;
  std::vector<Record> records_;
  uint64_t bytes_written_ = 0;
};

}  // namespace joinboost
