#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "util/check.h"

namespace joinboost {

/// Column types supported by the engine. Strings are always dictionary-encoded
/// (paper §6 preprocess: "dictionary encode strings into 32-bit unsigned
/// integers"); the codes are stored as int64 alongside a shared dictionary.
enum class TypeId : uint8_t {
  kInt64 = 0,
  kFloat64 = 1,
  kString = 2,
};

/// NULL sentinel for int64 columns (also for dictionary codes).
constexpr int64_t kNullInt64 = std::numeric_limits<int64_t>::min();

/// NULL for doubles is represented as a quiet NaN.
inline double NullFloat64() {
  return std::numeric_limits<double>::quiet_NaN();
}

inline bool IsNullFloat64(double v) { return std::isnan(v); }

inline const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kInt64:
      return "INT64";
    case TypeId::kFloat64:
      return "FLOAT64";
    case TypeId::kString:
      return "STRING";
  }
  return "?";
}

/// A single scalar value; used by row-mode execution, literals, and tests.
struct Value {
  TypeId type = TypeId::kInt64;
  bool null = false;
  int64_t i = 0;     ///< int64 payload or dictionary code
  double d = 0.0;    ///< float64 payload
  std::string s;     ///< decoded string payload (only for literals/results)

  static Value Int(int64_t v) {
    Value out;
    out.type = TypeId::kInt64;
    out.i = v;
    out.null = (v == kNullInt64);
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type = TypeId::kFloat64;
    out.d = v;
    out.null = IsNullFloat64(v);
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.type = TypeId::kString;
    out.s = std::move(v);
    return out;
  }
  static Value Null(TypeId t) {
    Value out;
    out.type = t;
    out.null = true;
    out.i = kNullInt64;
    out.d = NullFloat64();
    return out;
  }

  /// Numeric view with int->double promotion; strings compare via code only.
  double AsDouble() const {
    if (null) return NullFloat64();
    if (type == TypeId::kFloat64) return d;
    return static_cast<double>(i);
  }

  bool operator==(const Value& other) const {
    if (type != other.type) return AsDouble() == other.AsDouble();
    if (null || other.null) return null == other.null;
    switch (type) {
      case TypeId::kInt64:
        return i == other.i;
      case TypeId::kFloat64:
        return d == other.d;
      case TypeId::kString:
        return s == other.s ? true : i == other.i;
    }
    return false;
  }
};

}  // namespace joinboost
