#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>

#include "graph/join_order.h"
#include "plan/logical_plan.h"
#include "plan/plan_cache.h"
#include "sql/expr_util.h"
#include "sql/printer.h"
#include "stats/selectivity.h"
#include "stats/stats_manager.h"

namespace joinboost {
namespace plan {

namespace {

using sql::CollectColumnRefs;
using sql::CombineConjuncts;
using sql::OutputName;
using sql::SplitConjuncts;

/// One FROM-clause relation during planning.
struct RelInfo {
  const sql::TableRef* ref = nullptr;
  sql::JoinType jtype = sql::JoinType::kInner;  ///< kInner for the FROM rel
  sql::ExprPtr condition;                       ///< folded ON conjunction
  std::string qualifier;
  bool base = false;
  TablePtr tbl;                         ///< base-table snapshot (may be null)
  std::vector<std::string> known_cols;  ///< output columns, schema order
  bool opaque = false;                  ///< column set unknown (subquery *)
  double base_rows = -1;                ///< -1 = unknown
  std::vector<sql::ExprPtr> pushed;     ///< scan-fused WHERE conjuncts
  double est = -1;                      ///< post-filter estimate
  size_t orig = 0;                      ///< original position (0 = FROM)
};

bool RelHasColumn(const RelInfo& rel, const std::string& name) {
  return std::find(rel.known_cols.begin(), rel.known_cols.end(), name) !=
         rel.known_cols.end();
}

void FillRelInfo(const sql::TableRef& ref, const Catalog& catalog,
                 RelInfo* rel) {
  rel->ref = &ref;
  rel->qualifier = ref.Qualifier();
  if (ref.kind == sql::TableRef::Kind::kBase) {
    rel->base = true;
    rel->tbl = catalog.GetOrNull(ref.name);
    if (rel->tbl) {
      for (const auto& f : rel->tbl->schema().fields()) {
        rel->known_cols.push_back(f.name);
      }
      rel->base_rows = static_cast<double>(rel->tbl->num_rows());
    } else {
      rel->opaque = true;  // execution will raise the missing-table error
    }
  } else {
    const sql::SelectStmt& sub = *ref.subquery;
    for (size_t i = 0; i < sub.select_list.size(); ++i) {
      if (sub.select_list[i]->kind == sql::ExprKind::kStar) {
        rel->opaque = true;
        rel->known_cols.clear();
        return;
      }
      rel->known_cols.push_back(OutputName(*sub.select_list[i], i));
    }
  }
}

/// Resolve one column ref to the relation providing it. Qualified refs match
/// by qualifier; unqualified refs bind to the first relation whose known
/// column set contains the name (first-match, like execution). Returns -1
/// when the owner cannot be determined statically.
int ResolveRef(const sql::Expr& ref, const std::vector<RelInfo>& rels) {
  if (!ref.table.empty()) {
    for (size_t i = 0; i < rels.size(); ++i) {
      if (rels[i].qualifier == ref.table) return static_cast<int>(i);
    }
    return -1;
  }
  for (size_t i = 0; i < rels.size(); ++i) {
    if (rels[i].opaque) return -1;  // could bind here; cannot prove it
    if (RelHasColumn(rels[i], ref.column)) return static_cast<int>(i);
  }
  return -1;
}

/// Owner relation of a conjunct: the unique relation all its refs resolve
/// to. Ref-free conjuncts belong to the FROM relation (the first scan, as in
/// unplanned execution). Returns -1 for multi-relation or unresolvable.
int ConjunctOwner(const sql::ExprPtr& conjunct,
                  const std::vector<RelInfo>& rels) {
  std::vector<const sql::Expr*> refs;
  CollectColumnRefs(conjunct, &refs);
  if (refs.empty()) return 0;
  int owner = -2;
  for (const auto* r : refs) {
    int idx = ResolveRef(*r, rels);
    if (idx < 0) return -1;
    if (owner == -2) owner = idx;
    if (owner != idx) return -1;
  }
  return owner;
}

/// Relations referenced by a join condition; false when any ref is
/// unresolvable (disables reordering for the query).
bool ConditionRels(const sql::ExprPtr& cond, const std::vector<RelInfo>& rels,
                   std::set<int>* out) {
  std::vector<const sql::Expr*> refs;
  CollectColumnRefs(cond, &refs);
  for (const auto* r : refs) {
    int idx = ResolveRef(*r, rels);
    if (idx < 0) return false;
    out->insert(idx);
  }
  return true;
}

/// Post-filter cardinality estimate. With statistics available, each pushed
/// conjunct is estimated from the column's histogram (falling back to the
/// heuristic for unsupported shapes); without, the heuristic selectivities
/// apply. Feeding the *post-filter* estimate into join ordering is what
/// makes a heavily-filtered big table order before an unfiltered small one.
double FilteredEstimate(const RelInfo& rel, stats::StatsManager* mgr) {
  if (rel.base_rows < 0) return -1;
  double sel = 1.0;
  for (const auto& p : rel.pushed) {
    double s = -1;
    if (mgr && rel.base && rel.tbl) {
      s = stats::ConjunctSelectivity(*p, rel.tbl, mgr);
    }
    if (s < 0) s = EstimateSelectivity(*p);
    sel *= s;
  }
  return std::max(1.0, rel.base_rows * sel);
}

/// Distinct count of a join-key column; when statistics cannot answer
/// (subquery relations, missing tables), assume the key is unique on that
/// side — the dominant shape here (dimension / message joins are N-to-1).
double KeyDistinct(const RelInfo& rel, const std::string& column,
                   stats::StatsManager* mgr) {
  double ndv = -1;
  if (rel.base && rel.tbl) ndv = stats::JoinKeyDistinct(rel.tbl, column, mgr);
  if (ndv < 0) ndv = rel.est;
  return std::max(1.0, ndv);
}

/// Join selectivity of clause `self` from distinct counts.
///
/// Inner joins: each equi key pair contributes 1 / max(ndv_left, ndv_right)
/// to the |L| x |R| cross product. Semi joins *filter* the left side: the
/// fraction of left rows whose key appears on the right is about
/// min(1, ndv_right / ndv_left) per key pair (the trainer's selector
/// messages carry exactly the surviving key set, so this is near-exact
/// there); anti joins keep the complement. Residual conjuncts contribute
/// their heuristic selectivity either way.
double JoinSelectivity(const RelInfo& rel, const std::vector<RelInfo>& rels,
                       size_t self, stats::StatsManager* mgr) {
  const bool filtering = rel.jtype == sql::JoinType::kSemi ||
                         rel.jtype == sql::JoinType::kAnti;
  std::vector<sql::ExprPtr> conjuncts;
  SplitConjuncts(rel.condition, &conjuncts);
  double sel = 1.0;
  for (const auto& c : conjuncts) {
    bool handled = false;
    if (c->kind == sql::ExprKind::kBinary && c->op == "=" &&
        c->args[0]->kind == sql::ExprKind::kColumnRef &&
        c->args[1]->kind == sql::ExprKind::kColumnRef) {
      int a = ResolveRef(*c->args[0], rels);
      int b = ResolveRef(*c->args[1], rels);
      if (a >= 0 && b >= 0 && a != b) {
        double nda = KeyDistinct(rels[static_cast<size_t>(a)],
                                 c->args[0]->column, mgr);
        double ndb = KeyDistinct(rels[static_cast<size_t>(b)],
                                 c->args[1]->column, mgr);
        if (filtering) {
          // Put the clause's own relation on the "right" of the fraction.
          double nd_self = a == static_cast<int>(self) ? nda : ndb;
          double nd_other = a == static_cast<int>(self) ? ndb : nda;
          sel *= std::min(1.0, nd_self / std::max(1.0, nd_other));
        } else {
          sel /= std::max(nda, ndb);
        }
        handled = true;
      }
    }
    if (!handled) sel *= EstimateSelectivity(*c);
  }
  if (rel.jtype == sql::JoinType::kAnti) {
    sel = std::min(1.0, std::max(0.0, 1.0 - sel));
  }
  return sel;
}

LogicalOpPtr MakeScan(const RelInfo& rel, const Catalog& catalog,
                      const std::unordered_map<std::string,
                                               std::set<std::string>>& needed,
                      bool prune_enabled, bool for_explain,
                      const ParallelPolicy& parallel, PlannerContext* ctx) {
  auto op = std::make_shared<LogicalOp>();
  op->qualifier = rel.qualifier;
  op->est_rows = rel.est;
  if (rel.base) {
    op->kind = OpKind::kScan;
    op->table = rel.ref->name;
    op->base_rows = rel.base_rows;
    op->table_columns = rel.known_cols.size();
    if (prune_enabled && !rel.opaque) {
      auto it = needed.find(rel.qualifier);
      const std::set<std::string> empty;
      const std::set<std::string>& want = it == needed.end() ? empty
                                                             : it->second;
      for (const auto& c : rel.known_cols) {
        if (want.count(c)) op->columns.push_back(c);
      }
      op->pruned = op->columns.size() < rel.known_cols.size();
      if (!op->pruned) op->columns.clear();
    }
    op->est_cols = static_cast<int>(op->pruned ? op->columns.size()
                                               : op->table_columns);
  } else {
    op->kind = OpKind::kSubqueryScan;
    op->subquery = rel.ref->subquery.get();
    op->est_cols = rel.opaque ? -1
                              : static_cast<int>(rel.known_cols.size());
    if (for_explain) {
      // Explain-only child; normal execution plans the nested SELECT inside
      // its own RunSelect, so don't pay for a throwaway plan there.
      LogicalPlan sub = PlanSelect(*rel.ref->subquery, catalog,
                                   /*for_explain=*/true, parallel, ctx);
      if (sub.root) {
        op->children.push_back(sub.root);
        op->est_rows = sub.root->est_rows;
      }
    }
  }
  // Fuse the pushed predicates; TRUE conjuncts vanish, a FALSE conjunct
  // collapses the whole filter.
  std::vector<sql::ExprPtr> kept;
  for (const auto& p : rel.pushed) {
    bool truthy = false;
    if (IsFoldedLiteral(*p, &truthy)) {
      if (truthy) continue;
      kept.clear();
      kept.push_back(sql::Expr::Int(0));
      break;
    }
    kept.push_back(p);
  }
  op->filter = CombineConjuncts(kept);
  return op;
}

int CountAggregates(const sql::SelectStmt& stmt) {
  // Local re-implementation of exec::CollectAggregates (plan must not
  // depend on exec).
  int count = 0;
  std::function<void(const sql::ExprPtr&)> walk = [&](const sql::ExprPtr& e) {
    if (!e) return;
    if (e->kind == sql::ExprKind::kAggCall) {
      ++count;
      return;
    }
    if (e->kind == sql::ExprKind::kWindowAgg) return;
    for (const auto& a : e->args) walk(a);
  };
  for (const auto& item : stmt.select_list) walk(item);
  walk(stmt.having);
  return count;
}

int CountWindows(const sql::SelectStmt& stmt) {
  int count = 0;
  std::function<void(const sql::ExprPtr&)> walk = [&](const sql::ExprPtr& e) {
    if (!e) return;
    if (e->kind == sql::ExprKind::kWindowAgg) {
      ++count;
      return;
    }
    for (const auto& a : e->args) walk(a);
  };
  for (const auto& item : stmt.select_list) walk(item);
  return count;
}

}  // namespace

LogicalPlan PlanSelect(const sql::SelectStmt& stmt, const Catalog& catalog,
                       bool for_explain, const ParallelPolicy& parallel,
                       PlannerContext* ctx) {
  LogicalPlan plan;
  plan.stmt = &stmt;
  int folds = 0;
  const bool cost_based = ctx && ctx->stats != nullptr;

  // Plan-cache consult: the normalized shape key matches the trainer's
  // repeated message/histogram queries across temp-table renames and
  // parameter (literal) changes. A hit reuses the memoized join order and
  // skips statistics lookups and DP enumeration below; the cheap lowering
  // always runs. EXPLAIN never touches the cache (counters stay those of
  // real execution).
  // The lookup itself is deferred until the FROM relations are resolved, so
  // the cached join order can be validated against each base table's current
  // (uid, data version) — a cached order costed on since-modified data is
  // evicted rather than replayed (see PlanCache::Lookup).
  std::string cache_key;
  CachedPlan cached;
  bool have_cached = false;
  const bool use_cache = ctx && ctx->cache && !for_explain;
  if (use_cache) {
    cache_key = PlanCache::ShapeKey(stmt, catalog);
  }

  bool select_star = false;
  for (const auto& item : stmt.select_list) {
    select_star |= item->kind == sql::ExprKind::kStar;
  }

  // ---- data section ----
  if (!stmt.has_from) {
    auto one = std::make_shared<LogicalOp>();
    one->kind = OpKind::kNoFrom;
    one->est_rows = 1;
    one->est_cols = 0;
    plan.data_root = one;
    if (stmt.where) {
      auto filt = std::make_shared<LogicalOp>();
      filt->kind = OpKind::kFilter;
      filt->filter = FoldConstants(stmt.where, /*bool_ctx=*/true, &folds);
      filt->children.push_back(plan.data_root);
      filt->est_rows = EstimateSelectivity(*filt->filter) >= 1.0 ? 1 : 0;
      filt->est_cols = 0;
      plan.data_root = filt;
    }
    if (use_cache) {
      have_cached = ctx->cache->Lookup(cache_key, {}, &cached);
      plan.plan_cache = have_cached ? 1 : 0;
      if (!have_cached) ctx->cache->Insert(cache_key, CachedPlan());
    }
  } else {
    // Relations: FROM + every JOIN clause.
    std::vector<RelInfo> rels(1 + stmt.joins.size());
    FillRelInfo(stmt.from, catalog, &rels[0]);
    rels[0].orig = 0;
    for (size_t j = 0; j < stmt.joins.size(); ++j) {
      RelInfo& rel = rels[j + 1];
      FillRelInfo(stmt.joins[j].table, catalog, &rel);
      rel.jtype = stmt.joins[j].type;
      // Fold inside the ON condition but never short-circuit it: collapsing
      // `a.k = b.k AND 1 = 2` to `0` would discard the equi key the hash
      // join requires. A folded-false conjunct survives as a residual
      // filter, exactly as in raw-AST execution.
      rel.condition =
          FoldConstants(stmt.joins[j].condition, /*bool_ctx=*/false, &folds);
      rel.orig = j + 1;
    }

    // Stamp the resolved base tables and consult the cache. Subquery
    // relations carry no stamp here — their own base tables are validated by
    // the recursive PlanSelect for the subquery.
    std::vector<TableStamp> stamps;
    for (const auto& rel : rels) {
      if (rel.base && rel.tbl) {
        stamps.push_back({rel.tbl->name(), rel.tbl->uid(),
                          static_cast<uint64_t>(rel.tbl->num_rows())});
      }
    }
    if (use_cache) {
      have_cached = ctx->cache->Lookup(cache_key, stamps, &cached);
      plan.plan_cache = have_cached ? 1 : 0;
    }
    stats::StatsManager* stats_mgr =
        cost_based && !have_cached ? ctx->stats : nullptr;

    // Predicate pushdown: single-relation WHERE conjuncts fuse into the
    // owning scan. The nullable side of a LEFT JOIN is the one unsafe
    // target — filtering it below the join changes NULL-extension
    // semantics. Semi/anti right sides take pushdown: their columns vanish
    // from the join output, so below the join is the only valid placement.
    std::vector<sql::ExprPtr> conjuncts;
    SplitConjuncts(stmt.where, &conjuncts);
    std::vector<sql::ExprPtr> post_filters;
    for (auto& c : conjuncts) {
      sql::ExprPtr folded = FoldConstants(c, /*bool_ctx=*/true, &folds);
      bool truthy = false;
      if (IsFoldedLiteral(*folded, &truthy) && truthy) {
        continue;  // folded to TRUE: a no-op, not a pushdown
      }
      int owner = ConjunctOwner(folded, rels);
      if (owner >= 0 && (owner == 0 ||
                         rels[static_cast<size_t>(owner)].jtype !=
                             sql::JoinType::kLeft)) {
        rels[static_cast<size_t>(owner)].pushed.push_back(std::move(folded));
        ++plan.predicates_pushed;
      } else {
        post_filters.push_back(std::move(folded));
      }
    }
    for (auto& rel : rels) rel.est = FilteredEstimate(rel, stats_mgr);

    // Projection pruning: a scan only materializes (and decompresses)
    // columns referenced anywhere in the statement. Qualified refs pin one
    // relation; unqualified refs conservatively pin every relation that has
    // the name, so first-match binding is unchanged.
    std::unordered_map<std::string, std::set<std::string>> needed;
    bool prune_enabled = !select_star;
    std::vector<const sql::Expr*> all_refs;
    for (const auto& item : stmt.select_list) {
      CollectColumnRefs(item, &all_refs);
    }
    CollectColumnRefs(stmt.where, &all_refs);
    for (const auto& jc : stmt.joins) {
      CollectColumnRefs(jc.condition, &all_refs);
    }
    for (const auto& g : stmt.group_by) CollectColumnRefs(g, &all_refs);
    for (const auto& gs : stmt.grouping_sets) {
      for (const auto& g : gs) CollectColumnRefs(g, &all_refs);
    }
    CollectColumnRefs(stmt.having, &all_refs);
    for (const auto& o : stmt.order_by) CollectColumnRefs(o.expr, &all_refs);
    for (const auto* r : all_refs) {
      if (!r->table.empty()) {
        needed[r->table].insert(r->column);
        continue;
      }
      for (const auto& rel : rels) {
        if (rel.opaque || RelHasColumn(rel, r->column)) {
          needed[rel.qualifier].insert(r->column);
        }
      }
    }

    // Unqualified names held by several relations bind first-match against
    // the joined table's physical column order; join reordering would change
    // that order (and thus the binding), so it must stand down.
    bool ambiguous_unqualified = false;
    bool any_opaque = false;
    for (const auto& rel : rels) any_opaque |= rel.opaque;
    for (const auto* r : all_refs) {
      if (!r->table.empty()) continue;
      if (any_opaque) {
        ambiguous_unqualified = true;  // holders cannot be proven unique
        break;
      }
      int holders = 0;
      for (const auto& rel : rels) {
        if (RelHasColumn(rel, r->column)) ++holders;
      }
      if (holders > 1) {
        ambiguous_unqualified = true;
        break;
      }
    }

    // Join reordering: keep the FROM relation as the probe anchor (that
    // pins execution-order determinism) and permute the join clauses. Left
    // joins and statically unresolvable conditions keep the written order.
    std::vector<size_t> order;  // indices into rels, excluding 0
    for (size_t j = 1; j < rels.size(); ++j) order.push_back(j);
    // SELECT * exposes the physical column order, which reordering changes.
    bool reorderable =
        rels.size() > 2 && !ambiguous_unqualified && !select_star;
    std::vector<std::set<int>> cond_rels(rels.size());
    for (size_t j = 1; j < rels.size() && reorderable; ++j) {
      if (rels[j].jtype == sql::JoinType::kLeft) reorderable = false;
      if (rels[j].est < 0) reorderable = false;
      if (!ConditionRels(rels[j].condition, rels,
                         &cond_rels[j])) {
        reorderable = false;
      }
    }

    // Statistics-based join selectivities for the DP cost model and the
    // join-output estimates below.
    std::vector<double> join_sel(rels.size(), 1.0);
    if (stats_mgr) {
      for (size_t j = 1; j < rels.size(); ++j) {
        join_sel[j] = JoinSelectivity(rels[j], rels, j, stats_mgr);
      }
    }

    if (reorderable) {
      std::vector<size_t> chosen;
      bool from_dp = false;
      if (have_cached && cached.order.size() == order.size()) {
        // Replay the memoized order after re-validating feasibility against
        // this statement (the shape key guarantees it, but stay defensive).
        std::set<int> available = {0};
        std::vector<bool> seen(rels.size(), false);
        bool ok = true;
        for (size_t j : cached.order) {
          if (j == 0 || j >= rels.size() || seen[j]) {
            ok = false;
            break;
          }
          for (int r : cond_rels[j]) {
            if (r != static_cast<int>(j) && !available.count(r)) ok = false;
          }
          if (!ok) break;
          seen[j] = true;
          if (rels[j].jtype == sql::JoinType::kInner) {
            available.insert(static_cast<int>(j));
          }
        }
        if (ok) {
          chosen = cached.order;
          from_dp = cached.reordered_dp;
        }
      }
      if (chosen.empty() && stats_mgr &&
          order.size() <= graph::kMaxDpClauses) {
        // Subset-DP enumeration minimizing the sum of intermediate
        // cardinalities. Clause k stands for rels[k + 1].
        std::vector<graph::JoinOrderClause> clauses(order.size());
        for (size_t j = 1; j < rels.size(); ++j) {
          graph::JoinOrderClause& c = clauses[j - 1];
          c.rows = rels[j].est;
          c.selectivity = join_sel[j];
          c.semi_or_anti = rels[j].jtype != sql::JoinType::kInner;
          for (int r : cond_rels[j]) {
            if (r != 0 && r != static_cast<int>(j)) c.needs.push_back(r - 1);
          }
        }
        graph::JoinOrderResult res =
            graph::EnumerateJoinOrder(rels[0].est, clauses);
        if (res.valid) {
          for (int k : res.order) chosen.push_back(static_cast<size_t>(k) + 1);
          from_dp = true;
        }
      }
      if (chosen.empty()) {
        // Greedy fallback (also the reference when cost_based is off):
        // smallest post-filter estimate first among the feasible clauses.
        std::set<int> available = {0};
        std::vector<bool> placed(rels.size(), false);
        while (chosen.size() < order.size()) {
          size_t best = 0;
          bool found = false;
          for (size_t j = 1; j < rels.size(); ++j) {
            if (placed[j]) continue;
            bool ok = true;
            for (int r : cond_rels[j]) {
              if (r != static_cast<int>(j) && !available.count(r)) ok = false;
            }
            if (!ok) continue;
            if (!found || rels[j].est < rels[best].est) {
              best = j;
              found = true;
            }
          }
          if (!found) {  // disconnected under this anchor: keep as written
            chosen.clear();
            break;
          }
          placed[best] = true;
          chosen.push_back(best);
          if (rels[best].jtype == sql::JoinType::kInner) {
            available.insert(static_cast<int>(best));
          }
        }
      }
      if (chosen.size() == order.size() && chosen != order) {
        order = std::move(chosen);
        plan.joins_reordered = true;
        if (from_dp) plan.joins_reordered_dp = true;
      }
    }
    if (use_cache && !have_cached) {
      CachedPlan entry;
      entry.order = order;
      entry.reordered = plan.joins_reordered;
      entry.reordered_dp = plan.joins_reordered_dp;
      entry.stamps = std::move(stamps);
      ctx->cache->Insert(cache_key, std::move(entry));
    }

    // Build the data-section tree: scans, joins in chosen order, leftover
    // multi-relation filters on top.
    LogicalOpPtr current =
        MakeScan(rels[0], catalog, needed, prune_enabled, for_explain,
                 parallel, ctx);
    double est = current->est_rows;
    int cols = current->est_cols;
    for (size_t oi : order) {
      const RelInfo& rel = rels[oi];
      LogicalOpPtr right = MakeScan(rel, catalog, needed, prune_enabled,
                                    for_explain, parallel, ctx);
      auto join = std::make_shared<LogicalOp>();
      join->kind = OpKind::kJoin;
      join->join_type = rel.jtype;
      join->condition = rel.condition;
      join->children = {current, right};
      switch (rel.jtype) {
        case sql::JoinType::kInner:
          // With statistics: |L ⨝ R| = |L| · |R| · Π 1/max(ndv_l, ndv_r).
          // Without: the pre-cost-model upper-bound heuristic.
          join->est_rows =
              (est < 0 || right->est_rows < 0)
                  ? -1
                  : (stats_mgr ? std::max(1.0, est * right->est_rows *
                                                   join_sel[oi])
                               : std::max(est, right->est_rows));
          join->est_cols = (cols < 0 || right->est_cols < 0)
                               ? -1
                               : cols + right->est_cols;
          break;
        case sql::JoinType::kLeft:
          join->est_rows = est;
          join->est_cols = (cols < 0 || right->est_cols < 0)
                               ? -1
                               : cols + right->est_cols;
          break;
        case sql::JoinType::kSemi:
        case sql::JoinType::kAnti:
          // With statistics the filter fraction comes from the key distinct
          // counts (see JoinSelectivity); the heuristic halves.
          join->est_rows =
              est < 0 ? -1
                      : std::max(1.0, est * (stats_mgr ? join_sel[oi] : 0.5));
          join->est_cols = cols;
          break;
      }
      current = join;
      est = join->est_rows;
      cols = join->est_cols;
    }
    if (!post_filters.empty()) {
      auto filt = std::make_shared<LogicalOp>();
      filt->kind = OpKind::kFilter;
      filt->filter = CombineConjuncts(post_filters);
      filt->children.push_back(current);
      double sel = EstimateSelectivity(*filt->filter);
      filt->est_rows = est < 0 ? -1 : std::max(1.0, est * sel);
      filt->est_cols = cols;
      current = filt;
    }
    plan.data_root = current;
  }

  // ---- upper section (explain + finishing parameters) ----
  LogicalOpPtr top = plan.data_root;
  double est = top->est_rows;
  int cols = top->est_cols;
  int num_aggs = CountAggregates(stmt);
  int num_wins = CountWindows(stmt);
  if (!stmt.grouping_sets.empty()) {
    // GROUPING SETS: one multi-aggregate operator evaluating every set over
    // the shared data section in a single pass.
    std::set<std::string> union_keys;
    for (const auto& gs : stmt.grouping_sets) {
      for (const auto& g : gs) union_keys.insert(sql::ToSql(*g));
    }
    auto agg = std::make_shared<LogicalOp>();
    agg->kind = OpKind::kMultiAggregate;
    agg->stmt = &stmt;
    agg->est_cols = static_cast<int>(union_keys.size()) + num_aggs;
    double per_set = est < 0 ? -1 : std::max(1.0, est * 0.1);
    agg->est_rows =
        per_set < 0
            ? -1
            : per_set * static_cast<double>(stmt.grouping_sets.size());
    agg->children.push_back(top);
    top = agg;
  } else if (!stmt.group_by.empty() || num_aggs > 0) {
    auto agg = std::make_shared<LogicalOp>();
    agg->kind = OpKind::kAggregate;
    agg->stmt = &stmt;
    agg->est_cols = static_cast<int>(stmt.group_by.size()) + num_aggs;
    agg->est_rows = stmt.group_by.empty()
                        ? 1
                        : (est < 0 ? -1 : std::max(1.0, est * 0.1));
    agg->children.push_back(top);
    top = agg;
  } else if (num_wins > 0) {
    auto win = std::make_shared<LogicalOp>();
    win->kind = OpKind::kWindow;
    win->stmt = &stmt;
    win->est_rows = est;
    win->est_cols = cols;
    win->children.push_back(top);
    top = win;
  }
  est = top->est_rows;

  auto proj = std::make_shared<LogicalOp>();
  proj->kind = OpKind::kProject;
  proj->stmt = &stmt;
  proj->est_rows = est;
  proj->est_cols = select_star ? -1
                               : static_cast<int>(stmt.select_list.size());
  proj->children.push_back(top);
  top = proj;
  cols = proj->est_cols;

  if (stmt.distinct) {
    auto d = std::make_shared<LogicalOp>();
    d->kind = OpKind::kDistinct;
    d->stmt = &stmt;
    d->est_rows = est < 0 ? -1 : std::max(1.0, est * 0.5);
    d->est_cols = cols;
    d->children.push_back(top);
    top = d;
    est = d->est_rows;
  }
  if (!stmt.order_by.empty()) {
    auto s = std::make_shared<LogicalOp>();
    s->kind = OpKind::kSort;
    s->stmt = &stmt;
    s->est_rows = est;
    s->est_cols = cols;
    s->children.push_back(top);
    top = s;
  }
  if (stmt.limit >= 0) {
    auto l = std::make_shared<LogicalOp>();
    l->kind = OpKind::kLimit;
    l->stmt = &stmt;
    l->est_rows = est < 0 ? static_cast<double>(stmt.limit)
                          : std::min(est, static_cast<double>(stmt.limit));
    l->est_cols = cols;
    l->children.push_back(top);
    top = l;
  }
  plan.root = top;
  plan.constants_folded = static_cast<size_t>(folds);

  // Annotate DOP estimates from the rows each operator consumes (scan: the
  // base table; join: the probe side; filter/aggregate: the child). The
  // estimate mirrors the execution-time morsel thresholds, so EXPLAIN shows
  // where the dispatcher will actually fan out.
  std::function<void(LogicalOp&)> annotate = [&](LogicalOp& op) {
    for (auto& c : op.children) annotate(*c);
    switch (op.kind) {
      case OpKind::kScan:
        op.est_dop = parallel.DopForRows(op.base_rows);
        break;
      case OpKind::kJoin:
      case OpKind::kFilter:
      case OpKind::kAggregate:
      case OpKind::kMultiAggregate:
        op.est_dop = op.children.empty()
                         ? 1
                         : parallel.DopForRows(op.children[0]->est_rows);
        break;
      default:
        break;
    }
  };
  annotate(*plan.root);
  return plan;
}

}  // namespace plan
}  // namespace joinboost
