#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sql/ast.h"
#include "storage/catalog.h"

namespace joinboost {
namespace plan {

/// The planning decision memoized per normalized query shape: the join-clause
/// execution order (indices into the planner's relation vector, excluding the
/// anchor at 0). The cheap lowering (pushdown, pruning, folding) still runs
/// on every query — what a cache hit skips is the expensive part: statistics
/// lookups and DP join enumeration.
struct CachedPlan {
  std::vector<size_t> order;  ///< rel indices 1..n in execution sequence
  bool reordered = false;     ///< order differs from the written order
  bool reordered_dp = false;  ///< order was chosen by DP enumeration
};

/// Plan cache keyed on normalized plan shape. ShapeKey maps table names to
/// slot ids by first appearance (the trainer's temp tables get fresh names
/// per materialization — jb_tmp_1, jb_tmp_2, ... — yet repeat the same query
/// shapes hundreds of times per train) plus a per-table schema fingerprint,
/// and strips literals to '?' in parameter positions only: a literal
/// compared against a column-bearing expression, or an IN-list element whose
/// probe bears a column. Literals anywhere else (both-sides-literal
/// comparisons, bare AND/OR operands) keep their values, because constant
/// folding short-circuits on them and two different values could produce
/// different plan shapes.
class PlanCache {
 public:
  static std::string ShapeKey(const sql::SelectStmt& stmt,
                              const Catalog& catalog);

  /// True + *out filled on hit. Thread-safe.
  bool Lookup(const std::string& key, CachedPlan* out) const;

  /// Memoize the decision for `key` (idempotent for a deterministic planner;
  /// stops inserting at kMaxEntries to bound memory).
  void Insert(const std::string& key, CachedPlan plan);

  size_t size() const;
  void Clear();

  static constexpr size_t kMaxEntries = 4096;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, CachedPlan> map_;
};

}  // namespace plan
}  // namespace joinboost
