#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sql/ast.h"
#include "storage/catalog.h"

namespace joinboost {
namespace plan {

/// Identity of one base table at planning time, at the granularity join-order
/// decisions depend on: `uid` changes whenever the catalog entry is replaced
/// wholesale (copy-on-write append/update), `rows` guards cardinality. A
/// value-only in-place mutation (the trainer's residual column swap, §5.4)
/// deliberately does NOT invalidate: it changes annotation values, never
/// cardinalities, and per-column statistics go stale independently through
/// the StatsManager's (ColumnData identity, version) scheme.
struct TableStamp {
  std::string name;
  uint64_t uid = 0;
  uint64_t rows = 0;

  bool operator==(const TableStamp& o) const {
    return name == o.name && uid == o.uid && rows == o.rows;
  }
};

/// The planning decision memoized per normalized query shape: the join-clause
/// execution order (indices into the planner's relation vector, excluding the
/// anchor at 0). The cheap lowering (pushdown, pruning, folding) still runs
/// on every query — what a cache hit skips is the expensive part: statistics
/// lookups and DP join enumeration.
struct CachedPlan {
  std::vector<size_t> order;  ///< rel indices 1..n in execution sequence
  bool reordered = false;     ///< order differs from the written order
  bool reordered_dp = false;  ///< order was chosen by DP enumeration
  /// Base tables (planner relation order) whose statistics the decision was
  /// derived from. Validated on lookup — see PlanCache::Lookup.
  std::vector<TableStamp> stamps;
};

/// Plan cache keyed on normalized plan shape. ShapeKey maps table names to
/// slot ids by first appearance (the trainer's temp tables get fresh names
/// per materialization — jb_tmp_1, jb_tmp_2, ... — yet repeat the same query
/// shapes hundreds of times per train) plus a per-table schema fingerprint,
/// and strips literals to '?' in parameter positions only: a literal
/// compared against a column-bearing expression, or an IN-list element whose
/// probe bears a column. Literals anywhere else (both-sides-literal
/// comparisons, bare AND/OR operands) keep their values, because constant
/// folding short-circuits on them and two different values could produce
/// different plan shapes.
class PlanCache {
 public:
  static std::string ShapeKey(const sql::SelectStmt& stmt,
                              const Catalog& catalog);

  /// True + *out filled on hit. Thread-safe.
  bool Lookup(const std::string& key, CachedPlan* out) const;

  /// Lookup with staleness validation against the querying statement's
  /// current base tables. Per slot: a *renamed* table (trainer temp-table
  /// churn) still hits — shape sharing across names is the cache's purpose —
  /// but the *same* table name with a different (uid, rows) means the table
  /// the join order was costed on has been replaced or resized (append,
  /// copy-on-write update); the entry is evicted and the caller re-plans.
  /// Thread-safe.
  bool Lookup(const std::string& key, const std::vector<TableStamp>& current,
              CachedPlan* out);

  /// Memoize the decision for `key` (idempotent for a deterministic planner;
  /// stops inserting at kMaxEntries to bound memory).
  void Insert(const std::string& key, CachedPlan plan);

  size_t size() const;
  /// Entries evicted by stale-stamp validation since construction.
  size_t evictions() const;
  void Clear();

  static constexpr size_t kMaxEntries = 4096;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, CachedPlan> map_;
  size_t evictions_ = 0;
};

}  // namespace plan
}  // namespace joinboost
