#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sql/ast.h"
#include "storage/catalog.h"

namespace joinboost {

namespace stats {
class StatsManager;
}  // namespace stats

namespace plan {

/// Counters produced while planning and executing queries. The engine
/// accumulates them per-database; trainers report the delta over a training
/// run (Figure 9 instrumentation extended with planner effectiveness).
struct PlanStats {
  size_t queries_planned = 0;    ///< SELECTs that went through the planner
  size_t scans = 0;              ///< base-table scans executed
  size_t rows_scan_input = 0;    ///< base-table rows entering scans
  size_t rows_scan_output = 0;   ///< rows surviving fused scan filters
  size_t cols_scanned = 0;       ///< columns materialized by scans
  size_t cols_pruned = 0;        ///< columns skipped via projection pruning
  size_t cols_decompressed = 0;  ///< encoded columns actually decoded
  size_t cells_decompressed = 0; ///< rows x decoded columns (decode volume)
  size_t cells_decompress_avoided = 0; ///< encoded cells compressed execution
                                       ///< never materialized; deterministic
                                       ///< for any thread count
  size_t blocks_skipped = 0;     ///< encoded blocks skipped wholesale via
                                 ///< zone-map (min/max) predicate bounds
  size_t predicates_pushed = 0;  ///< WHERE conjuncts fused into scans
  size_t constants_folded = 0;   ///< predicate subtrees folded to literals
  size_t joins_reordered = 0;    ///< queries whose join order changed
  size_t joins_reordered_dp = 0; ///< queries whose order the DP enumerator
                                 ///< changed (counted on cache hits too)
  size_t plan_cache_hits = 0;    ///< shape-cache hits (stats + DP skipped)
  size_t plan_cache_misses = 0;  ///< shape-cache misses (decision computed)
  size_t morsels_dispatched = 0; ///< morsels run by parallel operators
  size_t morsels_stolen = 0;     ///< morsels executed by pool workers rather
                                 ///< than the dispatching thread
  size_t multi_aggs = 0;         ///< multi-aggregate (GROUPING SETS) operators
  size_t grouping_sets = 0;      ///< grouping sets evaluated by them
  size_t hash_probes = 0;        ///< hash-table lookups (join build + probe,
                                 ///< group find-or-add; one per input row)
  size_t hash_chain_follows = 0; ///< bucket-chain links walked (join probe
                                 ///< matches + same-hash group collisions);
                                 ///< deterministic for any thread count
  size_t hash_bytes = 0;         ///< hash memory at canonical (single-table)
                                 ///< sizing: next[] chains + slot directory
  size_t chunks_created = 0;     ///< column segments sealed (loads, result
                                 ///< materialization, appends, rewrites)
  size_t chunks_rewritten = 0;   ///< pre-existing column segments rebuilt;
                                 ///< appends pin this to 0 (O(new rows))
  size_t chunks_pruned = 0;      ///< horizontal chunks eliminated wholesale
                                 ///< by zone maps (never decoded); like the
                                 ///< other decode counters, deterministic
                                 ///< for any thread count
  size_t guard_checks = 0;       ///< cooperative QueryGuard check points on
                                 ///< governed queries (logical morsels,
                                 ///< conjunct x block, operator seals) —
                                 ///< deterministic for any thread count
  size_t queries_cancelled = 0;  ///< queries aborted via QueryGuard::Cancel
  size_t deadline_aborts = 0;    ///< queries aborted by a guard deadline
  size_t budget_aborts = 0;      ///< queries aborted by the byte budget

  PlanStats& operator+=(const PlanStats& o) {
    queries_planned += o.queries_planned;
    scans += o.scans;
    rows_scan_input += o.rows_scan_input;
    rows_scan_output += o.rows_scan_output;
    cols_scanned += o.cols_scanned;
    cols_pruned += o.cols_pruned;
    cols_decompressed += o.cols_decompressed;
    cells_decompressed += o.cells_decompressed;
    cells_decompress_avoided += o.cells_decompress_avoided;
    blocks_skipped += o.blocks_skipped;
    predicates_pushed += o.predicates_pushed;
    constants_folded += o.constants_folded;
    joins_reordered += o.joins_reordered;
    joins_reordered_dp += o.joins_reordered_dp;
    plan_cache_hits += o.plan_cache_hits;
    plan_cache_misses += o.plan_cache_misses;
    morsels_dispatched += o.morsels_dispatched;
    morsels_stolen += o.morsels_stolen;
    multi_aggs += o.multi_aggs;
    grouping_sets += o.grouping_sets;
    hash_probes += o.hash_probes;
    hash_chain_follows += o.hash_chain_follows;
    hash_bytes += o.hash_bytes;
    chunks_created += o.chunks_created;
    chunks_rewritten += o.chunks_rewritten;
    chunks_pruned += o.chunks_pruned;
    guard_checks += o.guard_checks;
    queries_cancelled += o.queries_cancelled;
    deadline_aborts += o.deadline_aborts;
    budget_aborts += o.budget_aborts;
    return *this;
  }
  PlanStats operator-(const PlanStats& o) const {
    PlanStats d = *this;
    d.queries_planned -= o.queries_planned;
    d.scans -= o.scans;
    d.rows_scan_input -= o.rows_scan_input;
    d.rows_scan_output -= o.rows_scan_output;
    d.cols_scanned -= o.cols_scanned;
    d.cols_pruned -= o.cols_pruned;
    d.cols_decompressed -= o.cols_decompressed;
    d.cells_decompressed -= o.cells_decompressed;
    d.cells_decompress_avoided -= o.cells_decompress_avoided;
    d.blocks_skipped -= o.blocks_skipped;
    d.predicates_pushed -= o.predicates_pushed;
    d.constants_folded -= o.constants_folded;
    d.joins_reordered -= o.joins_reordered;
    d.joins_reordered_dp -= o.joins_reordered_dp;
    d.plan_cache_hits -= o.plan_cache_hits;
    d.plan_cache_misses -= o.plan_cache_misses;
    d.morsels_dispatched -= o.morsels_dispatched;
    d.morsels_stolen -= o.morsels_stolen;
    d.multi_aggs -= o.multi_aggs;
    d.grouping_sets -= o.grouping_sets;
    d.hash_probes -= o.hash_probes;
    d.hash_chain_follows -= o.hash_chain_follows;
    d.hash_bytes -= o.hash_bytes;
    d.chunks_created -= o.chunks_created;
    d.chunks_rewritten -= o.chunks_rewritten;
    d.chunks_pruned -= o.chunks_pruned;
    d.guard_checks -= o.guard_checks;
    d.queries_cancelled -= o.queries_cancelled;
    d.deadline_aborts -= o.deadline_aborts;
    d.budget_aborts -= o.budget_aborts;
    return d;
  }
};

/// Degree-of-parallelism policy the engine derives from its EngineProfile.
/// The planner uses it to annotate operators with a DOP estimate (surfaced
/// in EXPLAIN); execution uses the same thresholds, so the annotation
/// matches what the morsel dispatcher will actually do.
struct ParallelPolicy {
  int threads = 1;                     ///< pool-clamped intra-query budget
  size_t morsel_rows = 16384;          ///< rows per dispatched morsel
  size_t threshold_rows = 8192;        ///< below this, operators run serially

  /// DOP estimate for an operator consuming ~`rows` input rows. A zero
  /// threshold disables parallelism, mirroring OpContext::CanParallel.
  int DopForRows(double rows) const {
    if (threads <= 1 || rows < 0 || threshold_rows == 0 ||
        rows < static_cast<double>(threshold_rows)) {
      return 1;
    }
    double morsels =
        (rows + static_cast<double>(morsel_rows) - 1) /
        static_cast<double>(morsel_rows);
    if (morsels >= static_cast<double>(threads)) return threads;
    return morsels < 1 ? 1 : static_cast<int>(morsels);
  }
};

/// Logical operator kinds. The data section (Scan/SubqueryScan/Join/Filter)
/// is executed recursively by the engine; the upper section
/// (Aggregate/Window/Project/Distinct/Sort/Limit) parameterizes the shared
/// finishing pipeline and exists in the tree for EXPLAIN.
enum class OpKind {
  kScan,          ///< base-table scan (column subset + fused filter)
  kSubqueryScan,  ///< derived table: a nested SELECT in FROM
  kJoin,          ///< hash join (inner / left / semi / anti)
  kFilter,        ///< post-join residual predicate
  kNoFrom,        ///< SELECT <exprs> without FROM (one synthetic row)
  kAggregate,     ///< GROUP BY + aggregate evaluation (incl. HAVING)
  kMultiAggregate,///< GROUPING SETS: one shared pass, one histogram per set
  kWindow,        ///< window aggregates over the data section
  kProject,       ///< final select-list projection
  kDistinct,      ///< SELECT DISTINCT row dedup
  kSort,          ///< ORDER BY
  kLimit,         ///< LIMIT
};

struct LogicalOp;
using LogicalOpPtr = std::shared_ptr<LogicalOp>;

struct LogicalOp {
  OpKind kind = OpKind::kScan;
  std::vector<LogicalOpPtr> children;

  // ---- kScan / kSubqueryScan ----
  std::string table;      ///< base table name (kScan)
  std::string qualifier;  ///< alias / effective column qualifier
  /// Pruned scan columns in schema order; empty + !pruned => all columns.
  std::vector<std::string> columns;
  bool pruned = false;           ///< columns is a strict schema subset
  size_t table_columns = 0;      ///< total columns in the base table
  const sql::SelectStmt* subquery = nullptr;  ///< kSubqueryScan body

  /// Fused scan predicate (kScan/kSubqueryScan), residual join predicate
  /// (kJoin) or post-join filter (kFilter). Conjunction, constant-folded.
  sql::ExprPtr filter;

  // ---- kJoin ----
  sql::JoinType join_type = sql::JoinType::kInner;
  sql::ExprPtr condition;  ///< full ON conjunction (equi keys + residual)

  /// Upper-section nodes keep a pointer to the statement they came from.
  const sql::SelectStmt* stmt = nullptr;

  // ---- estimates (explain / join ordering) ----
  double est_rows = -1;   ///< cardinality estimate; -1 = unknown
  int est_cols = -1;      ///< output column estimate; -1 = unknown
  double base_rows = -1;  ///< kScan: actual base-table row count
  int est_dop = 1;        ///< degree-of-parallelism estimate (morsel policy)

  /// Observed output rows, recorded by the executor as it walks the tree
  /// (mutable: the plan is per-query local and the walk is serial). -1 until
  /// the node has run; EXPLAIN ANALYZE renders estimated vs. actual.
  mutable double actual_rows = -1;
};

/// A planned SELECT: the full operator tree for EXPLAIN plus the data-section
/// root the engine executes (null when the statement has no FROM clause).
struct LogicalPlan {
  LogicalOpPtr root;
  LogicalOpPtr data_root;
  const sql::SelectStmt* stmt = nullptr;

  // Rule-application counters for PlanStats.
  size_t predicates_pushed = 0;
  size_t constants_folded = 0;
  bool joins_reordered = false;
  bool joins_reordered_dp = false;  ///< order came from the DP enumerator
  int plan_cache = -1;  ///< -1 = cache not consulted, 0 = miss, 1 = hit
};

class PlanCache;

/// Optional cost-based planning inputs. With `stats` set, scan and join
/// estimates come from column statistics (histogram selectivities, distinct
/// counts) and join ordering uses the DP enumerator; without it the
/// heuristic selectivities and greedy reorder apply. `cache` memoizes the
/// ordering decision per normalized query shape.
struct PlannerContext {
  stats::StatsManager* stats = nullptr;
  PlanCache* cache = nullptr;
};

/// Lower a SELECT into a logical tree and apply the rewrite rules:
/// constant folding, predicate pushdown, projection pruning and join
/// reordering — DP enumeration over statistics-based estimates when `ctx`
/// provides a StatsManager, greedy smallest-filtered-estimate-first
/// otherwise (and as the fallback beyond graph::kMaxDpClauses).
/// `for_explain` additionally plans FROM-clause subqueries as explain-only
/// children (execution plans them in their own RunSelect instead).
/// `parallel` annotates operators with a DOP estimate from row counts
/// (defaulted: everything serial, est_dop = 1).
LogicalPlan PlanSelect(const sql::SelectStmt& stmt, const Catalog& catalog,
                       bool for_explain = false,
                       const ParallelPolicy& parallel = ParallelPolicy(),
                       PlannerContext* ctx = nullptr);

/// Render a plan as indented text, one operator per line, with per-operator
/// row/column estimates. Deterministic (golden-tested).
std::string Explain(const LogicalPlan& plan);

/// One-line description of a single operator (no children, no indent).
std::string OperatorLabel(const LogicalOp& op);

/// Human-readable dump of the execution counters (EXPLAIN-adjacent
/// reporting; the sql_shell surfaces it as \stats). One "name value" line
/// per counter group, deterministic for a deterministic query stream.
std::string FormatStats(const PlanStats& s);

// ---- rewrite rules (rules.cc; exposed for unit tests) ----

/// Fold literal arithmetic/comparisons inside a predicate. `bool_ctx` marks
/// positions where only truthiness matters (WHERE/ON roots and AND/OR/NOT
/// operands), enabling TRUE/FALSE short-circuit simplification. Returns the
/// original pointer when nothing folded; increments *folds per rewrite.
sql::ExprPtr FoldConstants(const sql::ExprPtr& e, bool bool_ctx, int* folds);

/// Heuristic selectivity of one predicate conjunct (1.0 = keeps everything).
double EstimateSelectivity(const sql::Expr& e);

/// True when `e` is an int/float literal; `truthy` receives its boolean value.
bool IsFoldedLiteral(const sql::Expr& e, bool* truthy);

}  // namespace plan
}  // namespace joinboost
