#include <sstream>

#include "plan/logical_plan.h"

namespace joinboost {
namespace plan {

namespace {

void Render(const LogicalOp& op, int depth, std::ostream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << OperatorLabel(op) << "\n";
  for (const auto& c : op.children) Render(*c, depth + 1, os);
}

}  // namespace

std::string Explain(const LogicalPlan& plan) {
  std::ostringstream os;
  if (plan.root) Render(*plan.root, 0, os);
  if (plan.joins_reordered || plan.predicates_pushed > 0 ||
      plan.constants_folded > 0) {
    os << "-- rules:";
    if (plan.predicates_pushed > 0) {
      os << " pushed=" << plan.predicates_pushed;
    }
    if (plan.constants_folded > 0) {
      os << " folded=" << plan.constants_folded;
    }
    if (plan.joins_reordered) os << " joins-reordered";
    os << "\n";
  }
  return os.str();
}

}  // namespace plan
}  // namespace joinboost
