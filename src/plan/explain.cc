#include <sstream>

#include "plan/logical_plan.h"

namespace joinboost {
namespace plan {

namespace {

void Render(const LogicalOp& op, int depth, std::ostream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << OperatorLabel(op) << "\n";
  for (const auto& c : op.children) Render(*c, depth + 1, os);
}

}  // namespace

std::string Explain(const LogicalPlan& plan) {
  std::ostringstream os;
  if (plan.root) Render(*plan.root, 0, os);
  if (plan.joins_reordered || plan.predicates_pushed > 0 ||
      plan.constants_folded > 0) {
    os << "-- rules:";
    if (plan.predicates_pushed > 0) {
      os << " pushed=" << plan.predicates_pushed;
    }
    if (plan.constants_folded > 0) {
      os << " folded=" << plan.constants_folded;
    }
    if (plan.joins_reordered) {
      os << (plan.joins_reordered_dp ? " joins-reordered-dp"
                                     : " joins-reordered");
    }
    os << "\n";
  }
  return os.str();
}

std::string FormatStats(const PlanStats& s) {
  std::ostringstream os;
  os << "queries_planned    " << s.queries_planned << "\n"
     << "scans              " << s.scans << "\n"
     << "rows scan in/out   " << s.rows_scan_input << " / "
     << s.rows_scan_output << "\n"
     << "cols scan/pruned   " << s.cols_scanned << " / " << s.cols_pruned
     << "\n"
     << "decompressed       " << s.cols_decompressed << " cols, "
     << s.cells_decompressed << " cells\n"
     << "decompress_avoided " << s.cells_decompress_avoided << " cells\n"
     << "blocks_skipped     " << s.blocks_skipped << "\n"
     << "predicates_pushed  " << s.predicates_pushed << "\n"
     << "constants_folded   " << s.constants_folded << "\n"
     << "joins_reordered    " << s.joins_reordered << "\n"
     << "joins_reordered_dp " << s.joins_reordered_dp << "\n"
     << "plan_cache hit/miss " << s.plan_cache_hits << " / "
     << s.plan_cache_misses << "\n"
     << "morsels disp/stole " << s.morsels_dispatched << " / "
     << s.morsels_stolen << "\n"
     << "multi_aggs/sets    " << s.multi_aggs << " / " << s.grouping_sets
     << "\n"
     << "hash_probes        " << s.hash_probes << "\n"
     << "hash_chain_follows " << s.hash_chain_follows << "\n"
     << "hash_bytes         " << s.hash_bytes << "\n"
     << "chunks created/rewritten " << s.chunks_created << " / "
     << s.chunks_rewritten << "\n"
     << "chunks_pruned      " << s.chunks_pruned << "\n"
     << "guard_checks       " << s.guard_checks << "\n"
     << "queries_cancelled  " << s.queries_cancelled << "\n"
     << "deadline_aborts    " << s.deadline_aborts << "\n"
     << "budget_aborts      " << s.budget_aborts << "\n";
  return os.str();
}

}  // namespace plan
}  // namespace joinboost
