#include "plan/plan_cache.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace joinboost {
namespace plan {

namespace {

bool IsLiteralKind(sql::ExprKind k) {
  return k == sql::ExprKind::kIntLiteral || k == sql::ExprKind::kFloatLiteral ||
         k == sql::ExprKind::kStringLiteral;
}

bool IsComparison(const std::string& op) {
  return op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

bool ContainsColumnRef(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kColumnRef) return true;
  for (const auto& a : e.args) {
    if (a && ContainsColumnRef(*a)) return true;
  }
  return false;
}

/// Serializer state: maps column qualifiers seen in the current FROM scope to
/// slot ids. The slot counter is shared across nested scopes so subquery
/// tables get distinct slots.
struct KeyBuilder {
  const Catalog* catalog = nullptr;
  std::ostringstream os;
  int next_slot = 0;

  std::string FloatRepr(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  void Literal(const sql::Expr& e, bool param_pos) {
    if (param_pos) {
      os << "?";
      return;
    }
    switch (e.kind) {
      case sql::ExprKind::kIntLiteral:
        os << "i" << e.int_val;
        break;
      case sql::ExprKind::kFloatLiteral:
        os << "f" << FloatRepr(e.float_val);
        break;
      case sql::ExprKind::kStringLiteral:
        os << "s'" << e.str_val << "'";
        break;
      default:
        os << "lit?";
        break;
    }
  }

  void Expr(const sql::Expr& e, const std::map<std::string, int>& scope) {
    switch (e.kind) {
      case sql::ExprKind::kColumnRef: {
        os << "c[";
        if (!e.table.empty()) {
          auto it = scope.find(e.table);
          if (it != scope.end()) {
            os << "T" << it->second;
          } else {
            os << e.table;  // unknown qualifier: keep verbatim
          }
        }
        os << "." << e.column << "]";
        break;
      }
      case sql::ExprKind::kIntLiteral:
      case sql::ExprKind::kFloatLiteral:
      case sql::ExprKind::kStringLiteral:
        Literal(e, /*param_pos=*/false);
        break;
      case sql::ExprKind::kNullLiteral:
        os << "null";
        break;
      case sql::ExprKind::kStar:
        os << "*";
        break;
      case sql::ExprKind::kBinary: {
        os << e.op << "(";
        // Parameter stripping: a literal compared against a column-bearing
        // side can never constant-fold, so its value cannot change the plan
        // shape — it is a query parameter. Everywhere else values stay.
        bool strip_l = false, strip_r = false;
        if (IsComparison(e.op) && e.args.size() == 2) {
          const bool l_lit = IsLiteralKind(e.args[0]->kind);
          const bool r_lit = IsLiteralKind(e.args[1]->kind);
          strip_l = l_lit && !r_lit && ContainsColumnRef(*e.args[1]);
          strip_r = r_lit && !l_lit && ContainsColumnRef(*e.args[0]);
        }
        if (strip_l) {
          Literal(*e.args[0], true);
        } else {
          Expr(*e.args[0], scope);
        }
        os << ",";
        if (strip_r) {
          Literal(*e.args[1], true);
        } else {
          Expr(*e.args[1], scope);
        }
        os << ")";
        break;
      }
      case sql::ExprKind::kUnary:
        os << e.op << "(";
        Expr(*e.args[0], scope);
        os << ")";
        break;
      case sql::ExprKind::kFuncCall:
      case sql::ExprKind::kAggCall: {
        os << (e.kind == sql::ExprKind::kAggCall ? "agg:" : "fn:") << e.op
           << "(";
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i) os << ",";
          Expr(*e.args[i], scope);
        }
        os << ")";
        break;
      }
      case sql::ExprKind::kWindowAgg: {
        os << "win:" << e.op << "(";
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i) os << ",";
          Expr(*e.args[i], scope);
        }
        os << ";p:";
        for (const auto& p : e.partition_by) Expr(*p, scope);
        os << ";o:";
        for (const auto& o : e.order_by) Expr(*o, scope);
        os << ")";
        break;
      }
      case sql::ExprKind::kCase: {
        os << "case" << (e.has_else ? "e" : "") << "(";
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i) os << ",";
          Expr(*e.args[i], scope);
        }
        os << ")";
        break;
      }
      case sql::ExprKind::kInList: {
        os << "in" << (e.negated ? "!" : "") << "(";
        Expr(*e.args[0], scope);
        // Elements are parameters when the probe bears a column; keep the
        // element count — list length feeds selectivity and IN-set sizing.
        const bool strip = ContainsColumnRef(*e.args[0]);
        os << ";" << (e.args.size() - 1) << ";";
        for (size_t i = 1; i < e.args.size(); ++i) {
          if (i > 1) os << ",";
          if (strip && IsLiteralKind(e.args[i]->kind)) {
            Literal(*e.args[i], true);
          } else {
            Expr(*e.args[i], scope);
          }
        }
        os << ")";
        break;
      }
      case sql::ExprKind::kInSubquery: {
        os << "insub" << (e.negated ? "!" : "") << "(";
        Expr(*e.args[0], scope);
        os << ";";
        Select(*e.subquery);
        os << ")";
        break;
      }
      case sql::ExprKind::kIsNull:
        os << "isnull" << (e.negated ? "!" : "") << "(";
        Expr(*e.args[0], scope);
        os << ")";
        break;
    }
    if (!e.alias.empty()) os << "as:" << e.alias;
  }

  void TableSlot(const sql::TableRef& ref, std::map<std::string, int>* scope) {
    const int slot = next_slot++;
    (*scope)[ref.Qualifier()] = slot;
    os << "T" << slot << "{";
    if (ref.kind == sql::TableRef::Kind::kBase) {
      // Schema fingerprint: the key must separate tables whose shape (and
      // thus binding/pruning behaviour) differs, while letting the trainer's
      // uniquely-named temp tables share a slot.
      TablePtr tbl = catalog->GetOrNull(ref.name);
      if (!tbl) {
        os << "missing:" << ref.name;
      } else {
        for (const auto& f : tbl->schema().fields()) {
          os << f.name << ":" << static_cast<int>(f.type) << ",";
        }
      }
    } else {
      os << "sub:";
      Select(*ref.subquery);
    }
    os << "}";
  }

  void Select(const sql::SelectStmt& stmt) {
    std::map<std::string, int> scope;
    os << "S(";
    if (stmt.has_from) {
      os << "from:";
      TableSlot(stmt.from, &scope);
      for (const auto& jc : stmt.joins) {
        os << "|j" << static_cast<int>(jc.type) << ":";
        TableSlot(jc.table, &scope);
      }
      // Conditions serialize after every relation is slotted, matching the
      // planner's whole-FROM resolution scope.
      for (const auto& jc : stmt.joins) {
        os << "|on:";
        if (jc.condition) Expr(*jc.condition, scope);
      }
    }
    os << "|sel" << (stmt.distinct ? "!" : "") << ":";
    for (const auto& item : stmt.select_list) Expr(*item, scope);
    os << "|w:";
    if (stmt.where) Expr(*stmt.where, scope);
    os << "|g:";
    for (const auto& g : stmt.group_by) Expr(*g, scope);
    os << "|gs:";
    for (const auto& gs : stmt.grouping_sets) {
      os << "(";
      for (const auto& g : gs) Expr(*g, scope);
      os << ")";
    }
    os << "|h:";
    if (stmt.having) Expr(*stmt.having, scope);
    os << "|o:";
    for (const auto& o : stmt.order_by) {
      Expr(*o.expr, scope);
      if (o.desc) os << "D";
    }
    os << "|l:" << stmt.limit << ")";
  }
};

}  // namespace

std::string PlanCache::ShapeKey(const sql::SelectStmt& stmt,
                                const Catalog& catalog) {
  KeyBuilder kb;
  kb.catalog = &catalog;
  kb.Select(stmt);
  return kb.os.str();
}

bool PlanCache::Lookup(const std::string& key, CachedPlan* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  *out = it->second;
  return true;
}

bool PlanCache::Lookup(const std::string& key,
                       const std::vector<TableStamp>& current,
                       CachedPlan* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  // Slot-wise staleness check. A different table name in the same slot is
  // shape sharing (trainer temp tables) — always valid. The *same* name with
  // a changed uid or data version means the table the join order was costed
  // on has been appended to, updated, or swapped: evict and re-plan.
  const auto& stamps = it->second.stamps;
  const size_t n = std::min(stamps.size(), current.size());
  for (size_t i = 0; i < n; ++i) {
    if (stamps[i].name == current[i].name && !(stamps[i] == current[i])) {
      map_.erase(it);
      ++evictions_;
      return false;
    }
  }
  *out = it->second;
  return true;
}

void PlanCache::Insert(const std::string& key, CachedPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.size() >= kMaxEntries) return;
  map_[key] = std::move(plan);
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

size_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

}  // namespace plan
}  // namespace joinboost
