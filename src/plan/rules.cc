#include <algorithm>
#include <cmath>

#include "plan/logical_plan.h"

namespace joinboost {
namespace plan {

namespace {

bool IsNumericLiteral(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kIntLiteral ||
         e.kind == sql::ExprKind::kFloatLiteral;
}

double LiteralAsDouble(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kFloatLiteral
             ? e.float_val
             : static_cast<double>(e.int_val);
}

bool IsComparisonOp(const std::string& op) {
  return op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

bool IsArithmeticOp(const std::string& op) {
  return op == "+" || op == "-" || op == "*" || op == "/" || op == "%";
}

/// Fold `lhs op rhs` over two numeric literals, mirroring the semantics of
/// exec::EvalExpr exactly (int/int stays int except '/', which is double;
/// folds are skipped when evaluation would produce NULL so behaviour stays
/// bit-identical with the unfolded path).
sql::ExprPtr FoldBinary(const std::string& op, const sql::Expr& l,
                        const sql::Expr& r) {
  if (IsComparisonOp(op)) {
    double x = LiteralAsDouble(l);
    double y = LiteralAsDouble(r);
    bool res = false;
    if (op == "=") res = x == y;
    else if (op == "<>") res = x != y;
    else if (op == "<") res = x < y;
    else if (op == "<=") res = x <= y;
    else if (op == ">") res = x > y;
    else res = x >= y;
    return sql::Expr::Int(res ? 1 : 0);
  }
  if (!IsArithmeticOp(op)) return nullptr;
  bool as_double = l.kind == sql::ExprKind::kFloatLiteral ||
                   r.kind == sql::ExprKind::kFloatLiteral || op == "/";
  if (!as_double) {
    int64_t x = l.int_val, y = r.int_val;
    if (op == "+") return sql::Expr::Int(x + y);
    if (op == "-") return sql::Expr::Int(x - y);
    if (op == "*") return sql::Expr::Int(x * y);
    if (op == "%") return y == 0 ? nullptr : sql::Expr::Int(x % y);
    return nullptr;
  }
  double x = LiteralAsDouble(l);
  double y = LiteralAsDouble(r);
  if (op == "+") return sql::Expr::Float(x + y);
  if (op == "-") return sql::Expr::Float(x - y);
  if (op == "*") return sql::Expr::Float(x * y);
  if (op == "/") return y == 0.0 ? nullptr : sql::Expr::Float(x / y);
  if (op == "%") return sql::Expr::Float(std::fmod(x, y));
  return nullptr;
}

}  // namespace

bool IsFoldedLiteral(const sql::Expr& e, bool* truthy) {
  if (!IsNumericLiteral(e)) return false;
  if (truthy) {
    *truthy = e.kind == sql::ExprKind::kFloatLiteral ? e.float_val != 0.0
                                                     : e.int_val != 0;
  }
  return true;
}

sql::ExprPtr FoldConstants(const sql::ExprPtr& e, bool bool_ctx, int* folds) {
  if (!e) return e;
  switch (e->kind) {
    case sql::ExprKind::kBinary: {
      const std::string& op = e->op;
      bool child_bool = op == "AND" || op == "OR";
      sql::ExprPtr lhs = FoldConstants(e->args[0], child_bool && bool_ctx, folds);
      sql::ExprPtr rhs = FoldConstants(e->args[1], child_bool && bool_ctx, folds);
      if (child_bool && bool_ctx) {
        // TRUE/FALSE short-circuiting, valid only where truthiness is all
        // that matters (the engine normalizes AND/OR results to 0/1, so a
        // value-position fold would change the output).
        bool lt = false, rt = false;
        bool ll = IsFoldedLiteral(*lhs, &lt);
        bool rl = IsFoldedLiteral(*rhs, &rt);
        if (op == "AND") {
          if (ll && !lt) { ++*folds; return sql::Expr::Int(0); }
          if (rl && !rt) { ++*folds; return sql::Expr::Int(0); }
          if (ll && lt) { ++*folds; return rhs; }
          if (rl && rt) { ++*folds; return lhs; }
        } else {
          if (ll && lt) { ++*folds; return sql::Expr::Int(1); }
          if (rl && rt) { ++*folds; return sql::Expr::Int(1); }
          if (ll && !lt) { ++*folds; return rhs; }
          if (rl && !rt) { ++*folds; return lhs; }
        }
      } else if (IsNumericLiteral(*lhs) && IsNumericLiteral(*rhs)) {
        sql::ExprPtr folded = FoldBinary(op, *lhs, *rhs);
        if (folded) {
          ++*folds;
          return folded;
        }
      }
      if (lhs == e->args[0] && rhs == e->args[1]) return e;
      return sql::Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    case sql::ExprKind::kUnary: {
      sql::ExprPtr arg =
          FoldConstants(e->args[0], bool_ctx && e->op == "NOT", folds);
      if (IsNumericLiteral(*arg)) {
        if (e->op == "-") {
          ++*folds;
          return arg->kind == sql::ExprKind::kFloatLiteral
                     ? sql::Expr::Float(-arg->float_val)
                     : sql::Expr::Int(-arg->int_val);
        }
        if (e->op == "NOT") {
          bool truthy = false;
          IsFoldedLiteral(*arg, &truthy);
          ++*folds;
          return sql::Expr::Int(truthy ? 0 : 1);
        }
      }
      if (arg == e->args[0]) return e;
      return sql::Expr::Unary(e->op, std::move(arg));
    }
    case sql::ExprKind::kCase:
    case sql::ExprKind::kFuncCall:
    case sql::ExprKind::kInList:
    case sql::ExprKind::kIsNull: {
      // Fold inside value positions; the node itself stays.
      std::vector<sql::ExprPtr> args;
      args.reserve(e->args.size());
      bool changed = false;
      for (const auto& a : e->args) {
        sql::ExprPtr f = FoldConstants(a, /*bool_ctx=*/false, folds);
        changed |= f != a;
        args.push_back(std::move(f));
      }
      if (!changed) return e;
      auto out = std::make_shared<sql::Expr>(*e);
      out->args = std::move(args);
      return out;
    }
    default:
      // Literals, column refs, aggregates, windows, subqueries: left as-is
      // (subquery interiors are planned when they execute).
      return e;
  }
}

double EstimateSelectivity(const sql::Expr& e) {
  switch (e.kind) {
    case sql::ExprKind::kBinary: {
      if (e.op == "=") return 0.1;
      if (e.op == "<" || e.op == "<=" || e.op == ">" || e.op == ">=") {
        return 0.3;
      }
      if (e.op == "<>") return 0.9;
      if (e.op == "AND") {
        return EstimateSelectivity(*e.args[0]) *
               EstimateSelectivity(*e.args[1]);
      }
      if (e.op == "OR") {
        double a = EstimateSelectivity(*e.args[0]);
        double b = EstimateSelectivity(*e.args[1]);
        return std::min(1.0, a + b);
      }
      return 0.5;
    }
    case sql::ExprKind::kUnary:
      if (e.op == "NOT") return 1.0 - EstimateSelectivity(*e.args[0]);
      return 0.5;
    case sql::ExprKind::kInList:
      return std::min(0.5, 0.05 * static_cast<double>(e.args.size() - 1));
    case sql::ExprKind::kInSubquery:
      return 0.5;
    case sql::ExprKind::kIsNull:
      return e.negated ? 0.9 : 0.1;
    case sql::ExprKind::kIntLiteral:
    case sql::ExprKind::kFloatLiteral: {
      bool truthy = false;
      IsFoldedLiteral(e, &truthy);
      return truthy ? 1.0 : 0.0;
    }
    default:
      return 0.5;
  }
}

}  // namespace plan
}  // namespace joinboost
