#include "plan/logical_plan.h"

#include <cmath>
#include <sstream>

#include "sql/printer.h"

namespace joinboost {
namespace plan {

namespace {

void AppendRows(const LogicalOp& op, std::ostream& os) {
  if (op.est_rows < 0) {
    os << "rows=?";
    return;
  }
  os << "rows~" << static_cast<long long>(std::llround(op.est_rows));
}

/// EXPLAIN ANALYZE: observed output rows, recorded by the executor. Plain
/// EXPLAIN never executes, so actual_rows stays -1 and nothing is printed.
void AppendActual(const LogicalOp& op, std::ostream& os) {
  if (op.actual_rows < 0) return;
  os << ", act=" << static_cast<long long>(std::llround(op.actual_rows));
}

void AppendCols(const LogicalOp& op, std::ostream& os) {
  os << ", cols=";
  if (op.est_cols < 0) {
    os << "?";
  } else {
    os << op.est_cols;
  }
}

/// Parallel operators advertise their estimated fan-out; serial (dop=1)
/// stays silent so small-table plans render exactly as before.
void AppendDop(const LogicalOp& op, std::ostream& os) {
  if (op.est_dop > 1) os << ", dop=" << op.est_dop;
}

std::string JoinTypeName(sql::JoinType t) {
  switch (t) {
    case sql::JoinType::kInner:
      return "INNER";
    case sql::JoinType::kLeft:
      return "LEFT";
    case sql::JoinType::kSemi:
      return "SEMI";
    case sql::JoinType::kAnti:
      return "ANTI";
  }
  return "?";
}

std::string ProjectName(const sql::Expr& item, size_t index) {
  if (item.kind == sql::ExprKind::kStar) return "*";
  if (!item.alias.empty()) return item.alias;
  if (item.kind == sql::ExprKind::kColumnRef) return item.column;
  return "col" + std::to_string(index);
}

}  // namespace

std::string OperatorLabel(const LogicalOp& op) {
  std::ostringstream os;
  switch (op.kind) {
    case OpKind::kScan: {
      os << "Scan " << op.table;
      if (op.qualifier != op.table) os << " AS " << op.qualifier;
      os << " [";
      if (op.pruned) {
        for (size_t i = 0; i < op.columns.size(); ++i) {
          if (i) os << ", ";
          os << op.columns[i];
        }
      } else {
        os << "*";
      }
      os << "]";
      if (op.filter) os << " filter=" << sql::ToSql(*op.filter);
      os << " (";
      AppendRows(op, os);
      if (op.base_rows >= 0) {
        os << "/" << static_cast<long long>(std::llround(op.base_rows));
      }
      AppendActual(op, os);
      os << ", cols=" << (op.pruned ? op.columns.size() : op.table_columns)
         << "/" << op.table_columns;
      AppendDop(op, os);
      os << ")";
      break;
    }
    case OpKind::kSubqueryScan:
      os << "SubqueryScan AS " << op.qualifier;
      if (op.filter) os << " filter=" << sql::ToSql(*op.filter);
      os << " (";
      AppendRows(op, os);
      AppendActual(op, os);
      AppendCols(op, os);
      os << ")";
      break;
    case OpKind::kJoin:
      os << "Join " << JoinTypeName(op.join_type);
      if (op.condition) os << " on " << sql::ToSql(*op.condition);
      if (op.filter) os << " residual=" << sql::ToSql(*op.filter);
      os << " (";
      AppendRows(op, os);
      AppendActual(op, os);
      AppendCols(op, os);
      AppendDop(op, os);
      os << ")";
      break;
    case OpKind::kFilter:
      os << "Filter " << (op.filter ? sql::ToSql(*op.filter) : "TRUE");
      os << " (";
      AppendRows(op, os);
      AppendActual(op, os);
      AppendDop(op, os);
      os << ")";
      break;
    case OpKind::kNoFrom:
      os << "OneRow (rows~1)";
      break;
    case OpKind::kAggregate: {
      os << "Aggregate keys=[";
      for (size_t i = 0; i < op.stmt->group_by.size(); ++i) {
        if (i) os << ", ";
        os << sql::ToSql(*op.stmt->group_by[i]);
      }
      os << "] aggs=" << (op.est_cols < 0
                              ? 0
                              : op.est_cols -
                                    static_cast<int>(op.stmt->group_by.size()));
      if (op.stmt->having) os << " having=" << sql::ToSql(*op.stmt->having);
      os << " (";
      AppendRows(op, os);
      AppendActual(op, os);
      AppendCols(op, os);
      AppendDop(op, os);
      os << ")";
      break;
    }
    case OpKind::kMultiAggregate: {
      os << "MultiAggregate sets=[";
      for (size_t s = 0; s < op.stmt->grouping_sets.size(); ++s) {
        if (s) os << ", ";
        os << "(";
        for (size_t i = 0; i < op.stmt->grouping_sets[s].size(); ++i) {
          if (i) os << ", ";
          os << sql::ToSql(*op.stmt->grouping_sets[s][i]);
        }
        os << ")";
      }
      os << "]";
      os << " (";
      AppendRows(op, os);
      AppendActual(op, os);
      AppendCols(op, os);
      AppendDop(op, os);
      os << ")";
      break;
    }
    case OpKind::kWindow:
      os << "Window (";
      AppendRows(op, os);
      AppendActual(op, os);
      os << ")";
      break;
    case OpKind::kProject: {
      os << "Project [";
      for (size_t i = 0; i < op.stmt->select_list.size(); ++i) {
        if (i) os << ", ";
        os << ProjectName(*op.stmt->select_list[i], i);
      }
      os << "] (";
      AppendRows(op, os);
      AppendActual(op, os);
      AppendCols(op, os);
      os << ")";
      break;
    }
    case OpKind::kDistinct:
      os << "Distinct (";
      AppendRows(op, os);
      AppendActual(op, os);
      os << ")";
      break;
    case OpKind::kSort: {
      os << "Sort [";
      for (size_t i = 0; i < op.stmt->order_by.size(); ++i) {
        if (i) os << ", ";
        os << sql::ToSql(*op.stmt->order_by[i].expr);
        if (op.stmt->order_by[i].desc) os << " DESC";
      }
      os << "] (";
      AppendRows(op, os);
      AppendActual(op, os);
      os << ")";
      break;
    }
    case OpKind::kLimit:
      os << "Limit " << op.stmt->limit << " (";
      AppendRows(op, os);
      AppendActual(op, os);
      os << ")";
      break;
  }
  return os.str();
}

}  // namespace plan
}  // namespace joinboost
