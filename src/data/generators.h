#pragma once

#include <cstdint>
#include <string>

#include "core/dataset.h"
#include "exec/engine.h"

namespace joinboost {
namespace data {

/// Favorita-like snowflake (paper Figure 7): Sales fact with N-to-1
/// dimensions Items, Stores, Dates, Oil and the composite-keyed
/// Transactions. One "signal" feature per dimension is imputed from
/// U[1,1000] and Y follows the paper's footnote-7 formula:
///   y = f_item·log(f_item) + log(f_oil) − 10·f_date − 10·f_store + f_trans².
struct FavoritaConfig {
  size_t sales_rows = 200000;
  size_t num_items = 4000;
  size_t num_stores = 54;
  size_t num_dates = 1700;
  /// Extra random feature columns added per dimension (Figure 10 sweeps the
  /// total feature count 5 → 50).
  int extra_features_per_dim = 1;
  /// Also expose the fact's date key as a training feature. Sales rows are
  /// generated in date order (like the real feed), so trees that split on
  /// the date produce range predicates that compressed execution can answer
  /// from zone maps without decoding.
  bool date_feature_on_fact = false;
  uint64_t seed = 42;
};

/// Generates and loads the tables, returning a ready Dataset.
Dataset MakeFavorita(exec::Database* db, const FavoritaConfig& config);

/// TPC-DS-like star: store_sales fact with date_dim, store, item, customer,
/// household dimensions. `scale_factor` scales cardinalities linearly
/// (SF=1 ≈ 30k fact rows at the default bench scale); `num_features` spreads
/// feature columns across the dimensions (paper: 145).
struct TpcdsConfig {
  double scale_factor = 1.0;
  int num_features = 20;
  size_t base_fact_rows = 30000;
  uint64_t seed = 7;
};

Dataset MakeTpcds(exec::Database* db, const TpcdsConfig& config);

/// IMDB-like galaxy schema (paper Figure 3): five M-N fact tables
/// (cast_info, movie_companies, movie_info, movie_keyword, person_info)
/// around shared dimensions (movie, person, company, info_type, keyword).
/// The materialized join explodes multiplicatively (>1TB at paper scale) —
/// only factorized training can run it. Y lives in cast_info.
struct ImdbConfig {
  size_t num_movies = 2000;
  size_t num_persons = 5000;
  double cast_per_movie = 12.0;
  double companies_per_movie = 2.0;
  double info_per_movie = 5.0;
  double keywords_per_movie = 6.0;
  double infos_per_person = 3.0;
  uint64_t seed = 11;
};

Dataset MakeImdb(exec::Database* db, const ImdbConfig& config);

/// The §5.3.2 pilot-study synthetic fact table F(s, d, c1..ck): `s` is the
/// semi-ring column to update, `d ∈ [1, d_domain]` the join key, and the
/// c_k are payload columns that a CREATE-based update must copy.
struct PilotConfig {
  size_t rows = 2000000;
  int64_t d_domain = 10000;
  int extra_columns = 0;  ///< the paper's k ∈ {0, 5, 10}
  uint64_t seed = 3;
};

/// Registers table "f" (plus dimension "dim_d" with per-leaf ranges) and
/// returns a Dataset over it.
Dataset MakePilot(exec::Database* db, const PilotConfig& config);

}  // namespace data
}  // namespace joinboost
