#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace joinboost {
namespace data {

namespace {

/// Imputed feature per the paper's preprocessing: random ints U[1, 1000].
std::vector<double> ImputedFeature(Rng* rng, size_t n) {
  std::vector<double> out(n);
  for (auto& v : out) v = static_cast<double>(rng->NextInt(1, 1000));
  return out;
}

std::vector<int64_t> SequentialKeys(size_t n) {
  std::vector<int64_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<int64_t>(i);
  return out;
}

/// Add `count` extra random feature columns named <prefix>0.. to a builder.
void AddExtraFeatures(TableBuilder* builder, Rng* rng, const std::string& prefix,
                      int count, size_t rows,
                      std::vector<std::string>* names) {
  for (int i = 0; i < count; ++i) {
    std::string name = prefix + std::to_string(i);
    builder->AddDoubles(name, ImputedFeature(rng, rows));
    names->push_back(name);
  }
}

}  // namespace

Dataset MakeFavorita(exec::Database* db, const FavoritaConfig& config) {
  Rng rng(config.seed);
  const size_t n = config.sales_rows;
  const size_t items_n = config.num_items;
  const size_t stores_n = config.num_stores;
  const size_t dates_n = config.num_dates;

  // Dimensions with their signal features.
  std::vector<double> f_item = ImputedFeature(&rng, items_n);
  std::vector<double> f_store = ImputedFeature(&rng, stores_n);
  std::vector<double> f_date = ImputedFeature(&rng, dates_n);
  std::vector<double> f_oil = ImputedFeature(&rng, dates_n);

  // Transactions is keyed by the composite (store_id, date_id).
  std::vector<int64_t> t_store, t_date;
  std::vector<double> f_trans;
  t_store.reserve(stores_n * dates_n);
  for (size_t s = 0; s < stores_n; ++s) {
    for (size_t d = 0; d < dates_n; ++d) {
      t_store.push_back(static_cast<int64_t>(s));
      t_date.push_back(static_cast<int64_t>(d));
      f_trans.push_back(static_cast<double>(rng.NextInt(1, 1000)));
    }
  }

  // Fact rows.
  std::vector<int64_t> s_item(n), s_store(n), s_date(n);
  std::vector<double> onpromo(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    s_item[i] = rng.NextInt(0, static_cast<int64_t>(items_n) - 1);
    s_store[i] = rng.NextInt(0, static_cast<int64_t>(stores_n) - 1);
    s_date[i] = rng.NextInt(0, static_cast<int64_t>(dates_n) - 1);
    onpromo[i] = static_cast<double>(rng.NextInt(0, 1));
    double fi = f_item[static_cast<size_t>(s_item[i])];
    double fs = f_store[static_cast<size_t>(s_store[i])];
    double fd = f_date[static_cast<size_t>(s_date[i])];
    double fo = f_oil[static_cast<size_t>(s_date[i])];
    double ft =
        f_trans[static_cast<size_t>(s_store[i]) * dates_n +
                static_cast<size_t>(s_date[i])];
    // Footnote 7 target (scaled to keep magnitudes comparable) + noise.
    y[i] = fi * std::log(fi) / 100.0 + std::log(fo) * 50.0 - 10.0 * fd / 10.0 -
           10.0 * fs / 10.0 + ft * ft / 1000.0 + rng.NextGaussian() * 10.0;
  }

  // Sales arrive date-ordered, as in the real Favorita feed. The sorted key
  // keeps per-block [min, max] ranges tight, which is what gives compressed
  // execution's zone maps genuine skipping power on date predicates.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return s_date[a] < s_date[b]; });
  auto permute_ints = [&](std::vector<int64_t>* v) {
    std::vector<int64_t> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = (*v)[order[i]];
    *v = std::move(out);
  };
  auto permute_dbls = [&](std::vector<double>* v) {
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i) out[i] = (*v)[order[i]];
    *v = std::move(out);
  };
  permute_ints(&s_item);
  permute_ints(&s_store);
  permute_ints(&s_date);
  permute_dbls(&onpromo);
  permute_dbls(&y);

  std::vector<std::string> sales_features = {"onpromotion"};
  if (config.date_feature_on_fact) sales_features.push_back("date_id");
  std::vector<std::string> items_features = {"f_item"};
  std::vector<std::string> stores_features = {"f_store"};
  std::vector<std::string> dates_features = {"f_date"};
  std::vector<std::string> oil_features = {"f_oil"};
  std::vector<std::string> trans_features = {"f_trans"};

  TableBuilder sales("sales");
  sales.AddInts("item_id", s_item)
      .AddInts("store_id", s_store)
      .AddInts("date_id", s_date)
      .AddDoubles("onpromotion", onpromo)
      .AddDoubles("unit_sales", y);
  TableBuilder items("items");
  items.AddInts("item_id", SequentialKeys(items_n)).AddDoubles("f_item", f_item);
  TableBuilder stores("stores");
  stores.AddInts("store_id", SequentialKeys(stores_n))
      .AddDoubles("f_store", f_store);
  TableBuilder dates("dates");
  dates.AddInts("date_id", SequentialKeys(dates_n)).AddDoubles("f_date", f_date);
  TableBuilder oil("oil");
  oil.AddInts("date_id", SequentialKeys(dates_n)).AddDoubles("f_oil", f_oil);
  TableBuilder trans("transactions");
  trans.AddInts("store_id", t_store)
      .AddInts("date_id", t_date)
      .AddDoubles("f_trans", f_trans);

  int extra = config.extra_features_per_dim;
  if (extra > 0) {
    AddExtraFeatures(&sales, &rng, "xs", extra, n, &sales_features);
    AddExtraFeatures(&items, &rng, "xi", extra, items_n, &items_features);
    AddExtraFeatures(&stores, &rng, "xst", extra, stores_n, &stores_features);
    AddExtraFeatures(&dates, &rng, "xd", extra, dates_n, &dates_features);
    AddExtraFeatures(&oil, &rng, "xo", extra, dates_n, &oil_features);
    AddExtraFeatures(&trans, &rng, "xt", extra, t_store.size(),
                     &trans_features);
  }

  db->LoadTable(sales.Build());
  db->LoadTable(items.Build());
  db->LoadTable(stores.Build());
  db->LoadTable(dates.Build());
  db->LoadTable(oil.Build());
  db->LoadTable(trans.Build());

  Dataset ds(db);
  ds.AddTable("sales", sales_features, "unit_sales");
  ds.AddTable("items", items_features);
  ds.AddTable("stores", stores_features);
  ds.AddTable("dates", dates_features);
  ds.AddTable("oil", oil_features);
  ds.AddTable("transactions", trans_features);
  ds.AddJoin("sales", "items", {"item_id"});
  ds.AddJoin("sales", "stores", {"store_id"});
  ds.AddJoin("sales", "dates", {"date_id"});
  ds.AddJoin("sales", "oil", {"date_id"});
  ds.AddJoin("sales", "transactions", {"store_id", "date_id"});
  return ds;
}

Dataset MakeTpcds(exec::Database* db, const TpcdsConfig& config) {
  Rng rng(config.seed);
  size_t n = static_cast<size_t>(config.scale_factor *
                                 static_cast<double>(config.base_fact_rows));
  struct Dim {
    std::string name;
    std::string key;
    size_t rows;
  };
  std::vector<Dim> dims = {
      {"date_dim", "date_sk", 365},
      {"store", "store_sk", 100},
      {"item", "item_sk", 3000},
      {"customer", "customer_sk",
       std::max<size_t>(1000, n / 20)},
      {"household", "hdemo_sk", 720},
  };
  // Spread feature columns round-robin across dimensions.
  int per_dim = std::max(1, config.num_features / static_cast<int>(dims.size()));

  std::vector<std::vector<double>> signal(dims.size());
  Dataset ds(db);
  std::vector<std::vector<int64_t>> fact_keys(dims.size());
  for (auto& fk : fact_keys) fk.resize(n);
  std::vector<double> y(n, 0.0);

  for (size_t d = 0; d < dims.size(); ++d) {
    signal[d] = ImputedFeature(&rng, dims[d].rows);
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dims.size(); ++d) {
      fact_keys[d][i] =
          rng.NextInt(0, static_cast<int64_t>(dims[d].rows) - 1);
      double f = signal[d][static_cast<size_t>(fact_keys[d][i])];
      y[i] += (d % 2 == 0 ? 1.0 : -1.0) * f * (static_cast<double>(d) + 1.0);
    }
    y[i] += rng.NextGaussian() * 25.0;
  }

  TableBuilder fact("store_sales");
  for (size_t d = 0; d < dims.size(); ++d) {
    fact.AddInts(dims[d].key, fact_keys[d]);
  }
  std::vector<std::string> fact_features;
  fact.AddDoubles("net_profit", y);
  AddExtraFeatures(&fact, &rng, "ss_x", per_dim, n, &fact_features);
  db->LoadTable(fact.Build());
  ds.AddTable("store_sales", fact_features, "net_profit");

  for (size_t d = 0; d < dims.size(); ++d) {
    TableBuilder dim(dims[d].name);
    dim.AddInts(dims[d].key, SequentialKeys(dims[d].rows));
    std::vector<std::string> features;
    std::string sig = "sig_" + dims[d].name;
    dim.AddDoubles(sig, signal[d]);
    features.push_back(sig);
    AddExtraFeatures(&dim, &rng, dims[d].name + "_x", per_dim - 1,
                     dims[d].rows, &features);
    db->LoadTable(dim.Build());
    ds.AddTable(dims[d].name, features);
    ds.AddJoin("store_sales", dims[d].name, {dims[d].key});
  }
  return ds;
}

Dataset MakeImdb(exec::Database* db, const ImdbConfig& config) {
  Rng rng(config.seed);
  const size_t movies = config.num_movies;
  const size_t persons = config.num_persons;
  const size_t companies = std::max<size_t>(50, movies / 20);
  const size_t info_types = 40;
  const size_t keywords = std::max<size_t>(100, movies / 10);

  auto link_table = [&](const std::string& name, const std::string& k1,
                        size_t dom1, const std::string& k2, size_t dom2,
                        double per, const std::string& feature,
                        std::vector<int64_t>* out_k1,
                        std::vector<int64_t>* out_k2,
                        std::vector<double>* out_f) {
    (void)name;
    size_t n = static_cast<size_t>(per * static_cast<double>(dom1));
    out_k1->resize(n);
    out_k2->resize(n);
    out_f->resize(n);
    for (size_t i = 0; i < n; ++i) {
      (*out_k1)[i] = rng.NextInt(0, static_cast<int64_t>(dom1) - 1);
      (*out_k2)[i] = rng.NextInt(0, static_cast<int64_t>(dom2) - 1);
      (*out_f)[i] = static_cast<double>(rng.NextInt(1, 1000));
    }
    (void)k1;
    (void)k2;
    (void)feature;
  };

  // Dimensions.
  std::vector<double> f_movie = ImputedFeature(&rng, movies);
  std::vector<double> f_person = ImputedFeature(&rng, persons);
  std::vector<double> f_company = ImputedFeature(&rng, companies);
  std::vector<double> f_itype = ImputedFeature(&rng, info_types);
  std::vector<double> f_keyword = ImputedFeature(&rng, keywords);

  db->LoadTable(TableBuilder("movie")
                    .AddInts("movie_id", SequentialKeys(movies))
                    .AddDoubles("f_movie", f_movie)
                    .Build());
  db->LoadTable(TableBuilder("person")
                    .AddInts("person_id", SequentialKeys(persons))
                    .AddDoubles("f_person", f_person)
                    .Build());
  db->LoadTable(TableBuilder("company")
                    .AddInts("company_id", SequentialKeys(companies))
                    .AddDoubles("f_company", f_company)
                    .Build());
  db->LoadTable(TableBuilder("info_type")
                    .AddInts("itype_id", SequentialKeys(info_types))
                    .AddDoubles("f_itype", f_itype)
                    .Build());
  db->LoadTable(TableBuilder("keyword")
                    .AddInts("keyword_id", SequentialKeys(keywords))
                    .AddDoubles("f_keyword", f_keyword)
                    .Build());

  // cast_info: the central fact hosting Y.
  size_t cast_n =
      static_cast<size_t>(config.cast_per_movie * static_cast<double>(movies));
  std::vector<int64_t> ci_movie(cast_n), ci_person(cast_n);
  std::vector<double> ci_role(cast_n), ci_y(cast_n);
  for (size_t i = 0; i < cast_n; ++i) {
    ci_movie[i] = rng.NextInt(0, static_cast<int64_t>(movies) - 1);
    ci_person[i] = rng.NextInt(0, static_cast<int64_t>(persons) - 1);
    ci_role[i] = static_cast<double>(rng.NextInt(1, 50));
    ci_y[i] = 0.05 * f_movie[static_cast<size_t>(ci_movie[i])] -
              0.03 * f_person[static_cast<size_t>(ci_person[i])] +
              0.5 * ci_role[i] + rng.NextGaussian() * 5.0;
  }
  db->LoadTable(TableBuilder("cast_info")
                    .AddInts("movie_id", ci_movie)
                    .AddInts("person_id", ci_person)
                    .AddDoubles("f_role", ci_role)
                    .AddDoubles("rating", ci_y)
                    .Build());

  // Satellite M-N fact tables.
  std::vector<int64_t> mc_m, mc_c, mi_m, mi_t, mk_m, mk_k, pi_p, pi_t;
  std::vector<double> mc_f, mi_f, mk_f, pi_f;
  link_table("movie_companies", "movie_id", movies, "company_id", companies,
             config.companies_per_movie, "f_mc", &mc_m, &mc_c, &mc_f);
  link_table("movie_info", "movie_id", movies, "itype_id", info_types,
             config.info_per_movie, "f_mi", &mi_m, &mi_t, &mi_f);
  link_table("movie_keyword", "movie_id", movies, "keyword_id", keywords,
             config.keywords_per_movie, "f_mk", &mk_m, &mk_k, &mk_f);
  link_table("person_info", "person_id", persons, "itype_id", info_types,
             config.infos_per_person, "f_pi", &pi_p, &pi_t, &pi_f);

  db->LoadTable(TableBuilder("movie_companies")
                    .AddInts("movie_id", mc_m)
                    .AddInts("company_id", mc_c)
                    .AddDoubles("f_mc", mc_f)
                    .Build());
  db->LoadTable(TableBuilder("movie_info")
                    .AddInts("movie_id", mi_m)
                    .AddInts("itype_id", mi_t)
                    .AddDoubles("f_mi", mi_f)
                    .Build());
  db->LoadTable(TableBuilder("movie_keyword")
                    .AddInts("movie_id", mk_m)
                    .AddInts("keyword_id", mk_k)
                    .AddDoubles("f_mk", mk_f)
                    .Build());
  db->LoadTable(TableBuilder("person_info")
                    .AddInts("person_id", pi_p)
                    .AddInts("itype_id", pi_t)
                    .AddDoubles("f_pi", pi_f)
                    .Build());

  Dataset ds(db);
  ds.AddTable("cast_info", {"f_role"}, "rating");
  ds.AddTable("movie", {"f_movie"});
  ds.AddTable("person", {"f_person"});
  ds.AddTable("company", {"f_company"});
  ds.AddTable("info_type", {"f_itype"});
  ds.AddTable("keyword", {"f_keyword"});
  ds.AddTable("movie_companies", {"f_mc"});
  ds.AddTable("movie_info", {"f_mi"});
  ds.AddTable("movie_keyword", {"f_mk"});
  ds.AddTable("person_info", {"f_pi"});
  ds.AddJoin("cast_info", "movie", {"movie_id"});
  ds.AddJoin("cast_info", "person", {"person_id"});
  ds.AddJoin("movie", "movie_companies", {"movie_id"});
  ds.AddJoin("movie", "movie_info", {"movie_id"});
  ds.AddJoin("movie", "movie_keyword", {"movie_id"});
  ds.AddJoin("movie_companies", "company", {"company_id"});
  ds.AddJoin("movie_info", "info_type", {"itype_id"});
  ds.AddJoin("movie_keyword", "keyword", {"keyword_id"});
  ds.AddJoin("person", "person_info", {"person_id"});
  return ds;
}

Dataset MakePilot(exec::Database* db, const PilotConfig& config) {
  Rng rng(config.seed);
  const size_t n = config.rows;
  std::vector<int64_t> d(n);
  std::vector<double> s(n);
  for (size_t i = 0; i < n; ++i) {
    d[i] = rng.NextInt(1, config.d_domain);
    s[i] = rng.NextDouble() * 100.0;
  }
  TableBuilder fact("f");
  fact.AddInts("d", d).AddDoubles("s_val", s);
  for (int k = 0; k < config.extra_columns; ++k) {
    std::vector<double> ck(n);
    for (auto& v : ck) v = rng.NextDouble();
    fact.AddDoubles("c" + std::to_string(k), ck);
  }
  db->LoadTable(fact.Build());

  // Dimension over d so tree splits become semi-join selectors over F.
  std::vector<int64_t> dk(static_cast<size_t>(config.d_domain));
  std::vector<double> df(static_cast<size_t>(config.d_domain));
  for (size_t i = 0; i < dk.size(); ++i) {
    dk[i] = static_cast<int64_t>(i) + 1;
    df[i] = static_cast<double>(rng.NextInt(1, 1000));
  }
  db->LoadTable(TableBuilder("dim_d")
                    .AddInts("d", dk)
                    .AddDoubles("f_d", df)
                    .Build());

  Dataset ds(db);
  ds.AddTable("f", {}, "s_val");
  ds.AddTable("dim_d", {"f_d"});
  ds.AddJoin("f", "dim_d", {"d"});
  return ds;
}

}  // namespace data
}  // namespace joinboost
