#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace joinboost {

/// Combine two 64-bit hashes (boost-style with a 64-bit golden ratio).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (SplitMix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                 (seed >> 2));
}

/// FNV-1a over raw bytes. Used by the WAL for (cost-bearing) checksums.
inline uint64_t Fnv1a(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Hash a composite key of int64 parts.
inline uint64_t HashKey(const std::vector<int64_t>& parts) {
  uint64_t h = 0x12345678ABCDEF01ULL;
  for (int64_t v : parts) h = HashCombine(h, static_cast<uint64_t>(v));
  return h;
}

}  // namespace joinboost
