#include "util/threadpool.h"

#include <atomic>

namespace joinboost {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // The caller participates in the loop, so nested ParallelFor calls from
  // inside pool workers cannot deadlock even when every worker is busy: the
  // caller alone can drain all items; helper tasks are pure accelerators.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto items_done = std::make_shared<std::atomic<size_t>>(0);
  size_t helpers = std::min(n, workers_.size()) - 1;
  auto work = [next, items_done, n, &fn] {
    size_t i;
    while ((i = next->fetch_add(1)) < n) {
      fn(i);
      items_done->fetch_add(1);
    }
  };
  for (size_t t = 0; t < helpers; ++t) {
    // Helpers capture by value (shared_ptr) except fn, which outlives them
    // because the caller spins below until every item completes.
    Submit([next, items_done, n, &fn] {
      size_t i;
      while ((i = next->fetch_add(1)) < n) {
        fn(i);
        items_done->fetch_add(1);
      }
    });
  }
  work();
  while (items_done->load() < n) std::this_thread::yield();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace joinboost
