#include "util/threadpool.h"

#include <atomic>
#include <limits>
#include <memory>
#include <stdexcept>

#include "util/fault_injection.h"

namespace joinboost {

namespace {
/// Which pool (if any) owns the current thread. Lets WaitIdle detect the
/// self-deadlocking wait-from-worker case and lets tests assert stealing.
thread_local const ThreadPool* tls_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::InWorker() const { return tls_worker_pool == this; }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  if (InWorker()) {
    // The calling worker counts as active, so the idle predicate could never
    // become true: fail fast instead of deadlocking.
    throw std::logic_error("ThreadPool::WaitIdle called from a pool worker");
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (task_error_) {
    std::exception_ptr err = std::move(task_error_);
    task_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

ThreadPool::ParallelForStats ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t)>& fn) {
  ParallelForStats stats;
  if (n == 0) return stats;
  stats.items = n;
  if (n == 1 || workers_.size() == 1) {
    for (size_t i = 0; i < n; ++i) {
      util::fault::Maybe("worker-task");  // same chaos point as the pool path
      fn(i);  // exceptions propagate directly
    }
    return stats;
  }
  // Shared dispatch state. The caller participates in the loop, so nested
  // ParallelFor calls from inside pool workers cannot deadlock even when
  // every worker is busy: the caller alone can drain all items; helper
  // tasks are pure accelerators.
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<size_t> helper_items{0};
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    size_t err_index = std::numeric_limits<size_t>::max();
    std::exception_ptr error;
  };
  auto sh = std::make_shared<Shared>();
  // Helpers capture `fn` by reference; that reference stays valid because
  // the caller spins below until every claimed item has completed.
  auto drain = [sh, n, &fn](bool helper) {
    size_t i;
    while ((i = sh->next.fetch_add(1)) < n) {
      if (!sh->failed.load(std::memory_order_relaxed)) {
        try {
          // Chaos point: a worker task dying before its item runs exercises
          // first-error-wins propagation through the shared dispatch state.
          util::fault::Maybe("worker-task");
          fn(i);
          if (helper) sh->helper_items.fetch_add(1);
        } catch (...) {
          // Keep the smallest index that actually threw (later items may be
          // skipped once `failed` is observed, so which items ran at all is
          // interleaving-dependent).
          std::lock_guard<std::mutex> lk(sh->err_mu);
          if (i < sh->err_index) {
            sh->err_index = i;
            sh->error = std::current_exception();
          }
          sh->failed.store(true);
        }
      }
      sh->done.fetch_add(1);
    }
  };
  size_t helpers = std::min(n, workers_.size()) - 1;
  for (size_t t = 0; t < helpers; ++t) {
    Submit([drain] { drain(/*helper=*/true); });
  }
  drain(/*helper=*/false);
  while (sh->done.load() < n) std::this_thread::yield();
  stats.helper_items = sh->helper_items.load();
  if (sh->error) std::rethrow_exception(sh->error);
  return stats;
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      // A throwing Submit() task must not kill the worker; surface the first
      // failure to whoever waits next.
      std::unique_lock<std::mutex> lock(mu_);
      if (!task_error_) task_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace joinboost
