#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace joinboost {

/// SplitMix64: used both as a standalone generator seedstate mixer and as the
/// engine's deterministic HASH(x, seed) SQL function.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Small fast deterministic RNG (xoshiro256**). Not thread-safe; create one
/// per thread/task with distinct seeds.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    uint64_t x = seed;
    for (auto& si : s_) {
      x = SplitMix64(x);
      si = x;
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t NextBounded(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Standard normal via Box-Muller (one value per call; no caching).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace joinboost
