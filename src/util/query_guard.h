#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>

#include "util/error.h"

namespace joinboost {
namespace util {

/// Cooperative query-lifecycle guard: a cancellation flag, an optional
/// monotonic deadline, and an optional byte budget, carried on ReadContext
/// (and inherited by subqueries through it). The execution stack calls
/// Check() at every morsel boundary, at per-block granularity in the
/// compressed fused scan, and at operator output-seal points; tracked
/// allocations (hash tables, materialization and decompression buffers) go
/// through ChargeBytes(). A tripped guard raises a typed QueryAborted; the
/// engine guarantees the Database stays consistent across the unwind.
///
/// Thread-safety: Cancel()/Check()/ChargeBytes() are safe from any thread
/// (workers check while a client cancels). Configuration setters
/// (set_deadline / set_byte_budget / ResetUsage) are meant for the request
/// thread before execution starts.
class QueryGuard {
 public:
  using Clock = std::chrono::steady_clock;

  /// Trip the cancellation flag; sticky until ResetCancel().
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void ResetCancel() { cancelled_.store(false, std::memory_order_relaxed); }

  /// Absolute monotonic deadline; Clock::time_point::max() disables it.
  void set_deadline(Clock::time_point d) {
    deadline_ns_.store(d.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  void SetDeadlineAfter(std::chrono::nanoseconds delta) {
    set_deadline(Clock::now() + delta);
  }
  void ClearDeadline() {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  /// Byte budget for tracked allocations; 0 disables it.
  void set_byte_budget(uint64_t bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t byte_budget() const {
    return budget_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_used() const { return used_.load(std::memory_order_relaxed); }
  /// Start a fresh request on a reused guard (serving sessions).
  void ResetUsage() { used_.store(0, std::memory_order_relaxed); }

  /// Cooperative check point: throws QueryAborted{kCancelled} or
  /// {kDeadlineExceeded}. Cheap enough for per-morsel / per-block use
  /// (two relaxed loads and a clock read only when a deadline is set).
  void Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      throw QueryAborted(AbortReason::kCancelled, "guard check point");
    }
    int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != kNoDeadline &&
        Clock::now().time_since_epoch().count() >= d) {
      throw QueryAborted(AbortReason::kDeadlineExceeded, "guard check point");
    }
  }

  /// Charge `bytes` of tracked allocation against the budget, then run the
  /// cancellation/deadline check. Throws QueryAborted{kMemoryBudget} when the
  /// cumulative tracked bytes exceed the budget.
  void ChargeBytes(uint64_t bytes) {
    uint64_t budget = budget_.load(std::memory_order_relaxed);
    uint64_t total =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (budget != 0 && total > budget) {
      std::ostringstream os;
      os << "tracked bytes " << total << " exceed budget " << budget;
      throw QueryAborted(AbortReason::kMemoryBudget, os.str());
    }
    Check();
  }

 private:
  static constexpr int64_t kNoDeadline =
      Clock::time_point::max().time_since_epoch().count();

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  std::atomic<uint64_t> budget_{0};
  std::atomic<uint64_t> used_{0};
};

}  // namespace util
}  // namespace joinboost
