#pragma once

#include <string>

#include "util/check.h"

namespace joinboost {

/// Typed error taxonomy layered over JbError. Callers that need to react to
/// *why* something failed (governance aborts, injected chaos faults, log
/// corruption) catch these; everything else keeps catching JbError and sees
/// the same fail-fast behaviour as before.

/// Why a governed query was aborted.
enum class AbortReason {
  kCancelled,         ///< QueryGuard::Cancel() (or Session::Cancel())
  kDeadlineExceeded,  ///< monotonic deadline passed at a guard check point
  kMemoryBudget,      ///< byte budget exceeded by a tracked allocation
};

inline const char* AbortReasonName(AbortReason r) {
  switch (r) {
    case AbortReason::kCancelled:
      return "cancelled";
    case AbortReason::kDeadlineExceeded:
      return "deadline-exceeded";
    case AbortReason::kMemoryBudget:
      return "memory-budget";
  }
  return "unknown";
}

/// Cooperative abort raised at a QueryGuard check point. The engine
/// guarantees the Database stays consistent when one of these unwinds: no
/// partial catalog registration, no poisoned plan-cache or StatsManager
/// entries, WAL and version store untouched.
class QueryAborted : public JbError {
 public:
  QueryAborted(AbortReason reason, const std::string& detail)
      : JbError(std::string("query aborted (") + AbortReasonName(reason) +
                "): " + detail),
        reason_(reason) {}
  AbortReason reason() const { return reason_; }

 private:
  AbortReason reason_;
};

/// WAL disk replay found a damaged log: a record whose payload no longer
/// matches its checksum, or a torn tail (the final record was truncated
/// mid-write). Raised instead of replaying garbage.
class WalCorruption : public JbError {
 public:
  enum class Kind {
    kChecksumMismatch,  ///< stored checksum disagrees with the payload bytes
    kTornTail,          ///< file ends inside a record frame
  };
  WalCorruption(Kind kind, const std::string& detail)
      : JbError(std::string("WAL corruption (") +
                (kind == Kind::kChecksumMismatch ? "checksum mismatch"
                                                 : "torn tail") +
                "): " + detail),
        kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Serving admission queue wait exceeded the configured bound
/// (serve_admission_max_wait_ms); the request was rejected instead of
/// blocking indefinitely.
class AdmissionRejected : public JbError {
 public:
  explicit AdmissionRejected(const std::string& detail)
      : JbError("admission rejected: " + detail) {}
};

/// A seeded chaos fault fired at a named injection point (see
/// util/fault_injection.h). Distinct from QueryAborted so chaos tests can
/// tell governance aborts from injected hardware-style failures.
class InjectedFault : public JbError {
 public:
  explicit InjectedFault(const std::string& point)
      : JbError("injected fault at point '" + point + "'"), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

}  // namespace joinboost
