#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace joinboost {

/// Error thrown on violated internal invariants and bad user input.
/// A research library favours fail-fast over status plumbing; see DESIGN.md.
class JbError : public std::runtime_error {
 public:
  explicit JbError(const std::string& msg) : std::runtime_error(msg) {}
};

namespace detail {
inline void ThrowCheckFailure(const char* expr, const char* file, int line,
                              const std::string& extra) {
  std::ostringstream os;
  os << "JB_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) os << " — " << extra;
  throw JbError(os.str());
}
}  // namespace detail

}  // namespace joinboost

#define JB_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::joinboost::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__, ""); \
    }                                                                       \
  } while (0)

#define JB_CHECK_MSG(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream jb_os_;                                             \
      jb_os_ << msg;                                                         \
      ::joinboost::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__,      \
                                             jb_os_.str());                  \
    }                                                                        \
  } while (0)

#define JB_THROW(msg)                      \
  do {                                     \
    std::ostringstream jb_os_;             \
    jb_os_ << msg;                         \
    throw ::joinboost::JbError(jb_os_.str()); \
  } while (0)
