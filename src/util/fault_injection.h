#pragma once

#include <cstdint>
#include <string>

#include "util/error.h"

namespace joinboost {
namespace util {
namespace fault {

/// Seeded fault injection for chaos testing. The engine is instrumented with
/// named injection points; when injection is armed, each visit to a point
/// draws a deterministic pseudo-random number from (seed, point name, visit
/// index) and throws a typed InjectedFault when it falls under the configured
/// rate. The per-point visit counters make a given seed reproduce the same
/// fault schedule per point regardless of wall clock; under a thread pool the
/// *assignment* of visit indices to concurrent visits races, which is exactly
/// the chaos we want — the invariant under test is typed-error propagation
/// and abort consistency, not which visit trips.
///
/// Injection points instrumented today:
///   wal-write        WriteAheadLog::Append, before any byte hits the disk
///   hash-grow        FlatHashTable::Grow, before the directory doubles
///   worker-task      ThreadPool::ParallelFor, before each item runs
///   snapshot-publish ServingContext::PublishLocked, before the new snapshot
///                    becomes current
///
/// Arming: programmatically via Configure(seed, rate), or from the
/// environment via the JB_FAULT_SEED / JB_FAULT_RATE variables (read once,
/// on the first point visit; Configure/Disable override them). Injection is
/// process-global and off by default; the instrumented hot paths pay one
/// relaxed atomic load when it is off.

/// Arm injection: `rate` in [0, 1] is the per-visit fault probability.
void Configure(uint64_t seed, double rate);

/// Disarm injection and reset all per-point visit/trip counters.
void Disable();

bool Enabled();

/// Total faults thrown since the last Configure/Disable.
uint64_t Trips();

/// Force the next visit to `point` to fail exactly once (independent of the
/// seeded rate; works while disarmed). This is the test seam that the old
/// WriteAheadLog::InjectWriteFailureForTest migrated onto.
void FailNext(const std::string& point);

/// Chaos check point: throws InjectedFault(point) when armed and the seeded
/// draw (or a pending FailNext) says so; no-op otherwise.
void Maybe(const char* point);

}  // namespace fault
}  // namespace util
}  // namespace joinboost
