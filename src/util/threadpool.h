#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace joinboost {

/// Fixed-size thread pool. Tasks are plain std::function<void()>; callers
/// wait for completion via WaitIdle() or their own synchronization.
/// Used for intra-query morsel dispatch and the inter-query scheduler.
///
/// Exception semantics: a throw inside a task never kills a worker.
/// ParallelFor rethrows (in the caller) the exception of the smallest failed
/// index; exceptions from plain Submit() tasks are stored and rethrown by the
/// next WaitIdle(). Nested ParallelFor calls from inside workers are safe:
/// the caller always participates, so progress never depends on a free
/// worker. WaitIdle() from inside a worker would self-deadlock and throws
/// instead.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution. Safe to call from inside a
  /// worker (the task is queued, never run inline).
  void Submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle, then rethrow
  /// the first exception captured from a Submit() task (if any). Must not be
  /// called from inside a worker: that would wait on itself, so it throws.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// True when the current thread is one of this pool's workers.
  bool InWorker() const;

  struct ParallelForStats {
    size_t items = 0;         ///< loop iterations executed
    size_t helper_items = 0;  ///< iterations run by pool workers ("stolen"
                              ///< from the caller by the dispatch loop)
  };

  /// Run fn(i) for i in [0, n) across the pool and wait for all to finish.
  /// The caller participates, so this is deadlock-free even when invoked
  /// from inside a worker with every other worker busy. If any fn(i) throws,
  /// remaining items are skipped and the smallest index among the items
  /// that actually threw is rethrown here (which items ran before the
  /// failure was observed is interleaving-dependent).
  ParallelForStats ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr task_error_;  ///< first Submit()-task failure, for WaitIdle
};

}  // namespace joinboost
