#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace joinboost {

/// Fixed-size thread pool. Tasks are plain std::function<void()>; callers
/// wait for completion via WaitIdle() or their own synchronization.
/// Used for intra-query parallel aggregation and the inter-query scheduler.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool and wait for all to finish.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace joinboost
