#include "util/fault_injection.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/hash.h"
#include "util/rng.h"

namespace joinboost {
namespace util {
namespace fault {

namespace {

struct State {
  std::mutex mu;
  bool enabled = false;
  uint64_t seed = 0;
  uint64_t cutoff = 0;  ///< draw < cutoff → fault (cutoff = rate * 2^64)
  std::map<std::string, uint64_t> visits;
  std::map<std::string, int> fail_next;
};

State& state() {
  static State s;
  return s;
}

/// Fast-path flags so disarmed hot paths pay one relaxed load each.
std::atomic<bool> g_armed{false};
std::atomic<int> g_pending_fail{0};
std::atomic<uint64_t> g_trips{0};

std::once_flag g_env_once;

uint64_t RateToCutoff(double rate) {
  if (rate <= 0) return 0;
  if (rate >= 1) return ~0ULL;
  return static_cast<uint64_t>(rate * 18446744073709551616.0);
}

void InitFromEnv() {
  const char* seed_env = std::getenv("JB_FAULT_SEED");
  const char* rate_env = std::getenv("JB_FAULT_RATE");
  if (seed_env == nullptr && rate_env == nullptr) return;
  uint64_t seed = seed_env ? std::strtoull(seed_env, nullptr, 10) : 1;
  double rate = rate_env ? std::strtod(rate_env, nullptr) : 0.01;
  Configure(seed, rate);
}

}  // namespace

void Configure(uint64_t seed, double rate) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.enabled = true;
  s.seed = seed;
  s.cutoff = RateToCutoff(rate);
  s.visits.clear();
  s.fail_next.clear();
  g_pending_fail.store(0, std::memory_order_relaxed);
  g_trips.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void Disable() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.enabled = false;
  s.visits.clear();
  s.fail_next.clear();
  g_pending_fail.store(0, std::memory_order_relaxed);
  g_trips.store(0, std::memory_order_relaxed);
  g_armed.store(false, std::memory_order_release);
}

bool Enabled() { return g_armed.load(std::memory_order_acquire); }

uint64_t Trips() { return g_trips.load(std::memory_order_relaxed); }

void FailNext(const std::string& point) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.fail_next[point];
  g_pending_fail.fetch_add(1, std::memory_order_relaxed);
}

void Maybe(const char* point) {
  std::call_once(g_env_once, InitFromEnv);
  if (!g_armed.load(std::memory_order_acquire) &&
      g_pending_fail.load(std::memory_order_relaxed) == 0) {
    return;
  }
  State& s = state();
  std::string name(point);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.fail_next.find(name);
    if (it != s.fail_next.end() && it->second > 0) {
      if (--it->second == 0) s.fail_next.erase(it);
      g_pending_fail.fetch_sub(1, std::memory_order_relaxed);
      g_trips.fetch_add(1, std::memory_order_relaxed);
    } else if (s.enabled) {
      uint64_t visit = ++s.visits[name];
      uint64_t draw =
          SplitMix64(s.seed ^ Fnv1a(point, name.size()) ^ (visit * 0x9E3779B97F4A7C15ULL));
      if (s.cutoff == 0 || draw >= s.cutoff) return;
      g_trips.fetch_add(1, std::memory_order_relaxed);
    } else {
      return;
    }
  }
  throw InjectedFault(name);
}

}  // namespace fault
}  // namespace util
}  // namespace joinboost
