#pragma once

#include <string>
#include <vector>

#include "sql/ast.h"

namespace joinboost {
namespace sql {

/// Flatten an AND-conjunction into its conjuncts (no-op for null).
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

/// Rebuild a left-deep AND-conjunction; null for an empty list.
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& cs);

/// Collect column references, skipping subquery interiors (they resolve
/// against their own FROM clause).
void CollectColumnRefs(const ExprPtr& e, std::vector<const Expr*>* out);
void CollectColumnRefs(const Expr& e, std::vector<const Expr*>* out);

/// Collect scalar function-call nodes with the given (uppercase) name,
/// skipping subquery interiors. Used for pseudo-functions whose value the
/// enclosing operator supplies via overrides (e.g. GROUPING_ID()).
void CollectFuncCalls(const ExprPtr& e, const std::string& name,
                      std::vector<const Expr*>* out);

/// Output column name of a select-list item: alias, else the column name of
/// a plain reference, else "colN". Shared by execution and planning so the
/// planner's view of derived-table schemas matches what the engine produces.
std::string OutputName(const Expr& item, size_t index);

}  // namespace sql
}  // namespace joinboost
