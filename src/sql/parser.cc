#include "sql/parser.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

namespace joinboost {
namespace sql {

namespace {

enum class TokKind {
  kEnd,
  kIdent,
  kKeyword,
  kInt,
  kFloat,
  kString,
  kSymbol,  // punctuation / operators
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;  ///< uppercased for keywords; raw for idents/strings
  int64_t int_val = 0;
  double float_val = 0.0;
  size_t pos = 0;
};

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kw = {
      "SELECT", "FROM",   "WHERE",  "GROUP",  "BY",     "ORDER",  "LIMIT",
      "JOIN",   "INNER",  "LEFT",   "SEMI",   "ANTI",   "OUTER",  "ON",
      "AS",     "AND",    "OR",     "NOT",    "IN",     "IS",     "NULL",
      "CASE",   "WHEN",   "THEN",   "ELSE",   "END",    "CREATE", "TABLE",
      "UPDATE", "SET",    "DROP",   "IF",     "EXISTS", "DESC",   "ASC",
      "OVER",   "PARTITION", "HAVING", "DISTINCT", "REPLACE", "BETWEEN",
      "EXPLAIN", "ANALYZE", "GROUPING", "SETS",
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const Token& Peek() const { return cur_; }

  Token Next() {
    Token t = cur_;
    Advance();
    return t;
  }

 private:
  void Advance() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    // line comments
    if (pos_ + 1 < text_.size() && text_[pos_] == '-' && text_[pos_ + 1] == '-') {
      while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      Advance();
      return;
    }
    cur_ = Token();
    cur_.pos = pos_;
    if (pos_ >= text_.size()) {
      cur_.kind = TokKind::kEnd;
      return;
    }
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      std::string word = text_.substr(start, pos_ - start);
      std::string upper = word;
      for (auto& ch : upper) ch = static_cast<char>(std::toupper(ch));
      if (Keywords().count(upper)) {
        cur_.kind = TokKind::kKeyword;
        cur_.text = upper;
      } else {
        cur_.kind = TokKind::kIdent;
        cur_.text = word;
      }
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      size_t start = pos_;
      bool is_float = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
               (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
        if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
          is_float = true;
        }
        ++pos_;
      }
      std::string num = text_.substr(start, pos_ - start);
      if (is_float) {
        cur_.kind = TokKind::kFloat;
        cur_.float_val = std::strtod(num.c_str(), nullptr);
      } else {
        cur_.kind = TokKind::kInt;
        cur_.int_val = std::strtoll(num.c_str(), nullptr, 10);
      }
      cur_.text = num;
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != '\'') {
        s.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) throw ParseError("unterminated string", cur_.pos);
      ++pos_;  // closing quote
      cur_.kind = TokKind::kString;
      cur_.text = s;
      return;
    }
    // multi-char symbols
    static const char* two_char[] = {"<=", ">=", "<>", "!=", "||"};
    for (const char* tc : two_char) {
      if (text_.compare(pos_, 2, tc) == 0) {
        cur_.kind = TokKind::kSymbol;
        cur_.text = tc;
        pos_ += 2;
        return;
      }
    }
    cur_.kind = TokKind::kSymbol;
    cur_.text = std::string(1, c);
    ++pos_;
  }

  const std::string& text_;
  size_t pos_ = 0;
  Token cur_;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) {}

  Statement ParseStatement() {
    Statement stmt;
    if (PeekKeyword("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      stmt.select = ParseSelect();
    } else if (AcceptKeyword("EXPLAIN")) {
      stmt.kind = Statement::Kind::kExplain;
      stmt.analyze = AcceptKeyword("ANALYZE");
      stmt.select = ParseSelect();
    } else if (AcceptKeyword("CREATE")) {
      if (AcceptKeyword("OR")) {
        ExpectKeyword("REPLACE");
        stmt.or_replace = true;
      }
      ExpectKeyword("TABLE");
      stmt.kind = Statement::Kind::kCreateTableAs;
      stmt.table = ExpectIdent();
      ExpectKeyword("AS");
      stmt.select = ParseSelect();
    } else if (AcceptKeyword("UPDATE")) {
      stmt.kind = Statement::Kind::kUpdate;
      stmt.table = ExpectIdent();
      ExpectKeyword("SET");
      do {
        std::string col = ExpectIdent();
        ExpectSymbol("=");
        stmt.set_items.emplace_back(col, ParseExpr());
      } while (AcceptSymbol(","));
      if (AcceptKeyword("WHERE")) stmt.where = ParseExpr();
    } else if (AcceptKeyword("DROP")) {
      ExpectKeyword("TABLE");
      stmt.kind = Statement::Kind::kDropTable;
      if (AcceptKeyword("IF")) {
        ExpectKeyword("EXISTS");
        stmt.if_exists = true;
      }
      stmt.table = ExpectIdent();
    } else {
      throw ParseError("expected SELECT/EXPLAIN/CREATE/UPDATE/DROP",
                       lexer_.Peek().pos);
    }
    AcceptSymbol(";");
    if (lexer_.Peek().kind != TokKind::kEnd) {
      throw ParseError("trailing tokens after statement", lexer_.Peek().pos);
    }
    return stmt;
  }

  ExprPtr ParseExprPublic() { return ParseExpr(); }

 private:
  // ---- token helpers ----
  bool PeekKeyword(const std::string& kw) const {
    return lexer_.Peek().kind == TokKind::kKeyword && lexer_.Peek().text == kw;
  }
  bool AcceptKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      lexer_.Next();
      return true;
    }
    return false;
  }
  void ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      throw ParseError("expected keyword " + kw + ", got '" +
                           lexer_.Peek().text + "'",
                       lexer_.Peek().pos);
    }
  }
  bool PeekSymbol(const std::string& s) const {
    return lexer_.Peek().kind == TokKind::kSymbol && lexer_.Peek().text == s;
  }
  bool AcceptSymbol(const std::string& s) {
    if (PeekSymbol(s)) {
      lexer_.Next();
      return true;
    }
    return false;
  }
  void ExpectSymbol(const std::string& s) {
    if (!AcceptSymbol(s)) {
      throw ParseError("expected '" + s + "', got '" + lexer_.Peek().text + "'",
                       lexer_.Peek().pos);
    }
  }
  std::string ExpectIdent() {
    if (lexer_.Peek().kind != TokKind::kIdent) {
      throw ParseError("expected identifier, got '" + lexer_.Peek().text + "'",
                       lexer_.Peek().pos);
    }
    return lexer_.Next().text;
  }

  // ---- grammar ----
  SelectPtr ParseSelect() {
    ExpectKeyword("SELECT");
    auto stmt = std::make_shared<SelectStmt>();
    if (AcceptKeyword("DISTINCT")) stmt->distinct = true;
    do {
      ExprPtr item;
      if (PeekSymbol("*")) {
        lexer_.Next();
        item = Expr::Star();
      } else {
        item = ParseExpr();
        if (AcceptKeyword("AS")) {
          item->alias = ExpectIdent();
        } else if (lexer_.Peek().kind == TokKind::kIdent) {
          item->alias = lexer_.Next().text;
        }
      }
      stmt->select_list.push_back(std::move(item));
    } while (AcceptSymbol(","));

    if (AcceptKeyword("FROM")) {
      stmt->has_from = true;
      stmt->from = ParseTableRef();
      for (;;) {
        JoinType jt = JoinType::kInner;
        if (PeekKeyword("JOIN")) {
          lexer_.Next();
          jt = JoinType::kInner;
        } else if (PeekKeyword("INNER")) {
          lexer_.Next();
          ExpectKeyword("JOIN");
          jt = JoinType::kInner;
        } else if (PeekKeyword("LEFT")) {
          lexer_.Next();
          AcceptKeyword("OUTER");
          ExpectKeyword("JOIN");
          jt = JoinType::kLeft;
        } else if (PeekKeyword("SEMI")) {
          lexer_.Next();
          ExpectKeyword("JOIN");
          jt = JoinType::kSemi;
        } else if (PeekKeyword("ANTI")) {
          lexer_.Next();
          ExpectKeyword("JOIN");
          jt = JoinType::kAnti;
        } else {
          break;
        }
        JoinClause jc;
        jc.type = jt;
        jc.table = ParseTableRef();
        ExpectKeyword("ON");
        jc.condition = ParseExpr();
        stmt->joins.push_back(std::move(jc));
      }
    }
    if (AcceptKeyword("WHERE")) stmt->where = ParseExpr();
    if (AcceptKeyword("GROUP")) {
      ExpectKeyword("BY");
      if (AcceptKeyword("GROUPING")) {
        ExpectKeyword("SETS");
        ExpectSymbol("(");
        do {
          ExpectSymbol("(");
          std::vector<ExprPtr> set;
          if (!PeekSymbol(")")) {
            do {
              set.push_back(ParseExpr());
            } while (AcceptSymbol(","));
          }
          ExpectSymbol(")");
          stmt->grouping_sets.push_back(std::move(set));
        } while (AcceptSymbol(","));
        ExpectSymbol(")");
      } else {
        do {
          stmt->group_by.push_back(ParseExpr());
        } while (AcceptSymbol(","));
      }
    }
    if (AcceptKeyword("HAVING")) stmt->having = ParseExpr();
    if (AcceptKeyword("ORDER")) {
      ExpectKeyword("BY");
      do {
        OrderItem item;
        item.expr = ParseExpr();
        if (AcceptKeyword("DESC")) {
          item.desc = true;
        } else {
          AcceptKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (lexer_.Peek().kind != TokKind::kInt) {
        throw ParseError("expected integer after LIMIT", lexer_.Peek().pos);
      }
      stmt->limit = lexer_.Next().int_val;
    }
    return stmt;
  }

  TableRef ParseTableRef() {
    TableRef ref;
    if (AcceptSymbol("(")) {
      ref.kind = TableRef::Kind::kSubquery;
      ref.subquery = ParseSelect();
      ExpectSymbol(")");
    } else {
      ref.kind = TableRef::Kind::kBase;
      ref.name = ExpectIdent();
    }
    if (AcceptKeyword("AS")) {
      ref.alias = ExpectIdent();
    } else if (lexer_.Peek().kind == TokKind::kIdent) {
      ref.alias = lexer_.Next().text;
    }
    return ref;
  }

  // Precedence: OR < AND < NOT < comparison/IN/IS < +- < */% < unary < primary
  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (AcceptKeyword("OR")) {
      lhs = Expr::Binary("OR", std::move(lhs), ParseAnd());
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseNot();
    while (AcceptKeyword("AND")) {
      lhs = Expr::Binary("AND", std::move(lhs), ParseNot());
    }
    return lhs;
  }

  ExprPtr ParseNot() {
    if (AcceptKeyword("NOT")) {
      return Expr::Unary("NOT", ParseNot());
    }
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    ExprPtr lhs = ParseAdditive();
    for (;;) {
      if (PeekSymbol("=") || PeekSymbol("<") || PeekSymbol("<=") ||
          PeekSymbol(">") || PeekSymbol(">=") || PeekSymbol("<>") ||
          PeekSymbol("!=")) {
        std::string op = lexer_.Next().text;
        if (op == "!=") op = "<>";
        lhs = Expr::Binary(op, std::move(lhs), ParseAdditive());
        continue;
      }
      bool negated = false;
      if (PeekKeyword("NOT")) {
        // lookahead for NOT IN (we already consumed NOT at higher level
        // normally, but allow "expr NOT IN ...")
        lexer_.Next();
        negated = true;
        if (!PeekKeyword("IN")) {
          throw ParseError("expected IN after NOT", lexer_.Peek().pos);
        }
      }
      if (AcceptKeyword("IN")) {
        ExpectSymbol("(");
        auto e = std::make_shared<Expr>();
        e->negated = negated;
        if (PeekKeyword("SELECT")) {
          e->kind = ExprKind::kInSubquery;
          e->subquery = ParseSelect();
          e->args = {std::move(lhs)};
        } else {
          e->kind = ExprKind::kInList;
          e->args = {std::move(lhs)};
          do {
            e->args.push_back(ParseAdditive());
          } while (AcceptSymbol(","));
        }
        ExpectSymbol(")");
        lhs = std::move(e);
        continue;
      }
      if (AcceptKeyword("IS")) {
        bool neg = AcceptKeyword("NOT");
        ExpectKeyword("NULL");
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kIsNull;
        e->negated = neg;
        e->args = {std::move(lhs)};
        lhs = std::move(e);
        continue;
      }
      if (AcceptKeyword("BETWEEN")) {
        ExprPtr lo = ParseAdditive();
        ExpectKeyword("AND");
        ExprPtr hi = ParseAdditive();
        ExprPtr ge = Expr::Binary(">=", lhs, std::move(lo));
        ExprPtr le = Expr::Binary("<=", lhs, std::move(hi));
        lhs = Expr::Binary("AND", std::move(ge), std::move(le));
        continue;
      }
      break;
    }
    return lhs;
  }

  ExprPtr ParseAdditive() {
    ExprPtr lhs = ParseMultiplicative();
    for (;;) {
      if (PeekSymbol("+") || PeekSymbol("-")) {
        std::string op = lexer_.Next().text;
        lhs = Expr::Binary(op, std::move(lhs), ParseMultiplicative());
      } else {
        break;
      }
    }
    return lhs;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr lhs = ParseUnary();
    for (;;) {
      if (PeekSymbol("*") || PeekSymbol("/") || PeekSymbol("%")) {
        std::string op = lexer_.Next().text;
        lhs = Expr::Binary(op, std::move(lhs), ParseUnary());
      } else {
        break;
      }
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (PeekSymbol("-")) {
      lexer_.Next();
      return Expr::Unary("-", ParseUnary());
    }
    if (PeekSymbol("+")) {
      lexer_.Next();
      return ParseUnary();
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    const Token& tok = lexer_.Peek();
    if (tok.kind == TokKind::kInt) {
      return Expr::Int(lexer_.Next().int_val);
    }
    if (tok.kind == TokKind::kFloat) {
      return Expr::Float(lexer_.Next().float_val);
    }
    if (tok.kind == TokKind::kString) {
      return Expr::Str(lexer_.Next().text);
    }
    if (PeekKeyword("NULL")) {
      lexer_.Next();
      return Expr::Null();
    }
    if (PeekKeyword("CASE")) {
      lexer_.Next();
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kCase;
      while (AcceptKeyword("WHEN")) {
        e->args.push_back(ParseExpr());
        ExpectKeyword("THEN");
        e->args.push_back(ParseExpr());
      }
      if (AcceptKeyword("ELSE")) {
        e->has_else = true;
        e->args.push_back(ParseExpr());
      }
      ExpectKeyword("END");
      return e;
    }
    if (AcceptSymbol("(")) {
      if (PeekKeyword("SELECT")) {
        // Scalar subquery: modeled as IN-subquery-free single-value select.
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kInSubquery;  // reuse: args empty => scalar
        e->subquery = ParseSelect();
        ExpectSymbol(")");
        return e;
      }
      ExprPtr inner = ParseExpr();
      ExpectSymbol(")");
      return inner;
    }
    if (tok.kind == TokKind::kIdent) {
      std::string name = lexer_.Next().text;
      if (PeekSymbol("(")) {
        return ParseCall(name);
      }
      if (AcceptSymbol(".")) {
        std::string col = ExpectIdent();
        return Expr::Column(name, col);
      }
      return Expr::Column("", name);
    }
    throw ParseError("unexpected token '" + tok.text + "'", tok.pos);
  }

  ExprPtr ParseCall(const std::string& raw_name) {
    std::string name = raw_name;
    for (auto& c : name) c = static_cast<char>(std::toupper(c));
    ExpectSymbol("(");
    std::vector<ExprPtr> args;
    if (!PeekSymbol(")")) {
      if (PeekSymbol("*")) {
        lexer_.Next();
        args.push_back(Expr::Star());
      } else {
        do {
          args.push_back(ParseExpr());
        } while (AcceptSymbol(","));
      }
    }
    ExpectSymbol(")");
    static const std::unordered_set<std::string> agg_names = {
        "SUM", "COUNT", "AVG", "MIN", "MAX"};
    bool is_agg = agg_names.count(name) > 0;
    if (AcceptKeyword("OVER")) {
      ExpectSymbol("(");
      auto e = std::make_shared<Expr>();
      e->kind = ExprKind::kWindowAgg;
      e->op = name;
      e->args = std::move(args);
      if (AcceptKeyword("PARTITION")) {
        ExpectKeyword("BY");
        do {
          e->partition_by.push_back(ParseExpr());
        } while (AcceptSymbol(","));
      }
      if (AcceptKeyword("ORDER")) {
        ExpectKeyword("BY");
        do {
          e->order_by.push_back(ParseExpr());
          AcceptKeyword("ASC");
        } while (AcceptSymbol(","));
      }
      ExpectSymbol(")");
      return e;
    }
    if (is_agg) return Expr::Agg(name, std::move(args));
    return Expr::Func(name, std::move(args));
  }

  Lexer lexer_;
};

}  // namespace

Statement Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseStatement();
}

ExprPtr ParseExpr(const std::string& text) {
  Parser parser(text);
  return parser.ParseExprPublic();
}

}  // namespace sql
}  // namespace joinboost
