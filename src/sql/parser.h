#pragma once

#include <stdexcept>
#include <string>

#include "sql/ast.h"

namespace joinboost {
namespace sql {

/// Parse error with position information.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, size_t pos)
      : std::runtime_error(msg + " (at offset " + std::to_string(pos) + ")") {}
};

/// Parse a single SQL statement (trailing semicolon optional).
Statement Parse(const std::string& text);

/// Parse an expression in isolation (used by tests).
ExprPtr ParseExpr(const std::string& text);

}  // namespace sql
}  // namespace joinboost
