#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace joinboost {
namespace sql {

struct SelectStmt;
using SelectPtr = std::shared_ptr<SelectStmt>;

/// Expression node kinds for the SQL subset JoinBoost generates:
/// simple algebra, aggregates, CASE WHEN, IN (SELECT ...), window SUM OVER.
enum class ExprKind {
  kColumnRef,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kNullLiteral,
  kStar,          ///< '*' inside COUNT(*) or SELECT *
  kBinary,        ///< op in {+,-,*,/,%,=,<>,<,<=,>,>=,AND,OR}
  kUnary,         ///< op in {-,NOT}
  kFuncCall,      ///< scalar functions (LOG, ABS, SIGN, HASH, FLOOR, ...)
  kAggCall,       ///< SUM/COUNT/AVG/MIN/MAX
  kWindowAgg,     ///< agg OVER (PARTITION BY ... ORDER BY ...)
  kCase,          ///< CASE WHEN c THEN v ... [ELSE e] END
  kInSubquery,    ///< expr [NOT] IN (SELECT ...)
  kInList,        ///< expr [NOT] IN (v1, v2, ...)
  kIsNull,        ///< expr IS [NOT] NULL
};

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kIntLiteral;

  // kColumnRef
  std::string table;   ///< optional qualifier
  std::string column;

  // literals
  int64_t int_val = 0;
  double float_val = 0.0;
  std::string str_val;

  // kBinary / kUnary operator, or function/aggregate name
  std::string op;

  /// Operands: binary [lhs, rhs]; unary [operand]; function args;
  /// CASE [when1, then1, ..., else?] with has_else; IN [probe(, list items)].
  std::vector<ExprPtr> args;
  bool has_else = false;

  bool distinct = false;  ///< SELECT DISTINCT-style agg modifier (unused)
  bool negated = false;   ///< NOT IN / IS NOT NULL

  // kInSubquery
  SelectPtr subquery;

  // kWindowAgg
  std::vector<ExprPtr> partition_by;
  std::vector<ExprPtr> order_by;

  /// Output name when used as a select-list item.
  std::string alias;

  // ---- constructors ----
  static ExprPtr Column(std::string table, std::string column) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kColumnRef;
    e->table = std::move(table);
    e->column = std::move(column);
    return e;
  }
  static ExprPtr Int(int64_t v) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kIntLiteral;
    e->int_val = v;
    return e;
  }
  static ExprPtr Float(double v) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kFloatLiteral;
    e->float_val = v;
    return e;
  }
  static ExprPtr Str(std::string v) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kStringLiteral;
    e->str_val = std::move(v);
    return e;
  }
  static ExprPtr Null() {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kNullLiteral;
    return e;
  }
  static ExprPtr Binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kBinary;
    e->op = std::move(op);
    e->args = {std::move(lhs), std::move(rhs)};
    return e;
  }
  static ExprPtr Unary(std::string op, ExprPtr operand) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kUnary;
    e->op = std::move(op);
    e->args = {std::move(operand)};
    return e;
  }
  static ExprPtr Func(std::string name, std::vector<ExprPtr> args) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kFuncCall;
    e->op = std::move(name);
    e->args = std::move(args);
    return e;
  }
  static ExprPtr Agg(std::string name, std::vector<ExprPtr> args) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kAggCall;
    e->op = std::move(name);
    e->args = std::move(args);
    return e;
  }
  static ExprPtr Star() {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kStar;
    return e;
  }
};

/// FROM item: base table or parenthesized subquery, with optional alias.
struct TableRef {
  enum class Kind { kBase, kSubquery } kind = Kind::kBase;
  std::string name;
  std::string alias;
  SelectPtr subquery;

  /// Effective name used as column qualifier.
  const std::string& Qualifier() const { return alias.empty() ? name : alias; }
};

enum class JoinType { kInner, kLeft, kSemi, kAnti };

struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef table;
  ExprPtr condition;  ///< conjunction of equalities (+ residual predicates)
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt {
  std::vector<ExprPtr> select_list;
  bool distinct = false;
  bool has_from = false;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  /// GROUP BY GROUPING SETS ((e1), (e2, e3), ...): each inner vector is one
  /// grouping set (possibly empty — the grand total). Mutually exclusive with
  /// `group_by`; non-empty means the multi-aggregate path. Rows of set i are
  /// identified by the GROUPING_ID() pseudo-function (returns i); key columns
  /// absent from a row's set are NULL, as in standard SQL.
  std::vector<std::vector<ExprPtr>> grouping_sets;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  ///< -1 = no limit
};

/// Top-level statements JoinBoost needs: SELECT, CREATE TABLE AS,
/// UPDATE ... SET ... WHERE, DROP TABLE, plus EXPLAIN over a SELECT.
struct Statement {
  enum class Kind {
    kSelect,
    kCreateTableAs,
    kUpdate,
    kDropTable,
    kExplain,
  } kind = Kind::kSelect;

  SelectPtr select;   ///< kSelect, kCreateTableAs & kExplain
  std::string table;  ///< target of CREATE/UPDATE/DROP
  bool if_exists = false;
  bool or_replace = false;
  bool analyze = false;  ///< EXPLAIN ANALYZE: execute and show actual rows

  // kUpdate
  std::vector<std::pair<std::string, ExprPtr>> set_items;
  ExprPtr where;
};

}  // namespace sql
}  // namespace joinboost
