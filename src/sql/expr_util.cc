#include "sql/expr_util.h"

namespace joinboost {
namespace sql {

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kBinary && e->op == "AND") {
    SplitConjuncts(e->args[0], out);
    SplitConjuncts(e->args[1], out);
    return;
  }
  out->push_back(e);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& cs) {
  if (cs.empty()) return nullptr;
  ExprPtr acc = cs[0];
  for (size_t i = 1; i < cs.size(); ++i) {
    acc = Expr::Binary("AND", acc, cs[i]);
  }
  return acc;
}

void CollectColumnRefs(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kColumnRef) {
    out->push_back(&e);
    return;
  }
  if (e.kind == ExprKind::kInSubquery) {
    for (const auto& a : e.args) CollectColumnRefs(a, out);
    return;  // subquery body resolves independently
  }
  for (const auto& a : e.args) CollectColumnRefs(a, out);
  for (const auto& a : e.partition_by) CollectColumnRefs(a, out);
  for (const auto& a : e.order_by) CollectColumnRefs(a, out);
}

void CollectColumnRefs(const ExprPtr& e, std::vector<const Expr*>* out) {
  if (e) CollectColumnRefs(*e, out);
}

void CollectFuncCalls(const ExprPtr& e, const std::string& name,
                      std::vector<const Expr*>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kFuncCall && e->op == name) out->push_back(e.get());
  if (e->kind == ExprKind::kInSubquery) {
    for (const auto& a : e->args) CollectFuncCalls(a, name, out);
    return;  // subquery body resolves independently
  }
  for (const auto& a : e->args) CollectFuncCalls(a, name, out);
  for (const auto& a : e->partition_by) CollectFuncCalls(a, name, out);
  for (const auto& a : e->order_by) CollectFuncCalls(a, name, out);
}

std::string OutputName(const Expr& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.kind == ExprKind::kColumnRef) return item.column;
  return "col" + std::to_string(index);
}

}  // namespace sql
}  // namespace joinboost
