#include "sql/printer.h"

#include <sstream>

#include "util/check.h"

namespace joinboost {
namespace sql {

namespace {

void PrintExpr(const Expr& e, std::ostream& os);
void PrintSelect(const SelectStmt& s, std::ostream& os);

void PrintExprList(const std::vector<ExprPtr>& list, std::ostream& os) {
  for (size_t i = 0; i < list.size(); ++i) {
    if (i) os << ", ";
    PrintExpr(*list[i], os);
  }
}

void PrintExpr(const Expr& e, std::ostream& os) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      if (!e.table.empty()) os << e.table << ".";
      os << e.column;
      break;
    case ExprKind::kIntLiteral:
      os << e.int_val;
      break;
    case ExprKind::kFloatLiteral: {
      std::ostringstream tmp;
      tmp.precision(17);
      tmp << e.float_val;
      std::string t = tmp.str();
      os << t;
      // make sure it re-parses as a float
      if (t.find('.') == std::string::npos &&
          t.find('e') == std::string::npos &&
          t.find("inf") == std::string::npos &&
          t.find("nan") == std::string::npos) {
        os << ".0";
      }
      break;
    }
    case ExprKind::kStringLiteral:
      os << "'" << e.str_val << "'";
      break;
    case ExprKind::kNullLiteral:
      os << "NULL";
      break;
    case ExprKind::kStar:
      os << "*";
      break;
    case ExprKind::kBinary:
      os << "(";
      PrintExpr(*e.args[0], os);
      os << " " << e.op << " ";
      PrintExpr(*e.args[1], os);
      os << ")";
      break;
    case ExprKind::kUnary:
      os << "(" << e.op << " ";
      PrintExpr(*e.args[0], os);
      os << ")";
      break;
    case ExprKind::kFuncCall:
    case ExprKind::kAggCall:
      os << e.op << "(";
      PrintExprList(e.args, os);
      os << ")";
      break;
    case ExprKind::kWindowAgg:
      os << e.op << "(";
      PrintExprList(e.args, os);
      os << ") OVER (";
      if (!e.partition_by.empty()) {
        os << "PARTITION BY ";
        PrintExprList(e.partition_by, os);
        if (!e.order_by.empty()) os << " ";
      }
      if (!e.order_by.empty()) {
        os << "ORDER BY ";
        PrintExprList(e.order_by, os);
      }
      os << ")";
      break;
    case ExprKind::kCase: {
      os << "CASE";
      size_t pairs = (e.args.size() - (e.has_else ? 1 : 0)) / 2;
      for (size_t p = 0; p < pairs; ++p) {
        os << " WHEN ";
        PrintExpr(*e.args[2 * p], os);
        os << " THEN ";
        PrintExpr(*e.args[2 * p + 1], os);
      }
      if (e.has_else) {
        os << " ELSE ";
        PrintExpr(*e.args.back(), os);
      }
      os << " END";
      break;
    }
    case ExprKind::kInSubquery:
      if (e.args.empty()) {
        os << "(";
        PrintSelect(*e.subquery, os);
        os << ")";
      } else {
        PrintExpr(*e.args[0], os);
        os << (e.negated ? " NOT IN (" : " IN (");
        PrintSelect(*e.subquery, os);
        os << ")";
      }
      break;
    case ExprKind::kInList:
      PrintExpr(*e.args[0], os);
      os << (e.negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < e.args.size(); ++i) {
        if (i > 1) os << ", ";
        PrintExpr(*e.args[i], os);
      }
      os << ")";
      break;
    case ExprKind::kIsNull:
      PrintExpr(*e.args[0], os);
      os << (e.negated ? " IS NOT NULL" : " IS NULL");
      break;
  }
}

void PrintTableRef(const TableRef& ref, std::ostream& os) {
  if (ref.kind == TableRef::Kind::kBase) {
    os << ref.name;
  } else {
    os << "(";
    PrintSelect(*ref.subquery, os);
    os << ")";
  }
  if (!ref.alias.empty()) os << " AS " << ref.alias;
}

void PrintSelect(const SelectStmt& s, std::ostream& os) {
  os << "SELECT ";
  if (s.distinct) os << "DISTINCT ";
  for (size_t i = 0; i < s.select_list.size(); ++i) {
    if (i) os << ", ";
    PrintExpr(*s.select_list[i], os);
    if (!s.select_list[i]->alias.empty()) {
      os << " AS " << s.select_list[i]->alias;
    }
  }
  if (s.has_from) {
    os << " FROM ";
    PrintTableRef(s.from, os);
    for (const auto& j : s.joins) {
      switch (j.type) {
        case JoinType::kInner:
          os << " JOIN ";
          break;
        case JoinType::kLeft:
          os << " LEFT JOIN ";
          break;
        case JoinType::kSemi:
          os << " SEMI JOIN ";
          break;
        case JoinType::kAnti:
          os << " ANTI JOIN ";
          break;
      }
      PrintTableRef(j.table, os);
      os << " ON ";
      PrintExpr(*j.condition, os);
    }
  }
  if (s.where) {
    os << " WHERE ";
    PrintExpr(*s.where, os);
  }
  if (!s.group_by.empty()) {
    os << " GROUP BY ";
    PrintExprList(s.group_by, os);
  } else if (!s.grouping_sets.empty()) {
    os << " GROUP BY GROUPING SETS (";
    for (size_t i = 0; i < s.grouping_sets.size(); ++i) {
      if (i) os << ", ";
      os << "(";
      PrintExprList(s.grouping_sets[i], os);
      os << ")";
    }
    os << ")";
  }
  if (s.having) {
    os << " HAVING ";
    PrintExpr(*s.having, os);
  }
  if (!s.order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i) os << ", ";
      PrintExpr(*s.order_by[i].expr, os);
      if (s.order_by[i].desc) os << " DESC";
    }
  }
  if (s.limit >= 0) os << " LIMIT " << s.limit;
}

}  // namespace

std::string ToSql(const Expr& expr) {
  std::ostringstream os;
  PrintExpr(expr, os);
  return os.str();
}

std::string ToSql(const SelectStmt& stmt) {
  std::ostringstream os;
  PrintSelect(stmt, os);
  return os.str();
}

std::string ToSql(const Statement& stmt) {
  std::ostringstream os;
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      PrintSelect(*stmt.select, os);
      break;
    case Statement::Kind::kExplain:
      os << "EXPLAIN " << (stmt.analyze ? "ANALYZE " : "");
      PrintSelect(*stmt.select, os);
      break;
    case Statement::Kind::kCreateTableAs:
      os << "CREATE TABLE " << stmt.table << " AS ";
      PrintSelect(*stmt.select, os);
      break;
    case Statement::Kind::kUpdate:
      os << "UPDATE " << stmt.table << " SET ";
      for (size_t i = 0; i < stmt.set_items.size(); ++i) {
        if (i) os << ", ";
        os << stmt.set_items[i].first << " = ";
        PrintExpr(*stmt.set_items[i].second, os);
      }
      if (stmt.where) {
        os << " WHERE ";
        PrintExpr(*stmt.where, os);
      }
      break;
    case Statement::Kind::kDropTable:
      os << "DROP TABLE ";
      if (stmt.if_exists) os << "IF EXISTS ";
      os << stmt.table;
      break;
  }
  return os.str();
}

}  // namespace sql
}  // namespace joinboost
