#pragma once

#include <string>

#include "sql/ast.h"

namespace joinboost {
namespace sql {

/// Render an expression / statement back to SQL text. Printing then
/// re-parsing yields an equivalent AST (tested); the trainers use this to
/// surface the exact SQL they run, as the paper's middleware does.
std::string ToSql(const Expr& expr);
std::string ToSql(const SelectStmt& stmt);
std::string ToSql(const Statement& stmt);

}  // namespace sql
}  // namespace joinboost
