#pragma once

#include <string>
#include <vector>

namespace joinboost {
namespace graph {

/// One relation (base table) participating in training.
struct Relation {
  std::string name;
  std::vector<std::string> features;  ///< X attributes offered by this table
  std::string y_column;               ///< non-empty iff this is R_Y
  /// Table cardinality; used to pick cluster fact tables and message roots.
  size_t num_rows = 0;
};

/// An undirected join edge with (natural-join) key attributes.
struct Edge {
  int a = -1, b = -1;
  std::vector<std::string> keys;  ///< shared attribute names
  /// Key uniqueness on each side, filled by the trainer from data; drives
  /// N-to-1 direction detection, identity messages and CPT clusters.
  bool unique_a = false;
  bool unique_b = false;
};

/// The training dataset of the paper's API (Figure 4): relations + join
/// conditions, features X and target Y. Mirrors joinboost.join_graph().
class JoinGraph {
 public:
  /// Returns the relation id.
  int AddRelation(const std::string& name,
                  std::vector<std::string> features = {},
                  const std::string& y_column = "");

  /// Natural-join edge on shared key attributes.
  int AddEdge(const std::string& r1, const std::string& r2,
              std::vector<std::string> keys);

  int RelationIndex(const std::string& name) const;  ///< -1 when absent
  const Relation& relation(int i) const { return relations_.at(static_cast<size_t>(i)); }
  Relation& relation(int i) { return relations_.at(static_cast<size_t>(i)); }
  const std::vector<Relation>& relations() const { return relations_; }
  const std::vector<Edge>& edges() const { return edges_; }
  Edge& edge(int i) { return edges_.at(static_cast<size_t>(i)); }
  size_t num_relations() const { return relations_.size(); }

  /// Relation id hosting Y; -1 when no Y was declared.
  int YRelation() const;

  /// Relation id offering feature `attr`; -1 when unknown.
  int RelationOfFeature(const std::string& attr) const;

  /// All features across relations.
  std::vector<std::string> AllFeatures() const;

  /// (neighbor relation, edge index) pairs of `r`.
  std::vector<std::pair<int, int>> Neighbors(int r) const;

  /// True when the relation/edge graph is a tree (message passing requires
  /// an acyclic join graph; cyclic graphs need hypertree decomposition).
  bool IsTree() const;

  /// GYO reduction over the hypergraph of {keys ∪ features ∪ y} per relation:
  /// true iff α-acyclic. (Tree edge graphs are always α-acyclic; this is the
  /// general check from §3.1 footnote 1.)
  bool IsAlphaAcyclic() const;

  /// Directed view toward `root`: parent[i] is the next relation on i's path
  /// to the root (-1 for the root), parent_edge[i] the connecting edge, and
  /// `order` lists relations leaves-first (message passing order).
  struct Directed {
    std::vector<int> parent;
    std::vector<int> parent_edge;
    std::vector<int> order;
  };
  Directed DirectTowards(int root) const;

  /// CPT clusters (§4.2.2): assigns every relation a cluster id such that
  /// each cluster has a single fact table with N-to-1 paths to its members.
  /// Requires edge uniqueness flags to be filled. Returns cluster id per
  /// relation; `fact_of_cluster` receives the fact relation of each cluster.
  std::vector<int> ComputeClusters(std::vector<int>* fact_of_cluster) const;

  /// True when `r` is N-to-1 toward every other relation on its paths —
  /// i.e. the snowflake fact-table test (every edge away from r points at a
  /// unique side).
  bool IsSnowflakeFact(int r) const;

 private:
  std::vector<Relation> relations_;
  std::vector<Edge> edges_;
};

}  // namespace graph
}  // namespace joinboost
