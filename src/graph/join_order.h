#pragma once

#include <cstddef>
#include <vector>

namespace joinboost {
namespace graph {

/// One join clause feeding the DP enumerator: a relation joined onto the
/// growing left side. The anchor relation (the planner's FROM relation, kept
/// as the probe anchor for determinism) is implicit and always available.
struct JoinOrderClause {
  /// Post-filter cardinality estimate of the joined relation.
  double rows = 1;
  /// Join selectivity. Inner joins: the output estimate is
  /// left_rows * rows * selectivity (from 1/max(ndv_l, ndv_r) per key pair).
  /// Semi/anti joins: the fraction of left rows that survive the filter
  /// (from min(1, ndv_right/ndv_left) per key pair; 0.5 heuristic fallback),
  /// so the output estimate is left_rows * selectivity.
  double selectivity = 1;
  /// Semi/anti joins filter the left side and never make their relation's
  /// columns available to later join conditions.
  bool semi_or_anti = false;
  /// Clause ids (indices into the clause vector) whose relations this
  /// clause's ON condition references; references to the anchor are implied
  /// and must not be listed. A clause is placeable only when every listed
  /// clause is already placed as an inner join.
  std::vector<int> needs;
};

struct JoinOrderResult {
  bool valid = false;       ///< false: no feasible complete order (or > cap)
  std::vector<int> order;   ///< clause ids in chosen execution sequence
  double cost = 0;          ///< sum of intermediate-result cardinalities
};

/// Exhaustive clause-count cap: beyond this the 2^n subset DP is not worth
/// its memory and the caller falls back to the greedy ordering.
constexpr size_t kMaxDpClauses = 12;

/// Subset-DP join enumeration (DPsub over the connected subgraphs reachable
/// from the anchor): minimizes the sum of intermediate cardinalities over
/// all feasible permutations of the join clauses. Cardinalities are
/// order-independent (the per-clause factors commute), so a single card[S]
/// per subset is exact. Ties break deterministically toward the
/// lowest-index clause sequence. Returns !valid when clauses is empty,
/// exceeds kMaxDpClauses, or no complete feasible order exists.
JoinOrderResult EnumerateJoinOrder(double anchor_rows,
                                   const std::vector<JoinOrderClause>& clauses);

}  // namespace graph
}  // namespace joinboost
