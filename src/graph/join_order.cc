#include "graph/join_order.h"

#include <algorithm>
#include <limits>

namespace joinboost {
namespace graph {

namespace {

double ApplyClause(double left_rows, const JoinOrderClause& c) {
  if (c.semi_or_anti) return std::max(1.0, left_rows * c.selectivity);
  return std::max(1.0, left_rows * c.rows * c.selectivity);
}

}  // namespace

JoinOrderResult EnumerateJoinOrder(
    double anchor_rows, const std::vector<JoinOrderClause>& clauses) {
  JoinOrderResult result;
  const size_t m = clauses.size();
  if (m == 0 || m > kMaxDpClauses) return result;
  const size_t full = (size_t{1} << m) - 1;

  // card[S]: estimated rows after joining exactly the clauses in S onto the
  // anchor. Order-independent, so computed once per subset from any member.
  std::vector<double> card(full + 1, 0);
  card[0] = std::max(1.0, anchor_rows);
  for (size_t s = 1; s <= full; ++s) {
    const int j = __builtin_ctzll(s);
    card[s] = ApplyClause(card[s & (s - 1)], clauses[static_cast<size_t>(j)]);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(full + 1, kInf);
  std::vector<int> last(full + 1, -1);
  cost[0] = 0;
  for (size_t s = 0; s < full; ++s) {
    if (cost[s] == kInf) continue;
    for (size_t j = 0; j < m; ++j) {
      if (s & (size_t{1} << j)) continue;
      bool feasible = true;
      for (int need : clauses[j].needs) {
        const size_t bit = size_t{1} << need;
        if (!(s & bit) || clauses[static_cast<size_t>(need)].semi_or_anti) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      const size_t t = s | (size_t{1} << j);
      const double cand = cost[s] + card[t];
      // Strict improvement only: with ascending subset and clause loops the
      // first optimal predecessor wins, giving the lowest-index tie-break.
      if (cand < cost[t]) {
        cost[t] = cand;
        last[t] = static_cast<int>(j);
      }
    }
  }
  if (cost[full] == kInf) return result;

  result.valid = true;
  result.cost = cost[full];
  size_t s = full;
  while (s != 0) {
    const int j = last[s];
    result.order.push_back(j);
    s &= ~(size_t{1} << j);
  }
  std::reverse(result.order.begin(), result.order.end());
  return result;
}

}  // namespace graph
}  // namespace joinboost
