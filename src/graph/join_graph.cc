#include "graph/join_graph.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace joinboost {
namespace graph {

int JoinGraph::AddRelation(const std::string& name,
                           std::vector<std::string> features,
                           const std::string& y_column) {
  JB_CHECK_MSG(RelationIndex(name) < 0, "duplicate relation " << name);
  Relation r;
  r.name = name;
  r.features = std::move(features);
  r.y_column = y_column;
  relations_.push_back(std::move(r));
  return static_cast<int>(relations_.size()) - 1;
}

int JoinGraph::AddEdge(const std::string& r1, const std::string& r2,
                       std::vector<std::string> keys) {
  int a = RelationIndex(r1);
  int b = RelationIndex(r2);
  JB_CHECK_MSG(a >= 0 && b >= 0, "unknown relation in edge " << r1 << "-" << r2);
  JB_CHECK_MSG(!keys.empty(), "join edge needs at least one key");
  Edge e;
  e.a = a;
  e.b = b;
  e.keys = std::move(keys);
  edges_.push_back(std::move(e));
  return static_cast<int>(edges_.size()) - 1;
}

int JoinGraph::RelationIndex(const std::string& name) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int JoinGraph::YRelation() const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (!relations_[i].y_column.empty()) return static_cast<int>(i);
  }
  return -1;
}

int JoinGraph::RelationOfFeature(const std::string& attr) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    for (const auto& f : relations_[i].features) {
      if (f == attr) return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<std::string> JoinGraph::AllFeatures() const {
  std::vector<std::string> out;
  for (const auto& r : relations_) {
    out.insert(out.end(), r.features.begin(), r.features.end());
  }
  return out;
}

std::vector<std::pair<int, int>> JoinGraph::Neighbors(int r) const {
  std::vector<std::pair<int, int>> out;
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (edges_[e].a == r) out.emplace_back(edges_[e].b, static_cast<int>(e));
    if (edges_[e].b == r) out.emplace_back(edges_[e].a, static_cast<int>(e));
  }
  return out;
}

bool JoinGraph::IsTree() const {
  if (relations_.empty()) return false;
  if (edges_.size() != relations_.size() - 1) return false;
  // Connectivity check via BFS.
  std::vector<bool> seen(relations_.size(), false);
  std::vector<int> stack = {0};
  seen[0] = true;
  size_t visited = 1;
  while (!stack.empty()) {
    int r = stack.back();
    stack.pop_back();
    for (auto [n, e] : Neighbors(r)) {
      (void)e;
      if (!seen[static_cast<size_t>(n)]) {
        seen[static_cast<size_t>(n)] = true;
        ++visited;
        stack.push_back(n);
      }
    }
  }
  return visited == relations_.size();
}

bool JoinGraph::IsAlphaAcyclic() const {
  // GYO reduction. Hyperedges: per relation, its join keys + features (+ Y).
  std::vector<std::set<std::string>> hyper;
  for (size_t i = 0; i < relations_.size(); ++i) {
    std::set<std::string> attrs(relations_[i].features.begin(),
                                relations_[i].features.end());
    if (!relations_[i].y_column.empty()) attrs.insert(relations_[i].y_column);
    for (const auto& e : edges_) {
      if (e.a == static_cast<int>(i) || e.b == static_cast<int>(i)) {
        attrs.insert(e.keys.begin(), e.keys.end());
      }
    }
    hyper.push_back(std::move(attrs));
  }
  bool changed = true;
  while (changed && hyper.size() > 1) {
    changed = false;
    // 1. Remove attributes appearing in exactly one hyperedge.
    std::unordered_map<std::string, int> freq;
    for (const auto& h : hyper) {
      for (const auto& a : h) ++freq[a];
    }
    for (auto& h : hyper) {
      for (auto it = h.begin(); it != h.end();) {
        if (freq[*it] == 1) {
          it = h.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    // 2. Remove hyperedges that are subsets of another (ears).
    for (size_t i = 0; i < hyper.size(); ++i) {
      for (size_t j = 0; j < hyper.size(); ++j) {
        if (i == j) continue;
        if (std::includes(hyper[j].begin(), hyper[j].end(), hyper[i].begin(),
                          hyper[i].end())) {
          hyper.erase(hyper.begin() + static_cast<long>(i));
          changed = true;
          i = hyper.size();  // restart outer
          break;
        }
      }
    }
  }
  return hyper.size() <= 1;
}

JoinGraph::Directed JoinGraph::DirectTowards(int root) const {
  JB_CHECK_MSG(IsTree(), "message passing requires an acyclic join graph; "
                         "apply hypertree decomposition first");
  Directed d;
  d.parent.assign(relations_.size(), -1);
  d.parent_edge.assign(relations_.size(), -1);
  std::vector<int> bfs = {root};
  std::vector<bool> seen(relations_.size(), false);
  seen[static_cast<size_t>(root)] = true;
  std::vector<int> top_down;
  while (!bfs.empty()) {
    int r = bfs.front();
    bfs.erase(bfs.begin());
    top_down.push_back(r);
    for (auto [n, e] : Neighbors(r)) {
      if (!seen[static_cast<size_t>(n)]) {
        seen[static_cast<size_t>(n)] = true;
        d.parent[static_cast<size_t>(n)] = r;
        d.parent_edge[static_cast<size_t>(n)] = e;
        bfs.push_back(n);
      }
    }
  }
  // Leaves-first order = reversed BFS.
  d.order.assign(top_down.rbegin(), top_down.rend());
  return d;
}

bool JoinGraph::IsSnowflakeFact(int r) const {
  if (!IsTree()) return false;
  Directed d = DirectTowards(r);
  // Every edge, oriented away from r (child -> parent toward r), must have
  // the child side N and the far-from-r side... i.e. walking from r outward,
  // each edge's far side must be unique (N-to-1 from the r side).
  for (size_t i = 0; i < relations_.size(); ++i) {
    int pe = d.parent_edge[i];
    if (pe < 0) continue;
    const Edge& e = edges_[static_cast<size_t>(pe)];
    // relation i is farther from r than its parent; the far side is i.
    bool far_unique = (e.a == static_cast<int>(i)) ? e.unique_a : e.unique_b;
    if (!far_unique) return false;
  }
  return true;
}

std::vector<int> JoinGraph::ComputeClusters(
    std::vector<int>* fact_of_cluster) const {
  // Greedy: order relations by size (desc). Each unassigned relation becomes
  // the fact of a new cluster, absorbing every unassigned relation reachable
  // through N-to-1 edges (far side unique) — §4.2.2.
  std::vector<size_t> order(relations_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Fact candidates (non-unique on at least one incident edge) take
  // precedence over pure dimensions regardless of size; ties break by size.
  auto dimension_like = [&](size_t r) {
    bool has_edge = false;
    for (const auto& e : edges_) {
      if (e.a == static_cast<int>(r)) {
        has_edge = true;
        if (!e.unique_a) return false;
      }
      if (e.b == static_cast<int>(r)) {
        has_edge = true;
        if (!e.unique_b) return false;
      }
    }
    return has_edge;
  };
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    bool da = dimension_like(a), db_ = dimension_like(b);
    if (da != db_) return !da;  // fact-like first
    return relations_[a].num_rows > relations_[b].num_rows;
  });

  std::vector<int> cluster(relations_.size(), -1);
  if (fact_of_cluster) fact_of_cluster->clear();
  int next_cluster = 0;
  for (size_t f : order) {
    if (cluster[f] >= 0) continue;
    int cid = next_cluster++;
    cluster[f] = cid;
    if (fact_of_cluster) fact_of_cluster->push_back(static_cast<int>(f));
    // BFS outward through N-to-1 edges onto unassigned relations.
    std::vector<int> stack = {static_cast<int>(f)};
    while (!stack.empty()) {
      int r = stack.back();
      stack.pop_back();
      for (auto [n, ei] : Neighbors(r)) {
        if (cluster[static_cast<size_t>(n)] >= 0) continue;
        const Edge& e = edges_[static_cast<size_t>(ei)];
        bool far_unique = (e.a == n) ? e.unique_a : e.unique_b;
        if (!far_unique) continue;  // not N-to-1 away from the fact
        cluster[static_cast<size_t>(n)] = cid;
        stack.push_back(n);
      }
    }
  }
  return cluster;
}

}  // namespace graph
}  // namespace joinboost
