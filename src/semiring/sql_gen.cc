#include "semiring/sql_gen.h"

#include <sstream>

#include "util/check.h"

namespace joinboost {
namespace semiring {

namespace {

/// Π of c-components over annotated operands, excluding indices in `skip`.
std::string ProdCExcept(const std::vector<SqlOperand>& ops, int skip1,
                        int skip2) {
  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_annotation) continue;
    if (static_cast<int>(i) == skip1 || static_cast<int>(i) == skip2) continue;
    if (!out.empty()) out += " * ";
    out += ops[i].C();
  }
  return out;
}

}  // namespace

std::string VarianceSqlGen::MulC(const std::vector<SqlOperand>& ops) {
  std::string prod = ProdCExcept(ops, -1, -1);
  return prod.empty() ? "1" : prod;
}

std::string VarianceSqlGen::MulS(const std::vector<SqlOperand>& ops) {
  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_annotation) continue;
    std::string term = ops[i].S();
    std::string rest = ProdCExcept(ops, static_cast<int>(i), -1);
    if (!rest.empty()) term += " * " + rest;
    if (!out.empty()) out += " + ";
    out += term;
  }
  return out.empty() ? "0" : out;
}

std::string VarianceSqlGen::MulQ(const std::vector<SqlOperand>& ops) {
  std::string out;
  // Σᵢ qᵢ·Π_{j≠i} cⱼ
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_annotation) continue;
    JB_CHECK_MSG(!ops[i].q_col.empty(),
                 "operand " << ops[i].alias << " lacks a q component");
    std::string term = ops[i].Q();
    std::string rest = ProdCExcept(ops, static_cast<int>(i), -1);
    if (!rest.empty()) term += " * " + rest;
    if (!out.empty()) out += " + ";
    out += term;
  }
  // 2·Σ_{i<j} sᵢ·sⱼ·Π_{l∉{i,j}} cₗ
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_annotation) continue;
    for (size_t j = i + 1; j < ops.size(); ++j) {
      if (!ops[j].has_annotation) continue;
      std::string term =
          "2 * " + ops[i].S() + " * " + ops[j].S();
      std::string rest =
          ProdCExcept(ops, static_cast<int>(i), static_cast<int>(j));
      if (!rest.empty()) term += " * " + rest;
      if (!out.empty()) out += " + ";
      out += term;
    }
  }
  return out.empty() ? "0" : out;
}

std::string VarianceSqlGen::UpdateS(const std::string& s, const std::string& c,
                                    double p) {
  return s + " - " + SqlDouble(p) + " * " + c;
}

std::string VarianceSqlGen::UpdateQ(const std::string& q, const std::string& s,
                                    const std::string& c, double p) {
  return q + " + " + SqlDouble(p * p) + " * " + c + " - " +
         SqlDouble(2.0 * p) + " * " + s;
}

std::string ClassCountSqlGen::MulC(const std::vector<SqlOperand>& ops) {
  return VarianceSqlGen::MulC(ops);
}

std::string ClassCountSqlGen::MulClass(const std::vector<SqlOperand>& ops,
                                       const std::string& cls_prefix,
                                       size_t k) {
  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_annotation) continue;
    std::string col = cls_prefix + std::to_string(k);
    std::string term =
        ops[i].alias.empty() ? col : ops[i].alias + "." + col;
    std::string rest = ProdCExcept(ops, static_cast<int>(i), -1);
    if (!rest.empty()) term += " * " + rest;
    if (!out.empty()) out += " + ";
    out += term;
  }
  return out.empty() ? "0" : out;
}

std::string SqlDouble(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  std::string s = os.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  // Negative literals must parenthesize to survive re-parsing inside
  // multiplicative contexts.
  if (!s.empty() && s[0] == '-') s = "(" + s + ")";
  return s;
}

}  // namespace semiring
}  // namespace joinboost
