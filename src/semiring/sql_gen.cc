#include "semiring/sql_gen.h"

#include <sstream>

#include "util/check.h"

namespace joinboost {
namespace semiring {

namespace {

/// Π of c-components over annotated operands, excluding indices in `skip`.
std::string ProdCExcept(const std::vector<SqlOperand>& ops, int skip1,
                        int skip2) {
  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_annotation) continue;
    if (static_cast<int>(i) == skip1 || static_cast<int>(i) == skip2) continue;
    if (!out.empty()) out += " * ";
    out += ops[i].C();
  }
  return out;
}

}  // namespace

std::string VarianceSqlGen::MulC(const std::vector<SqlOperand>& ops) {
  std::string prod = ProdCExcept(ops, -1, -1);
  return prod.empty() ? "1" : prod;
}

std::string VarianceSqlGen::MulS(const std::vector<SqlOperand>& ops) {
  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_annotation) continue;
    std::string term = ops[i].S();
    std::string rest = ProdCExcept(ops, static_cast<int>(i), -1);
    if (!rest.empty()) term += " * " + rest;
    if (!out.empty()) out += " + ";
    out += term;
  }
  return out.empty() ? "0" : out;
}

std::string VarianceSqlGen::MulQ(const std::vector<SqlOperand>& ops) {
  std::string out;
  // Σᵢ qᵢ·Π_{j≠i} cⱼ
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_annotation) continue;
    JB_CHECK_MSG(!ops[i].q_col.empty(),
                 "operand " << ops[i].alias << " lacks a q component");
    std::string term = ops[i].Q();
    std::string rest = ProdCExcept(ops, static_cast<int>(i), -1);
    if (!rest.empty()) term += " * " + rest;
    if (!out.empty()) out += " + ";
    out += term;
  }
  // 2·Σ_{i<j} sᵢ·sⱼ·Π_{l∉{i,j}} cₗ
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_annotation) continue;
    for (size_t j = i + 1; j < ops.size(); ++j) {
      if (!ops[j].has_annotation) continue;
      std::string term =
          "2 * " + ops[i].S() + " * " + ops[j].S();
      std::string rest =
          ProdCExcept(ops, static_cast<int>(i), static_cast<int>(j));
      if (!rest.empty()) term += " * " + rest;
      if (!out.empty()) out += " + ";
      out += term;
    }
  }
  return out.empty() ? "0" : out;
}

std::string VarianceSqlGen::UpdateS(const std::string& s, const std::string& c,
                                    double p) {
  return s + " - " + SqlDouble(p) + " * " + c;
}

std::string VarianceSqlGen::UpdateQ(const std::string& q, const std::string& s,
                                    const std::string& c, double p) {
  return q + " + " + SqlDouble(p * p) + " * " + c + " - " +
         SqlDouble(2.0 * p) + " * " + s;
}

namespace {

/// Shared SELECT … GROUP BY GROUPING SETS scaffolding of the histogram
/// queries; `sums` holds the pre-rendered "SUM(expr) AS name" items.
std::string HistogramQueryImpl(const std::vector<std::string>& attrs,
                               const std::string& from_where,
                               const std::vector<std::string>& sums) {
  JB_CHECK_MSG(!attrs.empty(), "histogram query needs at least one attribute");
  std::ostringstream os;
  os << "SELECT GROUPING_ID() AS set_id";
  for (const auto& a : attrs) os << ", " << a;
  for (const auto& s : sums) os << ", " << s;
  os << " " << from_where << " GROUP BY GROUPING SETS (";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i) os << ", ";
    os << "(" << attrs[i] << ")";
  }
  os << ")";
  return os.str();
}

}  // namespace

std::string VarianceSqlGen::HistogramQuery(const std::vector<std::string>& attrs,
                                           const std::string& from_where,
                                           const std::string& c_expr,
                                           const std::string& s_expr,
                                           const std::string& q_expr) {
  std::vector<std::string> sums = {"SUM(" + c_expr + ") AS c",
                                   "SUM(" + s_expr + ") AS s"};
  if (!q_expr.empty()) sums.push_back("SUM(" + q_expr + ") AS q");
  return HistogramQueryImpl(attrs, from_where, sums);
}

std::string ClassCountSqlGen::MulC(const std::vector<SqlOperand>& ops) {
  return VarianceSqlGen::MulC(ops);
}

std::string ClassCountSqlGen::MulClass(const std::vector<SqlOperand>& ops,
                                       const std::string& cls_prefix,
                                       size_t k) {
  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].has_annotation) continue;
    std::string col = cls_prefix + std::to_string(k);
    std::string term =
        ops[i].alias.empty() ? col : ops[i].alias + "." + col;
    std::string rest = ProdCExcept(ops, static_cast<int>(i), -1);
    if (!rest.empty()) term += " * " + rest;
    if (!out.empty()) out += " + ";
    out += term;
  }
  return out.empty() ? "0" : out;
}

std::string ClassCountSqlGen::HistogramQuery(
    const std::vector<std::string>& attrs, const std::string& from_where,
    const std::string& c_expr, const std::vector<std::string>& cls_exprs) {
  std::vector<std::string> sums = {"SUM(" + c_expr + ") AS c"};
  for (size_t k = 0; k < cls_exprs.size(); ++k) {
    sums.push_back("SUM(" + cls_exprs[k] + ") AS cls" + std::to_string(k));
  }
  return HistogramQueryImpl(attrs, from_where, sums);
}

std::string SqlDouble(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  std::string s = os.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  // Negative literals must parenthesize to survive re-parsing inside
  // multiplicative contexts.
  if (!s.empty() && s[0] == '-') s = "(" + s + ")";
  return s;
}

}  // namespace semiring
}  // namespace joinboost
