#include "semiring/objectives.h"

#include <algorithm>
#include <cmath>

#include "semiring/sql_gen.h"
#include "util/check.h"

namespace joinboost {
namespace semiring {

double Objective::InitScore(const std::vector<double>& y) const {
  if (y.empty()) return 0;
  double sum = 0;
  for (double v : y) sum += v;
  return sum / static_cast<double>(y.size());
}

namespace {

std::string Residual(const std::string& y, const std::string& p) {
  return "(" + y + " - " + p + ")";
}

double Median(std::vector<double> y) {
  if (y.empty()) return 0;
  size_t mid = y.size() / 2;
  std::nth_element(y.begin(), y.begin() + static_cast<long>(mid), y.end());
  return y[mid];
}

/// L2 / rmse — the paper's flagship objective; the only one whose lift is
/// addition-to-multiplication preserving, hence the only one valid for
/// galaxy schemas (§4.2).
class L2Objective : public Objective {
 public:
  std::string name() const override { return "rmse"; }
  double Gradient(double y, double p) const override { return y - p; }
  double Hessian(double, double) const override { return 1.0; }
  double Loss(double y, double p) const override {
    // 0.5·ε² so that g = −∂L/∂p = ε exactly (the paper's Table 3 lists the
    // un-normalized (ε)² with the same gradient; LightGBM does likewise).
    return 0.5 * (y - p) * (y - p);
  }
  std::string GradientSql(const std::string& y,
                          const std::string& p) const override {
    return Residual(y, p);
  }
  std::string HessianSql(const std::string&,
                         const std::string&) const override {
    return "1.0";
  }
  bool SupportsGalaxy() const override { return true; }
};

class L1Objective : public Objective {
 public:
  std::string name() const override { return "mae"; }
  double Gradient(double y, double p) const override {
    double e = y - p;
    return e > 0 ? 1.0 : (e < 0 ? -1.0 : 0.0);
  }
  double Hessian(double, double) const override { return 1.0; }
  double Loss(double y, double p) const override { return std::fabs(y - p); }
  double InitScore(const std::vector<double>& y) const override {
    return Median(y);
  }
  std::string GradientSql(const std::string& y,
                          const std::string& p) const override {
    return "SIGN(" + Residual(y, p) + ")";
  }
  std::string HessianSql(const std::string&,
                         const std::string&) const override {
    return "1.0";
  }
};

class HuberObjective : public Objective {
 public:
  explicit HuberObjective(double delta) : delta_(delta <= 0 ? 1.0 : delta) {}
  std::string name() const override { return "huber"; }
  double Gradient(double y, double p) const override {
    double e = y - p;
    if (std::fabs(e) <= delta_) return e;
    return e > 0 ? delta_ : -delta_;
  }
  double Hessian(double, double) const override { return 1.0; }
  double Loss(double y, double p) const override {
    double e = std::fabs(y - p);
    return e <= delta_ ? 0.5 * e * e : delta_ * (e - 0.5 * delta_);
  }
  std::string GradientSql(const std::string& y,
                          const std::string& p) const override {
    std::string e = Residual(y, p);
    std::string d = SqlDouble(delta_);
    return "CASE WHEN ABS(" + e + ") <= " + d + " THEN " + e + " ELSE " + d +
           " * SIGN(" + e + ") END";
  }
  std::string HessianSql(const std::string&,
                         const std::string&) const override {
    return "1.0";
  }

 private:
  double delta_;
};

class FairObjective : public Objective {
 public:
  explicit FairObjective(double c) : c_(c <= 0 ? 1.0 : c) {}
  std::string name() const override { return "fair"; }
  double Gradient(double y, double p) const override {
    double e = y - p;
    return c_ * e / (std::fabs(e) + c_);
  }
  double Hessian(double y, double p) const override {
    double ae = std::fabs(y - p);
    return c_ * c_ / ((ae + c_) * (ae + c_));
  }
  double Loss(double y, double p) const override {
    double ae = std::fabs(y - p);
    return c_ * ae - c_ * c_ * std::log(ae / c_ + 1.0);
  }
  std::string GradientSql(const std::string& y,
                          const std::string& p) const override {
    std::string e = Residual(y, p);
    return SqlDouble(c_) + " * " + e + " / (ABS(" + e + ") + " + SqlDouble(c_) +
           ")";
  }
  std::string HessianSql(const std::string& y,
                         const std::string& p) const override {
    std::string e = Residual(y, p);
    std::string den = "(ABS(" + e + ") + " + SqlDouble(c_) + ")";
    return SqlDouble(c_ * c_) + " / (" + den + " * " + den + ")";
  }

 private:
  double c_;
};

class PoissonObjective : public Objective {
 public:
  std::string name() const override { return "poisson"; }
  double Gradient(double y, double p) const override {
    return y - std::exp(p);
  }
  double Hessian(double, double p) const override { return std::exp(p); }
  double Loss(double y, double p) const override {
    return std::exp(p) - y * p;
  }
  double InitScore(const std::vector<double>& y) const override {
    double mean = Objective::InitScore(y);
    return std::log(std::max(mean, 1e-9));
  }
  double InitFromMean(double mean) const override {
    return std::log(std::max(mean, 1e-9));
  }
  std::string GradientSql(const std::string& y,
                          const std::string& p) const override {
    return y + " - EXP(" + p + ")";
  }
  std::string HessianSql(const std::string&,
                         const std::string& p) const override {
    return "EXP(" + p + ")";
  }
};

class QuantileObjective : public Objective {
 public:
  explicit QuantileObjective(double alpha)
      : alpha_(alpha <= 0 || alpha >= 1 ? 0.5 : alpha) {}
  std::string name() const override { return "quantile"; }
  double Gradient(double y, double p) const override {
    return y - p >= 0 ? alpha_ : alpha_ - 1.0;
  }
  double Hessian(double, double) const override { return 1.0; }
  double Loss(double y, double p) const override {
    double e = y - p;
    return e >= 0 ? alpha_ * e : (alpha_ - 1.0) * e;
  }
  std::string GradientSql(const std::string& y,
                          const std::string& p) const override {
    return "CASE WHEN " + Residual(y, p) + " >= 0 THEN " + SqlDouble(alpha_) +
           " ELSE " + SqlDouble(alpha_ - 1.0) + " END";
  }
  std::string HessianSql(const std::string&,
                         const std::string&) const override {
    return "1.0";
  }

 private:
  double alpha_;
};

class MapeObjective : public Objective {
 public:
  std::string name() const override { return "mape"; }
  double Gradient(double y, double p) const override {
    double w = std::max(1.0, std::fabs(y));
    double e = y - p;
    return (e > 0 ? 1.0 : (e < 0 ? -1.0 : 0.0)) / w;
  }
  double Hessian(double, double) const override { return 1.0; }
  double Loss(double y, double p) const override {
    return std::fabs(y - p) / std::max(1.0, std::fabs(y));
  }
  double InitScore(const std::vector<double>& y) const override {
    return Median(y);
  }
  std::string GradientSql(const std::string& y,
                          const std::string& p) const override {
    return "SIGN(" + Residual(y, p) + ") / GREATEST(1.0, ABS(" + y + "))";
  }
  std::string HessianSql(const std::string&,
                         const std::string&) const override {
    return "1.0";
  }
};

class GammaObjective : public Objective {
 public:
  std::string name() const override { return "gamma"; }
  double Gradient(double y, double p) const override {
    return y * std::exp(-p) - 1.0;
  }
  double Hessian(double y, double p) const override {
    return y * std::exp(-p);
  }
  double Loss(double y, double p) const override {
    return p + y * std::exp(-p);
  }
  double InitScore(const std::vector<double>& y) const override {
    return std::log(std::max(Objective::InitScore(y), 1e-9));
  }
  double InitFromMean(double mean) const override {
    return std::log(std::max(mean, 1e-9));
  }
  std::string GradientSql(const std::string& y,
                          const std::string& p) const override {
    return y + " * EXP(- " + p + ") - 1.0";
  }
  std::string HessianSql(const std::string& y,
                         const std::string& p) const override {
    return y + " * EXP(- " + p + ")";
  }
};

class TweedieObjective : public Objective {
 public:
  explicit TweedieObjective(double rho)
      : rho_(rho <= 1 || rho >= 2 ? 1.5 : rho) {}
  std::string name() const override { return "tweedie"; }
  double Gradient(double y, double p) const override {
    return y * std::exp((1 - rho_) * p) - std::exp((2 - rho_) * p);
  }
  double Hessian(double y, double p) const override {
    return -(1 - rho_) * y * std::exp((1 - rho_) * p) +
           (2 - rho_) * std::exp((2 - rho_) * p);
  }
  double Loss(double y, double p) const override {
    return -y * std::exp((1 - rho_) * p) / (1 - rho_) +
           std::exp((2 - rho_) * p) / (2 - rho_);
  }
  double InitScore(const std::vector<double>& y) const override {
    return std::log(std::max(Objective::InitScore(y), 1e-9));
  }
  double InitFromMean(double mean) const override {
    return std::log(std::max(mean, 1e-9));
  }
  std::string GradientSql(const std::string& y,
                          const std::string& p) const override {
    return y + " * EXP(" + SqlDouble(1 - rho_) + " * " + p + ") - EXP(" +
           SqlDouble(2 - rho_) + " * " + p + ")";
  }
  std::string HessianSql(const std::string& y,
                         const std::string& p) const override {
    return SqlDouble(-(1 - rho_)) + " * " + y + " * EXP(" + SqlDouble(1 - rho_) +
           " * " + p + ") + " + SqlDouble(2 - rho_) + " * EXP(" +
           SqlDouble(2 - rho_) + " * " + p + ")";
  }

 private:
  double rho_;
};

}  // namespace

ObjectivePtr MakeObjective(const std::string& name, double param) {
  if (name == "regression" || name == "rmse" || name == "l2" ||
      name == "regression_l2") {
    return std::make_shared<L2Objective>();
  }
  if (name == "mae" || name == "l1" || name == "regression_l1") {
    return std::make_shared<L1Objective>();
  }
  if (name == "huber") {
    return std::make_shared<HuberObjective>(param == 0 ? 1.0 : param);
  }
  if (name == "fair") {
    return std::make_shared<FairObjective>(param == 0 ? 1.0 : param);
  }
  if (name == "poisson") return std::make_shared<PoissonObjective>();
  if (name == "quantile") {
    return std::make_shared<QuantileObjective>(param == 0 ? 0.5 : param);
  }
  if (name == "mape") return std::make_shared<MapeObjective>();
  if (name == "gamma") return std::make_shared<GammaObjective>();
  if (name == "tweedie") {
    return std::make_shared<TweedieObjective>(param == 0 ? 1.5 : param);
  }
  JB_THROW("unknown objective: " << name);
}

std::vector<std::string> ObjectiveNames() {
  return {"rmse",     "mae",  "huber", "fair",  "poisson",
          "quantile", "mape", "gamma", "tweedie"};
}

}  // namespace semiring
}  // namespace joinboost
