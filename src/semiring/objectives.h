#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace joinboost {
namespace semiring {

/// A gradient-boosting objective (paper Table 3). Conventions:
///   g = −∂L/∂p (the "negative gradient"; for L2 this is the residual ε),
///   h = ∂²L/∂p².
/// The optimal leaf value is Σg / (Σh + λ) (Appendix B.2), and the model
/// prediction starts from InitScore(y).
///
/// Each objective provides both C++ evaluators (used by the in-memory
/// baselines and by tests) and SQL expression generators in terms of the fact
/// table's `y` and `pred` columns (used by the snowflake-schema trainers).
/// Only objectives whose semi-ring is addition-to-multiplication preserving
/// (rmse) support galaxy schemas (§4.2) — see `SupportsGalaxy()`.
class Objective {
 public:
  virtual ~Objective() = default;

  virtual std::string name() const = 0;

  virtual double Gradient(double y, double pred) const = 0;
  virtual double Hessian(double y, double pred) const = 0;

  /// Loss value (for reporting / convergence tests).
  virtual double Loss(double y, double pred) const = 0;

  /// Initial model score (e.g., mean of Y for L2, median for L1).
  virtual double InitScore(const std::vector<double>& y) const;

  /// Initial score from the factorized mean of Y (computed in-DB as S/C).
  /// Median-based objectives approximate with the mean here, as LightGBM's
  /// boost_from_average does.
  virtual double InitFromMean(double mean) const { return mean; }

  /// SQL expression computing g from columns `y_col` and `pred_col`.
  virtual std::string GradientSql(const std::string& y_col,
                                  const std::string& pred_col) const = 0;
  /// SQL expression computing h.
  virtual std::string HessianSql(const std::string& y_col,
                                 const std::string& pred_col) const = 0;

  /// True only for rmse: residual updates on non-materialized joins need the
  /// addition-to-multiplication-preserving property (Definition 1).
  virtual bool SupportsGalaxy() const { return false; }
};

using ObjectivePtr = std::shared_ptr<const Objective>;

/// Factory by LightGBM-compatible name: "regression"/"rmse"/"l2", "mae"/"l1",
/// "huber", "fair", "poisson", "quantile", "mape", "gamma", "tweedie".
ObjectivePtr MakeObjective(const std::string& name, double param = 0.0);

/// All registered objective names (for parameterized tests).
std::vector<std::string> ObjectiveNames();

}  // namespace semiring
}  // namespace joinboost
