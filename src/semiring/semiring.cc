#include "semiring/semiring.h"

#include <cmath>

namespace joinboost {
namespace semiring {

double ClassCountElem::Gini() const {
  if (c == 0) return 0;
  double acc = 1.0;
  for (double ck : counts) {
    double p = ck / c;
    acc -= p * p;
  }
  return acc;
}

double ClassCountElem::Entropy() const {
  if (c == 0) return 0;
  double acc = 0;
  for (double ck : counts) {
    if (ck <= 0) continue;
    double p = ck / c;
    acc -= p * std::log2(p);
  }
  return acc;
}

bool VarianceAddToMulHolds(double a, double b, double tol) {
  VarianceElem lhs = VarianceElem::Lift(a + b);
  VarianceElem rhs = VarianceElem::Lift(a) * VarianceElem::Lift(b);
  return std::fabs(lhs.c - rhs.c) <= tol && std::fabs(lhs.s - rhs.s) <= tol &&
         std::fabs(lhs.q - rhs.q) <=
             tol * std::max(1.0, std::fabs(lhs.q));
}

double VarianceReduction(double c_total, double s_total, double c_sel,
                         double s_sel) {
  double c_rest = c_total - c_sel;
  double s_rest = s_total - s_sel;
  if (c_sel <= 0 || c_rest <= 0 || c_total <= 0) return 0;
  // Computed as (s/c)*s to avoid overflow, as in the paper's Appendix A SQL.
  return -(s_total / c_total) * s_total + (s_sel / c_sel) * s_sel +
         (s_rest / c_rest) * s_rest;
}

double GradientGain(double g_total, double h_total, double g_sel, double h_sel,
                    double lambda, double alpha) {
  double g_rest = g_total - g_sel;
  double h_rest = h_total - h_sel;
  if (h_sel <= 0 || h_rest <= 0) return -alpha;
  double before = (g_total / (h_total + lambda)) * g_total;
  double after = (g_sel / (h_sel + lambda)) * g_sel +
                 (g_rest / (h_rest + lambda)) * g_rest;
  return 0.5 * (after - before) - alpha;
}

double GiniReduction(const ClassCountElem& total, const ClassCountElem& sel) {
  ClassCountElem rest{total.c - sel.c, total.counts};
  for (size_t i = 0; i < rest.counts.size(); ++i) {
    rest.counts[i] -= sel.counts[i];
  }
  if (sel.c <= 0 || rest.c <= 0) return 0;
  double w_sel = sel.c / total.c;
  double w_rest = rest.c / total.c;
  return total.Gini() - (w_sel * sel.Gini() + w_rest * rest.Gini());
}

double EntropyReduction(const ClassCountElem& total,
                        const ClassCountElem& sel) {
  ClassCountElem rest{total.c - sel.c, total.counts};
  for (size_t i = 0; i < rest.counts.size(); ++i) {
    rest.counts[i] -= sel.counts[i];
  }
  if (sel.c <= 0 || rest.c <= 0) return 0;
  double w_sel = sel.c / total.c;
  double w_rest = rest.c / total.c;
  return total.Entropy() - (w_sel * sel.Entropy() + w_rest * rest.Entropy());
}

double ChiSquare(const ClassCountElem& total, const ClassCountElem& sel) {
  ClassCountElem rest{total.c - sel.c, total.counts};
  for (size_t i = 0; i < rest.counts.size(); ++i) {
    rest.counts[i] -= sel.counts[i];
  }
  if (sel.c <= 0 || rest.c <= 0 || total.c <= 0) return 0;
  double chi = 0;
  for (size_t i = 0; i < total.counts.size(); ++i) {
    double e_sel = total.counts[i] * sel.c / total.c;
    double e_rest = total.counts[i] * rest.c / total.c;
    if (e_sel > 0) {
      double d = sel.counts[i] - e_sel;
      chi += d * d / e_sel;
    }
    if (e_rest > 0) {
      double d = rest.counts[i] - e_rest;
      chi += d * d / e_rest;
    }
  }
  return chi;
}

}  // namespace semiring
}  // namespace joinboost
