#pragma once

#include <string>
#include <vector>

namespace joinboost {
namespace semiring {

/// One ⊗-operand of a semi-ring product in SQL: a table alias plus the names
/// of its annotation columns. `has_annotation == false` means the operand is
/// lifted to the 1 element (1, 0, 0) and drops out of the product — the
/// identity-message optimization of Appendix D.2.
struct SqlOperand {
  std::string alias;
  bool has_annotation = false;
  std::string c_col = "c";  ///< count-like component (c, or h for gradients)
  std::string s_col = "s";  ///< linear component (s, or g)
  std::string q_col;        ///< quadratic component; empty when not tracked

  std::string C() const { return alias.empty() ? c_col : alias + "." + c_col; }
  std::string S() const { return alias.empty() ? s_col : alias + "." + s_col; }
  std::string Q() const { return alias.empty() ? q_col : alias + "." + q_col; }
};

/// SQL expression generation for the variance (and gradient) semi-ring ⊗
/// product across any number of operands (the Factorizer composes these into
/// the SUM(...) aggregates of message-passing queries).
///
/// For operands i with components (cᵢ, sᵢ, qᵢ):
///   c = Π cᵢ
///   s = Σᵢ sᵢ·Π_{j≠i} cⱼ
///   q = Σᵢ qᵢ·Π_{j≠i} cⱼ + 2·Σ_{i<j} sᵢ·sⱼ·Π_{l∉{i,j}} cₗ
class VarianceSqlGen {
 public:
  /// Product expression for the count component ("1" when all identity).
  static std::string MulC(const std::vector<SqlOperand>& ops);
  /// Product expression for the linear component ("0" when all identity).
  static std::string MulS(const std::vector<SqlOperand>& ops);
  /// Product expression for the quadratic component (requires q on every
  /// annotated operand).
  static std::string MulQ(const std::vector<SqlOperand>& ops);

  /// lift(-p) multiplication applied to an existing (c,s,q) annotation — the
  /// residual update of §5.3.1:
  ///   s' = s - p·c,   q' = q + p²·c - 2·p·s  (c is unchanged).
  static std::string UpdateS(const std::string& s, const std::string& c,
                             double p);
  static std::string UpdateQ(const std::string& q, const std::string& s,
                             const std::string& c, double p);

  /// Batched histogram query (split evaluation, one query per relation):
  ///   SELECT GROUPING_ID() AS set_id, a1, …, ak,
  ///          SUM(c_expr) AS c, SUM(s_expr) AS s[, SUM(q_expr) AS q]
  ///   FROM … GROUP BY GROUPING SETS ((a1), …, (ak))
  /// One scan of the shared absorption join yields every attribute's
  /// (value, c, s) histogram; rows with set_id = i belong to attribute i and
  /// NULL-extend the other key columns. Pass an empty q_expr to skip q.
  static std::string HistogramQuery(const std::vector<std::string>& attrs,
                                    const std::string& from_where,
                                    const std::string& c_expr,
                                    const std::string& s_expr,
                                    const std::string& q_expr = "");
};

/// Class-count semi-ring products: per-class components behave like `s`.
class ClassCountSqlGen {
 public:
  static std::string MulC(const std::vector<SqlOperand>& ops);
  /// Product expression for class k's count column (named `<cls_prefix>k`).
  static std::string MulClass(const std::vector<SqlOperand>& ops,
                              const std::string& cls_prefix, size_t k);

  /// Class-count analogue of VarianceSqlGen::HistogramQuery: per-class sums
  /// (columns cls0..clsK-1) instead of the (c, s) pair.
  static std::string HistogramQuery(const std::vector<std::string>& attrs,
                                    const std::string& from_where,
                                    const std::string& c_expr,
                                    const std::vector<std::string>& cls_exprs);
};

/// Format a double literal for SQL (always re-parses as FLOAT).
std::string SqlDouble(double v);

}  // namespace semiring
}  // namespace joinboost
