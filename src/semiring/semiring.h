#pragma once

#include <cstddef>
#include <vector>

namespace joinboost {
namespace semiring {

/// Variance semi-ring (paper Table 1): elements (c, s, q) = (count, Σy, Σy²).
/// Supports the regression criterion (reduction in variance / rmse) and is
/// addition-to-multiplication preserving (Definition 1), which is what makes
/// factorized *gradient boosting* possible (§4.2).
struct VarianceElem {
  double c = 0, s = 0, q = 0;

  static VarianceElem Zero() { return {0, 0, 0}; }
  static VarianceElem One() { return {1, 0, 0}; }
  static VarianceElem Lift(double y) { return {1, y, y * y}; }
  /// Weighted lift for bag semantics (Appendix B.1).
  static VarianceElem LiftWeighted(double y, double w) {
    return {w, w * y, w * y * y};
  }

  VarianceElem operator+(const VarianceElem& o) const {
    return {c + o.c, s + o.s, q + o.q};
  }
  VarianceElem operator*(const VarianceElem& o) const {
    return {c * o.c, s * o.c + o.s * c, q * o.c + o.q * c + 2 * s * o.s};
  }
  bool operator==(const VarianceElem& o) const {
    return c == o.c && s == o.s && q == o.q;
  }

  /// Total variance statistic Q - S²/C (Example 1).
  double Variance() const { return c == 0 ? 0 : q - s * s / c; }
};

/// Class-count semi-ring (Table 1): (c, c¹, ..., cᵏ). Supports Gini,
/// information gain and chi-square classification criteria (Appendix A).
struct ClassCountElem {
  double c = 0;
  std::vector<double> counts;  ///< per-class counts

  static ClassCountElem Zero(size_t k) { return {0, std::vector<double>(k, 0)}; }
  static ClassCountElem One(size_t k) { return {1, std::vector<double>(k, 0)}; }
  static ClassCountElem Lift(size_t k, size_t cls) {
    ClassCountElem e{1, std::vector<double>(k, 0)};
    e.counts[cls] = 1;
    return e;
  }

  ClassCountElem operator+(const ClassCountElem& o) const {
    ClassCountElem out{c + o.c, counts};
    for (size_t i = 0; i < counts.size(); ++i) out.counts[i] += o.counts[i];
    return out;
  }
  ClassCountElem operator*(const ClassCountElem& o) const {
    ClassCountElem out{c * o.c, std::vector<double>(counts.size(), 0)};
    for (size_t i = 0; i < counts.size(); ++i) {
      out.counts[i] = counts[i] * o.c + c * o.counts[i];
    }
    return out;
  }

  double Gini() const;
  double Entropy() const;
};

/// Gradient semi-ring (Table 2): (h, g) pairs of hessian/gradient sums with
/// (h1,g1) ⊗ (h2,g2) = (h1·h2, g1·h2 + g2·h1). Structurally the (c, s) part
/// of the variance semi-ring with h playing the role of the count.
struct GradientElem {
  double h = 0, g = 0;

  static GradientElem Zero() { return {0, 0}; }
  static GradientElem One() { return {1, 0}; }
  static GradientElem Lift(double grad, double hess) { return {hess, grad}; }

  GradientElem operator+(const GradientElem& o) const {
    return {h + o.h, g + o.g};
  }
  GradientElem operator*(const GradientElem& o) const {
    return {h * o.h, g * o.h + o.g * h};
  }
  bool operator==(const GradientElem& o) const { return h == o.h && g == o.g; }
};

/// Verify the addition-to-multiplication-preserving property (Definition 1)
/// for the variance semi-ring at a pair of reals: lift(a+b) == lift(a)⊗lift(b).
bool VarianceAddToMulHolds(double a, double b, double tol = 1e-9);

/// Variance-reduction criterion for a candidate split (Section 3.3):
///   -S²/C + Sσ²/Cσ + (S-Sσ)²/(C-Cσ).
double VarianceReduction(double c_total, double s_total, double c_sel,
                         double s_sel);

/// Regularized gain used by gradient boosting (Appendix B.2):
///   0.5·[Gσ²/(Hσ+λ) + (G−Gσ)²/(H−Hσ+λ) − G²/(H+λ)] − α.
double GradientGain(double g_total, double h_total, double g_sel, double h_sel,
                    double lambda, double alpha);

/// Gini-impurity reduction for classification splits.
double GiniReduction(const ClassCountElem& total, const ClassCountElem& sel);

/// Information gain (entropy reduction).
double EntropyReduction(const ClassCountElem& total, const ClassCountElem& sel);

/// Chi-square statistic of a split (Appendix A).
double ChiSquare(const ClassCountElem& total, const ClassCountElem& sel);

}  // namespace semiring
}  // namespace joinboost
