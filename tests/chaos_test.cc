// Seeded fault-injection chaos harness. Arms the named injection points
// (wal-write, hash-grow, worker-task, snapshot-publish) over the shared
// differential corpus and a full gbdt train, and pins the governance
// contract: every fault surfaces as a clean typed JbError, the engine stays
// consistent through aborted writes (retries converge to the exact
// never-faulted state), and once injection is disarmed a rerun is
// bit-identical to a run that never saw a fault.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/params.h"
#include "core/train.h"
#include "diff_corpus.h"
#include "exec/engine.h"
#include "storage/engine_profile.h"
#include "test_util.h"
#include "util/error.h"
#include "util/fault_injection.h"

namespace joinboost {
namespace {

using exec::Database;
using exec::ExecTable;
using diff_corpus::BuildDiffTables;
using diff_corpus::DiffProfile;
using diff_corpus::GenQuery;
using diff_corpus::GenerateQuery;
using diff_corpus::RowStrings;

constexpr size_t kRows = 2000;
constexpr size_t kQueriesPerRun = 6;
constexpr uint64_t kTableSeed = 97;
constexpr uint64_t kQuerySeed = 0xC4A05ULL;
constexpr int kChaosSeeds = 64;

/// Nightly sweeps re-run the whole harness over fresh fault schedules by
/// exporting JB_FAULT_SEED (an offset folded into every per-run seed) and
/// optionally JB_FAULT_RATE. Unset = the pinned defaults used in CI tier-1.
uint64_t SweepSeedOffset() {
  const char* env = std::getenv("JB_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
}

double SweepRate(double fallback) {
  if (const char* env = std::getenv("JB_FAULT_RATE")) {
    double v = std::strtod(env, nullptr);
    if (v > 0 && v < 1) return v;
  }
  return fallback;
}

/// JB_FAULT_SEED in the environment also auto-arms injection process-wide at
/// the first point visit (util/fault_injection.cc). Resolve that once-only
/// arming now and disarm: the harness controls arming explicitly, and the
/// never-faulted baseline must not see a fault.
void DisarmEnvInjection() {
  try {
    util::fault::Maybe("chaos-env-init");
  } catch (const InjectedFault&) {
  }
  util::fault::Disable();
}

/// Full governed write stack: parallel planner execution + WAL on disk (the
/// wal-write point only fires on the disk path) + MVCC undo staging.
EngineProfile ChaosProfile() {
  EngineProfile p = DiffProfile(/*use_planner=*/true, /*threads=*/4);
  p.wal = true;
  p.wal_to_disk = true;
  p.mvcc = true;
  return p;
}

/// The deterministic write sequence every run applies after loading the
/// corpus tables: multi-column UPDATEs (WAL batches + MVCC undo), a
/// copy-on-write append, and a CREATE TABLE AS materialization. Each step is
/// all-or-nothing under faults, so retrying a thrown step until it succeeds
/// must converge to the exact never-faulted state.
void ApplyWrites(Database* db, size_t* faulted_writes) {
  auto step = [&](const std::function<void()>& op) {
    for (int attempt = 0;; ++attempt) {
      ASSERT_LT(attempt, 500) << "write step failed 500 injected attempts";
      try {
        op();
        return;
      } catch (const JbError&) {
        if (faulted_writes != nullptr) ++*faulted_writes;
      }
    }
  };
  step([&] { db->Execute("UPDATE fact SET y = y * 1.25, x0 = x0 + 1 WHERE k1 < 7"); });
  step([&] { db->Execute("UPDATE fact SET x0 = x0 - 2 WHERE k2 = 3"); });
  step([&] {
    ExecTable batch;
    batch.rows = 2;
    batch.cols.push_back({"", "k1", exec::VectorData::FromInts({3, 40})});
    batch.cols.push_back({"", "f1", exec::VectorData::FromDoubles({111, 222})});
    db->AppendRows("d1", batch);
  });
  step([&] {
    db->Execute(
        "CREATE TABLE agg1 AS SELECT fact.k1 AS k, SUM(fact.y) AS s, "
        "COUNT(*) AS c FROM fact GROUP BY fact.k1");
  });
}

/// Run the seeded corpus and stringify results. Unordered outputs are sorted
/// so the comparison keys on content; ordered outputs keep their order.
std::vector<std::vector<std::string>> RunCorpus(Database* db) {
  std::vector<std::vector<std::string>> out;
  for (size_t i = 0; i < kQueriesPerRun; ++i) {
    GenQuery q = GenerateQuery(kQuerySeed + i);
    std::vector<std::string> rows = RowStrings(*db->Query(q.sql));
    if (!q.ordered) std::sort(rows.begin(), rows.end());
    out.push_back(std::move(rows));
  }
  // The written tables are part of the contract too.
  out.push_back(RowStrings(*db->Query(
      "SELECT agg1.k AS k, agg1.s AS s, agg1.c AS c FROM agg1 ORDER BY k")));
  out.push_back(RowStrings(*db->Query(
      "SELECT d1.k1 AS k, d1.f1 AS f FROM d1 ORDER BY k, f")));
  return out;
}

TEST(ChaosTest, SeededFaultSweepLeavesEngineBitIdentical) {
  DisarmEnvInjection();
  // Never-faulted baseline: fresh engine, the write sequence, the corpus.
  std::vector<std::vector<std::string>> baseline;
  {
    Database db(ChaosProfile());
    BuildDiffTables(&db, kTableSeed, kRows);
    ApplyWrites(&db, nullptr);
    baseline = RunCorpus(&db);
  }

  uint64_t total_trips = 0;
  size_t faulted_writes = 0;
  size_t faulted_queries = 0;
  for (int seed = 0; seed < kChaosSeeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    Database db(ChaosProfile());
    BuildDiffTables(&db, kTableSeed, kRows);

    util::fault::Configure(
        0x9E3779B97F4A7C15ULL * (SweepSeedOffset() + seed + 1),
        SweepRate(/*fallback=*/0.03));
    // Writes retry through injected faults; only typed JbErrors are caught,
    // so an untyped escape (or a crash) fails the test.
    ApplyWrites(&db, &faulted_writes);
    // Queries under fire: a faulted query must abort cleanly and typed.
    for (size_t i = 0; i < kQueriesPerRun; ++i) {
      try {
        db.Query(GenerateQuery(kQuerySeed + i).sql);
      } catch (const JbError&) {
        ++faulted_queries;
      }
    }
    total_trips += util::fault::Trips();
    util::fault::Disable();

    // Disarmed rerun on the SAME engine: bit-identical to the never-faulted
    // baseline — no partial registration, poisoned cache, or torn column.
    EXPECT_EQ(RunCorpus(&db), baseline);
  }
  // The sweep must have genuinely exercised the fault points.
  EXPECT_GT(total_trips, 0u) << "no injection point ever fired";
  EXPECT_GT(faulted_writes + faulted_queries, 0u);
}

void ExpectModelsBitIdentical(const core::Ensemble& a,
                              const core::Ensemble& b,
                              const std::string& label) {
  ASSERT_EQ(a.trees.size(), b.trees.size()) << label;
  EXPECT_EQ(a.base_score, b.base_score) << label;
  for (size_t t = 0; t < a.trees.size(); ++t) {
    const auto& ta = a.trees[t].nodes;
    const auto& tb = b.trees[t].nodes;
    ASSERT_EQ(ta.size(), tb.size()) << label << " tree " << t;
    for (size_t n = 0; n < ta.size(); ++n) {
      SCOPED_TRACE(label + " tree " + std::to_string(t) + " node " +
                   std::to_string(n));
      EXPECT_EQ(ta[n].is_leaf, tb[n].is_leaf);
      EXPECT_EQ(ta[n].feature, tb[n].feature);
      EXPECT_EQ(ta[n].relation, tb[n].relation);
      EXPECT_EQ(ta[n].threshold, tb[n].threshold);  // bit-exact doubles
      EXPECT_EQ(ta[n].prediction, tb[n].prediction);
    }
  }
}

core::TrainParams GbdtParams() {
  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 3;
  params.num_leaves = 4;
  return params;
}

TEST(ChaosTest, GbdtTrainSurvivesFaultsAndReproducesBaseline) {
  DisarmEnvInjection();
  // Never-faulted model.
  core::Ensemble baseline;
  {
    Database db(ChaosProfile());
    test_util::BuildSmallSnowflake(&db, /*seed=*/123, /*rows=*/1200);
    Dataset ds = test_util::MakeSnowflakeDataset(&db);
    core::TrainParams params = GbdtParams();
    baseline = Train(params, ds).model;
  }
  ASSERT_EQ(baseline.trees.size(), 3u);

  uint64_t total_trips = 0;
  size_t faulted_trains = 0;
  for (int seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("gbdt chaos seed " + std::to_string(seed));
    // Attempt a train under fire. A failed train may legally leave behind
    // its temp tables — the guarantee is typed abort + base-table
    // consistency, so the rerun uses a fresh engine like any real retry.
    {
      Database db(ChaosProfile());
      test_util::BuildSmallSnowflake(&db, /*seed=*/123, /*rows=*/1200);
      Dataset ds = test_util::MakeSnowflakeDataset(&db);
      util::fault::Configure(
          0x51ED2701ULL + SweepSeedOffset() * 131 + static_cast<uint64_t>(seed),
          SweepRate(/*fallback=*/0.005));
      core::TrainParams params = GbdtParams();
      try {
        Train(params, ds);
      } catch (const JbError&) {
        ++faulted_trains;
      }
      total_trips += util::fault::Trips();
      util::fault::Disable();
      // The base tables the trainer reads stayed intact through the abort.
      EXPECT_EQ(db.catalog().Get("fact")->num_rows(), 1200u);
    }
    // Disarmed retrain reproduces the never-faulted model bit for bit.
    Database db(ChaosProfile());
    test_util::BuildSmallSnowflake(&db, /*seed=*/123, /*rows=*/1200);
    Dataset ds = test_util::MakeSnowflakeDataset(&db);
    core::TrainParams params = GbdtParams();
    core::Ensemble retrained = Train(params, ds).model;
    ExpectModelsBitIdentical(retrained, baseline,
                             "seed " + std::to_string(seed));
  }
  EXPECT_GT(total_trips, 0u) << "no injection point fired during training";
  EXPECT_GT(faulted_trains, 0u);
}

}  // namespace
}  // namespace joinboost
