// Randomized differential harness for morsel-driven parallel execution.
//
// Every generated query runs on four engines over identical data:
//   {planner on, planner off} x {1 thread, N threads}
// with the morsel knobs lowered so even test-sized inputs fan out. The
// determinism contract is stronger across thread counts than across planner
// modes:
//   * same planner mode, different thread count  -> bit-identical rows in
//     identical order (morsel merges are ordered, aggregate groups re-sort
//     to first-occurrence order, float partials never re-associate);
//   * planner on vs off -> identical ordered rows for ORDER BY queries,
//     identical row multisets otherwise (join reordering may legally change
//     the physical order of unordered output).
// On failure the per-query seed is printed; rerun with
// JB_DIFF_SEED=<seed> JB_DIFF_COUNT=1 to replay a single query.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluate.h"
#include "core/params.h"
#include "core/train.h"
#include "exec/engine.h"
#include "storage/table.h"
#include "diff_corpus.h"
#include "test_util.h"
#include "util/rng.h"

namespace joinboost {
namespace {

using exec::Database;
using exec::ExecTable;
using diff_corpus::BuildDiffTables;
using diff_corpus::DiffProfile;
using diff_corpus::GenQuery;
using diff_corpus::GenerateQuery;
using diff_corpus::RowStrings;

/// Tuple-at-a-time engine: exercises the HashRowSlow / EvalScalar paths,
/// which must keep producing the same hash values (and therefore the same
/// chains, group ids and row orders) as the columnar vectorized hashing.
EngineProfile RowModeProfile(bool use_planner) {
  EngineProfile p = DiffProfile(use_planner, 1);
  p.name = "X-row-diff";
  p.columnar_exec = false;
  return p;
}

// ---------------------------------------------------------------------------
// The differential fixture: four engines over identical data.
// ---------------------------------------------------------------------------

class ParallelDifferentialTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 6000;
  void SetUp() override {
    on1_ = std::make_unique<Database>(DiffProfile(true, 1));
    onN_ = std::make_unique<Database>(DiffProfile(true, 4));
    off1_ = std::make_unique<Database>(DiffProfile(false, 1));
    offN_ = std::make_unique<Database>(DiffProfile(false, 4));
    for (Database* db : All()) BuildDiffTables(db, /*seed=*/97, kRows);
  }

  std::vector<Database*> All() {
    return {on1_.get(), onN_.get(), off1_.get(), offN_.get()};
  }

  /// Runs `q` everywhere and enforces the contract; failures register as
  /// gtest expectations (the caller checks HasFailure() to print the seed).
  void CheckQuery(const GenQuery& q) {
    auto r_on1 = RowStrings(*on1_->Query(q.sql));
    auto r_onN = RowStrings(*onN_->Query(q.sql));
    auto r_off1 = RowStrings(*off1_->Query(q.sql));
    auto r_offN = RowStrings(*offN_->Query(q.sql));
    // Thread count must never change anything, not even physical order.
    EXPECT_EQ(r_on1, r_onN) << "planner ON: 1 thread vs N threads differ";
    EXPECT_EQ(r_off1, r_offN) << "planner OFF: 1 thread vs N threads differ";
    // Planner on/off: exact when ordered, multiset otherwise.
    if (q.ordered) {
      EXPECT_EQ(r_on1, r_off1) << "planner on/off differ (ordered query)";
    } else {
      auto a = r_on1, b = r_off1;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "planner on/off differ (row multiset)";
    }
  }

  std::unique_ptr<Database> on1_, onN_, off1_, offN_;
};

TEST_F(ParallelDifferentialTest, GeneratedQueriesAreBitIdenticalAcrossConfigs) {
  uint64_t base_seed = 0x4A6F696E42ULL;  // stable across runs
  if (const char* env = std::getenv("JB_DIFF_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  size_t count = 64;
  if (const char* env = std::getenv("JB_DIFF_COUNT")) {
    count = std::strtoull(env, nullptr, 0);
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    GenQuery q = GenerateQuery(seed);
    SCOPED_TRACE("replay: JB_DIFF_SEED=" + std::to_string(seed) +
                 " JB_DIFF_COUNT=1 | seed " + std::to_string(seed) + " | " +
                 q.sql);
    CheckQuery(q);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[parallel_differential] FAILING SEED: %llu\n"
                   "[parallel_differential] replay with: JB_DIFF_SEED=%llu "
                   "JB_DIFF_COUNT=1\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
      break;
    }
  }
  // The harness must actually have exercised the parallel paths.
  EXPECT_GT(onN_->PlanStatsTotals().morsels_dispatched, 0u)
      << "N-thread engine never dispatched a morsel: thresholds broken?";
  EXPECT_EQ(on1_->PlanStatsTotals().morsels_dispatched, 0u)
      << "1-thread engine dispatched morsels: serial baseline broken?";
  // The hash counters are canonical (partition-count independent), so after
  // an identical query stream they must agree bit-for-bit across thread
  // counts — that's what lets the CI bench guard pin them.
  plan::PlanStats s1 = on1_->PlanStatsTotals();
  plan::PlanStats sN = onN_->PlanStatsTotals();
  EXPECT_GT(s1.hash_probes, 0u);
  EXPECT_EQ(s1.hash_probes, sN.hash_probes);
  EXPECT_EQ(s1.hash_chain_follows, sN.hash_chain_follows);
  EXPECT_EQ(s1.hash_bytes, sN.hash_bytes);
}

// Row-mode engines share the operator pipeline but hash keys per tuple
// through Value materialization (morsel::HashKeys' row_mode branch). Hash
// values — and therefore chains, group discovery order and output order —
// must match the columnar engines exactly, so a serial row engine is
// row-sequence identical to the serial columnar engine in the same planner
// mode. This pins HashRowSlow against the vectorized column-at-a-time
// hashing.
TEST_F(ParallelDifferentialTest, RowModeEnginesMatchColumnarBitExactly) {
  auto row_off = std::make_unique<Database>(RowModeProfile(false));
  auto row_on = std::make_unique<Database>(RowModeProfile(true));
  BuildDiffTables(row_off.get(), /*seed=*/97, kRows);
  BuildDiffTables(row_on.get(), /*seed=*/97, kRows);
  uint64_t base_seed = 0x526F774D6FULL;  // distinct from the main fuzz
  if (const char* env = std::getenv("JB_DIFF_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  size_t count = 24;  // row-mode evaluation is tuple-at-a-time (slow)
  if (const char* env = std::getenv("JB_DIFF_COUNT")) {
    count = std::strtoull(env, nullptr, 0);
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    GenQuery q = GenerateQuery(seed);
    SCOPED_TRACE("replay: JB_DIFF_SEED=" + std::to_string(seed) +
                 " JB_DIFF_COUNT=1 | seed " + std::to_string(seed) + " | " +
                 q.sql);
    EXPECT_EQ(RowStrings(*row_off->Query(q.sql)),
              RowStrings(*off1_->Query(q.sql)))
        << "row engine vs columnar (planner off) differ";
    EXPECT_EQ(RowStrings(*row_on->Query(q.sql)),
              RowStrings(*on1_->Query(q.sql)))
        << "row engine vs columnar (planner on) differ";
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[parallel_differential] FAILING ROW-MODE SEED: %llu\n",
                   static_cast<unsigned long long>(seed));
      break;
    }
  }
  // Row engines must stay strictly serial (tuple-at-a-time cost structure).
  EXPECT_EQ(row_off->PlanStatsTotals().morsels_dispatched, 0u);
  EXPECT_EQ(row_on->PlanStatsTotals().morsels_dispatched, 0u);
}

TEST_F(ParallelDifferentialTest,
       LeftJoinNullSideWherePushdownStaysCorrectUnderParallelProbe) {
  // PR 2 regression, re-pinned under the morsel probe: the WHERE refers to
  // the nullable side, so pushing it below the LEFT JOIN would drop the
  // null-extended rows it is meant to select. fact.k1 ranges over [0, 30)
  // but d1 only covers [0, 17), so the null side is genuinely populated.
  const char* q =
      "SELECT fact.k1 AS k, COUNT(*) AS c FROM fact LEFT JOIN d1 "
      "ON fact.k1 = d1.k1 WHERE d1.f1 IS NULL GROUP BY fact.k1 ORDER BY k";
  std::vector<std::vector<std::string>> results;
  for (Database* db : All()) results.push_back(RowStrings(*db->Query(q)));
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]) << "config " << i;
  }
  // Only k1 >= 17 rows survive; every surviving key must be >= 17.
  auto t = onN_->Query(q);
  ASSERT_GT(t->rows, 0u);
  for (size_t r = 0; r < t->rows; ++r) {
    EXPECT_GE(t->GetValue(r, 0).i, 17) << "matched row leaked through";
  }
  // Cross-check the total against the unfiltered null count.
  double nulls = onN_->QueryScalarDouble(
      "SELECT COUNT(*) AS c FROM fact LEFT JOIN d1 ON fact.k1 = d1.k1 "
      "WHERE d1.f1 IS NULL");
  double total = 0;
  for (size_t r = 0; r < t->rows; ++r) total += t->GetValue(r, 1).AsDouble();
  EXPECT_EQ(nulls, total);
}

TEST_F(ParallelDifferentialTest, SemiAntiJoinsMatchAcrossConfigs) {
  // Fixed shapes that exercise the partitioned build + parallel probe with
  // filtered gathers on the probe side only.
  const char* queries[] = {
      "SELECT COUNT(*) AS c FROM fact SEMI JOIN d1 ON fact.k1 = d1.k1",
      "SELECT COUNT(*) AS c FROM fact ANTI JOIN d1 ON fact.k1 = d1.k1",
      "SELECT fact.k2 AS k, SUM(fact.y) AS s FROM fact "
      "SEMI JOIN d1 ON fact.k1 = d1.k1 WHERE fact.x0 > 3 "
      "GROUP BY fact.k2 ORDER BY k",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    std::vector<std::vector<std::string>> results;
    for (Database* db : All()) results.push_back(RowStrings(*db->Query(q)));
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[0], results[i]) << "config " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Encoded-vs-decoded axis: compressed execution forced ON/OFF over
// identically encoded storage, crossed with {planner on/off} x {1, N
// threads}. Within one planner mode all four (cexec, threads) combinations
// must produce bit-identical row sequences; across planner modes the usual
// ordered-exact / multiset contract applies. Reuses JB_DIFF_SEED /
// JB_DIFF_COUNT, so the nightly deep fuzz widens this axis automatically.
// ---------------------------------------------------------------------------

EngineProfile CompressedDiffProfile(bool cexec, bool use_planner,
                                    int threads) {
  EngineProfile p = DiffProfile(use_planner, threads);
  p.compressed_exec = cexec;
  return p;
}

class CompressedDifferentialTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 6000;
  struct Engine {
    bool cexec;
    bool planner;
    int threads;
    std::unique_ptr<Database> db;
  };

  void SetUp() override {
    for (bool cexec : {true, false}) {
      for (bool planner : {true, false}) {
        for (int threads : {1, 4}) {
          engines_.push_back({cexec, planner, threads,
                              std::make_unique<Database>(CompressedDiffProfile(
                                  cexec, planner, threads))});
          // LoadTable applies the storage profile: payloads are genuinely
          // bit-packed / dictionary-encoded in every engine; only the
          // execution strategy differs.
          BuildDiffTables(engines_.back().db.get(), /*seed=*/97, kRows,
                          /*load=*/true);
        }
      }
    }
  }

  void CheckQuery(const GenQuery& q) {
    std::vector<std::vector<std::string>> rows(engines_.size());
    for (size_t i = 0; i < engines_.size(); ++i) {
      rows[i] = RowStrings(*engines_[i].db->Query(q.sql));
    }
    // Same planner mode => exact row-sequence equality, regardless of
    // compressed execution or thread count.
    int planner_ref = -1, raw_ref = -1;
    for (size_t i = 0; i < engines_.size(); ++i) {
      int& ref = engines_[i].planner ? planner_ref : raw_ref;
      if (ref < 0) {
        ref = static_cast<int>(i);
        continue;
      }
      EXPECT_EQ(rows[static_cast<size_t>(ref)], rows[i])
          << "cexec=" << engines_[i].cexec
          << " planner=" << engines_[i].planner
          << " threads=" << engines_[i].threads
          << " diverged from cexec=" << engines_[static_cast<size_t>(ref)].cexec
          << " threads=" << engines_[static_cast<size_t>(ref)].threads;
    }
    ASSERT_GE(planner_ref, 0);
    ASSERT_GE(raw_ref, 0);
    auto a = rows[static_cast<size_t>(planner_ref)];
    auto b = rows[static_cast<size_t>(raw_ref)];
    if (!q.ordered) {
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
    }
    EXPECT_EQ(a, b) << "planner on/off differ";
  }

  std::vector<Engine> engines_;
};

TEST_F(CompressedDifferentialTest, EncodedAndDecodedExecutionAreBitIdentical) {
  uint64_t base_seed = 0x436F6D7072ULL;  // distinct from the other axes
  if (const char* env = std::getenv("JB_DIFF_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  size_t count = 48;
  if (const char* env = std::getenv("JB_DIFF_COUNT")) {
    count = std::strtoull(env, nullptr, 0);
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    GenQuery q = GenerateQuery(seed);
    SCOPED_TRACE("replay: JB_DIFF_SEED=" + std::to_string(seed) +
                 " JB_DIFF_COUNT=1 | seed " + std::to_string(seed) + " | " +
                 q.sql);
    CheckQuery(q);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[parallel_differential] FAILING ENCODED-AXIS SEED: %llu\n"
                   "[parallel_differential] replay with: JB_DIFF_SEED=%llu "
                   "JB_DIFF_COUNT=1\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
      break;
    }
  }
  // The decompress-avoidance counters are canonical: after an identical
  // query stream they must agree bit-for-bit across thread counts, be
  // positive where compressed execution ran, and stay zero where it was
  // forced off.
  std::vector<plan::PlanStats> snap;
  for (const Engine& e : engines_) snap.push_back(e.db->PlanStatsTotals());
  int on1 = -1, onN = -1;
  for (size_t i = 0; i < engines_.size(); ++i) {
    const Engine& e = engines_[i];
    if (!e.cexec) {
      EXPECT_EQ(snap[i].cells_decompress_avoided, 0u)
          << "cexec OFF engine skipped decode work";
      EXPECT_EQ(snap[i].blocks_skipped, 0u);
    } else if (e.planner) {
      (e.threads > 1 ? onN : on1) = static_cast<int>(i);
    }
  }
  ASSERT_GE(on1, 0);
  ASSERT_GE(onN, 0);
  const plan::PlanStats& s1 = snap[static_cast<size_t>(on1)];
  const plan::PlanStats& sN = snap[static_cast<size_t>(onN)];
  EXPECT_GT(s1.cells_decompress_avoided, 0u)
      << "compressed execution never avoided a decode: lowering broken?";
  EXPECT_GT(s1.blocks_skipped, 0u);
  EXPECT_EQ(s1.cells_decompress_avoided, sN.cells_decompress_avoided)
      << "avoided-cells counter depends on thread count";
  EXPECT_EQ(s1.blocks_skipped, sN.blocks_skipped);
  EXPECT_EQ(s1.cells_decompressed, sN.cells_decompressed);
}

// ---------------------------------------------------------------------------
// Cost-model axis: {cost-based, greedy, planner off} x {1, N threads}. The
// cost-based planner may legally pick a different join order than the greedy
// heuristic, so the cross-mode contract is the same as planner on/off:
// ordered-exact for ORDER BY queries, row multisets otherwise. Within one
// mode, thread count must not change a bit — including the plan-cache and
// DP counters, which are part of the determinism surface the CI bench guard
// pins. Reuses JB_DIFF_SEED / JB_DIFF_COUNT for nightly widening.
// ---------------------------------------------------------------------------

EngineProfile CostDiffProfile(int mode, int threads) {
  // mode 0: cost-based planner; 1: greedy planner; 2: planner off.
  EngineProfile p = DiffProfile(/*use_planner=*/mode != 2, threads);
  p.cost_based_planner = mode == 0;
  return p;
}

class CostBasedDifferentialTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 6000;
  struct Engine {
    int mode;  ///< 0 cost-based, 1 greedy, 2 planner off
    int threads;
    std::unique_ptr<Database> db;
  };

  void SetUp() override {
    for (int mode : {0, 1, 2}) {
      for (int threads : {1, 4}) {
        engines_.push_back({mode, threads,
                            std::make_unique<Database>(
                                CostDiffProfile(mode, threads))});
        BuildDiffTables(engines_.back().db.get(), /*seed=*/97, kRows);
      }
    }
  }

  void CheckQuery(const GenQuery& q) {
    std::vector<std::vector<std::string>> rows(engines_.size());
    for (size_t i = 0; i < engines_.size(); ++i) {
      rows[i] = RowStrings(*engines_[i].db->Query(q.sql));
    }
    // Same mode, different thread count -> bit-identical row sequences.
    std::vector<int> mode_ref = {-1, -1, -1};
    for (size_t i = 0; i < engines_.size(); ++i) {
      int& ref = mode_ref[static_cast<size_t>(engines_[i].mode)];
      if (ref < 0) {
        ref = static_cast<int>(i);
        continue;
      }
      EXPECT_EQ(rows[static_cast<size_t>(ref)], rows[i])
          << "mode=" << engines_[i].mode << ": 1 thread vs N threads differ";
    }
    // Across modes: exact when ordered, multiset otherwise (the DP order may
    // legally differ from the greedy order).
    auto canon = [&](int ref) {
      auto r = rows[static_cast<size_t>(ref)];
      if (!q.ordered) std::sort(r.begin(), r.end());
      return r;
    };
    auto cost = canon(mode_ref[0]);
    EXPECT_EQ(cost, canon(mode_ref[1])) << "cost-based vs greedy differ";
    EXPECT_EQ(cost, canon(mode_ref[2])) << "cost-based vs planner-off differ";
  }

  std::vector<Engine> engines_;
};

TEST_F(CostBasedDifferentialTest, CostModelNeverChangesResults) {
  uint64_t base_seed = 0x436F7374ULL;  // distinct from the other axes
  if (const char* env = std::getenv("JB_DIFF_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  size_t count = 48;
  if (const char* env = std::getenv("JB_DIFF_COUNT")) {
    count = std::strtoull(env, nullptr, 0);
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    GenQuery q = GenerateQuery(seed);
    SCOPED_TRACE("replay: JB_DIFF_SEED=" + std::to_string(seed) +
                 " JB_DIFF_COUNT=1 | seed " + std::to_string(seed) + " | " +
                 q.sql);
    CheckQuery(q);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[parallel_differential] FAILING COST-AXIS SEED: %llu\n"
                   "[parallel_differential] replay with: JB_DIFF_SEED=%llu "
                   "JB_DIFF_COUNT=1\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
      break;
    }
  }
  // Same shape, different literals: the second run must hit the shape cache
  // (literals are parameters in the key) and still satisfy the full contract.
  for (const char* lit : {"1", "7"}) {
    GenQuery fixed;
    fixed.sql = std::string("SELECT fact.k1 AS a, SUM(fact.y) AS s FROM fact "
                            "JOIN d1 ON fact.k1 = d1.k1 "
                            "JOIN d2 ON fact.k2 = d2.k2 WHERE fact.x0 > ") +
                lit + " GROUP BY fact.k1 ORDER BY a";
    fixed.ordered = true;
    SCOPED_TRACE(fixed.sql);
    CheckQuery(fixed);
  }
  // Counter contract after an identical query stream.
  std::vector<plan::PlanStats> snap;
  for (const Engine& e : engines_) snap.push_back(e.db->PlanStatsTotals());
  int cost1 = -1, costN = -1;
  for (size_t i = 0; i < engines_.size(); ++i) {
    const Engine& e = engines_[i];
    if (e.mode == 0) {
      (e.threads > 1 ? costN : cost1) = static_cast<int>(i);
    } else if (e.mode == 1) {
      // Greedy engines never consult the plan cache or the DP enumerator.
      EXPECT_EQ(snap[i].plan_cache_hits + snap[i].plan_cache_misses, 0u);
      EXPECT_EQ(snap[i].joins_reordered_dp, 0u);
    } else {
      EXPECT_EQ(snap[i].queries_planned, 0u)
          << "planner-off engine planned a query";
    }
  }
  ASSERT_GE(cost1, 0);
  ASSERT_GE(costN, 0);
  const plan::PlanStats& s1 = snap[static_cast<size_t>(cost1)];
  const plan::PlanStats& sN = snap[static_cast<size_t>(costN)];
  // Every planned query either hit or missed the shape cache; repeated
  // generator shapes make both sides positive.
  EXPECT_EQ(s1.plan_cache_hits + s1.plan_cache_misses, s1.queries_planned);
  EXPECT_GT(s1.plan_cache_hits, 0u);
  EXPECT_GT(s1.plan_cache_misses, 0u);
  // Planning decisions are thread-count independent, bit for bit.
  EXPECT_EQ(s1.plan_cache_hits, sN.plan_cache_hits);
  EXPECT_EQ(s1.plan_cache_misses, sN.plan_cache_misses);
  EXPECT_EQ(s1.joins_reordered_dp, sN.joins_reordered_dp);
  EXPECT_EQ(s1.joins_reordered, sN.joins_reordered);
}

// ---------------------------------------------------------------------------
// Chunk-size axis: the horizontal storage layout is invisible to results.
// {whole-table chunk, 1024-row chunks, 999-row chunks (ragged last)} x
// {planner on/off} x {1, N threads} over genuinely loaded (encoded) storage.
// Same planner mode => bit-identical row sequences regardless of chunk size
// or thread count; across planner modes the ordered-exact / multiset
// contract applies. Reuses JB_DIFF_SEED / JB_DIFF_COUNT for nightly
// widening.
// ---------------------------------------------------------------------------

EngineProfile ChunkDiffProfile(size_t chunk_rows, bool use_planner,
                               int threads) {
  EngineProfile p = DiffProfile(use_planner, threads);
  p.chunk_rows = chunk_rows;
  return p;
}

class ChunkedDifferentialTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 6000;
  struct Engine {
    size_t chunk_rows;
    bool planner;
    int threads;
    std::unique_ptr<Database> db;
  };

  void SetUp() override {
    // 999 does not divide 6000, so the last chunk is ragged (6 rows) and
    // chunk boundaries disagree with the 4096-value compression blocks.
    for (size_t chunk_rows : {size_t{0}, size_t{1024}, size_t{999}}) {
      for (bool planner : {true, false}) {
        for (int threads : {1, 4}) {
          engines_.push_back(
              {chunk_rows, planner, threads,
               std::make_unique<Database>(
                   ChunkDiffProfile(chunk_rows, planner, threads))});
          // LoadTable applies the storage profile: the chunked engines carve
          // every table into per-chunk encoded segments at load time.
          BuildDiffTables(engines_.back().db.get(), /*seed=*/97, kRows,
                          /*load=*/true);
        }
      }
    }
  }

  void CheckQuery(const GenQuery& q) {
    std::vector<std::vector<std::string>> rows(engines_.size());
    for (size_t i = 0; i < engines_.size(); ++i) {
      rows[i] = RowStrings(*engines_[i].db->Query(q.sql));
    }
    // Same planner mode => exact row-sequence equality, regardless of chunk
    // layout or thread count.
    int planner_ref = -1, raw_ref = -1;
    for (size_t i = 0; i < engines_.size(); ++i) {
      int& ref = engines_[i].planner ? planner_ref : raw_ref;
      if (ref < 0) {
        ref = static_cast<int>(i);
        continue;
      }
      EXPECT_EQ(rows[static_cast<size_t>(ref)], rows[i])
          << "chunk_rows=" << engines_[i].chunk_rows
          << " planner=" << engines_[i].planner
          << " threads=" << engines_[i].threads << " diverged from chunk_rows="
          << engines_[static_cast<size_t>(ref)].chunk_rows
          << " threads=" << engines_[static_cast<size_t>(ref)].threads;
    }
    ASSERT_GE(planner_ref, 0);
    ASSERT_GE(raw_ref, 0);
    auto a = rows[static_cast<size_t>(planner_ref)];
    auto b = rows[static_cast<size_t>(raw_ref)];
    if (!q.ordered) {
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
    }
    EXPECT_EQ(a, b) << "planner on/off differ";
  }

  std::vector<Engine> engines_;
};

TEST_F(ChunkedDifferentialTest, ChunkLayoutNeverChangesResults) {
  uint64_t base_seed = 0x4368756E6BULL;  // distinct from the other axes
  if (const char* env = std::getenv("JB_DIFF_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  size_t count = 32;
  if (const char* env = std::getenv("JB_DIFF_COUNT")) {
    count = std::strtoull(env, nullptr, 0);
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    GenQuery q = GenerateQuery(seed);
    SCOPED_TRACE("replay: JB_DIFF_SEED=" + std::to_string(seed) +
                 " JB_DIFF_COUNT=1 | seed " + std::to_string(seed) + " | " +
                 q.sql);
    CheckQuery(q);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[parallel_differential] FAILING CHUNK-AXIS SEED: %llu\n"
                   "[parallel_differential] replay with: JB_DIFF_SEED=%llu "
                   "JB_DIFF_COUNT=1\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
      break;
    }
  }
  // Layout counters: chunked engines sealed multiple segments per column at
  // load; the monolithic ones exactly one. Nothing in a read-only query
  // stream ever rewrites a sealed segment, on any engine.
  for (const Engine& e : engines_) {
    plan::PlanStats s = e.db->PlanStatsTotals();
    EXPECT_EQ(s.chunks_rewritten, 0u)
        << "chunk_rows=" << e.chunk_rows << " rewrote a sealed segment";
    if (e.chunk_rows != 0) {
      EXPECT_GT(s.chunks_created, 0u)
          << "chunk_rows=" << e.chunk_rows << " never sealed a chunk";
    }
  }
}

// ---------------------------------------------------------------------------
// Full training run: thread count and planner mode must not change a bit.
// ---------------------------------------------------------------------------

TEST(ParallelTrainEquivalenceTest, GbdtIsBitIdenticalAcrossThreadsAndPlanner) {
  struct Config {
    bool planner;
    int threads;
  };
  const Config configs[] = {{true, 1}, {true, 4}, {false, 1}, {false, 4}};
  std::vector<std::string> model_strings;
  std::vector<std::vector<double>> predictions;
  for (const Config& c : configs) {
    Database db(DiffProfile(c.planner, c.threads));
    test_util::BuildSmallSnowflake(&db, /*seed=*/123, /*rows=*/4000);
    Dataset ds = test_util::MakeSnowflakeDataset(&db);
    core::TrainParams params;
    params.boosting = "gbdt";
    params.num_iterations = 3;
    params.num_leaves = 4;
    TrainResult res = Train(params, ds);
    model_strings.push_back(res.model.ToString());
    core::JoinedEval eval = core::MaterializeJoin(ds);
    std::vector<double> preds(eval.rows());
    for (size_t r = 0; r < eval.rows(); ++r) {
      preds[r] = eval.Predict(res.model, r);
    }
    predictions.push_back(std::move(preds));
    if (c.threads > 1) {
      EXPECT_GT(res.plan_stats.morsels_dispatched, 0u)
          << "parallel training run never dispatched a morsel";
    }
  }
  for (size_t i = 1; i < model_strings.size(); ++i) {
    EXPECT_EQ(model_strings[0], model_strings[i])
        << "model diverged: config " << i;
    ASSERT_EQ(predictions[0].size(), predictions[i].size());
    for (size_t r = 0; r < predictions[0].size(); ++r) {
      ASSERT_EQ(predictions[0][r], predictions[i][r])
          << "prediction diverged at row " << r << ", config " << i;
    }
  }
}

TEST(ChunkedTrainEquivalenceTest, FavoritaGbdtIsBitIdenticalAcrossChunkSizes) {
  // Full factorized gbdt train over the Favorita snowflake: the storage
  // chunk layout must not change a bit of the model or its predictions,
  // and the chunked engines must actually run on multi-chunk storage.
  struct Config {
    size_t chunk_rows;
    int threads;
  };
  const Config configs[] = {{0, 1}, {1024, 1}, {1024, 4}, {999, 4}};
  std::vector<std::string> model_strings;
  std::vector<std::vector<double>> predictions;
  for (const Config& c : configs) {
    EngineProfile p = EngineProfile::DSwap();
    p.chunk_rows = c.chunk_rows;
    p.exec_threads = c.threads;
    Database db(p);
    Dataset ds = data::MakeFavorita(&db, test_util::TinyFavorita());
    if (c.chunk_rows != 0) {
      EXPECT_GT(db.PlanStatsTotals().chunks_created, 0u)
          << "chunk_rows=" << c.chunk_rows << " loaded monolithically";
    }
    core::TrainParams params;
    params.boosting = "gbdt";
    params.num_iterations = 5;
    params.num_leaves = 8;
    params.learning_rate = 0.2;
    TrainResult res = Train(params, ds);
    model_strings.push_back(res.model.ToString());
    core::JoinedEval eval = core::MaterializeJoin(ds);
    std::vector<double> preds(eval.rows());
    for (size_t r = 0; r < eval.rows(); ++r) {
      preds[r] = eval.Predict(res.model, r);
    }
    predictions.push_back(std::move(preds));
    EXPECT_EQ(db.PlanStatsTotals().chunks_rewritten, 0u)
        << "training rewrote a sealed segment (chunk_rows=" << c.chunk_rows
        << ")";
  }
  for (size_t i = 1; i < model_strings.size(); ++i) {
    EXPECT_EQ(model_strings[0], model_strings[i])
        << "model diverged: chunk_rows=" << configs[i].chunk_rows
        << " threads=" << configs[i].threads;
    ASSERT_EQ(predictions[0].size(), predictions[i].size());
    for (size_t r = 0; r < predictions[0].size(); ++r) {
      ASSERT_EQ(predictions[0][r], predictions[i][r])
          << "prediction diverged at row " << r
          << " (chunk_rows=" << configs[i].chunk_rows << ")";
    }
  }
}

}  // namespace
}  // namespace joinboost
