// Randomized differential harness for morsel-driven parallel execution.
//
// Every generated query runs on four engines over identical data:
//   {planner on, planner off} x {1 thread, N threads}
// with the morsel knobs lowered so even test-sized inputs fan out. The
// determinism contract is stronger across thread counts than across planner
// modes:
//   * same planner mode, different thread count  -> bit-identical rows in
//     identical order (morsel merges are ordered, aggregate groups re-sort
//     to first-occurrence order, float partials never re-associate);
//   * planner on vs off -> identical ordered rows for ORDER BY queries,
//     identical row multisets otherwise (join reordering may legally change
//     the physical order of unordered output).
// On failure the per-query seed is printed; rerun with
// JB_DIFF_SEED=<seed> JB_DIFF_COUNT=1 to replay a single query.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluate.h"
#include "core/params.h"
#include "core/train.h"
#include "exec/engine.h"
#include "storage/table.h"
#include "test_util.h"
#include "util/rng.h"

namespace joinboost {
namespace {

using exec::Database;
using exec::ExecTable;

std::string CellText(const Value& v) {
  if (v.null) return "NULL";
  char buf[64];
  switch (v.type) {
    case TypeId::kFloat64:
      std::snprintf(buf, sizeof(buf), "%.17g", v.d);
      return buf;
    case TypeId::kString:
      return v.s;
    case TypeId::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v.i));
      return buf;
  }
  return "?";
}

std::vector<std::string> RowStrings(const ExecTable& t) {
  std::vector<std::string> rows;
  rows.reserve(t.rows);
  for (size_t r = 0; r < t.rows; ++r) {
    std::string row;
    for (size_t c = 0; c < t.cols.size(); ++c) {
      if (c) row += "|";
      row += CellText(t.GetValue(r, c));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// fact(k1, k2, cat, x0, y) with k1 over-ranging d1's key set (LEFT/ANTI
/// joins produce genuine null-extended rows) and d1 carrying duplicate keys
/// (multi-match probe order is part of the determinism contract). cat is a
/// low-cardinality string column so dictionary-translated predicates are in
/// the fuzzed surface. `load` registers through the storage profile, so
/// compressed profiles get genuinely encoded payloads (the encoded-vs-
/// decoded axis needs that; the original axes keep plain storage).
void BuildDiffTables(Database* db, uint64_t seed, size_t rows,
                     bool load = false) {
  Rng rng(seed);
  const int64_t kK1Range = 30, kD1Keys = 17, kK2Range = 11;
  std::vector<int64_t> k1(rows), k2(rows);
  std::vector<std::string> cat(rows);
  std::vector<double> x0(rows), y(rows);
  for (size_t i = 0; i < rows; ++i) {
    k1[i] = rng.NextInt(0, kK1Range - 1);
    k2[i] = rng.NextInt(0, kK2Range - 1);
    cat[i] = "c" + std::to_string(rng.NextInt(0, 11));
    x0[i] = rng.NextDouble() * 10;
    y[i] = 3.0 * x0[i] + static_cast<double>(k1[i]) -
           2.0 * static_cast<double>(k2[i]) + rng.NextGaussian();
  }
  std::vector<int64_t> d1k;
  std::vector<double> f1;
  for (int64_t k = 0; k < kD1Keys; ++k) {
    d1k.push_back(k);
    f1.push_back(static_cast<double>(rng.NextInt(1, 1000)));
  }
  for (int64_t k : {int64_t{2}, int64_t{5}}) {  // duplicate build-side keys
    d1k.push_back(k);
    f1.push_back(static_cast<double>(rng.NextInt(1, 1000)));
  }
  std::vector<int64_t> d2k;
  std::vector<double> f2;
  for (int64_t k = 0; k < kK2Range; ++k) {
    d2k.push_back(k);
    f2.push_back(static_cast<double>(rng.NextInt(1, 1000)));
  }
  auto reg = [&](TablePtr t) {
    if (load) {
      db->LoadTable(std::move(t));
    } else {
      db->RegisterTable(std::move(t));
    }
  };
  reg(TableBuilder("fact")
          .AddInts("k1", k1)
          .AddInts("k2", k2)
          .AddStrings("cat", cat)
          .AddDoubles("x0", x0)
          .AddDoubles("y", y)
          .Build());
  reg(TableBuilder("d1").AddInts("k1", d1k).AddDoubles("f1", f1).Build());
  reg(TableBuilder("d2").AddInts("k2", d2k).AddDoubles("f2", f2).Build());
}

EngineProfile DiffProfile(bool use_planner, int threads) {
  EngineProfile p = EngineProfile::DSwap();
  p.use_planner = use_planner;
  p.exec_threads = threads;
  // Shrink the morsel knobs so test-sized inputs genuinely fan out: a 6k-row
  // scan becomes ~24 morsels instead of one.
  p.morsel_rows = 256;
  p.parallel_threshold_rows = 64;
  return p;
}

/// Tuple-at-a-time engine: exercises the HashRowSlow / EvalScalar paths,
/// which must keep producing the same hash values (and therefore the same
/// chains, group ids and row orders) as the columnar vectorized hashing.
EngineProfile RowModeProfile(bool use_planner) {
  EngineProfile p = DiffProfile(use_planner, 1);
  p.name = "X-row-diff";
  p.columnar_exec = false;
  return p;
}

// ---------------------------------------------------------------------------
// Seeded random query generator.
// ---------------------------------------------------------------------------

struct GenQuery {
  std::string sql;
  bool ordered = false;  ///< ORDER BY pins a total output order
};

/// One random query over fact ⋈ d1 ⋈ d2. The generator only emits shapes
/// the engine supports (equi joins, single-level aggregates, ORDER BY over
/// output columns) and pairs LIMIT with a total order so content is
/// well-defined under join reordering.
GenQuery GenerateQuery(uint64_t seed) {
  Rng rng(seed);
  GenQuery q;

  // Join shape. 0 = fact only, 1 = +d1, 2 = +d2, 3 = both.
  int joins = static_cast<int>(rng.NextInt(0, 3));
  bool has_d1 = joins == 1 || joins == 3;
  bool has_d2 = joins == 2 || joins == 3;
  // d1 join flavor: 0-5 inner, 6-7 left, 8 semi, 9 anti.
  int d1_flavor = has_d1 ? static_cast<int>(rng.NextInt(0, 9)) : -1;
  bool d1_left = d1_flavor == 6 || d1_flavor == 7;
  bool d1_semi_anti = d1_flavor >= 8;
  bool d1_cols = has_d1 && !d1_semi_anti;

  std::string from = "FROM fact";
  if (has_d1) {
    const char* kind = d1_semi_anti ? (d1_flavor == 8 ? "SEMI JOIN" : "ANTI JOIN")
                                    : (d1_left ? "LEFT JOIN" : "JOIN");
    from += std::string(" ") + kind + " d1 ON fact.k1 = d1.k1";
  }
  if (has_d2) from += " JOIN d2 ON fact.k2 = d2.k2";

  // Value expressions available under this join shape.
  std::vector<std::string> exprs = {
      "fact.x0", "fact.y", "fact.k1", "fact.k2", "(fact.x0 + fact.y)",
      "(fact.x0 * 2 + 1)", "(fact.y - fact.x0)"};
  if (d1_cols) {
    exprs.push_back("d1.f1");
    exprs.push_back("(fact.y * d1.f1)");
    exprs.push_back("(d1.f1 / 100)");
  }
  if (has_d2) {
    exprs.push_back("d2.f2");
    exprs.push_back("(fact.x0 + d2.f2)");
  }
  auto pick_expr = [&]() {
    return exprs[rng.NextBounded(exprs.size())];
  };

  // WHERE: 0-2 conjuncts.
  std::vector<std::string> preds = {
      "fact.x0 > " + std::to_string(rng.NextInt(0, 8)),
      "fact.y < " + std::to_string(rng.NextInt(10, 40)),
      "fact.k1 <> " + std::to_string(rng.NextInt(0, 16)),
      "fact.x0 BETWEEN 2 AND " + std::to_string(rng.NextInt(4, 9)),
      "fact.k2 IN (1, 3, 5, " + std::to_string(rng.NextInt(6, 9)) + ")",
      "NOT fact.k1 = " + std::to_string(rng.NextInt(0, 29)),
      // Dictionary-translated string predicates (equality-class only: code
      // comparison and string comparison agree there, so row-mode engines
      // stay comparable). 'c12'/'c13' miss the dictionary on purpose.
      "fact.cat = 'c" + std::to_string(rng.NextInt(0, 13)) + "'",
      "fact.cat <> 'c" + std::to_string(rng.NextInt(0, 11)) + "'",
      "fact.cat IN ('c1', 'c5', 'nope', 'c" +
          std::to_string(rng.NextInt(0, 13)) + "')",
      "fact.cat NOT IN ('c2', 'c" + std::to_string(rng.NextInt(0, 13)) + "')",
  };
  if (d1_cols && !d1_left) {
    preds.push_back("d1.f1 >= " + std::to_string(rng.NextInt(1, 900)));
  }
  if (d1_cols && d1_left) {
    // Null-side predicates must stay above the join (PR 2 regression, now
    // under the parallel probe as well).
    preds.push_back(rng.NextInt(0, 1) == 0 ? "d1.f1 IS NULL"
                                           : "d1.f1 IS NOT NULL");
  }
  if (rng.NextInt(0, 9) == 0) {
    preds.push_back("fact.k1 IN (SELECT d1.k1 FROM d1 WHERE d1.f1 > " +
                    std::to_string(rng.NextInt(100, 800)) + ")");
  }
  int num_preds = static_cast<int>(rng.NextInt(0, 2));
  std::string where;
  for (int i = 0; i < num_preds; ++i) {
    where += (i == 0 ? " WHERE " : " AND ");
    where += preds[rng.NextBounded(preds.size())];
  }

  bool aggregate = rng.NextInt(0, 1) == 0;
  if (aggregate) {
    std::vector<std::string> keys;
    int key_shape = static_cast<int>(rng.NextInt(0, 9));
    if (key_shape < 4) {
      keys = {"fact.k1"};
    } else if (key_shape < 7) {
      keys = {"fact.k2"};
    } else if (key_shape < 9) {
      keys = {"fact.k1", "fact.k2"};
    }  // else: global aggregate, no keys
    std::vector<std::string> items;
    std::string group_sql, order_sql;
    for (size_t i = 0; i < keys.size(); ++i) {
      items.push_back(keys[i] + " AS g" + std::to_string(i));
      group_sql += (i == 0 ? " GROUP BY " : ", ") + keys[i];
      order_sql += (i == 0 ? " ORDER BY " : ", ") + ("g" + std::to_string(i));
    }
    int num_aggs = static_cast<int>(rng.NextInt(1, 3));
    const char* funcs[] = {"SUM", "COUNT", "AVG", "MIN", "MAX"};
    for (int a = 0; a < num_aggs; ++a) {
      const char* f = funcs[rng.NextBounded(5)];
      std::string arg =
          (std::string(f) == "COUNT" && rng.NextInt(0, 1) == 0) ? "*"
                                                                : pick_expr();
      items.push_back(std::string(f) + "(" + arg + ") AS a" +
                      std::to_string(a));
    }
    std::string having;
    if (!keys.empty() && rng.NextInt(0, 4) == 0) {
      having = " HAVING COUNT(*) > " + std::to_string(rng.NextInt(1, 5));
    }
    std::string limit;
    if (!keys.empty() && rng.NextInt(0, 4) == 0) {
      limit = " LIMIT " + std::to_string(rng.NextInt(1, 8));
    }
    std::string select = "SELECT ";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i) select += ", ";
      select += items[i];
    }
    // Group keys are unique per output row, so ordering by all of them pins
    // a total order (required for LIMIT to be content-deterministic).
    q.sql = select + " " + from + where + group_sql + having + order_sql + limit;
    q.ordered = true;  // keyed: total order; global: single row
  } else {
    int num_items = static_cast<int>(rng.NextInt(1, 3));
    std::string select = "SELECT ";
    bool distinct = rng.NextInt(0, 6) == 0;
    if (distinct) select += "DISTINCT ";
    std::string order_sql;
    for (int i = 0; i < num_items; ++i) {
      std::string alias = "c" + std::to_string(i);
      if (i) select += ", ";
      select += pick_expr() + " AS " + alias;
      order_sql += (i == 0 ? " ORDER BY " : ", ") + alias;
      if (rng.NextInt(0, 2) == 0) order_sql += " DESC";
    }
    bool ordered = rng.NextInt(0, 9) < 7;
    std::string tail;
    if (ordered) {
      // Ordering by every output column makes the sorted sequence unique
      // even under join reordering (ties are whole-row duplicates).
      tail = order_sql;
      if (rng.NextInt(0, 2) == 0) {
        tail += " LIMIT " + std::to_string(rng.NextInt(1, 200));
      }
    }
    q.sql = select + " " + from + where + tail;
    q.ordered = ordered;
  }
  return q;
}

// ---------------------------------------------------------------------------
// The differential fixture: four engines over identical data.
// ---------------------------------------------------------------------------

class ParallelDifferentialTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 6000;
  void SetUp() override {
    on1_ = std::make_unique<Database>(DiffProfile(true, 1));
    onN_ = std::make_unique<Database>(DiffProfile(true, 4));
    off1_ = std::make_unique<Database>(DiffProfile(false, 1));
    offN_ = std::make_unique<Database>(DiffProfile(false, 4));
    for (Database* db : All()) BuildDiffTables(db, /*seed=*/97, kRows);
  }

  std::vector<Database*> All() {
    return {on1_.get(), onN_.get(), off1_.get(), offN_.get()};
  }

  /// Runs `q` everywhere and enforces the contract; failures register as
  /// gtest expectations (the caller checks HasFailure() to print the seed).
  void CheckQuery(const GenQuery& q) {
    auto r_on1 = RowStrings(*on1_->Query(q.sql));
    auto r_onN = RowStrings(*onN_->Query(q.sql));
    auto r_off1 = RowStrings(*off1_->Query(q.sql));
    auto r_offN = RowStrings(*offN_->Query(q.sql));
    // Thread count must never change anything, not even physical order.
    EXPECT_EQ(r_on1, r_onN) << "planner ON: 1 thread vs N threads differ";
    EXPECT_EQ(r_off1, r_offN) << "planner OFF: 1 thread vs N threads differ";
    // Planner on/off: exact when ordered, multiset otherwise.
    if (q.ordered) {
      EXPECT_EQ(r_on1, r_off1) << "planner on/off differ (ordered query)";
    } else {
      auto a = r_on1, b = r_off1;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "planner on/off differ (row multiset)";
    }
  }

  std::unique_ptr<Database> on1_, onN_, off1_, offN_;
};

TEST_F(ParallelDifferentialTest, GeneratedQueriesAreBitIdenticalAcrossConfigs) {
  uint64_t base_seed = 0x4A6F696E42ULL;  // stable across runs
  if (const char* env = std::getenv("JB_DIFF_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  size_t count = 64;
  if (const char* env = std::getenv("JB_DIFF_COUNT")) {
    count = std::strtoull(env, nullptr, 0);
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    GenQuery q = GenerateQuery(seed);
    SCOPED_TRACE("replay: JB_DIFF_SEED=" + std::to_string(seed) +
                 " JB_DIFF_COUNT=1 | seed " + std::to_string(seed) + " | " +
                 q.sql);
    CheckQuery(q);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[parallel_differential] FAILING SEED: %llu\n"
                   "[parallel_differential] replay with: JB_DIFF_SEED=%llu "
                   "JB_DIFF_COUNT=1\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
      break;
    }
  }
  // The harness must actually have exercised the parallel paths.
  EXPECT_GT(onN_->PlanStatsTotals().morsels_dispatched, 0u)
      << "N-thread engine never dispatched a morsel: thresholds broken?";
  EXPECT_EQ(on1_->PlanStatsTotals().morsels_dispatched, 0u)
      << "1-thread engine dispatched morsels: serial baseline broken?";
  // The hash counters are canonical (partition-count independent), so after
  // an identical query stream they must agree bit-for-bit across thread
  // counts — that's what lets the CI bench guard pin them.
  plan::PlanStats s1 = on1_->PlanStatsTotals();
  plan::PlanStats sN = onN_->PlanStatsTotals();
  EXPECT_GT(s1.hash_probes, 0u);
  EXPECT_EQ(s1.hash_probes, sN.hash_probes);
  EXPECT_EQ(s1.hash_chain_follows, sN.hash_chain_follows);
  EXPECT_EQ(s1.hash_bytes, sN.hash_bytes);
}

// Row-mode engines share the operator pipeline but hash keys per tuple
// through Value materialization (morsel::HashKeys' row_mode branch). Hash
// values — and therefore chains, group discovery order and output order —
// must match the columnar engines exactly, so a serial row engine is
// row-sequence identical to the serial columnar engine in the same planner
// mode. This pins HashRowSlow against the vectorized column-at-a-time
// hashing.
TEST_F(ParallelDifferentialTest, RowModeEnginesMatchColumnarBitExactly) {
  auto row_off = std::make_unique<Database>(RowModeProfile(false));
  auto row_on = std::make_unique<Database>(RowModeProfile(true));
  BuildDiffTables(row_off.get(), /*seed=*/97, kRows);
  BuildDiffTables(row_on.get(), /*seed=*/97, kRows);
  uint64_t base_seed = 0x526F774D6FULL;  // distinct from the main fuzz
  if (const char* env = std::getenv("JB_DIFF_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  size_t count = 24;  // row-mode evaluation is tuple-at-a-time (slow)
  if (const char* env = std::getenv("JB_DIFF_COUNT")) {
    count = std::strtoull(env, nullptr, 0);
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    GenQuery q = GenerateQuery(seed);
    SCOPED_TRACE("replay: JB_DIFF_SEED=" + std::to_string(seed) +
                 " JB_DIFF_COUNT=1 | seed " + std::to_string(seed) + " | " +
                 q.sql);
    EXPECT_EQ(RowStrings(*row_off->Query(q.sql)),
              RowStrings(*off1_->Query(q.sql)))
        << "row engine vs columnar (planner off) differ";
    EXPECT_EQ(RowStrings(*row_on->Query(q.sql)),
              RowStrings(*on1_->Query(q.sql)))
        << "row engine vs columnar (planner on) differ";
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[parallel_differential] FAILING ROW-MODE SEED: %llu\n",
                   static_cast<unsigned long long>(seed));
      break;
    }
  }
  // Row engines must stay strictly serial (tuple-at-a-time cost structure).
  EXPECT_EQ(row_off->PlanStatsTotals().morsels_dispatched, 0u);
  EXPECT_EQ(row_on->PlanStatsTotals().morsels_dispatched, 0u);
}

TEST_F(ParallelDifferentialTest,
       LeftJoinNullSideWherePushdownStaysCorrectUnderParallelProbe) {
  // PR 2 regression, re-pinned under the morsel probe: the WHERE refers to
  // the nullable side, so pushing it below the LEFT JOIN would drop the
  // null-extended rows it is meant to select. fact.k1 ranges over [0, 30)
  // but d1 only covers [0, 17), so the null side is genuinely populated.
  const char* q =
      "SELECT fact.k1 AS k, COUNT(*) AS c FROM fact LEFT JOIN d1 "
      "ON fact.k1 = d1.k1 WHERE d1.f1 IS NULL GROUP BY fact.k1 ORDER BY k";
  std::vector<std::vector<std::string>> results;
  for (Database* db : All()) results.push_back(RowStrings(*db->Query(q)));
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]) << "config " << i;
  }
  // Only k1 >= 17 rows survive; every surviving key must be >= 17.
  auto t = onN_->Query(q);
  ASSERT_GT(t->rows, 0u);
  for (size_t r = 0; r < t->rows; ++r) {
    EXPECT_GE(t->GetValue(r, 0).i, 17) << "matched row leaked through";
  }
  // Cross-check the total against the unfiltered null count.
  double nulls = onN_->QueryScalarDouble(
      "SELECT COUNT(*) AS c FROM fact LEFT JOIN d1 ON fact.k1 = d1.k1 "
      "WHERE d1.f1 IS NULL");
  double total = 0;
  for (size_t r = 0; r < t->rows; ++r) total += t->GetValue(r, 1).AsDouble();
  EXPECT_EQ(nulls, total);
}

TEST_F(ParallelDifferentialTest, SemiAntiJoinsMatchAcrossConfigs) {
  // Fixed shapes that exercise the partitioned build + parallel probe with
  // filtered gathers on the probe side only.
  const char* queries[] = {
      "SELECT COUNT(*) AS c FROM fact SEMI JOIN d1 ON fact.k1 = d1.k1",
      "SELECT COUNT(*) AS c FROM fact ANTI JOIN d1 ON fact.k1 = d1.k1",
      "SELECT fact.k2 AS k, SUM(fact.y) AS s FROM fact "
      "SEMI JOIN d1 ON fact.k1 = d1.k1 WHERE fact.x0 > 3 "
      "GROUP BY fact.k2 ORDER BY k",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    std::vector<std::vector<std::string>> results;
    for (Database* db : All()) results.push_back(RowStrings(*db->Query(q)));
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[0], results[i]) << "config " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Encoded-vs-decoded axis: compressed execution forced ON/OFF over
// identically encoded storage, crossed with {planner on/off} x {1, N
// threads}. Within one planner mode all four (cexec, threads) combinations
// must produce bit-identical row sequences; across planner modes the usual
// ordered-exact / multiset contract applies. Reuses JB_DIFF_SEED /
// JB_DIFF_COUNT, so the nightly deep fuzz widens this axis automatically.
// ---------------------------------------------------------------------------

EngineProfile CompressedDiffProfile(bool cexec, bool use_planner,
                                    int threads) {
  EngineProfile p = DiffProfile(use_planner, threads);
  p.compressed_exec = cexec;
  return p;
}

class CompressedDifferentialTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 6000;
  struct Engine {
    bool cexec;
    bool planner;
    int threads;
    std::unique_ptr<Database> db;
  };

  void SetUp() override {
    for (bool cexec : {true, false}) {
      for (bool planner : {true, false}) {
        for (int threads : {1, 4}) {
          engines_.push_back({cexec, planner, threads,
                              std::make_unique<Database>(CompressedDiffProfile(
                                  cexec, planner, threads))});
          // LoadTable applies the storage profile: payloads are genuinely
          // bit-packed / dictionary-encoded in every engine; only the
          // execution strategy differs.
          BuildDiffTables(engines_.back().db.get(), /*seed=*/97, kRows,
                          /*load=*/true);
        }
      }
    }
  }

  void CheckQuery(const GenQuery& q) {
    std::vector<std::vector<std::string>> rows(engines_.size());
    for (size_t i = 0; i < engines_.size(); ++i) {
      rows[i] = RowStrings(*engines_[i].db->Query(q.sql));
    }
    // Same planner mode => exact row-sequence equality, regardless of
    // compressed execution or thread count.
    int planner_ref = -1, raw_ref = -1;
    for (size_t i = 0; i < engines_.size(); ++i) {
      int& ref = engines_[i].planner ? planner_ref : raw_ref;
      if (ref < 0) {
        ref = static_cast<int>(i);
        continue;
      }
      EXPECT_EQ(rows[static_cast<size_t>(ref)], rows[i])
          << "cexec=" << engines_[i].cexec
          << " planner=" << engines_[i].planner
          << " threads=" << engines_[i].threads
          << " diverged from cexec=" << engines_[static_cast<size_t>(ref)].cexec
          << " threads=" << engines_[static_cast<size_t>(ref)].threads;
    }
    ASSERT_GE(planner_ref, 0);
    ASSERT_GE(raw_ref, 0);
    auto a = rows[static_cast<size_t>(planner_ref)];
    auto b = rows[static_cast<size_t>(raw_ref)];
    if (!q.ordered) {
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
    }
    EXPECT_EQ(a, b) << "planner on/off differ";
  }

  std::vector<Engine> engines_;
};

TEST_F(CompressedDifferentialTest, EncodedAndDecodedExecutionAreBitIdentical) {
  uint64_t base_seed = 0x436F6D7072ULL;  // distinct from the other axes
  if (const char* env = std::getenv("JB_DIFF_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  size_t count = 48;
  if (const char* env = std::getenv("JB_DIFF_COUNT")) {
    count = std::strtoull(env, nullptr, 0);
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    GenQuery q = GenerateQuery(seed);
    SCOPED_TRACE("replay: JB_DIFF_SEED=" + std::to_string(seed) +
                 " JB_DIFF_COUNT=1 | seed " + std::to_string(seed) + " | " +
                 q.sql);
    CheckQuery(q);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[parallel_differential] FAILING ENCODED-AXIS SEED: %llu\n"
                   "[parallel_differential] replay with: JB_DIFF_SEED=%llu "
                   "JB_DIFF_COUNT=1\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
      break;
    }
  }
  // The decompress-avoidance counters are canonical: after an identical
  // query stream they must agree bit-for-bit across thread counts, be
  // positive where compressed execution ran, and stay zero where it was
  // forced off.
  std::vector<plan::PlanStats> snap;
  for (const Engine& e : engines_) snap.push_back(e.db->PlanStatsTotals());
  int on1 = -1, onN = -1;
  for (size_t i = 0; i < engines_.size(); ++i) {
    const Engine& e = engines_[i];
    if (!e.cexec) {
      EXPECT_EQ(snap[i].cells_decompress_avoided, 0u)
          << "cexec OFF engine skipped decode work";
      EXPECT_EQ(snap[i].blocks_skipped, 0u);
    } else if (e.planner) {
      (e.threads > 1 ? onN : on1) = static_cast<int>(i);
    }
  }
  ASSERT_GE(on1, 0);
  ASSERT_GE(onN, 0);
  const plan::PlanStats& s1 = snap[static_cast<size_t>(on1)];
  const plan::PlanStats& sN = snap[static_cast<size_t>(onN)];
  EXPECT_GT(s1.cells_decompress_avoided, 0u)
      << "compressed execution never avoided a decode: lowering broken?";
  EXPECT_GT(s1.blocks_skipped, 0u);
  EXPECT_EQ(s1.cells_decompress_avoided, sN.cells_decompress_avoided)
      << "avoided-cells counter depends on thread count";
  EXPECT_EQ(s1.blocks_skipped, sN.blocks_skipped);
  EXPECT_EQ(s1.cells_decompressed, sN.cells_decompressed);
}

// ---------------------------------------------------------------------------
// Cost-model axis: {cost-based, greedy, planner off} x {1, N threads}. The
// cost-based planner may legally pick a different join order than the greedy
// heuristic, so the cross-mode contract is the same as planner on/off:
// ordered-exact for ORDER BY queries, row multisets otherwise. Within one
// mode, thread count must not change a bit — including the plan-cache and
// DP counters, which are part of the determinism surface the CI bench guard
// pins. Reuses JB_DIFF_SEED / JB_DIFF_COUNT for nightly widening.
// ---------------------------------------------------------------------------

EngineProfile CostDiffProfile(int mode, int threads) {
  // mode 0: cost-based planner; 1: greedy planner; 2: planner off.
  EngineProfile p = DiffProfile(/*use_planner=*/mode != 2, threads);
  p.cost_based_planner = mode == 0;
  return p;
}

class CostBasedDifferentialTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 6000;
  struct Engine {
    int mode;  ///< 0 cost-based, 1 greedy, 2 planner off
    int threads;
    std::unique_ptr<Database> db;
  };

  void SetUp() override {
    for (int mode : {0, 1, 2}) {
      for (int threads : {1, 4}) {
        engines_.push_back({mode, threads,
                            std::make_unique<Database>(
                                CostDiffProfile(mode, threads))});
        BuildDiffTables(engines_.back().db.get(), /*seed=*/97, kRows);
      }
    }
  }

  void CheckQuery(const GenQuery& q) {
    std::vector<std::vector<std::string>> rows(engines_.size());
    for (size_t i = 0; i < engines_.size(); ++i) {
      rows[i] = RowStrings(*engines_[i].db->Query(q.sql));
    }
    // Same mode, different thread count -> bit-identical row sequences.
    std::vector<int> mode_ref = {-1, -1, -1};
    for (size_t i = 0; i < engines_.size(); ++i) {
      int& ref = mode_ref[static_cast<size_t>(engines_[i].mode)];
      if (ref < 0) {
        ref = static_cast<int>(i);
        continue;
      }
      EXPECT_EQ(rows[static_cast<size_t>(ref)], rows[i])
          << "mode=" << engines_[i].mode << ": 1 thread vs N threads differ";
    }
    // Across modes: exact when ordered, multiset otherwise (the DP order may
    // legally differ from the greedy order).
    auto canon = [&](int ref) {
      auto r = rows[static_cast<size_t>(ref)];
      if (!q.ordered) std::sort(r.begin(), r.end());
      return r;
    };
    auto cost = canon(mode_ref[0]);
    EXPECT_EQ(cost, canon(mode_ref[1])) << "cost-based vs greedy differ";
    EXPECT_EQ(cost, canon(mode_ref[2])) << "cost-based vs planner-off differ";
  }

  std::vector<Engine> engines_;
};

TEST_F(CostBasedDifferentialTest, CostModelNeverChangesResults) {
  uint64_t base_seed = 0x436F7374ULL;  // distinct from the other axes
  if (const char* env = std::getenv("JB_DIFF_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  size_t count = 48;
  if (const char* env = std::getenv("JB_DIFF_COUNT")) {
    count = std::strtoull(env, nullptr, 0);
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    GenQuery q = GenerateQuery(seed);
    SCOPED_TRACE("replay: JB_DIFF_SEED=" + std::to_string(seed) +
                 " JB_DIFF_COUNT=1 | seed " + std::to_string(seed) + " | " +
                 q.sql);
    CheckQuery(q);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[parallel_differential] FAILING COST-AXIS SEED: %llu\n"
                   "[parallel_differential] replay with: JB_DIFF_SEED=%llu "
                   "JB_DIFF_COUNT=1\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
      break;
    }
  }
  // Same shape, different literals: the second run must hit the shape cache
  // (literals are parameters in the key) and still satisfy the full contract.
  for (const char* lit : {"1", "7"}) {
    GenQuery fixed;
    fixed.sql = std::string("SELECT fact.k1 AS a, SUM(fact.y) AS s FROM fact "
                            "JOIN d1 ON fact.k1 = d1.k1 "
                            "JOIN d2 ON fact.k2 = d2.k2 WHERE fact.x0 > ") +
                lit + " GROUP BY fact.k1 ORDER BY a";
    fixed.ordered = true;
    SCOPED_TRACE(fixed.sql);
    CheckQuery(fixed);
  }
  // Counter contract after an identical query stream.
  std::vector<plan::PlanStats> snap;
  for (const Engine& e : engines_) snap.push_back(e.db->PlanStatsTotals());
  int cost1 = -1, costN = -1;
  for (size_t i = 0; i < engines_.size(); ++i) {
    const Engine& e = engines_[i];
    if (e.mode == 0) {
      (e.threads > 1 ? costN : cost1) = static_cast<int>(i);
    } else if (e.mode == 1) {
      // Greedy engines never consult the plan cache or the DP enumerator.
      EXPECT_EQ(snap[i].plan_cache_hits + snap[i].plan_cache_misses, 0u);
      EXPECT_EQ(snap[i].joins_reordered_dp, 0u);
    } else {
      EXPECT_EQ(snap[i].queries_planned, 0u)
          << "planner-off engine planned a query";
    }
  }
  ASSERT_GE(cost1, 0);
  ASSERT_GE(costN, 0);
  const plan::PlanStats& s1 = snap[static_cast<size_t>(cost1)];
  const plan::PlanStats& sN = snap[static_cast<size_t>(costN)];
  // Every planned query either hit or missed the shape cache; repeated
  // generator shapes make both sides positive.
  EXPECT_EQ(s1.plan_cache_hits + s1.plan_cache_misses, s1.queries_planned);
  EXPECT_GT(s1.plan_cache_hits, 0u);
  EXPECT_GT(s1.plan_cache_misses, 0u);
  // Planning decisions are thread-count independent, bit for bit.
  EXPECT_EQ(s1.plan_cache_hits, sN.plan_cache_hits);
  EXPECT_EQ(s1.plan_cache_misses, sN.plan_cache_misses);
  EXPECT_EQ(s1.joins_reordered_dp, sN.joins_reordered_dp);
  EXPECT_EQ(s1.joins_reordered, sN.joins_reordered);
}

// ---------------------------------------------------------------------------
// Chunk-size axis: the horizontal storage layout is invisible to results.
// {whole-table chunk, 1024-row chunks, 999-row chunks (ragged last)} x
// {planner on/off} x {1, N threads} over genuinely loaded (encoded) storage.
// Same planner mode => bit-identical row sequences regardless of chunk size
// or thread count; across planner modes the ordered-exact / multiset
// contract applies. Reuses JB_DIFF_SEED / JB_DIFF_COUNT for nightly
// widening.
// ---------------------------------------------------------------------------

EngineProfile ChunkDiffProfile(size_t chunk_rows, bool use_planner,
                               int threads) {
  EngineProfile p = DiffProfile(use_planner, threads);
  p.chunk_rows = chunk_rows;
  return p;
}

class ChunkedDifferentialTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 6000;
  struct Engine {
    size_t chunk_rows;
    bool planner;
    int threads;
    std::unique_ptr<Database> db;
  };

  void SetUp() override {
    // 999 does not divide 6000, so the last chunk is ragged (6 rows) and
    // chunk boundaries disagree with the 4096-value compression blocks.
    for (size_t chunk_rows : {size_t{0}, size_t{1024}, size_t{999}}) {
      for (bool planner : {true, false}) {
        for (int threads : {1, 4}) {
          engines_.push_back(
              {chunk_rows, planner, threads,
               std::make_unique<Database>(
                   ChunkDiffProfile(chunk_rows, planner, threads))});
          // LoadTable applies the storage profile: the chunked engines carve
          // every table into per-chunk encoded segments at load time.
          BuildDiffTables(engines_.back().db.get(), /*seed=*/97, kRows,
                          /*load=*/true);
        }
      }
    }
  }

  void CheckQuery(const GenQuery& q) {
    std::vector<std::vector<std::string>> rows(engines_.size());
    for (size_t i = 0; i < engines_.size(); ++i) {
      rows[i] = RowStrings(*engines_[i].db->Query(q.sql));
    }
    // Same planner mode => exact row-sequence equality, regardless of chunk
    // layout or thread count.
    int planner_ref = -1, raw_ref = -1;
    for (size_t i = 0; i < engines_.size(); ++i) {
      int& ref = engines_[i].planner ? planner_ref : raw_ref;
      if (ref < 0) {
        ref = static_cast<int>(i);
        continue;
      }
      EXPECT_EQ(rows[static_cast<size_t>(ref)], rows[i])
          << "chunk_rows=" << engines_[i].chunk_rows
          << " planner=" << engines_[i].planner
          << " threads=" << engines_[i].threads << " diverged from chunk_rows="
          << engines_[static_cast<size_t>(ref)].chunk_rows
          << " threads=" << engines_[static_cast<size_t>(ref)].threads;
    }
    ASSERT_GE(planner_ref, 0);
    ASSERT_GE(raw_ref, 0);
    auto a = rows[static_cast<size_t>(planner_ref)];
    auto b = rows[static_cast<size_t>(raw_ref)];
    if (!q.ordered) {
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
    }
    EXPECT_EQ(a, b) << "planner on/off differ";
  }

  std::vector<Engine> engines_;
};

TEST_F(ChunkedDifferentialTest, ChunkLayoutNeverChangesResults) {
  uint64_t base_seed = 0x4368756E6BULL;  // distinct from the other axes
  if (const char* env = std::getenv("JB_DIFF_SEED")) {
    base_seed = std::strtoull(env, nullptr, 0);
  }
  size_t count = 32;
  if (const char* env = std::getenv("JB_DIFF_COUNT")) {
    count = std::strtoull(env, nullptr, 0);
  }
  for (size_t i = 0; i < count; ++i) {
    uint64_t seed = base_seed + i;
    GenQuery q = GenerateQuery(seed);
    SCOPED_TRACE("replay: JB_DIFF_SEED=" + std::to_string(seed) +
                 " JB_DIFF_COUNT=1 | seed " + std::to_string(seed) + " | " +
                 q.sql);
    CheckQuery(q);
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr,
                   "[parallel_differential] FAILING CHUNK-AXIS SEED: %llu\n"
                   "[parallel_differential] replay with: JB_DIFF_SEED=%llu "
                   "JB_DIFF_COUNT=1\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(seed));
      break;
    }
  }
  // Layout counters: chunked engines sealed multiple segments per column at
  // load; the monolithic ones exactly one. Nothing in a read-only query
  // stream ever rewrites a sealed segment, on any engine.
  for (const Engine& e : engines_) {
    plan::PlanStats s = e.db->PlanStatsTotals();
    EXPECT_EQ(s.chunks_rewritten, 0u)
        << "chunk_rows=" << e.chunk_rows << " rewrote a sealed segment";
    if (e.chunk_rows != 0) {
      EXPECT_GT(s.chunks_created, 0u)
          << "chunk_rows=" << e.chunk_rows << " never sealed a chunk";
    }
  }
}

// ---------------------------------------------------------------------------
// Full training run: thread count and planner mode must not change a bit.
// ---------------------------------------------------------------------------

TEST(ParallelTrainEquivalenceTest, GbdtIsBitIdenticalAcrossThreadsAndPlanner) {
  struct Config {
    bool planner;
    int threads;
  };
  const Config configs[] = {{true, 1}, {true, 4}, {false, 1}, {false, 4}};
  std::vector<std::string> model_strings;
  std::vector<std::vector<double>> predictions;
  for (const Config& c : configs) {
    Database db(DiffProfile(c.planner, c.threads));
    test_util::BuildSmallSnowflake(&db, /*seed=*/123, /*rows=*/4000);
    Dataset ds = test_util::MakeSnowflakeDataset(&db);
    core::TrainParams params;
    params.boosting = "gbdt";
    params.num_iterations = 3;
    params.num_leaves = 4;
    TrainResult res = Train(params, ds);
    model_strings.push_back(res.model.ToString());
    core::JoinedEval eval = core::MaterializeJoin(ds);
    std::vector<double> preds(eval.rows());
    for (size_t r = 0; r < eval.rows(); ++r) {
      preds[r] = eval.Predict(res.model, r);
    }
    predictions.push_back(std::move(preds));
    if (c.threads > 1) {
      EXPECT_GT(res.plan_stats.morsels_dispatched, 0u)
          << "parallel training run never dispatched a morsel";
    }
  }
  for (size_t i = 1; i < model_strings.size(); ++i) {
    EXPECT_EQ(model_strings[0], model_strings[i])
        << "model diverged: config " << i;
    ASSERT_EQ(predictions[0].size(), predictions[i].size());
    for (size_t r = 0; r < predictions[0].size(); ++r) {
      ASSERT_EQ(predictions[0][r], predictions[i][r])
          << "prediction diverged at row " << r << ", config " << i;
    }
  }
}

TEST(ChunkedTrainEquivalenceTest, FavoritaGbdtIsBitIdenticalAcrossChunkSizes) {
  // Full factorized gbdt train over the Favorita snowflake: the storage
  // chunk layout must not change a bit of the model or its predictions,
  // and the chunked engines must actually run on multi-chunk storage.
  struct Config {
    size_t chunk_rows;
    int threads;
  };
  const Config configs[] = {{0, 1}, {1024, 1}, {1024, 4}, {999, 4}};
  std::vector<std::string> model_strings;
  std::vector<std::vector<double>> predictions;
  for (const Config& c : configs) {
    EngineProfile p = EngineProfile::DSwap();
    p.chunk_rows = c.chunk_rows;
    p.exec_threads = c.threads;
    Database db(p);
    Dataset ds = data::MakeFavorita(&db, test_util::TinyFavorita());
    if (c.chunk_rows != 0) {
      EXPECT_GT(db.PlanStatsTotals().chunks_created, 0u)
          << "chunk_rows=" << c.chunk_rows << " loaded monolithically";
    }
    core::TrainParams params;
    params.boosting = "gbdt";
    params.num_iterations = 5;
    params.num_leaves = 8;
    params.learning_rate = 0.2;
    TrainResult res = Train(params, ds);
    model_strings.push_back(res.model.ToString());
    core::JoinedEval eval = core::MaterializeJoin(ds);
    std::vector<double> preds(eval.rows());
    for (size_t r = 0; r < eval.rows(); ++r) {
      preds[r] = eval.Predict(res.model, r);
    }
    predictions.push_back(std::move(preds));
    EXPECT_EQ(db.PlanStatsTotals().chunks_rewritten, 0u)
        << "training rewrote a sealed segment (chunk_rows=" << c.chunk_rows
        << ")";
  }
  for (size_t i = 1; i < model_strings.size(); ++i) {
    EXPECT_EQ(model_strings[0], model_strings[i])
        << "model diverged: chunk_rows=" << configs[i].chunk_rows
        << " threads=" << configs[i].threads;
    ASSERT_EQ(predictions[0].size(), predictions[i].size());
    for (size_t r = 0; r < predictions[0].size(); ++r) {
      ASSERT_EQ(predictions[0][r], predictions[i][r])
          << "prediction diverged at row " << r
          << " (chunk_rows=" << configs[i].chunk_rows << ")";
    }
  }
}

}  // namespace
}  // namespace joinboost
