#pragma once

/// Shared test scaffolding: tmp-dir fixtures, synthetic dataset builders and
/// float-comparison helpers used across the gtest suites. Keep this header
/// dependency-light; it is compiled into every test binary.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "data/generators.h"
#include "exec/engine.h"
#include "storage/table.h"
#include "util/rng.h"

namespace joinboost {
namespace test_util {

/// RAII temporary directory, removed (recursively) on destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "joinboost_test_XXXXXX")
                           .string();
    char* made = mkdtemp(tmpl.data());
    if (made == nullptr) {
      // Fail hard: continuing with an empty path would aim File() at "/".
      throw std::runtime_error("mkdtemp failed for " + tmpl);
    }
    path_ = made;
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;  // best-effort cleanup; never throw from a dtor
      std::filesystem::remove_all(path_, ec);
    }
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// EXPECT_PRED-style relative float comparison:
/// |a - b| <= tol * max(1, |a|, |b|).
inline ::testing::AssertionResult RelNear(double a, double b, double rel_tol) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  double diff = std::fabs(a - b);
  if (std::isnan(a) || std::isnan(b)) {
    return ::testing::AssertionFailure()
           << "NaN operand: a=" << a << " b=" << b;
  }
  if (diff <= rel_tol * scale) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "|" << a << " - " << b << "| = " << diff << " > " << rel_tol
         << " * " << scale;
}

/// Element-wise RelNear over two equal-length vectors.
inline ::testing::AssertionResult AllRelNear(const std::vector<double>& a,
                                             const std::vector<double>& b,
                                             double rel_tol) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    ::testing::AssertionResult r = RelNear(a[i], b[i], rel_tol);
    if (!r) return ::testing::AssertionFailure() << "index " << i << ": "
                                                 << r.message();
  }
  return ::testing::AssertionSuccess();
}

/// Build a small snowflake: fact(k1, k2, x0, y) ⋈ d1(k1, f1) ⋈ d2(k2, f2).
/// y is a noisy linear function of x0, f1 and f2 so trees have signal to fit.
inline void BuildSmallSnowflake(exec::Database* db, uint64_t seed,
                                size_t rows) {
  Rng rng(seed);
  const int64_t kD1 = 17, kD2 = 11;
  std::vector<int64_t> k1(rows), k2(rows);
  std::vector<double> x0(rows), y(rows);
  std::vector<int64_t> d1k(static_cast<size_t>(kD1)),
      d2k(static_cast<size_t>(kD2));
  std::vector<double> f1(static_cast<size_t>(kD1)),
      f2(static_cast<size_t>(kD2));
  for (int64_t i = 0; i < kD1; ++i) {
    d1k[static_cast<size_t>(i)] = i;
    f1[static_cast<size_t>(i)] = static_cast<double>(rng.NextInt(1, 1000));
  }
  for (int64_t i = 0; i < kD2; ++i) {
    d2k[static_cast<size_t>(i)] = i;
    f2[static_cast<size_t>(i)] = static_cast<double>(rng.NextInt(1, 1000));
  }
  for (size_t i = 0; i < rows; ++i) {
    k1[i] = rng.NextInt(0, kD1 - 1);
    k2[i] = rng.NextInt(0, kD2 - 1);
    x0[i] = rng.NextDouble() * 10;
    y[i] = 3.0 * x0[i] + 0.01 * f1[static_cast<size_t>(k1[i])] -
           0.02 * f2[static_cast<size_t>(k2[i])] + rng.NextGaussian();
  }
  db->RegisterTable(TableBuilder("fact")
                        .AddInts("k1", k1)
                        .AddInts("k2", k2)
                        .AddDoubles("x0", x0)
                        .AddDoubles("y", y)
                        .Build());
  db->RegisterTable(
      TableBuilder("d1").AddInts("k1", d1k).AddDoubles("f1", f1).Build());
  db->RegisterTable(
      TableBuilder("d2").AddInts("k2", d2k).AddDoubles("f2", f2).Build());
}

/// Dataset over the tables produced by BuildSmallSnowflake.
inline Dataset MakeSnowflakeDataset(exec::Database* db) {
  Dataset ds(db);
  ds.AddTable("fact", {"x0"}, "y");
  ds.AddTable("d1", {"f1"});
  ds.AddTable("d2", {"f2"});
  ds.AddJoin("fact", "d1", {"k1"});
  ds.AddJoin("fact", "d2", {"k2"});
  return ds;
}

/// Favorita generator config shrunk to integration-test size.
inline data::FavoritaConfig TinyFavorita() {
  data::FavoritaConfig config;
  config.sales_rows = 5000;
  config.num_items = 100;
  config.num_stores = 10;
  config.num_dates = 50;
  config.extra_features_per_dim = 1;
  return config;
}

}  // namespace test_util
}  // namespace joinboost
