#include <gtest/gtest.h>

#include <cmath>

#include "core/boosting.h"
#include "core/session.h"
#include "data/generators.h"
#include "joinboost.h"

namespace joinboost {
namespace {

data::ImdbConfig TinyImdb() {
  data::ImdbConfig config;
  config.num_movies = 60;
  config.num_persons = 120;
  config.cast_per_movie = 4;
  config.companies_per_movie = 2;
  config.info_per_movie = 2;
  config.keywords_per_movie = 2;
  config.infos_per_person = 2;
  return config;
}

TEST(GalaxyTest, ImdbClustersAreFive) {
  exec::Database db;
  Dataset ds = data::MakeImdb(&db, TinyImdb());
  ds.Prepare();
  std::vector<int> facts;
  std::vector<int> clusters = ds.graph().ComputeClusters(&facts);
  EXPECT_EQ(facts.size(), 5u);  // paper Figure 3: five clusters
  // Each fact must be one of the M-N link tables.
  for (int f : facts) {
    const std::string& name = ds.graph().relation(f).name;
    EXPECT_TRUE(name == "cast_info" || name == "movie_companies" ||
                name == "movie_info" || name == "movie_keyword" ||
                name == "person_info")
        << name;
  }
  (void)clusters;
}

TEST(GalaxyTest, FactorizedAggregatesMatchMaterializedJoin) {
  exec::Database db;
  Dataset ds = data::MakeImdb(&db, TinyImdb());

  core::TrainParams params;
  params.boosting = "dt";
  core::Session session(&ds, params);
  session.Prepare();

  factor::PredicateSet none;
  semiring::VarianceElem tot =
      session.fac().TotalAggregate(session.y_fact(), none, "test");

  core::JoinedEval eval = core::MaterializeJoin(ds);
  double c = static_cast<double>(eval.rows());
  double s = 0;
  for (size_t i = 0; i < eval.rows(); ++i) s += eval.YValue(i);

  EXPECT_NEAR(tot.c, c, 1e-6 * c);
  EXPECT_NEAR(tot.s, s, 1e-6 * std::fabs(s) + 1e-6);
}

TEST(GalaxyTest, ResidualUpdatePreservesAggregates) {
  // Proposition 4.1: after updating the cluster fact's annotations with
  // lift(−p), the factorized aggregate equals Σ (y − ŷ(t)) over the
  // materialized join.
  exec::Database db(EngineProfile::DSwap());
  Dataset ds = data::MakeImdb(&db, TinyImdb());

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_leaves = 4;
  params.learning_rate = 0.5;
  params.num_iterations = 1;

  core::Session session(&ds, params);
  session.Prepare();
  core::GradientBoosting gb(&session, params);
  core::TreeGrower grower(&session.fac(), params);
  std::vector<std::string> features = ds.graph().AllFeatures();

  core::Ensemble model;
  model.base_score = session.base_score();

  core::JoinedEval eval = core::MaterializeJoin(ds);
  for (int iter = 0; iter < 3; ++iter) {
    core::GrowthResult grown =
        grower.Grow(features, session.y_fact(), &session.clusters());
    for (const auto& leaf : grown.leaves) {
      grown.tree.nodes[static_cast<size_t>(leaf.node)].prediction =
          params.learning_rate * leaf.raw_value;
    }
    int fact_rel = grown.first_split_relation >= 0
                       ? session.FactOf(grown.first_split_relation)
                       : session.y_fact();
    gb.UpdateResiduals(session, grown, fact_rel);
    model.trees.push_back(grown.tree);

    factor::PredicateSet none;
    semiring::VarianceElem tot =
        session.fac().TotalAggregate(session.y_fact(), none, "test");
    double expected_s = 0;
    for (size_t i = 0; i < eval.rows(); ++i) {
      expected_s += eval.YValue(i) - eval.Predict(model, i);
    }
    EXPECT_NEAR(tot.s, expected_s,
                1e-6 * std::max(1.0, std::fabs(expected_s)))
        << "iteration " << iter;
  }
}

TEST(GalaxyTest, CptConfinesTreesToClusters) {
  exec::Database db(EngineProfile::DSwap());
  Dataset ds = data::MakeImdb(&db, TinyImdb());

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 6;
  params.num_leaves = 4;
  params.learning_rate = 0.3;
  TrainResult res = Train(params, ds);

  ds.Prepare();
  std::vector<int> facts;
  std::vector<int> clusters = ds.graph().ComputeClusters(&facts);
  for (const auto& tree : res.model.trees) {
    int tree_cluster = -1;
    for (const auto& n : tree.nodes) {
      if (n.is_leaf) continue;
      int rel = ds.graph().RelationOfFeature(n.feature);
      ASSERT_GE(rel, 0);
      int cid = clusters[static_cast<size_t>(rel)];
      if (tree_cluster < 0) {
        tree_cluster = cid;
      } else {
        EXPECT_EQ(cid, tree_cluster)
            << "CPT violated: split on " << n.feature;
      }
    }
  }
}

TEST(GalaxyTest, GbdtOnGalaxyReducesRmse) {
  exec::Database db(EngineProfile::DSwap());
  Dataset ds = data::MakeImdb(&db, TinyImdb());

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 10;
  params.num_leaves = 4;
  params.learning_rate = 0.3;
  TrainResult res = Train(params, ds);

  core::JoinedEval eval = core::MaterializeJoin(ds);
  auto curve = eval.RmseCurve(res.model);
  EXPECT_LT(curve.back(), 0.95 * curve.front());
}

TEST(GalaxyTest, NonRmseObjectiveRejectedOnGalaxy) {
  exec::Database db;
  Dataset ds = data::MakeImdb(&db, TinyImdb());
  core::TrainParams params;
  params.boosting = "gbdt";
  params.objective = "mae";
  params.num_iterations = 2;
  EXPECT_THROW(Train(params, ds), JbError);
}

}  // namespace
}  // namespace joinboost
